package mpr_test

import (
	"fmt"

	"mpr"
)

// Clearing a market: two jobs offer resource reduction through their
// supply functions; the manager needs 500 W cut.
func ExampleClear() {
	xs, _ := mpr.ProfileByName("XSBench") // sensitive to slowdown
	rs, _ := mpr.ProfileByName("RSBench") // insensitive
	xsModel := mpr.NewCostModel(xs, 1, mpr.CostLinear)
	rsModel := mpr.NewCostModel(rs, 1, mpr.CostLinear)

	parts := []*mpr.Participant{
		{JobID: "xsbench", Cores: 16, Bid: mpr.CooperativeBid(16, xsModel),
			WattsPerCore: 125, MaxFrac: xs.MaxReduction()},
		{JobID: "rsbench", Cores: 16, Bid: mpr.CooperativeBid(16, rsModel),
			WattsPerCore: 125, MaxFrac: rs.MaxReduction()},
	}
	res, err := mpr.Clear(parts, 500)
	if err != nil {
		panic(err)
	}
	fmt.Printf("feasible: %v\n", res.Feasible)
	fmt.Printf("xsbench gives up %.2f cores, rsbench %.2f cores\n",
		res.Reductions[0], res.Reductions[1])
	// The insensitive application supplies (almost) everything.
	fmt.Printf("rsbench supplies more: %v\n", res.Reductions[1] > res.Reductions[0])
	// Output:
	// feasible: true
	// xsbench gives up 0.00 cores, rsbench 4.00 cores
	// rsbench supplies more: true
}

// The supply function δ(q) = [Δ − b/q]⁺: more incentive buys more
// reduction, capped at Δ.
func ExampleBid_Supply() {
	bid := mpr.Bid{Delta: 0.7, B: 0.14}
	for _, q := range []float64{0.1, 0.2, 0.4, 1.0} {
		fmt.Printf("q=%.1f → δ=%.3f\n", q, bid.Supply(q))
	}
	// Output:
	// q=0.1 → δ=0.000
	// q=0.2 → δ=0.000
	// q=0.4 → δ=0.350
	// q=1.0 → δ=0.560
}

// Oversubscription arithmetic: Table I's capacity planning.
func ExampleOversubscription() {
	o := mpr.Oversubscription{PeakW: 301800, Percent: 15}
	fmt.Printf("capacity: %.1f kW\n", o.Capacity()/1000)
	fmt.Printf("extra core-hours/month: %.0f\n", o.ExtraCoreHours(2004, 720))
	// Output:
	// capacity: 262.4 kW
	// extra core-hours/month: 216432
}

// The emergency state machine: declare on overload, lift after the
// cool-down once giving back the reduction is safe.
func ExampleEmergencyController() {
	ec, _ := mpr.NewEmergencyController(mpr.EmergencyConfig{
		CapacityW:     1000,
		CooldownSlots: 2,
	})
	d := ec.Step(1100, 1100) // overload: declare with ΔP = 1100 − 990
	fmt.Printf("declare=%v target=%.0f W\n", d.Declare, d.TargetW)
	ec.Step(850, 850) // reduced and demand receded: cool-down
	d = ec.Step(850, 850)
	fmt.Printf("lift=%v\n", d.Lift)
	// Output:
	// declare=true target=110 W
	// lift=true
}
