module mpr

go 1.22
