// Quickstart: clear an MPR power-reduction market by hand.
//
// Four jobs with different applications are running when the HPC system
// overloads by 2 kW. We build the market participants, clear it once with
// static cooperative bids (MPR-STAT), once interactively with rational
// bidding agents (MPR-INT), and compare against the centralized optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpr"
)

func main() {
	apps := []struct {
		name  string
		cores float64
	}{
		{"XSBench", 32},   // sensitive to slowdown
		{"SimpleMOC", 16}, // most sensitive
		{"RSBench", 32},   // least sensitive
		{"HPCCG", 48},     // insensitive
	}

	var parts []*mpr.Participant
	var bidders []mpr.Bidder
	for _, a := range apps {
		prof, err := mpr.ProfileByName(a.name)
		if err != nil {
			log.Fatal(err)
		}
		model := mpr.NewCostModel(prof, 1, mpr.CostLinear)
		cores := a.cores
		p := &mpr.Participant{
			JobID:        a.name,
			Cores:        cores,
			Bid:          mpr.CooperativeBid(cores, model), // static MPR-STAT bid
			WattsPerCore: mpr.DefaultCPUCoreModel.DynamicW,
			MaxFrac:      prof.MaxReduction(),
			// The cost functions stay with the user — OPT needs them,
			// the market does not.
			Cost:         func(d float64) float64 { return cores * model.Cost(d/cores) },
			MarginalCost: func(d float64) float64 { return model.Marginal(d / cores) },
		}
		parts = append(parts, p)
		bidders = append(bidders, &mpr.RationalBidder{Cores: cores, Model: model})
	}

	const targetW = 2000.0
	fmt.Printf("power overload: need %.0f W of reduction from %d jobs\n\n", targetW, len(parts))

	// MPR-STAT: one-shot clearing with the static bids.
	stat, err := mpr.Clear(parts, targetW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MPR-STAT cleared at price %.4f (payout %.2f core-h/h):\n", stat.Price, stat.PayoutRate)
	printOutcome(parts, stat.Reductions, stat.Price)

	// MPR-INT: iterative price/bid exchange to the social optimum.
	intr, err := mpr.ClearInteractive(parts, bidders, targetW, mpr.InteractiveConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMPR-INT cleared at price %.4f after %d rounds (converged=%v):\n",
		intr.Price, intr.Rounds, intr.Converged)
	printOutcome(parts, intr.Reductions, intr.Price)

	// The centralized optimum the market approximates.
	opt, err := mpr.SolveOPT(parts, targetW, mpr.OPTDual)
	if err != nil {
		log.Fatal(err)
	}
	var intCost float64
	for i, p := range parts {
		intCost += p.Cost(intr.Reductions[i])
	}
	fmt.Printf("\nOPT total cost %.3f core-h/h vs MPR-INT %.3f (ratio %.3f)\n",
		opt.TotalCost, intCost, intCost/opt.TotalCost)
}

func printOutcome(parts []*mpr.Participant, reductions []float64, price float64) {
	settlements, err := mpr.Settle(parts, reductions, price)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range settlements {
		fmt.Printf("  %-10s reduces %6.2f cores → paid %6.3f, cost %6.3f, net gain %+.3f core-h/h\n",
			s.JobID, s.ReductionCores, s.PaymentRate, s.CostRate, s.NetGainRate)
	}
}
