// Interactive market over TCP: the distributed MPR-INT deployment.
//
// A market manager daemon and four autonomous user bidding agents run in
// this process and talk JSON-over-TCP through the loopback interface —
// exactly how cmd/mprd and cmd/mpragent deploy across machines. The
// manager clears two power emergencies of different sizes; each agent
// responds to every price announcement with its gain-maximizing bid while
// its private cost model never leaves the agent.
//
// Run with: go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"mpr"
)

func main() {
	manager, err := mpr.NewManager("127.0.0.1:0", mpr.ManagerConfig{
		RoundTimeout: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer manager.Close()
	fmt.Printf("manager listening on %s\n", manager.Addr())

	apps := []struct {
		name  string
		cores float64
		alpha float64
	}{
		{"XSBench", 32, 2}, // values its performance highly
		{"SimpleMOC", 16, 1},
		{"RSBench", 32, 1},
		{"HPCCG", 48, 1},
	}
	var mu sync.Mutex
	var agents []*mpr.Agent
	for _, a := range apps {
		prof, err := mpr.ProfileByName(a.name)
		if err != nil {
			log.Fatal(err)
		}
		model := mpr.NewCostModel(prof, a.alpha, mpr.CostLinear)
		name := a.name
		agent, err := mpr.DialAgent(manager.Addr(), mpr.AgentConfig{
			JobID:        name,
			Cores:        a.cores,
			WattsPerCore: mpr.DefaultCPUCoreModel.DynamicW,
			MaxFrac:      prof.MaxReduction(),
			Strategy:     &mpr.RationalBidder{Cores: a.cores, Model: model},
			OnOrder: func(red, price, pay float64) {
				mu.Lock()
				fmt.Printf("  agent %-10s ordered to reduce %6.2f cores (payment %.3f/h)\n", name, red, pay)
				mu.Unlock()
			},
			OnLift: func() {
				mu.Lock()
				fmt.Printf("  agent %-10s resumes full speed\n", name)
				mu.Unlock()
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer agent.Close()
		agents = append(agents, agent)
	}
	for manager.AgentCount() < len(agents) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("%d bidding agents registered\n\n", manager.AgentCount())

	for _, targetW := range []float64{1500, 4000} {
		fmt.Printf("power emergency: %.0f W reduction needed\n", targetW)
		out, err := manager.RunMarket(targetW)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("market cleared at price %.4f in %d rounds (supplied %.0f W)\n",
			out.Result.Price, out.Result.Rounds, out.Result.SuppliedW)
		time.Sleep(50 * time.Millisecond) // let order callbacks print
		manager.Lift()
		time.Sleep(50 * time.Millisecond)
		fmt.Println()
	}
}
