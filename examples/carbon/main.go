// Carbon-aware demand response: MPR beyond oversubscription.
//
// The paper's merit ④: a user-in-the-loop market can do more than handle
// overloads — it can cut carbon by buying resource reduction when the
// grid is dirty. This example replays two weeks of a Gaia-like workload
// against a synthetic grid carbon-intensity signal (solar midday dip,
// evening ramp) and lets the manager clear the familiar MPR market
// whenever intensity exceeds a threshold.
//
// Run with: go run ./examples/carbon
package main

import (
	"fmt"
	"log"

	"mpr"
)

func main() {
	tr, err := mpr.GenerateTrace(mpr.TracePresets(1)["gaia"].WithDays(14))
	if err != nil {
		log.Fatal(err)
	}

	// Peek at the signal the manager will react to.
	sig, err := mpr.NewCarbonSignal(14*24*60, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("grid carbon intensity over a day (gCO2/kWh):")
	for h := 0; h < 24; h += 3 {
		fmt.Printf("  %02d:00  %6.0f\n", h, sig.IntensityAt(h*60))
	}
	fmt.Printf("mean intensity: %.0f gCO2/kWh\n\n", sig.Mean())

	for _, threshold := range []float64{0, 450} {
		res, err := mpr.RunCarbonDR(mpr.CarbonConfig{
			Trace:      tr,
			Seed:       1,
			ThresholdG: threshold,
			Signal:     sig,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("threshold %.0f gCO2/kWh:\n", res.ThresholdG)
		fmt.Printf("  %d demand-response events over %d minutes\n", res.DREvents, res.DRSlots)
		fmt.Printf("  energy saved: %.0f kWh → CO2 saved: %.0f kg (%.1f%% of the workload's %0.f kg)\n",
			res.EnergySavedKWh, res.SavedKgCO2,
			100*res.SavedKgCO2/res.BaselineKgCO2, res.BaselineKgCO2)
		fmt.Printf("  users' cost %.0f core-h, paid %.0f core-h → %.0f%% reward\n\n",
			res.CostCoreH, res.PaymentCoreH, res.RewardPercent())
	}
	fmt.Println("the same supply-function market that handles overloads buys clean-hour shifting.")
}
