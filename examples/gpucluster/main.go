// Heterogeneous GPU cluster: MPR on a system with diverse
// resource-performance relations (the Fig. 15 scenario).
//
// Jobs run six GPU applications whose throughput responds very
// differently to power capping — Jacobi and TeaLeaf collapse, GEMM barely
// notices. The example simulates 15% oversubscription with each
// algorithm and shows why performance-oblivious uniform slowdown (EQL)
// is a bad idea on heterogeneous hardware.
//
// Run with: go run ./examples/gpucluster
package main

import (
	"fmt"
	"log"
	"sort"

	"mpr"
)

func main() {
	tr, err := mpr.GenerateTrace(mpr.TraceConfig{
		Name: "gpu-cluster", Seed: 3, TotalCores: 512, Days: 14,
		JobCount: 4000, MeanUtil: 0.7, MaxJobFrac: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}

	profiles := mpr.GPUProfiles()
	appPower := map[string]mpr.CoreModel{}
	for _, p := range profiles {
		appPower[p.Name] = mpr.DefaultGPUCoreModel
	}
	fmt.Printf("GPU workload: %d jobs over 14 days; applications:\n", len(tr.Jobs))
	for _, p := range profiles {
		fmt.Printf("  %-10s (%s): perf at lowest cap %.0f%%, max reduction %.0f%%\n",
			p.Name, p.Device, p.Performance(p.MinAlloc), 100*p.MaxReduction())
	}
	fmt.Println()

	results := map[mpr.Algorithm]*mpr.SimResult{}
	for _, algo := range []mpr.Algorithm{mpr.AlgOPT, mpr.AlgEQL, mpr.AlgMPRStat, mpr.AlgMPRInt} {
		res, err := mpr.RunSim(mpr.SimConfig{
			Trace:      tr,
			OversubPct: 15,
			Algorithm:  algo,
			Seed:       3,
			Profiles:   profiles,
			CoreModel:  mpr.DefaultGPUCoreModel,
			AppPower:   appPower,
		})
		if err != nil {
			log.Fatal(err)
		}
		results[algo] = res
		fmt.Printf("%-8s  cost %8.1f core-h   infeasible events %d\n",
			algo, res.CostCoreH, res.InfeasibleEvents)
	}

	fmt.Println("\nper-application cost (core-h) — EQL vs MPR-INT:")
	var names []string
	for name := range results[mpr.AlgEQL].PerProfile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		eql := results[mpr.AlgEQL].PerProfile[name]
		intr := results[mpr.AlgMPRInt].PerProfile[name]
		fmt.Printf("  %-10s  EQL %8.2f   MPR-INT %8.2f\n", name, eql.CostCoreH, intr.CostCoreH)
	}
	fmt.Println("\nEQL hammers the sensitive applications (Jacobi, TeaLeaf);")
	fmt.Println("the market shifts reductions to the insensitive ones.")
}
