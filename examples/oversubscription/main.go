// Oversubscription planning: how much capacity does oversubscription add
// to a cluster, and what does overload handling cost?
//
// This example generates a Gaia-like workload, analyzes the benefit of
// 10-25% oversubscription (a Table-I-style analysis), and then simulates
// a month of operation at 15% with the MPR-STAT market handling the
// overloads.
//
// Run with: go run ./examples/oversubscription
package main

import (
	"fmt"
	"log"

	"mpr"
)

func main() {
	cfg := mpr.TracePresets(1)["gaia"].WithDays(30)
	tr, err := mpr.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs on %d cores over 30 days (peak allocation %d)\n\n",
		len(tr.Jobs), tr.TotalCores, tr.PeakAllocation())

	// Capacity planning: utilization tail at each oversubscription level.
	cdf := mpr.UtilizationCDF(tr, 60)
	peakUtil := float64(tr.PeakAllocation()) / float64(tr.TotalCores)
	fmt.Println("oversub   capacity threshold   P(overload)   extra core-h/month")
	for _, x := range []float64{10, 15, 20, 25} {
		threshold := peakUtil * 100 / (100 + x)
		extra := mpr.Oversubscription{PeakW: 1, Percent: x}.ExtraCoreHours(float64(tr.TotalCores), 720)
		fmt.Printf("  %3.0f%%    util > %.3f         %5.2f%%        %8.0f\n",
			x, threshold, 100*cdf.Tail(threshold), extra)
	}

	// A month of operation at 15% with market-based overload handling.
	res, err := mpr.RunSim(mpr.SimConfig{
		Trace:      tr,
		OversubPct: 15,
		Algorithm:  mpr.AlgMPRStat,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated %s at 15%% oversubscription:\n", res.Algorithm)
	fmt.Printf("  capacity %.1f kW against %.1f kW peak demand\n", res.CapacityW/1000, res.PeakW/1000)
	fmt.Printf("  %d emergencies, %.2f%% of time overloaded\n", res.EmergencyCount, 100*res.OverloadFraction())
	fmt.Printf("  %.1f%% of jobs affected, mean runtime increase %.3f%%\n",
		100*res.AffectedFraction(), 100*res.MeanRuntimeIncrease)
	fmt.Printf("  resource reduction %.0f core-h, user cost %.0f core-h\n", res.ReductionCoreH, res.CostCoreH)
	fmt.Printf("  incentives paid %.0f core-h → users earned %.0f%% of their cost back\n",
		res.PaymentCoreH, res.RewardPercent())
	fmt.Printf("  manager added %.0f core-h of capacity → gain ratio %.0fx\n",
		res.ExtraCapacityCoreH, res.GainRatio())
}
