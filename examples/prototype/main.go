// Prototype cluster: the paper's Section V-F experiment on the emulated
// two-server, 40-core cluster.
//
// Two 30-minute (virtual time) runs against a 400 W power cap: one
// without any overload handling and one with MPR slowing the four
// applications down via per-core DVFS. The example prints the power
// timelines and the per-application reductions of Fig. 17.
//
// Run with: go run ./examples/prototype
package main

import (
	"fmt"
	"log"

	"mpr"
)

func main() {
	run := func(useMPR bool) *mpr.Cluster {
		c, err := mpr.NewCluster(mpr.ClusterConfig{
			Seed:      42,
			UseMPR:    useMPR,
			CapacityW: 400,
			PhaseAmp:  0.03,
		})
		if err != nil {
			log.Fatal(err)
		}
		c.RunFor(1800)
		return c
	}
	without := run(false).Result()
	with := run(true).Result()

	fmt.Println("power over 30 minutes (W, one sample per 2 min; cap = 400 W):")
	w1 := without.PowerSeries.Downsample(15)
	w2 := with.PowerSeries.Downsample(15)
	fmt.Println("   t(s)   without MPR   with MPR")
	for i := range w1.T {
		fmt.Printf("  %5d   %8.1f      %8.1f\n", w1.T[i], w1.V[i], w2.V[i])
	}

	fmt.Printf("\noverload seconds: %d without MPR vs %d with MPR (%d emergencies)\n",
		without.OverloadSeconds, with.OverloadSeconds, with.Emergencies)

	fmt.Println("\nper-application outcome with MPR (Fig. 17(b)):")
	for _, a := range with.Apps {
		fmt.Printf("  %-8s mean allocation %.3f, reduction %7.0f core-s, paid %7.1f core-s\n",
			a.Name, a.MeanAlloc, a.ReductionCoreSeconds, a.PaymentCoreSeconds)
	}
	fmt.Println("\napplications reduce different amounts based on their DVFS sensitivity and bids.")
}
