package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchSweepSchema validates the committed BENCH_sweep.json against
// the current -benchout schema: strict decoding (field drift fails the
// test, forcing a schema bump plus a regeneration), the v2 schema tag,
// and sane per-experiment and per-stream-row values. Point
// MPR_BENCH_JSON at a freshly written report to validate that instead —
// the CI bench smoke does exactly that after a quick -stream run.
func TestBenchSweepSchema(t *testing.T) {
	path := os.Getenv("MPR_BENCH_JSON")
	if path == "" {
		path = filepath.Join("..", "..", "BENCH_sweep.json")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading bench report: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r benchReport
	if err := dec.Decode(&r); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	if r.Schema != benchSchema {
		t.Fatalf("schema = %q, want %q (regenerate with `go run ./cmd/mprbench -exp all -stream -benchout BENCH_sweep.json`)", r.Schema, benchSchema)
	}
	if r.GoVersion == "" {
		t.Error("go_version is empty")
	}
	if r.GOMAXPROCS < 1 || r.Workers < 1 {
		t.Errorf("gomaxprocs %d / workers %d: want ≥ 1", r.GOMAXPROCS, r.Workers)
	}
	if r.TotalSeconds <= 0 {
		t.Errorf("total_seconds = %v, want > 0", r.TotalSeconds)
	}

	if len(r.Experiments) == 0 {
		t.Fatal("experiments section is empty")
	}
	seen := map[string]bool{}
	for _, e := range r.Experiments {
		if e.ID == "" || e.Title == "" {
			t.Errorf("experiment entry %+v: empty id or title", e)
		}
		if e.Seconds < 0 {
			t.Errorf("experiment %s: negative seconds %v", e.ID, e.Seconds)
		}
		if seen[e.ID] {
			t.Errorf("experiment %s appears twice", e.ID)
		}
		seen[e.ID] = true
	}

	if len(r.Stream) == 0 {
		t.Fatal("stream section is empty (regenerate with -stream)")
	}
	prev := 0
	var largest int
	for _, s := range r.Stream {
		if s.Participants <= prev {
			t.Errorf("stream sizes not strictly increasing: %d after %d", s.Participants, prev)
		}
		prev = s.Participants
		if s.Participants > largest {
			largest = s.Participants
		}
		if s.Updates <= 0 || s.BatchUpdates <= 0 {
			t.Errorf("stream %d: non-positive update counts %d/%d", s.Participants, s.Updates, s.BatchUpdates)
		}
		if s.NsPerUpdate <= 0 || s.BatchNsPerUpdate <= 0 {
			t.Errorf("stream %d: non-positive timings %v/%v", s.Participants, s.NsPerUpdate, s.BatchNsPerUpdate)
		}
		if s.UpdatesPerSec <= 0 {
			t.Errorf("stream %d: non-positive throughput %v", s.Participants, s.UpdatesPerSec)
		}
		if got := s.BatchNsPerUpdate / s.NsPerUpdate; s.Speedup <= 0 || got/s.Speedup > 1.0001 || s.Speedup/got > 1.0001 {
			t.Errorf("stream %d: speedup %v inconsistent with timings (%v)", s.Participants, s.Speedup, got)
		}
	}
	if largest < 100000 {
		t.Errorf("largest stream sweep size is %d, want the 100k+ regime covered", largest)
	}
}
