package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mpr/internal/sim"
)

// TestBenchSweepSchema validates the committed BENCH_sweep.json against
// the current -benchout schema: strict decoding (field drift fails the
// test, forcing a schema bump plus a regeneration), the v3 schema tag,
// and sane per-experiment, per-stream-row, and per-engine values —
// including the event core's ≥ 10× speedup on the sparse long-horizon
// workload. Point MPR_BENCH_JSON at a freshly written report to
// validate that instead — the CI bench smoke does exactly that after a
// quick -stream -engines run.
func TestBenchSweepSchema(t *testing.T) {
	path := os.Getenv("MPR_BENCH_JSON")
	if path == "" {
		path = filepath.Join("..", "..", "BENCH_sweep.json")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading bench report: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r benchReport
	if err := dec.Decode(&r); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	if r.Schema != benchSchema {
		t.Fatalf("schema = %q, want %q (regenerate with `go run ./cmd/mprbench -exp all -stream -engines -benchout BENCH_sweep.json`)", r.Schema, benchSchema)
	}
	if _, err := sim.ParseEngine(r.Engine); err != nil {
		t.Errorf("engine field: %v", err)
	}
	if r.GoVersion == "" {
		t.Error("go_version is empty")
	}
	if r.GOMAXPROCS < 1 || r.Workers < 1 {
		t.Errorf("gomaxprocs %d / workers %d: want ≥ 1", r.GOMAXPROCS, r.Workers)
	}
	if r.TotalSeconds <= 0 {
		t.Errorf("total_seconds = %v, want > 0", r.TotalSeconds)
	}

	if len(r.Experiments) == 0 {
		t.Fatal("experiments section is empty")
	}
	seen := map[string]bool{}
	for _, e := range r.Experiments {
		if e.ID == "" || e.Title == "" {
			t.Errorf("experiment entry %+v: empty id or title", e)
		}
		if e.Seconds < 0 {
			t.Errorf("experiment %s: negative seconds %v", e.ID, e.Seconds)
		}
		if seen[e.ID] {
			t.Errorf("experiment %s appears twice", e.ID)
		}
		seen[e.ID] = true
	}

	if len(r.Stream) == 0 {
		t.Fatal("stream section is empty (regenerate with -stream)")
	}
	prev := 0
	var largest int
	for _, s := range r.Stream {
		if s.Participants <= prev {
			t.Errorf("stream sizes not strictly increasing: %d after %d", s.Participants, prev)
		}
		prev = s.Participants
		if s.Participants > largest {
			largest = s.Participants
		}
		if s.Updates <= 0 || s.BatchUpdates <= 0 {
			t.Errorf("stream %d: non-positive update counts %d/%d", s.Participants, s.Updates, s.BatchUpdates)
		}
		if s.NsPerUpdate <= 0 || s.BatchNsPerUpdate <= 0 {
			t.Errorf("stream %d: non-positive timings %v/%v", s.Participants, s.NsPerUpdate, s.BatchNsPerUpdate)
		}
		if s.UpdatesPerSec <= 0 {
			t.Errorf("stream %d: non-positive throughput %v", s.Participants, s.UpdatesPerSec)
		}
		if got := s.BatchNsPerUpdate / s.NsPerUpdate; s.Speedup <= 0 || got/s.Speedup > 1.0001 || s.Speedup/got > 1.0001 {
			t.Errorf("stream %d: speedup %v inconsistent with timings (%v)", s.Participants, s.Speedup, got)
		}
	}
	if largest < 100000 {
		t.Errorf("largest stream sweep size is %d, want the 100k+ regime covered", largest)
	}

	if len(r.Engines) == 0 {
		t.Fatal("engines section is empty (regenerate with -engines)")
	}
	rows := map[string]benchEngineReport{}
	for _, e := range r.Engines {
		if _, dup := rows[e.Engine]; dup {
			t.Errorf("engine %q appears twice", e.Engine)
		}
		rows[e.Engine] = e
		if e.Slots < 1_000_000 {
			t.Errorf("engine %s: %d slots — not the sparse long-horizon shape", e.Engine, e.Slots)
		}
		if e.Jobs <= 0 {
			t.Errorf("engine %s: non-positive job count %d", e.Engine, e.Jobs)
		}
		if e.Seconds <= 0 {
			t.Errorf("engine %s: non-positive seconds %v", e.Engine, e.Seconds)
		}
		if e.Speedup <= 0 {
			t.Errorf("engine %s: non-positive speedup %v", e.Engine, e.Speedup)
		}
	}
	slotRow, haveSlot := rows[string(sim.EngineSlot)]
	eventRow, haveEvent := rows[string(sim.EngineEvent)]
	if !haveSlot || !haveEvent {
		t.Fatalf("engines section has %v, want both %q and %q", r.Engines, sim.EngineSlot, sim.EngineEvent)
	}
	if slotRow.Slots != eventRow.Slots || slotRow.Jobs != eventRow.Jobs {
		t.Errorf("engines simulated different workloads: slot %d slots/%d jobs vs event %d slots/%d jobs",
			slotRow.Slots, slotRow.Jobs, eventRow.Slots, eventRow.Jobs)
	}
	// The point of the event core: the sparse long-horizon run must be at
	// least an order of magnitude faster than slot-by-slot replay.
	if eventRow.Speedup < 10 {
		t.Errorf("event engine speedup %.1f× on the sparse workload, want ≥ 10×", eventRow.Speedup)
	}
	if got := slotRow.Seconds / eventRow.Seconds; eventRow.Speedup/got > 1.0001 || got/eventRow.Speedup > 1.0001 {
		t.Errorf("event speedup %v inconsistent with timings (%v)", eventRow.Speedup, got)
	}
}
