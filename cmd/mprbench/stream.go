package main

import (
	"fmt"
	"time"

	"mpr/internal/core"
	"mpr/internal/stats"
	"mpr/internal/telemetry"
)

// The -stream microbenchmark sweeps the streaming-clear engine across
// market sizes (the Fig. 10(a) axis extended to incremental updates) and
// records sustained update throughput in the -benchout report. Each cell
// measures a streamed activation-order-changing bid update — treap
// delete + re-insert + full re-clear — against the batch path it
// replaces (SetBid + Refresh + ClearInto, which re-sorts the whole
// index). See DESIGN.md §11.

// streamSizes is the market-size sweep.
var streamSizes = []int{1000, 100000, 1000000}

// benchStreamReport is one row of the report's "stream" section.
type benchStreamReport struct {
	Participants     int     `json:"participants"`
	Updates          int     `json:"updates"`
	NsPerUpdate      float64 `json:"ns_per_update"`
	UpdatesPerSec    float64 `json:"updates_per_sec"`
	BatchUpdates     int     `json:"batch_updates"`
	BatchNsPerUpdate float64 `json:"batch_ns_per_update"`
	Speedup          float64 `json:"speedup"`
}

// streamPool builds a synthetic market of n participants with a cheap
// deterministic generator. The experiment pools go through the full cost
// models; here construction cost would dominate the 1M cell, and the
// streaming engine only reads the bids.
func streamPool(n int) ([]*core.Participant, float64) {
	parts := make([]*core.Participant, n)
	var maxW float64
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng>>11) / float64(1<<53)
	}
	for i := range parts {
		delta := 0.5 + 5.5*next()
		parts[i] = &core.Participant{
			JobID:        fmt.Sprintf("j%d", i),
			Cores:        8,
			Bid:          core.Bid{Delta: delta, B: (0.02 + 0.3*next()) * delta},
			WattsPerCore: 125,
			MaxFrac:      1,
		}
		maxW += 125 * delta
	}
	return parts, 0.4 * maxW
}

// streamUpdateCounts picks per-size iteration counts that keep every
// cell under a few seconds while staying far above timer resolution.
func streamUpdateCounts(n int) (streamOps, batchOps int) {
	switch {
	case n <= 1000:
		return 500000, 2000
	case n <= 100000:
		return 500000, 100
	default:
		return 200000, 10
	}
}

// runStreamBench runs the sweep and returns the report rows.
func runStreamBench() []benchStreamReport {
	core.Instrument(telemetry.Nop())
	defer core.Instrument(telemetry.Default())
	var rows []benchStreamReport
	for _, n := range streamSizes {
		parts, target := streamPool(n)
		orig := make([]core.Bid, n)
		alt := make([]core.Bid, n)
		for i, p := range parts {
			orig[i] = p.Bid
			alt[i] = core.Bid{Delta: p.Bid.Delta, B: 2 * p.Bid.B}
		}
		pick := func(i int) core.Bid {
			if (i/n)%2 == 1 {
				return orig[i%n]
			}
			return alt[i%n]
		}
		streamOps, batchOps := streamUpdateCounts(n)

		sm, err := core.NewStreamMarket(parts, target)
		if err != nil {
			panic(err) // synthetic pool is valid by construction
		}
		start := time.Now()
		for i := 0; i < streamOps; i++ {
			if _, _, err := sm.Apply(core.ParticipantDelta{Index: i % n, Bid: pick(i)}); err != nil {
				panic(err)
			}
		}
		streamNs := float64(time.Since(start).Nanoseconds()) / float64(streamOps)

		ix, err := core.NewMarketIndex(parts)
		if err != nil {
			panic(err)
		}
		var res core.ClearingResult
		start = time.Now()
		for i := 0; i < batchOps; i++ {
			if err := ix.SetBid(i%n, pick(i)); err != nil {
				panic(err)
			}
			ix.Refresh()
			if err := ix.ClearInto(&res, target); err != nil {
				panic(err)
			}
		}
		batchNs := float64(time.Since(start).Nanoseconds()) / float64(batchOps)

		rows = append(rows, benchStreamReport{
			Participants:     n,
			Updates:          streamOps,
			NsPerUpdate:      streamNs,
			UpdatesPerSec:    1e9 / streamNs,
			BatchUpdates:     batchOps,
			BatchNsPerUpdate: batchNs,
			Speedup:          batchNs / streamNs,
		})
	}
	return rows
}

// streamTable renders the sweep for the console.
func streamTable(rows []benchStreamReport) string {
	tbl := stats.NewTable("Streaming incremental clears: sustained update throughput",
		"participants", "ns/update", "updates/s", "batch ns/update", "speedup")
	for _, r := range rows {
		tbl.AddRow(r.Participants,
			fmt.Sprintf("%.0f", r.NsPerUpdate),
			fmt.Sprintf("%.0f", r.UpdatesPerSec),
			fmt.Sprintf("%.0f", r.BatchNsPerUpdate),
			fmt.Sprintf("%.0f×", r.Speedup))
	}
	return tbl.String()
}
