package main

import (
	"fmt"
	"time"

	"mpr/internal/sim"
	"mpr/internal/stats"
	"mpr/internal/trace"
)

// The -engines microbenchmark times both simulation cores on a sparse
// long-horizon workload — the event core's home turf: ~9M simulated
// slots carrying only ~120 jobs, so almost every slot is provably inert
// and the event engine's skip path does the work the slot engine grinds
// through minute by minute. The per-engine wall clock lands in the
// -benchout report's "engines" section; internal/sim's
// TestEventEngineSpeedup gates the same shape at ≥ 10×.

// benchEngineReport is one row of the report's "engines" section.
type benchEngineReport struct {
	Engine  string  `json:"engine"`
	Slots   int     `json:"slots"`
	Jobs    int     `json:"jobs"`
	Seconds float64 `json:"seconds"`
	// Speedup is slot-engine seconds over this engine's seconds (1 on
	// the slot row by construction).
	Speedup float64 `json:"speedup"`
}

// engineBenchTrace builds the sparse workload: 60 bursts of two 16-core,
// 30-minute jobs separated by 150k-slot idle gaps on a 256-core system.
// Few jobs keep per-job setup (profile assignment, static-bid
// precomputation — identical under both engines) from drowning the loop
// being compared.
func engineBenchTrace() *trace.Trace {
	const (
		bursts     = 60
		perBurst   = 2
		gapSlots   = 150000
		runtimeMin = 30
	)
	var jobs []trace.Job
	for b := 0; b < bursts; b++ {
		submit := int64(b) * gapSlots * 60
		for j := 0; j < perBurst; j++ {
			jobs = append(jobs, trace.Job{
				ID:      len(jobs) + 1,
				Submit:  submit,
				Runtime: runtimeMin * 60,
				Cores:   16,
			})
		}
	}
	return &trace.Trace{Name: "sparse-engine-bench", TotalCores: 256, Jobs: jobs}
}

// runEngineBench times each engine best-of-3 after a warm run and
// returns the rows, slot engine first. The event run is tens of
// milliseconds — one scheduler hiccup on a loaded box would move the
// recorded speedup across the schema test's ≥10× gate, so the minimum
// is the stable estimate.
func runEngineBench() []benchEngineReport {
	tr := engineBenchTrace()
	cfg := sim.Config{
		Trace:      tr,
		OversubPct: 15,
		Algorithm:  sim.AlgMPRStat,
		Seed:       7,
	}
	var rows []benchEngineReport
	for _, engine := range sim.Engines() {
		c := cfg
		c.Engine = engine
		if _, err := sim.Run(c); err != nil { // warm-up
			panic(err) // fixed workload is valid by construction
		}
		var best time.Duration
		var res *sim.Result
		for i := 0; i < 3; i++ {
			start := time.Now()
			r, err := sim.Run(c)
			if err != nil {
				panic(err)
			}
			if d := time.Since(start); res == nil || d < best {
				best, res = d, r
			}
		}
		rows = append(rows, benchEngineReport{
			Engine:  string(engine),
			Slots:   res.Slots,
			Jobs:    res.JobsTotal,
			Seconds: best.Seconds(),
		})
	}
	for i := range rows {
		rows[i].Speedup = rows[0].Seconds / rows[i].Seconds
	}
	return rows
}

// engineTable renders the comparison for the console.
func engineTable(rows []benchEngineReport) string {
	tbl := stats.NewTable("Simulation engines: sparse long-horizon wall clock",
		"engine", "slots", "jobs", "seconds", "speedup")
	for _, r := range rows {
		tbl.AddRow(r.Engine, r.Slots, r.Jobs,
			fmt.Sprintf("%.3f", r.Seconds),
			fmt.Sprintf("%.1f×", r.Speedup))
	}
	return tbl.String()
}
