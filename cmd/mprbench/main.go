// Command mprbench regenerates the MPR paper's tables and figures.
//
// Usage:
//
//	mprbench -exp all            # every table/figure + ablations
//	mprbench -exp f8,f9          # specific experiments
//	mprbench -exp t1 -quick=false -seed 7
//
// Experiment IDs follow the paper: t1 (Table I), f1b, f2, f3, f4, f6, f7,
// f8, f9, f10, f11, f12, f13, f14, f15, f16, f17, and the repository
// ablations a1..a4. See DESIGN.md for the per-experiment index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpr/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		seed   = flag.Int64("seed", 1, "random seed")
		quick  = flag.Bool("quick", true, "run reduced-scale experiments (full scale reproduces the paper's horizons but takes much longer)")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		format = flag.String("format", "text", "output format: text or markdown")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick}
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "markdown":
			fmt.Printf("### %s — %s\n\n", res.ID, e.Title)
			for _, tbl := range res.Tables {
				fmt.Println(tbl.Markdown())
			}
			for _, n := range res.Notes {
				fmt.Printf("*Note: %s.*\n\n", n)
			}
		default:
			fmt.Printf("### %s — %s  (%.1fs)\n\n", res.ID, e.Title, time.Since(start).Seconds())
			for _, tbl := range res.Tables {
				fmt.Println(tbl.String())
			}
			for _, n := range res.Notes {
				fmt.Printf("note: %s\n", n)
			}
			fmt.Println()
		}
	}
}
