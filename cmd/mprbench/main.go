// Command mprbench regenerates the MPR paper's tables and figures.
//
// Usage:
//
//	mprbench -exp all            # every table/figure + ablations
//	mprbench -exp f8,f9          # specific experiments
//	mprbench -exp t1 -quick=false -seed 7
//	mprbench -exp f8 -parallel 8 # bound the sweep worker pool
//	mprbench -exp all -benchout BENCH_sweep.json
//	mprbench -exp none -series series.csv  # export the recorded timeline
//
// -series runs the instrumented Gaia timeline simulation (the run behind
// Fig. 9's power timeline), exports its per-slot series store to the
// given file (CSV when the path ends in .csv, JSONL otherwise), and
// evaluates the simulation SLO alert rules post hoc over the recording.
// The export is bit-identical at any -parallel setting. Use -exp none to
// export without running any experiment tables.
//
// Experiment IDs follow the paper: t1 (Table I), f1b, f2, f3, f4, f6, f7,
// f8, f9, f10, f11, f12, f13, f14, f15, f16, f17, plus the repository
// ablations a1..a6 and extension studies x1..x7. See DESIGN.md for the
// per-experiment index.
//
// Sweeps fan their independent simulation cells across a worker pool
// (-parallel; 0 = GOMAXPROCS, 1 = serial). Tables are bit-identical at
// any worker count — see DESIGN.md §9 for the determinism contract.
// -benchout writes a machine-readable per-experiment wall-clock report.
// -stream additionally sweeps the streaming-clear engine (DESIGN.md §11)
// across market sizes and records sustained update throughput in the
// report's "stream" section. -engine selects the simulation core the
// experiments run on (slot or event; tables are bit-identical either
// way), and -engines times both cores on a sparse long-horizon workload
// and records per-engine wall clock in the report's "engines" section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mpr/internal/experiments"
	"mpr/internal/runner"
	"mpr/internal/sim"
	"mpr/internal/telemetry/alerts"
	"mpr/internal/telemetry/tsdb"
)

// benchReport is the -benchout JSON schema: enough context to compare
// runs across machines and worker counts.
type benchReport struct {
	Schema       string              `json:"schema"`
	GoVersion    string              `json:"go_version"`
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	Workers      int                 `json:"workers"`
	Seed         int64               `json:"seed"`
	Quick        bool                `json:"quick"`
	Engine       string              `json:"engine"`
	Experiments  []benchExpReport    `json:"experiments"`
	Stream       []benchStreamReport `json:"stream,omitempty"`
	Engines      []benchEngineReport `json:"engines,omitempty"`
	TotalSeconds float64             `json:"total_seconds"`
}

// benchSchema names the -benchout JSON schema. v2 added the optional
// "stream" section (streaming-clear update throughput); v3 added the
// "engine" field (which simulation core ran the experiments) and the
// optional "engines" section (per-engine wall clock on the sparse
// long-horizon workload).
const benchSchema = "mprbench/sweep/v3"

type benchExpReport struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		seed     = flag.Int64("seed", 1, "random seed")
		quick    = flag.Bool("quick", true, "run reduced-scale experiments (full scale reproduces the paper's horizons but takes much longer)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		format   = flag.String("format", "text", "output format: text or markdown")
		parallel = flag.Int("parallel", 0, "sweep worker-pool bound: 0 = GOMAXPROCS, 1 = serial, n > 1 = up to n concurrent cells (tables are identical at any setting)")
		benchout = flag.String("benchout", "", "write a machine-readable wall-clock report (JSON) to this file")
		stream   = flag.Bool("stream", false, "sweep the streaming-clear engine's update throughput and include it in -benchout")
		engine   = flag.String("engine", "", "simulation core for the experiments: slot (default) or event — tables are bit-identical either way")
		engines  = flag.Bool("engines", false, "time both simulation cores on a sparse long-horizon workload and include per-engine wall clock in -benchout")
		series   = flag.String("series", "", "export the instrumented timeline run's per-slot series to this file (.csv = CSV, else JSONL) and evaluate the SLO alert rules over it")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	switch {
	case *exp == "all":
		selected = experiments.All()
	case *exp == "none" || *exp == "":
		// No tables — used with -series to just export the recording.
	default:
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick, Parallel: *parallel, Engine: eng}
	workers := *parallel
	if workers <= 0 {
		workers = runner.DefaultWorkers()
	}
	report := benchReport{
		Schema:     benchSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Seed:       *seed,
		Quick:      *quick,
		Engine:     string(eng),
	}
	suiteStart := time.Now()
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		report.Experiments = append(report.Experiments, benchExpReport{
			ID: e.ID, Title: e.Title, Seconds: elapsed,
		})
		switch *format {
		case "markdown":
			fmt.Printf("### %s — %s\n\n", res.ID, e.Title)
			for _, tbl := range res.Tables {
				fmt.Println(tbl.Markdown())
			}
			for _, n := range res.Notes {
				fmt.Printf("*Note: %s.*\n\n", n)
			}
		default:
			fmt.Printf("### %s — %s  (%.1fs)\n\n", res.ID, e.Title, elapsed)
			for _, tbl := range res.Tables {
				fmt.Println(tbl.String())
			}
			for _, n := range res.Notes {
				fmt.Printf("note: %s\n", n)
			}
			fmt.Println()
		}
	}
	if *stream {
		report.Stream = runStreamBench()
		fmt.Println(streamTable(report.Stream))
	}
	if *engines {
		report.Engines = runEngineBench()
		fmt.Println(engineTable(report.Engines))
	}
	report.TotalSeconds = time.Since(suiteStart).Seconds()

	if len(selected) > 1 && *format != "markdown" {
		fmt.Printf("wall clock by experiment (workers=%d):\n", workers)
		for _, r := range report.Experiments {
			fmt.Printf("  %-4s %7.1fs  %s\n", r.ID, r.Seconds, r.Title)
		}
		fmt.Printf("  %-4s %7.1fs\n", "all", report.TotalSeconds)
	}

	if *series != "" {
		res, err := experiments.TimelineRun(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "series run: %v\n", err)
			os.Exit(1)
		}
		if err := tsdb.ExportFile(res.Series, tsdb.Query{Resolution: tsdb.ResRaw}, *series); err != nil {
			fmt.Fprintf(os.Stderr, "series export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *series)
		firings := alerts.EvalStore(alerts.SimRules(), res.Series, 0, 0)
		if len(firings) == 0 {
			fmt.Println("SLO alerts over the recorded series: none fired")
		} else {
			fmt.Printf("SLO alerts over the recorded series (%d firings):\n", len(firings))
			for _, f := range firings {
				fmt.Printf("  %s — %s\n", f, f.Help)
			}
		}
	}

	if *benchout != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchout, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *benchout)
	}
}
