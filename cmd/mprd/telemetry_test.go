package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mpr/internal/core"
	"mpr/internal/telemetry"
	"mpr/internal/telemetry/tsdb"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestObsShutdownDrainsAndFlushes is the shutdown-drain contract: on
// cancellation the sampler takes one final sample, then the trace and
// series sinks flush exactly once, and both files land on disk complete.
func TestObsShutdownDrainsAndFlushes(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	seriesPath := filepath.Join(dir, "series.csv")
	clock := tsdb.NewFakeClock(time.Unix(1000, 0))
	o, err := newObs(obsConfig{
		SampleInterval: time.Second,
		TraceLogPath:   tracePath,
		SeriesLogPath:  seriesPath,
		AgentCount:     func() int { return 3 },
		Clock:          clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Startup sample lands without any tick.
	waitFor(t, "startup sample", func() bool { return o.agentsSeries.Total() >= 1 })
	o.tracer.Emit(telemetry.Event{Name: "market_clear", Round: 7})
	clock.Advance(3 * time.Second)
	waitFor(t, "ticked samples", func() bool { return o.agentsSeries.Total() >= 4 })

	if err := o.shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Drain adds exactly one final sample.
	if got := o.agentsSeries.Total(); got != 5 {
		t.Fatalf("samples after drain = %d, want 5", got)
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traceData), `"name":"market_clear"`) {
		t.Fatalf("trace sink not flushed: %q", traceData)
	}
	seriesData, err := os.ReadFile(seriesPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(seriesData), seriesAgentsConnected) {
		t.Fatalf("series sink missing %s: %q", seriesAgentsConnected, seriesData)
	}
	// Every sample saw 3 connected agents.
	if !strings.Contains(string(seriesData), ",3,") {
		t.Fatalf("series export lost the agent count: %q", seriesData)
	}
}

func TestObsHealthAndHandler(t *testing.T) {
	clock := tsdb.NewFakeClock(time.Unix(5000, 0))
	o, err := newObs(obsConfig{
		SampleInterval: time.Second,
		AgentCount:     func() int { return 2 },
		Clock:          clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.shutdown()
	waitFor(t, "startup sample", func() bool { return o.agentsSeries.Total() >= 1 })
	clock.Advance(10 * time.Second)
	waitFor(t, "ticks", func() bool { return o.agentsSeries.Total() >= 11 })

	h := o.health()
	if h.Status != "ok" || h.AgentsConnected != 2 {
		t.Fatalf("health = %+v", h)
	}
	if h.UptimeSeconds != 10 {
		t.Fatalf("uptime = %v, want 10", h.UptimeSeconds)
	}
	if h.LastSampleAgeSeconds < 0 || h.LastSampleAgeSeconds > 10 {
		t.Fatalf("sample age = %v", h.LastSampleAgeSeconds)
	}

	// The handler serves the full surface.
	for _, path := range []string{"/metrics", "/debug/market", "/debug/spans", "/debug/series", "/healthz", "/debug/pprof/cmdline"} {
		rec := httptest.NewRecorder()
		o.handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s status = %d", path, rec.Code)
		}
	}
}

// TestObsRecordMarketFiresAlerts checks the live SLO evaluation: an
// unmet reduction target fires UnmetReduction and a long market fires
// MarketRoundsRegression, both counted in the registry.
func TestObsRecordMarketFiresAlerts(t *testing.T) {
	var logged []string
	o, err := newObs(obsConfig{
		Clock: tsdb.NewFakeClock(time.Unix(0, 0)),
		Logf:  func(f string, a ...interface{}) { logged = append(logged, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.shutdown()

	// A healthy market: no firings.
	o.recordMarket(1000, &core.ClearingResult{Rounds: 5, Price: 0.4, SuppliedW: 1000})
	if n := o.reg.Snapshot().Counters[`mpr_mgr_alerts_total{rule="UnmetReduction"}`]; n != 0 {
		t.Fatalf("healthy market fired %d alerts", n)
	}
	// Unmet target + excessive rounds: both rules fire.
	o.recordMarket(2000, &core.ClearingResult{Rounds: 45, Price: 0.9, SuppliedW: 1500})
	snap := o.reg.Snapshot()
	if n := snap.Counters[`mpr_mgr_alerts_total{rule="UnmetReduction"}`]; n != 1 {
		t.Fatalf("UnmetReduction fired %d times, want 1", n)
	}
	if n := snap.Counters[`mpr_mgr_alerts_total{rule="MarketRoundsRegression"}`]; n != 1 {
		t.Fatalf("MarketRoundsRegression fired %d times, want 1", n)
	}
	if len(logged) != 2 {
		t.Fatalf("logged %d firings, want 2", len(logged))
	}
}
