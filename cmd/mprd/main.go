// Command mprd is the MPR market manager daemon: it accepts user bidding
// agents over TCP (see cmd/mpragent) and clears interactive power-
// reduction markets.
//
// Usage:
//
//	mprd -listen 127.0.0.1:7946 -agents 4 -target 2000
//
// waits for 4 agents, clears one market for a 2 kW reduction, prints the
// reduction orders, lifts the emergency, and exits. With -target 0 the
// daemon keeps running and reads reduction targets (watts, one per line)
// from stdin, clearing one market per line.
//
// With -metrics ADDR (e.g. -metrics :9090) the daemon also serves its
// telemetry over HTTP: Prometheus text format at /metrics and a
// human-readable view of the last clearing rounds at /debug/market.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mpr/internal/agentproto"
	"mpr/internal/stats"
	"mpr/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen  = flag.String("listen", "127.0.0.1:7946", "TCP listen address")
		agents  = flag.Int("agents", 1, "number of agents to wait for")
		target  = flag.Float64("target", 0, "one-shot power reduction target in watts (0 = interactive stdin mode)")
		wait    = flag.Duration("wait", 30*time.Second, "how long to wait for agents")
		metrics = flag.String("metrics", "", "HTTP address serving /metrics and /debug/market (empty = disabled)")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(1024)
	m, err := agentproto.NewManager(*listen, agentproto.ManagerConfig{
		Logf:      log.Printf,
		Telemetry: reg,
		Tracer:    tracer,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	defer m.Close()
	log.Printf("mprd listening on %s, waiting for %d agents", m.Addr(), *agents)

	if *metrics != "" {
		srv := &http.Server{Addr: *metrics, Handler: telemetry.Handler(reg, tracer)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		defer srv.Close()
		log.Printf("telemetry on http://%s/metrics and /debug/market", *metrics)
	}

	deadline := time.Now().Add(*wait)
	for m.AgentCount() < *agents {
		if time.Now().After(deadline) {
			log.Printf("only %d of %d agents connected within %s", m.AgentCount(), *agents, *wait)
			return 1
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Printf("%d agents registered", m.AgentCount())

	if *target > 0 {
		runMarket(m, *target)
		m.Lift()
		return 0
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("enter power reduction targets in watts, one per line ('lift' to end an emergency, 'quit' to exit):")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			// Blank lines are tolerated quietly (interactive convenience).
		case line == "quit":
			return 0
		case line == "lift":
			m.Lift()
			log.Printf("emergency lifted")
		default:
			w, err := strconv.ParseFloat(line, 64)
			if err != nil || w <= 0 {
				// Malformed target: report and keep serving — a typo must
				// not take the market down mid-emergency.
				log.Printf("ignoring malformed target %q: need a positive wattage, 'lift', or 'quit'", line)
				continue
			}
			runMarket(m, w)
		}
	}
	if err := sc.Err(); err != nil {
		log.Printf("reading stdin: %v", err)
		return 1
	}
	return 0
}

func runMarket(m *agentproto.Manager, targetW float64) {
	out, err := m.RunMarket(targetW)
	if err != nil {
		log.Printf("market failed: %v", err)
		return
	}
	r := out.Result
	tbl := stats.NewTable(
		fmt.Sprintf("Market cleared: price %.4f, %d rounds, converged=%v, supplied %.1f W of %.1f W",
			r.Price, r.Rounds, r.Converged, r.SuppliedW, targetW),
		"job", "reduction (cores)", "payment rate")
	for job, red := range out.Orders {
		tbl.AddRow(job, red, r.Price*red)
	}
	fmt.Println(tbl.String())
}
