// Command mprd is the MPR market manager daemon: it accepts user bidding
// agents over TCP (see cmd/mpragent) and clears interactive power-
// reduction markets.
//
// Usage:
//
//	mprd -listen 127.0.0.1:7946 -agents 4 -target 2000
//
// waits for 4 agents, clears one market for a 2 kW reduction, prints the
// reduction orders, lifts the emergency, and exits. With -target 0 the
// daemon keeps running and reads reduction targets (watts, one per line)
// from stdin, clearing one market per line. With -stream the market core
// re-clears incrementally on every incoming bid (O(log M) per update) and
// records each intermediate price in the mpr_mgr_stream_price series; the
// wire protocol and the converged prices are unchanged.
//
// The daemon accepts both agent wire formats on one port: JSON lines
// (the original protocol, unchanged byte for byte) and the negotiated
// length-prefixed binary framing — agents pick per connection. -shards
// splits the fleet across N connection-manager event loops; -evict
// bounds how many consecutive round deadlines a slow agent may miss
// before it is evicted with a typed reason. With -state FILE the daemon
// snapshots its market + registration state (a versioned mprstate/v1
// JSON artifact) on every exit path including SIGTERM; -restore loads
// that file at boot, and restored agents keep their last bids — the
// paper's "proceed with last information" rule — until they reconnect
// and rebid.
//
// With -metrics ADDR (e.g. -metrics :9090) the daemon serves its full
// observability surface over HTTP: Prometheus text (or ?format=json) at
// /metrics, the last clearing rounds at /debug/market, hierarchical
// trace spans at /debug/spans, windowed time-series queries at
// /debug/series, liveness at /healthz, and net/http/pprof under
// /debug/pprof/. A wall-clock sampler (-sample) records connected-agent
// and per-market series; -tracelog and -serieslog persist the event
// stream and the series store, flushed on shutdown. SIGINT/SIGTERM
// drain the sampler and flush the sinks before exiting.
//
// With -flight DIR the daemon arms its black-box flight recorder: a
// runtime-health sampler (goroutines, heap in-use, GC pause p99, sched
// latency p99) joins the tick as mpr_rt_* series, the process-health
// alert rules join the live scorecard, and a trigger — a fresh alert
// firing (per-rule -flight-cooldown), SIGQUIT, process exit, or POST
// /debug/flight/dump — writes a versioned mprflight/v1 bundle into DIR:
// build info, flag echo, goroutine profile, recent trace events/spans,
// HDR summaries, alert history, and the series window around the
// trigger. /debug/flight reports recorder status; /debug/rt the latest
// runtime snapshot.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mpr/internal/agentproto"
	"mpr/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen    = flag.String("listen", "127.0.0.1:7946", "TCP listen address")
		agents    = flag.Int("agents", 1, "number of agents to wait for")
		target    = flag.Float64("target", 0, "one-shot power reduction target in watts (0 = interactive stdin mode)")
		wait      = flag.Duration("wait", 30*time.Second, "how long to wait for agents")
		metrics   = flag.String("metrics", "", "HTTP address serving the observability surface (empty = disabled)")
		stream    = flag.Bool("stream", false, "continuously-clearing market: re-clear incrementally on every incoming bid")
		shards    = flag.Int("shards", 0, "connection manager shards (0 = one per CPU, capped at 16)")
		evict     = flag.Int("evict", 0, "evict agents after this many consecutive missed round deadlines (0 = default 3, negative = never)")
		statePath = flag.String("state", "", "snapshot market+registration state to this file on shutdown (mprstate/v1)")
		restore   = flag.Bool("restore", false, "restore state from -state at boot; restored agents keep their last bids until they rebid")
		sample    = flag.Duration("sample", time.Second, "wall-clock series sampling interval")
		tracelog  = flag.String("tracelog", "", "file receiving every trace event as JSONL (flushed on shutdown)")
		serieslog = flag.String("serieslog", "", "file receiving the series store on shutdown (.csv for CSV, else JSONL)")
		flightDir = flag.String("flight", "", "directory receiving mprflight/v1 black-box bundles on alert/SIGQUIT/exit (empty = disabled)")
		flightCD  = flag.Duration("flight-cooldown", time.Minute, "per-rule suppression window between alert-triggered flight dumps")
	)
	flag.Parse()
	// Echo the effective flag configuration into every flight bundle so
	// an incident artifact always says how the daemon was run.
	configEcho := make(map[string]string)
	flag.VisitAll(func(f *flag.Flag) { configEcho[f.Name] = f.Value.String() })

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var m *agentproto.Manager
	o, err := newObs(obsConfig{
		SampleInterval: *sample,
		TraceLogPath:   *tracelog,
		SeriesLogPath:  *serieslog,
		AgentCount: func() int {
			if m == nil {
				return 0
			}
			return m.AgentCount()
		},
		Evictions: func() int64 {
			if m == nil {
				return 0
			}
			return m.Evictions()
		},
		FlightDir:      *flightDir,
		FlightCooldown: *flightCD,
		ConfigEcho:     configEcho,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	// Drain: one final sample, then the sinks flush exactly once —
	// whether we exit via signal, stdin EOF, or one-shot completion.
	// shutdown is idempotent, so racing exit paths cannot double-flush.
	defer func() {
		if err := o.shutdown(); err != nil {
			log.Printf("telemetry flush: %v", err)
		}
	}()

	if *flightDir != "" {
		// SIGQUIT opens the black box without landing the plane: dump a
		// signal-reason bundle and keep serving. (Registering the handler
		// replaces Go's default stack-dump-and-exit SIGQUIT behavior; the
		// goroutine profile inside the bundle carries the same evidence.)
		sigq := make(chan os.Signal, 1)
		signal.Notify(sigq, syscall.SIGQUIT)
		go func() {
			for range sigq {
				o.dumpOnSignal()
			}
		}()
		log.Printf("flight recorder armed: bundles in %s (SIGQUIT or POST /debug/flight/dump for a manual one)", *flightDir)
	}

	mcfg := agentproto.ManagerConfig{
		Logf:             log.Printf,
		Telemetry:        o.reg,
		Tracer:           o.tracer,
		Shards:           *shards,
		EvictAfterMisses: *evict,
	}
	if *stream {
		mcfg.Streaming = true
		mcfg.OnStreamUpdate = func(jobID string, round int, price float64, feasible bool) {
			o.recordStreamUpdate(price)
		}
	}
	if *restore && *statePath == "" {
		log.Print("mprd: -restore needs -state")
		return 1
	}
	m, err = agentproto.NewManager(*listen, mcfg)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer m.Close()
	if *restore {
		st, err := agentproto.ReadStateFile(*statePath)
		if err != nil {
			log.Printf("restoring state: %v", err)
			return 1
		}
		if err := m.RestoreState(st); err != nil {
			log.Printf("restoring state: %v", err)
			return 1
		}
		log.Printf("restored %d agents (last price %.4f) from %s; their last bids hold until they rebid",
			m.RestoredPending(), m.LastPrice(), *statePath)
	}
	if *statePath != "" {
		// Runs before the deferred m.Close (LIFO), so the roster is still
		// live when the snapshot is cut — on SIGTERM, stdin EOF, 'quit',
		// or one-shot completion alike.
		defer func() {
			st := m.SnapshotState(time.Now().UnixNano())
			if err := agentproto.WriteStateFile(*statePath, st); err != nil {
				log.Printf("writing state snapshot: %v", err)
				return
			}
			log.Printf("state snapshot (%d agents) written to %s", len(st.Agents), *statePath)
		}()
	}
	log.Printf("mprd listening on %s, waiting for %d agents", m.Addr(), *agents)

	if *metrics != "" {
		srv := &http.Server{Addr: *metrics, Handler: o.handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		defer srv.Close()
		log.Printf("telemetry on http://%s/metrics (/debug/market /debug/spans /debug/series /healthz /debug/pprof/)", *metrics)
	}

	deadline := time.Now().Add(*wait)
	for m.AgentCount() < *agents {
		if ctx.Err() != nil {
			log.Printf("interrupted while waiting for agents")
			return 0
		}
		if time.Now().After(deadline) {
			log.Printf("only %d of %d agents connected within %s", m.AgentCount(), *agents, *wait)
			return 1
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Printf("%d agents registered", m.AgentCount())

	if *target > 0 {
		runMarket(m, o, *target)
		m.Lift()
		return 0
	}

	// Interactive mode: stdin lines feed the market; a signal wins the
	// select and shuts the daemon down even mid-scan.
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-ctx.Done():
				return
			}
		}
		if err := sc.Err(); err != nil {
			log.Printf("reading stdin: %v", err)
		}
	}()
	fmt.Println("enter power reduction targets in watts, one per line ('lift' to end an emergency, 'quit' to exit):")
	for {
		select {
		case <-ctx.Done():
			log.Printf("signal received, shutting down")
			return 0
		case line, ok := <-lines:
			if !ok {
				return 0
			}
			line = strings.TrimSpace(line)
			switch {
			case line == "":
				// Blank lines are tolerated quietly (interactive convenience).
			case line == "quit":
				return 0
			case line == "lift":
				m.Lift()
				log.Printf("emergency lifted")
			default:
				w, err := strconv.ParseFloat(line, 64)
				if err != nil || w <= 0 {
					// Malformed target: report and keep serving — a typo must
					// not take the market down mid-emergency.
					log.Printf("ignoring malformed target %q: need a positive wattage, 'lift', or 'quit'", line)
					continue
				}
				runMarket(m, o, w)
			}
		}
	}
}

func runMarket(m *agentproto.Manager, o *obs, targetW float64) {
	out, err := m.RunMarket(targetW)
	if err != nil {
		log.Printf("market failed: %v", err)
		return
	}
	r := out.Result
	o.recordMarket(targetW, r)
	tbl := stats.NewTable(
		fmt.Sprintf("Market cleared: price %.4f, %d rounds, converged=%v, supplied %.1f W of %.1f W",
			r.Price, r.Rounds, r.Converged, r.SuppliedW, targetW),
		"job", "reduction (cores)", "payment rate")
	for job, red := range out.Orders {
		tbl.AddRow(job, red, r.Price*red)
	}
	fmt.Println(tbl.String())
}
