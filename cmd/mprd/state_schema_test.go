package main

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"testing"
	"time"

	"mpr/internal/agentproto"
	"mpr/internal/core"
)

// TestStateFileSchema validates an mprd state snapshot against the
// mprstate/v1 schema: strict decoding (field drift fails the test,
// forcing a schema bump), plus semantic floor checks on what -restore
// relies on. By default it generates a fresh snapshot from a tiny
// in-process market; point MPRD_STATE_JSON at a snapshot file to
// validate that instead — e.g. one a crashed daemon left behind.
func TestStateFileSchema(t *testing.T) {
	var data []byte
	if external := os.Getenv("MPRD_STATE_JSON"); external != "" {
		var err error
		data, err = os.ReadFile(external)
		if err != nil {
			t.Fatalf("reading state snapshot: %v", err)
		}
	} else {
		m, err := agentproto.NewManager("127.0.0.1:0", agentproto.ManagerConfig{
			RoundTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		for i, job := range []string{"state-a", "state-b"} {
			mgrEnd, agentEnd := net.Pipe()
			if err := m.ServeConn(mgrEnd); err != nil {
				t.Fatal(err)
			}
			a, err := agentproto.DialConn(agentEnd, agentproto.AgentConfig{
				JobID: job, Cores: 32, WattsPerCore: 125, MaxFrac: 0.4,
				Strategy: &core.StaticBidder{Fixed: core.Bid{Delta: 4 + float64(i), B: 1.5}},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
		}
		deadline := time.Now().Add(5 * time.Second)
		for m.AgentCount() < 2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if _, err := m.RunMarket(500); err != nil {
			t.Fatal(err)
		}
		data, err = json.Marshal(m.SnapshotState(time.Now().UnixNano()))
		if err != nil {
			t.Fatal(err)
		}
	}

	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var st agentproto.State
	if err := dec.Decode(&st); err != nil {
		t.Fatalf("strict decode: %v", err)
	}
	if err := st.Validate(); err != nil {
		t.Fatalf("semantic validation: %v", err)
	}
	if st.Schema != agentproto.StateSchema {
		t.Fatalf("schema = %q, want %q", st.Schema, agentproto.StateSchema)
	}
	if st.MarketSeq < 0 {
		t.Errorf("market_seq = %d, want ≥ 0", st.MarketSeq)
	}
	if st.MarketSeq > 0 && st.LastPrice < 0 {
		t.Errorf("last_price = %g, want ≥ 0 after %d markets", st.LastPrice, st.MarketSeq)
	}
	for i, a := range st.Agents {
		if i > 0 && st.Agents[i-1].JobID >= a.JobID {
			t.Errorf("agents not sorted by job_id at %d (%q ≥ %q)",
				i, st.Agents[i-1].JobID, a.JobID)
		}
		switch a.Wire {
		case "", agentproto.WireJSON, agentproto.WireBinary:
		default:
			t.Errorf("agent %s: unknown wire %q", a.JobID, a.Wire)
		}
	}
	// Generated path only: the cleared market must have left seed bids.
	if os.Getenv("MPRD_STATE_JSON") == "" {
		if st.MarketSeq != 1 {
			t.Errorf("market_seq = %d, want 1", st.MarketSeq)
		}
		if len(st.Agents) != 2 {
			t.Fatalf("agents = %d, want 2", len(st.Agents))
		}
		for _, a := range st.Agents {
			if !a.HasBid {
				t.Errorf("agent %s has no seed bid after a cleared market", a.JobID)
			}
		}
	}
}
