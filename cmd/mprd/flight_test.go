package main

import (
	"net"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mpr/internal/agentproto"
	"mpr/internal/core"
	"mpr/internal/telemetry/flight"
	"mpr/internal/telemetry/tsdb"
)

// bidFunc adapts a function to core.Bidder for test fleets.
type bidFunc func(price float64) core.Bid

func (f bidFunc) RespondBid(price float64) core.Bid { return f(price) }

func bundlesIn(t *testing.T, dir, reason string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "flight-*-"+reason+".json"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestObsShutdownIdempotent is the double-flush regression test for the
// exit paths: the signal path and the deferred drain may both call
// shutdown, and the second call must return immediately with the first
// call's result instead of deadlocking on the drained sampler — with
// every sink (trace log, series log, exit flight bundle) flushed exactly
// once.
func TestObsShutdownIdempotent(t *testing.T) {
	dir := t.TempDir()
	clock := tsdb.NewFakeClock(time.Unix(1000, 0))
	o, err := newObs(obsConfig{
		SampleInterval: time.Second,
		TraceLogPath:   filepath.Join(dir, "trace.jsonl"),
		SeriesLogPath:  filepath.Join(dir, "series.csv"),
		FlightDir:      dir,
		AgentCount:     func() int { return 1 },
		Clock:          clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "startup sample", func() bool { return o.agentsSeries.Total() >= 1 })

	// Two exit paths race shutdown; both must return the same result.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = o.shutdown()
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent shutdown deadlocked")
	}
	if errs[0] != errs[1] {
		t.Fatalf("shutdown errors diverge: %v vs %v", errs[0], errs[1])
	}
	// A third, sequential call is equally safe.
	if err := o.shutdown(); err != errs[0] {
		t.Fatalf("repeated shutdown = %v, want %v", err, errs[0])
	}
	// The drain ran once: startup sample + one final sample, no more.
	if got := o.agentsSeries.Total(); got != 2 {
		t.Fatalf("samples after double shutdown = %d, want 2 (drain ran twice?)", got)
	}
	// Exactly one exit bundle, schema-valid.
	exits := bundlesIn(t, dir, "exit")
	if len(exits) != 1 {
		t.Fatalf("exit bundles = %v, want exactly 1", exits)
	}
	if _, err := flight.ReadBundleFile(exits[0]); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionBurstDumpsOneBundle is the PR's acceptance path end to
// end: a real manager evicts a deliberately stalled agent out of a live
// fleet, the eviction lands in the mpr_mgr_evictions series via the
// obs sampler, the EvictionBurst rule fires on the next recordMarket,
// and the flight recorder writes exactly one schema-valid mprflight/v1
// bundle — cooldown suppressing the re-firings — containing the
// triggering firing, a goroutine profile, the eviction trace event, and
// the mpr_rt_* window.
func TestEvictionBurstDumpsOneBundle(t *testing.T) {
	dir := t.TempDir()
	clock := tsdb.NewFakeClock(time.Unix(2000, 0))
	// The sampler goroutine polls these closures from the moment newObs
	// returns, while the manager is still being constructed below — guard
	// the handoff.
	var (
		mmu sync.Mutex
		mgr *agentproto.Manager
	)
	getM := func() *agentproto.Manager { mmu.Lock(); defer mmu.Unlock(); return mgr }
	o, err := newObs(obsConfig{
		SampleInterval: time.Second,
		FlightDir:      dir,
		FlightCooldown: time.Minute,
		AgentCount: func() int {
			if m := getM(); m != nil {
				return m.AgentCount()
			}
			return 0
		},
		Evictions: func() int64 {
			if m := getM(); m != nil {
				return m.Evictions()
			}
			return 0
		},
		Clock: clock,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.shutdown()

	m, err := agentproto.NewManager("127.0.0.1:0", agentproto.ManagerConfig{
		RoundTimeout:     150 * time.Millisecond,
		EvictAfterMisses: 1,
		Telemetry:        o.reg,
		Tracer:           o.tracer,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mmu.Lock()
	mgr = m
	mmu.Unlock()

	dial := func(job string, strat core.Bidder) *agentproto.Agent {
		t.Helper()
		mgrEnd, agentEnd := net.Pipe()
		if err := m.ServeConn(mgrEnd); err != nil {
			t.Fatal(err)
		}
		a, err := agentproto.DialConn(agentEnd, agentproto.AgentConfig{
			JobID: job, Cores: 64, WattsPerCore: 125, MaxFrac: 0.4,
			Strategy: strat,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		return a
	}
	for _, job := range []string{"good-0", "good-1", "good-2"} {
		dial(job, bidFunc(func(price float64) core.Bid {
			return core.Bid{Delta: 25.6, B: 10}
		}))
	}
	// The stalled agent reads prices but never answers: its RespondBid
	// blocks past every round deadline, burning the one-miss budget.
	stall := make(chan struct{})
	t.Cleanup(func() { close(stall) })
	dial("stall", bidFunc(func(price float64) core.Bid {
		<-stall
		return core.Bid{}
	}))
	waitFor(t, "fleet registered", func() bool { return m.AgentCount() == 4 })

	out, err := m.RunMarket(5000)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "eviction", func() bool { return m.Evictions() == 1 })

	// One sampler tick captures the eviction delta; recordMarket then
	// evaluates the rules from the current second forward, so wait for the
	// delta-1 point (not the startup sample's zero) to land in the window.
	clock.Advance(time.Second)
	waitFor(t, "eviction sample", func() bool {
		data := o.store.Query(tsdb.Query{Name: seriesEvictions, Start: clock.Now().Unix()})
		return len(data) == 1 && len(data[0].Points) > 0 && data[0].Points[0].Max > 0
	})
	o.recordMarket(5000, out.Result)

	alertBundles := bundlesIn(t, dir, "alert")
	if len(alertBundles) != 1 {
		t.Fatalf("alert bundles after first firing = %v, want exactly 1", alertBundles)
	}
	// The rule keeps firing on subsequent markets; the cooldown holds.
	o.recordMarket(5000, out.Result)
	clock.Advance(time.Second)
	waitFor(t, "next sample", func() bool { return o.agentsSeries.Total() >= 3 })
	o.recordMarket(5000, out.Result)
	if got := bundlesIn(t, dir, "alert"); len(got) != 1 {
		t.Fatalf("alert bundles after re-firings = %v, want still exactly 1 (cooldown)", got)
	}

	b, err := flight.ReadBundleFile(alertBundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Trigger == nil || b.Trigger.Rule != "EvictionBurst" {
		t.Fatalf("bundle trigger = %+v, want EvictionBurst", b.Trigger)
	}
	if !strings.Contains(b.GoroutineProfile, "goroutine profile:") {
		t.Error("bundle is missing a goroutine profile")
	}
	foundEvict := false
	for _, e := range b.Events {
		if e.Name == "eviction" && strings.HasPrefix(e.Label, "stall:") {
			foundEvict = true
		}
	}
	if !foundEvict {
		t.Error("bundle events do not include the stall agent's eviction")
	}
	for _, name := range []string{flight.SeriesGoroutines, flight.SeriesHeapInuse, seriesEvictions} {
		found := false
		for _, sd := range b.Series {
			if sd.Name == name && len(sd.Points) > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("bundle series window missing %s", name)
		}
	}

	// The HTTP surface reflects the dump and serves the runtime snapshot.
	rec := httptest.NewRecorder()
	o.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"dumps": 1`) {
		t.Errorf("/debug/flight = %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	o.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rt", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"goroutines"`) {
		t.Errorf("/debug/rt = %d %s", rec.Code, rec.Body.String())
	}
}
