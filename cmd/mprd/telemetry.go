package main

import (
	"bufio"
	"context"
	"net/http"
	"os"
	"sync"
	"time"

	"mpr/internal/agentproto"
	"mpr/internal/core"
	"mpr/internal/telemetry"
	"mpr/internal/telemetry/alerts"
	"mpr/internal/telemetry/flight"
	"mpr/internal/telemetry/tsdb"
)

// Series the daemon samples (wall-clock Unix-second timestamps).
const (
	seriesAgentsConnected = "mpr_mgr_agents_connected"
	seriesMarketRounds    = "mpr_mgr_market_rounds"
	seriesMarketPrice     = "mpr_mgr_market_price"
	seriesMarketSupplied  = "mpr_mgr_market_supplied_w"
	seriesMarketUnmet     = "mpr_mgr_market_unmet_w"
	// seriesStreamPrice records every incrementally re-cleared price in
	// streaming mode (-stream): one point per incoming bid, not per round.
	seriesStreamPrice = "mpr_mgr_stream_price"
	// seriesBidRTTP99 tracks the p99 of the manager's price→bid HDR
	// histogram, sampled each tick once the market has registered it.
	seriesBidRTTP99 = "mpr_mgr_bid_rtt_p99_seconds"
	// seriesEvictions records slow-agent evictions (deadline-budget +
	// write-stall) per sampling interval — deltas, not the cumulative
	// count, so the EvictionBurst manager rule can tell a burst from an
	// old total. Visible in /debug/series next to the fleet size.
	seriesEvictions = "mpr_mgr_evictions"
)

// obsConfig parameterizes the daemon's observability runtime.
type obsConfig struct {
	// SampleInterval is the wall-clock sampling period (default 1s).
	SampleInterval time.Duration
	// TraceLogPath, when set, receives every trace event as one JSON
	// line (buffered; flushed at shutdown).
	TraceLogPath string
	// SeriesLogPath, when set, receives the full series store at
	// shutdown (CSV when the path ends in .csv, JSONL otherwise).
	SeriesLogPath string
	// AgentCount reports the number of connected agents.
	AgentCount func() int
	// Evictions reports the cumulative slow-agent evictions (optional).
	Evictions func() int64
	// FlightDir, when set, enables the black-box flight recorder: the
	// runtime-health sampler joins the tick, alerts.RuntimeRules join the
	// live scorecard, fresh firings trigger bundle dumps (per-rule
	// FlightCooldown), and shutdown parks a final exit-reason bundle.
	FlightDir string
	// FlightCooldown is the per-rule dump suppression window
	// (default 60s).
	FlightCooldown time.Duration
	// ConfigEcho is the flag echo stored in every flight bundle.
	ConfigEcho map[string]string
	// Logf receives alert firings and flush diagnostics.
	Logf func(format string, args ...interface{})
	// Clock drives the sampler (tests inject tsdb.FakeClock).
	Clock tsdb.Clock
}

// obs is mprd's observability runtime: registry, event tracer, series
// store, wall-clock ticker sampler, live alert evaluation, and the
// shutdown drain that flushes the trace/series sinks exactly once.
type obs struct {
	cfg    obsConfig
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	store  *tsdb.Store

	agentsSeries *tsdb.Series
	droppedGauge *telemetry.Gauge
	alertsFired  *telemetry.CounterFamily
	rules        []alerts.Rule
	flight       *flight.Recorder // nil when -flight is off (nil-safe)

	sampler   *tsdb.TickerSampler
	start     time.Time
	lastEvict int64
	traceFile *os.File
	traceBuf  *bufio.Writer

	cancel context.CancelFunc
	done   chan error

	// shutdown is idempotent: the signal path and the deferred drain in
	// run() may both reach it, and only one may cancel + await the
	// sampler (a second receive on done would deadlock forever).
	shutdownOnce sync.Once
	shutdownErr  error
}

// newObs builds and starts the runtime; call shutdown to drain it.
func newObs(c obsConfig) (*obs, error) {
	if c.SampleInterval <= 0 {
		c.SampleInterval = time.Second
	}
	if c.Clock == nil {
		c.Clock = tsdb.RealClock()
	}
	if c.AgentCount == nil {
		c.AgentCount = func() int { return 0 }
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	o := &obs{
		cfg:    c,
		reg:    telemetry.NewRegistry(),
		tracer: telemetry.NewTracer(1024),
		store:  tsdb.New(0),
		start:  c.Clock.Now(),
		rules:  alerts.ManagerRules(),
	}
	o.agentsSeries = o.store.Series(seriesAgentsConnected)
	o.droppedGauge = o.reg.Gauge("mpr_mgr_trace_dropped_events",
		"Trace events overwritten by the ring before being scraped.")
	o.alertsFired = o.reg.CounterFamily("mpr_mgr_alerts_total",
		"SLO alert firings by rule.", "rule")
	if c.TraceLogPath != "" {
		f, err := os.Create(c.TraceLogPath)
		if err != nil {
			return nil, err
		}
		o.traceFile = f
		o.traceBuf = bufio.NewWriter(f)
		o.tracer.SetSink(o.traceBuf)
	}
	if c.FlightDir != "" {
		rec, err := flight.New(flight.Config{
			Registry:   o.reg,
			Tracer:     o.tracer,
			Store:      o.store,
			Dir:        c.FlightDir,
			Cooldown:   c.FlightCooldown,
			ConfigEcho: c.ConfigEcho,
			Clock:      c.Clock.Now,
			Logf:       c.Logf,
		})
		if err != nil {
			return nil, err
		}
		o.flight = rec
		// With the runtime sampler feeding mpr_rt_* series, the process-
		// health rules have data to evaluate; without -flight they would
		// be inert anyway (the series never exist).
		o.rules = append(o.rules, alerts.RuntimeRules()...)
	}
	o.sampler = &tsdb.TickerSampler{
		Interval: c.SampleInterval,
		Clock:    c.Clock,
		Sample:   o.sample,
		Flush:    o.flush,
	}
	ctx, cancel := context.WithCancel(context.Background())
	o.cancel = cancel
	o.done = make(chan error, 1)
	go func() { o.done <- o.sampler.Run(ctx) }()
	return o, nil
}

// sample records one wall-clock observation.
func (o *obs) sample(now time.Time) {
	o.flight.SampleRuntime(now)
	o.agentsSeries.Append(now.Unix(), float64(o.cfg.AgentCount()))
	if o.cfg.Evictions != nil {
		cur := o.cfg.Evictions()
		o.store.Series(seriesEvictions).Append(now.Unix(), float64(cur-o.lastEvict))
		o.lastEvict = cur
	}
	o.droppedGauge.Set(float64(o.tracer.Dropped()))
	// The agentproto manager registers its RTT histogram lazily, so look
	// it up (never create) each tick and sample the tail once it has data.
	if h := o.reg.FindHDR(agentproto.MetricBidRTT); h != nil {
		if snap := h.Snapshot(); snap.Count > 0 {
			o.store.Series(seriesBidRTTP99).Append(now.Unix(), snap.Quantile(0.99))
		}
	}
}

// flush drains the sinks. The sampler calls it exactly once, after the
// final shutdown sample.
func (o *obs) flush() error {
	var first error
	if o.traceBuf != nil {
		if err := o.traceBuf.Flush(); err != nil && first == nil {
			first = err
		}
		if err := o.traceFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	if o.cfg.SeriesLogPath != "" {
		if err := tsdb.ExportFile(o.store, tsdb.Query{Resolution: tsdb.ResRaw}, o.cfg.SeriesLogPath); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// shutdown stops the sampler, waits for the final sample + flush, dumps
// the flight recorder's exit bundle, and returns the flush error.
// Idempotent: repeated calls (signal path racing the deferred drain)
// return the first call's error without re-draining.
func (o *obs) shutdown() error {
	o.shutdownOnce.Do(func() {
		o.cancel()
		o.shutdownErr = <-o.done
		// The exit bundle is cut after the drain so it carries the final
		// sample; Dump no-ops when -flight is off.
		if _, err := o.flight.Dump(o.cfg.Clock.Now(), flight.ReasonExit, nil); err != nil && o.shutdownErr == nil {
			o.shutdownErr = err
		}
	})
	return o.shutdownErr
}

// dumpOnSignal writes a signal-reason bundle — mprd's SIGQUIT handler,
// the "open the black box without landing the plane" trigger. No-op
// when -flight is off.
func (o *obs) dumpOnSignal() {
	if path, err := o.flight.Dump(o.cfg.Clock.Now(), flight.ReasonSignal, nil); err == nil && path != "" {
		o.cfg.Logf("SIGQUIT: flight bundle written to %s", path)
	}
}

// health is the /healthz snapshot.
func (o *obs) health() telemetry.Health {
	now := o.cfg.Clock.Now()
	return telemetry.Health{
		Status:               "ok",
		UptimeSeconds:        now.Sub(o.start).Seconds(),
		AgentsConnected:      o.cfg.AgentCount(),
		LastSampleAgeSeconds: o.sampler.LastSampleAge(now).Seconds(),
	}
}

// handler is the daemon's full HTTP surface: /metrics, /debug/market,
// /debug/spans, /debug/series, /debug/flight, /debug/rt, /healthz, and
// /debug/pprof. The flight endpoints are mounted even without -flight —
// a nil recorder serves enabled=false and refuses dumps — so probes
// never depend on configuration.
func (o *obs) handler() http.Handler {
	return telemetry.NewHandler(telemetry.HandlerConfig{
		Registry: o.reg,
		Tracer:   o.tracer,
		Series:   tsdb.Handler(o.store),
		Flight:   o.flight.Handler(),
		RT:       o.flight.RTHandler(),
		Health:   o.health,
		Pprof:    true,
	})
}

// recordStreamUpdate samples one incremental re-clear into the
// stream-price series — the per-bid observability of streaming mode.
func (o *obs) recordStreamUpdate(price float64) {
	o.store.Series(seriesStreamPrice).Append(o.cfg.Clock.Now().Unix(), price)
}

// recordMarket samples a finished market into the series store and
// evaluates the live SLO rules over the samples just written, logging
// and counting any firing.
func (o *obs) recordMarket(targetW float64, r *core.ClearingResult) {
	t := o.cfg.Clock.Now().Unix()
	o.store.Series(seriesMarketRounds).Append(t, float64(r.Rounds))
	o.store.Series(seriesMarketPrice).Append(t, r.Price)
	o.store.Series(seriesMarketSupplied).Append(t, r.SuppliedW)
	unmet := targetW - r.SuppliedW
	if unmet < 0 {
		unmet = 0
	}
	o.store.Series(seriesMarketUnmet).Append(t, unmet)
	firings := alerts.EvalStore(o.rules, o.store, t, 0)
	for _, f := range firings {
		o.alertsFired.With(f.Rule).Inc()
		o.cfg.Logf("%s — %s", f, f.Help)
	}
	// Fresh firings (per-rule cooldown) trip the black box: one bundle
	// carrying the trigger, the trace window, and the series history.
	if path, err := o.flight.OnFirings(o.cfg.Clock.Now(), firings); err != nil {
		o.cfg.Logf("flight dump: %v", err)
	} else if path != "" {
		o.cfg.Logf("alert flight bundle written to %s", path)
	}
}
