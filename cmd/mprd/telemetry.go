package main

import (
	"bufio"
	"context"
	"net/http"
	"os"
	"time"

	"mpr/internal/agentproto"
	"mpr/internal/core"
	"mpr/internal/telemetry"
	"mpr/internal/telemetry/alerts"
	"mpr/internal/telemetry/tsdb"
)

// Series the daemon samples (wall-clock Unix-second timestamps).
const (
	seriesAgentsConnected = "mpr_mgr_agents_connected"
	seriesMarketRounds    = "mpr_mgr_market_rounds"
	seriesMarketPrice     = "mpr_mgr_market_price"
	seriesMarketSupplied  = "mpr_mgr_market_supplied_w"
	seriesMarketUnmet     = "mpr_mgr_market_unmet_w"
	// seriesStreamPrice records every incrementally re-cleared price in
	// streaming mode (-stream): one point per incoming bid, not per round.
	seriesStreamPrice = "mpr_mgr_stream_price"
	// seriesBidRTTP99 tracks the p99 of the manager's price→bid HDR
	// histogram, sampled each tick once the market has registered it.
	seriesBidRTTP99 = "mpr_mgr_bid_rtt_p99_seconds"
	// seriesEvictions records slow-agent evictions (deadline-budget +
	// write-stall) per sampling interval — deltas, not the cumulative
	// count, so the EvictionBurst manager rule can tell a burst from an
	// old total. Visible in /debug/series next to the fleet size.
	seriesEvictions = "mpr_mgr_evictions"
)

// obsConfig parameterizes the daemon's observability runtime.
type obsConfig struct {
	// SampleInterval is the wall-clock sampling period (default 1s).
	SampleInterval time.Duration
	// TraceLogPath, when set, receives every trace event as one JSON
	// line (buffered; flushed at shutdown).
	TraceLogPath string
	// SeriesLogPath, when set, receives the full series store at
	// shutdown (CSV when the path ends in .csv, JSONL otherwise).
	SeriesLogPath string
	// AgentCount reports the number of connected agents.
	AgentCount func() int
	// Evictions reports the cumulative slow-agent evictions (optional).
	Evictions func() int64
	// Logf receives alert firings and flush diagnostics.
	Logf func(format string, args ...interface{})
	// Clock drives the sampler (tests inject tsdb.FakeClock).
	Clock tsdb.Clock
}

// obs is mprd's observability runtime: registry, event tracer, series
// store, wall-clock ticker sampler, live alert evaluation, and the
// shutdown drain that flushes the trace/series sinks exactly once.
type obs struct {
	cfg    obsConfig
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	store  *tsdb.Store

	agentsSeries *tsdb.Series
	droppedGauge *telemetry.Gauge
	alertsFired  *telemetry.CounterFamily
	rules        []alerts.Rule

	sampler   *tsdb.TickerSampler
	start     time.Time
	lastEvict int64
	traceFile *os.File
	traceBuf  *bufio.Writer

	cancel context.CancelFunc
	done   chan error
}

// newObs builds and starts the runtime; call shutdown to drain it.
func newObs(c obsConfig) (*obs, error) {
	if c.SampleInterval <= 0 {
		c.SampleInterval = time.Second
	}
	if c.Clock == nil {
		c.Clock = tsdb.RealClock()
	}
	if c.AgentCount == nil {
		c.AgentCount = func() int { return 0 }
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	o := &obs{
		cfg:    c,
		reg:    telemetry.NewRegistry(),
		tracer: telemetry.NewTracer(1024),
		store:  tsdb.New(0),
		start:  c.Clock.Now(),
		rules:  alerts.ManagerRules(),
	}
	o.agentsSeries = o.store.Series(seriesAgentsConnected)
	o.droppedGauge = o.reg.Gauge("mpr_mgr_trace_dropped_events",
		"Trace events overwritten by the ring before being scraped.")
	o.alertsFired = o.reg.CounterFamily("mpr_mgr_alerts_total",
		"SLO alert firings by rule.", "rule")
	if c.TraceLogPath != "" {
		f, err := os.Create(c.TraceLogPath)
		if err != nil {
			return nil, err
		}
		o.traceFile = f
		o.traceBuf = bufio.NewWriter(f)
		o.tracer.SetSink(o.traceBuf)
	}
	o.sampler = &tsdb.TickerSampler{
		Interval: c.SampleInterval,
		Clock:    c.Clock,
		Sample:   o.sample,
		Flush:    o.flush,
	}
	ctx, cancel := context.WithCancel(context.Background())
	o.cancel = cancel
	o.done = make(chan error, 1)
	go func() { o.done <- o.sampler.Run(ctx) }()
	return o, nil
}

// sample records one wall-clock observation.
func (o *obs) sample(now time.Time) {
	o.agentsSeries.Append(now.Unix(), float64(o.cfg.AgentCount()))
	if o.cfg.Evictions != nil {
		cur := o.cfg.Evictions()
		o.store.Series(seriesEvictions).Append(now.Unix(), float64(cur-o.lastEvict))
		o.lastEvict = cur
	}
	o.droppedGauge.Set(float64(o.tracer.Dropped()))
	// The agentproto manager registers its RTT histogram lazily, so look
	// it up (never create) each tick and sample the tail once it has data.
	if h := o.reg.FindHDR(agentproto.MetricBidRTT); h != nil {
		if snap := h.Snapshot(); snap.Count > 0 {
			o.store.Series(seriesBidRTTP99).Append(now.Unix(), snap.Quantile(0.99))
		}
	}
}

// flush drains the sinks. The sampler calls it exactly once, after the
// final shutdown sample.
func (o *obs) flush() error {
	var first error
	if o.traceBuf != nil {
		if err := o.traceBuf.Flush(); err != nil && first == nil {
			first = err
		}
		if err := o.traceFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	if o.cfg.SeriesLogPath != "" {
		if err := tsdb.ExportFile(o.store, tsdb.Query{Resolution: tsdb.ResRaw}, o.cfg.SeriesLogPath); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// shutdown stops the sampler, waits for the final sample + flush, and
// returns the flush error. Safe to call once.
func (o *obs) shutdown() error {
	o.cancel()
	return <-o.done
}

// health is the /healthz snapshot.
func (o *obs) health() telemetry.Health {
	now := o.cfg.Clock.Now()
	return telemetry.Health{
		Status:               "ok",
		UptimeSeconds:        now.Sub(o.start).Seconds(),
		AgentsConnected:      o.cfg.AgentCount(),
		LastSampleAgeSeconds: o.sampler.LastSampleAge(now).Seconds(),
	}
}

// handler is the daemon's full HTTP surface: /metrics, /debug/market,
// /debug/spans, /debug/series, /healthz, and /debug/pprof.
func (o *obs) handler() http.Handler {
	return telemetry.NewHandler(telemetry.HandlerConfig{
		Registry: o.reg,
		Tracer:   o.tracer,
		Series:   tsdb.Handler(o.store),
		Health:   o.health,
		Pprof:    true,
	})
}

// recordStreamUpdate samples one incremental re-clear into the
// stream-price series — the per-bid observability of streaming mode.
func (o *obs) recordStreamUpdate(price float64) {
	o.store.Series(seriesStreamPrice).Append(o.cfg.Clock.Now().Unix(), price)
}

// recordMarket samples a finished market into the series store and
// evaluates the live SLO rules over the samples just written, logging
// and counting any firing.
func (o *obs) recordMarket(targetW float64, r *core.ClearingResult) {
	t := o.cfg.Clock.Now().Unix()
	o.store.Series(seriesMarketRounds).Append(t, float64(r.Rounds))
	o.store.Series(seriesMarketPrice).Append(t, r.Price)
	o.store.Series(seriesMarketSupplied).Append(t, r.SuppliedW)
	unmet := targetW - r.SuppliedW
	if unmet < 0 {
		unmet = 0
	}
	o.store.Series(seriesMarketUnmet).Append(t, unmet)
	for _, f := range alerts.EvalStore(o.rules, o.store, t, 0) {
		o.alertsFired.With(f.Rule).Inc()
		o.cfg.Logf("%s — %s", f, f.Help)
	}
}
