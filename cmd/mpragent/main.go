// Command mpragent is an autonomous MPR user bidding agent: it registers
// one job with the market manager (cmd/mprd) and answers every price
// announcement with the bid that maximizes the user's net gain, based on
// the job's application profile. The cost model stays local — only supply
// function parameters cross the wire.
//
// Usage:
//
//	mpragent -connect 127.0.0.1:7946 -job job42 -app XSBench -cores 16
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mpr/internal/agentproto"
	"mpr/internal/core"
	"mpr/internal/perf"
)

func main() {
	var (
		connect = flag.String("connect", "127.0.0.1:7946", "manager address")
		job     = flag.String("job", "", "job identifier (required)")
		app     = flag.String("app", "XSBench", "application profile name")
		cores   = flag.Float64("cores", 16, "job core allocation")
		alpha   = flag.Float64("alpha", 1, "perceived cost coefficient (>= 1)")
		watts   = flag.Float64("watts", 125, "dynamic watts per core")
		quad    = flag.Bool("quadratic", false, "use quadratic instead of linear cost")
		wire    = flag.String("wire", "json", "wire format: json (lines) or binary (length-prefixed frames)")
	)
	flag.Parse()
	if *job == "" {
		fmt.Fprintln(os.Stderr, "-job is required")
		os.Exit(2)
	}
	prof, err := perf.ProfileByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "available profiles:")
		for _, p := range perf.AllProfiles() {
			fmt.Fprintf(os.Stderr, "  %s (%s)\n", p.Name, p.Device)
		}
		os.Exit(2)
	}
	shape := perf.CostLinear
	if *quad {
		shape = perf.CostQuadratic
	}
	model := perf.NewCostModel(prof, *alpha, shape)

	agent, err := agentproto.Dial(*connect, agentproto.AgentConfig{
		JobID:        *job,
		Cores:        *cores,
		WattsPerCore: *watts,
		MaxFrac:      prof.MaxReduction(),
		Strategy:     &core.RationalBidder{Cores: *cores, Model: model},
		Wire:         *wire,
		OnOrder: func(red, price, pay float64) {
			cost := *cores * model.Cost(red / *cores)
			log.Printf("order: reduce %.3f cores at price %.4f → payment %.4f, cost %.4f, net gain %.4f",
				red, price, pay, cost, pay-cost)
		},
		OnLift: func() { log.Printf("emergency lifted — back to full speed") },
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("agent %s (%s, %.0f cores) connected to %s", *job, *app, *cores, *connect)
	<-agent.Done()
	if err := agent.Err(); err != nil {
		log.Fatal(err)
	}
}
