// Command mprload is the deterministic load harness for the interactive
// MPR market: it drives tens of thousands of synthetic bidding agents
// from one process against either an in-process manager (selfhost, the
// default — agents attach over fd-free net.Pipe transports, so 50k+
// agents fit inside ordinary descriptor limits) or an external mprd
// (-connect, TCP).
//
// While markets clear, every agent records its observed round turnaround
// into one shared HDR histogram; the harness samples p50/p99/p999 plus
// the clearing price, fleet-attendance, and runtime-health (mpr_rt_*)
// series into an in-memory tsdb, evaluates the alerts.LoadRules SLO
// scorecard live over those series, and finally emits a versioned
// mprload/report/v3 JSON artifact (-report) with the latency digests and
// SLO verdicts. When the scorecard fails (exit 3), an mprflight/v1
// black-box bundle — goroutine profile, trace window, series history,
// the triggering firing — is parked next to the report (-flight) and
// named in its flight_bundle field, so a failed soak carries its own
// diagnosis.
//
// Examples:
//
//	mprload -agents 50000 -duration 10s -report LOAD.json
//	mprload -agents 64 -connect 127.0.0.1:7946 -duration 2s -report -
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"mpr/internal/telemetry"
	"mpr/internal/telemetry/flight"
	"mpr/internal/telemetry/tsdb"
)

func main() {
	var (
		agents    = flag.Int("agents", 1000, "synthetic agents to drive")
		connect   = flag.String("connect", "", "external manager address (empty = selfhost an in-process manager)")
		transport = flag.String("transport", "pipe", "selfhost agent transport: pipe (fd-free) or tcp")
		duration  = flag.Duration("duration", 5*time.Second, "how long to run")
		mode      = flag.String("mode", "closed", "market arrival: open (one per -interval) or closed (back-to-back)")
		interval  = flag.Duration("interval", 250*time.Millisecond, "open-loop market period")
		dist      = flag.String("dist", "lognormal", "reluctance distribution: uniform, lognormal, or bimodal")
		seed      = flag.Int64("seed", 1, "base seed for the deterministic fleet")
		workers   = flag.Int("workers", 0, "dial fan-out workers (0 = GOMAXPROCS)")
		target    = flag.Float64("target", 0.25, "emergency target as a fraction of the fleet's max reduction W")
		stream    = flag.Bool("stream", false, "selfhost manager in streaming (incremental clear) mode")
		jitter    = flag.Float64("jitter", 0.1, "per-round relative bid perturbation in [0,1]")
		sample    = flag.Duration("sample", 250*time.Millisecond, "series sampling period")
		rtimeout  = flag.Duration("rtimeout", 2*time.Second, "selfhost per-round bid timeout")
		wire      = flag.String("wire", "json", "agent wire format: json (lines) or binary (length-prefixed frames)")
		shards    = flag.Int("shards", 0, "selfhost manager connection shards (0 = default)")
		report    = flag.String("report", "", "write the mprload/report/v3 JSON artifact here (- = stdout)")
		flightOut = flag.String("flight", "", "write an mprflight/v1 bundle here when the SLO scorecard fails (empty = <report>.flight.json next to a file -report; 'none' disables)")
		metrics   = flag.String("metrics", "", "serve /metrics, /debug/* on this address while running")
		quiet     = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}
	cfg := loadConfig{
		Agents:       *agents,
		Connect:      *connect,
		Transport:    *transport,
		Mode:         *mode,
		Duration:     *duration,
		Interval:     *interval,
		Dist:         *dist,
		Seed:         *seed,
		Workers:      *workers,
		TargetFrac:   *target,
		Stream:       *stream,
		Jitter:       *jitter,
		Sample:       *sample,
		RoundTimeout: *rtimeout,
		Wire:         *wire,
		Shards:       *shards,
		Logf:         logf,
	}
	h, err := newHarness(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *metrics != "" {
		handler := telemetry.NewHandler(telemetry.HandlerConfig{
			Registry: h.reg,
			Tracer:   h.tracer,
			Series:   tsdb.Handler(h.store),
			Flight:   h.flight.Handler(),
			RT:       h.flight.RTHandler(),
			Pprof:    true,
		})
		go func() {
			if err := http.ListenAndServe(*metrics, handler); err != nil {
				logf("metrics server: %v", err)
			}
		}()
	}

	logf("connecting %d agents (%s)…", cfg.Agents, transportLabel(cfg))
	dialStart := time.Now()
	if err := h.connect(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer h.close()
	logf("%d/%d agents connected in %.2fs (%d dial errors), target %.0f W",
		len(h.agents), cfg.Agents, time.Since(dialStart).Seconds(), h.dialErrors.Load(), h.targetW)

	rep, err := h.run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logf("done: %d markets (%d converged, %d errors), round-trip p99 %.4fs p999 %.4fs, SLO firings %d",
		rep.Markets.Runs, rep.Markets.Converged, rep.Markets.Errors,
		rep.RoundTripSeconds.P99, rep.RoundTripSeconds.P999, len(rep.SLO.Firings))

	// On SLO failure, park the black box next to the report before the
	// report is written, so the verdict names its evidence — the exit-3
	// CI path becomes self-diagnosing.
	if !rep.SLO.Passed {
		path := *flightOut
		if path == "" && *report != "" && *report != "-" {
			path = *report + ".flight.json"
		}
		if path != "" && path != "none" {
			trigger := &rep.SLO.Firings[0]
			if err := h.flight.DumpTo(time.Now(), path, flight.ReasonSLO, trigger); err != nil {
				fmt.Fprintln(os.Stderr, err)
			} else {
				rep.FlightBundle = path
				logf("SLO failed: flight bundle written to %s", path)
			}
		}
	}

	if *report != "" {
		if err := writeReport(rep, *report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !rep.SLO.Passed {
		os.Exit(3)
	}
}

func transportLabel(cfg loadConfig) string {
	if cfg.Connect != "" {
		return "tcp → " + cfg.Connect
	}
	return "selfhost/" + cfg.Transport
}
