package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mpr/internal/agentproto"
	"mpr/internal/core"
	"mpr/internal/runner"
	"mpr/internal/telemetry"
	"mpr/internal/telemetry/alerts"
	"mpr/internal/telemetry/flight"
	"mpr/internal/telemetry/hdr"
	"mpr/internal/telemetry/tsdb"
)

// Series the harness samples (wall-clock Unix-second timestamps). The
// rtt quantile series are what alerts.LoadRules watch.
const (
	seriesRTTP50     = "mpr_load_rtt_p50_seconds"
	seriesRTTP99     = "mpr_load_rtt_p99_seconds"
	seriesRTTP999    = "mpr_load_rtt_p999_seconds"
	seriesClearPrice = "mpr_load_clear_price"
	seriesAgentsFrac = "mpr_load_agents_connected_frac"
)

// metricRoundTrip is the shared agent-observed round-turnaround HDR
// histogram every synthetic agent records into.
const metricRoundTrip = "mpr_load_round_trip_seconds"

// loadConfig is the resolved run configuration.
type loadConfig struct {
	Agents       int
	Connect      string // empty = selfhost an in-process manager
	Transport    string // selfhost attachment: "pipe" (fd-free) or "tcp"
	Mode         string // "open" (markets on a fixed cadence) or "closed" (back-to-back)
	Duration     time.Duration
	Interval     time.Duration // open-loop market period
	Dist         string        // reluctance distribution: uniform | lognormal | bimodal
	Seed         int64
	Workers      int     // dial fan-out pool (0 = GOMAXPROCS)
	TargetFrac   float64 // emergency target as a fraction of the fleet's max reduction W
	Stream       bool    // selfhost manager in streaming (incremental clear) mode
	Jitter       float64 // per-round relative bid perturbation, keeps prices moving
	Sample       time.Duration
	RoundTimeout time.Duration
	Wire         string // agent wire: "json" (lines) or "binary" (length-prefixed frames)
	Shards       int    // selfhost manager connection shards (0 = default)
	Logf         func(format string, args ...interface{})
}

func (c *loadConfig) normalize() error {
	if c.Agents < 1 {
		return fmt.Errorf("mprload: -agents must be ≥ 1")
	}
	switch c.Transport {
	case "pipe", "tcp":
	default:
		return fmt.Errorf("mprload: -transport must be pipe or tcp")
	}
	switch c.Mode {
	case "open", "closed":
	default:
		return fmt.Errorf("mprload: -mode must be open or closed")
	}
	switch c.Dist {
	case "uniform", "lognormal", "bimodal":
	default:
		return fmt.Errorf("mprload: -dist must be uniform, lognormal, or bimodal")
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.TargetFrac <= 0 || c.TargetFrac >= 1 {
		return fmt.Errorf("mprload: -target must be in (0,1)")
	}
	if c.Sample <= 0 {
		c.Sample = 250 * time.Millisecond
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 2 * time.Second
	}
	if c.Wire == "" {
		c.Wire = agentproto.WireJSON
	}
	switch c.Wire {
	case agentproto.WireJSON, agentproto.WireBinary:
	default:
		return fmt.Errorf("mprload: -wire must be json or binary")
	}
	if c.Shards < 0 {
		return fmt.Errorf("mprload: -shards must be ≥ 0")
	}
	if c.Jitter < 0 || c.Jitter > 1 {
		return fmt.Errorf("mprload: -jitter must be in [0,1]")
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return nil
}

// loadBidder is the synthetic agent strategy: a supply-function bid with
// per-agent reluctance drawn from the configured distribution, plus a
// small per-round jitter so consecutive markets keep re-clearing. It
// doubles as the latency probe — each RespondBid measures the turnaround
// since the previous one (one full market round: the manager collected
// every bid, cleared, and broadcast the next price). OnOrder resets the
// clock so inter-market gaps are never counted. Both callbacks run on
// the agent's loop goroutine, so the fields need no lock.
type loadBidder struct {
	delta  float64
	b      float64
	jitter float64
	rng    *rand.Rand
	hist   *hdr.Histogram
	lastNS int64
}

func (l *loadBidder) RespondBid(price float64) core.Bid {
	now := time.Now().UnixNano()
	if l.lastNS != 0 {
		l.hist.Record(float64(now-l.lastNS) / 1e9)
	}
	l.lastNS = now
	b := l.b
	if l.jitter > 0 {
		b *= 1 + l.jitter*(2*l.rng.Float64()-1)
		if b < 0 {
			b = 0
		}
	}
	return core.Bid{Delta: l.delta, B: b}
}

func (l *loadBidder) reset() { l.lastNS = 0 }

// agentSpec is one deterministic synthetic job. The same (seed, index)
// always yields the same spec, whatever the worker pool did.
type agentSpec struct {
	JobID        string
	Cores        float64
	WattsPerCore float64
	MaxFrac      float64
	Reluctance   float64
}

// specFor derives agent i's spec from the base seed alone.
func specFor(baseSeed int64, i int, dist string) agentSpec {
	rng := rand.New(rand.NewSource(runner.CellSeed(baseSeed, fmt.Sprintf("agent-%d", i))))
	s := agentSpec{
		JobID:        fmt.Sprintf("load-%06d", i),
		Cores:        16 + math.Floor(112*rng.Float64()),
		WattsPerCore: 125,
		MaxFrac:      0.2 + 0.4*rng.Float64(),
	}
	switch dist {
	case "uniform":
		s.Reluctance = rng.Float64()
	case "lognormal":
		// σ = 1, mean-corrected so E[r] = 1: a long reluctant tail over a
		// mostly willing fleet.
		s.Reluctance = math.Exp(rng.NormFloat64() - 0.5)
	case "bimodal":
		if rng.Float64() < 0.5 {
			s.Reluctance = 0.1 + 0.1*rng.Float64() // willing mode
		} else {
			s.Reluctance = 1.5 + 0.5*rng.Float64() // reluctant mode
		}
	}
	return s
}

// refPrice anchors reluctance to bid units: B = refPrice·Δ·r, so an
// agent with r = 1 withholds its entire Δ at the reference price.
const refPrice = 0.5

// harness owns one load run end to end.
type harness struct {
	cfg    loadConfig
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	store  *tsdb.Store
	rtt    *hdr.Histogram
	rules  []alerts.Rule
	flight *flight.Recorder

	mgr    *agentproto.Manager // selfhost only
	agents []*agentproto.Agent

	targetW    float64
	dialErrors atomic.Int64
	orders     atomic.Int64 // sentinel agent's order count (markets observed)

	priceMu sync.Mutex
	price   clearPriceSection

	sloMu   sync.Mutex
	dedup   *alerts.Deduper // window 0: every distinct violation reported once
	firings []alerts.Firing
	evals   int

	startUnix int64
	sampler   *tsdb.TickerSampler
}

func newHarness(cfg loadConfig) (*harness, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	h := &harness{
		cfg:    cfg,
		reg:    telemetry.NewRegistry(),
		tracer: telemetry.NewTracer(4096),
		store:  tsdb.New(0),
		rules:  alerts.LoadRules(),
		dedup:  alerts.NewDeduper(0),
	}
	h.rtt = h.reg.HDR(metricRoundTrip, "Agent-observed market round turnaround in seconds.")
	// The harness always carries a flight recorder (no dump directory —
	// bundles are written explicitly via DumpTo on SLO failure): its
	// runtime sampler records the mpr_rt_* series during the run, which
	// is exactly the 100k-goroutine stack-memory measurement the C1M
	// roadmap item asks for.
	rec, err := flight.New(flight.Config{
		Registry: h.reg,
		Tracer:   h.tracer,
		Store:    h.store,
		Logf:     cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	h.flight = rec
	return h, nil
}

// connect builds the deterministic fleet and attaches it — to an
// in-process manager (selfhost) or to -connect. Dial failures are
// counted, not fatal: a load harness reports attrition instead of dying
// with it.
func (h *harness) connect() error {
	if h.cfg.Connect == "" {
		mgr, err := agentproto.NewManager("127.0.0.1:0", agentproto.ManagerConfig{
			RoundTimeout: h.cfg.RoundTimeout,
			Telemetry:    h.reg,
			Tracer:       h.tracer,
			Streaming:    h.cfg.Stream,
			Shards:       h.cfg.Shards,
		})
		if err != nil {
			return err
		}
		h.mgr = mgr
	}

	specs := make([]agentSpec, h.cfg.Agents)
	var totalReductionW float64
	for i := range specs {
		specs[i] = specFor(h.cfg.Seed, i, h.cfg.Dist)
		totalReductionW += specs[i].Cores * specs[i].MaxFrac * specs[i].WattsPerCore
	}
	h.targetW = h.cfg.TargetFrac * totalReductionW

	agents, err := runner.MapN(h.cfg.Workers, len(specs), func(i int) (*agentproto.Agent, error) {
		a, err := h.dialOne(i, specs[i])
		if err != nil {
			h.dialErrors.Add(1)
			h.cfg.Logf("dial agent %d: %v", i, err)
			return nil, nil // tolerated; reported as attrition
		}
		return a, nil
	})
	if err != nil {
		return err
	}
	h.agents = h.agents[:0]
	for _, a := range agents {
		if a != nil {
			h.agents = append(h.agents, a)
		}
	}
	if len(h.agents) == 0 {
		return fmt.Errorf("mprload: no agents connected (%d dial errors)", h.dialErrors.Load())
	}
	if h.mgr != nil {
		// DialConn returns once the hello is written, but registration
		// happens on the manager's serve goroutine — wait for the roster
		// to settle so the first markets don't run over an empty fleet.
		deadline := time.Now().Add(30 * time.Second)
		for h.mgr.AgentCount() < len(h.agents) {
			if time.Now().After(deadline) {
				return fmt.Errorf("mprload: only %d/%d agents registered after 30s",
					h.mgr.AgentCount(), len(h.agents))
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

func (h *harness) dialOne(i int, spec agentSpec) (*agentproto.Agent, error) {
	bidder := &loadBidder{
		delta:  spec.Cores * spec.MaxFrac,
		b:      refPrice * spec.Cores * spec.MaxFrac * spec.Reluctance,
		jitter: h.cfg.Jitter,
		rng:    rand.New(rand.NewSource(runner.CellSeed(h.cfg.Seed, fmt.Sprintf("jitter-%d", i)))),
		hist:   h.rtt,
	}
	sentinel := i == 0
	cfg := agentproto.AgentConfig{
		JobID:        spec.JobID,
		Cores:        spec.Cores,
		WattsPerCore: spec.WattsPerCore,
		MaxFrac:      spec.MaxFrac,
		Strategy:     bidder,
		Wire:         h.cfg.Wire,
		OnOrder: func(_, price, _ float64) {
			bidder.reset()
			if sentinel {
				h.orders.Add(1)
				h.recordClearPrice(price)
			}
		},
		OnLift: func() { bidder.reset() },
	}
	if h.cfg.Connect != "" {
		return agentproto.Dial(h.cfg.Connect, cfg)
	}
	if h.cfg.Transport == "tcp" {
		return agentproto.Dial(h.mgr.Addr(), cfg)
	}
	mgrEnd, agentEnd := net.Pipe()
	if err := h.mgr.ServeConn(mgrEnd); err != nil {
		return nil, err
	}
	return agentproto.DialConn(agentEnd, cfg)
}

func (h *harness) recordClearPrice(price float64) {
	h.priceMu.Lock()
	if h.price.Samples == 0 || price < h.price.Min {
		h.price.Min = price
	}
	if h.price.Samples == 0 || price > h.price.Max {
		h.price.Max = price
	}
	h.price.Last = price
	h.price.Samples++
	h.priceMu.Unlock()
}

// liveAgents counts the fleet still attached.
func (h *harness) liveAgents() int {
	n := 0
	for _, a := range h.agents {
		select {
		case <-a.Done():
		default:
			n++
		}
	}
	return n
}

// sample appends one wall-clock observation of every series and runs the
// live SLO scorecard over the run so far, deduplicating firings.
func (h *harness) sample(now time.Time) {
	t := now.Unix()
	h.flight.SampleRuntime(now)
	if snap := h.rtt.Snapshot(); snap.Count > 0 {
		h.store.Series(seriesRTTP50).Append(t, snap.Quantile(0.50))
		h.store.Series(seriesRTTP99).Append(t, snap.Quantile(0.99))
		h.store.Series(seriesRTTP999).Append(t, snap.Quantile(0.999))
	}
	h.store.Series(seriesAgentsFrac).Append(t, float64(h.liveAgents())/float64(h.cfg.Agents))
	h.priceMu.Lock()
	price, have := h.price.Last, h.price.Samples > 0
	h.priceMu.Unlock()
	if have {
		h.store.Series(seriesClearPrice).Append(t, price)
	}

	h.sloMu.Lock()
	h.evals++
	for _, f := range alerts.EvalStore(h.rules, h.store, h.startUnix, 0) {
		// Window-0 dedup: re-evaluating overlapping history re-returns
		// the same (rule, series, From) firing; report each one once.
		if !h.dedup.Fresh(f) {
			continue
		}
		h.flight.RecordFiring(f)
		h.firings = append(h.firings, f)
		h.cfg.Logf("%s — %s", f, f.Help)
	}
	h.sloMu.Unlock()
}

// run drives markets (selfhost) or observes external ones (connect) for
// the configured duration and assembles the report.
func (h *harness) run() (*loadReport, error) {
	start := time.Now()
	h.startUnix = start.Unix()
	h.sampler = &tsdb.TickerSampler{
		Interval: h.cfg.Sample,
		Sample:   h.sample,
	}
	ctx, cancel := context.WithCancel(context.Background())
	samplerDone := make(chan error, 1)
	go func() { samplerDone <- h.sampler.Run(ctx) }()

	var mk marketsSection
	deadline := start.Add(h.cfg.Duration)
	if h.mgr != nil {
		h.drive(deadline, &mk)
	} else {
		time.Sleep(time.Until(deadline))
		mk.Runs = int(h.orders.Load())
	}

	cancel()
	<-samplerDone

	report := &loadReport{
		Schema: loadSchema,
		Build:  telemetry.ReadBuildInfo(),
		Config: configSection{
			Agents:          h.cfg.Agents,
			Connect:         h.cfg.Connect,
			Transport:       h.cfg.Transport,
			Mode:            h.cfg.Mode,
			DurationSeconds: h.cfg.Duration.Seconds(),
			IntervalSeconds: h.cfg.Interval.Seconds(),
			Dist:            h.cfg.Dist,
			Seed:            h.cfg.Seed,
			Workers:         h.cfg.Workers,
			TargetFrac:      h.cfg.TargetFrac,
			TargetW:         h.targetW,
			Stream:          h.cfg.Stream,
			Jitter:          h.cfg.Jitter,
			SampleSeconds:   h.cfg.Sample.Seconds(),
			Wire:            h.cfg.Wire,
			Shards:          h.cfg.Shards,
		},
		Agents: agentsSection{
			Requested:  h.cfg.Agents,
			Connected:  len(h.agents),
			DialErrors: int(h.dialErrors.Load()),
			Remaining:  h.liveAgents(),
		},
		Markets:        mk,
		ElapsedSeconds: time.Since(start).Seconds(),
	}
	snap := h.reg.Snapshot()
	report.RoundTripSeconds = snap.HDR(metricRoundTrip)
	report.BidRTTSeconds = snap.HDR(agentproto.MetricBidRTT)
	h.priceMu.Lock()
	report.ClearPrice = h.price
	h.priceMu.Unlock()
	h.sloMu.Lock()
	report.SLO = sloSection{
		Rules:       h.rules,
		Evaluations: h.evals,
		Firings:     append([]alerts.Firing{}, h.firings...),
		Passed:      len(h.firings) == 0,
	}
	h.sloMu.Unlock()
	return report, nil
}

// drive clears markets until the deadline. Open-loop mode schedules one
// market per interval on an absolute timeline (falling behind counts a
// late start and proceeds immediately — the harness never queues);
// closed-loop mode runs back to back.
func (h *harness) drive(deadline time.Time, mk *marketsSection) {
	k := 0
	start := time.Now()
	for time.Now().Before(deadline) {
		if h.cfg.Mode == "open" {
			next := start.Add(time.Duration(k) * h.cfg.Interval)
			if wait := time.Until(next); wait > 0 {
				time.Sleep(wait)
			} else if k > 0 {
				mk.LateStarts++
			}
			k++
			if !time.Now().Before(deadline) {
				break
			}
		}
		out, err := h.mgr.RunMarket(h.targetW)
		mk.Runs++
		if err != nil {
			mk.Errors++
			h.cfg.Logf("market %d: %v", mk.Runs, err)
			// An erroring market (e.g. the whole fleet died) returns
			// instantly — don't let closed-loop mode spin on it.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		mk.RoundsTotal += out.Result.Rounds
		if out.Result.Converged {
			mk.Converged++
		}
		h.recordClearPrice(out.Result.Price)
	}
}

// close tears the fleet and the selfhost manager down.
func (h *harness) close() {
	for _, a := range h.agents {
		a.Close()
	}
	if h.mgr != nil {
		h.mgr.Close()
	}
}
