package main

import (
	"encoding/json"
	"os"

	"mpr/internal/telemetry"
	"mpr/internal/telemetry/alerts"
)

// loadSchema versions the report artifact. Bump it on any field change —
// TestLoadReportSchema decodes strictly, so drift without a bump fails CI.
// v2: config gains wire (json|binary agent transport) and shards (selfhost
// manager connection shards).
// v3: flight_bundle names the mprflight/v1 black-box bundle parked next
// to a failing report (the -flight flag), so the exit-3 CI path is
// self-diagnosing.
const loadSchema = "mprload/report/v3"

// loadReport is the versioned JSON artifact one mprload run emits
// (-report). It is self-describing: the binary that produced it, the
// configuration that drove it, what the fleet and the markets did, the
// latency digests, and the SLO verdicts.
type loadReport struct {
	Schema string              `json:"schema"`
	Build  telemetry.BuildInfo `json:"build"`
	Config configSection       `json:"config"`

	Agents  agentsSection  `json:"agents"`
	Markets marketsSection `json:"markets"`

	// RoundTripSeconds digests the agent-observed round turnaround: the
	// time from answering one price broadcast to receiving the next
	// (reset across markets), recorded by every agent into one shared
	// HDR histogram.
	RoundTripSeconds telemetry.HDRSummary `json:"round_trip_seconds"`
	// BidRTTSeconds digests the manager-side price→bid round trip.
	// Selfhost mode only (a connected external manager keeps its own);
	// zero-valued in connect mode.
	BidRTTSeconds telemetry.HDRSummary `json:"bid_rtt_seconds"`

	ClearPrice     clearPriceSection `json:"clear_price"`
	SLO            sloSection        `json:"slo"`
	ElapsedSeconds float64           `json:"elapsed_seconds"`

	// FlightBundle is the path of the mprflight/v1 bundle written when
	// the SLO scorecard failed (empty on passing runs or when -flight is
	// disabled): the incident evidence that travels with the verdict.
	FlightBundle string `json:"flight_bundle,omitempty"`
}

// configSection echoes the resolved run configuration.
type configSection struct {
	Agents          int     `json:"agents"`
	Connect         string  `json:"connect,omitempty"`
	Transport       string  `json:"transport"`
	Mode            string  `json:"mode"`
	DurationSeconds float64 `json:"duration_seconds"`
	IntervalSeconds float64 `json:"interval_seconds"`
	Dist            string  `json:"dist"`
	Seed            int64   `json:"seed"`
	Workers         int     `json:"workers"`
	TargetFrac      float64 `json:"target_frac"`
	TargetW         float64 `json:"target_w"`
	Stream          bool    `json:"stream"`
	Jitter          float64 `json:"jitter"`
	SampleSeconds   float64 `json:"sample_seconds"`
	Wire            string  `json:"wire"`
	Shards          int     `json:"shards"`
}

type agentsSection struct {
	Requested  int `json:"requested"`
	Connected  int `json:"connected"`
	DialErrors int `json:"dial_errors"`
	// Remaining is the fleet still attached at run end.
	Remaining int `json:"remaining"`
}

// marketsSection describes the markets the run drove (selfhost) or
// observed through order broadcasts (connect mode, where Runs counts the
// orders the sentinel agent received and the solver-side fields stay 0).
type marketsSection struct {
	Runs        int `json:"runs"`
	Converged   int `json:"converged"`
	Errors      int `json:"errors"`
	RoundsTotal int `json:"rounds_total"`
	// LateStarts counts open-loop ticks that found the previous market
	// still running — the closed-loop fallback the harness took instead
	// of queueing.
	LateStarts int `json:"late_starts"`
}

type clearPriceSection struct {
	Last    float64 `json:"last"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Samples int     `json:"samples"`
}

// sloSection is the live scorecard: every rule evaluated, how many
// evaluation passes ran, and the deduplicated firings.
type sloSection struct {
	Rules       []alerts.Rule   `json:"rules"`
	Evaluations int             `json:"evaluations"`
	Firings     []alerts.Firing `json:"firings"`
	// Passed is false iff any rule fired during the run.
	Passed bool `json:"passed"`
}

// writeReport marshals the report to path ("-" or "" meaning stdout).
func writeReport(r *loadReport, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
