package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestLoadReportSchema validates an mprload report against the
// mprload/report/v2 schema: strict decoding (field drift fails the test,
// forcing a schema bump), plus semantic floor checks on the sections CI
// relies on. By default it generates a fresh report from a tiny
// in-process run; point MPR_LOAD_JSON at a report file to validate that
// instead — the CI load smoke does exactly that after a short run
// against a booted mprd.
func TestLoadReportSchema(t *testing.T) {
	var data []byte
	external := os.Getenv("MPR_LOAD_JSON")
	if external != "" {
		var err error
		data, err = os.ReadFile(external)
		if err != nil {
			t.Fatalf("reading load report: %v", err)
		}
	} else {
		h, err := newHarness(loadConfig{
			Agents:     16,
			Transport:  "pipe",
			Mode:       "closed",
			Duration:   300 * time.Millisecond,
			Dist:       "lognormal",
			Seed:       1,
			TargetFrac: 0.25,
			Jitter:     0.1,
			Sample:     50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.connect(); err != nil {
			t.Fatal(err)
		}
		defer h.close()
		rep, err := h.run()
		if err != nil {
			t.Fatal(err)
		}
		data, err = json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
	}

	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r loadReport
	if err := dec.Decode(&r); err != nil {
		t.Fatalf("strict decode: %v", err)
	}
	if r.Schema != loadSchema {
		t.Fatalf("schema = %q, want %q", r.Schema, loadSchema)
	}
	if r.Build.GoVersion == "" {
		t.Error("build.go_version is empty")
	}
	if r.Config.Agents < 1 {
		t.Errorf("config.agents = %d, want ≥ 1", r.Config.Agents)
	}
	if r.Agents.Connected < 1 || r.Agents.Connected > r.Agents.Requested {
		t.Errorf("agents connected %d / requested %d out of range",
			r.Agents.Connected, r.Agents.Requested)
	}
	if r.Markets.Runs < 1 {
		t.Errorf("markets.runs = %d, want ≥ 1", r.Markets.Runs)
	}
	if r.Markets.Errors > r.Markets.Runs || r.Markets.Converged > r.Markets.Runs {
		t.Errorf("markets section inconsistent: %+v", r.Markets)
	}
	// The whole point of the harness: a tail exists and was measured.
	if r.RoundTripSeconds.Count < 1 {
		t.Error("round_trip_seconds has no observations")
	}
	if r.RoundTripSeconds.P99 <= 0 {
		t.Errorf("round_trip_seconds.p99 = %g, want > 0", r.RoundTripSeconds.P99)
	}
	if r.RoundTripSeconds.P50 > r.RoundTripSeconds.P99 ||
		r.RoundTripSeconds.P99 > r.RoundTripSeconds.P999 {
		t.Errorf("round-trip quantiles not monotone: p50 %g p99 %g p999 %g",
			r.RoundTripSeconds.P50, r.RoundTripSeconds.P99, r.RoundTripSeconds.P999)
	}
	if r.ClearPrice.Samples > 0 && (r.ClearPrice.Last <= 0 || r.ClearPrice.Min > r.ClearPrice.Max) {
		t.Errorf("clear_price section inconsistent: %+v", r.ClearPrice)
	}
	// The SLO scorecard must actually have run.
	if len(r.SLO.Rules) == 0 {
		t.Error("slo.rules is empty")
	}
	if r.SLO.Evaluations < 1 {
		t.Errorf("slo.evaluations = %d, want ≥ 1", r.SLO.Evaluations)
	}
	if r.SLO.Passed != (len(r.SLO.Firings) == 0) {
		t.Errorf("slo.passed = %v inconsistent with %d firings",
			r.SLO.Passed, len(r.SLO.Firings))
	}
	if r.ElapsedSeconds <= 0 {
		t.Errorf("elapsed_seconds = %g, want > 0", r.ElapsedSeconds)
	}
}
