package main

import (
	"math"
	"testing"
	"time"
)

// wireRun drives one tiny deterministic load run over the given wire and
// returns its report.
func wireRun(t *testing.T, wire string, shards int) *loadReport {
	t.Helper()
	h, err := newHarness(loadConfig{
		Agents:     32,
		Transport:  "pipe",
		Mode:       "closed",
		Duration:   400 * time.Millisecond,
		Dist:       "bimodal",
		Seed:       7,
		TargetFrac: 0.25,
		Jitter:     0, // deterministic bids: every market clears at one price
		Sample:     50 * time.Millisecond,
		Wire:       wire,
		Shards:     shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.connect(); err != nil {
		t.Fatal(err)
	}
	defer h.close()
	rep, err := h.run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestWireDifferential pins transport equivalence at the harness level:
// the same deterministic fleet over JSON lines and over binary frames —
// and across shard counts — must clear at the bit-identical price. With
// zero jitter every market in a run re-clears at one fixed point, so the
// min/last/max of the price section collapse to that value regardless of
// how many markets each run squeezed into its duration.
func TestWireDifferential(t *testing.T) {
	base := wireRun(t, "json", 1)
	if base.Markets.Runs < 1 || base.ClearPrice.Samples < 1 {
		t.Fatalf("baseline run cleared nothing: %+v", base.Markets)
	}
	want := math.Float64bits(base.ClearPrice.Last)
	if math.Float64bits(base.ClearPrice.Min) != want || math.Float64bits(base.ClearPrice.Max) != want {
		t.Fatalf("zero-jitter baseline price drifted: %+v", base.ClearPrice)
	}
	for _, tc := range []struct {
		name   string
		wire   string
		shards int
	}{
		{"binary", "binary", 1},
		{"binary-sharded", "binary", 4},
		{"json-sharded", "json", 4},
	} {
		rep := wireRun(t, tc.wire, tc.shards)
		if rep.Config.Wire != tc.wire || rep.Config.Shards != tc.shards {
			t.Errorf("%s: config echo wire=%q shards=%d", tc.name, rep.Config.Wire, rep.Config.Shards)
		}
		for field, got := range map[string]float64{
			"last": rep.ClearPrice.Last, "min": rep.ClearPrice.Min, "max": rep.ClearPrice.Max,
		} {
			if math.Float64bits(got) != want {
				t.Errorf("%s: clear_price.%s = %v, want %v (bit-identical across wires)",
					tc.name, field, got, base.ClearPrice.Last)
			}
		}
	}
}
