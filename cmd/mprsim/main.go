// Command mprsim runs trace-driven simulations of an oversubscribed
// HPC system with chosen overload-handling algorithms and prints the
// evaluation summaries.
//
// Usage:
//
//	mprsim -trace gaia -days 30 -oversub 15 -algo MPR-INT
//	mprsim -swf mylog.swf -oversub 10 -algo OPT
//	mprsim -algo MPR-STAT,MPR-INT,EQL -parallel 3
//
// -algo accepts a comma-separated list; the runs are independent cells
// executed on a worker pool bounded by -parallel (0 = GOMAXPROCS,
// 1 = serial). The summaries print in the order the algorithms were
// given and are identical at any worker count — see DESIGN.md §9.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mpr/internal/runner"
	"mpr/internal/sim"
	"mpr/internal/stats"
	"mpr/internal/trace"
)

func main() {
	var (
		preset   = flag.String("trace", "gaia", "workload preset: gaia, pik, ricc, metacentrum")
		swf      = flag.String("swf", "", "path to a Standard Workload Format log (overrides -trace)")
		days     = flag.Int("days", 30, "trace horizon in days (synthetic presets only)")
		oversub  = flag.Float64("oversub", 15, "oversubscription percent")
		algo     = flag.String("algo", "MPR-STAT", "comma-separated algorithms: OPT, EQL, MPR-STAT, MPR-INT, NONE")
		seed     = flag.Int64("seed", 1, "random seed")
		part     = flag.Float64("participation", 1, "market participation fraction")
		delay    = flag.Int("market-delay", 0, "slots between declaring an emergency and the reduction taking effect")
		predict  = flag.Bool("predict", false, "invoke the market early from a power forecast (Section III-D)")
		phases   = flag.Float64("phases", 0, "per-job power phase amplitude (0 disables)")
		series   = flag.Bool("series", false, "plot the power timeline as an ASCII chart")
		parallel = flag.Int("parallel", 0, "worker-pool bound for multi-algorithm runs: 0 = GOMAXPROCS, 1 = serial")
		engine   = flag.String("engine", "", "simulation core: slot (default) or event — results are bit-identical, the event core just skips inert slots")
	)
	flag.Parse()

	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	tr, err := loadTrace(*preset, *swf, *days, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	record := 0
	if *series {
		record = 110
	}
	var algos []sim.Algorithm
	for _, a := range strings.Split(*algo, ",") {
		algos = append(algos, sim.Algorithm(strings.TrimSpace(a)))
	}
	workers := *parallel
	if workers <= 0 {
		workers = runner.DefaultWorkers()
	}
	// Each algorithm is an independent cell over the shared (read-only)
	// trace; results land in submission order, so the printout below is
	// identical no matter how the cells were scheduled.
	results, err := runner.Map(workers, algos, func(_ int, a sim.Algorithm) (*sim.Result, error) {
		return sim.Run(sim.Config{
			Trace:            tr,
			OversubPct:       *oversub,
			Algorithm:        a,
			Seed:             *seed,
			Participation:    *part,
			MarketDelaySlots: *delay,
			Predictive:       *predict,
			PhaseAmp:         *phases,
			RecordSeries:     record,
			Engine:           eng,
		})
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, res := range results {
		printSummary(res)
		if *series && res.DeliveredSeries != nil {
			fmt.Println(stats.LineChart(
				fmt.Sprintf("delivered power (W), capacity %.0f W (dashed)", res.CapacityW),
				res.DeliveredSeries, 100, 14, res.CapacityW))
		}
	}
}

func loadTrace(preset, swf string, days int, seed int64) (*trace.Trace, error) {
	if swf != "" {
		f, err := os.Open(swf)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ParseSWF(f, swf)
	}
	presets := trace.Presets(seed)
	cfg, ok := presets[preset]
	if !ok {
		return nil, fmt.Errorf("unknown preset %q (have gaia, pik, ricc, metacentrum)", preset)
	}
	return trace.Generate(cfg.WithDays(days))
}

func printSummary(r *sim.Result) {
	tbl := stats.NewTable(fmt.Sprintf("Simulation summary — %s on %s at %.0f%% oversubscription",
		r.Algorithm, r.TraceName, r.OversubPct), "metric", "value")
	tbl.AddRow("capacity (kW)", r.CapacityW/1000)
	tbl.AddRow("peak demand (kW)", r.PeakW/1000)
	tbl.AddRow("simulated slots (min)", r.Slots)
	tbl.AddRow("overload time", fmt.Sprintf("%.2f%%", 100*r.OverloadFraction()))
	tbl.AddRow("emergencies", r.EmergencyCount)
	tbl.AddRow("emergency minutes", r.EmergencySlots)
	tbl.AddRow("jobs total/completed", fmt.Sprintf("%d / %d", r.JobsTotal, r.JobsCompleted))
	tbl.AddRow("jobs affected", fmt.Sprintf("%.1f%%", 100*r.AffectedFraction()))
	tbl.AddRow("resource reduction (core-h)", r.ReductionCoreH)
	tbl.AddRow("cost of performance loss (core-h)", r.CostCoreH)
	tbl.AddRow("incentive payoff (core-h)", r.PaymentCoreH)
	tbl.AddRow("user reward (% of cost)", fmt.Sprintf("%.0f%%", r.RewardPercent()))
	tbl.AddRow("extra capacity (core-h)", r.ExtraCapacityCoreH)
	tbl.AddRow("manager gain ratio", fmt.Sprintf("%.0fx", r.GainRatio()))
	tbl.AddRow("avg runtime increase (affected)", fmt.Sprintf("%.3f%%", 100*r.MeanRuntimeIncrease))
	tbl.AddRow("market invocations", r.MarketInvocations)
	tbl.AddRow("mean market rounds", r.MeanRounds)
	tbl.AddRow("infeasible events", r.InfeasibleEvents)
	fmt.Println(tbl.String())

	if len(r.PerProfile) > 0 {
		pp := stats.NewTable("Per-application outcome", "app", "jobs", "reduction (core-h)", "cost (core-h)")
		var names []string
		for n := range r.PerProfile {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ps := r.PerProfile[n]
			pp.AddRow(n, ps.Jobs, ps.ReductionCoreH, ps.CostCoreH)
		}
		fmt.Println(pp.String())
	}
}
