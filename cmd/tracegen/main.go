// Command tracegen emits synthetic HPC workload traces in Standard
// Workload Format, calibrated to the clusters of the MPR paper.
//
// Usage:
//
//	tracegen -preset gaia -days 92 > gaia.swf
//	tracegen -preset ricc -days 30 -seed 7 -out ricc.swf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mpr/internal/trace"
)

func main() {
	var (
		preset = flag.String("preset", "gaia", "workload preset: gaia, pik, ricc, metacentrum")
		days   = flag.Int("days", 0, "override horizon in days (0 = preset default)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	cfg, ok := trace.Presets(*seed)[*preset]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown preset %q (have gaia, pik, ricc, metacentrum)\n", *preset)
		os.Exit(2)
	}
	if *days > 0 {
		cfg = cfg.WithDays(*days)
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteSWF(w, tr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d jobs (%d cores, %d days, peak %d)\n",
		len(tr.Jobs), tr.TotalCores, cfg.Days, tr.PeakAllocation())
}
