package mpr

import (
	"bytes"
	"strings"
	"testing"
)

// The facade must expose a coherent end-to-end workflow: profile → cost
// model → bids → market → settlement.
func TestPublicAPIMarketFlow(t *testing.T) {
	prof, err := ProfileByName("XSBench")
	if err != nil {
		t.Fatal(err)
	}
	model := NewCostModel(prof, 1, CostLinear)
	parts := []*Participant{{
		JobID:        "j1",
		Cores:        16,
		Bid:          CooperativeBid(16, model),
		WattsPerCore: DefaultCPUCoreModel.DynamicW,
		MaxFrac:      prof.MaxReduction(),
	}}
	res, err := Clear(parts, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.SuppliedW < 500-1e-6 {
		t.Errorf("clearing result = %+v", res)
	}
	ss, err := Settle(parts, res.Reductions, res.Price)
	if err != nil || len(ss) != 1 {
		t.Fatalf("settle: %v, %d", err, len(ss))
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	tr, err := GenerateTrace(TraceConfig{
		Name: "api", Seed: 1, TotalCores: 64, Days: 2,
		JobCount: 100, MeanUtil: 0.6, MaxJobFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSWF(&buf, "api")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Errorf("round trip lost jobs: %d vs %d", len(back.Jobs), len(tr.Jobs))
	}
	if cdf := UtilizationCDF(tr, 60); cdf.Len() == 0 {
		t.Error("empty utilization CDF")
	}
}

func TestPublicAPISimulation(t *testing.T) {
	tr, err := GenerateTrace(TraceConfig{
		Name: "api-sim", Seed: 2, TotalCores: 128, Days: 3,
		JobCount: 400, MeanUtil: 0.72, MaxJobFrac: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(SimConfig{Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != res.JobsTotal {
		t.Errorf("incomplete: %d/%d", res.JobsCompleted, res.JobsTotal)
	}
}

func TestPublicAPIProfiles(t *testing.T) {
	if len(CPUProfiles()) != 8 || len(GPUProfiles()) != 6 || len(AllProfiles()) != 14 {
		t.Error("profile counts wrong through the facade")
	}
	if len(TracePresets(1)) != 4 {
		t.Error("trace presets wrong through the facade")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 17 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
	res, err := RunExperiment("f2", ExperimentOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || !strings.Contains(res.Tables[0].String(), "price") {
		t.Error("f2 experiment output malformed")
	}
	if _, err := RunExperiment("bogus", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPublicAPICluster(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Seed: 1, UseMPR: true})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(120)
	if got := c.Result(); got.PowerSeries.Len() != 120 {
		t.Errorf("power series = %d samples", got.PowerSeries.Len())
	}
	if pts, err := FreqSweep(DefaultApps(), 4); err != nil || len(pts) != 16 {
		t.Errorf("freq sweep: %v, %d points", err, len(pts))
	}
}

func TestPublicAPIInfrastructure(t *testing.T) {
	inf, err := NewUniformInfrastructure(10000, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	inf.SpreadLoad(12000)
	if _, over := inf.Evaluate(); len(over) == 0 {
		t.Error("overload not detected through the facade")
	}
	ec, err := NewEmergencyController(EmergencyConfig{CapacityW: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if d := ec.Step(1100, 1100); !d.Declare {
		t.Error("controller facade broken")
	}
}
