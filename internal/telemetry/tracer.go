package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured trace record. The schema is a fixed flat struct
// rather than a field map so emitting into the ring allocates nothing;
// producers fill the fields that apply and leave the rest zero (omitted
// from the JSONL encoding).
type Event struct {
	// Seq is the tracer-assigned sequence number (monotonic per tracer).
	Seq uint64 `json:"seq"`
	// TimeNS is the wall-clock timestamp in Unix nanoseconds, stamped by
	// Emit when zero. Deterministic producers (the simulator) pre-fill it
	// with 0-based virtual time instead.
	TimeNS int64 `json:"time_ns,omitempty"`
	// Trace identifies the run/market the event belongs to (stamped by a
	// Trace handle).
	Trace string `json:"trace,omitempty"`
	// Name is the event type, e.g. "market_clear", "emergency_declare",
	// "int_round".
	Name string `json:"name"`
	// Slot is the simulator timestep; Round the market round.
	Slot  int `json:"slot,omitempty"`
	Round int `json:"round,omitempty"`
	// Price, TargetW, SuppliedW carry clearing-round economics.
	Price     float64 `json:"price,omitempty"`
	TargetW   float64 `json:"target_w,omitempty"`
	SuppliedW float64 `json:"supplied_w,omitempty"`
	// Value is a free numeric payload (duration, depth, …); Label a free
	// string payload (mode, job id, reason, …).
	Value float64 `json:"value,omitempty"`
	Label string  `json:"label,omitempty"`
}

// Tracer is a fixed-capacity ring buffer of Events. When the ring is
// full the oldest events are overwritten; Events and Last always return
// the surviving window in chronological order. An optional sink receives
// every event as one JSON line for offline analysis (the sink path
// allocates; the ring path does not). A nil *Tracer is the Nop tracer.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	seq     uint64
	dropped uint64 // events overwritten before ever being read
	sink    io.Writer
	enc     *json.Encoder

	// Hierarchical spans (see span.go) share the tracer but keep their
	// own ring — span lifecycles are much longer than event emissions
	// and must not evict clearing-round events.
	spanRing     []Span
	spanSeq      uint64 // span IDs, assigned at StartSpan
	spanDone     uint64 // completed spans, indexes the ring
	droppedSpans uint64
}

// NewTracer builds a tracer retaining the last size events (minimum 16,
// default 256 when size ≤ 0).
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = 256
	}
	if size < 16 {
		size = 16
	}
	return &Tracer{
		ring:     make([]Event, 0, size),
		spanRing: make([]Span, 0, size),
	}
}

// SetSink attaches a JSONL sink receiving every subsequent event.
// No-op on a nil tracer.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = w
	if w != nil {
		t.enc = json.NewEncoder(w)
	} else {
		t.enc = nil
	}
}

// Emit records one event, assigning its sequence number and (when unset)
// its wall-clock timestamp. No-op on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if e.TimeNS == 0 {
		e.TimeNS = time.Now().UnixNano()
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[int((t.seq-1)%uint64(cap(t.ring)))] = e
		t.dropped++
	}
	enc := t.enc
	t.mu.Unlock()
	if enc != nil {
		// Best-effort: a broken sink must not take the market down.
		_ = enc.Encode(e)
	}
}

// Dropped returns how many events the ring has overwritten — the
// overflow-observability counter behind /debug/market's dropped-count
// field and mprd's events_dropped metric. 0 on a nil tracer.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of events currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Events returns a chronological copy of the retained window. Nil tracer
// returns nil.
func (t *Tracer) Events() []Event {
	return t.Last(-1)
}

// Last returns a chronological copy of the most recent n retained events
// (all of them when n < 0 or n exceeds the window). Nil tracer returns
// nil.
func (t *Tracer) Last(n int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := len(t.ring)
	if n < 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	// Oldest surviving event: seq t.seq-size+1 at ring index (seq-1)%cap.
	start := t.seq - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, t.ring[int((start+i)%uint64(cap(t.ring)))])
	}
	return out
}

// StartTrace returns a handle stamping events with the given trace ID —
// one handle per run/market keeps concurrent producers distinguishable in
// a shared ring. Nil tracer returns the nil (Nop) handle.
func (t *Tracer) StartTrace(id string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{t: t, id: id}
}

// Trace is a per-run handle over a Tracer. A nil *Trace is a no-op.
type Trace struct {
	t  *Tracer
	id string
}

// Emit stamps the event with the handle's trace ID and records it.
// No-op on a nil handle.
func (tr *Trace) Emit(e Event) {
	if tr == nil {
		return
	}
	e.Trace = tr.id
	tr.t.Emit(e)
}

// ID returns the handle's trace identifier ("" for nil).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}
