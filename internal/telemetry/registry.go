// Package telemetry is the repo's stdlib-only observability layer: an
// allocation-conscious metrics registry (atomic counters and gauges,
// lock-striped histograms with fixed bucket layouts, labeled counter
// families) plus a structured event tracer (ring-buffered Event records
// with per-run Trace handles and an optional JSONL sink).
//
// Two consumption paths are supported. Experiments and the simulator take
// a point-in-time Snapshot and ship it inside their results; long-running
// daemons expose the registry over HTTP in Prometheus text format and the
// tracer ring as a human-readable debug page (see Handler).
//
// Every instrument is nil-safe: methods on a nil *Registry return nil
// metrics, and methods on nil metrics are no-ops. A nil registry is
// therefore the Nop registry — the zero-config fast path costs one nil
// check per instrumentation point and allocates nothing.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mpr/internal/telemetry/hdr"
)

// Nop returns the no-op registry: nil. All registry and metric methods
// tolerate nil receivers, so instrumented code never branches on
// configuration — it just calls through.
func Nop() *Registry { return nil }

var defaultRegistry = NewRegistry()

// Default returns the process-global registry. Package-level
// instrumentation (e.g. the core market counters) registers here unless
// re-pointed; MarketStats-style legacy shims read from it.
func Default() *Registry { return defaultRegistry }

// atomicFloat is a float64 updated with atomic bit operations.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct{ v atomicFloat }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds v. No-op on a nil gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.Add(v)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histStripes is the number of independent shards an observation can land
// on. Striping spreads the contended sum/count updates of concurrent
// writers across cache lines; snapshots fold the stripes back together.
const histStripes = 8

// histStripe is one shard of a histogram. The trailing pad keeps stripes
// on separate cache lines so concurrent observers don't false-share.
type histStripe struct {
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomicFloat
	_      [40]byte
}

// Histogram is a fixed-bucket-layout histogram. Bucket semantics follow
// Prometheus: an observation v lands in the first bucket whose upper
// bound satisfies v ≤ bound, with an implicit +Inf overflow bucket.
type Histogram struct {
	bounds  []float64
	stripes [histStripes]histStripe
	rr      atomic.Uint64 // round-robin stripe selector
}

// Observe records one observation. No-op on a nil histogram. The bucket
// is located by binary search over the fixed bounds; the write lands on a
// round-robin-selected stripe so concurrent observers contend 1/8th as
// often on the shared sum.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	bi := sort.SearchFloat64s(h.bounds, v)
	s := &h.stripes[h.rr.Add(1)&(histStripes-1)]
	s.counts[bi].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// snapshot folds the stripes into one per-bucket count vector.
func (h *Histogram) snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.bounds)+1),
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := range s.counts {
			snap.Counts[b] += s.counts[b].Load()
		}
		snap.Count += s.count.Load()
		snap.Sum += s.sum.Load()
	}
	return snap
}

// CounterFamily is a set of counters sharing a name, distinguished by one
// label value ("labeled family"). Resolved children are cached; the hot
// path should resolve once with With and keep the *Counter.
type CounterFamily struct {
	name, help, label string
	mu                sync.Mutex
	children          map[string]*Counter
	order             []string
}

// With returns the counter for the given label value, creating it on
// first use. Returns nil (the nop counter) on a nil family.
func (f *CounterFamily) With(value string) *Counter {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.children[value]
	if c == nil {
		c = &Counter{}
		f.children[value] = c
		f.order = append(f.order, value)
	}
	return c
}

// metric kinds for exposition ordering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFamily
	kindHDR
)

type metricEntry struct {
	name, help string
	kind       metricKind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	family     *CounterFamily
	hdr        *hdr.Histogram
}

// Registry holds named metrics. All getters are get-or-create and
// idempotent: asking twice for the same name returns the same metric, so
// packages can resolve instruments at init without coordination.
// A nil *Registry is the Nop registry.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]*metricEntry
	ordered []*metricEntry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metricEntry)}
}

// getOrCreate returns the entry for name, creating it with init (run
// under the registry lock) on first use. Registration is not a hot path;
// hot paths resolve their metrics once and keep the handles.
func (r *Registry) getOrCreate(name, help string, kind metricKind, init func(*metricEntry)) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.byName[name]; e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &metricEntry{name: name, help: help, kind: kind}
	init(e)
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	return e
}

func (r *Registry) lookup(name string, kind metricKind) *metricEntry {
	r.mu.RLock()
	e := r.byName[name]
	r.mu.RUnlock()
	if e != nil && e.kind == kind {
		return e
	}
	return nil
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindCounter, func(e *metricEntry) {
		e.counter = &Counter{}
	}).counter
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindGauge, func(e *metricEntry) {
		e.gauge = &Gauge{}
	}).gauge
}

// Histogram returns the named histogram with the given fixed bucket upper
// bounds (strictly increasing; +Inf is implicit), creating it on first
// use. The bounds of an existing histogram are not changed. Returns nil
// on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindHistogram, func(e *metricEntry) {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		for i := range h.stripes {
			h.stripes[i].counts = make([]atomic.Int64, len(bounds)+1)
		}
		e.hist = h
	}).hist
}

// HDR returns the named high-dynamic-range histogram (see the hdr
// subpackage: log-bucketed, ~1 ns–100 s range, ≤3.1% relative error,
// mergeable snapshots), creating it on first use. HDR histograms render
// as Prometheus summaries (quantile series plus _sum/_count) because
// their ~1200-bucket layout is too fine for useful _bucket exposition.
// Returns nil (the no-op histogram) on a nil registry.
func (r *Registry) HDR(name, help string) *hdr.Histogram {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindHDR, func(e *metricEntry) {
		e.hdr = hdr.New()
	}).hdr
}

// FindHDR returns the named HDR histogram without creating it — the
// lookup path for samplers that publish quantile series for histograms
// registered elsewhere. Nil when absent or on a nil registry (and a nil
// *hdr.Histogram is safe to Record into and Snapshot).
func (r *Registry) FindHDR(name string) *hdr.Histogram {
	if r == nil {
		return nil
	}
	if e := r.lookup(name, kindHDR); e != nil {
		return e.hdr
	}
	return nil
}

// CounterFamily returns the named labeled counter family, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) CounterFamily(name, help, label string) *CounterFamily {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindCounterFamily, func(e *metricEntry) {
		e.family = &CounterFamily{name: name, help: help, label: label,
			children: make(map[string]*Counter)}
	}).family
}

// CounterValue reads a plain counter by name (0 when absent or nil
// registry) — the lookup path for legacy shims like core.MarketStats.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	if e := r.lookup(name, kindCounter); e != nil {
		return e.counter.Value()
	}
	return 0
}

// GaugeValue reads a gauge by name (0 when absent or nil registry).
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	if e := r.lookup(name, kindGauge); e != nil {
		return e.gauge.Value()
	}
	return 0
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one entry per bound
	// plus the +Inf overflow bucket and is NOT cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// HDRSummary is the serializable point-in-time digest of an HDR
// histogram: pre-computed quantiles instead of the ~1200 raw buckets.
// Consumers needing mergeable full-resolution state take hdr.Snapshot
// from the histogram handle instead.
type HDRSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// summarizeHDR digests one HDR snapshot.
func summarizeHDR(s hdr.Snapshot) HDRSummary {
	return HDRSummary{
		Count: s.Count, Sum: s.Sum, Min: s.Min, Max: s.Max, Mean: s.Mean(),
		P50: s.Quantile(0.50), P90: s.Quantile(0.90),
		P99: s.Quantile(0.99), P999: s.Quantile(0.999),
	}
}

// Snapshot is a point-in-time copy of a registry's metrics, serializable
// for results and offline analysis. Family children appear in Counters
// under the expanded name `family{label="value"}`.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
	HDRs       map[string]HDRSummary
}

// Counter reads a counter from the snapshot (0 when absent).
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// Histogram reads a histogram snapshot (zero value when absent).
func (s *Snapshot) Histogram(name string) HistogramSnapshot {
	if s == nil {
		return HistogramSnapshot{}
	}
	return s.Histograms[name]
}

// HDR reads an HDR summary (zero value when absent).
func (s *Snapshot) HDR(name string) HDRSummary {
	if s == nil {
		return HDRSummary{}
	}
	return s.HDRs[name]
}

// Snapshot captures all metrics. Returns nil on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	entries := append([]*metricEntry(nil), r.ordered...)
	r.mu.RUnlock()
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
		HDRs:       make(map[string]HDRSummary),
	}
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			s.Counters[e.name] = e.counter.Value()
		case kindGauge:
			s.Gauges[e.name] = e.gauge.Value()
		case kindHistogram:
			s.Histograms[e.name] = e.hist.snapshot()
		case kindHDR:
			s.HDRs[e.name] = summarizeHDR(e.hdr.Snapshot())
		case kindCounterFamily:
			f := e.family
			f.mu.Lock()
			for _, v := range f.order {
				s.Counters[fmt.Sprintf("%s{%s=%q}", f.name, f.label, v)] = f.children[v].Value()
			}
			f.mu.Unlock()
		}
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (counters, gauges, and histograms with _bucket/_sum/_count
// series). A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	entries := append([]*metricEntry(nil), r.ordered...)
	r.mu.RUnlock()
	var b strings.Builder
	for _, e := range entries {
		if e.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", e.name, e.help)
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", e.name, e.name, formatFloat(e.gauge.Value()))
		case kindCounterFamily:
			fmt.Fprintf(&b, "# TYPE %s counter\n", e.name)
			f := e.family
			f.mu.Lock()
			for _, v := range f.order {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", e.name, f.label, escapeLabel(v), f.children[v].Value())
			}
			f.mu.Unlock()
		case kindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", e.name)
			snap := e.hist.snapshot()
			var cum int64
			for i, bound := range snap.Bounds {
				cum += snap.Counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", e.name, formatFloat(bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", e.name, snap.Count)
			fmt.Fprintf(&b, "%s_sum %s\n", e.name, formatFloat(snap.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", e.name, snap.Count)
		case kindHDR:
			// HDR histograms expose as summaries: pre-computed quantiles
			// instead of ~1200 _bucket lines.
			fmt.Fprintf(&b, "# TYPE %s summary\n", e.name)
			sum := summarizeHDR(e.hdr.Snapshot())
			for _, q := range []struct {
				label string
				v     float64
			}{{"0.5", sum.P50}, {"0.9", sum.P90}, {"0.99", sum.P99}, {"0.999", sum.P999}} {
				fmt.Fprintf(&b, "%s{quantile=%q} %s\n", e.name, q.label, formatFloat(q.v))
			}
			fmt.Fprintf(&b, "%s_sum %s\n", e.name, formatFloat(sum.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", e.name, sum.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// Common fixed bucket layouts.
var (
	// RoundBuckets covers interactive-market round counts (MaxRounds
	// defaults to 100).
	RoundBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 100}
	// LatencySecondsBuckets covers network round-trip and clearing
	// latencies from 100 µs to ~8 s, exponential.
	LatencySecondsBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025,
		0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 4, 8}
	// SlotBuckets covers per-slot durations (emergency length, reduction
	// latency) in one-minute slots.
	SlotBuckets = []float64{0, 1, 2, 3, 5, 8, 12, 20, 30, 60, 120, 240, 480}
)
