package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func serveGet(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestHandlerMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpr_core_price_searches_total", "Full price searches.").Add(7)
	h := r.Histogram("mpr_agent_bid_rtt_seconds", "Bid RTT.", LatencySecondsBuckets)
	h.Observe(0.002)
	h.Observe(0.3)
	tr := NewTracer(16)

	res, body := serveGet(t, Handler(r, tr), "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"mpr_core_price_searches_total 7",
		`mpr_agent_bid_rtt_seconds_bucket{le="0.0025"} 1`,
		`mpr_agent_bid_rtt_seconds_bucket{le="+Inf"} 2`,
		"mpr_agent_bid_rtt_seconds_sum 0.302",
		"mpr_agent_bid_rtt_seconds_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerDebugMarketEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpr_sim_market_invocations_total", "").Add(2)
	r.Gauge("mpr_power_overload_w", "").Set(340)
	tr := NewTracer(16)
	run := tr.StartTrace("run-1")
	run.Emit(Event{Name: "int_round", Round: 1, Price: 0.8, TargetW: 500, SuppliedW: 420})
	run.Emit(Event{Name: "market_clear", Round: 2, Price: 0.95, TargetW: 500, SuppliedW: 503, Label: "converged"})

	res, body := serveGet(t, Handler(r, tr), "/debug/market")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"market_clear", "int_round", "run-1", "converged",
		"mpr_sim_market_invocations_total",
		"mpr_power_overload_w",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/market missing %q:\n%s", want, body)
		}
	}
	// Newest event renders first.
	if strings.Index(body, "market_clear") > strings.Index(body, "int_round") {
		t.Fatal("/debug/market must render newest events first")
	}
}

func TestHandlerMetricsJSONFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpr_mgr_markets_total", "").Add(3)
	r.Gauge("mpr_power_budget_w", "").Set(125000)
	res, body := serveGet(t, Handler(r, nil), "/metrics?format=json")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var doc struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if doc.Counters["mpr_mgr_markets_total"] != 3 || doc.Gauges["mpr_power_budget_w"] != 125000 {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestHandlerDebugMarketJSONDropped(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 20; i++ { // 4 past capacity
		tr.Emit(Event{Name: "int_round", Round: i})
	}
	res, body := serveGet(t, Handler(nil, tr), "/debug/market?format=json")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var doc struct {
		DroppedEvents uint64  `json:"dropped_events"`
		Events        []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if doc.DroppedEvents != 4 {
		t.Fatalf("dropped_events = %d, want 4", doc.DroppedEvents)
	}
	if len(doc.Events) != 16 || doc.Events[0].Round != 4 {
		t.Fatalf("events = %d, first round = %d", len(doc.Events), doc.Events[0].Round)
	}
	// The HTML form surfaces the same count.
	_, html := serveGet(t, Handler(nil, tr), "/debug/market")
	if !strings.Contains(html, "dropped by the ring: 4") {
		t.Fatal("HTML debug page must show the dropped count")
	}
}

func TestHandlerSpansEndpoint(t *testing.T) {
	tr := NewTracer(16)
	em := tr.StartSpan("emergency", nil)
	em.StartChild("market_round").End()
	em.End()
	res, body := serveGet(t, Handler(nil, tr), "/debug/spans")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var doc struct {
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(doc.Spans) != 2 || doc.Spans[1].Name != "emergency" || doc.Spans[0].Parent != doc.Spans[1].ID {
		t.Fatalf("spans = %+v", doc.Spans)
	}
}

func TestHandlerHealthzAndSeriesMounts(t *testing.T) {
	series := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"series":[]}`))
	})
	h := NewHandler(HandlerConfig{
		Series: series,
		Health: func() Health {
			return Health{Status: "ok", UptimeSeconds: 12.5, AgentsConnected: 3, LastSampleAgeSeconds: 0.25}
		},
		Pprof: true,
	})
	res, body := serveGet(t, h, "/healthz")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", res.StatusCode)
	}
	var hz Health
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if hz.Status != "ok" || hz.AgentsConnected != 3 {
		t.Fatalf("health = %+v", hz)
	}
	if res, _ := serveGet(t, h, "/debug/series"); res.StatusCode != http.StatusOK {
		t.Fatalf("/debug/series status = %d", res.StatusCode)
	}
	if res, body := serveGet(t, h, "/debug/pprof/cmdline"); res.StatusCode != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline status = %d", res.StatusCode)
	}
	// Index advertises every mounted endpoint.
	if _, body := serveGet(t, h, "/"); !strings.Contains(body, "/healthz") ||
		!strings.Contains(body, "/debug/series") || !strings.Contains(body, "/debug/pprof/") {
		t.Fatal("index must link optional endpoints when mounted")
	}
	// Unmounted optional endpoints 404 and are not advertised.
	bare := Handler(nil, nil)
	if res, _ := serveGet(t, bare, "/healthz"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("bare /healthz status = %d", res.StatusCode)
	}
	if _, body := serveGet(t, bare, "/"); strings.Contains(body, "/healthz") {
		t.Fatal("bare index must not advertise /healthz")
	}
}

func TestHandlerFlightAndRTMounts(t *testing.T) {
	flight := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.HasSuffix(req.URL.Path, "/dump") {
			w.Write([]byte(`{"path":"flight-000001-manual.json"}`))
			return
		}
		w.Write([]byte(`{"enabled":true}`))
	})
	rt := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"goroutines":7}`))
	})
	h := NewHandler(HandlerConfig{Flight: flight, RT: rt})
	if res, body := serveGet(t, h, "/debug/flight"); res.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"enabled"`) {
		t.Fatalf("/debug/flight = %d %q", res.StatusCode, body)
	}
	// The dump sub-path routes to the same handler (which distinguishes
	// by suffix), not the index 404.
	if res, body := serveGet(t, h, "/debug/flight/dump"); res.StatusCode != http.StatusOK ||
		!strings.Contains(body, "flight-000001") {
		t.Fatalf("/debug/flight/dump = %d %q", res.StatusCode, body)
	}
	if res, body := serveGet(t, h, "/debug/rt"); res.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"goroutines"`) {
		t.Fatalf("/debug/rt = %d %q", res.StatusCode, body)
	}
	if _, body := serveGet(t, h, "/"); !strings.Contains(body, "/debug/flight") ||
		!strings.Contains(body, "/debug/rt") {
		t.Fatal("index must link /debug/flight and /debug/rt when mounted")
	}
	bare := Handler(nil, nil)
	if res, _ := serveGet(t, bare, "/debug/flight"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("bare /debug/flight status = %d", res.StatusCode)
	}
	if res, _ := serveGet(t, bare, "/debug/rt"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("bare /debug/rt status = %d", res.StatusCode)
	}
}

func TestHandlerIndexContentType(t *testing.T) {
	res, _ := serveGet(t, Handler(nil, nil), "/")
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("index content type = %q", ct)
	}
}

func TestHandlerNilRegistryAndTracer(t *testing.T) {
	h := Handler(nil, nil)
	if res, _ := serveGet(t, h, "/metrics"); res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", res.StatusCode)
	}
	if res, _ := serveGet(t, h, "/debug/market"); res.StatusCode != http.StatusOK {
		t.Fatalf("/debug/market status = %d", res.StatusCode)
	}
	if res, _ := serveGet(t, h, "/nope"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", res.StatusCode)
	}
	if res, body := serveGet(t, h, "/"); res.StatusCode != http.StatusOK ||
		!strings.Contains(body, "/debug/market") {
		t.Fatal("index must link the endpoints")
	}
}
