package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func serveGet(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestHandlerMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpr_core_price_searches_total", "Full price searches.").Add(7)
	h := r.Histogram("mpr_agent_bid_rtt_seconds", "Bid RTT.", LatencySecondsBuckets)
	h.Observe(0.002)
	h.Observe(0.3)
	tr := NewTracer(16)

	res, body := serveGet(t, Handler(r, tr), "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"mpr_core_price_searches_total 7",
		`mpr_agent_bid_rtt_seconds_bucket{le="0.0025"} 1`,
		`mpr_agent_bid_rtt_seconds_bucket{le="+Inf"} 2`,
		"mpr_agent_bid_rtt_seconds_sum 0.302",
		"mpr_agent_bid_rtt_seconds_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerDebugMarketEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpr_sim_market_invocations_total", "").Add(2)
	r.Gauge("mpr_power_overload_w", "").Set(340)
	tr := NewTracer(16)
	run := tr.StartTrace("run-1")
	run.Emit(Event{Name: "int_round", Round: 1, Price: 0.8, TargetW: 500, SuppliedW: 420})
	run.Emit(Event{Name: "market_clear", Round: 2, Price: 0.95, TargetW: 500, SuppliedW: 503, Label: "converged"})

	res, body := serveGet(t, Handler(r, tr), "/debug/market")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"market_clear", "int_round", "run-1", "converged",
		"mpr_sim_market_invocations_total",
		"mpr_power_overload_w",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/market missing %q:\n%s", want, body)
		}
	}
	// Newest event renders first.
	if strings.Index(body, "market_clear") > strings.Index(body, "int_round") {
		t.Fatal("/debug/market must render newest events first")
	}
}

func TestHandlerNilRegistryAndTracer(t *testing.T) {
	h := Handler(nil, nil)
	if res, _ := serveGet(t, h, "/metrics"); res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", res.StatusCode)
	}
	if res, _ := serveGet(t, h, "/debug/market"); res.StatusCode != http.StatusOK {
		t.Fatalf("/debug/market status = %d", res.StatusCode)
	}
	if res, _ := serveGet(t, h, "/nope"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", res.StatusCode)
	}
	if res, body := serveGet(t, h, "/"); res.StatusCode != http.StatusOK ||
		!strings.Contains(body, "/debug/market") {
		t.Fatal("index must link the endpoints")
	}
}
