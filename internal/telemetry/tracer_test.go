package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNop(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Name: "x"})
	tr.SetSink(&strings.Builder{})
	if tr.Len() != 0 || tr.Events() != nil || tr.Last(5) != nil {
		t.Fatal("nil tracer must be empty")
	}
	h := tr.StartTrace("run")
	if h != nil {
		t.Fatal("nil tracer must hand out the nil trace handle")
	}
	h.Emit(Event{Name: "y"}) // must not panic
	if h.ID() != "" {
		t.Fatal("nil trace ID must be empty")
	}
}

func TestTracerSequenceAndWindow(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Name: "e", Round: i})
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) || e.Round != i {
			t.Fatalf("event %d out of order: seq=%d round=%d", i, e.Seq, e.Round)
		}
		if e.TimeNS == 0 {
			t.Fatal("Emit must stamp wall-clock time when unset")
		}
	}
	last := tr.Last(2)
	if len(last) != 2 || last[0].Round != 3 || last[1].Round != 4 {
		t.Fatalf("Last(2) = %+v", last)
	}
}

// TestTracerWraparound fills the ring past capacity and checks the
// surviving window is the newest events, still chronological.
func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(16)
	const emitted = 40
	for i := 0; i < emitted; i++ {
		tr.Emit(Event{Name: "e", Round: i, TimeNS: int64(i + 1)})
	}
	if tr.Len() != 16 {
		t.Fatalf("Len = %d, want 16", tr.Len())
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("len = %d, want 16", len(evs))
	}
	for i, e := range evs {
		wantRound := emitted - 16 + i
		if e.Round != wantRound || e.Seq != uint64(wantRound+1) {
			t.Fatalf("event %d: round=%d seq=%d, want round %d", i, e.Round, e.Seq, wantRound)
		}
	}
	// Pre-filled deterministic timestamps must survive untouched.
	if evs[0].TimeNS != int64(emitted-16+1) {
		t.Fatalf("TimeNS = %d", evs[0].TimeNS)
	}
	if over := tr.Last(1000); len(over) != 16 {
		t.Fatalf("Last(1000) len = %d, want 16", len(over))
	}
}

func TestTraceHandleStampsID(t *testing.T) {
	tr := NewTracer(16)
	run := tr.StartTrace("mpr-int")
	if run.ID() != "mpr-int" {
		t.Fatalf("ID = %q", run.ID())
	}
	run.Emit(Event{Name: "int_round", Round: 1, Price: 0.5})
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Trace != "mpr-int" {
		t.Fatalf("trace not stamped: %+v", evs)
	}
}

func TestTracerJSONLSink(t *testing.T) {
	tr := NewTracer(16)
	var sink strings.Builder
	tr.SetSink(&sink)
	tr.Emit(Event{Name: "market_clear", Slot: 3, Price: 1.25, TargetW: 100, Label: "feasible"})
	tr.Emit(Event{Name: "emergency_lift", Slot: 9})
	sc := bufio.NewScanner(strings.NewReader(sink.String()))
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("sink lines = %d, want 2", len(lines))
	}
	if lines[0].Name != "market_clear" || lines[0].Price != 1.25 || lines[0].Label != "feasible" {
		t.Fatalf("line 0 = %+v", lines[0])
	}
	if lines[1].Name != "emergency_lift" || lines[1].Slot != 9 {
		t.Fatalf("line 1 = %+v", lines[1])
	}
	// Detaching the sink stops the stream but not the ring.
	tr.SetSink(nil)
	before := sink.Len()
	tr.Emit(Event{Name: "after"})
	if sink.Len() != before {
		t.Fatal("detached sink still receiving events")
	}
	if tr.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", tr.Len())
	}
}

// TestTracerConcurrentDropAccounting hammers one ring from many writers
// and pins the overflow invariant the /debug/market dropped_events field
// reports on: every emitted event is either still retained in the window
// or counted as dropped — exactly once, even when wraparound and the
// sequence counter are contended. Run under -race this also covers the
// ring's locking discipline.
func TestTracerConcurrentDropAccounting(t *testing.T) {
	const (
		writers   = 8
		perWriter = 5000
	)
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Emit(Event{Name: "burst", Round: w, Value: float64(i)})
			}
		}(w)
	}
	// Concurrent readers must never observe retained+dropped exceeding
	// what has been emitted (sequence numbers are assigned under the same
	// lock, so Len+Dropped trails seq monotonically).
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := uint64(tr.Len()) + tr.Dropped(); got > writers*perWriter {
				t.Errorf("retained+dropped = %d mid-run, exceeds %d emitted", got, writers*perWriter)
				return
			}
			tr.Last(8)
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	const total = writers * perWriter
	if got := uint64(tr.Len()) + tr.Dropped(); got != total {
		t.Fatalf("retained(%d) + dropped(%d) = %d, want %d emitted", tr.Len(), tr.Dropped(), got, total)
	}
	if tr.Len() != 64 {
		t.Fatalf("ring len = %d, want full capacity 64", tr.Len())
	}
	// The surviving window is the final slice of the sequence space, in
	// order and gap-free.
	evs := tr.Events()
	for i, e := range evs {
		if want := uint64(total - 64 + i + 1); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}

	// /debug/market?format=json reports the same counter.
	h := NewHandler(HandlerConfig{Tracer: tr})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/market?format=json", nil))
	var body struct {
		DroppedEvents uint64  `json:"dropped_events"`
		Events        []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad /debug/market JSON: %v", err)
	}
	if body.DroppedEvents != tr.Dropped() || body.DroppedEvents != total-64 {
		t.Fatalf("dropped_events = %d, want %d", body.DroppedEvents, total-64)
	}
	if len(body.Events) == 0 {
		t.Fatal("debug/market returned no events")
	}
}
