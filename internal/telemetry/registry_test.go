package telemetry

import (
	"strings"
	"sync"
	"testing"

	"mpr/internal/check/floats"
)

func TestNilRegistryIsNop(t *testing.T) {
	r := Nop()
	if r != nil {
		t.Fatal("Nop registry must be nil")
	}
	// Every method must be callable and free on the nil registry / nil
	// metrics — this is the zero-overhead instrumentation contract.
	c := r.Counter("x", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	g := r.Gauge("y", "")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	h := r.Histogram("z", "", RoundBuckets)
	h.Observe(2)
	f := r.CounterFamily("w", "", "mode")
	f.With("a").Inc()
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.CounterValue("x") != 0 || r.GaugeValue("y") != 0 {
		t.Fatal("nil registry lookups must read 0")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mpr_test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("mpr_test_total", "help"); c2 != c {
		t.Fatal("get-or-create must return the same counter")
	}
	if got := r.CounterValue("mpr_test_total"); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	g := r.Gauge("mpr_test_g", "")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	if got := r.GaugeValue("mpr_test_g"); got != 1.5 {
		t.Fatalf("GaugeValue = %g, want 1.5", got)
	}
	// Absent and wrong-kind lookups read zero.
	if r.CounterValue("absent") != 0 || r.CounterValue("mpr_test_g") != 0 {
		t.Fatal("absent/mismatched CounterValue must read 0")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dual", "")
}

// TestHistogramBucketEdges pins the Prometheus bucket semantics: an
// observation equal to an upper bound counts in that bucket (v ≤ le), and
// anything above the last bound lands in +Inf only.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.5, 100} {
		h.Observe(v)
	}
	snap := h.snapshot()
	// Non-cumulative per-bucket counts, v ≤ le semantics:
	// {0.5, 1}→(≤1), {1.0000001, 2}→(1,2], {4}→(2,4], {4.5, 100}→+Inf.
	want := []int64{2, 2, 1, 2}
	if len(snap.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(snap.Counts), len(want))
	}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 7 {
		t.Fatalf("count = %d, want 7", snap.Count)
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 4 + 4.5 + 100
	if !floats.AbsEqual(snap.Sum, wantSum, 1e-9) {
		t.Fatalf("sum = %g, want %g", snap.Sum, wantSum)
	}
	if !floats.AbsEqual(snap.Mean(), wantSum/7, 1e-9) {
		t.Fatalf("mean = %g, want %g", snap.Mean(), wantSum/7)
	}
}

// TestConcurrentCountersAndHistogram exercises the atomic/striped paths
// under the race detector and checks nothing is lost.
func TestConcurrentCountersAndHistogram(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve inside the goroutine to also race the get-or-create
			// path, as init-time instrumentation does.
			c := r.Counter("c", "")
			g := r.Gauge("g", "")
			h := r.Histogram("h", "", []float64{1, 10, 100})
			f := r.CounterFamily("f", "", "mode")
			fc := f.With("m")
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 200))
				fc.Inc()
			}
		}()
	}
	wg.Wait()
	const total = goroutines * perG
	if got := r.CounterValue("c"); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := r.GaugeValue("g"); got != total {
		t.Fatalf("gauge = %g, want %d", got, total)
	}
	s := r.Snapshot()
	hs := s.Histogram("h")
	if hs.Count != total {
		t.Fatalf("histogram count = %d, want %d", hs.Count, total)
	}
	var bucketSum int64
	for _, c := range hs.Counts {
		bucketSum += c
	}
	if bucketSum != total {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, total)
	}
	if got := s.Counter(`f{mode="m"}`); got != total {
		t.Fatalf("family child = %d, want %d", got, total)
	}
}

func TestSnapshotAndFamilyExpansion(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.Gauge("b", "").Set(7.5)
	r.Histogram("c", "", []float64{1, 2}).Observe(1.5)
	f := r.CounterFamily("d_total", "", "mode")
	f.With("closed_form").Add(2)
	f.With("bisection").Inc()
	s := r.Snapshot()
	if s.Counter("a_total") != 3 {
		t.Fatalf("a_total = %d", s.Counter("a_total"))
	}
	if s.Gauges["b"] != 7.5 {
		t.Fatalf("b = %g", s.Gauges["b"])
	}
	if s.Histogram("c").Count != 1 {
		t.Fatalf("c count = %d", s.Histogram("c").Count)
	}
	if s.Counter(`d_total{mode="closed_form"}`) != 2 || s.Counter(`d_total{mode="bisection"}`) != 1 {
		t.Fatalf("family expansion wrong: %v", s.Counters)
	}
	// Nil-snapshot reads are safe.
	var nilSnap *Snapshot
	if nilSnap.Counter("x") != 0 || nilSnap.Histogram("y").Count != 0 {
		t.Fatal("nil snapshot reads must be zero")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpr_searches_total", "Price searches.").Add(2)
	r.Gauge("mpr_overload_w", "Overload depth.").Set(120.5)
	h := r.Histogram("mpr_rounds", "Rounds.", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	fam := r.CounterFamily("mpr_clears_total", "Clears.", "mode")
	fam.With("closed_form").Add(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP mpr_searches_total Price searches.",
		"# TYPE mpr_searches_total counter",
		"mpr_searches_total 2",
		"# TYPE mpr_overload_w gauge",
		"mpr_overload_w 120.5",
		"# TYPE mpr_rounds histogram",
		`mpr_rounds_bucket{le="1"} 1`,
		`mpr_rounds_bucket{le="2"} 1`,
		`mpr_rounds_bucket{le="4"} 2`, // cumulative: 1 + the 3-observation
		`mpr_rounds_bucket{le="+Inf"} 3`,
		"mpr_rounds_sum 13",
		"mpr_rounds_count 3",
		`mpr_clears_total{mode="closed_form"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestObserveAllocFree proves the histogram/counter hot path does not
// allocate — the property the striped fixed-layout design buys.
func TestObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", LatencySecondsBuckets)
	allocs := testing.AllocsPerRun(500, func() {
		c.Inc()
		g.Set(1)
		h.Observe(0.003)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates: %v allocs/op", allocs)
	}
}
