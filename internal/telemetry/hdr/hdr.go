// Package hdr is a lock-striped, log-bucketed high-dynamic-range
// histogram for latency-style measurements. Where the fixed-bucket
// telemetry.Histogram needs its bounds guessed up front (and answers
// quantile questions only as coarsely as those guesses), an hdr.Histogram
// covers roughly 1 ns – 100 s with bounded *relative* error: every power
// of two in the trackable range is subdivided into 2^subBits linear
// sub-buckets, so a bucket's width is at most 1/2^subBits (≈3.1%) of the
// values it holds, at every magnitude.
//
// The layout is fixed — every histogram shares the same bucket
// boundaries — which makes snapshots mergeable by plain per-bucket
// addition: shard-local histograms fold into fleet-wide quantiles without
// rebinning error. Record is wait-free (a few atomic adds on a
// round-robin-selected stripe) and allocates nothing in steady state,
// which the CI load job enforces.
//
// Values are plain float64s; the natural unit for RTT paths is seconds,
// putting the trackable range [2^-30 s ≈ 0.93 ns, 2^7 s = 128 s].
// Out-of-range values clamp into dedicated underflow/overflow buckets and
// are still counted (and still tracked by Min/Max), so a pathological
// tail can never silently vanish.
package hdr

import (
	"math"
	"sync/atomic"
)

const (
	// subBits is the number of mantissa bits used to subdivide each
	// power of two: 2^subBits linear sub-buckets per octave, bounding
	// relative bucket width by 1/2^subBits ≈ 3.1%.
	subBits  = 5
	subCount = 1 << subBits

	// minExp and maxExp bound the trackable exponent range: values in
	// [2^minExp, 2^maxExp) land in log buckets; outside they clamp to
	// the underflow/overflow buckets.
	minExp = -30 // 2^-30 s ≈ 0.93 ns
	maxExp = 7   // 2^7 s = 128 s

	octaves = maxExp - minExp // exponents minExp..maxExp-1

	// NumBuckets is the total bucket count: underflow + log-linear
	// grid + overflow.
	NumBuckets = 2 + octaves*subCount

	underflowBucket = 0
	overflowBucket  = NumBuckets - 1
)

// MinTrackable and MaxTrackable bound the log-bucketed range; values
// outside clamp to the underflow/overflow buckets.
var (
	MinTrackable = math.Ldexp(1, minExp)
	MaxTrackable = math.Ldexp(1, maxExp)
)

// bucketOf maps a value onto its bucket index. Non-positive and
// sub-range values underflow; values at or above MaxTrackable overflow.
// NaN is pinned to underflow explicitly (it compares false everywhere),
// so a corrupted measurement can never fabricate a 128 s tail.
func bucketOf(v float64) int {
	if math.IsNaN(v) || v < MinTrackable {
		return underflowBucket
	}
	if v >= MaxTrackable {
		return overflowBucket
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7ff) - 1023
	sub := int(bits >> (52 - subBits) & (subCount - 1))
	return 1 + (exp-minExp)*subCount + sub
}

// BucketBounds returns the [lo, hi) value range of bucket i. The
// underflow bucket spans [0, MinTrackable); the overflow bucket
// [MaxTrackable, +Inf).
func BucketBounds(i int) (lo, hi float64) {
	switch {
	case i <= underflowBucket:
		return 0, MinTrackable
	case i >= overflowBucket:
		return MaxTrackable, math.Inf(1)
	}
	i--
	exp := minExp + i/subCount
	sub := i % subCount
	scale := math.Ldexp(1, exp)
	return scale * (1 + float64(sub)/subCount), scale * (1 + float64(sub+1)/subCount)
}

// stripes is the number of independent shards an observation can land
// on; concurrent recorders contend 1/stripes as often on any one cache
// line. Snapshots fold the stripes back together.
const stripes = 8

// stripe is one shard. minBits/maxBits hold float64 bit patterns
// (math.Float64bits) updated by CAS; the trailing pad keeps the hot
// count/sum words of adjacent stripes on separate cache lines.
type stripe struct {
	counts  [NumBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	_       [24]byte
}

func (s *stripe) addSum(v float64) {
	for {
		old := s.sumBits.Load()
		if s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (s *stripe) updateMin(v float64) {
	for {
		old := s.minBits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if s.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (s *stripe) updateMax(v float64) {
	for {
		old := s.maxBits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if s.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram is a concurrent HDR histogram. The zero value is NOT ready;
// construct with New. A nil *Histogram is the no-op histogram: Record
// does nothing and Snapshot returns the empty snapshot, mirroring the
// telemetry package's nil-safety contract.
type Histogram struct {
	stripes [stripes]stripe
	rr      atomic.Uint64
}

// New builds an empty histogram (~80 KiB: 8 stripes × NumBuckets
// counters).
func New() *Histogram {
	h := &Histogram{}
	for i := range h.stripes {
		h.stripes[i].minBits.Store(math.Float64bits(math.Inf(1)))
		h.stripes[i].maxBits.Store(math.Float64bits(math.Inf(-1)))
	}
	return h
}

// Record adds one observation. Wait-free, zero-alloc, nil-safe: a few
// atomic updates on a round-robin-selected stripe.
func (h *Histogram) Record(v float64) {
	if h == nil {
		return
	}
	s := &h.stripes[h.rr.Add(1)&(stripes-1)]
	s.counts[bucketOf(v)].Add(1)
	s.count.Add(1)
	s.addSum(v)
	s.updateMin(v)
	s.updateMax(v)
}

// Count returns the number of recorded observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return n
}

// Snapshot folds the stripes into a mergeable point-in-time copy.
// Returns the empty snapshot on a nil histogram. Concurrent Records may
// land between stripe reads, so a snapshot taken under write load is a
// consistent-enough view, not a linearizable cut — the same contract as
// the registry's fixed-bucket histograms.
func (h *Histogram) Snapshot() Snapshot {
	snap := Snapshot{Min: math.Inf(1), Max: math.Inf(-1)}
	if h == nil {
		snap.Min, snap.Max = 0, 0
		return snap
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := range s.counts {
			snap.Counts[b] += s.counts[b].Load()
		}
		snap.Count += s.count.Load()
		snap.Sum += math.Float64frombits(s.sumBits.Load())
		if min := math.Float64frombits(s.minBits.Load()); min < snap.Min {
			snap.Min = min
		}
		if max := math.Float64frombits(s.maxBits.Load()); max > snap.Max {
			snap.Max = max
		}
	}
	if snap.Count == 0 {
		snap.Min, snap.Max = 0, 0
	}
	return snap
}

// Quantile snapshots the histogram and estimates the p-quantile — a
// convenience for one-off reads; samplers taking several quantiles per
// tick should Snapshot once and query that.
func (h *Histogram) Quantile(p float64) float64 {
	return h.Snapshot().Quantile(p)
}

// Snapshot is a point-in-time copy of a histogram. All histograms share
// one fixed bucket layout, so snapshots merge by per-bucket addition —
// the property that lets per-shard recorders fold into fleet quantiles.
type Snapshot struct {
	Counts [NumBuckets]int64
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
}

// Merge folds other into s.
func (s *Snapshot) Merge(other Snapshot) {
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	if other.Count > 0 {
		if s.Count == 0 || other.Min < s.Min {
			s.Min = other.Min
		}
		if s.Count == 0 || other.Max > s.Max {
			s.Max = other.Max
		}
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Mean returns the average observation (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the p-quantile (p in [0,1]) as the midpoint of the
// bucket holding the rank-⌈p·n⌉ observation, clamped to the observed
// [Min, Max]. The exact sorted-sample quantile under the same rank
// convention lands in that same bucket, so the absolute error is bounded
// by one bucket width — i.e. relative error ≤ 1/2^subBits within the
// trackable range. Returns 0 when empty; p ≤ 0 returns Min, p ≥ 1 Max.
func (s Snapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min
	}
	if p >= 1 {
		return s.Max
	}
	rank := int64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			lo, hi := BucketBounds(i)
			est := (lo + hi) / 2
			if i == underflowBucket || i == overflowBucket {
				// Clamp the open-ended buckets to what was seen.
				if i == underflowBucket {
					est = s.Min
				} else {
					est = s.Max
				}
			}
			if est < s.Min {
				est = s.Min
			}
			if est > s.Max {
				est = s.Max
			}
			return est
		}
	}
	return s.Max
}
