package hdr

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBucketOfRoundTrip(t *testing.T) {
	// Every trackable value must land in a bucket whose bounds contain it.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		// Log-uniform over the trackable range.
		v := math.Exp(rng.Float64()*(math.Log(MaxTrackable)-math.Log(MinTrackable)) + math.Log(MinTrackable))
		b := bucketOf(v)
		lo, hi := BucketBounds(b)
		if v < lo || v >= hi {
			t.Fatalf("value %g in bucket %d with bounds [%g, %g)", v, b, lo, hi)
		}
	}
}

func TestBucketBoundsContiguous(t *testing.T) {
	prevHi := MinTrackable
	for i := 1; i < overflowBucket; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d lo = %g, want %g (gap or overlap)", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d empty: [%g, %g)", i, lo, hi)
		}
		// Relative bucket width is the quantile error bound.
		if w := (hi - lo) / lo; w > 1.0/subCount+1e-12 {
			t.Fatalf("bucket %d relative width %g > %g", i, w, 1.0/subCount)
		}
		prevHi = hi
	}
}

func TestBucketOfClamps(t *testing.T) {
	for _, v := range []float64{0, -1, MinTrackable / 2, math.Inf(-1), math.NaN()} {
		if b := bucketOf(v); b != underflowBucket {
			t.Errorf("bucketOf(%g) = %d, want underflow", v, b)
		}
	}
	for _, v := range []float64{MaxTrackable, MaxTrackable * 10, math.Inf(1)} {
		if b := bucketOf(v); b != overflowBucket {
			t.Errorf("bucketOf(%g) = %d, want overflow", v, b)
		}
	}
}

// refDistributions are the reference shapes the quantile error bound is
// verified against: uniform, lognormal (heavy right tail), and bimodal
// (fast mode + slow mode, the classic RTT-under-load shape).
func refDistributions() map[string]func(*rand.Rand) float64 {
	return map[string]func(*rand.Rand) float64{
		"uniform": func(r *rand.Rand) float64 {
			return 1e-4 + r.Float64()*0.5
		},
		"lognormal": func(r *rand.Rand) float64 {
			return math.Exp(r.NormFloat64()*1.5 - 7) // median ~0.9 ms
		},
		"bimodal": func(r *rand.Rand) float64 {
			if r.Float64() < 0.9 {
				return 2e-4 + r.Float64()*1e-4
			}
			return 0.5 + r.Float64()*2
		},
	}
}

// TestQuantileError pins the acceptance bound: Quantile(p) must sit
// within one bucket width of the exact sorted-sample quantile under the
// same rank convention.
func TestQuantileError(t *testing.T) {
	const n = 200000
	for name, gen := range refDistributions() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			h := New()
			samples := make([]float64, n)
			for i := range samples {
				v := gen(rng)
				samples[i] = v
				h.Record(v)
			}
			sort.Float64s(samples)
			snap := h.Snapshot()
			if snap.Count != n {
				t.Fatalf("count = %d, want %d", snap.Count, n)
			}
			for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999} {
				rank := int(math.Ceil(p * n))
				if rank < 1 {
					rank = 1
				}
				exact := samples[rank-1]
				est := snap.Quantile(p)
				lo, hi := BucketBounds(bucketOf(exact))
				width := hi - lo
				if math.Abs(est-exact) > width+1e-12 {
					t.Errorf("p=%v: estimate %g vs exact %g, |err| %g > bucket width %g",
						p, est, exact, math.Abs(est-exact), width)
				}
			}
			// Edge quantiles return the observed extremes exactly.
			if got := snap.Quantile(0); got != samples[0] {
				t.Errorf("Quantile(0) = %g, want min %g", got, samples[0])
			}
			if got := snap.Quantile(1); got != samples[n-1] {
				t.Errorf("Quantile(1) = %g, want max %g", got, samples[n-1])
			}
		})
	}
}

func TestSnapshotMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, all := New(), New(), New()
	gen := refDistributions()["lognormal"]
	for i := 0; i < 50000; i++ {
		v := gen(rng)
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := all.Snapshot()
	if merged.Counts != want.Counts {
		t.Fatal("merged bucket counts differ from combined recording")
	}
	if merged.Count != want.Count || merged.Min != want.Min || merged.Max != want.Max {
		t.Errorf("merged count/min/max = %d/%g/%g, want %d/%g/%g",
			merged.Count, merged.Min, merged.Max, want.Count, want.Min, want.Max)
	}
	if math.Abs(merged.Sum-want.Sum) > 1e-9*math.Abs(want.Sum) {
		t.Errorf("merged sum %g vs %g", merged.Sum, want.Sum)
	}
	for _, p := range []float64{0.5, 0.99, 0.999} {
		if merged.Quantile(p) != want.Quantile(p) {
			t.Errorf("p=%v: merged quantile %g != combined %g", p, merged.Quantile(p), want.Quantile(p))
		}
	}
	// Merging into an empty snapshot preserves extremes.
	var empty Snapshot
	empty.Merge(want)
	if empty.Min != want.Min || empty.Max != want.Max || empty.Count != want.Count {
		t.Error("merge into empty snapshot lost count or extremes")
	}
}

func TestEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Record(1) // must not panic
	if c := nilH.Count(); c != 0 {
		t.Errorf("nil count = %d", c)
	}
	snap := nilH.Snapshot()
	if snap.Count != 0 || snap.Quantile(0.99) != 0 || snap.Mean() != 0 {
		t.Error("nil snapshot not empty")
	}
	h := New()
	snap = h.Snapshot()
	if snap.Min != 0 || snap.Max != 0 || snap.Quantile(0.5) != 0 {
		t.Error("empty snapshot min/max/quantile not zero")
	}
}

func TestClampedRecordsStillCount(t *testing.T) {
	h := New()
	h.Record(0)
	h.Record(1e-12)
	h.Record(200) // above MaxTrackable
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("count = %d, want 3", snap.Count)
	}
	if snap.Counts[underflowBucket] != 2 || snap.Counts[overflowBucket] != 1 {
		t.Errorf("underflow/overflow = %d/%d, want 2/1",
			snap.Counts[underflowBucket], snap.Counts[overflowBucket])
	}
	if snap.Max != 200 {
		t.Errorf("max = %g, want 200 (overflow still tracked)", snap.Max)
	}
	// The p=1 quantile of an overflow-heavy histogram clamps to Max.
	if q := snap.Quantile(0.999); q != 200 {
		t.Errorf("overflow quantile = %g, want clamped 200", q)
	}
}

// TestHDRRecordZeroAlloc is the CI gate: Record must not allocate in
// steady state.
func TestHDRRecordZeroAlloc(t *testing.T) {
	h := New()
	h.Record(0.01)
	v := 0.001
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v *= 1.0001
	}); allocs != 0 {
		t.Fatalf("Record allocates %v per call, want 0", allocs)
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := New()
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Record(math.Exp(rng.NormFloat64() - 6))
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", snap.Count, goroutines*per)
	}
	var sum int64
	for _, c := range snap.Counts {
		sum += c
	}
	if sum != snap.Count {
		t.Errorf("bucket sum %d != count %d", sum, snap.Count)
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(float64(i%1000) * 1e-5)
	}
}
