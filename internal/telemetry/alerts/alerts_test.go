package alerts

import (
	"strings"
	"testing"

	"mpr/internal/telemetry/tsdb"
)

func rawSeries(name string, labels map[string]string, vals []float64) tsdb.SeriesData {
	pts := make([]tsdb.Bucket, len(vals))
	for i, v := range vals {
		pts[i] = tsdb.Bucket{Start: int64(i), End: int64(i), Min: v, Max: v, Sum: v, Count: 1}
	}
	return tsdb.SeriesData{Name: name, Labels: labels, Resolution: "raw", Points: pts}
}

func TestThresholdRuleConsecutiveRuns(t *testing.T) {
	rule := Rule{Name: "Unmet", Series: "u", Op: GT, Threshold: 0, ForSamples: 2}
	// Run of 1 (ignored), run of 3 (fires), trailing run of 2 (fires at
	// series end without a terminating clean sample).
	data := []tsdb.SeriesData{rawSeries("u", nil,
		[]float64{0, 5, 0, 1, 2, 3, 0, 0, 7, 9})}
	f := Eval([]Rule{rule}, data)
	if len(f) != 2 {
		t.Fatalf("firings = %+v, want 2", f)
	}
	if f[0].From != 3 || f[0].To != 5 || f[0].Value != 3 || f[0].Samples != 3 {
		t.Fatalf("first firing = %+v", f[0])
	}
	if f[1].From != 8 || f[1].To != 9 || f[1].Value != 9 || f[1].Samples != 2 {
		t.Fatalf("trailing firing = %+v", f[1])
	}
}

func TestThresholdRuleLTUsesMin(t *testing.T) {
	rule := Rule{Name: "LowPrice", Series: "p", Op: LT, Threshold: 0.1}
	// A downsampled bucket whose Min dips below threshold fires even
	// though its Max does not.
	data := []tsdb.SeriesData{{Name: "p", Points: []tsdb.Bucket{
		{Start: 0, End: 9, Min: 0.05, Max: 0.9, Count: 10},
	}}}
	f := Eval([]Rule{rule}, data)
	if len(f) != 1 || f[0].Value != 0.05 {
		t.Fatalf("firings = %+v", f)
	}
}

func TestBurnRateRule(t *testing.T) {
	rule := Rule{Name: "Sustained", Series: "ov", Op: GT, Threshold: 0,
		WindowSamples: 10, BurnFrac: 0.5}
	// 4/10 violating in the trailing window: below the 50% burn.
	vals := []float64{1, 1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1, 0, 0}
	if f := Eval([]Rule{rule}, []tsdb.SeriesData{rawSeries("ov", nil, vals)}); len(f) != 0 {
		t.Fatalf("4/10 burn fired: %+v", f)
	}
	// 6/10 violating: fires, worst value and violating range reported.
	vals = []float64{0, 0, 0, 0, 0, 0, 2, 3, 9, 1, 0, 1, 1, 0, 0, 0}
	f := Eval([]Rule{rule}, []tsdb.SeriesData{rawSeries("ov", nil, vals)})
	if len(f) != 1 {
		t.Fatalf("6/10 burn did not fire: %+v", f)
	}
	if f[0].Samples != 6 || f[0].Value != 9 || f[0].From != 6 || f[0].To != 12 {
		t.Fatalf("firing = %+v", f[0])
	}
	// Only the trailing window counts: a series that violated long ago
	// but is clean now stays quiet.
	vals = append([]float64{9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, make([]float64, 10)...)
	if f := Eval([]Rule{rule}, []tsdb.SeriesData{rawSeries("ov", nil, vals)}); len(f) != 0 {
		t.Fatalf("stale violations fired: %+v", f)
	}
}

func TestRuleMatcherAndSeriesNaming(t *testing.T) {
	rule := Rule{Name: "R", Series: "m", Match: map[string]string{"algo": "int"},
		Op: GT, Threshold: 1}
	data := []tsdb.SeriesData{
		rawSeries("m", map[string]string{"algo": "int"}, []float64{5}),
		rawSeries("m", map[string]string{"algo": "stat"}, []float64{5}),
		rawSeries("other", nil, []float64{5}),
	}
	f := Eval([]Rule{rule}, data)
	if len(f) != 1 {
		t.Fatalf("firings = %+v, want only the matching series", f)
	}
	if want := `m{algo="int"}`; f[0].Series != want {
		t.Fatalf("series = %q, want %q", f[0].Series, want)
	}
	if !strings.Contains(f[0].String(), "ALERT R") {
		t.Fatalf("String() = %q", f[0].String())
	}
}

func TestEvalStoreWindow(t *testing.T) {
	st := tsdb.New(128)
	s := st.Series("mpr_sim_reduction_unmet_w")
	for i := 0; i < 50; i++ {
		v := 0.0
		if i >= 30 && i < 35 {
			v = 100
		}
		s.Append(int64(i), v)
	}
	rules := []Rule{{Name: "Unmet", Series: "mpr_sim_reduction_unmet_w",
		Op: GT, Threshold: 0, ForSamples: 2}}
	f := EvalStore(rules, st, 0, 0)
	if len(f) != 1 || f[0].From != 30 || f[0].To != 34 || f[0].Samples != 5 {
		t.Fatalf("firings = %+v", f)
	}
	// Restricting the window past the violation silences it.
	if f := EvalStore(rules, st, 40, 0); len(f) != 0 {
		t.Fatalf("windowed eval fired: %+v", f)
	}
	// Nil store is quiet.
	if f := EvalStore(rules, nil, 0, 0); len(f) != 0 {
		t.Fatalf("nil store fired: %+v", f)
	}
}

func TestDefaultRuleSetsAreWellFormed(t *testing.T) {
	for _, rules := range [][]Rule{SimRules(), ManagerRules(), LoadRules()} {
		for _, r := range rules {
			if r.Name == "" || r.Series == "" {
				t.Fatalf("malformed rule %+v", r)
			}
			if r.WindowSamples > 0 && (r.BurnFrac <= 0 || r.BurnFrac >= 1) {
				t.Fatalf("burn rule %s has bad fraction %g", r.Name, r.BurnFrac)
			}
			if r.String() == "" {
				t.Fatalf("rule %s has empty String()", r.Name)
			}
		}
	}
}

func TestLoadRulesFire(t *testing.T) {
	// A degraded load run: p99 above 1s for a stretch, p999 brushing the
	// round timeout once, and a quarter of the window below full fleet
	// attendance. Every load rule should fire exactly once.
	data := []tsdb.SeriesData{
		rawSeries("mpr_load_rtt_p99_seconds", nil,
			[]float64{0.2, 0.3, 1.2, 1.4, 1.3, 0.4}),
		rawSeries("mpr_load_rtt_p999_seconds", nil,
			[]float64{0.5, 1.95, 0.6}),
		rawSeries("mpr_load_agents_connected_frac", nil,
			[]float64{1, 1, 0.97, 0.95, 0.9, 1, 0.98, 0.96, 1, 1}),
	}
	firings := Eval(LoadRules(), data)
	byRule := map[string]int{}
	for _, f := range firings {
		byRule[f.Rule]++
	}
	for _, want := range []string{"RoundTripP99High", "RoundTripP999High", "AgentAttrition"} {
		if byRule[want] != 1 {
			t.Errorf("%s fired %d times, want 1 (firings %+v)", want, byRule[want], firings)
		}
	}

	// A healthy run fires nothing.
	healthy := []tsdb.SeriesData{
		rawSeries("mpr_load_rtt_p99_seconds", nil, []float64{0.1, 0.2, 0.15}),
		rawSeries("mpr_load_rtt_p999_seconds", nil, []float64{0.3, 0.4}),
		rawSeries("mpr_load_agents_connected_frac", nil, []float64{1, 1, 1, 1}),
	}
	if f := Eval(LoadRules(), healthy); len(f) != 0 {
		t.Errorf("healthy run fired %+v", f)
	}
}

// TestEvictionBurstRule exercises the manager rule over the per-sample
// eviction series: one sick agent evicted once stays quiet; sustained
// evictions across the window fire.
func TestEvictionBurstRule(t *testing.T) {
	// 1 eviction in 10 samples: a single slow agent, not a burst.
	quiet := []tsdb.SeriesData{
		rawSeries("mpr_mgr_evictions", nil,
			[]float64{0, 0, 1, 0, 0, 0, 0, 0, 0, 0}),
	}
	if f := Eval(ManagerRules(), quiet); len(f) != 0 {
		t.Errorf("single eviction fired %+v", f)
	}
	// Evictions in 4 of the trailing 10 samples: the fleet is stalling.
	burst := []tsdb.SeriesData{
		rawSeries("mpr_mgr_evictions", nil,
			[]float64{0, 1, 3, 0, 2, 0, 0, 1, 0, 0}),
	}
	firings := Eval(ManagerRules(), burst)
	if len(firings) != 1 || firings[0].Rule != "EvictionBurst" {
		t.Fatalf("burst firings = %+v, want one EvictionBurst", firings)
	}
	if firings[0].Value != 3 || firings[0].Samples != 4 {
		t.Errorf("firing = %+v, want worst 3 over 4 samples", firings[0])
	}
}

// firing is a test shorthand.
func firingAt(rule, series string, from int64) Firing {
	return Firing{Rule: rule, Series: series, From: from, To: from + 1, Value: 1, Samples: 1}
}

// TestDeduperExactRepeats pins the window-0 policy mprload's live
// scorecard uses: re-evaluating an overlapping window returns the same
// firing (same rule/series/From) and it must be suppressed, while a new
// violation window — or the same window on a different rule or series —
// is fresh.
func TestDeduperExactRepeats(t *testing.T) {
	d := NewDeduper(0)
	f1 := firingAt("Rule", "s", 10)
	if !d.Fresh(f1) {
		t.Fatal("first firing not fresh")
	}
	if d.Fresh(f1) {
		t.Fatal("exact repeat accepted")
	}
	// Same window, extended To (a threshold run that kept growing): the
	// From identifies it, so it stays suppressed.
	extended := f1
	extended.To, extended.Samples = 20, 5
	if d.Fresh(extended) {
		t.Fatal("extended repeat accepted")
	}
	if !d.Fresh(firingAt("Rule", "s", 50)) {
		t.Fatal("new violation window suppressed")
	}
	if !d.Fresh(firingAt("Other", "s", 10)) || !d.Fresh(firingAt("Rule", "s2", 10)) {
		t.Fatal("distinct rule/series suppressed")
	}
	// Interleaved re-evaluations must not resurrect old firings.
	if d.Fresh(f1) {
		t.Fatal("old firing resurrected after later accepts")
	}
}

// TestDeduperCooldownWindow pins the window>0 policy the flight recorder
// uses as its per-rule dump cooldown: a rule that keeps firing with an
// advancing From produces one fresh firing per window.
func TestDeduperCooldownWindow(t *testing.T) {
	d := NewDeduper(60)
	if !d.Fresh(firingAt("Burst", "e", 100)) {
		t.Fatal("first firing not fresh")
	}
	for from := int64(101); from <= 160; from += 7 {
		if d.Fresh(firingAt("Burst", "e", from)) {
			t.Fatalf("firing at %d inside the 60s cooldown accepted", from)
		}
	}
	if !d.Fresh(firingAt("Burst", "e", 161)) {
		t.Fatal("firing past the cooldown suppressed")
	}
	// The cooldown is per rule+series: another rule dumps independently.
	if !d.Fresh(firingAt("Heap", "h", 120)) {
		t.Fatal("independent rule suppressed by another rule's cooldown")
	}
	// Stale re-evaluations of pre-cooldown history stay suppressed.
	if d.Fresh(firingAt("Burst", "e", 100)) || d.Fresh(firingAt("Burst", "e", 130)) {
		t.Fatal("stale firing accepted after cooldown advanced")
	}
}

// TestDedupOneShot covers the slice convenience form.
func TestDedupOneShot(t *testing.T) {
	in := []Firing{
		firingAt("R", "s", 0),
		firingAt("R", "s", 0),  // exact repeat
		firingAt("R", "s", 30), // within window of 0
		firingAt("R", "s", 90), // past window
		firingAt("Q", "s", 10), // other rule
	}
	out := Dedup(in, 60)
	if len(out) != 3 {
		t.Fatalf("Dedup kept %d firings, want 3: %+v", len(out), out)
	}
	if out[0].From != 0 || out[1].From != 90 || out[2].Rule != "Q" {
		t.Fatalf("Dedup kept wrong firings: %+v", out)
	}
	if got := Dedup(in, 0); len(got) != 4 {
		t.Fatalf("window-0 Dedup kept %d, want 4", len(got))
	}
}

// TestRuntimeRulesFire sanity-checks the runtime-health rules over
// synthetic mpr_rt_* series shaped like a goroutine leak, a heap blowout,
// and a GC pause regression.
func TestRuntimeRulesFire(t *testing.T) {
	rules := RuntimeRules()
	healthy := []tsdb.SeriesData{
		rawSeries("mpr_rt_goroutines", nil, []float64{90, 120, 250, 300}),
		rawSeries("mpr_rt_heap_inuse_bytes", nil, []float64{1 << 20, 2 << 20}),
		rawSeries("mpr_rt_gc_pause_p99_seconds", nil, []float64{0.001, 0.002}),
	}
	if f := Eval(rules, healthy); len(f) != 0 {
		t.Fatalf("healthy runtime fired: %+v", f)
	}
	leak := make([]float64, 12)
	for i := range leak {
		leak[i] = 150000
	}
	sick := []tsdb.SeriesData{
		rawSeries("mpr_rt_goroutines", nil, leak),
		rawSeries("mpr_rt_heap_inuse_bytes", nil, []float64{5e9, 5e9, 5e9}),
		rawSeries("mpr_rt_gc_pause_p99_seconds", nil, []float64{0.2, 0.3}),
	}
	f := Eval(rules, sick)
	fired := map[string]bool{}
	for _, x := range f {
		fired[x.Rule] = true
	}
	for _, want := range []string{"GoroutineGrowth", "HeapHigh", "GCPauseP99"} {
		if !fired[want] {
			t.Errorf("%s did not fire: %+v", want, f)
		}
	}
}
