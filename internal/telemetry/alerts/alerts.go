// Package alerts evaluates SLO alert rules over recorded time series —
// threshold rules ("metric above X for N consecutive samples") and
// burn-rate rules ("metric violating in more than F of the trailing W
// samples"). mprd evaluates the manager rules live after every market;
// mprbench evaluates the simulator rules post-hoc over exported series.
package alerts

import (
	"fmt"
	"strconv"

	"mpr/internal/telemetry/tsdb"
)

// Op is a comparison operator. For GT rules the bucket's Max is tested
// (a spike anywhere inside a downsampled bucket still violates); for LT
// rules the Min is.
type Op string

const (
	GT Op = ">"
	LT Op = "<"
)

// Rule is one alert rule. Leave WindowSamples zero for a threshold rule
// (fires on ForSamples consecutive violations); set WindowSamples and
// BurnFrac for a burn-rate rule (fires when the violating fraction of
// the trailing WindowSamples exceeds BurnFrac).
type Rule struct {
	Name      string            `json:"name"`
	Series    string            `json:"series"`
	Match     map[string]string `json:"match,omitempty"`
	Op        Op                `json:"op"`
	Threshold float64           `json:"threshold"`
	// ForSamples is the consecutive-violation count a threshold rule
	// needs before firing (minimum 1).
	ForSamples int `json:"for_samples,omitempty"`
	// WindowSamples > 0 switches the rule to burn-rate mode.
	WindowSamples int     `json:"window_samples,omitempty"`
	BurnFrac      float64 `json:"burn_frac,omitempty"`
	Help          string  `json:"help,omitempty"`
}

func (r Rule) String() string {
	if r.WindowSamples > 0 {
		return fmt.Sprintf("%s: %s %s %g in >%.0f%% of trailing %d samples",
			r.Name, r.Series, r.Op, r.Threshold, r.BurnFrac*100, r.WindowSamples)
	}
	return fmt.Sprintf("%s: %s %s %g for %d samples",
		r.Name, r.Series, r.Op, r.Threshold, r.forSamples())
}

func (r Rule) forSamples() int {
	if r.ForSamples < 1 {
		return 1
	}
	return r.ForSamples
}

// violates reports whether one (possibly downsampled) bucket breaks the
// rule, and the value that broke it.
func (r Rule) violates(b tsdb.Bucket) (float64, bool) {
	switch r.Op {
	case LT:
		return b.Min, b.Min < r.Threshold
	default: // GT
		return b.Max, b.Max > r.Threshold
	}
}

// worse reports whether a is a worse violation than b under the rule's
// direction.
func (r Rule) worse(a, b float64) bool {
	if r.Op == LT {
		return a < b
	}
	return a > b
}

// Firing is one fired alert: the rule, the series that fired it, the
// violating time range, the worst violating value, and how many samples
// violated.
type Firing struct {
	Rule    string  `json:"rule"`
	Series  string  `json:"series"`
	From    int64   `json:"from"`
	To      int64   `json:"to"`
	Value   float64 `json:"value"`
	Samples int     `json:"samples"`
	Help    string  `json:"help,omitempty"`
}

func (f Firing) String() string {
	return fmt.Sprintf("ALERT %s on %s: value %g over [%d,%d] (%d samples)",
		f.Rule, f.Series, f.Value, f.From, f.To, f.Samples)
}

// Eval evaluates the rules over already-queried series data and returns
// every firing, in rule order then series order (deterministic given
// deterministic input order, as Store.Query provides).
func Eval(rules []Rule, data []tsdb.SeriesData) []Firing {
	var out []Firing
	for _, r := range rules {
		for _, sd := range data {
			if sd.Name != r.Series || !matchLabels(r.Match, sd.Labels) {
				continue
			}
			if r.WindowSamples > 0 {
				if f, ok := r.evalBurn(sd); ok {
					out = append(out, f)
				}
			} else {
				out = append(out, r.evalThreshold(sd)...)
			}
		}
	}
	return out
}

// EvalStore queries the store for each rule's series over [start,end]
// and evaluates it. End==0 means unbounded.
func EvalStore(rules []Rule, st *tsdb.Store, start, end int64) []Firing {
	var out []Firing
	for _, r := range rules {
		data := st.Query(tsdb.Query{
			Name: r.Series, Match: r.Match,
			Start: start, End: end,
			Resolution: tsdb.ResAuto,
		})
		out = append(out, Eval([]Rule{r}, data)...)
	}
	return out
}

// evalThreshold emits one firing per maximal run of >= ForSamples
// consecutive violating buckets.
func (r Rule) evalThreshold(sd tsdb.SeriesData) []Firing {
	var out []Firing
	need := r.forSamples()
	run := 0
	var worst float64
	var from int64
	for i, b := range sd.Points {
		v, bad := r.violates(b)
		if bad {
			if run == 0 {
				from = b.Start
				worst = v
			} else if r.worse(v, worst) {
				worst = v
			}
			run++
		}
		if (!bad || i == len(sd.Points)-1) && run >= need {
			to := b.End
			if !bad {
				to = sd.Points[i-1].End
			}
			out = append(out, Firing{
				Rule: r.Name, Series: seriesKey(sd),
				From: from, To: to, Value: worst, Samples: run, Help: r.Help,
			})
		}
		if !bad {
			run = 0
		}
	}
	return out
}

// evalBurn fires when the violating fraction of the trailing
// WindowSamples buckets exceeds BurnFrac.
func (r Rule) evalBurn(sd tsdb.SeriesData) (Firing, bool) {
	pts := sd.Points
	if len(pts) == 0 {
		return Firing{}, false
	}
	if len(pts) > r.WindowSamples {
		pts = pts[len(pts)-r.WindowSamples:]
	}
	var bad int
	var worst float64
	var from, to int64
	for _, b := range pts {
		v, isBad := r.violates(b)
		if !isBad {
			continue
		}
		if bad == 0 {
			from = b.Start
			worst = v
		} else if r.worse(v, worst) {
			worst = v
		}
		to = b.End
		bad++
	}
	if bad == 0 || float64(bad)/float64(len(pts)) <= r.BurnFrac {
		return Firing{}, false
	}
	return Firing{
		Rule: r.Name, Series: seriesKey(sd),
		From: from, To: to, Value: worst, Samples: bad, Help: r.Help,
	}, true
}

// Deduper suppresses repeated firings across successive evaluations of
// the same store window. Re-evaluating overlapping history returns the
// same firing again (same rule, series, and From), so consumers that
// evaluate live — mprload's scorecard every sample tick, the flight
// recorder's dump trigger after every market — need a stable notion of
// "new firing". Two policies share this type:
//
//   - window == 0: only exact repeats are suppressed. A firing is fresh
//     iff its (rule, series, From) triple has not been accepted before —
//     mprload's scorecard semantics, where every distinct violation
//     window is reported once.
//   - window > 0: additionally, a firing whose From is within window of
//     the last accepted firing for the same (rule, series) is suppressed
//     — the flight recorder's per-rule dump cooldown, so an alert that
//     keeps firing as its window advances produces one bundle per
//     cooldown period instead of one per evaluation.
//
// The window is measured in the firings' own timestamp units (Unix
// seconds for the daemons, virtual slots for the simulator). The zero
// value is not usable; construct with NewDeduper. Not safe for
// concurrent use — callers serialize evaluations anyway.
type Deduper struct {
	window   int64
	seen     map[string]bool  // exact rule|series|From triples accepted
	lastFrom map[string]int64 // rule|series → From of the last accepted firing
}

// NewDeduper builds a deduper with the given suppression window
// (0 = exact-repeat suppression only; negative is treated as 0).
func NewDeduper(window int64) *Deduper {
	if window < 0 {
		window = 0
	}
	return &Deduper{
		window:   window,
		seen:     make(map[string]bool),
		lastFrom: make(map[string]int64),
	}
}

// Fresh reports whether the firing is new under the deduper's policy,
// recording it when it is. Exact repeats (same rule, series, From) are
// never fresh; with a window, a firing within window of the last
// accepted one for its rule+series is not fresh either.
func (d *Deduper) Fresh(f Firing) bool {
	key := f.Rule + "|" + f.Series
	exact := key + "|" + strconv.FormatInt(f.From, 10)
	if d.seen[exact] {
		return false
	}
	if d.window > 0 {
		if last, ok := d.lastFrom[key]; ok && f.From-last <= d.window {
			return false
		}
	}
	d.seen[exact] = true
	d.lastFrom[key] = f.From
	return true
}

// Dedup filters firings through a fresh Deduper with the given window:
// the one-shot form for post-hoc evaluation over a full export, where
// overlapping threshold runs of the same rule should collapse to one
// firing per window. Order is preserved; the input is not modified.
func Dedup(firings []Firing, window int64) []Firing {
	d := NewDeduper(window)
	out := make([]Firing, 0, len(firings))
	for _, f := range firings {
		if d.Fresh(f) {
			out = append(out, f)
		}
	}
	return out
}

func matchLabels(match, labels map[string]string) bool {
	for k, v := range match {
		if labels[k] != v {
			return false
		}
	}
	return true
}

func seriesKey(sd tsdb.SeriesData) string {
	if len(sd.Labels) == 0 {
		return sd.Name
	}
	// Delegate the canonical rendering to a throwaway query-shaped key:
	// name plus sorted k="v" labels, same shape the store uses.
	labels := make([]tsdb.Label, 0, len(sd.Labels))
	for k, v := range sd.Labels {
		labels = append(labels, tsdb.Label{Key: k, Value: v})
	}
	return tsdb.CanonicalKey(sd.Name, labels)
}

// SimRules are the SLO rules mprbench evaluates over exported simulator
// series (virtual-time samples, one per 5-minute slot).
func SimRules() []Rule {
	return []Rule{
		{
			Name: "SustainedOverload", Series: "mpr_sim_overload_w",
			Op: GT, Threshold: 0, WindowSamples: 60, BurnFrac: 0.5,
			Help: "cluster power above the oversubscribed cap in most of the trailing 5h — emergencies are not clearing the overload",
		},
		{
			Name: "MarketRoundsRegression", Series: "mpr_sim_market_rounds",
			Op: GT, Threshold: 48, ForSamples: 1,
			Help: "an MPR-INT market needed more rounds than the paper's convergence envelope",
		},
		{
			Name: "UnmetReduction", Series: "mpr_sim_reduction_unmet_w",
			Op: GT, Threshold: 0, ForSamples: 2,
			Help: "cleared reduction below the emergency target for consecutive slots",
		},
	}
}

// LoadRules are the SLO rules mprload evaluates live while driving a
// synthetic agent fleet: tail-latency ceilings over the sampled HDR
// quantile series and an attrition rule over the connected-agent
// fraction. Thresholds assume the default 2 s round timeout — a p99
// round turnaround near half the timeout means the market is one
// scheduling hiccup away from dropping bids.
func LoadRules() []Rule {
	return []Rule{
		{
			Name: "RoundTripP99High", Series: "mpr_load_rtt_p99_seconds",
			Op: GT, Threshold: 1.0, ForSamples: 3,
			Help: "p99 agent round turnaround above 1s for consecutive samples — the fleet is lagging the market",
		},
		{
			Name: "RoundTripP999High", Series: "mpr_load_rtt_p999_seconds",
			Op: GT, Threshold: 1.9, ForSamples: 1,
			Help: "p999 agent round turnaround within the 2s round timeout margin — bids are about to be dropped",
		},
		{
			Name: "AgentAttrition", Series: "mpr_load_agents_connected_frac",
			Op: LT, Threshold: 0.99, WindowSamples: 20, BurnFrac: 0.25,
			Help: "more than 1% of the fleet disconnected in a quarter of the trailing window — agents are dying under load",
		},
	}
}

// RuntimeRules are the process-health rules over the flight recorder's
// mpr_rt_* runtime series (see internal/telemetry/flight). mprd appends
// them to its live scorecard when the recorder is enabled; without the
// runtime sampler the series never exist and the rules are inert.
func RuntimeRules() []Rule {
	return []Rule{
		{
			Name: "GoroutineGrowth", Series: "mpr_rt_goroutines",
			Op: GT, Threshold: 100000, WindowSamples: 10, BurnFrac: 0.5,
			Help: "goroutine population sustained above 100k — at one reader per connection that is ~800 MB of stacks at C1M, the scaling cliff the roadmap flags",
		},
		{
			Name: "HeapHigh", Series: "mpr_rt_heap_inuse_bytes",
			Op: GT, Threshold: 4 << 30, ForSamples: 3,
			Help: "heap in-use above 4 GiB for consecutive samples — the market state no longer fits the container budget",
		},
		{
			Name: "GCPauseP99", Series: "mpr_rt_gc_pause_p99_seconds",
			Op: GT, Threshold: 0.05, ForSamples: 2,
			Help: "p99 GC pause above 50 ms — stop-the-world time is eating into the round deadline budget",
		},
	}
}

// ManagerRules are the rules mprd evaluates live after every market.
func ManagerRules() []Rule {
	return []Rule{
		{
			Name: "MarketRoundsRegression", Series: "mpr_mgr_market_rounds",
			Op: GT, Threshold: 40, ForSamples: 1,
			Help: "a live market needed more clearing rounds than expected",
		},
		{
			Name: "UnmetReduction", Series: "mpr_mgr_market_unmet_w",
			Op: GT, Threshold: 0, ForSamples: 1,
			Help: "a live market cleared less reduction than the emergency target",
		},
		{
			Name: "EvictionBurst", Series: "mpr_mgr_evictions",
			Op: GT, Threshold: 0, WindowSamples: 10, BurnFrac: 0.3,
			Help: "slow-agent evictions in over 30% of the trailing sampling window — the fleet is stalling, not just one sick agent",
		},
	}
}
