package telemetry

import (
	"context"
	"runtime/pprof"
	"time"
)

// Attr is one span attribute. Attributes are an ordered list rather
// than a map so span renderings are deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one finished hierarchical trace span: a named wall-clock
// interval with a parent link, so an emergency span can contain its
// market-round and RespondBid child spans. Completed spans live in the
// tracer's span ring and render at /debug/spans.
type Span struct {
	// ID is the tracer-assigned span identifier (monotonic per tracer,
	// assigned at start); Parent is the enclosing span's ID (0 = root).
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name is the span type, e.g. "emergency", "market", "market_round",
	// "respond_bids".
	Name string `json:"name"`
	// StartNS and EndNS are wall-clock Unix nanoseconds.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Attrs carry free-form span annotations (slot, target, rounds, …).
	Attrs []Attr `json:"attrs,omitempty"`
}

// Duration returns the span's wall-clock length.
func (s Span) Duration() time.Duration {
	return time.Duration(s.EndNS - s.StartNS)
}

// ActiveSpan is an in-flight span handle. A nil *ActiveSpan is a no-op
// (the handle the nil tracer gives out), so instrumented code never
// branches on configuration.
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// StartSpan opens a span under the given parent (nil = root). The span
// is recorded into the tracer's span ring when End is called; spans
// abandoned without End are dropped. Nil tracer returns the nil handle.
func (t *Tracer) StartSpan(name string, parent *ActiveSpan) *ActiveSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.spanSeq++
	id := t.spanSeq
	t.mu.Unlock()
	s := &ActiveSpan{t: t, span: Span{ID: id, Name: name, StartNS: time.Now().UnixNano()}}
	if parent != nil {
		s.span.Parent = parent.span.ID
	}
	return s
}

// ID returns the span's identifier (0 for nil).
func (s *ActiveSpan) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// SetAttr annotates the span. No-op on a nil handle.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
}

// StartChild opens a child span under this one. On a nil handle the
// child is nil too, so an uninstrumented call tree stays free.
func (s *ActiveSpan) StartChild(name string) *ActiveSpan {
	if s == nil {
		return nil
	}
	return s.t.StartSpan(name, s)
}

// End stamps the span's end time and records it in the tracer's span
// ring. Ending twice records twice; don't. No-op on a nil handle.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.span.EndNS = time.Now().UnixNano()
	t := s.t
	t.mu.Lock()
	if len(t.spanRing) < cap(t.spanRing) {
		t.spanRing = append(t.spanRing, s.span)
	} else {
		t.spanRing[int(t.spanDone%uint64(cap(t.spanRing)))] = s.span
		t.droppedSpans++
	}
	t.spanDone++
	t.mu.Unlock()
}

// RecordSpan records an externally timed span — one whose start and end
// were measured by the caller rather than by Start/End bracketing — into
// the span ring as a child of parent (nil = root), returning the
// assigned span ID (0 on a nil tracer). The agentproto manager uses it
// for per-agent respond_bid spans: the interval runs from the round's
// price broadcast to that agent's bid receipt, and the bids of many
// agents overlap, so handle-based bracketing cannot express them.
func (t *Tracer) RecordSpan(name string, parent *ActiveSpan, startNS, endNS int64, attrs ...Attr) uint64 {
	if t == nil {
		return 0
	}
	s := Span{Name: name, Parent: parent.ID(), StartNS: startNS, EndNS: endNS}
	if len(attrs) > 0 {
		s.Attrs = append([]Attr(nil), attrs...)
	}
	t.mu.Lock()
	t.spanSeq++
	s.ID = t.spanSeq
	if len(t.spanRing) < cap(t.spanRing) {
		t.spanRing = append(t.spanRing, s)
	} else {
		t.spanRing[int(t.spanDone%uint64(cap(t.spanRing)))] = s
		t.droppedSpans++
	}
	t.spanDone++
	t.mu.Unlock()
	return s.ID
}

// Spans returns a copy of the retained completed spans in completion
// order. Nil tracer returns nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.spanRing)
	out := make([]Span, 0, n)
	start := t.spanDone - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, t.spanRing[int((start+i)%uint64(cap(t.spanRing)))])
	}
	return out
}

// WithPprofLabels runs f with the "mpr_span" profiler label set, so CPU
// profiles taken from /debug/pprof attribute samples to the span that
// was executing — the engine and the agentproto fan-out call this on
// span boundaries (goroutines started inside f inherit the label).
func WithPprofLabels(name string, f func()) {
	pprof.Do(context.Background(), pprof.Labels("mpr_span", name), func(context.Context) {
		f()
	})
}
