package telemetry

import "testing"

func TestNilSpanIsNop(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("emergency", nil)
	if s != nil {
		t.Fatal("nil tracer must hand out the nil span")
	}
	s.SetAttr("k", "v") // must not panic
	s.End()
	if s.ID() != 0 {
		t.Fatal("nil span ID must be 0")
	}
	if c := s.StartChild("market"); c != nil {
		t.Fatal("nil span's child must be nil")
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer must have no spans")
	}
}

// TestSpanHierarchy builds the emergency → market_round → respond_bids
// shape the engine and agentproto produce and checks parent links,
// attrs, and completion ordering.
func TestSpanHierarchy(t *testing.T) {
	tr := NewTracer(16)
	em := tr.StartSpan("emergency", nil)
	em.SetAttr("slot", "42")
	round := em.StartChild("market_round")
	bids := round.StartChild("respond_bids")
	bids.End()
	round.End()
	em.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	// Completion order: innermost first.
	if spans[0].Name != "respond_bids" || spans[1].Name != "market_round" || spans[2].Name != "emergency" {
		t.Fatalf("order = %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	emS, roundS, bidsS := spans[2], spans[1], spans[0]
	if emS.Parent != 0 {
		t.Fatalf("emergency parent = %d, want root", emS.Parent)
	}
	if roundS.Parent != emS.ID || bidsS.Parent != roundS.ID {
		t.Fatalf("parent chain broken: %d->%d, %d->%d", bidsS.Parent, roundS.ID, roundS.Parent, emS.ID)
	}
	if len(emS.Attrs) != 1 || emS.Attrs[0] != (Attr{Key: "slot", Value: "42"}) {
		t.Fatalf("attrs = %+v", emS.Attrs)
	}
	for _, s := range spans {
		if s.StartNS == 0 || s.EndNS < s.StartNS {
			t.Fatalf("span %s times: %d..%d", s.Name, s.StartNS, s.EndNS)
		}
	}
	// IDs are unique and assigned at start: emergency < round < bids.
	if !(emS.ID < roundS.ID && roundS.ID < bidsS.ID) {
		t.Fatalf("ID order: %d %d %d", emS.ID, roundS.ID, bidsS.ID)
	}
}

// TestSpanRingWraparound overflows the span ring and checks the newest
// completions survive.
func TestSpanRingWraparound(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		s := tr.StartSpan("s", nil)
		s.End()
	}
	spans := tr.Spans()
	if len(spans) != 16 {
		t.Fatalf("spans = %d, want 16", len(spans))
	}
	if spans[0].ID != 25 || spans[15].ID != 40 {
		t.Fatalf("surviving window = %d..%d, want 25..40", spans[0].ID, spans[15].ID)
	}
}

// TestWithPprofLabels just exercises the wrapper: f runs synchronously.
func TestWithPprofLabels(t *testing.T) {
	ran := false
	WithPprofLabels("market", func() { ran = true })
	if !ran {
		t.Fatal("WithPprofLabels must run f")
	}
}

// TestTracerDroppedCount overflows the event ring and asserts the
// events_dropped counter — the satellite making overflow observable.
func TestTracerDroppedCount(t *testing.T) {
	tr := NewTracer(16)
	if tr.Dropped() != 0 {
		t.Fatal("fresh tracer reports drops")
	}
	for i := 0; i < 16; i++ {
		tr.Emit(Event{Name: "e"})
	}
	if tr.Dropped() != 0 {
		t.Fatalf("exactly-full ring dropped %d", tr.Dropped())
	}
	for i := 0; i < 25; i++ {
		tr.Emit(Event{Name: "e"})
	}
	if got := tr.Dropped(); got != 25 {
		t.Fatalf("dropped = %d, want 25", got)
	}
	var nilT *Tracer
	if nilT.Dropped() != 0 {
		t.Fatal("nil tracer must report 0 drops")
	}
}
