package flight

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"mpr/internal/telemetry"
	"mpr/internal/telemetry/alerts"
)

// TestFlightBundleSchema validates mprflight/v1 bundles the same way the
// mprload/mprbench schema tests do: the committed testdata bundle (pins
// the wire format against accidental drift — a new field without a
// schema bump fails the strict decode) plus a freshly generated one. CI
// points MPR_FLIGHT_JSON at a bundle a booted mprd dumped to validate
// the real daemon artifact too.
func TestFlightBundleSchema(t *testing.T) {
	paths := []string{filepath.Join("testdata", "flight_v1.json")}
	if external := os.Getenv("MPR_FLIGHT_JSON"); external != "" {
		paths = append(paths, external)
	} else {
		paths = append(paths, generateBundle(t))
	}
	for _, path := range paths {
		b, err := ReadBundleFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		checkBundle(t, path, b)
	}
}

// generateBundle dumps a fresh alert-triggered bundle from a tiny
// in-process recorder.
func generateBundle(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	rec, tracer, store := testRecorder(t, dir)
	tracer.Emit(telemetry.Event{Name: "market_clear", Price: 4.2, TargetW: 1000})
	store.Series("mpr_mgr_evictions").Append(4990, 3)
	rec.SampleRuntime(time.Unix(4995, 0))
	f := firing("EvictionBurst", 4990)
	path, err := rec.OnFirings(time.Unix(5000, 0), []alerts.Firing{f})
	if err != nil || path == "" {
		t.Fatalf("generating bundle: path=%q err=%v", path, err)
	}
	return path
}

// checkBundle applies the semantic floor the readers rely on, past what
// Validate already guarantees.
func checkBundle(t *testing.T, path string, b *Bundle) {
	t.Helper()
	if b.Build.GoVersion == "" {
		t.Errorf("%s: build.go_version is empty", path)
	}
	if b.Reason == ReasonAlert {
		if b.Trigger.Rule == "" || b.Trigger.Series == "" {
			t.Errorf("%s: alert trigger incomplete: %+v", path, b.Trigger)
		}
		// The trigger must also appear in the retained firing history.
		found := false
		for _, f := range b.Firings {
			if f.Rule == b.Trigger.Rule && f.From == b.Trigger.From {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: trigger %s@%d missing from firing history", path, b.Trigger.Rule, b.Trigger.From)
		}
	}
	// The runtime window is the point of the recorder: every mpr_rt_*
	// series must be present with at least one point.
	for _, name := range []string{SeriesGoroutines, SeriesHeapInuse, SeriesGCPauseP99, SeriesSchedLatP99} {
		found := false
		for _, sd := range b.Series {
			if sd.Name == name && len(sd.Points) > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: series window missing %s", path, name)
		}
	}
	if b.Runtime.HeapInuseBytes <= 0 {
		t.Errorf("%s: runtime.heap_inuse_bytes = %d, want > 0", path, b.Runtime.HeapInuseBytes)
	}
}
