package flight

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"mpr/internal/telemetry"
	"mpr/internal/telemetry/tsdb"
)

// Runtime-health series the sampler records (wall-clock Unix-second
// timestamps, like every daemon series). These are the first series in
// the repo observing the Go runtime itself — the ROADMAP's C1M item
// flags ~100k reader goroutines ≈ 800 MB of stacks as an unmeasured
// risk, and mpr_rt_goroutines is the measurement.
const (
	SeriesGoroutines  = "mpr_rt_goroutines"
	SeriesHeapInuse   = "mpr_rt_heap_inuse_bytes"
	SeriesGCPauseP99  = "mpr_rt_gc_pause_p99_seconds"
	SeriesSchedLatP99 = "mpr_rt_sched_latency_p99_seconds"
)

// runtime/metrics keys backing the series. Heap in-use is the sum of the
// two heap classes the runtime splits it into (objects + unused spans),
// matching the old runtime.MemStats.HeapInuse.
const (
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmHeapObjects = "/memory/classes/heap/objects:bytes"
	rmHeapUnused  = "/memory/classes/heap/unused:bytes"
	rmGCPauses    = "/gc/pauses:seconds"
	rmSchedLat    = "/sched/latencies:seconds"
)

// RuntimeSnapshot is the point-in-time runtime-health digest: the
// /debug/rt payload and the runtime section of a flight bundle.
type RuntimeSnapshot struct {
	UnixNS     int64 `json:"unix_ns"`
	Goroutines int64 `json:"goroutines"`
	// HeapInuseBytes is spans-in-use for the heap: live and dead objects
	// plus unused span tails, the number that becomes RSS pressure.
	HeapInuseBytes int64 `json:"heap_inuse_bytes"`
	// GCPauseP99Seconds and SchedLatencyP99Seconds are p99s over the
	// runtime's cumulative stop-the-world pause and scheduler-latency
	// distributions since process start.
	GCPauseP99Seconds      float64 `json:"gc_pause_p99_seconds"`
	SchedLatencyP99Seconds float64 `json:"sched_latency_p99_seconds"`
	NumCPU                 int     `json:"num_cpu"`
	GOMAXPROCS             int     `json:"gomaxprocs"`
}

// RuntimeSampler reads runtime/metrics into registry gauges and tsdb
// series. Construction resolves every handle and pre-sizes the sample
// slice; Sample on a constructed sampler is allocation-free in steady
// state (runtime/metrics.Read reuses the Float64Histogram buffers it
// placed in the slice on the first read) — test-enforced, matching the
// registry/tsdb hot-path discipline. A nil *RuntimeSampler is a no-op.
type RuntimeSampler struct {
	samples []metrics.Sample

	gGoroutines, gHeap, gGCPause, gSchedLat *telemetry.Gauge
	sGoroutines, sHeap, sGCPause, sSchedLat *tsdb.Series

	mu   sync.Mutex
	last RuntimeSnapshot
}

// NewRuntimeSampler builds a sampler publishing into the registry (as
// mpr_rt_* gauges) and the store (as mpr_rt_* series). Either may be
// nil; the corresponding outputs are no-ops.
func NewRuntimeSampler(reg *telemetry.Registry, store *tsdb.Store) *RuntimeSampler {
	r := &RuntimeSampler{
		samples: []metrics.Sample{
			{Name: rmGoroutines},
			{Name: rmHeapObjects},
			{Name: rmHeapUnused},
			{Name: rmGCPauses},
			{Name: rmSchedLat},
		},
		gGoroutines: reg.Gauge(SeriesGoroutines, "Live goroutine count."),
		gHeap:       reg.Gauge(SeriesHeapInuse, "Heap spans in use (objects + unused), bytes."),
		gGCPause:    reg.Gauge(SeriesGCPauseP99, "p99 stop-the-world GC pause since process start, seconds."),
		gSchedLat:   reg.Gauge(SeriesSchedLatP99, "p99 goroutine scheduling latency since process start, seconds."),
		sGoroutines: store.Series(SeriesGoroutines),
		sHeap:       store.Series(SeriesHeapInuse),
		sGCPause:    store.Series(SeriesGCPauseP99),
		sSchedLat:   store.Series(SeriesSchedLatP99),
	}
	return r
}

// Sample reads the runtime metrics once and publishes them: gauges for
// scrapes, series points (Unix-second timestamps) for windows and
// alerts, and the latest snapshot for /debug/rt. No-op on nil.
func (r *RuntimeSampler) Sample(now time.Time) {
	if r == nil {
		return
	}
	metrics.Read(r.samples)
	snap := RuntimeSnapshot{
		UnixNS:     now.UnixNano(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if v := &r.samples[0].Value; v.Kind() == metrics.KindUint64 {
		snap.Goroutines = int64(v.Uint64())
	}
	var heap uint64
	if v := &r.samples[1].Value; v.Kind() == metrics.KindUint64 {
		heap += v.Uint64()
	}
	if v := &r.samples[2].Value; v.Kind() == metrics.KindUint64 {
		heap += v.Uint64()
	}
	snap.HeapInuseBytes = int64(heap)
	if v := &r.samples[3].Value; v.Kind() == metrics.KindFloat64Histogram {
		snap.GCPauseP99Seconds = histQuantile(v.Float64Histogram(), 0.99)
	}
	if v := &r.samples[4].Value; v.Kind() == metrics.KindFloat64Histogram {
		snap.SchedLatencyP99Seconds = histQuantile(v.Float64Histogram(), 0.99)
	}

	r.gGoroutines.Set(float64(snap.Goroutines))
	r.gHeap.Set(float64(snap.HeapInuseBytes))
	r.gGCPause.Set(snap.GCPauseP99Seconds)
	r.gSchedLat.Set(snap.SchedLatencyP99Seconds)
	t := now.Unix()
	r.sGoroutines.Append(t, float64(snap.Goroutines))
	r.sHeap.Append(t, float64(snap.HeapInuseBytes))
	r.sGCPause.Append(t, snap.GCPauseP99Seconds)
	r.sSchedLat.Append(t, snap.SchedLatencyP99Seconds)

	r.mu.Lock()
	r.last = snap
	r.mu.Unlock()
}

// Snapshot returns the most recent sample (zero value before the first
// Sample or on nil).
func (r *RuntimeSampler) Snapshot() RuntimeSnapshot {
	if r == nil {
		return RuntimeSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// histQuantile returns the q-quantile upper bound of a runtime/metrics
// bucketed distribution: the smallest bucket boundary below which at
// least q of the mass lies. The runtime's histograms use (-Inf, +Inf)
// sentinel edges; a +Inf upper edge falls back to the bucket's lower
// edge so the returned value is always finite. 0 when the distribution
// is empty. Allocation-free.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Buckets[i] and Buckets[i+1] bound bucket i.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
