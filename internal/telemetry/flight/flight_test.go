package flight

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mpr/internal/telemetry"
	"mpr/internal/telemetry/alerts"
	"mpr/internal/telemetry/tsdb"
)

// testRecorder builds a recorder over a small live telemetry runtime
// with a deterministic clock.
func testRecorder(t *testing.T, dir string) (*Recorder, *telemetry.Tracer, *tsdb.Store) {
	t.Helper()
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(64)
	store := tsdb.New(0)
	rec, err := New(Config{
		Registry:   reg,
		Tracer:     tracer,
		Store:      store,
		Dir:        dir,
		Cooldown:   60 * time.Second,
		ConfigEcho: map[string]string{"listen": ":9090", "flight": dir},
		Clock:      func() time.Time { return time.Unix(5000, 0) },
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, tracer, store
}

func firing(rule string, from int64) alerts.Firing {
	return alerts.Firing{
		Rule: rule, Series: "mpr_mgr_evictions",
		From: from, To: from + 10, Value: 3, Samples: 4,
	}
}

func TestDumpWritesValidBundle(t *testing.T) {
	dir := t.TempDir()
	rec, tracer, _ := testRecorder(t, dir)

	tracer.Emit(telemetry.Event{Name: "eviction", Label: "deadline_budget"})
	rec.SampleRuntime(time.Unix(4990, 0))
	f := firing("EvictionBurst", 4950)
	rec.RecordFiring(f)

	path, err := rec.Dump(time.Unix(5000, 0), ReasonAlert, &f)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "flight-000001-alert.json"); path != want {
		t.Errorf("bundle path = %q, want %q", path, want)
	}

	b, err := ReadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Trigger == nil || b.Trigger.Rule != "EvictionBurst" {
		t.Errorf("trigger = %+v, want EvictionBurst", b.Trigger)
	}
	if len(b.Firings) != 1 || b.Firings[0].Rule != "EvictionBurst" {
		t.Errorf("firings = %+v, want the recorded one", b.Firings)
	}
	if len(b.Events) != 1 || b.Events[0].Name != "eviction" {
		t.Errorf("events = %+v, want the eviction event", b.Events)
	}
	if !strings.Contains(b.GoroutineProfile, "goroutine profile:") {
		t.Error("bundle is missing a goroutine profile")
	}
	if b.Config["listen"] != ":9090" {
		t.Errorf("config echo = %+v", b.Config)
	}
	if b.Build.GoVersion == "" {
		t.Error("build info missing")
	}
	// The runtime series window must be in the bundle: SampleRuntime and
	// the dump-time refresh each appended one point.
	var rt *tsdb.SeriesData
	for i := range b.Series {
		if b.Series[i].Name == SeriesGoroutines {
			rt = &b.Series[i]
		}
	}
	if rt == nil || len(rt.Points) < 2 {
		t.Fatalf("bundle has no %s window: %+v", SeriesGoroutines, rt)
	}
}

// TestOnFiringsCooldown pins the dump-on-alert policy: a rule that keeps
// firing as its window advances produces exactly one bundle per cooldown
// period, and a different rule dumps independently.
func TestOnFiringsCooldown(t *testing.T) {
	dir := t.TempDir()
	rec, _, _ := testRecorder(t, dir)
	now := time.Unix(5000, 0)

	countBundles := func() int {
		t.Helper()
		m, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
		if err != nil {
			t.Fatal(err)
		}
		return len(m)
	}

	if path, err := rec.OnFirings(now, []alerts.Firing{firing("EvictionBurst", 1000)}); err != nil || path == "" {
		t.Fatalf("first firing: path=%q err=%v, want a bundle", path, err)
	}
	// Same rule re-firing inside the 60 s cooldown: suppressed.
	for _, from := range []int64{1000, 1020, 1060} {
		if path, err := rec.OnFirings(now, []alerts.Firing{firing("EvictionBurst", from)}); err != nil || path != "" {
			t.Fatalf("from=%d: path=%q err=%v, want suppression", from, path, err)
		}
	}
	if got := countBundles(); got != 1 {
		t.Fatalf("bundles on disk = %d, want exactly 1", got)
	}
	// Past the cooldown: dumps again.
	if path, err := rec.OnFirings(now, []alerts.Firing{firing("EvictionBurst", 1061)}); err != nil || path == "" {
		t.Fatalf("post-cooldown: path=%q err=%v, want a bundle", path, err)
	}
	// A different rule has its own cooldown track.
	if path, err := rec.OnFirings(now, []alerts.Firing{firing("HeapHigh", 1002)}); err != nil || path == "" {
		t.Fatalf("other rule: path=%q err=%v, want a bundle", path, err)
	}
	if got := countBundles(); got != 3 {
		t.Fatalf("bundles on disk = %d, want 3", got)
	}

	st := rec.Status()
	if st.Dumps != 3 || len(st.Firings) != 6 {
		t.Errorf("status dumps=%d firings=%d, want 3 and 6", st.Dumps, len(st.Firings))
	}
}

func TestFiringRingWraps(t *testing.T) {
	rec, err := New(Config{Firings: 4, Clock: func() time.Time { return time.Unix(1, 0) }})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		rec.RecordFiring(firing("R", i))
	}
	st := rec.Status()
	if len(st.Firings) != 4 {
		t.Fatalf("retained %d firings, want 4", len(st.Firings))
	}
	for i, f := range st.Firings {
		if want := int64(6 + i); f.From != want {
			t.Errorf("firings[%d].From = %d, want %d (oldest-first window)", i, f.From, want)
		}
	}
}

// TestRecordFiringZeroAlloc gates the steady-state record path: once the
// history ring is full, retaining another firing must not allocate.
func TestRecordFiringZeroAlloc(t *testing.T) {
	rec, err := New(Config{Firings: 8, Clock: func() time.Time { return time.Unix(1, 0) }})
	if err != nil {
		t.Fatal(err)
	}
	f := firing("EvictionBurst", 1000)
	for i := 0; i < 8; i++ {
		rec.RecordFiring(f)
	}
	avg := testing.AllocsPerRun(200, func() { rec.RecordFiring(f) })
	if avg != 0 {
		t.Errorf("RecordFiring allocates %.1f per call on a full ring, want 0", avg)
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var rec *Recorder
	rec.SampleRuntime(time.Now())
	rec.RecordFiring(firing("R", 1))
	if path, err := rec.OnFirings(time.Now(), []alerts.Firing{firing("R", 1)}); path != "" || err != nil {
		t.Errorf("nil OnFirings = %q, %v", path, err)
	}
	if path, err := rec.Dump(time.Now(), ReasonManual, nil); path != "" || err != nil {
		t.Errorf("nil Dump = %q, %v", path, err)
	}
	if st := rec.Status(); st.Enabled {
		t.Error("nil recorder reports enabled")
	}
}

func TestHTTPSurface(t *testing.T) {
	dir := t.TempDir()
	rec, _, _ := testRecorder(t, dir)
	rec.SampleRuntime(time.Unix(4999, 0))

	h := rec.Handler()

	// GET status.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"enabled": true`) {
		t.Errorf("GET status = %d %q", rr.Code, rr.Body.String())
	}

	// GET on the dump endpoint is refused; POST dumps.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/flight/dump", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET dump = %d, want 405", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/debug/flight/dump", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("POST dump = %d %q", rr.Code, rr.Body.String())
	}
	want := filepath.Join(dir, "flight-000001-manual.json")
	if !strings.Contains(rr.Body.String(), want) {
		t.Errorf("dump response %q does not name %q", rr.Body.String(), want)
	}
	if _, err := ReadBundleFile(want); err != nil {
		t.Errorf("manual bundle invalid: %v", err)
	}

	// /debug/rt serves the latest runtime snapshot.
	rr = httptest.NewRecorder()
	rec.RTHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/rt", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"goroutines"`) {
		t.Errorf("GET /debug/rt = %d %q", rr.Code, rr.Body.String())
	}

	// A nil recorder still serves both endpoints.
	var nilRec *Recorder
	rr = httptest.NewRecorder()
	nilRec.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"enabled": false`) {
		t.Errorf("nil GET status = %d %q", rr.Code, rr.Body.String())
	}
	rr = httptest.NewRecorder()
	nilRec.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/debug/flight/dump", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("nil POST dump = %d, want 503", rr.Code)
	}
}

func TestWriteBundleAtomic(t *testing.T) {
	dir := t.TempDir()
	rec, _, _ := testRecorder(t, dir)
	path := filepath.Join(dir, "bundle.json")
	if err := rec.DumpTo(time.Unix(5000, 0), path, ReasonSLO, &alerts.Firing{Rule: "RoundTripP99High", Series: "s", From: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
	if _, err := ReadBundleFile(path); err != nil {
		t.Fatal(err)
	}
}
