// Package flight is the black-box flight recorder: an always-on,
// fixed-capacity retention layer over the repo's telemetry primitives
// (registry snapshot, tracer rings, tsdb window, alert firings, and a
// runtime-health sampler over runtime/metrics) that dumps a versioned
// mprflight/v1 bundle when something goes wrong. Like an aircraft FDR
// the recorder costs (almost) nothing in steady state — the record path
// is allocation-free and test-enforced — and pays out on a trigger: an
// alert firing (per-rule cooldown via alerts.Deduper), SIGQUIT, process
// exit, or a manual POST /debug/flight/dump.
package flight

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"mpr/internal/telemetry"
	"mpr/internal/telemetry/alerts"
	"mpr/internal/telemetry/tsdb"
)

// Config wires a Recorder into a process' observability runtime. Every
// source is optional (nil sources leave the corresponding bundle
// sections empty); Dir is required for Dump but not DumpTo.
type Config struct {
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer
	Store    *tsdb.Store

	// Dir is where Dump writes flight-NNNNNN-<reason>.json bundles.
	Dir string
	// Cooldown is the per-rule dump suppression window for alert
	// triggers, measured against the firings' From timestamps (Unix
	// seconds in the daemons). Default 60s; see alerts.Deduper.
	Cooldown time.Duration
	// Window is how far back the bundled tsdb window reaches from the
	// trigger. Default 10 minutes.
	Window time.Duration
	// Events bounds the bundled trace-event window (default 256);
	// Firings bounds the retained alert history (default 64).
	Events  int
	Firings int
	// ConfigEcho is the flag/config echo stored in every bundle.
	ConfigEcho map[string]string
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
	// Logf, when set, receives one line per dump (and per failed dump).
	Logf func(format string, args ...any)
}

// Recorder retains recent telemetry and writes mprflight/v1 bundles on
// triggers. All methods are safe for concurrent use, and a nil
// *Recorder is a no-op (the disabled recorder), matching the nil-safety
// discipline of the rest of internal/telemetry.
type Recorder struct {
	cfg Config
	rt  *RuntimeSampler

	mu      sync.Mutex
	dedup   *alerts.Deduper
	firings []alerts.Firing // fixed-capacity ring, oldest first once full
	nFiring uint64          // total firings ever recorded
	dumpSeq int
	last    DumpInfo
}

// DumpInfo describes the most recent bundle written.
type DumpInfo struct {
	Path   string `json:"path,omitempty"`
	Reason string `json:"reason,omitempty"`
	UnixNS int64  `json:"unix_ns,omitempty"`
}

// Status is the GET /debug/flight payload.
type Status struct {
	Enabled  bool            `json:"enabled"`
	Dir      string          `json:"dir,omitempty"`
	Cooldown string          `json:"cooldown"`
	Dumps    int             `json:"dumps"`
	Last     DumpInfo        `json:"last_dump"`
	Firings  []alerts.Firing `json:"firings"`
	Runtime  RuntimeSnapshot `json:"runtime"`
}

// New builds a recorder, creating cfg.Dir when set. The runtime-health
// sampler registers its mpr_rt_* gauges and series immediately so the
// rules in alerts.RuntimeRules have something to evaluate from the
// first SampleRuntime tick.
func New(cfg Config) (*Recorder, error) {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 60 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Minute
	}
	if cfg.Events <= 0 {
		cfg.Events = 256
	}
	if cfg.Firings <= 0 {
		cfg.Firings = 64
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("flight: create dir: %w", err)
		}
	}
	return &Recorder{
		cfg:     cfg,
		rt:      NewRuntimeSampler(cfg.Registry, cfg.Store),
		dedup:   alerts.NewDeduper(int64(cfg.Cooldown / time.Second)),
		firings: make([]alerts.Firing, 0, cfg.Firings),
	}, nil
}

// SampleRuntime takes one runtime-health sample (goroutines, heap,
// GC pause p99, sched latency p99) into the registry gauges and the
// mpr_rt_* series. Allocation-free in steady state; no-op on nil.
func (r *Recorder) SampleRuntime(now time.Time) {
	if r == nil {
		return
	}
	r.rt.Sample(now)
}

// RuntimeSnapshot returns the latest runtime-health sample (zero value
// before the first SampleRuntime or on nil).
func (r *Recorder) RuntimeSnapshot() RuntimeSnapshot {
	if r == nil {
		return RuntimeSnapshot{}
	}
	return r.rt.Snapshot()
}

// RecordFiring retains one firing in the recorder's fixed-capacity
// history ring (newest last) without any dump decision. Allocation-free
// once the ring is full; no-op on nil.
func (r *Recorder) RecordFiring(f alerts.Firing) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordLocked(f)
}

func (r *Recorder) recordLocked(f alerts.Firing) {
	if len(r.firings) < cap(r.firings) {
		r.firings = append(r.firings, f)
	} else {
		r.firings[int(r.nFiring%uint64(cap(r.firings)))] = f
	}
	r.nFiring++
}

// firingsLocked returns the retained history oldest-first.
func (r *Recorder) firingsLocked() []alerts.Firing {
	n := len(r.firings)
	out := make([]alerts.Firing, 0, n)
	if n < cap(r.firings) {
		return append(out, r.firings...)
	}
	start := r.nFiring
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, r.firings[int((start+i)%uint64(n))])
	}
	return out
}

// OnFirings feeds one evaluation's firings through the recorder: every
// firing is retained, and the first one that passes the per-rule
// cooldown (alerts.Deduper with the configured window) triggers an
// alert-reason bundle carrying it. At most one bundle is written per
// call — the remaining fresh firings still advance their cooldowns and
// ride along in the bundle's firing history. Returns the bundle path
// ("" when nothing dumped). No-op on nil or when no Dir is configured.
func (r *Recorder) OnFirings(now time.Time, fs []alerts.Firing) (string, error) {
	if r == nil || len(fs) == 0 {
		return "", nil
	}
	r.mu.Lock()
	var trigger *alerts.Firing
	for i := range fs {
		r.recordLocked(fs[i])
		if r.dedup.Fresh(fs[i]) && trigger == nil {
			trigger = &fs[i]
		}
	}
	r.mu.Unlock()
	if trigger == nil || r.cfg.Dir == "" {
		return "", nil
	}
	return r.Dump(now, ReasonAlert, trigger)
}

// Dump writes a bundle into the configured Dir, named
// flight-NNNNNN-<reason>.json after the bundle's own sequence number so
// a dump burst sorts in trigger order. Returns the bundle path. No-op
// ("") on nil or without a Dir.
func (r *Recorder) Dump(now time.Time, reason string, trigger *alerts.Firing) (string, error) {
	if r == nil || r.cfg.Dir == "" {
		return "", nil
	}
	b := r.buildBundle(now, reason, trigger)
	path := filepath.Join(r.cfg.Dir, fmt.Sprintf("flight-%06d-%s.json", b.DumpSeq, reason))
	return path, r.write(path, b)
}

// DumpTo writes a bundle to an explicit path (tmp+rename) — the form
// mprload uses to park SLO evidence next to its report. No-op on nil.
func (r *Recorder) DumpTo(now time.Time, path, reason string, trigger *alerts.Firing) error {
	if r == nil {
		return nil
	}
	return r.write(path, r.buildBundle(now, reason, trigger))
}

func (r *Recorder) write(path string, b *Bundle) error {
	if err := WriteBundleFile(path, b); err != nil {
		r.logf("flight: dump failed: %v", err)
		return err
	}
	r.mu.Lock()
	r.last = DumpInfo{Path: path, Reason: b.Reason, UnixNS: b.SavedUnixNS}
	r.mu.Unlock()
	r.logf("flight: wrote %s bundle %s (seq %d)", b.Reason, path, b.DumpSeq)
	return nil
}

// buildBundle assembles the mprflight/v1 document. Dumps are rare, so
// this path may allocate freely — only recording must not.
func (r *Recorder) buildBundle(now time.Time, reason string, trigger *alerts.Firing) *Bundle {
	// Refresh the runtime snapshot at dump time: the bundle's health
	// section should describe the incident instant, not the last tick.
	r.rt.Sample(now)

	b := &Bundle{
		Schema:      BundleSchema,
		SavedUnixNS: r.cfg.Clock().UnixNano(),
		Reason:      reason,
		Trigger:     trigger,
		Build:       telemetry.ReadBuildInfo(),
		Config:      r.cfg.ConfigEcho,
		Runtime:     r.rt.Snapshot(),
	}
	if snap := r.cfg.Registry.Snapshot(); snap != nil {
		b.Counters = snap.Counters
		b.Gauges = snap.Gauges
		b.HDRs = snap.HDRs
	}
	b.Events = r.cfg.Tracer.Last(r.cfg.Events)
	b.Spans = r.cfg.Tracer.Spans()

	// The tsdb window reaches Window back from the trigger's start (or
	// from now for non-alert dumps) through the present.
	start := now.Unix()
	if trigger != nil && trigger.From < start {
		start = trigger.From
	}
	start -= int64(r.cfg.Window / time.Second)
	if start < 0 {
		start = 0 // FakeClock tests run near the epoch; 0 means unbounded
	}
	b.Series = r.cfg.Store.Query(tsdb.Query{Start: start, Resolution: tsdb.ResAuto})

	var prof strings.Builder
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&prof, 1)
	}
	b.GoroutineProfile = prof.String()

	r.mu.Lock()
	r.dumpSeq++
	b.DumpSeq = r.dumpSeq
	b.Firings = r.firingsLocked()
	r.mu.Unlock()
	return b
}

// Status reports the recorder's state for GET /debug/flight. A nil
// recorder reports Enabled=false.
func (r *Recorder) Status() Status {
	if r == nil {
		return Status{Cooldown: "0s", Firings: []alerts.Firing{}}
	}
	r.mu.Lock()
	st := Status{
		Enabled:  true,
		Dir:      r.cfg.Dir,
		Cooldown: r.cfg.Cooldown.String(),
		Dumps:    r.dumpSeq,
		Last:     r.last,
		Firings:  r.firingsLocked(),
	}
	r.mu.Unlock()
	st.Runtime = r.rt.Snapshot()
	return st
}

func (r *Recorder) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}
