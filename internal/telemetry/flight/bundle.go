package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"mpr/internal/telemetry"
	"mpr/internal/telemetry/alerts"
	"mpr/internal/telemetry/tsdb"
)

// BundleSchema versions the flight-bundle artifact. Strict-decoded on
// read: adding a field without bumping the version fails ReadBundleFile
// (and the schema test in CI).
const BundleSchema = "mprflight/v1"

// Trigger reasons a bundle records. Kept as plain strings on the wire;
// Validate accepts exactly this set so tooling can switch on them.
const (
	ReasonAlert  = "alert"  // a fresh (cooldown-passing) alerts.Firing
	ReasonManual = "manual" // POST /debug/flight/dump
	ReasonSignal = "signal" // SIGQUIT
	ReasonExit   = "exit"   // process shutdown
	ReasonSLO    = "slo"    // mprload attaching evidence to a failed run
)

// Bundle is the versioned mprflight/v1 black-box artifact: everything an
// operator needs from the seconds before a trigger, in one self-
// describing JSON document. The schema deliberately reuses the repo's
// existing serialized forms — telemetry.Event, telemetry.Span,
// alerts.Firing, tsdb.SeriesData — so every offline tool that already
// reads trace logs or series exports reads bundles too.
type Bundle struct {
	Schema      string `json:"schema"`
	SavedUnixNS int64  `json:"saved_unix_ns"`
	// DumpSeq numbers the bundles one recorder wrote (1-based), so a dump
	// burst on disk sorts in trigger order whatever the filesystem says.
	DumpSeq int `json:"dump_seq"`
	// Reason is the trigger taxonomy entry; Trigger the firing that
	// tripped an "alert" or "slo" dump (absent for manual/signal/exit).
	Reason  string         `json:"reason"`
	Trigger *alerts.Firing `json:"trigger,omitempty"`

	// Build and Config pin provenance: the binary and the flag
	// configuration the incident happened under.
	Build  telemetry.BuildInfo `json:"build"`
	Config map[string]string   `json:"config,omitempty"`

	// Runtime is the process-health snapshot at dump time.
	Runtime RuntimeSnapshot `json:"runtime"`

	// Counters/Gauges/HDRs are the registry snapshot; HDRs carry the
	// latency digests (bid RTT, round turnaround) as quantile summaries.
	Counters map[string]int64                `json:"counters,omitempty"`
	Gauges   map[string]float64              `json:"gauges,omitempty"`
	HDRs     map[string]telemetry.HDRSummary `json:"hdr_histograms,omitempty"`

	// Events and Spans are the tracer rings' retained windows — the
	// last-N clearing rounds, stream updates, evictions, coalesced bids.
	Events []telemetry.Event `json:"events"`
	Spans  []telemetry.Span  `json:"spans"`

	// Firings is the recorder's retained alert history (every firing it
	// saw, fresh or cooldown-suppressed), newest last.
	Firings []alerts.Firing `json:"firings"`

	// Series is the tsdb window around the trigger, every series, at
	// auto resolution — including the mpr_rt_* runtime-health series.
	Series []tsdb.SeriesData `json:"series"`

	// GoroutineProfile is the pprof "goroutine" profile at debug=1 —
	// where every goroutine was when the box was opened.
	GoroutineProfile string `json:"goroutine_profile"`
}

// Validate checks the schema tag and the invariants the readers rely on.
func (b *Bundle) Validate() error {
	if b.Schema != BundleSchema {
		return fmt.Errorf("flight: bundle schema %q, want %q", b.Schema, BundleSchema)
	}
	switch b.Reason {
	case ReasonAlert, ReasonManual, ReasonSignal, ReasonExit, ReasonSLO:
	default:
		return fmt.Errorf("flight: unknown trigger reason %q", b.Reason)
	}
	if b.SavedUnixNS <= 0 {
		return fmt.Errorf("flight: bundle has no save timestamp")
	}
	if b.DumpSeq < 1 {
		return fmt.Errorf("flight: dump_seq %d, want ≥ 1", b.DumpSeq)
	}
	if (b.Reason == ReasonAlert || b.Reason == ReasonSLO) && b.Trigger == nil {
		return fmt.Errorf("flight: %s bundle without its triggering firing", b.Reason)
	}
	if b.GoroutineProfile == "" {
		return fmt.Errorf("flight: bundle has no goroutine profile")
	}
	if b.Runtime.Goroutines < 1 {
		return fmt.Errorf("flight: runtime snapshot reports %d goroutines", b.Runtime.Goroutines)
	}
	return nil
}

// WriteBundleFile atomically writes the bundle (temp file + rename, the
// mprstate/v1 discipline: a crash mid-dump leaves the previous bundle
// intact, never a torn one).
func WriteBundleFile(path string, b *Bundle) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("flight: encode bundle: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("flight: write bundle: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("flight: write bundle: %w", err)
	}
	return nil
}

// ReadBundleFile strictly decodes and validates an mprflight/v1 bundle:
// unknown fields are errors, so schema drift is caught at the reader.
func ReadBundleFile(path string) (*Bundle, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("flight: read bundle: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	b := &Bundle{}
	if err := dec.Decode(b); err != nil {
		return nil, fmt.Errorf("flight: decode bundle %s: %w", path, err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("flight: bundle %s: %w", path, err)
	}
	return b, nil
}
