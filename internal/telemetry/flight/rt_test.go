package flight

import (
	"runtime/metrics"
	"testing"
	"time"

	"mpr/internal/telemetry"
	"mpr/internal/telemetry/tsdb"
)

func TestRuntimeSamplerPublishes(t *testing.T) {
	reg := telemetry.NewRegistry()
	store := tsdb.New(0)
	rs := NewRuntimeSampler(reg, store)

	now := time.Unix(1000, 0)
	rs.Sample(now)

	snap := rs.Snapshot()
	if snap.Goroutines < 1 {
		t.Errorf("goroutines = %d, want ≥ 1", snap.Goroutines)
	}
	if snap.HeapInuseBytes <= 0 {
		t.Errorf("heap_inuse_bytes = %d, want > 0", snap.HeapInuseBytes)
	}
	if snap.UnixNS != now.UnixNano() {
		t.Errorf("unix_ns = %d, want %d", snap.UnixNS, now.UnixNano())
	}
	if snap.NumCPU < 1 || snap.GOMAXPROCS < 1 {
		t.Errorf("cpu counts out of range: %+v", snap)
	}
	if g := reg.GaugeValue(SeriesGoroutines); g != float64(snap.Goroutines) {
		t.Errorf("gauge %s = %g, want %d", SeriesGoroutines, g, snap.Goroutines)
	}
	for _, name := range []string{SeriesGoroutines, SeriesHeapInuse, SeriesGCPauseP99, SeriesSchedLatP99} {
		data := store.Query(tsdb.Query{Name: name})
		if len(data) != 1 || len(data[0].Points) != 1 {
			t.Errorf("series %s: want exactly 1 point, got %+v", name, data)
			continue
		}
		if got := data[0].Points[0].Start; got != now.Unix() {
			t.Errorf("series %s point at %d, want %d", name, got, now.Unix())
		}
	}
}

func TestRuntimeSamplerNilSafe(t *testing.T) {
	var rs *RuntimeSampler
	rs.Sample(time.Now()) // must not panic
	if got := rs.Snapshot(); got != (RuntimeSnapshot{}) {
		t.Errorf("nil sampler snapshot = %+v, want zero", got)
	}
	// Nil registry/store: sampling still works, outputs are dropped.
	rs = NewRuntimeSampler(nil, nil)
	rs.Sample(time.Unix(1, 0))
	if rs.Snapshot().Goroutines < 1 {
		t.Error("sampler with nil sinks lost the snapshot")
	}
}

// TestRuntimeSampleZeroAlloc is the CI gate on the steady-state record
// path: after the first sample warms the runtime/metrics histogram
// buffers, Sample must not allocate. This is the same discipline the
// registry and tsdb hot paths are held to.
func TestRuntimeSampleZeroAlloc(t *testing.T) {
	reg := telemetry.NewRegistry()
	store := tsdb.New(0)
	rs := NewRuntimeSampler(reg, store)
	now := time.Unix(1000, 0)
	rs.Sample(now) // warm-up: metrics.Read fills the histogram buffers

	avg := testing.AllocsPerRun(200, func() {
		now = now.Add(time.Second)
		rs.Sample(now)
	})
	if avg != 0 {
		t.Errorf("RuntimeSampler.Sample allocates %.1f per call, want 0", avg)
	}
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 10, 80, 10},
		Buckets: []float64{0, 0.001, 0.01, 0.1, 1},
	}
	if got := histQuantile(h, 0.5); got != 0.1 {
		t.Errorf("p50 = %g, want 0.1", got)
	}
	if got := histQuantile(h, 0.99); got != 1.0 {
		t.Errorf("p99 = %g, want 1", got)
	}
	// Empty distribution → 0.
	empty := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := histQuantile(empty, 0.99); got != 0 {
		t.Errorf("empty p99 = %g, want 0", got)
	}
}
