package flight

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"
)

// Handler serves the recorder's debug surface. Mounted by
// telemetry.NewHandler at /debug/flight:
//
//	GET  …/debug/flight       → Status JSON
//	POST …/debug/flight/dump  → manual bundle; responds {"path": …}
//
// Works for a nil recorder too (status reports enabled=false and dump
// returns 503), so daemons can mount it unconditionally.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.HasSuffix(req.URL.Path, "/dump") {
			if req.Method != http.MethodPost {
				w.Header().Set("Allow", http.MethodPost)
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			if r == nil {
				http.Error(w, "flight recorder disabled", http.StatusServiceUnavailable)
				return
			}
			path, err := r.Dump(time.Now(), ReasonManual, nil)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if path == "" {
				http.Error(w, "flight recorder has no dump directory", http.StatusServiceUnavailable)
				return
			}
			writeJSON(w, map[string]string{"path": path})
			return
		}
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, r.Status())
	})
}

// RTHandler serves GET /debug/rt: the latest runtime-health snapshot.
// A nil recorder (or one that has never sampled) serves the zero
// snapshot.
func (r *Recorder) RTHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, r.RuntimeSnapshot())
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
