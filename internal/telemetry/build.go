package telemetry

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo pins the binary a measurement came from: load reports and
// the /debug/build endpoint carry it so a recorded p99 can always be
// traced back to the exact revision and platform that produced it.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Path and ModuleVersion identify the main module. ModuleVersion is
	// "(devel)" for source builds outside a released module version.
	Path          string `json:"path,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
	// VCSRevision/VCSTime are the commit the binary was built from, when
	// the build embedded VCS stamps (empty for `go test` binaries and
	// builds outside a repository). VCSModified reports uncommitted
	// changes at build time — a dirty p99 is worth knowing about.
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
	// GOOS/GOARCH are the runtime platform.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
}

// ReadBuildInfo collects the binary's build identity from
// runtime/debug.ReadBuildInfo. Fields the build did not stamp stay
// empty; GoVersion, GOOS, and GOARCH are always set.
func ReadBuildInfo() BuildInfo {
	info := BuildInfo{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	info.Path = bi.Main.Path
	info.ModuleVersion = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.VCSRevision = s.Value
		case "vcs.time":
			info.VCSTime = s.Value
		case "vcs.modified":
			info.VCSModified = s.Value == "true"
		}
	}
	return info
}
