package telemetry

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	httppprof "net/http/pprof"
	"sort"
	"strings"
	"time"
)

// debugMarketEvents is how many trace events the debug page renders.
const debugMarketEvents = 64

// Health is the /healthz payload: daemon uptime, connected agents, and
// sampling freshness. LastSampleAgeSeconds is negative when no sampler
// has fired yet (or none is wired).
type Health struct {
	Status               string  `json:"status"`
	UptimeSeconds        float64 `json:"uptime_seconds"`
	AgentsConnected      int     `json:"agents_connected"`
	LastSampleAgeSeconds float64 `json:"last_sample_age_seconds"`
}

// HandlerConfig wires the observability HTTP surface. Every field is
// optional; endpoints without a backing component serve empty (but
// valid) documents or are left unmounted.
type HandlerConfig struct {
	// Registry backs /metrics (Prometheus text, or JSON with
	// ?format=json).
	Registry *Registry
	// Tracer backs /debug/market (events + dropped count) and
	// /debug/spans.
	Tracer *Tracer
	// Series, when set, is mounted at /debug/series — the tsdb window
	// query handler (kept as a plain http.Handler so telemetry does not
	// depend on its own subpackage).
	Series http.Handler
	// Health, when set, backs /healthz.
	Health func() Health
	// Flight, when set, is mounted at /debug/flight and
	// /debug/flight/dump — the flight recorder's status/dump surface
	// (plain http.Handler for the same layering reason as Series).
	Flight http.Handler
	// RT, when set, is mounted at /debug/rt — the latest runtime-health
	// snapshot from the flight recorder's sampler.
	RT http.Handler
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// NewHandler returns the observability HTTP surface:
//
//	/metrics        Prometheus text exposition (?format=json for JSON)
//	/debug/market   last clearing rounds (?format=json for JSON + dropped count)
//	/debug/spans    completed hierarchical spans, JSON
//	/debug/build    binary build identity (module version, VCS revision, GOOS/GOARCH)
//	/debug/series   windowed time-series queries (when Series is wired)
//	/debug/flight   flight-recorder status; POST …/dump writes a bundle (when Flight is wired)
//	/debug/rt       latest runtime-health snapshot (when RT is wired)
//	/healthz        uptime / agents / sample freshness (when Health is wired)
//	/debug/pprof/*  net/http/pprof (when Pprof is set)
//
// Histogram bucket semantics in both /metrics forms follow Prometheus:
// an observation v belongs to the first bucket whose upper bound
// satisfies v ≤ bound, with an implicit +Inf overflow bucket. The JSON
// form reports per-bucket (non-cumulative) counts alongside the bounds;
// the text form reports cumulative _bucket series. HDR histograms render
// as quantile summaries in both forms (see Registry.HDR).
//
// mprd mounts this under its -metrics flag.
func NewHandler(cfg HandlerConfig) http.Handler {
	r, t := cfg.Registry, cfg.Tracer
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.FormValue("format") == "json" {
			writeMetricsJSON(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/market", func(w http.ResponseWriter, req *http.Request) {
		if req.FormValue("format") == "json" {
			writeJSON(w, struct {
				DroppedEvents uint64  `json:"dropped_events"`
				Events        []Event `json:"events"`
			}{t.Dropped(), nonNilEvents(t.Last(debugMarketEvents))})
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeDebugMarket(w, r, t)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		spans := t.Spans()
		if spans == nil {
			spans = []Span{}
		}
		writeJSON(w, struct {
			Spans []Span `json:"spans"`
		}{spans})
	})
	mux.HandleFunc("/debug/build", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, ReadBuildInfo())
	})
	if cfg.Series != nil {
		mux.Handle("/debug/series", cfg.Series)
	}
	if cfg.Flight != nil {
		mux.Handle("/debug/flight", cfg.Flight)
		mux.Handle("/debug/flight/dump", cfg.Flight)
	}
	if cfg.RT != nil {
		mux.Handle("/debug/rt", cfg.RT)
	}
	if cfg.Health != nil {
		health := cfg.Health
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, health())
		})
	}
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		links := []string{"/metrics", "/debug/market", "/debug/spans", "/debug/build"}
		if cfg.Series != nil {
			links = append(links, "/debug/series")
		}
		if cfg.Flight != nil {
			links = append(links, "/debug/flight")
		}
		if cfg.RT != nil {
			links = append(links, "/debug/rt")
		}
		if cfg.Health != nil {
			links = append(links, "/healthz")
		}
		if cfg.Pprof {
			links = append(links, "/debug/pprof/")
		}
		var b strings.Builder
		b.WriteString("<html><body>")
		for i, l := range links {
			if i > 0 {
				b.WriteString(" · ")
			}
			fmt.Fprintf(&b, `<a href="%s">%s</a>`, l, l)
		}
		b.WriteString("</body></html>")
		fmt.Fprint(w, b.String())
	})
	return mux
}

// Handler returns the surface over just a registry and a tracer — the
// pre-tsdb signature, kept because mprd's tests and library users mount
// it directly. Either argument may be nil.
func Handler(r *Registry, t *Tracer) http.Handler {
	return NewHandler(HandlerConfig{Registry: r, Tracer: t})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(v)
}

func nonNilEvents(evs []Event) []Event {
	if evs == nil {
		return []Event{}
	}
	return evs
}

// writeMetricsJSON renders the registry snapshot as JSON — the
// machine-readable sibling of the Prometheus text form. Map keys are
// sorted by encoding/json, so the document is deterministic.
func writeMetricsJSON(w http.ResponseWriter, r *Registry) {
	s := r.Snapshot()
	if s == nil {
		s = &Snapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]HistogramSnapshot{},
		}
	}
	if s.HDRs == nil {
		s.HDRs = map[string]HDRSummary{}
	}
	writeJSON(w, struct {
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]float64           `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
		HDRs       map[string]HDRSummary        `json:"hdr_histograms"`
	}{s.Counters, s.Gauges, s.Histograms, s.HDRs})
}

func writeDebugMarket(w http.ResponseWriter, r *Registry, t *Tracer) {
	var b strings.Builder
	b.WriteString("<html><head><title>mpr market debug</title></head><body>\n")
	b.WriteString("<h1>Market debug</h1>\n")

	events := t.Last(debugMarketEvents)
	fmt.Fprintf(&b, "<h2>Last %d clearing-round events</h2>\n", len(events))
	fmt.Fprintf(&b, "<p>events dropped by the ring: %d</p>\n", t.Dropped())
	b.WriteString("<table border=\"1\" cellpadding=\"3\">\n")
	b.WriteString("<tr><th>seq</th><th>time</th><th>trace</th><th>event</th><th>slot</th><th>round</th><th>price</th><th>target W</th><th>supplied W</th><th>value</th><th>label</th></tr>\n")
	for i := len(events) - 1; i >= 0; i-- { // newest first
		e := events[i]
		ts := ""
		if e.TimeNS > 0 {
			ts = time.Unix(0, e.TimeNS).UTC().Format("15:04:05.000")
		}
		fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%.6g</td><td>%.6g</td><td>%.6g</td><td>%.6g</td><td>%s</td></tr>\n",
			e.Seq, ts, html.EscapeString(e.Trace), html.EscapeString(e.Name),
			e.Slot, e.Round, e.Price, e.TargetW, e.SuppliedW, e.Value,
			html.EscapeString(e.Label))
	}
	b.WriteString("</table>\n")

	if s := r.Snapshot(); s != nil {
		b.WriteString("<h2>Counters</h2>\n<table border=\"1\" cellpadding=\"3\"><tr><th>name</th><th>value</th></tr>\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td></tr>\n", html.EscapeString(name), s.Counters[name])
		}
		b.WriteString("</table>\n<h2>Gauges</h2>\n<table border=\"1\" cellpadding=\"3\"><tr><th>name</th><th>value</th></tr>\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%g</td></tr>\n", html.EscapeString(name), s.Gauges[name])
		}
		// Histogram rows render the full bucket layout: one "≤bound: n"
		// cell per non-empty bucket (counts are per-bucket, not
		// cumulative; the trailing +Inf bucket catches overflow) so the
		// debug page answers distribution questions, not just mean ones.
		b.WriteString("</table>\n<h2>Histograms</h2>\n<table border=\"1\" cellpadding=\"3\"><tr><th>name</th><th>count</th><th>mean</th><th>buckets (≤bound: count, non-cumulative)</th></tr>\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%.4g</td><td>%s</td></tr>\n",
				html.EscapeString(name), h.Count, h.Mean(), formatBuckets(h))
		}
		b.WriteString("</table>\n<h2>HDR histograms (quantile summaries)</h2>\n<table border=\"1\" cellpadding=\"3\"><tr><th>name</th><th>count</th><th>mean</th><th>min</th><th>p50</th><th>p90</th><th>p99</th><th>p999</th><th>max</th></tr>\n")
		for _, name := range sortedKeys(s.HDRs) {
			h := s.HDRs[name]
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%.4g</td><td>%.4g</td><td>%.4g</td><td>%.4g</td><td>%.4g</td><td>%.4g</td><td>%.4g</td></tr>\n",
				html.EscapeString(name), h.Count, h.Mean, h.Min, h.P50, h.P90, h.P99, h.P999, h.Max)
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")
	_, _ = w.Write([]byte(b.String()))
}

// formatBuckets renders a fixed-bucket histogram's non-empty buckets as
// "≤bound: count" cells (the final bucket is the implicit +Inf
// overflow). Empty histograms render as a dash.
func formatBuckets(h HistogramSnapshot) string {
	if h.Count == 0 {
		return "&mdash;"
	}
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" · ")
		}
		bound := "+Inf"
		if i < len(h.Bounds) {
			bound = fmt.Sprintf("%g", h.Bounds[i])
		}
		fmt.Fprintf(&b, "≤%s: %d", bound, c)
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
