package telemetry

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"time"
)

// debugMarketEvents is how many trace events the debug page renders.
const debugMarketEvents = 64

// Handler returns the observability HTTP surface over a registry and a
// tracer:
//
//	/metrics       Prometheus text exposition format
//	/debug/market  human-readable last clearing rounds from the trace ring
//
// Either argument may be nil; the corresponding endpoint then serves an
// empty (but valid) document. mprd mounts this under its -metrics flag.
func Handler(r *Registry, t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/market", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeDebugMarket(w, r, t)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, `<html><body><a href="/metrics">/metrics</a> · <a href="/debug/market">/debug/market</a></body></html>`)
	})
	return mux
}

func writeDebugMarket(w http.ResponseWriter, r *Registry, t *Tracer) {
	var b strings.Builder
	b.WriteString("<html><head><title>mpr market debug</title></head><body>\n")
	b.WriteString("<h1>Market debug</h1>\n")

	events := t.Last(debugMarketEvents)
	fmt.Fprintf(&b, "<h2>Last %d clearing-round events</h2>\n", len(events))
	b.WriteString("<table border=\"1\" cellpadding=\"3\">\n")
	b.WriteString("<tr><th>seq</th><th>time</th><th>trace</th><th>event</th><th>slot</th><th>round</th><th>price</th><th>target W</th><th>supplied W</th><th>value</th><th>label</th></tr>\n")
	for i := len(events) - 1; i >= 0; i-- { // newest first
		e := events[i]
		ts := ""
		if e.TimeNS > 0 {
			ts = time.Unix(0, e.TimeNS).UTC().Format("15:04:05.000")
		}
		fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%.6g</td><td>%.6g</td><td>%.6g</td><td>%.6g</td><td>%s</td></tr>\n",
			e.Seq, ts, html.EscapeString(e.Trace), html.EscapeString(e.Name),
			e.Slot, e.Round, e.Price, e.TargetW, e.SuppliedW, e.Value,
			html.EscapeString(e.Label))
	}
	b.WriteString("</table>\n")

	if s := r.Snapshot(); s != nil {
		b.WriteString("<h2>Counters</h2>\n<table border=\"1\" cellpadding=\"3\"><tr><th>name</th><th>value</th></tr>\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td></tr>\n", html.EscapeString(name), s.Counters[name])
		}
		b.WriteString("</table>\n<h2>Gauges</h2>\n<table border=\"1\" cellpadding=\"3\"><tr><th>name</th><th>value</th></tr>\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%g</td></tr>\n", html.EscapeString(name), s.Gauges[name])
		}
		b.WriteString("</table>\n<h2>Histograms</h2>\n<table border=\"1\" cellpadding=\"3\"><tr><th>name</th><th>count</th><th>mean</th></tr>\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%.4g</td></tr>\n", html.EscapeString(name), h.Count, h.Mean())
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")
	_, _ = w.Write([]byte(b.String()))
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
