package tsdb

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestTickerSamplerDrainAndFlush is the shutdown contract: cancelling
// the context produces exactly one final sample followed by exactly one
// flush, and Run returns the flush error.
func TestTickerSamplerDrainAndFlush(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	var samples, flushes atomic.Int64
	flushErr := errors.New("sink failed")
	s := &TickerSampler{
		Interval: time.Second,
		Clock:    clock,
		Sample:   func(time.Time) { samples.Add(1) },
		Flush:    func() error { flushes.Add(1); return flushErr },
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	// Wait for the immediate startup sample, then advance 3 ticks.
	waitFor(t, func() bool { return samples.Load() == 1 })
	clock.Advance(3 * time.Second)
	waitFor(t, func() bool { return samples.Load() == 4 })
	if flushes.Load() != 0 {
		t.Fatal("flushed before shutdown")
	}

	cancel()
	if err := <-done; err != flushErr {
		t.Fatalf("Run returned %v, want the flush error", err)
	}
	if got := samples.Load(); got != 5 {
		t.Fatalf("samples = %d, want 5 (start + 3 ticks + drain)", got)
	}
	if flushes.Load() != 1 {
		t.Fatalf("flushes = %d, want exactly 1", flushes.Load())
	}
}

// TestTickerSamplerLastSampleAge checks the /healthz freshness signal.
func TestTickerSamplerLastSampleAge(t *testing.T) {
	clock := NewFakeClock(time.Unix(2000, 0))
	s := &TickerSampler{Interval: time.Second, Clock: clock}
	if age := s.LastSampleAge(clock.Now()); age >= 0 {
		t.Fatalf("age before any sample = %v, want negative", age)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	waitFor(t, func() bool { return s.LastSampleAge(clock.Now()) == 0 })
	clock.Advance(1500 * time.Millisecond) // tick at +1s, now +1.5s
	waitFor(t, func() bool { return s.LastSampleAge(clock.Now()) == 500*time.Millisecond })
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if age := s.LastSampleAge(clock.Now()); age != 0 {
		t.Fatalf("age after drain = %v, want 0", age)
	}
}

// TestTickerSamplerRecordsIntoStore wires the sampler to a store the way
// mprd does and checks the series advances with fake time.
func TestTickerSamplerRecordsIntoStore(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	st := New(64)
	agents := st.Series("mpr_mgr_agents_connected")
	s := &TickerSampler{
		Interval: time.Second,
		Clock:    clock,
		Sample:   func(now time.Time) { agents.Append(now.UnixNano(), 3) },
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	waitFor(t, func() bool { return agents.Len() == 1 })
	clock.Advance(5 * time.Second)
	waitFor(t, func() bool { return agents.Len() == 6 })
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if agents.Len() != 7 { // start + 5 ticks + drain
		t.Fatalf("samples = %d, want 7", agents.Len())
	}
}

// waitFor polls cond with a real-time deadline — the fake clock delivers
// ticks asynchronously to the sampler goroutine.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
