package tsdb

import (
	"bytes"
	"strings"
	"testing"

	"mpr/internal/telemetry"
)

func TestNilStoreIsNop(t *testing.T) {
	var st *Store
	s := st.Series("x", Label{Key: "a", Value: "b"})
	if s != nil {
		t.Fatal("nil store must hand out the nil series")
	}
	s.Append(1, 2) // must not panic
	if s.Len() != 0 || s.Total() != 0 || (s.Last() != Point{}) {
		t.Fatal("nil series must be empty")
	}
	if st.Query(Query{}) != nil || st.Len() != 0 {
		t.Fatal("nil store must answer empty queries")
	}
}

func TestSeriesIdentityAndLabels(t *testing.T) {
	st := New(64)
	a := st.Series("power", Label{Key: "node", Value: "n1"}, Label{Key: "algo", Value: "MPR-INT"})
	// Label order must not matter: identity is the sorted label set.
	b := st.Series("power", Label{Key: "algo", Value: "MPR-INT"}, Label{Key: "node", Value: "n1"})
	if a != b {
		t.Fatal("label order changed series identity")
	}
	if want := `power{algo="MPR-INT",node="n1"}`; a.Key() != want {
		t.Fatalf("key = %q, want %q", a.Key(), want)
	}
	if c := st.Series("power", Label{Key: "node", Value: "n2"}); c == a {
		t.Fatal("different labels must resolve different series")
	}
	if bare := st.Series("power"); bare.Key() != "power" {
		t.Fatalf("bare key = %q", bare.Key())
	}
	if st.Len() != 3 {
		t.Fatalf("store len = %d, want 3", st.Len())
	}
}

func TestAppendAndRawWindow(t *testing.T) {
	st := New(16)
	s := st.Series("v")
	for i := 0; i < 40; i++ {
		s.Append(int64(i), float64(i))
	}
	if s.Len() != 16 || s.Total() != 40 {
		t.Fatalf("len=%d total=%d", s.Len(), s.Total())
	}
	if last := s.Last(); last.T != 39 || last.V != 39 {
		t.Fatalf("last = %+v", last)
	}
	data := st.Query(Query{Name: "v", Resolution: ResRaw})
	if len(data) != 1 {
		t.Fatalf("series = %d", len(data))
	}
	pts := data[0].Points
	if len(pts) != 16 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, b := range pts {
		want := int64(40 - 16 + i)
		if b.Start != want || b.End != want || b.Count != 1 || b.Min != float64(want) {
			t.Fatalf("point %d = %+v, want t=%d", i, b, want)
		}
	}
}

// TestDownsamplingPreservesSpikes drives enough samples through the
// store that the raw ring overwrites them, and checks the 10× and 100×
// buckets still carry the spike in their Max (and the dip in Min) —
// the min/max/sum/count design goal.
func TestDownsamplingPreservesSpikes(t *testing.T) {
	st := New(16) // raw keeps only 16; aggregates keep 16 buckets each
	s := st.Series("p")
	const n = 1000
	for i := 0; i < n; i++ {
		v := 1.0
		if i == 137 {
			v = 999 // spike long since overwritten in the raw ring
		}
		if i == 421 {
			v = -7 // dip
		}
		s.Append(int64(i), v)
	}
	// Raw ring no longer holds the spike.
	raw := st.Query(Query{Name: "p", Resolution: ResRaw})[0].Points
	for _, b := range raw {
		if b.Max == 999 {
			t.Fatal("raw ring unexpectedly still holds the spike")
		}
	}
	// The 100× ring covers 16*100 = 1600 samples, so bucket [100,199]
	// must still exist and carry the spike.
	coarse := st.Query(Query{Name: "p", Resolution: Res100})[0].Points
	var sawSpike, sawDip bool
	var total int64
	for _, b := range coarse {
		if b.Max == 999 {
			sawSpike = true
			if b.Start != 100 || b.End != 199 || b.Count != 100 {
				t.Fatalf("spike bucket = %+v", b)
			}
			if want := 999.0 + 99.0; b.Sum != want {
				t.Fatalf("spike bucket sum = %v, want %v", b.Sum, want)
			}
		}
		if b.Min == -7 {
			sawDip = true
		}
		total += b.Count
	}
	if !sawSpike || !sawDip {
		t.Fatalf("compaction lost extremes: spike=%v dip=%v", sawSpike, sawDip)
	}
	if total != n {
		t.Fatalf("100x buckets cover %d samples, want %d", total, n)
	}
	// 10× ring keeps 16 buckets = the newest 160 samples; its last
	// bucket must end at the last sample.
	mid := st.Query(Query{Name: "p", Resolution: Res10})[0].Points
	if len(mid) != 16 {
		t.Fatalf("10x points = %d", len(mid))
	}
	if last := mid[len(mid)-1]; last.End != n-1 {
		t.Fatalf("10x last bucket = %+v", last)
	}
}

// TestPartialBucketVisible checks the in-progress aggregate bucket shows
// up in coarse queries so the newest samples are never invisible.
func TestPartialBucketVisible(t *testing.T) {
	st := New(64)
	s := st.Series("v")
	for i := 0; i < 13; i++ { // one full 10× bucket + 3 partial samples
		s.Append(int64(i), float64(i))
	}
	pts := st.Query(Query{Name: "v", Resolution: Res10})[0].Points
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2 (full + partial)", len(pts))
	}
	if pts[0].Count != 10 || pts[1].Count != 3 || pts[1].End != 12 {
		t.Fatalf("buckets = %+v", pts)
	}
}

func TestQueryWindowMatcherAndThinning(t *testing.T) {
	st := New(128)
	a := st.Series("w", Label{Key: "algo", Value: "stat"})
	b := st.Series("w", Label{Key: "algo", Value: "int"})
	other := st.Series("x")
	for i := 0; i < 100; i++ {
		a.Append(int64(i), 1)
		b.Append(int64(i), 2)
		other.Append(int64(i), 3)
	}
	// Name filter.
	if data := st.Query(Query{Name: "w", Resolution: ResRaw}); len(data) != 2 {
		t.Fatalf("name filter returned %d series", len(data))
	}
	// Label matcher.
	data := st.Query(Query{Name: "w", Match: map[string]string{"algo": "int"}, Resolution: ResRaw})
	if len(data) != 1 || data[0].Labels["algo"] != "int" {
		t.Fatalf("matcher = %+v", data)
	}
	// Window bounds are inclusive.
	data = st.Query(Query{Name: "x", Start: 10, End: 19, Resolution: ResRaw})
	if n := len(data[0].Points); n != 10 {
		t.Fatalf("window points = %d, want 10", n)
	}
	// MaxPoints thins but keeps the newest point.
	data = st.Query(Query{Name: "x", Resolution: ResRaw, MaxPoints: 7})
	pts := data[0].Points
	if len(pts) > 7 {
		t.Fatalf("thinned to %d, want <= 7", len(pts))
	}
	if pts[len(pts)-1].End != 99 {
		t.Fatalf("thinning dropped the newest point: %+v", pts[len(pts)-1])
	}
	// Deterministic series order: sorted by canonical key —
	// w{algo="int"} < w{algo="stat"} < x.
	all := st.Query(Query{Resolution: ResRaw})
	if len(all) != 3 ||
		all[0].Labels["algo"] != "int" || all[1].Labels["algo"] != "stat" || all[2].Name != "x" {
		t.Fatalf("series order not deterministic: %+v", all)
	}
}

// TestAutoResolution checks ResAuto walks to coarser rings when the raw
// ring has wrapped past the requested start or the budget is exceeded.
func TestAutoResolution(t *testing.T) {
	st := New(16)
	s := st.Series("v")
	for i := 0; i < 20; i++ {
		s.Append(int64(i), 1)
	}
	// Raw ring wrapped (holds 4..19); asking from 0 must fall to 10×.
	data := st.Query(Query{Name: "v", Start: 0, Resolution: ResAuto})
	if data[0].Resolution != "10x" {
		t.Fatalf("resolution = %s, want 10x", data[0].Resolution)
	}
	// A window raw still covers stays raw.
	data = st.Query(Query{Name: "v", Start: 10, Resolution: ResAuto})
	if data[0].Resolution != "raw" {
		t.Fatalf("resolution = %s, want raw", data[0].Resolution)
	}
	// A tiny point budget forces coarser rings.
	data = st.Query(Query{Name: "v", Start: 10, Resolution: ResAuto, MaxPoints: 2})
	if data[0].Resolution == "raw" {
		t.Fatalf("budget ignored: %s", data[0].Resolution)
	}
}

// TestAppendZeroAlloc is the tentpole's allocation-frugality contract:
// once a series handle is resolved, the steady-state append path —
// including bucket completion and cascade — performs zero heap
// allocations.
func TestAppendZeroAlloc(t *testing.T) {
	st := New(1024)
	s := st.Series("v", Label{Key: "k", Value: "x"})
	var i int64
	allocs := testing.AllocsPerRun(2000, func() {
		s.Append(i, float64(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Append allocates: %v allocs/op", allocs)
	}
}

func TestExportJSONLAndCSVDeterministic(t *testing.T) {
	build := func() *Store {
		st := New(64)
		s := st.Series("p", Label{Key: "algo", Value: "int"})
		q := st.Series("q")
		for i := 0; i < 25; i++ {
			s.Append(int64(i), float64(i)*1.5)
			q.Append(int64(i), float64(100-i))
		}
		return st
	}
	var j1, j2, c1 bytes.Buffer
	if err := WriteJSONL(&j1, build().Query(Query{Resolution: ResRaw})); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&j2, build().Query(Query{Resolution: ResRaw})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSONL export not byte-identical across identical stores")
	}
	if err := WriteCSV(&c1, build().Query(Query{Resolution: Res10})); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(c1.String()), "\n")
	if lines[0] != "name,labels,resolution,start,end,min,max,sum,count" {
		t.Fatalf("csv header = %q", lines[0])
	}
	// 25 samples → two full 10× buckets + one partial, per series.
	if want := 1 + 2*3; len(lines) != want {
		t.Fatalf("csv lines = %d, want %d", len(lines), want)
	}
	if !strings.Contains(c1.String(), "algo=int") {
		t.Fatal("csv lost the label column")
	}
}

func TestIngestMarketTrace(t *testing.T) {
	tr := telemetry.NewTracer(64)
	run := tr.StartTrace("mpr-int-n3000")
	for r := 1; r <= 5; r++ {
		run.Emit(telemetry.Event{Name: "int_round", Round: r,
			Price: float64(r) * 0.25, Value: float64(r) * 0.125, SuppliedW: float64(r * 100)})
	}
	run.Emit(telemetry.Event{Name: "market_clear", Round: 5}) // ignored
	st := New(64)
	IngestMarketTrace(st, tr.Events())
	data := st.Query(Query{Name: "mpr_market_cleared_price",
		Match: map[string]string{"trace": "mpr-int-n3000"}, Resolution: ResRaw})
	if len(data) != 1 || len(data[0].Points) != 5 {
		t.Fatalf("ingest = %+v", data)
	}
	if p := data[0].Points[2]; p.Start != 3 || p.Max != 0.75 {
		t.Fatalf("round 3 = %+v", p)
	}
	if st.Len() != 3 {
		t.Fatalf("series = %d, want announced/cleared/supplied", st.Len())
	}
}
