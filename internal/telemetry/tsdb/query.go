package tsdb

// Resolution selects which ring a query reads.
type Resolution int

const (
	// ResAuto picks the finest resolution whose retained window still
	// covers the query's start and whose point count fits MaxPoints.
	ResAuto Resolution = iota
	// ResRaw reads individual samples.
	ResRaw
	// Res10 reads 10-sample aggregate buckets.
	Res10
	// Res100 reads 100-sample aggregate buckets.
	Res100
)

// String names the resolution as the HTTP surface spells it.
func (r Resolution) String() string {
	switch r {
	case ResRaw:
		return "raw"
	case Res10:
		return "10x"
	case Res100:
		return "100x"
	default:
		return "auto"
	}
}

// ParseResolution parses the HTTP spelling ("raw", "10x", "100x",
// "auto" or ""). Unknown strings fall back to ResAuto.
func ParseResolution(s string) Resolution {
	switch s {
	case "raw":
		return ResRaw
	case "10x":
		return Res10
	case "100x":
		return Res100
	default:
		return ResAuto
	}
}

// Query selects a window over the store.
type Query struct {
	// Name restricts to series with this exact name ("" matches all).
	Name string
	// Match is a label equality matcher: every listed key must be
	// present on the series with the given value (subset match).
	Match map[string]string
	// Start and End bound the window inclusively. Zero End means no
	// upper bound; zero Start no lower bound.
	Start, End int64
	// Resolution picks the ring (ResAuto adapts per series).
	Resolution Resolution
	// MaxPoints bounds the points returned per series: a window that
	// renders to more buckets than this is stride-thinned (every k-th
	// bucket, keeping the last). 0 means unlimited for explicit
	// resolutions and 1000 for ResAuto's fit heuristic.
	MaxPoints int
}

// autoMaxPoints is ResAuto's default fit budget.
const autoMaxPoints = 1000

// SeriesData is one series' rendered window.
type SeriesData struct {
	Name       string            `json:"name"`
	Labels     map[string]string `json:"labels,omitempty"`
	Resolution string            `json:"resolution"`
	Points     []Bucket          `json:"points"`
}

// matches reports whether the series satisfies the query's name and
// label constraints.
func (q *Query) matches(s *Series) bool {
	if q.Name != "" && q.Name != s.name {
		return false
	}
	for k, want := range q.Match {
		found := false
		for _, l := range s.labels {
			if l.Key == k {
				found = l.Value == want
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// resolve picks the concrete resolution for one series under ResAuto:
// the finest ring that still reaches back to the query's start (oldness)
// and whose full retained length fits the point budget. When nothing
// fits, the coarsest ring wins — better a compacted answer than none.
func (q *Query) resolve(s *Series) Resolution {
	if q.Resolution != ResAuto {
		return q.Resolution
	}
	budget := q.MaxPoints
	if budget <= 0 {
		budget = autoMaxPoints
	}
	for _, cand := range []struct {
		res   Resolution
		level int // -1 = raw
		n     int
	}{
		{ResRaw, -1, s.Len()},
		{Res10, 0, 0},
		{Res100, 1, 0},
	} {
		oldest, ok := s.oldestAt(cand.level)
		if !ok {
			continue
		}
		// A ring that has not wrapped still holds everything ever
		// appended, so it covers any start; a wrapped ring covers the
		// window only if its oldest survivor predates the start (an
		// unbounded start — zero — asks for all history).
		covers := !s.wrappedAt(cand.level) || (q.Start != 0 && oldest <= q.Start)
		n := cand.n
		if cand.level >= 0 {
			n = s.aggLen(cand.level)
		}
		if covers && n <= budget {
			return cand.res
		}
	}
	return Res100
}

// wrappedAt reports whether the ring at level (-1 = raw) has overwritten
// old data — if not, the ring trivially covers any start.
func (s *Series) wrappedAt(level int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if level < 0 {
		return s.rawN > uint64(len(s.raw))
	}
	return s.aggN[level] > uint64(len(s.agg[level]))
}

// aggLen returns the retained bucket count at level, including the
// partial bucket.
func (s *Series) aggLen(level int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.agg[level])
	if s.curN[level] > 0 {
		n++
	}
	return n
}

// Query renders every matching series' window, sorted by canonical
// series key so results are deterministic. Nil store returns nil.
func (st *Store) Query(q Query) []SeriesData {
	if st == nil {
		return nil
	}
	var out []SeriesData
	for _, s := range st.all() {
		if !q.matches(s) {
			continue
		}
		res := q.resolve(s)
		var pts []Bucket
		switch res {
		case ResRaw:
			pts = s.snapshotRaw(nil, q.Start, q.End)
		case Res10:
			pts = s.snapshotAgg(nil, 0, q.Start, q.End)
		default:
			pts = s.snapshotAgg(nil, 1, q.Start, q.End)
		}
		if q.MaxPoints > 0 && len(pts) > q.MaxPoints {
			pts = thin(pts, q.MaxPoints)
		}
		var labels map[string]string
		if len(s.labels) > 0 {
			labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				labels[l.Key] = l.Value
			}
		}
		out = append(out, SeriesData{
			Name:       s.name,
			Labels:     labels,
			Resolution: res.String(),
			Points:     pts,
		})
	}
	return out
}

// thin stride-samples pts down to at most max points, always keeping the
// last point so the window's newest edge survives.
func thin(pts []Bucket, max int) []Bucket {
	if max < 1 {
		max = 1
	}
	stride := (len(pts) + max - 1) / max
	out := make([]Bucket, 0, max)
	for i := 0; i < len(pts); i += stride {
		out = append(out, pts[i])
	}
	if last := pts[len(pts)-1]; len(out) == 0 || out[len(out)-1] != last {
		if len(out) == max {
			out[len(out)-1] = last
		} else {
			out = append(out, last)
		}
	}
	return out
}
