package tsdb

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// Handler serves windowed JSON series queries over the store, mounted by
// the telemetry HTTP surface at /debug/series. Parameters:
//
//	name        exact series name ("" = all)
//	match       label equality matcher, "k=v,k2=v2"
//	start, end  inclusive int64 window bounds (0 = unbounded)
//	res         raw | 10x | 100x | auto (default auto)
//	max_points  per-series point budget (default 1000)
//
// The response is {"series":[{name, labels, resolution, points:[{start,
// end, min, max, sum, count}...]}...]} in deterministic series-key
// order. A nil store serves an empty (but valid) document.
func Handler(st *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := Query{
			Name:       req.FormValue("name"),
			Resolution: ParseResolution(req.FormValue("res")),
			MaxPoints:  autoMaxPoints,
		}
		var err error
		if v := req.FormValue("start"); v != "" {
			if q.Start, err = strconv.ParseInt(v, 10, 64); err != nil {
				http.Error(w, "bad start: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if v := req.FormValue("end"); v != "" {
			if q.End, err = strconv.ParseInt(v, 10, 64); err != nil {
				http.Error(w, "bad end: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if v := req.FormValue("max_points"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, "bad max_points: need a positive integer", http.StatusBadRequest)
				return
			}
			q.MaxPoints = n
		}
		if v := req.FormValue("match"); v != "" {
			q.Match = make(map[string]string)
			for _, pair := range strings.Split(v, ",") {
				k, val, ok := strings.Cut(pair, "=")
				if !ok || k == "" {
					http.Error(w, "bad match: need k=v[,k2=v2...]", http.StatusBadRequest)
					return
				}
				q.Match[k] = val
			}
		}
		data := st.Query(q)
		if data == nil {
			data = []SeriesData{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(struct {
			Series []SeriesData `json:"series"`
		}{data})
	})
}
