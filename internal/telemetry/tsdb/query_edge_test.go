package tsdb

import "testing"

// fill appends n samples at t = 0..n-1 with value = t.
func fill(s *Series, n int) {
	for i := 0; i < n; i++ {
		s.Append(int64(i), float64(i))
	}
}

func queryOne(t *testing.T, st *Store, q Query) SeriesData {
	t.Helper()
	data := st.Query(q)
	if len(data) != 1 {
		t.Fatalf("query %+v returned %d series, want 1", q, len(data))
	}
	return data[0]
}

// TestQueryEmptyWindow covers degenerate windows: inverted bounds and
// windows entirely before or after the retained data. All must return
// the series with zero points rather than erroring or over-matching.
func TestQueryEmptyWindow(t *testing.T) {
	st := New(64)
	fill(st.Series("m"), 10) // t = 0..9

	cases := []struct {
		name string
		q    Query
	}{
		{"inverted (end before start)", Query{Name: "m", Start: 8, End: 3, Resolution: ResRaw}},
		{"entirely after data", Query{Name: "m", Start: 100, End: 200, Resolution: ResRaw}},
		{"entirely before data", Query{Name: "m", Start: -50, End: -10, Resolution: ResRaw}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sd := queryOne(t, st, tc.q)
			if len(sd.Points) != 0 {
				t.Errorf("points = %+v, want none", sd.Points)
			}
		})
	}

	// Sanity: the same series with a covering window does return points.
	if sd := queryOne(t, st, Query{Name: "m", Start: 0, End: 9, Resolution: ResRaw}); len(sd.Points) != 10 {
		t.Fatalf("covering window returned %d points", len(sd.Points))
	}
}

// TestResAutoAtCapacityBoundary pins ResAuto's ring choice exactly at
// the raw ring's wrap point (capacity floor 16): at n == capacity the
// raw ring has not wrapped and ResAuto serves raw for any start; one
// more append wraps it, and an unbounded-start query must fall back to
// the 10× ring while a start inside the surviving raw window stays raw.
func TestResAutoAtCapacityBoundary(t *testing.T) {
	st := New(16)
	s := st.Series("m")

	fill(s, 16) // exactly capacity: unwrapped
	sd := queryOne(t, st, Query{Name: "m"})
	if sd.Resolution != "raw" {
		t.Fatalf("at capacity: resolution %s, want raw", sd.Resolution)
	}
	if len(sd.Points) != 16 {
		t.Fatalf("at capacity: %d points, want 16", len(sd.Points))
	}

	s.Append(16, 16) // 17th sample: the ring wraps, t=0 is overwritten
	// Unbounded start asks for all history, which raw no longer covers.
	sd = queryOne(t, st, Query{Name: "m"})
	if sd.Resolution != "10x" {
		t.Fatalf("after wrap, unbounded start: resolution %s, want 10x", sd.Resolution)
	}
	// A start inside the surviving raw window (oldest survivor is t=1)
	// still gets raw fidelity.
	sd = queryOne(t, st, Query{Name: "m", Start: 1})
	if sd.Resolution != "raw" {
		t.Fatalf("after wrap, start=1: resolution %s, want raw", sd.Resolution)
	}
	if len(sd.Points) != 16 {
		t.Fatalf("after wrap, start=1: %d points, want 16", len(sd.Points))
	}
	if sd.Points[0].Start != 1 || sd.Points[len(sd.Points)-1].Start != 16 {
		t.Fatalf("surviving window = [%d,%d], want [1,16]",
			sd.Points[0].Start, sd.Points[len(sd.Points)-1].Start)
	}

	// A start older than the oldest raw survivor falls back too.
	sd = queryOne(t, st, Query{Name: "m", Start: 0})
	if sd.Resolution == "raw" {
		t.Fatalf("start predating raw retention still served raw")
	}
}

// TestResAutoPointBudget pins the MaxPoints side of the auto heuristic:
// a raw window larger than the budget falls to a coarser ring even
// though raw covers the start.
func TestResAutoPointBudget(t *testing.T) {
	st := New(64)
	fill(st.Series("m"), 40) // unwrapped: raw covers any start
	sd := queryOne(t, st, Query{Name: "m", MaxPoints: 10})
	if sd.Resolution != "10x" {
		t.Fatalf("resolution %s, want 10x under a 10-point budget", sd.Resolution)
	}
	if len(sd.Points) > 10 {
		t.Fatalf("%d points exceed the budget", len(sd.Points))
	}
}

// TestThinStride pins thin()'s off-by-one behavior through the public
// query path: the result never exceeds MaxPoints and always keeps the
// newest point.
func TestThinStride(t *testing.T) {
	cases := []struct {
		n, max     int
		wantStarts []int64
	}{
		// 10 pts, stride ⌈10/3⌉=4 → indices 0,4,8; the last point (9)
		// replaces the final slot to keep the newest edge.
		{10, 3, []int64{0, 4, 9}},
		// 9 pts, stride 3 → 0,3,6; last (8) replaces 6.
		{9, 3, []int64{0, 3, 8}},
		// Exact fit: stride 1 passes everything through untouched.
		{3, 3, []int64{0, 1, 2}},
		// max 1 collapses to just the newest point.
		{10, 1, []int64{9}},
		// stride 2 lands exactly on the last index: no replacement
		// needed, and no duplicate appended.
		{9, 5, []int64{0, 2, 4, 6, 8}},
	}
	for _, tc := range cases {
		st := New(64)
		fill(st.Series("m"), tc.n)
		sd := queryOne(t, st, Query{Name: "m", Resolution: ResRaw, MaxPoints: tc.max})
		if len(sd.Points) > tc.max {
			t.Errorf("n=%d max=%d: %d points exceed max", tc.n, tc.max, len(sd.Points))
		}
		got := make([]int64, len(sd.Points))
		for i, b := range sd.Points {
			got[i] = b.Start
		}
		if len(got) != len(tc.wantStarts) {
			t.Errorf("n=%d max=%d: starts %v, want %v", tc.n, tc.max, got, tc.wantStarts)
			continue
		}
		for i := range got {
			if got[i] != tc.wantStarts[i] {
				t.Errorf("n=%d max=%d: starts %v, want %v", tc.n, tc.max, got, tc.wantStarts)
				break
			}
		}
		if last := sd.Points[len(sd.Points)-1].Start; last != int64(tc.n-1) {
			t.Errorf("n=%d max=%d: newest point %d, want %d", tc.n, tc.max, last, tc.n-1)
		}
	}
}
