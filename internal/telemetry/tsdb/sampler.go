package tsdb

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts wall time so daemon sampling loops can be driven by a
// fake clock in tests. The zero-config real clock is the default.
type Clock interface {
	Now() time.Time
	NewTicker(d time.Duration) Ticker
}

// Ticker is the Clock-side of time.Ticker.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// realClock adapts package time.
type realClock struct{}

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) NewTicker(d time.Duration) Ticker { return &realTicker{time.NewTicker(d)} }

type realTicker struct{ t *time.Ticker }

func (t *realTicker) C() <-chan time.Time { return t.t.C }
func (t *realTicker) Stop()               { t.t.Stop() }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// TickerSampler drives a wall-clock sampling loop: Sample fires every
// Interval, and when the context is cancelled the loop drains — one
// final Sample followed by exactly one Flush — before returning. This is
// the shutdown contract mprd relies on so SIGINT/SIGTERM cannot cut a
// series or trace sink off mid-write.
type TickerSampler struct {
	// Interval between samples (default 1 s when non-positive).
	Interval time.Duration
	// Sample records one observation round (e.g. appending gauges into
	// store series). Called from the loop goroutine only.
	Sample func(now time.Time)
	// Flush, when set, is called exactly once after the final sample
	// (e.g. flushing buffered JSONL sinks). Its error is returned by Run.
	Flush func() error
	// Clock defaults to the real wall clock; tests inject a FakeClock.
	Clock Clock

	lastNS atomic.Int64
}

// Run samples until ctx is cancelled, then drains and flushes. It blocks;
// callers run it in a goroutine and wait on its return for shutdown.
func (s *TickerSampler) Run(ctx context.Context) error {
	clock := s.Clock
	if clock == nil {
		clock = RealClock()
	}
	interval := s.Interval
	if interval <= 0 {
		interval = time.Second
	}
	// Ticker first, then the startup sample: observers that see the
	// first sample (e.g. tests driving a fake clock) know the ticker is
	// already registered and no tick can be lost.
	tick := clock.NewTicker(interval)
	defer tick.Stop()
	s.sample(clock.Now())
	for {
		select {
		case now := <-tick.C():
			s.sample(now)
		case <-ctx.Done():
			// Drain: one final sample so the window ends at shutdown
			// time, then flush the sinks exactly once.
			s.sample(clock.Now())
			if s.Flush != nil {
				return s.Flush()
			}
			return nil
		}
	}
}

func (s *TickerSampler) sample(now time.Time) {
	if s.Sample != nil {
		s.Sample(now)
	}
	s.lastNS.Store(now.UnixNano())
}

// LastSampleAge returns how long ago the last sample fired (relative to
// now), or a negative duration when no sample has fired yet — the
// /healthz freshness signal.
func (s *TickerSampler) LastSampleAge(now time.Time) time.Duration {
	last := s.lastNS.Load()
	if last == 0 {
		return -1
	}
	return now.Sub(time.Unix(0, last))
}

// FakeClock is a manually advanced Clock for tests: Advance moves time
// forward and delivers the ticks that elapsed to every ticker.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*fakeTicker
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTicker registers a ticker firing every d of fake time.
func (c *FakeClock) NewTicker(d time.Duration) Ticker {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTicker{period: d, next: c.now.Add(d), ch: make(chan time.Time, 64)}
	c.tickers = append(c.tickers, t)
	return t
}

// Advance moves the clock forward by d, delivering every tick that
// elapses (in order) to the registered tickers. Delivery is
// non-blocking: a reader that has fallen behind loses ticks, like a real
// time.Ticker.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	for _, t := range c.tickers {
		if t.stopped.Load() {
			continue
		}
		for !t.next.After(c.now) {
			select {
			case t.ch <- t.next:
			default:
			}
			t.next = t.next.Add(t.period)
		}
	}
}

type fakeTicker struct {
	period  time.Duration
	next    time.Time
	ch      chan time.Time
	stopped atomic.Bool
}

func (t *fakeTicker) C() <-chan time.Time { return t.ch }
func (t *fakeTicker) Stop()               { t.stopped.Store(true) }
