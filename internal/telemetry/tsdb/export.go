package tsdb

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"mpr/internal/telemetry"
)

// jsonlRecord is one exported bucket line. Fields mirror SeriesData plus
// the bucket, flattened so downstream tools can stream-filter without
// holding whole series in memory.
type jsonlRecord struct {
	Name       string            `json:"name"`
	Labels     map[string]string `json:"labels,omitempty"`
	Resolution string            `json:"resolution"`
	Start      int64             `json:"start"`
	End        int64             `json:"end"`
	Min        float64           `json:"min"`
	Max        float64           `json:"max"`
	Sum        float64           `json:"sum"`
	Count      int64             `json:"count"`
}

// WriteJSONL writes one JSON line per bucket. Series arrive in the
// deterministic key order Query produces and encoding/json sorts label
// maps, so identical data renders byte-identically.
func WriteJSONL(w io.Writer, data []SeriesData) error {
	enc := json.NewEncoder(w)
	for _, sd := range data {
		for _, b := range sd.Points {
			rec := jsonlRecord{
				Name: sd.Name, Labels: sd.Labels, Resolution: sd.Resolution,
				Start: b.Start, End: b.End, Min: b.Min, Max: b.Max,
				Sum: b.Sum, Count: b.Count,
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV writes a flat CSV with one row per bucket. Labels render as a
// single sorted "k=v;k2=v2" column.
func WriteCSV(w io.Writer, data []SeriesData) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "labels", "resolution", "start", "end", "min", "max", "sum", "count"}); err != nil {
		return err
	}
	for _, sd := range data {
		labels := renderLabels(sd.Labels)
		for _, b := range sd.Points {
			row := []string{
				sd.Name, labels, sd.Resolution,
				strconv.FormatInt(b.Start, 10), strconv.FormatInt(b.End, 10),
				formatFloat(b.Min), formatFloat(b.Max), formatFloat(b.Sum),
				strconv.FormatInt(b.Count, 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s=%s", k, labels[k])
	}
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExportFile renders the query's result to path: CSV when the path ends
// in ".csv", JSONL otherwise.
func ExportFile(st *Store, q Query, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	data := st.Query(q)
	if strings.HasSuffix(path, ".csv") {
		err = WriteCSV(f, data)
	} else {
		err = WriteJSONL(f, data)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Series names IngestMarketTrace writes, one per int_round field.
const (
	SeriesMarketAnnouncedPrice = "mpr_market_announced_price"
	SeriesMarketClearedPrice   = "mpr_market_cleared_price"
	SeriesMarketSuppliedW      = "mpr_market_supplied_w"
)

// IngestMarketTrace replays the telemetry layer's per-round "int_round"
// market events into the store as per-trace convergence series (keyed by
// round): the announced price, the cleared price, and the supplied
// reduction. This is how the Fig. 10 convergence-trajectory tables are
// regenerated from recorded series instead of ad-hoc trace scraping.
func IngestMarketTrace(st *Store, events []telemetry.Event) {
	if st == nil {
		return
	}
	type handles struct{ announced, cleared, supplied *Series }
	byTrace := make(map[string]handles)
	for _, e := range events {
		if e.Name != "int_round" {
			continue
		}
		h, ok := byTrace[e.Trace]
		if !ok {
			lbl := Label{Key: "trace", Value: e.Trace}
			h = handles{
				announced: st.Series(SeriesMarketAnnouncedPrice, lbl),
				cleared:   st.Series(SeriesMarketClearedPrice, lbl),
				supplied:  st.Series(SeriesMarketSuppliedW, lbl),
			}
			byTrace[e.Trace] = h
		}
		t := int64(e.Round)
		h.announced.Append(t, e.Value)
		h.cleared.Append(t, e.Price)
		h.supplied.Append(t, e.SuppliedW)
	}
}
