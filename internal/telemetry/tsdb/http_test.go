package tsdb

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

type seriesResponse struct {
	Series []SeriesData `json:"series"`
}

func getSeries(t *testing.T, h http.Handler, path string) (*http.Response, seriesResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out seriesResponse
	if res.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("bad JSON %q: %v", body, err)
		}
	}
	return res, out
}

func TestSeriesHandler(t *testing.T) {
	st := New(64)
	p := st.Series("mpr_sim_power_demand_w", Label{Key: "algo", Value: "MPR-INT"})
	for i := 0; i < 50; i++ {
		p.Append(int64(i), 1000+float64(i))
	}
	st.Series("other").Append(1, 2)
	h := Handler(st)

	res, out := getSeries(t, h, "/debug/series?name=mpr_sim_power_demand_w&res=raw&start=10&end=19")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	if len(out.Series) != 1 {
		t.Fatalf("series = %d", len(out.Series))
	}
	sd := out.Series[0]
	if sd.Resolution != "raw" || len(sd.Points) != 10 || sd.Labels["algo"] != "MPR-INT" {
		t.Fatalf("window = %+v", sd)
	}
	if sd.Points[0].Start != 10 || sd.Points[9].End != 19 {
		t.Fatalf("bounds = %+v .. %+v", sd.Points[0], sd.Points[9])
	}

	// Downsampled window: 10× buckets.
	_, out = getSeries(t, h, "/debug/series?name=mpr_sim_power_demand_w&res=10x")
	if got := out.Series[0]; got.Resolution != "10x" || len(got.Points) != 5 {
		t.Fatalf("10x = %+v", got)
	}

	// Label matcher.
	_, out = getSeries(t, h, "/debug/series?match=algo%3DMPR-INT")
	if len(out.Series) != 1 || out.Series[0].Name != "mpr_sim_power_demand_w" {
		t.Fatalf("matcher = %+v", out.Series)
	}

	// max_points thins.
	_, out = getSeries(t, h, "/debug/series?name=mpr_sim_power_demand_w&res=raw&max_points=4")
	if n := len(out.Series[0].Points); n > 4 {
		t.Fatalf("max_points ignored: %d points", n)
	}

	// Bad parameters are 400s, not panics.
	for _, path := range []string{
		"/debug/series?start=abc",
		"/debug/series?end=x",
		"/debug/series?max_points=0",
		"/debug/series?match=nokey",
	} {
		if res, _ := getSeries(t, h, path); res.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status = %d, want 400", path, res.StatusCode)
		}
	}

	// Nil store serves an empty but valid document.
	if res, out := getSeries(t, Handler(nil), "/debug/series"); res.StatusCode != http.StatusOK || out.Series == nil || len(out.Series) != 0 {
		t.Fatalf("nil store: status=%d series=%v", res.StatusCode, out.Series)
	}
}
