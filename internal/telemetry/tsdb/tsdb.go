// Package tsdb is the repo's embedded, allocation-frugal in-memory
// time-series store: fixed-capacity ring series keyed by name+labels with
// multi-resolution downsampling. Each series retains three rings — the
// raw samples, 10-sample aggregate buckets, and 100-sample aggregate
// buckets — where every aggregate bucket carries min/max/sum/count so
// power spikes and price excursions survive compaction. The coarse rings
// have the same slot count as the raw ring, so they cover 10× and 100×
// the raw window: recent history is sharp, older history is compacted
// but never silently truncated to averages.
//
// Writes are lock-striped across series (the store shards its series map
// 16 ways) and per-series appends touch only that series' mutex for a
// bounded, allocation-free critical section, so a sampler ticking every
// simulated slot or wall-clock second never blocks behind a reader:
// queries copy the requested window under the same short lock and do all
// rendering outside it.
//
// Timestamps are opaque int64s. The simulator writes virtual time
// (one-minute slot indices) so recorded series are bit-identical across
// runs and worker counts; daemons write Unix nanoseconds.
package tsdb

import (
	"sort"
	"strings"
	"sync"
)

// ratio is the downsampling factor between adjacent resolutions.
const ratio = 10

// aggLevels is the number of aggregate resolutions (10× and 100×).
const aggLevels = 2

// Point is one raw sample.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Bucket is one downsampled aggregate over consecutive samples — or, at
// raw resolution, a single sample rendered in bucket form (Start = End,
// Min = Max = Sum = the sample, Count = 1). Keeping one wire shape for
// every resolution lets exporters and the alert evaluator treat windows
// uniformly.
type Bucket struct {
	// Start and End are the timestamps of the first and last sample
	// folded into the bucket (inclusive).
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Min, Max, Sum, Count aggregate the folded samples.
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
}

// Mean returns the bucket's average sample (0 when empty).
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// fold merges one sample into the bucket.
func (b *Bucket) fold(t int64, v float64) {
	if b.Count == 0 {
		*b = Bucket{Start: t, End: t, Min: v, Max: v, Sum: v, Count: 1}
		return
	}
	b.End = t
	if v < b.Min {
		b.Min = v
	}
	if v > b.Max {
		b.Max = v
	}
	b.Sum += v
	b.Count++
}

// merge folds a completed finer bucket into a coarser one.
func (b *Bucket) merge(f Bucket) {
	if b.Count == 0 {
		*b = f
		return
	}
	b.End = f.End
	if f.Min < b.Min {
		b.Min = f.Min
	}
	if f.Max > b.Max {
		b.Max = f.Max
	}
	b.Sum += f.Sum
	b.Count += f.Count
}

// Label is one series label. Series identity is the name plus the sorted
// label set.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Series is one named time series: a raw ring plus the two aggregate
// rings. Resolve a handle once with Store.Series and keep it — Append on
// a resolved handle allocates nothing.
type Series struct {
	name   string
	labels []Label // sorted by key, immutable after creation
	key    string  // canonical name{k="v",...} identity

	mu   sync.Mutex
	raw  []Point // fixed capacity; wraps at rawN % cap
	rawN uint64  // total raw appends
	agg  [aggLevels][]Bucket
	aggN [aggLevels]uint64 // completed buckets pushed per level
	cur  [aggLevels]Bucket // partial bucket being filled
	curN [aggLevels]int    // finer units folded into cur (raw samples / level-0 buckets)
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Labels returns the series' sorted label set (shared; do not mutate).
func (s *Series) Labels() []Label { return s.labels }

// Key returns the canonical series identity, name{k="v",...}.
func (s *Series) Key() string { return s.key }

// Append records one sample. The sample lands in the raw ring and folds
// into the partial 10× bucket; every 10 raw samples complete a 10×
// bucket, every 10 of those a 100× bucket. Zero allocations on a
// resolved handle; no-op on a nil series.
func (s *Series) Append(t int64, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.raw) < cap(s.raw) {
		s.raw = append(s.raw, Point{t, v})
	} else {
		s.raw[int(s.rawN%uint64(cap(s.raw)))] = Point{t, v}
	}
	s.rawN++
	s.cur[0].fold(t, v)
	s.curN[0]++
	if s.curN[0] == ratio {
		s.pushAgg(0)
	}
	s.mu.Unlock()
}

// pushAgg completes the partial bucket at level and cascades it upward.
// Caller holds s.mu.
func (s *Series) pushAgg(level int) {
	done := s.cur[level]
	if len(s.agg[level]) < cap(s.agg[level]) {
		s.agg[level] = append(s.agg[level], done)
	} else {
		s.agg[level][int(s.aggN[level]%uint64(cap(s.agg[level])))] = done
	}
	s.aggN[level]++
	s.cur[level] = Bucket{}
	s.curN[level] = 0
	if level+1 < aggLevels {
		s.cur[level+1].merge(done)
		s.curN[level+1]++
		if s.curN[level+1] == ratio {
			s.pushAgg(level + 1)
		}
	}
}

// Len returns the number of raw samples currently retained.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.raw)
}

// Total returns the number of samples ever appended (including samples
// that have since been overwritten in the raw ring — they survive,
// compacted, in the aggregate rings).
func (s *Series) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rawN
}

// Last returns the most recent sample (zero Point when empty).
func (s *Series) Last() Point {
	if s == nil {
		return Point{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rawN == 0 {
		return Point{}
	}
	return s.raw[int((s.rawN-1)%uint64(cap(s.raw)))]
}

// snapshotRaw copies the retained raw window in chronological order into
// out (appending), restricted to [start, end].
func (s *Series) snapshotRaw(out []Bucket, start, end int64) []Bucket {
	s.mu.Lock()
	n := len(s.raw)
	first := s.rawN - uint64(n)
	for i := 0; i < n; i++ {
		p := s.raw[int((first+uint64(i))%uint64(cap(s.raw)))]
		if p.T < start || (end != 0 && p.T > end) {
			continue
		}
		out = append(out, Bucket{Start: p.T, End: p.T, Min: p.V, Max: p.V, Sum: p.V, Count: 1})
	}
	s.mu.Unlock()
	return out
}

// snapshotAgg copies the retained aggregate window at the given level in
// chronological order into out (appending), restricted to [start, end].
// The partial in-progress bucket is included so the newest samples are
// never invisible at coarse resolutions.
func (s *Series) snapshotAgg(out []Bucket, level int, start, end int64) []Bucket {
	s.mu.Lock()
	ring := s.agg[level]
	n := len(ring)
	first := s.aggN[level] - uint64(n)
	for i := 0; i < n; i++ {
		b := ring[int((first+uint64(i))%uint64(cap(ring)))]
		if b.End < start || (end != 0 && b.Start > end) {
			continue
		}
		out = append(out, b)
	}
	if s.curN[level] > 0 {
		b := s.cur[level]
		if b.End >= start && (end == 0 || b.Start <= end) {
			out = append(out, b)
		}
	}
	s.mu.Unlock()
	return out
}

// oldestAt reports the oldest timestamp retained at the given resolution
// level (-1 = raw) and whether the series holds any data there at all.
func (s *Series) oldestAt(level int) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if level < 0 {
		n := len(s.raw)
		if n == 0 {
			return 0, false
		}
		first := s.rawN - uint64(n)
		return s.raw[int(first%uint64(cap(s.raw)))].T, true
	}
	ring := s.agg[level]
	if n := len(ring); n > 0 {
		first := s.aggN[level] - uint64(n)
		return ring[int(first%uint64(cap(ring)))].Start, true
	}
	if s.curN[level] > 0 {
		return s.cur[level].Start, true
	}
	return 0, false
}

// storeStripes shards the series map so concurrent samplers resolving or
// appending to unrelated series do not contend on one lock.
const storeStripes = 16

type storeStripe struct {
	mu     sync.RWMutex
	series map[string]*Series
	_      [32]byte // keep stripe locks off shared cache lines
}

// Store is a set of ring series sharded across lock stripes. The zero
// value is not usable; construct with New. A nil *Store is the Nop
// store: Series returns nil (whose Append is a no-op) and queries return
// nothing, mirroring the telemetry package's nil-safety contract.
type Store struct {
	rawCap  int
	stripes [storeStripes]storeStripe
}

// DefaultCapacity is the per-series raw ring size when New is given a
// non-positive capacity: with one sample per simulated one-minute slot it
// retains ~2.8 days raw, ~28 days at 10×, and the better part of a year
// at 100×.
const DefaultCapacity = 4096

// New builds a store whose series each retain rawCapacity raw samples
// (minimum 16; DefaultCapacity when non-positive). The two aggregate
// rings get the same slot count, covering 10× and 100× the raw window.
func New(rawCapacity int) *Store {
	if rawCapacity <= 0 {
		rawCapacity = DefaultCapacity
	}
	if rawCapacity < 16 {
		rawCapacity = 16
	}
	st := &Store{rawCap: rawCapacity}
	for i := range st.stripes {
		st.stripes[i].series = make(map[string]*Series)
	}
	return st
}

// seriesKey renders the canonical identity name{k="v",...} over sorted
// labels (bare name without labels).
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// CanonicalKey renders the canonical series identity — name{k="v",...}
// over sorted labels — without resolving a series. Consumers (the alert
// evaluator) use it to name series in firings exactly as the store does.
func CanonicalKey(name string, labels []Label) string {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	return seriesKey(name, sorted)
}

// fnv1a hashes a key onto a stripe.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Series resolves (creating on first use) the series with the given name
// and labels. Resolution allocates (key rendering, ring allocation on
// first use) — hot paths resolve once and keep the handle. Returns nil
// on a nil store.
func (st *Store) Series(name string, labels ...Label) *Series {
	if st == nil {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := seriesKey(name, ls)
	sp := &st.stripes[fnv1a(key)%storeStripes]
	sp.mu.RLock()
	s := sp.series[key]
	sp.mu.RUnlock()
	if s != nil {
		return s
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if s = sp.series[key]; s != nil {
		return s
	}
	s = &Series{
		name:   name,
		labels: ls,
		key:    key,
		raw:    make([]Point, 0, st.rawCap),
	}
	for i := range s.agg {
		s.agg[i] = make([]Bucket, 0, st.rawCap)
	}
	sp.series[key] = s
	return s
}

// all returns every series sorted by canonical key — the deterministic
// iteration order every query and export uses.
func (st *Store) all() []*Series {
	if st == nil {
		return nil
	}
	var out []*Series
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.RLock()
		for _, s := range sp.series {
			out = append(out, s)
		}
		sp.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// Len returns the number of series in the store.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	n := 0
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.RLock()
		n += len(sp.series)
		sp.mu.RUnlock()
	}
	return n
}
