package tco

import (
	"testing"

	"mpr/internal/check/floats"
)

func TestParamsDefaults(t *testing.T) {
	var p Params
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	if p.InfraCapitalPerKWMonth != 12 || p.ElectricityPerKWh != 0.08 {
		t.Errorf("defaults = %+v", p)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{InfraCapitalPerKWMonth: -1},
		{Utilization: 1.5},
		{ElectricityPerKWh: -0.01},
	}
	for i, p := range bad {
		if err := p.Normalize(); err == nil {
			t.Errorf("params %d should be invalid", i)
		}
	}
}

func TestEvaluateBaseline(t *testing.T) {
	b, err := Evaluate(Params{}, Scenario{BaseCores: 2004})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cores != 2004 {
		t.Errorf("cores = %v", b.Cores)
	}
	if b.RewardPayoff != 0 {
		t.Errorf("baseline reward = %v", b.RewardPayoff)
	}
	if b.Total <= 0 || b.CostPerCoreH <= 0 {
		t.Errorf("breakdown = %+v", b)
	}
	sum := b.InfraCapital + b.ServerCapital + b.Electricity + b.RewardPayoff
	if !floats.AbsEqual(sum, b.Total, 1e-9) {
		t.Errorf("components %v != total %v", sum, b.Total)
	}
}

// The paper's economics: oversubscription lowers the cost per delivered
// core-hour because infrastructure capital is spread over more cores,
// even after paying the rewards and the extra execution.
func TestOversubscriptionLowersUnitCost(t *testing.T) {
	base, err := Evaluate(Params{}, Scenario{BaseCores: 2004})
	if err != nil {
		t.Fatal(err)
	}
	// Realistic 15% case from the simulation: rewards and extra
	// execution are a few thousand core-hours/month on a ~1M core-h
	// system.
	over, err := Evaluate(Params{}, Scenario{
		BaseCores:           2004,
		OversubPct:          15,
		RewardCoreHMonth:    6000,
		ExtraExecCoreHMonth: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if over.CostPerCoreH >= base.CostPerCoreH {
		t.Errorf("oversubscribed unit cost %v should beat baseline %v",
			over.CostPerCoreH, base.CostPerCoreH)
	}
	// Infrastructure capital unchanged; server capital and electricity
	// grow with the added cores.
	if !floats.AbsEqual(over.InfraCapital, base.InfraCapital, 1e-9) {
		t.Error("oversubscription must not change infrastructure capital")
	}
	if over.ServerCapital <= base.ServerCapital || over.Electricity <= base.Electricity {
		t.Error("added servers must cost more capital and electricity")
	}
	if over.RewardPayoff <= 0 {
		t.Error("rewards must be priced in")
	}
}

// Excessive rewards erase the benefit — the diminishing-return message of
// Fig. 11(b).
func TestExcessiveRewardsEraseBenefit(t *testing.T) {
	base, _ := Evaluate(Params{}, Scenario{BaseCores: 2004})
	over, err := Evaluate(Params{}, Scenario{
		BaseCores:           2004,
		OversubPct:          15,
		RewardCoreHMonth:    180000, // paying out most of the added capacity
		ExtraExecCoreHMonth: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if over.CostPerCoreH <= base.CostPerCoreH {
		t.Errorf("huge rewards should erase the benefit: %v vs %v",
			over.CostPerCoreH, base.CostPerCoreH)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(Params{}, Scenario{BaseCores: 0}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := Evaluate(Params{}, Scenario{BaseCores: 10, OversubPct: -5}); err == nil {
		t.Error("negative oversubscription accepted")
	}
	// A scenario that pays out more than it delivers.
	if _, err := Evaluate(Params{}, Scenario{
		BaseCores: 10, RewardCoreHMonth: 1e9,
	}); err == nil {
		t.Error("negative delivered capacity accepted")
	}
}
