// Package tco models the total-cost-of-ownership impact of MPR-managed
// oversubscription (Section III-F): "MPR affects the HPC's TCO in two
// ways — increase in HPC utilization and reward payoff to HPC users."
//
// The model follows the standard data-center cost breakdown the paper
// cites ([1], [15]): power infrastructure capital cost dominated by the
// UPS and amortized per kW of capacity, server capital amortized per
// core, electricity billed per kWh, plus MPR's reward payoff priced in
// core-hours at the system's effective core-hour cost. Oversubscription
// adds servers (and their electricity) without adding infrastructure —
// that is the whole economic point — at the cost of the reward payoff and
// the overloaded jobs' extra execution.
package tco

import "fmt"

// Params prices the cost components. Defaults (via Normalize) follow the
// ballpark figures of the cost studies the paper cites; all costs are
// amortized to a monthly basis.
type Params struct {
	// InfraCapitalPerKWMonth is the amortized power-infrastructure
	// capital cost per kW of capacity per month (UPS-dominated;
	// ~$10-15/kW/month for a ~$2000/kW build over 12-15 years).
	InfraCapitalPerKWMonth float64
	// ServerCapitalPerCoreMonth is the amortized server capital per core
	// per month (~$4000 per 64-core node over 5 years ≈ $1/core/month).
	ServerCapitalPerCoreMonth float64
	// ElectricityPerKWh is the utility tariff (~$0.08/kWh industrial).
	ElectricityPerKWh float64
	// WattsPerCore is the average per-core draw at typical utilization.
	WattsPerCore float64
	// Utilization is the average fraction of cores doing useful work.
	Utilization float64
}

// Normalize fills defaults and validates.
func (p *Params) Normalize() error {
	if p.InfraCapitalPerKWMonth == 0 {
		p.InfraCapitalPerKWMonth = 12
	}
	if p.ServerCapitalPerCoreMonth == 0 {
		p.ServerCapitalPerCoreMonth = 1
	}
	if p.ElectricityPerKWh == 0 {
		p.ElectricityPerKWh = 0.08
	}
	if p.WattsPerCore == 0 {
		p.WattsPerCore = 150 * 0.7 // paper's 150 W peak core at ~70% util
	}
	if p.Utilization == 0 {
		p.Utilization = 0.7
	}
	for name, v := range map[string]float64{
		"infra capital":  p.InfraCapitalPerKWMonth,
		"server capital": p.ServerCapitalPerCoreMonth,
		"electricity":    p.ElectricityPerKWh,
		"watts per core": p.WattsPerCore,
	} {
		if v < 0 {
			return fmt.Errorf("tco: %s must be non-negative", name)
		}
	}
	if p.Utilization <= 0 || p.Utilization > 1 {
		return fmt.Errorf("tco: utilization must be in (0,1], got %v", p.Utilization)
	}
	return nil
}

// Scenario describes one capacity plan to price.
type Scenario struct {
	// BaseCores is the core count the infrastructure was built for.
	BaseCores float64
	// OversubPct is the oversubscription level (0 = none).
	OversubPct float64
	// RewardCoreHMonth is MPR's monthly incentive payoff in core-hours
	// (from simulation results); 0 without oversubscription.
	RewardCoreHMonth float64
	// ExtraExecCoreHMonth is the overloaded jobs' monthly extra
	// execution in core-hours — capacity consumed re-doing slowed work.
	ExtraExecCoreHMonth float64
}

// Breakdown is a monthly TCO decomposition.
type Breakdown struct {
	Cores float64
	// Monthly dollar components.
	InfraCapital  float64
	ServerCapital float64
	Electricity   float64
	RewardPayoff  float64
	Total         float64
	// DeliveredCoreH is the useful capacity after subtracting rewards
	// and extra execution; CostPerCoreH = Total / DeliveredCoreH is the
	// figure of merit.
	DeliveredCoreH float64
	CostPerCoreH   float64
}

// Evaluate prices a scenario with the given parameters over a 720-hour
// month.
func Evaluate(p Params, s Scenario) (*Breakdown, error) {
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	if s.BaseCores <= 0 {
		return nil, fmt.Errorf("tco: base cores must be positive")
	}
	if s.OversubPct < 0 {
		return nil, fmt.Errorf("tco: oversubscription must be non-negative")
	}
	const hoursPerMonth = 720

	cores := s.BaseCores * (1 + s.OversubPct/100)
	// Infrastructure is sized for the base system — oversubscription is
	// precisely not paying for more of it.
	infraKW := s.BaseCores * p.WattsPerCore / p.Utilization / 1000

	b := &Breakdown{Cores: cores}
	b.InfraCapital = infraKW * p.InfraCapitalPerKWMonth
	b.ServerCapital = cores * p.ServerCapitalPerCoreMonth
	b.Electricity = cores * p.WattsPerCore / 1000 * hoursPerMonth * p.ElectricityPerKWh
	// Reward payoff priced at the system's raw cost per core-hour.
	rawCostPerCoreH := (b.InfraCapital + b.ServerCapital + b.Electricity) /
		(cores * p.Utilization * hoursPerMonth)
	b.RewardPayoff = s.RewardCoreHMonth * rawCostPerCoreH
	b.Total = b.InfraCapital + b.ServerCapital + b.Electricity + b.RewardPayoff

	b.DeliveredCoreH = cores*p.Utilization*hoursPerMonth - s.RewardCoreHMonth - s.ExtraExecCoreHMonth
	if b.DeliveredCoreH <= 0 {
		return nil, fmt.Errorf("tco: scenario delivers no useful capacity")
	}
	b.CostPerCoreH = b.Total / b.DeliveredCoreH
	return b, nil
}
