package solver

import (
	"math"
	"testing"
	"testing/quick"

	"mpr/internal/check/floats"
)

func TestBisectLinear(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return 2*x - 3 }, 0, 10, 1e-12)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if !floats.AbsEqual(root, 1.5, 1e-9) {
		t.Errorf("root = %v, want 1.5", root)
	}
}

func TestBisectEndpoints(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 5, 1e-9); err != nil || r != 0 {
		t.Errorf("root at lo endpoint: got %v, %v", r, err)
	}
	if r, err := Bisect(f, -5, 0, 1e-9); err != nil || r != 0 {
		t.Errorf("root at hi endpoint: got %v, %v", r, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisectNonSmooth(t *testing.T) {
	// Piecewise function with a kink, like a clamped supply curve.
	f := func(x float64) float64 {
		if x < 2 {
			return -1
		}
		return x - 2
	}
	root, err := Bisect(func(x float64) float64 { return f(x) }, 0, 10, 1e-9)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if !floats.AbsEqual(root, 2, 1e-6) {
		t.Errorf("root = %v, want ~2", root)
	}
}

func TestBisectMin(t *testing.T) {
	g := func(x float64) float64 { return x - 4 }
	x, ok := BisectMin(g, 0, 10, 1e-10)
	if !ok || !floats.AbsEqual(x, 4, 1e-6) {
		t.Errorf("BisectMin = %v, %v; want ~4, true", x, ok)
	}
}

func TestBisectMinInfeasible(t *testing.T) {
	g := func(x float64) float64 { return x - 100 }
	x, ok := BisectMin(g, 0, 10, 1e-10)
	if ok || x != 10 {
		t.Errorf("BisectMin infeasible = %v, %v; want 10, false", x, ok)
	}
}

func TestBisectMinAlreadyFeasible(t *testing.T) {
	g := func(x float64) float64 { return x + 1 }
	x, ok := BisectMin(g, 0.5, 10, 1e-10)
	if !ok || x != 0.5 {
		t.Errorf("BisectMin = %v, %v; want 0.5, true", x, ok)
	}
}

// Property: BisectMin returns the minimal feasible point of a monotone
// step threshold, to within tolerance.
func TestBisectMinMinimality(t *testing.T) {
	prop := func(rawThresh float64) bool {
		thresh := math.Mod(math.Abs(rawThresh), 9) + 0.5 // in (0.5, 9.5)
		g := func(x float64) float64 { return x - thresh }
		x, ok := BisectMin(g, 0, 10, 1e-9)
		if !ok {
			return false
		}
		return g(x) >= 0 && g(x-1e-6) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGoldenMax(t *testing.T) {
	// f(x) = -(x-3)^2 has max at 3.
	x := GoldenMax(func(x float64) float64 { return -(x - 3) * (x - 3) }, 0, 10, 1e-9)
	if !floats.AbsEqual(x, 3, 1e-6) {
		t.Errorf("GoldenMax = %v, want 3", x)
	}
}

func TestGoldenMaxBoundary(t *testing.T) {
	// Monotone increasing: argmax at hi.
	x := GoldenMax(func(x float64) float64 { return x }, 0, 5, 1e-9)
	if !floats.AbsEqual(x, 5, 1e-5) {
		t.Errorf("GoldenMax monotone = %v, want 5", x)
	}
	// Monotone decreasing: argmax at lo.
	x = GoldenMax(func(x float64) float64 { return -x }, 0, 5, 1e-9)
	if !floats.AbsEqual(x, 0, 1e-5) {
		t.Errorf("GoldenMax decreasing = %v, want 0", x)
	}
}

func quadProblem(n int, target float64) ProjectedGradientProblem {
	coeff := make([]float64, n)
	upper := make([]float64, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		coeff[i] = 1
		upper[i] = 10
		w[i] = float64(i%5 + 1) // varying curvature weights
	}
	return ProjectedGradientProblem{
		N:      n,
		Cost:   func(m int, x float64) float64 { return w[m] * x * x },
		Grad:   func(m int, x float64) float64 { return 2 * w[m] * x },
		Coeff:  coeff,
		Upper:  upper,
		Target: target,
	}
}

func TestDualBisectionQuadratic(t *testing.T) {
	// minimize Σ w_m x² s.t. Σ x = T → x_m ∝ 1/w_m.
	p := quadProblem(5, 10)
	res := DualBisection(p, 1e-10)
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	supply := 0.0
	for _, x := range res.X {
		supply += x
	}
	if !floats.AbsEqual(supply, 10, 1e-4) {
		t.Errorf("supply = %v, want 10", supply)
	}
	// KKT: 2 w_m x_m equal across interior coordinates.
	ref := 2 * 1.0 * res.X[0]
	for m, x := range res.X {
		w := float64(m%5 + 1)
		if x > 1e-9 && x < 10-1e-9 {
			if !floats.AbsEqual(2*w*x, ref, 1e-3) {
				t.Errorf("KKT violated at %d: %v vs %v", m, 2*w*x, ref)
			}
		}
	}
}

func TestProjectedGradientMatchesDual(t *testing.T) {
	p := quadProblem(8, 20)
	pg := SolveProjectedGradient(p, 20000, 1e-9)
	db := DualBisection(p, 1e-10)
	if !pg.Feasible || !db.Feasible {
		t.Fatalf("feasibility: pg=%v db=%v", pg.Feasible, db.Feasible)
	}
	if pg.Objective < db.Objective-1e-6 {
		t.Errorf("projected gradient beat the dual optimum: %v < %v", pg.Objective, db.Objective)
	}
	if (pg.Objective-db.Objective)/db.Objective > 0.02 {
		t.Errorf("projected gradient too far from optimum: %v vs %v", pg.Objective, db.Objective)
	}
}

func TestDualBisectionInfeasible(t *testing.T) {
	p := quadProblem(3, 1e6)
	res := DualBisection(p, 1e-9)
	if res.Feasible {
		t.Error("expected infeasible")
	}
	// Should saturate all variables.
	for m, x := range res.X {
		if !floats.AbsEqual(x, 10, 1e-6) {
			t.Errorf("x[%d] = %v, want saturated 10", m, x)
		}
	}
}

// Property: for random targets within reach, DualBisection meets the target
// and respects bounds.
func TestDualBisectionProperty(t *testing.T) {
	prop := func(seed uint8) bool {
		target := 1 + float64(seed%40) // max reachable = 50
		p := quadProblem(5, target)
		res := DualBisection(p, 1e-10)
		if !res.Feasible {
			return false
		}
		supply := 0.0
		for _, x := range res.X {
			if x < -1e-12 || x > 10+1e-9 {
				return false
			}
			supply += x
		}
		return supply >= target-1e-4
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3*x[i] + 7
	}
	slope, intercept := LinearFit(x, y)
	if !floats.AbsEqual(slope, 3, 1e-9) || !floats.AbsEqual(intercept, 7, 1e-9) {
		t.Errorf("fit = %v, %v; want 3, 7", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	slope, intercept := LinearFit(nil, nil)
	if slope != 0 || intercept != 0 {
		t.Errorf("empty fit = %v, %v", slope, intercept)
	}
	// All x equal: slope undefined, returns mean as intercept.
	slope, intercept = LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if slope != 0 || !floats.AbsEqual(intercept, 2, 1e-9) {
		t.Errorf("degenerate fit = %v, %v; want 0, 2", slope, intercept)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
