// Package solver provides the small numerical toolbox used across the MPR
// reproduction: scalar root finding and minimization, projected gradient
// descent for the OPT baseline, and linear least squares for the logarithmic
// cost-model fit.
//
// Everything here is deterministic and allocation-light; these routines sit
// on the hot path of market clearing and of the OPT baseline, so they are
// written to be called millions of times inside the simulator.
package solver

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by Bisect when the supplied interval does not
// bracket a sign change of f.
var ErrNoBracket = errors.New("solver: interval does not bracket a root")

// ErrMaxIter is returned when an iterative method exhausts its iteration
// budget before reaching the requested tolerance.
var ErrMaxIter = errors.New("solver: maximum iterations exceeded")

// DefaultTol is the tolerance used by callers that do not have a more
// specific accuracy requirement.
const DefaultTol = 1e-9

// Bisect finds x in [lo, hi] such that f(x) == 0 to within tol, assuming
// f(lo) and f(hi) have opposite signs. It is robust to non-smooth but
// monotone f, which is exactly the shape of the market excess-supply
// function (piecewise smooth because of the [·]+ clamp in the supply
// function).
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if flo*fhi > 0 {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if hi-lo < tol {
			return mid, nil
		}
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if fm*flo < 0 {
			hi = mid
		} else {
			lo, flo = mid, fm
		}
	}
	return 0.5 * (lo + hi), ErrMaxIter
}

// BisectMin finds the smallest x in [lo, hi] with g(x) >= 0, assuming g is
// non-decreasing. If g(hi) < 0 it returns hi and false. This is the form of
// the market-clearing search: g is (power supplied at price x) − target,
// and we want the minimal feasible price.
func BisectMin(g func(float64) float64, lo, hi, tol float64) (float64, bool) {
	if g(hi) < 0 {
		return hi, false
	}
	if g(lo) >= 0 {
		return lo, true
	}
	for hi-lo > tol {
		mid := 0.5 * (lo + hi)
		if g(mid) >= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// GoldenMax maximizes a unimodal function f on [lo, hi] using golden-section
// search and returns the argmax. Used by bidding agents to maximize their
// net gain G(δ) = q·δ − C(δ), which is concave in δ for convex costs.
func GoldenMax(f func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949 // (√5 − 1) / 2
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			a = x1
			x1, f1 = x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		} else {
			b = x2
			x2, f2 = x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		}
	}
	return 0.5 * (a + b)
}

// ProjectedGradientProblem describes the separable constrained minimization
// solved by the OPT baseline:
//
//	minimize   Σ_m cost_m(x_m)
//	subject to Σ_m k_m·x_m ≥ target,  0 ≤ x_m ≤ up_m.
//
// Cost and Grad evaluate the m-th objective term and its derivative.
type ProjectedGradientProblem struct {
	N      int
	Cost   func(m int, x float64) float64
	Grad   func(m int, x float64) float64
	Coeff  []float64 // k_m: power reduction per unit of x_m
	Upper  []float64 // up_m: per-variable upper bound
	Target float64   // required Σ k_m x_m
}

// ProjectedGradientResult carries the solution and solver diagnostics.
type ProjectedGradientResult struct {
	X          []float64
	Objective  float64
	Iterations int
	Feasible   bool
}

// SolveProjectedGradient runs projected gradient descent with a penalty on
// constraint violation. It is intentionally a *generic* NLP method — the
// paper's OPT baseline is solved by a general solver whose run time grows
// quickly with the number of jobs, and this reproduces that behaviour. The
// fast KKT path (DualBisection) exists for verification.
func SolveProjectedGradient(p ProjectedGradientProblem, maxIter int, tol float64) ProjectedGradientResult {
	x := make([]float64, p.N)
	grad := make([]float64, p.N)
	// Start at the upper bounds scaled to just satisfy the constraint, if
	// possible; otherwise start at the bounds.
	total := 0.0
	for m := 0; m < p.N; m++ {
		total += p.Coeff[m] * p.Upper[m]
	}
	scale := 1.0
	if total > 0 && p.Target < total {
		scale = p.Target / total
	}
	for m := 0; m < p.N; m++ {
		x[m] = scale * p.Upper[m]
	}

	// Dual ascent on the inequality multiplier λ with projected primal
	// steps. For convex separable costs this converges to the KKT point.
	// The constraint is normalized by the mean coefficient so the dual
	// step size is insensitive to the physical units of Coeff (cores vs
	// watts).
	kbar := 0.0
	for m := 0; m < p.N; m++ {
		kbar += p.Coeff[m]
	}
	kbar /= float64(p.N)
	if kbar <= 0 {
		kbar = 1
	}
	lambda := 0.0 // multiplier for the normalized constraint
	step := 0.02
	dualStep := 0.5 / float64(p.N)
	var it int
	for it = 0; it < maxIter; it++ {
		supply := 0.0
		for m := 0; m < p.N; m++ {
			supply += p.Coeff[m] * x[m]
		}
		short := (p.Target - supply) / kbar
		moved := 0.0
		for m := 0; m < p.N; m++ {
			grad[m] = p.Grad(m, x[m]) - lambda*p.Coeff[m]/kbar
		}
		for m := 0; m < p.N; m++ {
			nx := x[m] - step*grad[m]
			if nx < 0 {
				nx = 0
			}
			if nx > p.Upper[m] {
				nx = p.Upper[m]
			}
			moved += math.Abs(nx - x[m])
			x[m] = nx
		}
		lambda += dualStep * short
		if lambda < 0 {
			lambda = 0
		}
		if moved < tol && math.Abs(short) <= 1e-6 {
			break
		}
	}

	// Feasibility restoration: dual ascent hovers around the constraint;
	// if it stopped on the infeasible side, scale the solution up
	// (respecting the box) until the target is met or the box saturates.
	for pass := 0; pass < 50; pass++ {
		supply := 0.0
		headroomSupply := 0.0
		for m := 0; m < p.N; m++ {
			supply += p.Coeff[m] * x[m]
			headroomSupply += p.Coeff[m] * (p.Upper[m] - x[m])
		}
		short := p.Target - supply
		if short <= 0 || headroomSupply <= 1e-12 {
			break
		}
		frac := short / headroomSupply
		if frac > 1 {
			frac = 1
		}
		for m := 0; m < p.N; m++ {
			x[m] += frac * (p.Upper[m] - x[m])
		}
	}

	obj := 0.0
	supply := 0.0
	for m := 0; m < p.N; m++ {
		obj += p.Cost(m, x[m])
		supply += p.Coeff[m] * x[m]
	}
	return ProjectedGradientResult{
		X:          x,
		Objective:  obj,
		Iterations: it,
		Feasible:   supply >= p.Target-1e-6,
	}
}

// DualBisection solves the same separable problem via its KKT conditions:
// at the optimum, grad_m(x_m) = λ·k_m (clamped to the box), and λ is found
// by bisection on the aggregate constraint. Requires each cost term to be
// convex with a non-decreasing derivative. This is the fast verification
// path for OPT.
func DualBisection(p ProjectedGradientProblem, tol float64) ProjectedGradientResult {
	// x_m(λ): smallest x in [0, up] with grad(x) >= λ·k  → grad is
	// non-decreasing, so bisect per coordinate.
	xOf := func(m int, lam float64) float64 {
		target := lam * p.Coeff[m]
		lo, hi := 0.0, p.Upper[m]
		if p.Grad(m, hi) <= target {
			return hi
		}
		if p.Grad(m, lo) >= target {
			return lo
		}
		for hi-lo > tol {
			mid := 0.5 * (lo + hi)
			if p.Grad(m, mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		return 0.5 * (lo + hi)
	}
	supplyAt := func(lam float64) float64 {
		s := 0.0
		for m := 0; m < p.N; m++ {
			s += p.Coeff[m] * xOf(m, lam)
		}
		return s
	}
	// Find λ bracket: supply is non-decreasing in λ.
	lo, hi := 0.0, 1.0
	for supplyAt(hi) < p.Target && hi < 1e12 {
		hi *= 2
	}
	feasible := supplyAt(hi) >= p.Target-1e-9
	lam := hi
	if feasible {
		for hi-lo > tol {
			mid := 0.5 * (lo + hi)
			if supplyAt(mid) >= p.Target {
				hi = mid
			} else {
				lo = mid
			}
		}
		lam = hi
	}
	x := make([]float64, p.N)
	obj, supply := 0.0, 0.0
	for m := 0; m < p.N; m++ {
		x[m] = xOf(m, lam)
		obj += p.Cost(m, x[m])
		supply += p.Coeff[m] * x[m]
	}
	return ProjectedGradientResult{X: x, Objective: obj, Iterations: 0, Feasible: supply >= p.Target-1e-6}
}

// LinearFit performs ordinary least squares of y on x, returning slope and
// intercept. Used by the logarithmic cost-model fit, which is linear in
// (log x).
func LinearFit(x, y []float64) (slope, intercept float64) {
	n := float64(len(x))
	if n == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
