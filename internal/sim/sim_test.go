package sim

import (
	"testing"

	"mpr/internal/check/floats"
	"mpr/internal/perf"
	"mpr/internal/power"
	"mpr/internal/trace"
)

func testTrace(t testing.TB, seed int64) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.GenConfig{
		Name: "test", Seed: seed, TotalCores: 256, Days: 7,
		JobCount: 1500, MeanUtil: 0.72, MaxJobFrac: 0.25,
		UtilSigma: 0.006, Revert: 0.004, DiurnalAmp: 0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runAlgo(t testing.TB, tr *trace.Trace, algo Algorithm, oversub float64) *Result {
	t.Helper()
	res, err := Run(Config{
		Trace:      tr,
		OversubPct: oversub,
		Algorithm:  algo,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunCompletesAllJobs(t *testing.T) {
	tr := testTrace(t, 1)
	for _, algo := range append(Algorithms(), AlgNone) {
		res := runAlgo(t, tr, algo, 15)
		if res.JobsCompleted != res.JobsTotal {
			t.Errorf("%s: completed %d of %d jobs", algo, res.JobsCompleted, res.JobsTotal)
		}
		if res.JobsTotal != len(tr.Jobs) {
			t.Errorf("%s: simulated %d jobs, trace has %d", algo, res.JobsTotal, len(tr.Jobs))
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := testTrace(t, 2)
	a := runAlgo(t, tr, AlgMPRStat, 15)
	b := runAlgo(t, tr, AlgMPRStat, 15)
	if a.CostCoreH != b.CostCoreH || a.PaymentCoreH != b.PaymentCoreH ||
		a.EmergencyCount != b.EmergencyCount || a.OverloadSlots != b.OverloadSlots {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestOverloadsOccurAndAreHandled(t *testing.T) {
	tr := testTrace(t, 3)
	none := runAlgo(t, tr, AlgNone, 15)
	if none.EmergencyCount == 0 {
		t.Fatal("test trace produces no overloads at 15% — cannot exercise handling")
	}
	handled := runAlgo(t, tr, AlgMPRStat, 15)
	if handled.OverloadSlots >= none.OverloadSlots {
		t.Errorf("handling did not reduce overload time: %d vs %d", handled.OverloadSlots, none.OverloadSlots)
	}
	if handled.ReductionCoreH <= 0 {
		t.Error("no resource reduction recorded")
	}
	if handled.EmergencySlots < handled.EmergencyCount {
		t.Error("emergency slots below emergency count")
	}
}

// The paper's central market result: users are always paid more than their
// cost (Fig. 11(a)).
func TestUsersProfitFromParticipation(t *testing.T) {
	tr := testTrace(t, 4)
	for _, algo := range []Algorithm{AlgMPRStat, AlgMPRInt} {
		res := runAlgo(t, tr, algo, 15)
		if res.CostCoreH <= 0 {
			t.Fatalf("%s: no cost accrued — no overloads handled?", algo)
		}
		if res.RewardPercent() <= 100 {
			t.Errorf("%s: reward = %.1f%% of cost, want > 100%%", algo, res.RewardPercent())
		}
	}
}

// Cost ordering of Fig. 9(a): EQL ≥ MPR-INT ≈ OPT, averaged across seeds —
// individual short traces are noisy because each algorithm's reductions
// change the subsequent emergency dynamics.
func TestCostOrdering(t *testing.T) {
	sums := map[Algorithm]float64{}
	for _, seed := range []int64{5, 55, 555} {
		tr := testTrace(t, seed)
		for _, algo := range Algorithms() {
			sums[algo] += runAlgo(t, tr, algo, 15).CostCoreH
		}
	}
	if sums[AlgOPT] <= 0 {
		t.Fatal("no overloads — ordering test vacuous")
	}
	if sums[AlgEQL] < sums[AlgMPRInt] {
		t.Errorf("EQL cost %v below MPR-INT %v", sums[AlgEQL], sums[AlgMPRInt])
	}
	if sums[AlgEQL] < sums[AlgOPT] {
		t.Errorf("EQL cost %v below OPT %v", sums[AlgEQL], sums[AlgOPT])
	}
	if ratio := sums[AlgMPRInt] / sums[AlgOPT]; ratio < 0.7 || ratio > 1.6 {
		t.Errorf("MPR-INT/OPT cost ratio %.3f outside [0.7, 1.6]", ratio)
	}
	if ratio := sums[AlgMPRStat] / sums[AlgOPT]; ratio < 0.7 || ratio > 2.5 {
		t.Errorf("MPR-STAT/OPT cost ratio %.3f outside [0.7, 2.5]", ratio)
	}
}

// The manager's gain is orders of magnitude larger than the payout
// (Fig. 11(b)).
func TestManagerGainDominatesPayout(t *testing.T) {
	tr := testTrace(t, 6)
	res := runAlgo(t, tr, AlgMPRStat, 15)
	if res.PaymentCoreH <= 0 {
		t.Fatal("no payments")
	}
	if res.GainRatio() < 10 {
		t.Errorf("gain ratio %.1f, want >= 10", res.GainRatio())
	}
}

// More oversubscription → more overloads, more affected jobs, more cost
// (Fig. 8).
func TestMonotoneInOversubscription(t *testing.T) {
	tr := testTrace(t, 7)
	prev := runAlgo(t, tr, AlgMPRStat, 5)
	for _, x := range []float64{10, 15, 20} {
		cur := runAlgo(t, tr, AlgMPRStat, x)
		if cur.EmergencySlots < prev.EmergencySlots {
			t.Errorf("emergency slots decreased at %v%%: %d < %d", x, cur.EmergencySlots, prev.EmergencySlots)
		}
		if cur.CostCoreH < prev.CostCoreH*0.8 {
			t.Errorf("cost decreased at %v%%: %v < %v", x, cur.CostCoreH, prev.CostCoreH)
		}
		prev = cur
	}
}

// Lower participation concentrates the reduction on fewer jobs and raises
// cost and payments (Fig. 12).
func TestParticipationSensitivity(t *testing.T) {
	tr := testTrace(t, 8)
	full, err := Run(Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7, Participation: 1})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Run(Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7, Participation: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if full.CostCoreH <= 0 || half.CostCoreH <= 0 {
		t.Fatal("no costs accrued")
	}
	if half.CostCoreH < full.CostCoreH {
		t.Errorf("half participation cost %v below full %v", half.CostCoreH, full.CostCoreH)
	}
}

// Underestimating the bidding cost still leaves users with net rewards
// (Fig. 13(b)).
func TestUnderestimationKeepsNetGain(t *testing.T) {
	tr := testTrace(t, 9)
	res, err := Run(Config{
		Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7,
		CostErrorUnder: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostCoreH <= 0 {
		t.Fatal("no costs")
	}
	if res.RewardPercent() <= 100 {
		t.Errorf("reward %.1f%% with 30%% underestimation, want > 100%%", res.RewardPercent())
	}
}

func TestRandomCostErrorTolerated(t *testing.T) {
	tr := testTrace(t, 10)
	clean, err := Run(Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Run(Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7, CostErrorRand: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if clean.CostCoreH <= 0 {
		t.Fatal("no costs")
	}
	if ratio := noisy.CostCoreH / clean.CostCoreH; ratio > 1.35 || ratio < 0.7 {
		t.Errorf("random error changed cost by %.2fx, want roughly unchanged", ratio)
	}
}

func TestRecordSeries(t *testing.T) {
	tr := testTrace(t, 11)
	res, err := Run(Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 7, RecordSeries: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.DemandSeries == nil || res.DeliveredSeries == nil {
		t.Fatal("series not recorded")
	}
	if res.DemandSeries.Len() == 0 || res.DemandSeries.Len() > 120 {
		t.Errorf("demand series len = %d", res.DemandSeries.Len())
	}
	// Delivered never exceeds demand.
	if res.DeliveredSeries.Max() > res.DemandSeries.Max()+1e-6 {
		t.Errorf("delivered max %v exceeds demand max %v", res.DeliveredSeries.Max(), res.DemandSeries.Max())
	}
}

func TestPerProfileAccounting(t *testing.T) {
	tr := testTrace(t, 12)
	res := runAlgo(t, tr, AlgMPRInt, 15)
	var sumRed, sumCost float64
	var sumJobs int
	for _, ps := range res.PerProfile {
		sumRed += ps.ReductionCoreH
		sumCost += ps.CostCoreH
		sumJobs += ps.Jobs
	}
	if sumJobs != res.JobsTotal {
		t.Errorf("profile job sum %d != total %d", sumJobs, res.JobsTotal)
	}
	if !floats.AbsEqual(sumRed, res.ReductionCoreH, 1e-6) {
		t.Errorf("profile reduction sum %v != total %v", sumRed, res.ReductionCoreH)
	}
	if !floats.AbsEqual(sumCost, res.CostCoreH, 1e-6) {
		t.Errorf("profile cost sum %v != total %v", sumCost, res.CostCoreH)
	}
	// Insensitive apps give up more than sensitive ones under MPR-INT
	// (Fig. 9(c)).
	rs, moc := res.PerProfile["RSBench"], res.PerProfile["SimpleMOC"]
	if rs == nil || moc == nil {
		t.Fatal("profiles missing")
	}
	if rs.ReductionCoreH <= moc.ReductionCoreH {
		t.Errorf("RSBench reduction %v should exceed SimpleMOC %v", rs.ReductionCoreH, moc.ReductionCoreH)
	}
}

func TestRuntimeIncreaseSmall(t *testing.T) {
	tr := testTrace(t, 13)
	res := runAlgo(t, tr, AlgMPRInt, 15)
	if res.JobsAffected == 0 {
		t.Fatal("no affected jobs")
	}
	// Fig. 9(b): average runtime increase below a few percent.
	if res.MeanRuntimeIncrease < 0 || res.MeanRuntimeIncrease > 0.10 {
		t.Errorf("mean runtime increase = %.3f, want small and non-negative", res.MeanRuntimeIncrease)
	}
}

func TestGPUHeterogeneousRun(t *testing.T) {
	tr := testTrace(t, 14)
	appPower := map[string]power.CoreModel{}
	for _, p := range perf.GPUProfiles() {
		appPower[p.Name] = power.DefaultGPUCoreModel
	}
	res, err := Run(Config{
		Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7,
		Profiles:  perf.GPUProfiles(),
		CoreModel: power.DefaultGPUCoreModel,
		AppPower:  appPower,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != res.JobsTotal {
		t.Errorf("GPU run incomplete: %d/%d", res.JobsCompleted, res.JobsTotal)
	}
	if res.CostCoreH <= 0 {
		t.Error("GPU run accrued no cost")
	}
}

func TestConfigValidation(t *testing.T) {
	tr := testTrace(t, 15)
	bad := []Config{
		{},
		{Trace: tr, OversubPct: -1},
		{Trace: tr, Algorithm: "bogus"},
		{Trace: tr, Participation: 2},
		{Trace: tr, StatBidFactor: -1},
		{Trace: tr, CostErrorRand: 1.5},
		{Trace: tr, CostErrorUnder: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestAlgorithmsList(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 4 || algos[0] != AlgOPT || algos[3] != AlgMPRInt {
		t.Errorf("algorithms = %v", algos)
	}
}
