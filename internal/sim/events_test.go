package sim

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mpr/internal/telemetry/tsdb"
	"mpr/internal/trace"
)

// sameEngineResult asserts the deterministic surfaces of two Results are
// bit-identical — the in-package smoke version of the exhaustive engine
// differential in internal/check.
func sameEngineResult(t *testing.T, slot, event *Result) {
	t.Helper()
	type pin struct {
		name string
		a, b any
	}
	pins := []pin{
		{"Slots", slot.Slots, event.Slots},
		{"OverloadSlots", slot.OverloadSlots, event.OverloadSlots},
		{"EmergencyCount", slot.EmergencyCount, event.EmergencyCount},
		{"EmergencySlots", slot.EmergencySlots, event.EmergencySlots},
		{"InfeasibleEvents", slot.InfeasibleEvents, event.InfeasibleEvents},
		{"JobsCompleted", slot.JobsCompleted, event.JobsCompleted},
		{"JobsAffected", slot.JobsAffected, event.JobsAffected},
		{"ReductionCoreH", slot.ReductionCoreH, event.ReductionCoreH},
		{"CostCoreH", slot.CostCoreH, event.CostCoreH},
		{"PaymentCoreH", slot.PaymentCoreH, event.PaymentCoreH},
		{"ExtraCapacityCoreH", slot.ExtraCapacityCoreH, event.ExtraCapacityCoreH},
		{"UsedExtraCoreH", slot.UsedExtraCoreH, event.UsedExtraCoreH},
		{"MeanRuntimeIncrease", slot.MeanRuntimeIncrease, event.MeanRuntimeIncrease},
		{"MeanQueueWaitMin", slot.MeanQueueWaitMin, event.MeanQueueWaitMin},
		{"MarketInvocations", slot.MarketInvocations, event.MarketInvocations},
		{"MeanRounds", slot.MeanRounds, event.MeanRounds},
		{"MeanClearingPrice", slot.MeanClearingPrice, event.MeanClearingPrice},
		{"CapacityW", slot.CapacityW, event.CapacityW},
		{"PeakW", slot.PeakW, event.PeakW},
	}
	for _, p := range pins {
		if p.a != p.b {
			t.Errorf("%s: slot engine %v vs event engine %v", p.name, p.a, p.b)
		}
	}
	if !reflect.DeepEqual(slot.PerProfile, event.PerProfile) {
		t.Errorf("PerProfile diverged: %+v vs %+v", slot.PerProfile, event.PerProfile)
	}
	if !reflect.DeepEqual(slot.Jobs, event.Jobs) {
		for i := range slot.Jobs {
			if i < len(event.Jobs) && slot.Jobs[i] != event.Jobs[i] {
				t.Errorf("job %d diverged: %+v vs %+v", slot.Jobs[i].ID, slot.Jobs[i], event.Jobs[i])
				return
			}
		}
		t.Errorf("Jobs diverged (lengths %d vs %d)", len(slot.Jobs), len(event.Jobs))
	}
}

func runEngine(t *testing.T, cfg Config, engine Engine) *Result {
	t.Helper()
	cfg.Engine = engine
	cfg.RecordJobs = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("engine %s: %v", engine, err)
	}
	return res
}

// TestEngineEventMatchesSlot pins the event core against the fixed-step
// core over the regimes that exercise every event kind: markets with and
// without delay, backfill, predictive admission, power phases, and the
// no-algorithm baseline.
func TestEngineEventMatchesSlot(t *testing.T) {
	tr := testTrace(t, 3)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"mpr-stat", Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 7}},
		{"mpr-int", Config{Trace: tr, OversubPct: 12, Algorithm: AlgMPRInt, Seed: 11}},
		{"none", Config{Trace: tr, OversubPct: 15, Algorithm: AlgNone, Seed: 7}},
		{"eql", Config{Trace: tr, OversubPct: 18, Algorithm: AlgEQL, Seed: 5}},
		{"delay-backfill", Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 7,
			MarketDelaySlots: 3, Backfill: true}},
		{"predictive", Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 7,
			Predictive: true, MarketDelaySlots: 2}},
		{"phases", Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 7,
			PhaseAmp: 0.1, PhasePeriodSlots: 45}},
		{"participation", Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 9,
			Participation: 0.6, StatBidFactor: 1.4, CostErrorRand: 0.2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := runEngine(t, tc.cfg, EngineSlot)
			b := runEngine(t, tc.cfg, EngineEvent)
			sameEngineResult(t, a, b)
		})
	}
}

// TestSeriesAcrossEngines is the sampler/slot-coupling regression: with
// per-slot sampling on, both engines must emit bit-identical series —
// same virtual-slot timestamps, same values, byte-identical JSONL
// export — and identical downsampled power timelines.
func TestSeriesAcrossEngines(t *testing.T) {
	tr := testTrace(t, 5)
	cfg := Config{
		Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 7,
		SampleSeries: true, SeriesCapacity: 512, RecordSeries: 400,
	}
	a := runEngine(t, cfg, EngineSlot)
	b := runEngine(t, cfg, EngineEvent)
	var ja, jb bytes.Buffer
	if err := tsdb.WriteJSONL(&ja, a.Series.Query(tsdb.Query{Resolution: tsdb.ResRaw})); err != nil {
		t.Fatal(err)
	}
	if err := tsdb.WriteJSONL(&jb, b.Series.Query(tsdb.Query{Resolution: tsdb.ResRaw})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatalf("sampled series diverged across engines (%d vs %d bytes)", ja.Len(), jb.Len())
	}
	if !reflect.DeepEqual(a.DemandSeries, b.DemandSeries) || !reflect.DeepEqual(a.DeliveredSeries, b.DeliveredSeries) {
		t.Fatal("recorded power series diverged across engines")
	}
	sameEngineResult(t, a, b)
}

// TestSkipProgressMatchesIterated is the floating-point contract behind
// bulk skipping: skipProgress must reproduce k iterated unit decrements
// bit for bit, and finishSteps must land on the same slot at which the
// iterated loop first crosses the finish threshold.
func TestSkipProgressMatchesIterated(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200000; i++ {
		var r float64
		switch i % 4 {
		case 0:
			r = rng.Float64() * 1e5
		case 1:
			r = rng.Float64() * 10
		case 2:
			r = float64(rng.Intn(10000)) / 60 // trace-shaped: seconds/60
		default:
			r = float64(rng.Intn(5)) + rng.Float64()*1e-9
		}
		k := rng.Intn(2000)
		it := r
		for s := 0; s < k; s++ {
			it -= 1.0
		}
		if got := skipProgress(r, k); got != it {
			t.Fatalf("skipProgress(%v, %d) = %v, iterated %v", r, k, got, it)
		}
		// finishSteps vs the slot loop: decrement until ≤ threshold.
		steps := 0
		for v := r; v > 1e-9 && steps < 1<<20; steps++ {
			v -= 1.0
		}
		if got := finishSteps(r); got != steps {
			t.Fatalf("finishSteps(%v) = %d, iterated %d", r, got, steps)
		}
	}
}

// TestEventOrderDeterministic pins the heap's tie-break contract:
// same-slot events pop in the fixed (kind, job) priority order no
// matter the insertion order.
func TestEventOrderDeterministic(t *testing.T) {
	base := []event{
		{slot: 5, kind: evArrival, job: 2},
		{slot: 5, kind: evArrival, job: 9},
		{slot: 5, kind: evFinish, job: 1},
		{slot: 5, kind: evFinish, job: 7},
		{slot: 5, kind: evMarket, job: -1},
		{slot: 5, kind: evControl, job: -1},
		{slot: 5, kind: evForecast, job: -1},
		{slot: 5, kind: evSampler, job: -1},
		{slot: 3, kind: evFinish, job: 2},
		{slot: 7, kind: evArrival, job: 1},
	}
	want := []event{
		{slot: 3, kind: evFinish, job: 2},
		{slot: 5, kind: evArrival, job: 2},
		{slot: 5, kind: evArrival, job: 9},
		{slot: 5, kind: evFinish, job: 1},
		{slot: 5, kind: evFinish, job: 7},
		{slot: 5, kind: evMarket, job: -1},
		{slot: 5, kind: evControl, job: -1},
		{slot: 5, kind: evForecast, job: -1},
		{slot: 5, kind: evSampler, job: -1},
		{slot: 7, kind: evArrival, job: 1},
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		order := rng.Perm(len(base))
		h := newEventHeap(len(base))
		for _, i := range order {
			h.schedule(base[i].kind, base[i].job, base[i].slot)
		}
		for i := range want {
			got := h.pop()
			if got.slot != want[i].slot || got.kind != want[i].kind || got.job != want[i].job {
				t.Fatalf("trial %d (order %v): pop %d = {slot %d kind %d job %d}, want {slot %d kind %d job %d}",
					trial, order, i, got.slot, got.kind, got.job, want[i].slot, want[i].kind, want[i].job)
			}
		}
		if !h.empty() {
			t.Fatalf("trial %d: heap not drained", trial)
		}
	}
}

// TestEventHeapReschedule pins the indexed upsert: re-scheduling a keyed
// event moves it instead of duplicating it, in both directions.
func TestEventHeapReschedule(t *testing.T) {
	h := newEventHeap(4)
	h.schedule(evFinish, 1, 100)
	h.schedule(evFinish, 2, 50)
	h.schedule(evFinish, 1, 10) // move earlier
	if h.len() != 2 {
		t.Fatalf("len = %d after reschedule, want 2", h.len())
	}
	if e := h.pop(); e.job != 1 || e.slot != 10 {
		t.Fatalf("pop = %+v, want job 1 slot 10", e)
	}
	h.schedule(evFinish, 2, 500) // move later
	h.schedule(evFinish, 3, 70)
	if e := h.pop(); e.job != 3 || e.slot != 70 {
		t.Fatalf("pop = %+v, want job 3 slot 70", e)
	}
	if e := h.pop(); e.job != 2 || e.slot != 500 {
		t.Fatalf("pop = %+v, want job 2 slot 500", e)
	}
}

// TestEventHeapSteadyZeroAlloc gates the heap's steady state: once keys
// and capacity exist, schedule/pop cycles allocate nothing.
func TestEventHeapSteadyZeroAlloc(t *testing.T) {
	h := newEventHeap(64)
	for id := 0; id < 64; id++ {
		h.schedule(evFinish, id, 1000+id)
	}
	slot := 2000
	if allocs := testing.AllocsPerRun(1000, func() {
		e := h.pop()
		slot++
		h.schedule(e.kind, e.job, slot)
		h.schedule(evControl, -1, slot+1)
		e = h.pop()
		h.schedule(e.kind, e.job, slot+64)
	}); allocs != 0 {
		t.Fatalf("heap steady state allocates %v per cycle, want 0", allocs)
	}
}

// TestEventSkipSteadyZeroAlloc gates the event loop's skip path: with
// jobs running and the system quiescent, the quiescence check, finish
// re-projection, and bulk replay allocate nothing.
func TestEventSkipSteadyZeroAlloc(t *testing.T) {
	jobs := make([]trace.Job, 0, 16)
	for i := 0; i < 16; i++ {
		jobs = append(jobs, trace.Job{ID: i + 1, Cores: 4, Submit: 0, Runtime: 6000000})
	}
	cfg := Config{
		Trace:     &trace.Trace{Name: "steady", TotalCores: 256, Jobs: jobs},
		Algorithm: AlgNone,
		Seed:      1,
	}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	st, err := newEngineState(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.events = newEventHeap(len(st.jobs) + 8)
	if err := st.step(0); err != nil { // admit and start everything
		t.Fatal(err)
	}
	if len(st.active) != 16 {
		t.Fatalf("active = %d, want 16", len(st.active))
	}
	slot := 1
	if allocs := testing.AllocsPerRun(500, func() {
		if !st.canSkipFrom() {
			t.Fatal("expected quiescent state")
		}
		st.refreshFinishes(slot)
		st.skipTo(slot, slot+7)
		slot += 7
	}); allocs != 0 {
		t.Fatalf("skip path allocates %v per cycle, want 0", allocs)
	}
}

// sparseTrace builds the sparse long-horizon benchmark workload: bursts
// of overlapping jobs separated by long idle gaps, so the fixed-step
// core pays for every empty minute while the event core jumps between
// bursts. Bursts overlap enough to breach the oversubscribed capacity,
// so each one also exercises declare → clear → lift.
func sparseTrace(bursts, burstJobs, gapSlots int, runtimeMin int64) *trace.Trace {
	jobs := make([]trace.Job, 0, bursts*burstJobs)
	id := 1
	for b := 0; b < bursts; b++ {
		submit := int64(b) * int64(gapSlots) * 60
		for i := 0; i < burstJobs; i++ {
			jobs = append(jobs, trace.Job{ID: id, Cores: 16, Submit: submit, Runtime: runtimeMin * 60})
			id++
		}
	}
	return &trace.Trace{Name: "sparse", TotalCores: 256, Jobs: jobs}
}

// sparseConfig is the speedup benchmark's shape: few jobs (per-job
// setup — profile assignment, static-bid precomputation — is identical
// under both engines and must not drown the loops being compared) and
// very long idle gaps, so the horizon is ~9M slots while only ~120
// events ever fire.
func sparseConfig(engine Engine) Config {
	return Config{
		Trace:      sparseTrace(60, 2, 150000, 30),
		OversubPct: 15,
		Algorithm:  AlgMPRStat,
		Seed:       7,
		Engine:     engine,
	}
}

// TestEventEngineSpeedup is the CI wall-clock gate: on the sparse
// long-horizon workload (~1 burst per 4000 simulated slots) the event
// core must be at least 10× faster than the fixed-step core while
// producing the bit-identical result. Each engine is timed best-of-3 —
// the event run is ~25 ms, small enough that one scheduler hiccup on a
// loaded CI box shifts the ratio across the gate; the minimum is the
// stable estimate of what the code costs.
func TestEventEngineSpeedup(t *testing.T) {
	timeRun := func(engine Engine) (time.Duration, *Result) {
		cfg := sparseConfig(engine)
		cfg.RecordJobs = true
		var best time.Duration
		var res *Result
		for i := 0; i < 3; i++ {
			start := time.Now()
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); res == nil || d < best {
				best, res = d, r
			}
		}
		return best, res
	}
	// Warm both paths once (first-run page faults, lazy init).
	timeRun(EngineSlot)
	timeRun(EngineEvent)
	slotD, slotRes := timeRun(EngineSlot)
	eventD, eventRes := timeRun(EngineEvent)
	sameEngineResult(t, slotRes, eventRes)
	if slotRes.EmergencyCount == 0 {
		t.Fatal("sparse benchmark produced no emergencies — not exercising the market")
	}
	ratio := float64(slotD) / float64(eventD)
	t.Logf("sparse horizon %d slots: slot %v, event %v, speedup %.1f×",
		slotRes.Slots, slotD, eventD, ratio)
	if ratio < 10 {
		t.Fatalf("event engine speedup %.1f× below the 10× gate (slot %v, event %v)", ratio, slotD, eventD)
	}
}

// BenchmarkEngineSparse measures both cores on the sparse long-horizon
// workload (the BENCH_sweep.json engines section runs the same shape).
func BenchmarkEngineSparse(b *testing.B) {
	for _, engine := range Engines() {
		b.Run(string(engine), func(b *testing.B) {
			cfg := sparseConfig(engine)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineDense measures both cores on a busy trace (arrivals or
// finishes nearly every slot) — the event core's worst case, pinned here
// to stay within noise of the fixed-step core.
func BenchmarkEngineDense(b *testing.B) {
	tr, err := trace.Generate(trace.GenConfig{
		Name: "dense", Seed: 3, TotalCores: 256, Days: 7,
		JobCount: 1500, MeanUtil: 0.72, MaxJobFrac: 0.25,
		UtilSigma: 0.006, Revert: 0.004, DiurnalAmp: 0.08,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range Engines() {
		b.Run(string(engine), func(b *testing.B) {
			cfg := Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 7, Engine: engine}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
