package sim

import (
	"mpr/internal/stats"
	"mpr/internal/telemetry"
	"mpr/internal/telemetry/tsdb"
)

// ProfileStats aggregates market outcomes per application profile — the
// data behind Figs. 9(c)/9(d) and 15(c)/15(d).
type ProfileStats struct {
	Jobs           int
	ReductionCoreH float64
	CostCoreH      float64
	PaymentCoreH   float64
}

// JobOutcome is one job's recorded timeline (Config.RecordJobs): the
// per-job pinning surface of the engine differential in internal/check.
type JobOutcome struct {
	ID         int
	Cores      int
	SubmitSlot int
	StartSlot  int
	EndSlot    int
	Started    bool
	Done       bool
	Affected   bool
	// RemainingMin is the job's remaining work when the run ended (at or
	// below the finish threshold for completed jobs), recorded bit-exactly
	// so the differential pins per-slot progress arithmetic, not just
	// integer timelines.
	RemainingMin float64
}

// Result carries everything the evaluation figures need from one run.
type Result struct {
	Algorithm  Algorithm
	TraceName  string
	OversubPct float64

	// CapacityW is the oversubscribed capacity; PeakW the workload's
	// unreduced peak power.
	CapacityW float64
	PeakW     float64

	// Slots is the simulated duration in one-minute slots.
	Slots int
	// OverloadSlots counts slots where delivered power exceeded
	// capacity (Fig. 8(a)); OverloadMinutes is the same in minutes.
	OverloadSlots int
	// EmergencyCount is the number of declared emergencies and
	// EmergencySlots the total slots spent under an active emergency.
	EmergencyCount int
	EmergencySlots int
	// InfeasibleEvents counts emergencies the algorithm could not fully
	// supply (EQL on heterogeneous systems, Fig. 15(b)).
	InfeasibleEvents int

	// JobsTotal counts simulated jobs; JobsCompleted those that finished
	// within the horizon; JobsAffected those active during any emergency
	// (Fig. 8(c)).
	JobsTotal     int
	JobsCompleted int
	JobsAffected  int

	// ReductionCoreH is the total resource reduction (Fig. 8(d)),
	// CostCoreH the total user cost of performance loss (Fig. 9(a)),
	// PaymentCoreH the manager's total incentive payoff (Fig. 11), all
	// in core-hours.
	ReductionCoreH float64
	CostCoreH      float64
	PaymentCoreH   float64

	// ExtraCapacityCoreH is the core-hours of capacity oversubscription
	// added over the horizon; UsedExtraCoreH is how much of it the
	// workload actually consumed (the HPC manager's gain, Fig. 11(b)).
	ExtraCapacityCoreH float64
	UsedExtraCoreH     float64

	// MeanRuntimeIncrease is the average fractional runtime increase of
	// affected, completed jobs vs their trace runtime (Fig. 9(b)).
	MeanRuntimeIncrease float64
	// MeanQueueWaitMin is the average queuing delay in minutes beyond
	// the trace's submit time — emergencies halt admissions, so this is
	// the admission-side cost of overload handling.
	MeanQueueWaitMin float64

	// MarketInvocations counts market/algorithm solves; MeanRounds the
	// average interactive rounds per solve (1 for non-interactive).
	MarketInvocations int
	MeanRounds        float64
	// MeanClearingPrice averages the clearing price over market
	// invocations (market algorithms only).
	MeanClearingPrice float64

	// PerProfile aggregates per-application outcomes.
	PerProfile map[string]*ProfileStats

	// Jobs holds per-job timelines when Config.RecordJobs is set, in
	// trace order.
	Jobs []JobOutcome

	// DemandSeries and DeliveredSeries are downsampled power timelines
	// (watts) when Config.RecordSeries > 0.
	DemandSeries    *stats.Series
	DeliveredSeries *stats.Series

	// Series is the run's sampled time-series store when
	// Config.SampleSeries is set: per-slot power, overload, price,
	// reduction, and bidder series (names in sampler.go) queryable at
	// raw/10×/100× resolution and exportable as JSONL/CSV.
	Series *tsdb.Store

	// Spans are the run's completed hierarchical trace spans: each
	// emergency contains its market-invocation children (and, for
	// MPR-INT, per-round grandchildren with the bid fan-out).
	Spans []telemetry.Span

	// Telemetry is the run's metrics snapshot: market clears and price
	// searches, emergency transitions, the MPR-INT rounds-to-convergence
	// histogram, reduction latency, and overload depth (see the metric
	// name constants in sim, core, and power).
	Telemetry *telemetry.Snapshot
	// TraceEvents is the run's retained telemetry event window
	// (chronological): emergency declare/raise/lift, per-invocation
	// market clears, and MPR-INT per-round price trajectories. Capped by
	// Config.TraceEvents.
	TraceEvents []telemetry.Event
}

// RewardPercent returns the users' reward as a percentage of their cost
// (Fig. 11(a)); >100 means users profit from participating.
func (r *Result) RewardPercent() float64 {
	if r.CostCoreH <= 0 {
		return 0
	}
	return 100 * r.PaymentCoreH / r.CostCoreH
}

// GainRatio returns the manager's gained capacity per core-hour of
// incentive payoff (Fig. 11(b)): the core-hours oversubscription added,
// divided by what was paid back to users.
func (r *Result) GainRatio() float64 {
	if r.PaymentCoreH <= 0 {
		return 0
	}
	return r.ExtraCapacityCoreH / r.PaymentCoreH
}

// OverloadFraction is the fraction of time spent overloaded (Fig. 8(a)).
func (r *Result) OverloadFraction() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.OverloadSlots) / float64(r.Slots)
}

// AffectedFraction is the fraction of jobs affected by overloads
// (Fig. 8(c)).
func (r *Result) AffectedFraction() float64 {
	if r.JobsTotal == 0 {
		return 0
	}
	return float64(r.JobsAffected) / float64(r.JobsTotal)
}
