package sim

import "mpr/internal/telemetry"

// Metric names the simulator registers in each run's registry (power
// controller metrics land in the same registry under the mpr_power_*
// names).
const (
	// MetricMarketInvocations counts overload-handling algorithm solves.
	MetricMarketInvocations = "mpr_sim_market_invocations_total"
	// MetricInfeasibleClears counts solves whose supply fell short of the
	// reduction target.
	MetricInfeasibleClears = "mpr_sim_infeasible_clears_total"
	// MetricInteractiveRounds is the per-invocation rounds histogram
	// (1 for one-shot algorithms).
	MetricInteractiveRounds = "mpr_sim_interactive_rounds"
	// MetricReductionLatency is the histogram of slots between computing
	// a reduction order and it taking effect (0 without market delay).
	MetricReductionLatency = "mpr_sim_reduction_latency_slots"
)

// simMetrics are the engine's per-run instrument handles.
type simMetrics struct {
	invocations *telemetry.Counter
	infeasible  *telemetry.Counter
	rounds      *telemetry.Histogram
	latency     *telemetry.Histogram
}

func newSimMetrics(reg *telemetry.Registry) simMetrics {
	return simMetrics{
		invocations: reg.Counter(MetricMarketInvocations, "Overload-handling algorithm solves."),
		infeasible:  reg.Counter(MetricInfeasibleClears, "Solves whose supply fell short of the target."),
		rounds:      reg.Histogram(MetricInteractiveRounds, "Rounds per market invocation.", telemetry.RoundBuckets),
		latency:     reg.Histogram(MetricReductionLatency, "Slots from reduction order to application.", telemetry.SlotBuckets),
	}
}
