package sim

import (
	"testing"
)

// A market delay (modeling MPR-INT's communication rounds) leaves the
// system overloaded while the market clears.
func TestMarketDelayProlongsOverload(t *testing.T) {
	tr := testTrace(t, 21)
	immediate, err := Run(Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := Run(Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7, MarketDelaySlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if immediate.EmergencyCount == 0 {
		t.Fatal("no emergencies to study")
	}
	if delayed.OverloadSlots <= immediate.OverloadSlots {
		t.Errorf("delayed market should overload longer: %d vs %d",
			delayed.OverloadSlots, immediate.OverloadSlots)
	}
}

// Predictive invocation (Section III-D) recovers most of the overload
// time a slow market loses.
func TestPredictiveInvocationHelpsSlowMarket(t *testing.T) {
	tr := testTrace(t, 22)
	reactive, err := Run(Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7, MarketDelaySlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	predictive, err := Run(Config{
		Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7,
		MarketDelaySlots: 3, Predictive: true, PredictHorizonSlots: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reactive.OverloadSlots == 0 {
		t.Fatal("no overload slots to recover")
	}
	if predictive.OverloadSlots >= reactive.OverloadSlots {
		t.Errorf("prediction did not reduce overload time: %d vs %d",
			predictive.OverloadSlots, reactive.OverloadSlots)
	}
	// Prediction may fire a few extra (early) emergencies but must still
	// complete all jobs.
	if predictive.JobsCompleted != predictive.JobsTotal {
		t.Errorf("predictive run incomplete: %d/%d", predictive.JobsCompleted, predictive.JobsTotal)
	}
}

func TestPredictiveValidation(t *testing.T) {
	tr := testTrace(t, 23)
	if _, err := Run(Config{Trace: tr, Algorithm: AlgMPRStat, MarketDelaySlots: -1}); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := Run(Config{Trace: tr, Algorithm: AlgMPRStat, PredictHorizonSlots: -2}); err == nil {
		t.Error("negative horizon accepted")
	}
}

// A delayed order must not resurrect after the emergency lifts.
func TestDelayedOrderClearedOnLift(t *testing.T) {
	tr := testTrace(t, 24)
	res, err := Run(Config{
		Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 7,
		MarketDelaySlots: 2, CooldownSlots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != res.JobsTotal {
		t.Errorf("incomplete: %d/%d", res.JobsCompleted, res.JobsTotal)
	}
}

// Power phases (Section I's motivation for reactive handling) create
// extra overloads beyond the nominal peak; MPR still handles them, using
// the Raise path when phases push power past the initial reduction.
func TestPowerPhasesHandled(t *testing.T) {
	tr := testTrace(t, 25)
	flat, err := Run(Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	phased, err := Run(Config{Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 7, PhaseAmp: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if phased.JobsCompleted != phased.JobsTotal {
		t.Fatalf("phased run incomplete: %d/%d", phased.JobsCompleted, phased.JobsTotal)
	}
	// Phases add power variance → at least as many emergencies.
	if phased.EmergencyCount < flat.EmergencyCount {
		t.Errorf("phases reduced emergencies: %d vs %d", phased.EmergencyCount, flat.EmergencyCount)
	}
	// Raises happen when power keeps climbing mid-emergency: with phases
	// the market is invoked more often than emergencies are declared.
	if phased.MarketInvocations <= phased.EmergencyCount {
		t.Errorf("expected raises under phases: %d invocations for %d emergencies",
			phased.MarketInvocations, phased.EmergencyCount)
	}
	// Handling still keeps the residual overload small: the emergency
	// machinery must not collapse under phase noise.
	if phased.OverloadSlots > phased.Slots/5 {
		t.Errorf("phased run overloaded %d of %d slots", phased.OverloadSlots, phased.Slots)
	}
}

func TestPhaseValidation(t *testing.T) {
	tr := testTrace(t, 26)
	if _, err := Run(Config{Trace: tr, PhaseAmp: 0.9}); err == nil {
		t.Error("excessive phase amplitude accepted")
	}
	if _, err := Run(Config{Trace: tr, PhaseAmp: 0.1, PhasePeriodSlots: 1}); err == nil {
		t.Error("degenerate phase period accepted")
	}
}

// Emergencies halt admissions; queue waits must grow with
// oversubscription pressure.
func TestQueueWaitGrowsWithOversubscription(t *testing.T) {
	tr := testTrace(t, 27)
	low := runAlgo(t, tr, AlgMPRStat, 5)
	high := runAlgo(t, tr, AlgMPRStat, 20)
	if high.MeanQueueWaitMin < low.MeanQueueWaitMin {
		t.Errorf("queue wait should grow with oversubscription: %v vs %v",
			high.MeanQueueWaitMin, low.MeanQueueWaitMin)
	}
	if low.MeanQueueWaitMin < 0 {
		t.Errorf("negative queue wait %v", low.MeanQueueWaitMin)
	}
}
