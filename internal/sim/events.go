package sim

import (
	"math"

	"mpr/internal/power"
)

// This file is the event-driven core (Config.Engine == EngineEvent). It
// drives the exact same per-slot transition as the fixed-step core
// (engineState.step), but only for slots where an event makes a state
// change possible; the provably inert slot ranges in between are replayed
// in bulk. Both cores therefore produce bit-identical Results — not
// within tolerance, bit for bit — which internal/check's engine
// differential pins over adversarial instances.
//
// Event taxonomy (eventKind): job arrivals and projected job finishes are
// the sparse skeleton of a run; overload handling (declare/raise/lift),
// in-flight market orders, power forecasting, per-job power phases, and
// per-slot series sampling are dense regimes expressed as self-
// rescheduling tick events, so while any of them is in play the event
// core degrades gracefully to one event per slot (the fixed-step core
// plus O(log n) heap traffic) and stays bit-identical through arbitrary
// controller state machines.
//
// Finish events are projections, not commitments: they are recomputed
// from each active job's remaining work on every return to quiescence
// (i.e. after any interval in which allocations may have changed), and a
// finish event that fires early — because an emergency slowed the job
// after the projection — simply lands on a slot where step() finds
// nothing to do. Skipping is conservative: correctness never depends on
// event exactness, only wall-clock wins do.

// eventKind orders same-slot events: the kind is the second sort key
// after the slot, so the pop order at a shared timestamp is fixed
// (arrivals before finishes before market/control/forecast/sampler
// ticks) regardless of insertion order.
type eventKind uint8

const (
	evArrival  eventKind = iota // a job reaches its submit slot
	evFinish                    // a running job's projected completion
	evMarket                    // a delayed reduction order's apply slot
	evControl                   // dense tick: emergency controller in flux (declare/raise/lift pending)
	evForecast                  // dense tick: predictive forecaster must observe every slot
	evSampler                   // dense tick: per-slot series sampling is on
)

// event is one timestamped entry in the heap. Ordering is (slot, kind,
// job, seq): deterministic for any insertion order, with the insertion
// sequence as the final guard (unreachable for keyed events, but the
// contract is total).
type event struct {
	slot int
	kind eventKind
	job  int    // owning job id; -1 for singleton ticks
	seq  uint64 // insertion order, the final tie-break
}

func (e event) less(o event) bool {
	if e.slot != o.slot {
		return e.slot < o.slot
	}
	if e.kind != o.kind {
		return e.kind < o.kind
	}
	if e.job != o.job {
		return e.job < o.job
	}
	return e.seq < o.seq
}

type eventKey struct {
	kind eventKind
	job  int
}

// eventHeap is an indexed binary min-heap of events: every (kind, job)
// key has at most one entry, and schedule is an upsert that moves the
// existing entry when its slot changes (finish-time recomputation). All
// operations are O(log n) and allocation-free once the heap and index
// reach their steady size.
type eventHeap struct {
	ev  []event
	pos map[eventKey]int
	seq uint64
}

func newEventHeap(capHint int) *eventHeap {
	return &eventHeap{
		ev:  make([]event, 0, capHint),
		pos: make(map[eventKey]int, capHint),
	}
}

func (h *eventHeap) len() int    { return len(h.ev) }
func (h *eventHeap) empty() bool { return len(h.ev) == 0 }

// topSlot returns the earliest scheduled slot, or math.MaxInt when empty.
func (h *eventHeap) topSlot() int {
	if len(h.ev) == 0 {
		return math.MaxInt
	}
	return h.ev[0].slot
}

func (h *eventHeap) top() event { return h.ev[0] }

// schedule upserts the (kind, job) event at the given slot.
func (h *eventHeap) schedule(kind eventKind, job, slot int) {
	k := eventKey{kind: kind, job: job}
	if i, ok := h.pos[k]; ok {
		if h.ev[i].slot == slot {
			return
		}
		old := h.ev[i].slot
		h.ev[i].slot = slot
		if slot < old {
			h.up(i)
		} else {
			h.down(i)
		}
		return
	}
	h.seq++
	h.ev = append(h.ev, event{slot: slot, kind: kind, job: job, seq: h.seq})
	h.pos[k] = len(h.ev) - 1
	h.up(len(h.ev) - 1)
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	e := h.ev[0]
	last := len(h.ev) - 1
	h.swap(0, last)
	h.ev = h.ev[:last]
	delete(h.pos, eventKey{kind: e.kind, job: e.job})
	if last > 0 {
		h.down(0)
	}
	return e
}

func (h *eventHeap) swap(i, j int) {
	h.ev[i], h.ev[j] = h.ev[j], h.ev[i]
	h.pos[eventKey{kind: h.ev[i].kind, job: h.ev[i].job}] = i
	h.pos[eventKey{kind: h.ev[j].kind, job: h.ev[j].job}] = j
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.ev[i].less(h.ev[p]) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.ev)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.ev[r].less(h.ev[l]) {
			m = r
		}
		if !h.ev[m].less(h.ev[i]) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// runEvents is the event-driven core's main loop. The loop counter is
// still the next unprocessed slot — the heap only tells it how far ahead
// the next possible state change lies. A slot is processed through the
// shared step() whenever an event lands on it or the state is not
// provably quiescent; everything in between goes through skipTo.
func (st *engineState) runEvents() error {
	h := newEventHeap(len(st.jobs) + 8)
	st.events = h
	for _, j := range st.jobs {
		h.schedule(evArrival, j.id, j.submitSlot)
	}
	if st.fc != nil {
		h.schedule(evForecast, -1, 0)
	}
	if st.samplingDense() {
		h.schedule(evSampler, -1, 0)
	}

	slot := 0
	for slot <= st.horizon && (st.remainingStart > 0 || len(st.active) > 0) {
		next := h.topSlot() // math.MaxInt when empty
		if next > st.horizon+1 {
			next = st.horizon + 1
		}
		if next > slot && st.canSkipFrom() {
			st.refreshFinishes(slot)
			if t := h.topSlot(); t < next {
				next = t
			}
			if next > slot {
				st.skipTo(slot, next)
				slot = next
				continue
			}
		}
		// Drop the slot's events: their semantics live entirely in
		// step(), which re-derives arrivals, finishes, order delivery,
		// and controller transitions from the state itself. A stale
		// early finish event just lands on a no-change slot.
		for !h.empty() && h.topSlot() <= slot {
			h.pop()
		}
		if err := st.step(slot); err != nil {
			return err
		}
		st.scheduleTicks(slot)
		slot++
	}
	return nil
}

// samplingDense reports whether some per-slot series consumer is on, in
// which case every slot must be processed (the sampler contract is one
// sample per simulated slot, timestamps in virtual slot time).
func (st *engineState) samplingDense() bool {
	return st.cfg.SampleSeries || st.cfg.RecordSeries > 0
}

// quiescentCheap is the allocation-free quiescence proxy used after
// every processed slot: when it is false, an evControl tick keeps the
// next slot dense. It intentionally re-derives nothing from the active
// set — canSkipFrom does the per-job verification at skip time.
func (st *engineState) quiescentCheap() bool {
	return !st.cfg.Predictive && st.cfg.PhaseAmp == 0 &&
		!st.emergency && st.pendingAllocs == nil &&
		st.ec.State() == power.StateNormal
}

// scheduleTicks re-arms the dense-regime tick events after a processed
// slot. Each is a keyed singleton, so re-arming is an O(log n) upsert.
func (st *engineState) scheduleTicks(slot int) {
	h := st.events
	if st.fc != nil {
		h.schedule(evForecast, -1, slot+1)
	}
	if st.samplingDense() {
		h.schedule(evSampler, -1, slot+1)
	}
	if st.pendingAllocs != nil {
		at := st.pendingApplyAt
		if at <= slot {
			at = slot + 1
		}
		h.schedule(evMarket, -1, at)
	}
	if !st.quiescentCheap() {
		h.schedule(evControl, -1, slot+1)
	}
}

// canSkipFrom verifies, from the state itself, that the upcoming slots
// are inert until the next event: no dense regime is active, the
// controller is at rest, every active job runs at full speed, and the
// delivered power sits within capacity (so the skipped controller steps
// are provably identity transitions). One O(active) pass per skip.
func (st *engineState) canSkipFrom() bool {
	if st.samplingDense() || st.cfg.Predictive || st.cfg.PhaseAmp > 0 {
		return false
	}
	if st.emergency || st.pendingAllocs != nil || st.ec.State() != power.StateNormal {
		return false
	}
	// A non-empty admission queue can start jobs on any upcoming slot
	// (notably the slot right after an emergency lift re-opens admission,
	// or whenever a finish frees cores): queued work keeps the run dense.
	if st.scheduler.QueueLen() > 0 {
		return false
	}
	var deliveredW float64
	for _, j := range st.active {
		if j.alloc != 1 {
			return false
		}
		deliveredW += j.power.JobPower(float64(j.cores), 1)
	}
	return deliveredW <= st.capW
}

// refreshFinishes (re)projects every active job's finish event from its
// current remaining work. Called on every skip attempt — i.e. on every
// return to quiescence — which is exactly "recomputed on every speed
// change": any interval in which allocations could move is dense, and
// the first skip after it re-projects from the post-change remaining
// work. Only called when canSkipFrom holds, so every active job runs at
// speed exactly 1 and the projection is exact (see skipProgress).
func (st *engineState) refreshFinishes(slot int) {
	for _, j := range st.active {
		st.events.schedule(evFinish, j.id, slot+finishSteps(j.remainingMin))
	}
}

// finishSteps returns the number of further unit-speed slots the job
// stays active: the smallest q ≥ 0 with remaining − q ≤ 1e-9 (the
// finish threshold step() tests at the top of each slot). The
// subtraction remaining − float64(q) is exact for every q that matters
// (both operands are multiples of ulp(remaining) and the difference has
// magnitude below remaining's binade), so the comparison is the same
// one the fixed-step core performs after q iterated decrements.
func finishSteps(remaining float64) int {
	q := int(math.Ceil(remaining - 1e-9))
	if q < 0 {
		q = 0
	}
	for q > 0 && remaining-float64(q-1) <= 1e-9 {
		q--
	}
	for remaining-float64(q) > 1e-9 {
		q++
	}
	return q
}

// skipProgress returns the remaining work after k unit-speed slots,
// bit-identical to k iterated `remaining -= 1.0` steps. While the
// minuend stays ≥ 1 each decrement is exact (1 is a multiple of
// ulp(minuend) for any minuend in [1, 2^53), and the difference — a
// multiple of the same grid with smaller magnitude — is representable in
// its finer binade), so those steps collapse into one subtraction; at
// most the final sub-1 step can round, and it is replayed literally.
func skipProgress(r float64, k int) float64 {
	if k <= 0 {
		return r
	}
	if r >= float64(k)+1 {
		// Every minuend stays ≥ 1: all k steps exact.
		return r - float64(k)
	}
	if r >= 1 {
		s := int(math.Floor(r)) // steps with minuend ≥ 1
		if s > k {
			s = k
		}
		r -= float64(s)
		k -= s
	}
	for ; k > 0; k-- {
		r -= 1
	}
	return r
}

// skipTo replays the inert slot range [from, to) in bulk: no arrivals,
// no finishes, no controller transitions, no market activity, no series
// consumers — the fixed-step core would only have decremented remaining
// work by 1.0 per slot, accrued the used-extra-capacity integral, and
// advanced the slot counter. Float accumulators are replayed as the same
// sequence of additions (k·fl(x) additions ≠ fl(k·x)), keeping the
// Result bit-identical; integer state advances in one move.
func (st *engineState) skipTo(from, to int) {
	k := to - from
	for _, j := range st.active {
		j.remainingMin = skipProgress(j.remainingMin, k)
	}
	var activeCores float64
	for _, j := range st.active {
		activeCores += float64(j.cores)
	}
	if activeCores > st.baseCapCores {
		extra := (activeCores - st.baseCapCores) / 60
		for i := 0; i < k; i++ {
			st.res.UsedExtraCoreH += extra
		}
	}
	st.res.Slots = to
}
