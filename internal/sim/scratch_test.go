package sim

import (
	"math/rand"
	"testing"

	"mpr/internal/core"
	"mpr/internal/telemetry"
)

// scratchFixture builds a normalized config, its jobs, and a feasible
// reduction target for direct computeReduction invocations.
func scratchFixture(t testing.TB, algo Algorithm) (*Config, []*simJob, float64) {
	cfg := Config{
		Trace:      testTrace(t, 11),
		OversubPct: 15,
		Algorithm:  algo,
		Seed:       7,
	}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	jobs := buildJobs(&cfg, rand.New(rand.NewSource(cfg.Seed)))
	if len(jobs) > 256 {
		jobs = jobs[:256]
	}
	var maxW float64
	for _, j := range jobs {
		maxW += j.part.WattsPerCore * j.part.MaxFrac * j.part.Cores
	}
	return &cfg, jobs, 0.4 * maxW
}

// TestMarketInvocationSteadyZeroAlloc is the engine-level companion of
// TestClearIntoSteadyZeroAlloc: once the scratch has reached its steady
// size, an MPR-STAT market invocation — selection, index reset, closed-
// form clear, and allocation knobs — performs zero heap allocations.
// This is what keeps the per-cell constant factor of a parallel sweep
// from being dominated by allocator traffic.
func TestMarketInvocationSteadyZeroAlloc(t *testing.T) {
	cfg, jobs, target := scratchFixture(t, AlgMPRStat)
	var s marketScratch
	if _, _, _, err := computeReduction(cfg, jobs, target, &s); err != nil {
		t.Fatal(err)
	}
	core.Instrument(telemetry.Nop())
	defer core.Instrument(telemetry.Default())
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, _, err := computeReduction(cfg, jobs, target, &s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state market invocation allocates: %v allocs/op", allocs)
	}
}

// TestComputeReductionMatchesClearWithMode pins the scratch fast path to
// the one-shot solver it replaced: identical prices, feasibility, and
// allocation knobs, bit for bit.
func TestComputeReductionMatchesClearWithMode(t *testing.T) {
	cfg, jobs, target := scratchFixture(t, AlgMPRStat)
	var s marketScratch
	rounds, price, feasible, err := computeReduction(cfg, jobs, target, &s)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*core.Participant, len(jobs))
	for i, j := range jobs {
		parts[i] = j.part
	}
	ref, err := core.ClearWithMode(parts, target, cfg.ClearMode)
	if err != nil {
		t.Fatal(err)
	}
	if price != ref.Price || feasible != ref.Feasible || rounds != ref.Rounds {
		t.Fatalf("scratch clear (price %v feasible %v rounds %d) != one-shot (price %v feasible %v rounds %d)",
			price, feasible, rounds, ref.Price, ref.Feasible, ref.Rounds)
	}
	for i, j := range s.sel {
		x := ref.Reductions[i] / float64(j.cores)
		if x < 0 {
			x = 0
		}
		if maxFrac := j.profile.MaxReduction(); x > maxFrac {
			x = maxFrac
		}
		if s.allocs[i] != 1-x {
			t.Fatalf("alloc[%d] = %v, want %v", i, s.allocs[i], 1-x)
		}
	}
}

// BenchmarkMarketInvocationSteady measures the engine's amortized
// per-invocation market cost (the dominant per-slot constant factor of
// an emergency-heavy sweep cell). ReportAllocs documents the zero-alloc
// steady state the test above enforces.
func BenchmarkMarketInvocationSteady(b *testing.B) {
	cfg, jobs, target := scratchFixture(b, AlgMPRStat)
	var s marketScratch
	if _, _, _, err := computeReduction(cfg, jobs, target, &s); err != nil {
		b.Fatal(err)
	}
	core.Instrument(telemetry.Nop())
	defer core.Instrument(telemetry.Default())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := computeReduction(cfg, jobs, target, &s); err != nil {
			b.Fatal(err)
		}
	}
}
