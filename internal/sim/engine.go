package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"mpr/internal/core"
	"mpr/internal/forecast"
	"mpr/internal/perf"
	"mpr/internal/power"
	"mpr/internal/sched"
	"mpr/internal/stats"
	"mpr/internal/telemetry"
	"mpr/internal/telemetry/tsdb"
)

// simJob is the engine's per-job state.
type simJob struct {
	id      int
	cores   int
	profile *perf.Profile
	// trueModel prices the user's actual cost; bidModel is the possibly
	// perturbed model used for bidding (Fig. 13 error studies).
	trueModel *perf.CostModel
	bidModel  *perf.CostModel
	power     power.CoreModel
	// staticBid is the precomputed MPR-STAT bid.
	staticBid    core.Bid
	participates bool

	// part and bidder are the job's prebuilt market identities, created
	// once in buildJobs so each clearing invocation appends pointers
	// instead of allocating fresh participants and bid closures. The
	// solvers never mutate them (ClearInteractive works on copies).
	part   *core.Participant
	bidder core.Bidder
	// pstats points at the job's per-profile aggregate in the Result,
	// hoisting the map lookup out of the per-slot emergency loop.
	pstats *ProfileStats

	submitSlot   int
	remainingMin float64
	origMin      float64

	running   bool
	done      bool
	affected  bool
	alloc     float64 // per-core allocation knob, 1 = full speed
	startSlot int
	endSlot   int

	// phaseOffset randomizes the job's power-phase position when
	// Config.PhaseAmp > 0.
	phaseOffset float64
}

// engineState is one run's complete mutable state. Both cores drive the
// same state through the same per-slot transition, step: the slot core
// calls it for every slot in the horizon, the event core only for slots
// where an event makes state change possible and replays the provably
// inert ranges in bulk (events.go). Everything a slot can read or write
// lives here, which is what makes the two cores bit-identical by
// construction rather than by tolerance.
type engineState struct {
	cfg *Config
	res *Result

	reg      *telemetry.Registry
	tracer   *telemetry.Tracer
	runTrace *telemetry.Trace
	sm       simMetrics
	smp      seriesSampler

	seriesStore *tsdb.Store

	jobs     []*simJob
	byID     map[int]*simJob
	arrivals map[int][]*simJob

	peakW float64
	capW  float64

	ec        *power.EmergencyController
	scheduler *sched.Scheduler
	fc        *forecast.Forecaster

	active         []*simJob
	emergency      bool
	price          float64
	totalRounds    int
	sumPrice       float64
	demandSeries   stats.Series
	deliverSeries  stats.Series
	baseCapCores   float64
	remainingStart int

	// Delayed reduction orders (MarketDelaySlots): allocations computed
	// at declare time but applied later.
	pendingAllocs    map[int]float64
	pendingApplyAt   int
	pendingOrderSlot int

	// scratch is the reusable market-invocation state; the hot slot
	// loop re-clears through it without per-invocation allocations.
	scratch marketScratch

	// lastTargetW is the reduction target of the in-force emergency
	// (for the unmet-reduction series); emSpan the open emergency span.
	lastTargetW float64
	emSpan      *telemetry.ActiveSpan
	marketAlgo  bool

	horizon int

	// events is the event core's indexed min-heap (nil under EngineSlot).
	events *eventHeap
}

// Run executes the simulation and returns its result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	st, err := newEngineState(&cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Engine == EngineEvent {
		err = st.runEvents()
	} else {
		err = st.runSlots()
	}
	if err != nil {
		return nil, err
	}
	return st.finish(), nil
}

// newEngineState builds the run's initial state: jobs, capacity, the
// emergency controller, the scheduler, observability, and the horizon.
func newEngineState(cfg *Config) (*engineState, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-run observability: a private registry plus an event tracer whose
	// retained window and snapshot ship inside the Result. The power
	// controller registers its gauges/histograms in the same registry.
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(cfg.TraceEvents)
	if cfg.TraceSink != nil {
		tracer.SetSink(cfg.TraceSink)
	}
	runTrace := tracer.StartTrace(string(cfg.Algorithm))
	sm := newSimMetrics(reg)
	cfg.Interactive.Trace = runTrace

	// Per-slot series sampling (SampleSeries): handles resolve once here;
	// over a nil store they are all Nop, so the disabled path costs only
	// nil checks in the slot loop.
	var seriesStore *tsdb.Store
	if cfg.SampleSeries {
		seriesStore = tsdb.New(cfg.SeriesCapacity)
	}
	smp := newSeriesSampler(seriesStore, string(cfg.Algorithm))

	jobs := buildJobs(cfg, rng)
	peakW := peakPower(jobs)
	capW := power.Oversubscription{PeakW: peakW, Percent: cfg.OversubPct}.Capacity()
	if cfg.CapacityOverrideW > 0 {
		capW = cfg.CapacityOverrideW
	}

	ec, err := power.NewEmergencyController(power.EmergencyConfig{
		CapacityW:        capW,
		BufferFrac:       cfg.BufferFrac,
		MinOverloadSlots: cfg.MinOverloadSlots,
		CooldownSlots:    cfg.CooldownSlots,
		Telemetry:        reg,
	})
	if err != nil {
		return nil, err
	}
	scheduler, err := sched.New(cfg.Trace.TotalCores, cfg.Backfill)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Algorithm:  cfg.Algorithm,
		TraceName:  cfg.Trace.Name,
		OversubPct: cfg.OversubPct,
		CapacityW:  capW,
		PeakW:      peakW,
		JobsTotal:  len(jobs),
		PerProfile: make(map[string]*ProfileStats),
	}
	for _, j := range jobs {
		ps := res.PerProfile[j.profile.Name]
		if ps == nil {
			ps = &ProfileStats{}
			res.PerProfile[j.profile.Name] = ps
		}
		ps.Jobs++
		j.pstats = ps
	}

	// Horizon: last submit plus generous drain time.
	lastSubmit := 0
	var totalMin float64
	for _, j := range jobs {
		if j.submitSlot > lastSubmit {
			lastSubmit = j.submitSlot
		}
		totalMin += j.origMin
	}
	horizon := lastSubmit + int(totalMin/float64(cfg.Trace.TotalCores)) + 10*24*60

	byID := make(map[int]*simJob, len(jobs))
	arrivals := make(map[int][]*simJob)
	for _, j := range jobs {
		byID[j.id] = j
		arrivals[j.submitSlot] = append(arrivals[j.submitSlot], j)
	}

	st := &engineState{
		cfg:            cfg,
		res:            res,
		reg:            reg,
		tracer:         tracer,
		runTrace:       runTrace,
		sm:             sm,
		smp:            smp,
		seriesStore:    seriesStore,
		jobs:           jobs,
		byID:           byID,
		arrivals:       arrivals,
		peakW:          peakW,
		capW:           capW,
		ec:             ec,
		scheduler:      scheduler,
		baseCapCores:   float64(cfg.Trace.TotalCores) / (1 + cfg.OversubPct/100),
		remainingStart: len(jobs),
		marketAlgo:     cfg.Algorithm == AlgMPRStat || cfg.Algorithm == AlgMPRInt,
		horizon:        horizon,
	}
	if cfg.Predictive {
		// Reactive smoothing: overload anticipation needs the trend to
		// catch demand ramps within a few slots, so level and trend
		// react much faster than a long-horizon forecaster would.
		st.fc, err = forecast.New(forecast.Config{
			LevelAlpha: 0.5,
			TrendBeta:  0.35,
			Phi:        0.95,
		})
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// runSlots is the fixed-step core: every slot in the horizon is
// processed, whether or not anything can change in it.
func (st *engineState) runSlots() error {
	for slot := 0; slot <= st.horizon && (st.remainingStart > 0 || len(st.active) > 0); slot++ {
		if err := st.step(slot); err != nil {
			return err
		}
	}
	return nil
}

// step advances the simulation by one slot: the complete per-slot
// transition both cores share.
func (st *engineState) step(slot int) error {
	cfg := st.cfg
	res := st.res

	// 1. Finish jobs that completed their work (compacting the
	// active list in place, preserving deterministic order).
	keep := st.active[:0]
	for _, j := range st.active {
		if j.remainingMin <= 1e-9 {
			j.running = false
			j.done = true
			j.endSlot = slot
			if err := st.scheduler.Finish(j.id); err != nil {
				return err
			}
			res.JobsCompleted++
			continue
		}
		keep = append(keep, j)
	}
	st.active = keep

	// 2. Admit arrivals and start queued jobs. Predictive mode adds
	// admission headroom gating: overloads in this system are mostly
	// caused by job starts — discrete power steps the manager
	// controls — so near capacity the manager defers admissions
	// until power recedes, preventing the breach instead of reacting
	// to it (the strongest form of Section III-D's early
	// invocation).
	for _, j := range st.arrivals[slot] {
		if err := st.scheduler.Submit(sched.Request{
			ID: j.id, Cores: j.cores, EstRuntime: int64(math.Ceil(j.origMin)),
		}); err != nil {
			return err
		}
		st.remainingStart--
	}
	startBudget := cfg.Trace.TotalCores
	if cfg.Predictive && st.ec.State() == power.StateNormal {
		var runDemand float64
		maxWPC := cfg.CoreModel.StaticW + cfg.CoreModel.DynamicW
		for _, j := range st.active {
			runDemand += j.power.JobPower(float64(j.cores), 1)
			if w := j.power.StaticW + j.power.DynamicW; w > maxWPC {
				maxWPC = w
			}
		}
		headroomW := 0.99*st.capW - runDemand
		if headroomW < 0 {
			headroomW = 0
		}
		startBudget = int(headroomW / maxWPC)
	}
	for _, req := range st.scheduler.TryStartBudget(int64(slot), startBudget) {
		j := st.byID[req.ID]
		j.running = true
		j.startSlot = slot
		j.alloc = 1
		st.active = append(st.active, j)
	}

	// 3. Apply any reduction orders whose market delay has elapsed,
	// then account power.
	if st.pendingAllocs != nil && slot >= st.pendingApplyAt {
		for _, j := range st.active {
			if a, ok := st.pendingAllocs[j.id]; ok {
				j.alloc = a
				if speed := j.profile.Speed(a); speed > 0 {
					st.scheduler.ExtendRuntime(j.id, int64(slot)+int64(math.Ceil(j.remainingMin/speed)))
				}
			}
		}
		st.pendingAllocs = nil
		st.sm.latency.Observe(float64(slot - st.pendingOrderSlot))
	}
	var demandW, deliveredW float64
	if cfg.PhaseAmp > 0 {
		// Per-job power phases modulate the dynamic component.
		omega := 2 * math.Pi / float64(cfg.PhasePeriodSlots)
		for _, j := range st.active {
			factor := 1 + cfg.PhaseAmp*math.Sin(omega*float64(slot)+j.phaseOffset)
			static := float64(j.cores) * j.power.StaticW
			dyn := float64(j.cores) * j.power.DynamicW * factor
			demandW += static + dyn
			deliveredW += static + j.alloc*dyn
		}
	} else {
		for _, j := range st.active {
			demandW += j.power.JobPower(float64(j.cores), 1)
			deliveredW += j.power.JobPower(float64(j.cores), j.alloc)
		}
	}

	// 4. Emergency control. In predictive mode the controller sees
	// the worst forecast over the look-ahead window, so the market
	// clears before the breach (Section III-D).
	effDemand, effDelivered := demandW, deliveredW
	if st.fc != nil {
		st.fc.Observe(demandW)
		// Forecasts drive the *declaration* only: during an active
		// emergency the measured power governs raises and lifting,
		// otherwise forecast-escalated targets block the lift
		// condition and stall admissions.
		ecState := st.ec.State()
		// Proximity gate: anticipation only matters when demand is
		// already close to the capacity — declaring from forecasts
		// far below it is all false positives (the reductions
		// stretch jobs, keep demand high, and feed back into yet
		// more emergencies).
		nearCapacity := demandW > 0.985*st.capW
		if st.fc.Ready() && nearCapacity && (ecState == power.StateNormal || ecState == power.StatePending) {
			// Anticipated demand: the point forecast, but at least a
			// 3% margin over the current draw — once the system is
			// this close to capacity, the reduction order must cover
			// the typical breach depth or the raise at the actual
			// breach pays the market delay a second time.
			fDemand := math.Max(st.fc.PredictMax(cfg.PredictHorizonSlots), 1.03*demandW)
			// Clamp: demand moves by job arrivals and phases — a few
			// percent over a few minutes — and the implied target
			// must stay within what the active jobs can possibly
			// supply, or the emergency could never meet its own lift
			// condition.
			if limit := 1.08 * demandW; fDemand > limit {
				fDemand = limit
			}
			var maxSupplyW float64
			for _, j := range st.active {
				maxSupplyW += float64(j.cores) * j.profile.MaxReduction() * j.power.DynamicW
			}
			if limit := 0.99*st.capW + 0.9*maxSupplyW; fDemand > limit {
				fDemand = limit
			}
			if fDemand > effDemand {
				effDemand = fDemand
				// Future delivered power ≈ future demand minus the
				// reduction currently in force.
				if fDeliver := fDemand - (demandW - deliveredW); fDeliver > effDelivered {
					effDelivered = fDeliver
				}
			}
		}
	}
	d := st.ec.Step(effDemand, effDelivered)
	switch {
	case d.Declare || d.Raise:
		if d.Declare {
			res.EmergencyCount++
			st.runTrace.Emit(telemetry.Event{Name: "emergency_declare", Slot: slot, TargetW: d.TargetW, Value: demandW - st.capW})
			st.emSpan = st.tracer.StartSpan("emergency", nil)
			st.emSpan.SetAttr("slot", strconv.Itoa(slot))
			st.emSpan.SetAttr("algo", string(cfg.Algorithm))
		} else {
			st.runTrace.Emit(telemetry.Event{Name: "emergency_raise", Slot: slot, TargetW: d.TargetW, Value: demandW - st.capW})
		}
		st.emergency = true
		st.lastTargetW = d.TargetW
		st.scheduler.Halt(true)
		if cfg.Algorithm != AlgNone {
			// The market runs as a child span of the emergency, under
			// the "mpr_span" pprof label so CPU profiles attribute
			// clearing work to the market (not the slot loop).
			mkSpan := st.emSpan.StartChild("market")
			cfg.Interactive.Span = mkSpan
			var (
				rounds     int
				clearPrice float64
				feasible   bool
				merr       error
			)
			telemetry.WithPprofLabels("market", func() {
				rounds, clearPrice, feasible, merr = computeReduction(cfg, st.active, d.TargetW, &st.scratch)
			})
			cfg.Interactive.Span = nil
			if merr != nil {
				return merr
			}
			mkSpan.SetAttr("rounds", strconv.Itoa(rounds))
			mkSpan.End()
			st.smp.sampleClear(slot, rounds)
			res.MarketInvocations++
			st.totalRounds += rounds
			st.sumPrice += clearPrice
			st.price = clearPrice
			st.sm.invocations.Inc()
			st.sm.rounds.Observe(float64(rounds))
			feasLabel := "feasible"
			if !feasible {
				res.InfeasibleEvents++
				st.sm.infeasible.Inc()
				feasLabel = "infeasible"
			}
			st.runTrace.Emit(telemetry.Event{Name: "market_clear", Slot: slot,
				Round: rounds, Price: clearPrice, TargetW: d.TargetW, Label: feasLabel})
			if cfg.MarketDelaySlots == 0 {
				// Immediate orders apply straight from the scratch
				// selection — no id-keyed map on the hot path.
				for i, j := range st.scratch.sel {
					a := st.scratch.allocs[i]
					j.alloc = a
					if speed := j.profile.Speed(a); speed > 0 {
						st.scheduler.ExtendRuntime(j.id, int64(slot)+int64(math.Ceil(j.remainingMin/speed)))
					}
				}
				st.sm.latency.Observe(0)
			} else {
				// A raise supersedes the in-flight order's content
				// but must not postpone its delivery — the
				// communication is already under way. Only this
				// delayed path materializes the id-keyed map (the
				// scratch slices are recycled next invocation).
				applyAt := slot + cfg.MarketDelaySlots
				if st.pendingAllocs != nil && st.pendingApplyAt < applyAt {
					applyAt = st.pendingApplyAt
				}
				var m map[int]float64
				if len(st.scratch.sel) > 0 {
					m = make(map[int]float64, len(st.scratch.sel))
					for i, j := range st.scratch.sel {
						m[j.id] = st.scratch.allocs[i]
					}
				}
				st.pendingAllocs = m
				st.pendingApplyAt = applyAt
				st.pendingOrderSlot = slot
			}
		}
	case d.Lift:
		st.emergency = false
		st.price = 0
		st.lastTargetW = 0
		st.pendingAllocs = nil
		st.scheduler.Halt(false)
		for _, j := range st.active {
			j.alloc = 1
		}
		st.runTrace.Emit(telemetry.Event{Name: "emergency_lift", Slot: slot, TargetW: d.TargetW})
		st.emSpan.SetAttr("lift_slot", strconv.Itoa(slot))
		st.emSpan.End()
		st.emSpan = nil
	}

	// 5. Per-slot statistics.
	if deliveredW > st.capW {
		res.OverloadSlots++
	}
	if st.emergency {
		res.EmergencySlots++
		for _, j := range st.active {
			j.affected = true
			if j.alloc < 1 {
				x := 1 - j.alloc
				deltaCores := x * float64(j.cores)
				cost := float64(j.cores) * j.trueModel.Cost(x) / 60
				pay := st.price * deltaCores / 60
				res.ReductionCoreH += deltaCores / 60
				res.CostCoreH += cost
				if cfg.Algorithm == AlgMPRStat || cfg.Algorithm == AlgMPRInt {
					res.PaymentCoreH += pay
				}
				ps := j.pstats
				ps.ReductionCoreH += deltaCores / 60
				ps.CostCoreH += cost
				if cfg.Algorithm == AlgMPRStat || cfg.Algorithm == AlgMPRInt {
					ps.PaymentCoreH += pay
				}
			}
		}
	}
	var activeCores float64
	for _, j := range st.active {
		activeCores += float64(j.cores)
	}
	if activeCores > st.baseCapCores {
		res.UsedExtraCoreH += (activeCores - st.baseCapCores) / 60
	}
	if cfg.RecordSeries > 0 {
		st.demandSeries.Append(int64(slot), demandW)
		st.deliverSeries.Append(int64(slot), deliveredW)
	}
	if st.smp.enabled() {
		bidderCount := 0
		for _, j := range st.active {
			if j.participates || !st.marketAlgo {
				bidderCount++
			}
		}
		st.smp.sample(slot, demandW, deliveredW, st.capW, st.price, st.emergency, st.lastTargetW, bidderCount)
	}

	// 6. Progress work.
	for _, j := range st.active {
		j.remainingMin -= j.profile.Speed(j.alloc)
	}
	res.Slots = slot + 1
	return nil
}

// finish computes the run's final statistics and attaches observability.
func (st *engineState) finish() *Result {
	cfg, res := st.cfg, st.res
	res.ExtraCapacityCoreH = float64(cfg.Trace.TotalCores) * (cfg.OversubPct / (100 + cfg.OversubPct)) * float64(res.Slots) / 60
	var incSum float64
	var incN int
	var waitSum float64
	var waitN int
	for _, j := range st.jobs {
		if j.done && j.affected && j.origMin > 0 {
			actual := float64(j.endSlot - j.startSlot)
			incSum += (actual - j.origMin) / j.origMin
			incN++
		}
		if j.done || j.running {
			waitSum += float64(j.startSlot - j.submitSlot)
			waitN++
		}
	}
	if incN > 0 {
		res.MeanRuntimeIncrease = incSum / float64(incN)
	}
	if waitN > 0 {
		res.MeanQueueWaitMin = waitSum / float64(waitN)
	}
	for _, j := range st.jobs {
		if j.affected {
			res.JobsAffected++
		}
	}
	if res.MarketInvocations > 0 {
		res.MeanRounds = float64(st.totalRounds) / float64(res.MarketInvocations)
		res.MeanClearingPrice = st.sumPrice / float64(res.MarketInvocations)
	}
	if cfg.RecordSeries > 0 {
		res.DemandSeries = st.demandSeries.Downsample(cfg.RecordSeries)
		res.DeliveredSeries = st.deliverSeries.Downsample(cfg.RecordSeries)
	}
	if cfg.RecordJobs {
		res.Jobs = make([]JobOutcome, 0, len(st.jobs))
		for _, j := range st.jobs {
			res.Jobs = append(res.Jobs, JobOutcome{
				ID:           j.id,
				Cores:        j.cores,
				SubmitSlot:   j.submitSlot,
				StartSlot:    j.startSlot,
				EndSlot:      j.endSlot,
				Started:      j.running || j.done,
				Done:         j.done,
				Affected:     j.affected,
				RemainingMin: j.remainingMin,
			})
		}
	}
	// An emergency still open at the horizon closes its span here so the
	// run's span set is complete.
	st.emSpan.End()
	res.Series = st.seriesStore
	res.Spans = st.tracer.Spans()
	res.Telemetry = st.reg.Snapshot()
	res.TraceEvents = st.tracer.Events()
	return res
}

// buildJobs assigns application profiles, cost models, participation, and
// static bids to the trace's jobs.
func buildJobs(cfg *Config, rng *rand.Rand) []*simJob {
	jobs := make([]*simJob, 0, len(cfg.Trace.Jobs))
	for _, tj := range cfg.Trace.Jobs {
		prof := cfg.Profiles[rng.Intn(len(cfg.Profiles))]
		trueModel := perf.NewCostModel(prof, cfg.Alpha, cfg.CostShape)
		// Bidding-side cost perturbation: linear-in-α scaling captures
		// both random error and systematic underestimation.
		bidAlpha := cfg.Alpha
		if cfg.CostErrorRand > 0 {
			bidAlpha *= 1 + cfg.CostErrorRand*(2*rng.Float64()-1)
		}
		if cfg.CostErrorUnder > 0 {
			bidAlpha *= 1 - cfg.CostErrorUnder
		}
		bidModel := perf.NewCostModelUnchecked(prof, bidAlpha, cfg.CostShape)
		j := &simJob{
			id:           tj.ID,
			cores:        tj.Cores,
			profile:      prof,
			trueModel:    trueModel,
			bidModel:     bidModel,
			power:        cfg.coreModelFor(prof.Name),
			participates: rng.Float64() < cfg.Participation,
			submitSlot:   int(tj.Start() / 60),
			remainingMin: float64(tj.Runtime) / 60,
			origMin:      float64(tj.Runtime) / 60,
			alloc:        1,
			phaseOffset:  rng.Float64() * 2 * math.Pi,
		}
		coop := core.CooperativeBid(float64(j.cores), bidModel)
		coop.B *= cfg.StatBidFactor
		j.staticBid = coop
		j.part = &core.Participant{
			JobID:        fmt.Sprint(j.id),
			Cores:        float64(j.cores),
			Bid:          j.staticBid,
			WattsPerCore: j.power.DynamicW,
			MaxFrac:      j.profile.MaxReduction(),
			Cost: func(d float64) float64 {
				return float64(j.cores) * j.trueModel.Cost(d/float64(j.cores))
			},
			MarginalCost: func(d float64) float64 {
				return j.trueModel.Marginal(d / float64(j.cores))
			},
		}
		j.bidder = &core.RationalBidder{Cores: float64(j.cores), Model: j.bidModel}
		jobs = append(jobs, j)
	}
	return jobs
}

// peakPower computes the workload's peak unreduced power by event sweep —
// the basis for the oversubscribed capacity (Section IV-A).
func peakPower(jobs []*simJob) float64 {
	type ev struct {
		at int
		dw float64
	}
	evs := make([]ev, 0, 2*len(jobs))
	for _, j := range jobs {
		w := j.power.JobPower(float64(j.cores), 1)
		evs = append(evs, ev{j.submitSlot, w}, ev{j.submitSlot + int(math.Ceil(j.origMin)), -w})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].at != evs[b].at {
			return evs[a].at < evs[b].at
		}
		// Releases (negative) before acquisitions at the same slot.
		return evs[a].dw < evs[b].dw
	})
	var cur, peak float64
	for _, e := range evs {
		cur += e.dw
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// marketScratch is the engine's reusable market-invocation state: the
// participant/bidder/job selections, the per-job allocation knobs, the
// clearing result (its Reductions slice is recycled by ClearInto), and
// the long-lived market index. Once the slices reach the pool's steady
// size, an MPR-STAT invocation allocates nothing.
type marketScratch struct {
	parts   []*core.Participant
	bidders []core.Bidder
	sel     []*simJob
	allocs  []float64 // alloc knob per selected job, parallel to sel
	res     core.ClearingResult
	ix      *core.MarketIndex
}

// computeReduction invokes the configured algorithm against the active
// jobs and leaves the per-job target allocations in s.sel/s.allocs
// (parallel slices, valid until the next invocation). Returns the
// interactive round count (1 for one-shot algorithms), the clearing
// price (0 for OPT/EQL), and feasibility.
func computeReduction(cfg *Config, active []*simJob, targetW float64, s *marketScratch) (rounds int, price float64, feasible bool, err error) {
	marketAlgo := cfg.Algorithm == AlgMPRStat || cfg.Algorithm == AlgMPRInt

	s.parts = s.parts[:0]
	s.bidders = s.bidders[:0]
	s.sel = s.sel[:0]
	for _, j := range active {
		if marketAlgo && !j.participates {
			continue
		}
		s.parts = append(s.parts, j.part)
		s.bidders = append(s.bidders, j.bidder)
		s.sel = append(s.sel, j)
	}
	s.allocs = s.allocs[:0]
	if len(s.parts) == 0 {
		return 1, 0, false, nil
	}

	var reductions []float64
	switch cfg.Algorithm {
	case AlgMPRStat:
		if cfg.ClearMode == core.ClearBisection || cfg.ClearMode == core.ClearStreaming {
			r, cerr := core.ClearWithMode(s.parts, targetW, cfg.ClearMode)
			if cerr != nil {
				return 0, 0, false, cerr
			}
			reductions, price, feasible, rounds = r.Reductions, r.Price, r.Feasible, r.Rounds
		} else {
			// Closed-form fast path: reset the long-lived index over the
			// current selection and re-clear into the recycled result —
			// the same segmented solve ClearWithMode runs, minus its
			// per-call index and result allocations.
			if s.ix == nil {
				s.ix, err = core.NewMarketIndex(s.parts)
			} else {
				err = s.ix.Reset(s.parts)
			}
			if err != nil {
				return 0, 0, false, err
			}
			if cerr := s.ix.ClearInto(&s.res, targetW); cerr != nil {
				return 0, 0, false, cerr
			}
			reductions, price, feasible, rounds = s.res.Reductions, s.res.Price, s.res.Feasible, s.res.Rounds
		}
	case AlgMPRInt:
		r, cerr := core.ClearInteractive(s.parts, s.bidders, targetW, cfg.Interactive)
		if cerr != nil {
			return 0, 0, false, cerr
		}
		reductions, price, feasible, rounds = r.Reductions, r.Price, r.Feasible, r.Rounds
	case AlgOPT:
		r, cerr := core.SolveOPT(s.parts, targetW, core.OPTDual)
		if cerr != nil {
			return 0, 0, false, cerr
		}
		reductions, feasible, rounds = r.Reductions, r.Feasible, 1
	case AlgEQL:
		r, cerr := core.SolveEQL(s.parts, targetW)
		if cerr != nil {
			return 0, 0, false, cerr
		}
		reductions, feasible, rounds = r.Reductions, r.Feasible, 1
	default:
		// No algorithm: nothing selected, nothing to apply.
		s.sel = s.sel[:0]
		return 1, 0, true, nil
	}

	if cap(s.allocs) >= len(s.sel) {
		s.allocs = s.allocs[:len(s.sel)]
	} else {
		s.allocs = make([]float64, len(s.sel))
	}
	for i, j := range s.sel {
		x := reductions[i] / float64(j.cores)
		if x < 0 {
			x = 0
		}
		maxFrac := j.profile.MaxReduction()
		if x > maxFrac {
			x = maxFrac
		}
		s.allocs[i] = 1 - x
	}
	return rounds, price, feasible, nil
}
