package sim

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"mpr/internal/power"
	"mpr/internal/telemetry"
)

// TestResultTelemetryConsistency cross-checks the telemetry snapshot
// against the engine's own aggregate counters on a run with real
// emergencies.
func TestResultTelemetryConsistency(t *testing.T) {
	tr := testTrace(t, 3)
	res := runAlgo(t, tr, AlgMPRInt, 15)
	if res.EmergencyCount == 0 {
		t.Fatal("test trace produced no emergencies — nothing to check")
	}
	s := res.Telemetry
	if s == nil {
		t.Fatal("Result.Telemetry missing")
	}
	if got := s.Counter(MetricMarketInvocations); got != int64(res.MarketInvocations) {
		t.Fatalf("market invocations: snapshot %d, result %d", got, res.MarketInvocations)
	}
	if got := s.Counter(MetricInfeasibleClears); got != int64(res.InfeasibleEvents) {
		t.Fatalf("infeasible clears: snapshot %d, result %d", got, res.InfeasibleEvents)
	}
	rounds := s.Histogram(MetricInteractiveRounds)
	if rounds.Count != int64(res.MarketInvocations) {
		t.Fatalf("rounds histogram count %d, invocations %d", rounds.Count, res.MarketInvocations)
	}
	if res.MarketInvocations > 0 {
		wantMean := res.MeanRounds
		if got := rounds.Mean(); got < wantMean-1e-9 || got > wantMean+1e-9 {
			t.Fatalf("rounds mean %g, result MeanRounds %g", got, wantMean)
		}
	}
	lat := s.Histogram(MetricReductionLatency)
	if lat.Count != int64(res.MarketInvocations) {
		t.Fatalf("latency observations %d, invocations %d", lat.Count, res.MarketInvocations)
	}
	if lat.Sum != 0 {
		t.Fatalf("reduction latency %g slots without market delay, want 0", lat.Sum)
	}
	// The power controller reports into the same per-run registry.
	declares := s.Counter(power.MetricEmergencyEvents + `{event="declare"}`)
	if declares != int64(res.EmergencyCount) {
		t.Fatalf("declares %d, emergency count %d", declares, res.EmergencyCount)
	}
	// The core solvers report into the process-global default registry,
	// so MPR-INT runs must have bumped the price-search counter there.
	if telemetry.Default().CounterValue("mpr_core_price_searches_total") == 0 {
		t.Fatal("core price-search counter never incremented in default registry")
	}
}

// TestResultTraceEvents checks the event window: emergencies bracketed by
// declare/lift, one market_clear per invocation, and MPR-INT per-round
// price trajectories tagged with the run's trace ID.
func TestResultTraceEvents(t *testing.T) {
	tr := testTrace(t, 3)
	res := runAlgo(t, tr, AlgMPRInt, 15)
	if len(res.TraceEvents) == 0 {
		t.Fatal("no trace events recorded")
	}
	counts := map[string]int{}
	lastSeq := uint64(0)
	for _, e := range res.TraceEvents {
		counts[e.Name]++
		if e.Seq <= lastSeq {
			t.Fatalf("events out of order: seq %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
	}
	// The window may have evicted early events; with the default cap the
	// tail must still hold market clears and interactive rounds.
	if counts["market_clear"] == 0 {
		t.Fatalf("no market_clear events: %v", counts)
	}
	if counts["int_round"] == 0 {
		t.Fatalf("no int_round events for MPR-INT: %v", counts)
	}
	for _, e := range res.TraceEvents {
		if e.Name == "int_round" && e.Trace != string(AlgMPRInt) {
			t.Fatalf("int_round missing run trace ID: %+v", e)
		}
		if e.Name == "market_clear" && e.Label == "" {
			t.Fatalf("market_clear without feasibility label: %+v", e)
		}
	}
}

// TestTraceSinkJSONL streams a run's events to a sink and re-parses them.
func TestTraceSinkJSONL(t *testing.T) {
	tr := testTrace(t, 3)
	var sink strings.Builder
	res, err := Run(Config{
		Trace: tr, OversubPct: 15, Algorithm: AlgMPRStat, Seed: 7,
		TraceEvents: 64, TraceSink: &sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MarketInvocations == 0 {
		t.Fatal("no market invocations")
	}
	sc := bufio.NewScanner(strings.NewReader(sink.String()))
	clears := 0
	for sc.Scan() {
		var e telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if e.Name == "market_clear" {
			clears++
		}
	}
	// The sink sees every event, unconstrained by the ring cap.
	if clears != res.MarketInvocations {
		t.Fatalf("sink saw %d market_clear events, result has %d invocations",
			clears, res.MarketInvocations)
	}
}
