package sim

import (
	"bytes"
	"testing"

	"mpr/internal/telemetry/tsdb"
)

// TestSamplerSteadyZeroAlloc is the sampling companion of
// TestMarketInvocationSteadyZeroAlloc: once the series handles are
// resolved, one per-slot sample — eleven ring appends including bucket
// cascades — performs zero heap allocations, so enabling SampleSeries
// does not perturb the engine's allocation profile.
func TestSamplerSteadyZeroAlloc(t *testing.T) {
	smp := newSeriesSampler(tsdb.New(4096), string(AlgMPRInt))
	slot := 0
	sampleOnce := func() {
		emergency := slot%7 < 3 // exercise both branches and the cascade
		smp.sample(slot, 120000, 118000, 119000, 0.8, emergency, 2500, 40)
		if emergency {
			smp.sampleClear(slot, 12)
		}
		slot++
	}
	sampleOnce() // resolve any lazy state before measuring
	if allocs := testing.AllocsPerRun(200, sampleOnce); allocs != 0 {
		t.Fatalf("steady-state sample allocates: %v allocs/op", allocs)
	}
}

func TestDisabledSamplerIsNop(t *testing.T) {
	smp := newSeriesSampler(nil, string(AlgMPRStat))
	if smp.enabled() {
		t.Fatal("nil-store sampler claims enabled")
	}
	smp.sample(0, 1, 2, 3, 4, true, 5, 6) // must not panic
	smp.sampleClear(0, 3)
}

// TestRunSampleSeries runs the engine with sampling on and checks the
// result's store: one point per slot per always-sampled series, overload
// and emergency consistency with the scalar statistics, and recorded
// market rounds and spans for every emergency.
func TestRunSampleSeries(t *testing.T) {
	tr := testTrace(t, 3)
	res, err := Run(Config{
		Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7,
		SampleSeries: true, SeriesCapacity: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil {
		t.Fatal("SampleSeries produced no store")
	}
	match := map[string]string{"algo": string(AlgMPRInt)}
	get := func(name string) []tsdb.Bucket {
		t.Helper()
		data := res.Series.Query(tsdb.Query{Name: name, Match: match, Resolution: tsdb.ResRaw})
		if len(data) != 1 {
			t.Fatalf("%s: %d series", name, len(data))
		}
		return data[0].Points
	}
	demand := get(SeriesPowerDemandW)
	if len(demand) != res.Slots {
		t.Fatalf("demand points = %d, slots = %d", len(demand), res.Slots)
	}
	if demand[0].Start != 0 || demand[len(demand)-1].Start != int64(res.Slots-1) {
		t.Fatalf("virtual timestamps off: %d..%d", demand[0].Start, demand[len(demand)-1].Start)
	}
	// Capacity is constant and matches the result.
	for _, b := range get(SeriesPowerCapacityW) {
		if b.Max != res.CapacityW {
			t.Fatalf("capacity sample %v != %v", b.Max, res.CapacityW)
		}
	}
	// Emergency-state samples sum to the emergency slot count, and
	// positive overload samples match the overload slot count.
	var emSlots, ovSlots int
	for _, b := range get(SeriesEmergencyActive) {
		if b.Max > 0 {
			emSlots++
		}
	}
	for _, b := range get(SeriesOverloadW) {
		if b.Max > 0 {
			ovSlots++
		}
	}
	if emSlots != res.EmergencySlots {
		t.Errorf("emergency samples %d != EmergencySlots %d", emSlots, res.EmergencySlots)
	}
	if ovSlots != res.OverloadSlots {
		t.Errorf("overload samples %d != OverloadSlots %d", ovSlots, res.OverloadSlots)
	}
	if res.EmergencyCount == 0 {
		t.Fatal("trace produced no emergencies — series assertions vacuous")
	}
	// One market-rounds sample per market invocation.
	if rounds := get(SeriesMarketRounds); len(rounds) != res.MarketInvocations {
		t.Errorf("rounds samples %d != invocations %d", len(rounds), res.MarketInvocations)
	}
	// Spans: every emergency opens a span, and MPR-INT markets record
	// market_round children under their market span.
	var emergencies, markets, roundsSpans int
	for _, s := range res.Spans {
		switch s.Name {
		case "emergency":
			emergencies++
		case "market":
			markets++
		case "market_round":
			roundsSpans++
		}
	}
	if emergencies == 0 || markets == 0 || roundsSpans == 0 {
		t.Fatalf("span census: %d emergencies, %d markets, %d rounds", emergencies, markets, roundsSpans)
	}
}

// TestRunSampleSeriesExportDeterministic is the engine-level bit-identity
// contract: two identical runs export byte-identical JSONL, including
// with different MPR-INT worker counts (the fan-out writes by index).
func TestRunSampleSeriesExportDeterministic(t *testing.T) {
	tr := testTrace(t, 3)
	export := func(workers int) []byte {
		cfg := Config{
			Trace: tr, OversubPct: 15, Algorithm: AlgMPRInt, Seed: 7,
			SampleSeries: true, SeriesCapacity: 1 << 16,
		}
		cfg.Interactive.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tsdb.WriteJSONL(&buf, res.Series.Query(tsdb.Query{Resolution: tsdb.ResRaw})); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := export(1)
	if len(base) == 0 {
		t.Fatal("empty export")
	}
	for _, workers := range []int{4, 16} {
		if !bytes.Equal(base, export(workers)) {
			t.Fatalf("series export differs at %d workers", workers)
		}
	}
}

func TestRunWithoutSampleSeriesHasNoStore(t *testing.T) {
	tr := testTrace(t, 1)
	res := runAlgo(t, tr, AlgMPRStat, 15)
	if res.Series != nil {
		t.Fatal("store present without SampleSeries")
	}
	if len(res.Spans) == 0 && res.EmergencyCount > 0 {
		t.Fatal("spans must record even without series sampling")
	}
}
