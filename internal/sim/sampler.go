package sim

import (
	"mpr/internal/telemetry/tsdb"
)

// Series names the engine samples into Result.Series each simulated slot
// when Config.SampleSeries is set. Timestamps are virtual (the slot
// number), so exported series are bit-identical across worker counts and
// wall-clock conditions — the determinism contract of DESIGN.md §9.
const (
	SeriesPowerDemandW     = "mpr_sim_power_demand_w"
	SeriesPowerDeliveredW  = "mpr_sim_power_delivered_w"
	SeriesPowerCapacityW   = "mpr_sim_power_capacity_w"
	SeriesOverloadW        = "mpr_sim_overload_w"
	SeriesClearingPrice    = "mpr_sim_clearing_price"
	SeriesReductionTarget  = "mpr_sim_reduction_target_w"
	SeriesReductionCleared = "mpr_sim_reduction_cleared_w"
	SeriesReductionUnmet   = "mpr_sim_reduction_unmet_w"
	SeriesActiveBidders    = "mpr_sim_active_bidders"
	SeriesEmergencyActive  = "mpr_sim_emergency_active"
	SeriesMarketRounds     = "mpr_sim_market_rounds"
)

// seriesSampler holds the engine's resolved series handles. Handles are
// resolved once at run start; the per-slot sample call is then pure ring
// appends — zero allocations in steady state. Built over a nil store
// every handle is the Nop series, so the uninstrumented hot loop pays
// only nil checks.
type seriesSampler struct {
	store *tsdb.Store

	demandW    *tsdb.Series
	deliveredW *tsdb.Series
	capacityW  *tsdb.Series
	overloadW  *tsdb.Series
	price      *tsdb.Series
	targetW    *tsdb.Series
	clearedW   *tsdb.Series
	unmetW     *tsdb.Series
	bidders    *tsdb.Series
	emergency  *tsdb.Series
	rounds     *tsdb.Series
}

func newSeriesSampler(store *tsdb.Store, algo string) seriesSampler {
	l := tsdb.Label{Key: "algo", Value: algo}
	return seriesSampler{
		store:      store,
		demandW:    store.Series(SeriesPowerDemandW, l),
		deliveredW: store.Series(SeriesPowerDeliveredW, l),
		capacityW:  store.Series(SeriesPowerCapacityW, l),
		overloadW:  store.Series(SeriesOverloadW, l),
		price:      store.Series(SeriesClearingPrice, l),
		targetW:    store.Series(SeriesReductionTarget, l),
		clearedW:   store.Series(SeriesReductionCleared, l),
		unmetW:     store.Series(SeriesReductionUnmet, l),
		bidders:    store.Series(SeriesActiveBidders, l),
		emergency:  store.Series(SeriesEmergencyActive, l),
		rounds:     store.Series(SeriesMarketRounds, l),
	}
}

// enabled reports whether sampling is on — callers use it to skip work
// (like counting bidders) that only feeds the sampler.
func (s *seriesSampler) enabled() bool { return s.store != nil }

// sample records one slot's cluster state. clearedW is the reduction
// currently in force (demand minus delivered); unmet is how far it falls
// short of the emergency target while one is active.
func (s *seriesSampler) sample(slot int, demandW, deliveredW, capW, price float64, emergency bool, targetW float64, activeBidders int) {
	t := int64(slot)
	s.demandW.Append(t, demandW)
	s.deliveredW.Append(t, deliveredW)
	s.capacityW.Append(t, capW)
	overload := deliveredW - capW
	if overload < 0 {
		overload = 0
	}
	s.overloadW.Append(t, overload)
	s.price.Append(t, price)
	em := 0.0
	cleared := demandW - deliveredW
	if cleared < 0 {
		cleared = 0
	}
	var unmet float64
	if emergency {
		em = 1
		s.targetW.Append(t, targetW)
		if unmet = targetW - cleared; unmet < 0 {
			unmet = 0
		}
	}
	s.clearedW.Append(t, cleared)
	s.unmetW.Append(t, unmet)
	s.bidders.Append(t, float64(activeBidders))
	s.emergency.Append(t, em)
}

// sampleClear records a market invocation's round count at its slot.
func (s *seriesSampler) sampleClear(slot, rounds int) {
	s.rounds.Append(int64(slot), float64(rounds))
}
