// Package sim is the trace-driven HPC simulator of the MPR reproduction
// (Section IV-A): it replays a workload trace in one-minute slots,
// attributes power to jobs with the paper's power model, detects overloads
// of the oversubscribed capacity, invokes an overload-handling algorithm
// (MPR-STAT, MPR-INT, OPT, or EQL), stretches slowed jobs' execution, and
// accounts costs, rewards, and all the statistics the paper's evaluation
// figures report.
package sim

import (
	"fmt"
	"io"

	"mpr/internal/core"
	"mpr/internal/perf"
	"mpr/internal/power"
	"mpr/internal/trace"
)

// Algorithm selects the overload-handling strategy.
type Algorithm string

// The paper's four benchmark algorithms.
const (
	AlgOPT     Algorithm = "OPT"
	AlgEQL     Algorithm = "EQL"
	AlgMPRStat Algorithm = "MPR-STAT"
	AlgMPRInt  Algorithm = "MPR-INT"
	// AlgNone disables overload handling (the "no oversubscription
	// handling" reference for runtime-increase measurements).
	AlgNone Algorithm = "NONE"
)

// Algorithms lists the paper's benchmark set in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgOPT, AlgEQL, AlgMPRStat, AlgMPRInt}
}

// Engine selects the simulation core. Both cores drive the identical
// per-slot transition and produce bit-identical Results; they differ
// only in which slots they visit (DESIGN.md §14).
type Engine string

const (
	// EngineSlot is the fixed-step core: every one-minute slot in the
	// horizon is processed, whether or not anything can change in it.
	// The default.
	EngineSlot Engine = "slot"
	// EngineEvent is the event-driven core: an indexed min-heap of
	// timestamped events (arrivals, projected finishes, market orders,
	// controller/forecast/sampler ticks) picks the slots where state can
	// change, and the inert ranges between them are replayed in bulk —
	// cost scales with event count, not simulated time.
	EngineEvent Engine = "event"
)

// Engines lists the simulation cores, default first.
func Engines() []Engine { return []Engine{EngineSlot, EngineEvent} }

// ParseEngine validates an engine name ("" selects the default).
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case "":
		return EngineSlot, nil
	case EngineSlot, EngineEvent:
		return Engine(s), nil
	default:
		return "", fmt.Errorf("sim: unknown engine %q (want %q or %q)", s, EngineSlot, EngineEvent)
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// Trace is the workload to replay.
	Trace *trace.Trace
	// OversubPct is the oversubscription level x: the capacity is set to
	// peak/(1+x/100) (Section IV-A).
	OversubPct float64
	// CapacityOverrideW, when positive, fixes the capacity in watts
	// instead of deriving it from the workload's peak — used by the
	// partitioned-infrastructure study where each domain gets a share of
	// a common UPS.
	CapacityOverrideW float64
	// Algorithm is the overload-handling strategy.
	Algorithm Algorithm
	// Seed drives profile assignment, participation draws, and cost
	// perturbations.
	Seed int64
	// CoreModel is the default per-core power model (the paper's
	// 25 W + 125 W for CPU clusters).
	CoreModel power.CoreModel
	// Profiles are assigned uniformly at random to jobs (Section IV-B).
	Profiles []*perf.Profile
	// AppPower optionally overrides the power model per profile name —
	// used by the heterogeneous GPU evaluation where "one core" is
	// normalized to each application's maximum power.
	AppPower map[string]power.CoreModel
	// CostShape and Alpha parameterize the user cost model (Eqn. (6)).
	CostShape perf.CostShape
	Alpha     float64
	// Participation is the fraction of users taking part in the market
	// (Fig. 12); it only affects MPR-STAT and MPR-INT.
	Participation float64
	// CostErrorRand adds a per-job uniform ±fraction error to the cost
	// model used for *bidding* (true costs are still charged), and
	// CostErrorUnder systematically underestimates it (Fig. 13).
	CostErrorRand  float64
	CostErrorUnder float64
	// StatBidFactor scales the cooperative bid's reluctance for
	// MPR-STAT: 1 = cooperative, >1 conservative, <1 deficient.
	StatBidFactor float64
	// MinOverloadSlots and CooldownSlots parameterize the emergency
	// controller (defaults 1 and 10, Section IV-A); BufferFrac is the
	// reduction-target safety buffer (default 0.01).
	MinOverloadSlots int
	CooldownSlots    int
	BufferFrac       float64
	// Interactive tunes the MPR-INT loop.
	Interactive core.InteractiveConfig
	// ClearMode selects the MClr solver for the market algorithms
	// (default ClearAuto = closed-form segmented solver; ClearBisection
	// keeps the legacy search, useful as a cross-check; ClearStreaming
	// routes MPR-STAT clears through the continuously-clearing treap
	// engine — the same prices, solved incrementally).
	ClearMode core.ClearMode
	// Backfill enables EASY backfill in the admission scheduler.
	Backfill bool
	// MarketDelaySlots delays the reduction taking effect after an
	// emergency is declared — modeling MPR-INT's communication rounds
	// (the paper charges 500 ms per round; a 30-round market is half a
	// one-minute slot, a slow manual market can take several).
	MarketDelaySlots int
	// Predictive enables overload anticipation (Section III-D): the
	// manager gates job admissions on remaining power headroom (a batch
	// of starts can no longer jump the system over capacity) and, when
	// demand approaches capacity, invokes the market early from a power
	// forecast so the reduction is in force before the breach.
	Predictive bool
	// PredictHorizonSlots is the forecast look-ahead (default
	// MarketDelaySlots+2).
	PredictHorizonSlots int
	// PhaseAmp adds per-job power phases: each job's dynamic power is
	// modulated by ±PhaseAmp sinusoidally with a random offset — the
	// phase behaviour that makes proactive power-aware scheduling hard
	// and that MPR's reactive design sidesteps (Section I). Zero
	// disables phases.
	PhaseAmp float64
	// PhasePeriodSlots is the phase period (default 90 minutes).
	PhasePeriodSlots int
	// RecordSeries, when positive, keeps a power time series downsampled
	// to roughly this many points.
	RecordSeries int
	// SampleSeries enables the per-slot time-series sampler: the run
	// records cluster power, overload depth, clearing price, reduction
	// target/cleared/unmet, active-bidder count, and emergency state into
	// Result.Series (an embedded multi-resolution store, see
	// internal/telemetry/tsdb). Timestamps are virtual slots, so exports
	// are bit-identical across worker counts.
	SampleSeries bool
	// SeriesCapacity is the raw-ring capacity per sampled series
	// (default 4096; each series also keeps 10× and 100× downsampled
	// rings of the same bucket count).
	SeriesCapacity int
	// TraceEvents caps the run's in-memory telemetry event ring (the
	// clearing-round and emergency trace returned in Result.TraceEvents).
	// Default 512.
	TraceEvents int
	// TraceSink, when set, receives every telemetry event as one JSON
	// line — the offline-analysis feed for convergence and emergency
	// studies.
	TraceSink io.Writer
	// Engine selects the simulation core (default EngineSlot). Both
	// cores produce bit-identical Results; EngineEvent's cost scales
	// with event count instead of simulated time.
	Engine Engine
	// RecordJobs records every job's timeline (submit/start/end slots,
	// completion, affectedness, final remaining work) into Result.Jobs —
	// the per-job pinning surface of the engine differential. Off by
	// default: large traces should not pay the memory.
	RecordJobs bool
}

// Normalize fills defaults and validates the configuration.
func (c *Config) Normalize() error {
	if c.Trace == nil || len(c.Trace.Jobs) == 0 {
		return fmt.Errorf("sim: config needs a non-empty trace")
	}
	if err := c.Trace.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if c.OversubPct < 0 {
		return fmt.Errorf("sim: oversubscription must be non-negative, got %v", c.OversubPct)
	}
	switch c.Algorithm {
	case AlgOPT, AlgEQL, AlgMPRStat, AlgMPRInt, AlgNone:
	case "":
		c.Algorithm = AlgMPRStat
	default:
		return fmt.Errorf("sim: unknown algorithm %q", c.Algorithm)
	}
	if c.CoreModel == (power.CoreModel{}) {
		c.CoreModel = power.DefaultCPUCoreModel
	}
	if len(c.Profiles) == 0 {
		c.Profiles = perf.CPUProfiles()
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.Participation == 0 {
		c.Participation = 1
	}
	if c.Participation < 0 || c.Participation > 1 {
		return fmt.Errorf("sim: participation must be in [0,1], got %v", c.Participation)
	}
	if c.StatBidFactor == 0 {
		c.StatBidFactor = 1
	}
	if c.StatBidFactor < 0 {
		return fmt.Errorf("sim: bid factor must be non-negative, got %v", c.StatBidFactor)
	}
	if c.CostErrorRand < 0 || c.CostErrorRand >= 1 {
		return fmt.Errorf("sim: random cost error must be in [0,1), got %v", c.CostErrorRand)
	}
	if c.CostErrorUnder < 0 || c.CostErrorUnder >= 1 {
		return fmt.Errorf("sim: cost underestimation must be in [0,1), got %v", c.CostErrorUnder)
	}
	if c.MarketDelaySlots < 0 {
		return fmt.Errorf("sim: market delay must be non-negative, got %d", c.MarketDelaySlots)
	}
	if c.PredictHorizonSlots == 0 {
		c.PredictHorizonSlots = c.MarketDelaySlots + 2
	}
	if c.PredictHorizonSlots < 1 {
		return fmt.Errorf("sim: prediction horizon must be positive, got %d", c.PredictHorizonSlots)
	}
	if c.PhaseAmp < 0 || c.PhaseAmp > 0.5 {
		return fmt.Errorf("sim: phase amplitude must be in [0, 0.5], got %v", c.PhaseAmp)
	}
	if c.PhasePeriodSlots == 0 {
		c.PhasePeriodSlots = 90
	}
	if c.PhasePeriodSlots < 2 {
		return fmt.Errorf("sim: phase period must be at least 2 slots, got %d", c.PhasePeriodSlots)
	}
	if c.Interactive.Mode == core.ClearAuto {
		c.Interactive.Mode = c.ClearMode
	}
	if c.TraceEvents <= 0 {
		c.TraceEvents = 512
	}
	engine, err := ParseEngine(string(c.Engine))
	if err != nil {
		return err
	}
	c.Engine = engine
	return nil
}

func (c *Config) coreModelFor(profileName string) power.CoreModel {
	if m, ok := c.AppPower[profileName]; ok {
		return m
	}
	return c.CoreModel
}
