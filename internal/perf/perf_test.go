package perf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogValid(t *testing.T) {
	all := AllProfiles()
	if len(all) != 14 {
		t.Fatalf("profile count = %d, want 14", len(all))
	}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestCatalogSplit(t *testing.T) {
	if n := len(CPUProfiles()); n != 8 {
		t.Errorf("CPU profiles = %d, want 8", n)
	}
	if n := len(GPUProfiles()); n != 6 {
		t.Errorf("GPU profiles = %d, want 6", n)
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("XSBench")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "XSBench" || p.Device != DeviceCPU {
		t.Errorf("got %+v", p)
	}
	if _, err := ProfileByName("NoSuchApp"); err == nil {
		t.Error("expected error for unknown app")
	}
}

func TestXSBenchMaxReduction(t *testing.T) {
	// The paper states Δ = 0.7 for XSBench.
	p, _ := ProfileByName("XSBench")
	if d := p.MaxReduction(); math.Abs(d-0.7) > 1e-12 {
		t.Errorf("XSBench Δ = %v, want 0.7", d)
	}
}

func TestPerformanceCalibration(t *testing.T) {
	// Each curve must pass through the endpoint digitized from the
	// paper's figures: perf(MinAlloc) for XSBench is 40% at 0.3.
	p, _ := ProfileByName("XSBench")
	if v := p.Performance(1.0); v != 100 {
		t.Errorf("perf(1.0) = %v", v)
	}
	if v := p.Performance(0.3); math.Abs(v-40) > 0.5 {
		t.Errorf("perf(0.3) = %v, want ~40", v)
	}
	// Clamping outside the profiled range.
	if v := p.Performance(0.1); math.Abs(v-p.Performance(0.3)) > 1e-12 {
		t.Errorf("perf(0.1) = %v, want clamp to perf(0.3)", v)
	}
	if v := p.Performance(1.5); v != 100 {
		t.Errorf("perf(1.5) = %v, want clamp to 100", v)
	}
	// Calibration points for the extremes of each device class.
	moc, _ := ProfileByName("SimpleMOC")
	if v := moc.Performance(0.3); math.Abs(v-30) > 0.5 {
		t.Errorf("SimpleMOC perf(0.3) = %v, want ~30", v)
	}
	// Jacobi keeps Fig. 15(a)'s steep sensitivity (s = 2.667) but on the
	// P40's narrow capping range: at its floor allocation of 0.8 it has
	// already lost 40% of its throughput.
	jac, _ := ProfileByName("Jacobi")
	if v := jac.Performance(0.8); math.Abs(v-60) > 0.5 {
		t.Errorf("Jacobi perf(0.8) = %v, want ~60", v)
	}
}

func TestProfileCurve(t *testing.T) {
	p, _ := ProfileByName("CoMD")
	alloc, perf := p.Curve(8)
	if len(alloc) != 8 || len(perf) != 8 {
		t.Fatalf("curve lengths: %d %d", len(alloc), len(perf))
	}
	if alloc[0] != p.MinAlloc || alloc[7] != 1 {
		t.Errorf("curve range: %v..%v", alloc[0], alloc[7])
	}
	if perf[7] != 100 {
		t.Errorf("curve end perf = %v", perf[7])
	}
}

// Property: performance is monotone non-decreasing in allocation for all
// profiles, and speed is performance/100.
func TestPerformanceMonotone(t *testing.T) {
	for _, p := range AllProfiles() {
		prev := -1.0
		for a := 0.0; a <= 1.01; a += 0.01 {
			v := p.Performance(a)
			if v < prev-1e-9 {
				t.Fatalf("%s: performance decreased at a=%v", p.Name, a)
			}
			if math.Abs(p.Speed(a)-v/100) > 1e-12 {
				t.Fatalf("%s: speed mismatch", p.Name)
			}
			prev = v
		}
	}
}

// Property: extra execution is zero at zero reduction, positive and
// increasing for positive reduction, and convex on the profiled range —
// the diminishing-return behaviour the paper's supply function captures.
func TestExtraExecutionConvex(t *testing.T) {
	for _, p := range AllProfiles() {
		if ee := p.ExtraExecution(0); math.Abs(ee) > 1e-12 {
			t.Errorf("%s: EE(0) = %v", p.Name, ee)
		}
		max := p.MaxReduction()
		const n = 50
		var prevVal, prevSlope float64
		for i := 1; i <= n; i++ {
			d := max * float64(i) / n
			v := p.ExtraExecution(d)
			if v <= prevVal {
				t.Fatalf("%s: EE not increasing at δ=%v", p.Name, d)
			}
			slope := (v - prevVal) / (max / n)
			if i > 1 && slope < prevSlope-1e-6 {
				t.Fatalf("%s: EE not convex at δ=%v (slope %v < %v)", p.Name, d, slope, prevSlope)
			}
			prevVal, prevSlope = v, slope
		}
	}
}

func TestSensitivityOrdering(t *testing.T) {
	// SimpleMOC must be more sensitive than RSBench (Fig. 9(c) discussion).
	moc, _ := ProfileByName("SimpleMOC")
	rs, _ := ProfileByName("RSBench")
	if moc.Sensitivity() <= rs.Sensitivity() {
		t.Errorf("SimpleMOC sensitivity %v should exceed RSBench %v", moc.Sensitivity(), rs.Sensitivity())
	}
	// Jacobi is the most sensitive GPU app.
	jac, _ := ProfileByName("Jacobi")
	gemm, _ := ProfileByName("GEMM-2080")
	if jac.Sensitivity() <= gemm.Sensitivity() {
		t.Errorf("Jacobi should be more sensitive than GEMM-2080")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "zero-sens", Sens: 0, MinAlloc: 0.3},
		{Name: "neg-sens", Sens: -1, MinAlloc: 0.3},
		{Name: "zero-minalloc", Sens: 1, MinAlloc: 0},
		{Name: "minalloc-one", Sens: 1, MinAlloc: 1},
		{Name: "minalloc-above", Sens: 1, MinAlloc: 1.2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %s should be invalid", p.Name)
		}
	}
}

func TestCostLinearAndQuadratic(t *testing.T) {
	p, _ := ProfileByName("XSBench")
	lin := NewCostModel(p, 1, CostLinear)
	quad := NewCostModel(p, 1, CostQuadratic)
	d := 0.5
	ee := p.ExtraExecution(d)
	if got := lin.Cost(d); math.Abs(got-ee) > 1e-12 {
		t.Errorf("linear cost = %v, want %v", got, ee)
	}
	if got := quad.Cost(d); math.Abs(got-ee*ee) > 1e-12 {
		t.Errorf("quadratic cost = %v, want %v", got, ee*ee)
	}
	if lin.Cost(0) != 0 || lin.Cost(-1) != 0 {
		t.Error("cost at δ<=0 should be 0")
	}
}

func TestCostAlphaFloor(t *testing.T) {
	p, _ := ProfileByName("CoMD")
	cm := NewCostModel(p, 0.2, CostLinear)
	if cm.Alpha != 1 {
		t.Errorf("alpha = %v, want floored to 1", cm.Alpha)
	}
	cm3 := NewCostModel(p, 3, CostLinear)
	if r := cm3.Cost(0.4) / NewCostModel(p, 1, CostLinear).Cost(0.4); math.Abs(r-3) > 1e-9 {
		t.Errorf("alpha scaling = %v, want 3", r)
	}
}

func TestMarginalNonDecreasing(t *testing.T) {
	for _, p := range AllProfiles() {
		cm := NewCostModel(p, 1, CostLinear)
		max := p.MaxReduction()
		prev := 0.0
		for i := 1; i < 40; i++ {
			d := max * float64(i) / 40
			m := cm.Marginal(d)
			if m < prev-1e-4 {
				t.Fatalf("%s: marginal decreased at δ=%v: %v < %v", p.Name, d, m, prev)
			}
			prev = m
		}
	}
}

func TestUnitCostMonotone(t *testing.T) {
	for _, p := range AllProfiles() {
		cm := NewCostModel(p, 1, CostLinear)
		max := p.MaxReduction()
		prev := -1.0
		for i := 1; i <= 40; i++ {
			d := max * float64(i) / 40
			u := cm.UnitCost(d)
			if u < prev-1e-9 {
				t.Fatalf("%s: unit cost decreased at δ=%v", p.Name, d)
			}
			prev = u
		}
	}
}

// Property: the reference reduction never loses money — unit cost at the
// reference is at most the price.
func TestReferenceReductionNoLoss(t *testing.T) {
	p, _ := ProfileByName("XSBench")
	cm := NewCostModel(p, 1, CostLinear)
	prop := func(rawQ float64) bool {
		q := math.Mod(math.Abs(rawQ), 3) // price in [0,3)
		d := cm.ReferenceReduction(q)
		if d < 0 || d > p.MaxReduction()+1e-9 {
			return false
		}
		if d > 1e-6 && cm.UnitCost(d) > q+1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestReferenceReductionSaturates(t *testing.T) {
	p, _ := ProfileByName("RSBench")
	cm := NewCostModel(p, 1, CostLinear)
	// At a huge price every application offers its full Δ.
	if d := cm.ReferenceReduction(1e6); math.Abs(d-p.MaxReduction()) > 1e-9 {
		t.Errorf("reference at huge price = %v, want Δ=%v", d, p.MaxReduction())
	}
	if d := cm.ReferenceReduction(0); d != 0 {
		t.Errorf("reference at zero price = %v, want 0", d)
	}
}

// Property: the gain-maximizing reduction yields non-negative gain and
// (approximately) dominates nearby reductions.
func TestGainMaximizingReduction(t *testing.T) {
	for _, name := range []string{"XSBench", "RSBench", "Jacobi"} {
		p, _ := ProfileByName(name)
		cm := NewCostModel(p, 1, CostLinear)
		for _, q := range []float64{0.1, 0.5, 1.0, 2.0, 5.0} {
			d := cm.GainMaximizingReduction(q)
			gain := q*d - cm.Cost(d)
			if gain < -1e-9 {
				t.Errorf("%s q=%v: negative gain %v", name, q, gain)
			}
			for _, alt := range []float64{d * 0.9, d * 1.1, 0.01, p.MaxReduction()} {
				if alt < 0 || alt > p.MaxReduction() {
					continue
				}
				if q*alt-cm.Cost(alt) > gain+1e-4 {
					t.Errorf("%s q=%v: δ*=%v (gain %v) beaten by δ=%v (gain %v)",
						name, q, d, gain, alt, q*alt-cm.Cost(alt))
				}
			}
		}
	}
}

func TestGainMaximizingAtZeroPrice(t *testing.T) {
	p, _ := ProfileByName("XSBench")
	cm := NewCostModel(p, 1, CostLinear)
	if d := cm.GainMaximizingReduction(0); d != 0 {
		t.Errorf("δ*(0) = %v, want 0", d)
	}
}

// Property: higher prices never decrease the gain-maximizing supply —
// monotone supply is what makes MClr solvable by bisection.
func TestGainMaximizingMonotoneInPrice(t *testing.T) {
	p, _ := ProfileByName("SimpleMOC")
	cm := NewCostModel(p, 1, CostLinear)
	prev := 0.0
	for q := 0.05; q < 10; q *= 1.5 {
		d := cm.GainMaximizingReduction(q)
		if d < prev-1e-6 {
			t.Fatalf("supply decreased: δ*(%v)=%v < %v", q, d, prev)
		}
		prev = d
	}
}

func TestFitLogRecoversExact(t *testing.T) {
	// Generate points from a known log model and recover its parameters.
	truth := LogFit{A: 2.5, B: 4.0}
	var xs, ys []float64
	for x := 0.3; x <= 1.0; x += 0.05 {
		xs = append(xs, x)
		ys = append(ys, truth.A*math.Log(truth.B*x)-truth.A)
	}
	got := FitLog(xs, ys)
	if math.Abs(got.A-truth.A) > 1e-6 || math.Abs(got.B-truth.B) > 1e-6 {
		t.Errorf("fit = %+v, want %+v", got, truth)
	}
}

func TestFitLogDegenerate(t *testing.T) {
	f := FitLog(nil, nil)
	if f.Eval(0.5) != 0 {
		t.Error("degenerate fit should evaluate to 0")
	}
	if f.Eval(-1) != 0 || f.Eval(0) != 0 {
		t.Error("Eval must clamp non-positive x to 0")
	}
}

func TestFitLogCostApproximates(t *testing.T) {
	// The log fit should track the true cost within a loose relative error
	// over the upper half of the reduction range (as in Fig. 7(c)).
	for _, p := range CPUProfiles() {
		cm := NewCostModel(p, 1, CostLinear)
		fit := FitLogCost(cm, 20)
		max := p.MaxReduction()
		for _, frac := range []float64{0.75, 1.0} {
			d := max * frac
			truth := cm.Cost(d)
			got := fit.Eval(d)
			if truth <= 0 {
				continue
			}
			relErr := math.Abs(got-truth) / truth
			if relErr > 0.6 {
				t.Errorf("%s: log fit rel err %.2f at δ=%v (got %v, want %v)", p.Name, relErr, d, got, truth)
			}
		}
	}
}

func TestCostShapeString(t *testing.T) {
	if CostLinear.String() != "linear" || CostQuadratic.String() != "quadratic" {
		t.Error("CostShape strings")
	}
	if CostShape(99).String() != "unknown" {
		t.Error("unknown CostShape string")
	}
}
