// Package perf models HPC application performance under resource reduction.
//
// It reproduces the user side of the MPR paper's evaluation: performance vs
// core allocation (Fig. 7(a), Fig. 15(a)), the "extra execution" impact
// metric (Fig. 7(b)), user cost models — linear and quadratic in extra
// execution (Section III-C) — the paper's logarithmic cost fit
// cost = a·log(b·x) − a (Section IV-B), and the per-application bidding
// reference curves (Fig. 7(d)).
//
// Allocation is expressed per core: an allocation of 1.0 means the core
// runs at full speed, 0.7 means the core was slowed to 70% (a resource
// reduction δ = 0.3 "cores").
//
// Each application's performance curve uses the classical scaled-speedup
// form
//
//	Performance(a) = 100·a / (a + s·(1−a)),
//
// where the sensitivity s is calibrated so the curve passes through the
// endpoints digitized from the paper's figures (see catalog.go and
// DESIGN.md §3). s = 1 gives performance exactly proportional to
// allocation (the most power-cap-sensitive CPU applications); s < 1 gives
// the flat curves of cache/memory-bound applications; s > 1 models the GPU
// applications of Fig. 15(a) whose throughput collapses faster than the
// allocation. Under this form the extra execution is
//
//	ExtraExecution(δ) = s·δ / (1−δ),
//
// smooth, strictly increasing, and strictly convex for every s > 0 — the
// diminishing-return behaviour the paper's supply function is designed to
// capture.
package perf

import "fmt"

// Device identifies the hardware class a profile was measured on.
type Device string

// Device classes used by the paper's evaluation.
const (
	DeviceCPU     Device = "cpu"         // Intel Xeon, power-capping study [41]
	DeviceGPUP40  Device = "gpu:P40"     // NVIDIA P40 [5]
	DeviceGPU1070 Device = "gpu:GTX1070" // NVIDIA GTX 1070 [26]
	DeviceGPU2080 Device = "gpu:RTX2080" // NVIDIA RTX 2080 [26]
)

// Profile is an application's performance response to per-core resource
// reduction.
type Profile struct {
	Name   string
	Device Device
	// Sens is the sensitivity s of the speedup curve: the marginal extra
	// execution per unit of reduction at δ→0.
	Sens float64
	// MinAlloc is the lowest supported per-core allocation; the maximum
	// reduction is Δ = 1 − MinAlloc. The paper uses Δ = 0.7 for the CPU
	// applications (e.g. XSBench) and we use Δ = 0.6 for the GPU ones.
	MinAlloc float64
}

// Validate checks the structural invariants of the profile.
func (p *Profile) Validate() error {
	if p.Sens <= 0 {
		return fmt.Errorf("perf: profile %s: sensitivity must be positive, got %v", p.Name, p.Sens)
	}
	if p.MinAlloc <= 0 || p.MinAlloc >= 1 {
		return fmt.Errorf("perf: profile %s: MinAlloc must be in (0,1), got %v", p.Name, p.MinAlloc)
	}
	return nil
}

// MaxReduction returns Δ, the largest per-core resource reduction this
// application supports. For XSBench this is 0.7, matching the paper.
func (p *Profile) MaxReduction() float64 { return 1 - p.MinAlloc }

// Performance returns the application performance (percent of full-speed
// throughput) at per-core allocation a. Allocation is clamped to
// [MinAlloc, 1].
func (p *Profile) Performance(a float64) float64 {
	if a < p.MinAlloc {
		a = p.MinAlloc
	}
	if a > 1 {
		a = 1
	}
	return 100 * a / (a + p.Sens*(1-a))
}

// Speed returns the relative execution speed (fraction of full speed) at
// allocation a: Performance(a)/100. The simulator advances a slowed job's
// work by Speed each time slot.
func (p *Profile) Speed(a float64) float64 { return p.Performance(a) / 100 }

// ExtraExecution returns the paper's Fig. 7(b) impact metric at per-core
// reduction delta: (100 − Performance) / Performance. It is the fraction
// of additional execution needed to finish the same work — with the same
// time unit as the reduction, so a reduction of δ cores for one hour costs
// ExtraExecution(δ) core-hours per core.
func (p *Profile) ExtraExecution(delta float64) float64 {
	if delta <= 0 {
		return 0
	}
	max := p.MaxReduction()
	if delta > max {
		delta = max
	}
	return p.Sens * delta / (1 - delta)
}

// ExtraExecutionDeriv returns d(ExtraExecution)/dδ — used by cost models
// to compute exact marginal costs.
func (p *Profile) ExtraExecutionDeriv(delta float64) float64 {
	if delta < 0 {
		delta = 0
	}
	max := p.MaxReduction()
	if delta > max {
		delta = max
	}
	om := 1 - delta
	return p.Sens / (om * om)
}

// Sensitivity summarizes how sensitive the application is to resource
// reduction: the extra execution at the maximum supported reduction.
// Useful for ordering applications as in Fig. 9(c).
func (p *Profile) Sensitivity() float64 {
	return p.ExtraExecution(p.MaxReduction())
}

// Curve samples the performance curve at n evenly spaced allocations in
// [MinAlloc, 1] for plotting (Figs. 7(a), 15(a)).
func (p *Profile) Curve(n int) (alloc, perf []float64) {
	if n < 2 {
		n = 2
	}
	alloc = make([]float64, n)
	perf = make([]float64, n)
	for i := 0; i < n; i++ {
		a := p.MinAlloc + (1-p.MinAlloc)*float64(i)/float64(n-1)
		alloc[i] = a
		perf[i] = p.Performance(a)
	}
	return alloc, perf
}
