package perf

import (
	"math"

	"mpr/internal/solver"
)

// CostShape selects how user-perceived cost grows with extra execution
// (Section III-C of the paper).
type CostShape int

const (
	// CostLinear is the paper's default: cost = α · ExtraExecution.
	CostLinear CostShape = iota
	// CostQuadratic grows quadratically with the performance loss:
	// cost = α · ExtraExecution².
	CostQuadratic
)

// String implements fmt.Stringer.
func (s CostShape) String() string {
	switch s {
	case CostLinear:
		return "linear"
	case CostQuadratic:
		return "quadratic"
	default:
		return "unknown"
	}
}

// CostModel is a user's perceived cost of per-core resource reduction for
// one application (Eqn. (6)): C(δ) = α·(L(δ) − L(0)) with the extra
// execution as the performance-loss measure. Alpha ≥ 1 encodes the user's
// relative valuation of their job's performance.
type CostModel struct {
	Profile *Profile
	Alpha   float64
	Shape   CostShape
}

// NewCostModel builds a cost model; alpha values below 1 are raised to 1,
// matching the paper's constraint α ≥ 1.
func NewCostModel(p *Profile, alpha float64, shape CostShape) *CostModel {
	if alpha < 1 {
		alpha = 1
	}
	return &CostModel{Profile: p, Alpha: alpha, Shape: shape}
}

// NewCostModelUnchecked builds a cost model without the α ≥ 1 floor. It is
// used to model users who *misestimate* their cost when bidding (the
// Fig. 13 error studies): an underestimated cost is exactly a model with a
// scaled-down α, which may fall below 1.
func NewCostModelUnchecked(p *Profile, alpha float64, shape CostShape) *CostModel {
	if alpha < 0 {
		alpha = 0
	}
	return &CostModel{Profile: p, Alpha: alpha, Shape: shape}
}

// Cost returns the user-perceived cost of a per-core reduction delta, in
// units of "fraction of a core-hour per core per hour of reduction". The
// total cost of reducing δ cores from a c-core job for h hours is
// c · Cost(δ/c) · h core-hours.
func (cm *CostModel) Cost(delta float64) float64 {
	if delta <= 0 {
		return 0
	}
	ee := cm.Profile.ExtraExecution(delta)
	switch cm.Shape {
	case CostQuadratic:
		return cm.Alpha * ee * ee
	default:
		return cm.Alpha * ee
	}
}

// Marginal returns dC/dδ at delta. The extra execution is convex in δ for
// every profiled application, so Marginal is non-decreasing — the property
// MPR-INT's convergence relies on.
func (cm *CostModel) Marginal(delta float64) float64 {
	if delta < 0 {
		delta = 0
	}
	d := cm.Profile.ExtraExecutionDeriv(delta)
	switch cm.Shape {
	case CostQuadratic:
		return cm.Alpha * 2 * cm.Profile.ExtraExecution(delta) * d
	default:
		return cm.Alpha * d
	}
}

// UnitCost returns C(δ)/δ — the cost per unit of resource reduction, the
// quantity the paper's bidding reference curves (Fig. 7(d)) are built
// from. For convex C with C(0)=0 it is non-decreasing in δ.
func (cm *CostModel) UnitCost(delta float64) float64 {
	if delta <= 0 {
		// Limit of C(δ)/δ as δ→0 is the marginal cost at zero.
		return cm.Marginal(1e-6)
	}
	return cm.Cost(delta) / delta
}

// ReferenceReduction returns the largest per-core reduction δ ≤ Δ whose
// unit cost does not exceed the price q — the bidding reference curve of
// Fig. 7(d) read as δ_ref(q). A user reducing up to δ_ref(q) at price q is
// never paid less than its cost.
func (cm *CostModel) ReferenceReduction(q float64) float64 {
	max := cm.Profile.MaxReduction()
	if q <= 0 {
		return 0
	}
	if cm.UnitCost(max) <= q {
		return max
	}
	// UnitCost is monotone; find crossing by bisection.
	lo, hi := 0.0, max
	for hi-lo > 1e-9 {
		mid := 0.5 * (lo + hi)
		if cm.UnitCost(mid) <= q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// GainMaximizingReduction returns the per-core reduction δ* in [0, Δ] that
// maximizes the user's net gain q·δ − C(δ) at price q — the MPR-INT
// bidding rule (Section III-C). For convex C the gain is concave, so a
// golden-section search suffices.
func (cm *CostModel) GainMaximizingReduction(q float64) float64 {
	max := cm.Profile.MaxReduction()
	if q <= 0 {
		return 0
	}
	gain := func(d float64) float64 { return q*d - cm.Cost(d) }
	d := solver.GoldenMax(gain, 0, max, 1e-9)
	if gain(d) <= 0 {
		return 0
	}
	return d
}

// LogFit is the paper's logarithmic cost-model fit (Section IV-B):
// cost(x) = A·log(B·x) − A, clamped at zero. The paper fits this form to
// the measured cost points to obtain the smooth curves of Fig. 7(c).
type LogFit struct {
	A float64
	B float64
}

// FitLog fits cost = A·log(B·x) − A to the points (xs, ys) by least
// squares. The form is linear in log x: cost = A·log x + (A·log B − A), so
// an ordinary linear regression on (log x, y) recovers A and B. Points
// with x <= 0 are skipped.
func FitLog(xs, ys []float64) LogFit {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, ys[i])
		}
	}
	a, c := solver.LinearFit(lx, ly)
	if a == 0 {
		return LogFit{A: 0, B: 1}
	}
	// c = A·log B − A → log B = c/A + 1.
	return LogFit{A: a, B: math.Exp(c/a + 1)}
}

// Eval evaluates the fitted cost at x, clamped to be non-negative.
func (f LogFit) Eval(x float64) float64 {
	if x <= 0 || f.A == 0 {
		return 0
	}
	v := f.A*math.Log(f.B*x) - f.A
	if v < 0 {
		return 0
	}
	return v
}

// FitLogCost samples a cost model at n evenly spaced reductions and fits
// the paper's logarithmic form, reproducing the Fig. 7(c) curves.
func FitLogCost(cm *CostModel, n int) LogFit {
	if n < 2 {
		n = 2
	}
	max := cm.Profile.MaxReduction()
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := max * float64(i+1) / float64(n)
		xs[i] = x
		ys[i] = cm.Cost(x)
	}
	return FitLog(xs, ys)
}
