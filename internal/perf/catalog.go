package perf

import "fmt"

// The profiled applications of the paper's evaluation. Sensitivities are
// calibrated so each curve passes through the lowest-allocation performance
// point digitized from Fig. 7(a) (CPU, performance at allocation 0.3) and
// Fig. 15(a) (GPU, performance at allocation 0.4):
//
//	CPU @0.3: SimpleMOC 30%, SWFFT 33%, miniMD 36%, XSBench 40%,
//	          CoMD 52%, miniFE 55%, HPCCG 62%, RSBench 70%
//	GPU @0.4: Jacobi 20%, TeaLeaf 25%, BT-1070 50%, GEMM-1070 55%,
//	          BT-2080 58%, GEMM-2080 60%
//
// Solving 100·a/(a+s(1−a)) = perf for s gives the values below. The
// ordering (SimpleMOC most sensitive … RSBench least; Jacobi/TeaLeaf
// collapsing hardest on GPU) matches the paper's discussion.
var catalog = []Profile{
	// --- CPU applications (Fig. 7(a)), Δ = 0.7 ---
	{Name: "SimpleMOC", Device: DeviceCPU, Sens: 1.000, MinAlloc: 0.3},
	{Name: "SWFFT", Device: DeviceCPU, Sens: 0.870, MinAlloc: 0.3},
	{Name: "miniMD", Device: DeviceCPU, Sens: 0.762, MinAlloc: 0.3},
	{Name: "XSBench", Device: DeviceCPU, Sens: 0.643, MinAlloc: 0.3},
	{Name: "CoMD", Device: DeviceCPU, Sens: 0.396, MinAlloc: 0.3},
	{Name: "miniFE", Device: DeviceCPU, Sens: 0.351, MinAlloc: 0.3},
	{Name: "HPCCG", Device: DeviceCPU, Sens: 0.263, MinAlloc: 0.3},
	{Name: "RSBench", Device: DeviceCPU, Sens: 0.184, MinAlloc: 0.3},

	// --- GPU applications (Fig. 15(a)), Δ = 0.6 except the P40 pair ---
	// The P40 applications keep their steep sensitivity but support only
	// a narrow power-capping range (MinAlloc 0.8): PowerCoord [5]
	// reports a limited capping window on the P40, and this is what
	// makes the equal-slowdown baseline infeasible at 20%
	// oversubscription in Fig. 15(b) — EQL cannot slow every core
	// further than the most constrained application allows.
	{Name: "Jacobi", Device: DeviceGPUP40, Sens: 2.667, MinAlloc: 0.8},
	{Name: "TeaLeaf", Device: DeviceGPUP40, Sens: 2.000, MinAlloc: 0.8},
	{Name: "BT-1070", Device: DeviceGPU1070, Sens: 0.667, MinAlloc: 0.4},
	{Name: "GEMM-1070", Device: DeviceGPU1070, Sens: 0.545, MinAlloc: 0.4},
	{Name: "BT-2080", Device: DeviceGPU2080, Sens: 0.483, MinAlloc: 0.4},
	{Name: "GEMM-2080", Device: DeviceGPU2080, Sens: 0.444, MinAlloc: 0.4},
}

// CPUProfiles returns the paper's eight CPU application profiles in
// sensitivity order (most sensitive first), as plotted in Fig. 7.
func CPUProfiles() []*Profile {
	return selectProfiles(func(p *Profile) bool { return p.Device == DeviceCPU })
}

// GPUProfiles returns the six GPU application profiles of Fig. 15(a).
func GPUProfiles() []*Profile {
	return selectProfiles(func(p *Profile) bool { return p.Device != DeviceCPU })
}

// AllProfiles returns all fourteen application profiles.
func AllProfiles() []*Profile { return selectProfiles(func(*Profile) bool { return true }) }

func selectProfiles(keep func(*Profile) bool) []*Profile {
	var out []*Profile
	for i := range catalog {
		if keep(&catalog[i]) {
			out = append(out, &catalog[i])
		}
	}
	return out
}

// ProfileByName looks up a profile by application name.
func ProfileByName(name string) (*Profile, error) {
	for i := range catalog {
		if catalog[i].Name == name {
			return &catalog[i], nil
		}
	}
	return nil, fmt.Errorf("perf: unknown application profile %q", name)
}
