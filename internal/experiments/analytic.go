package experiments

import (
	"fmt"

	"mpr/internal/core"
	"mpr/internal/perf"
	"mpr/internal/runner"
	"mpr/internal/stats"
	"mpr/internal/trace"
)

func init() {
	register("t1", "Table I: capacity oversubscription benefits on Gaia", runTable1)
	register("f1b", "Fig. 1(b): utilization CDFs of four HPC clusters", runFig1b)
	register("f2", "Fig. 2: MPR's parameterized supply function", runFig2)
	register("f3", "Fig. 3: XSBench performance, extra execution, and cost", runFig3)
	register("f4", "Fig. 4: user bidding strategies vs the cost reference", runFig4)
	register("f6", "Fig. 6: Gaia core allocation timeline", runFig6)
	register("f7", "Fig. 7: performance/cost models and bidding references", runFig7)
}

// runTable1 reproduces Table I: the workload is scaled up proportionally
// to the extra capacity and analyzed against the original peak power.
func runTable1(o Options) (*Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	const wattsPerCore = 150.0 // 25 static + 125 dynamic at full speed
	peakW := float64(tr.PeakAllocation()) * wattsPerCore
	capCores := peakW / wattsPerCore
	hours := float64(tr.Span()) / 3600
	months := hours / 720
	if months <= 0 {
		return nil, fmt.Errorf("experiments: empty Gaia trace")
	}

	tbl := stats.NewTable("Table I — capacity oversubscription in Gaia",
		"Oversubscription", "Extra Capacity (core-h/month)", "Probability of Overload",
		"Overload Time (h/month)", "Overloaded Capacity (core-h/month)", "Max Overload Payoff")
	oversubs := []float64{10, 15, 20, 25}
	type t1Row struct {
		extra, overProb, overHours, overCapacity, payoff float64
	}
	rows, err := runner.Map(o.workers(), oversubs, func(_ int, x float64) (t1Row, error) {
		scaled, err := tr.ScaleUp(1+x/100, o.seed())
		if err != nil {
			return t1Row{}, err
		}
		alloc := trace.AllocationSeries(scaled, 60)
		overSlots := 0
		var overCoreMin float64
		for _, v := range alloc.V {
			if v > capCores {
				overSlots++
				overCoreMin += v - capCores
			}
		}
		row := t1Row{
			extra:        float64(tr.TotalCores) * x / 100 * 720,
			overProb:     float64(overSlots) / float64(alloc.Len()),
			overHours:    float64(overSlots) / 60 / months,
			overCapacity: overCoreMin / 60 / months,
		}
		if row.overCapacity > 0 {
			row.payoff = row.extra / row.overCapacity
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for i, x := range oversubs {
		r := rows[i]
		tbl.AddRow(fmt.Sprintf("%.0f%%", x), r.extra, fmt.Sprintf("%.2f%%", 100*r.overProb),
			r.overHours, r.overCapacity, fmt.Sprintf("%.0fx", r.payoff))
	}
	return &Result{ID: "t1", Title: "Table I", Tables: []*stats.Table{tbl},
		Notes: []string{fmt.Sprintf("synthetic Gaia trace: %d jobs over %.0f days, peak %d cores",
			len(tr.Jobs), float64(tr.Span())/86400, tr.PeakAllocation())}}, nil
}

func runFig1b(o Options) (*Result, error) {
	days := 30
	if o.Quick {
		days = 10
	}
	tbl := stats.NewTable("Fig. 1(b) — utilization CDFs",
		"Cluster", "p10", "p25", "p50", "p75", "p90", "p95", "p99")
	order := []string{"gaia", "metacentrum", "ricc", "pik"}
	presets := trace.Presets(o.seed())
	cdfs, err := runner.Map(o.workers(), order, func(_ int, name string) (*stats.CDF, error) {
		tr, err := cachedTrace(presets[name].WithDays(days))
		if err != nil {
			return nil, err
		}
		return trace.UtilizationCDF(tr, 300), nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range order {
		row := []interface{}{name}
		for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99} {
			row = append(row, cdfs[i].Quantile(p))
		}
		tbl.AddRow(row...)
	}
	return &Result{ID: "f1b", Title: "Fig. 1(b)", Tables: []*stats.Table{tbl},
		Notes: []string{"expected ordering: gaia most utilized, then metacentrum, ricc, pik"}}, nil
}

func runFig2(o Options) (*Result, error) {
	tbl := stats.NewTable("Fig. 2 — supply function δ(q) = [Δ − b/q]+, Δ = 0.7",
		"price q", "b=0.05", "b=0.10", "b=0.20", "b=0.40")
	bids := []core.Bid{
		{Delta: 0.7, B: 0.05}, {Delta: 0.7, B: 0.10},
		{Delta: 0.7, B: 0.20}, {Delta: 0.7, B: 0.40},
	}
	for q := 0.1; q <= 2.001; q += 0.1 {
		row := []interface{}{q}
		for _, b := range bids {
			row = append(row, b.Supply(q))
		}
		tbl.AddRow(row...)
	}
	return &Result{ID: "f2", Title: "Fig. 2", Tables: []*stats.Table{tbl}}, nil
}

func runFig3(o Options) (*Result, error) {
	prof, err := perf.ProfileByName("XSBench")
	if err != nil {
		return nil, err
	}
	cm := perf.NewCostModel(prof, 1, perf.CostLinear)
	tbl := stats.NewTable("Fig. 3 — XSBench under resource reduction (α = 1)",
		"core allocation", "performance %", "extra execution", "cost")
	for a := 1.0; a >= prof.MinAlloc-1e-9; a -= 0.1 {
		d := 1 - a
		tbl.AddRow(a, prof.Performance(a), prof.ExtraExecution(d), cm.Cost(d))
	}
	return &Result{ID: "f3", Title: "Fig. 3", Tables: []*stats.Table{tbl}}, nil
}

func runFig4(o Options) (*Result, error) {
	prof, err := perf.ProfileByName("XSBench")
	if err != nil {
		return nil, err
	}
	cm := perf.NewCostModel(prof, 1, perf.CostLinear)
	coop := core.CooperativeBid(1, cm)
	cons := core.ConservativeBid(1, cm, 1.5)
	def := core.DeficientBid(1, cm, 0.4)

	tbl := stats.NewTable("Fig. 4(a) — static bidding strategies for XSBench (per core)",
		"price q", "reference δ_ref", "cooperative", "conservative", "deficient")
	for q := 0.1; q <= 2.001; q += 0.1 {
		tbl.AddRow(q, cm.ReferenceReduction(q), coop.Supply(q), cons.Supply(q), def.Supply(q))
	}

	tbl2 := stats.NewTable("Fig. 4(b) — MPR-INT gain-maximizing bids for XSBench",
		"clearing price q'", "optimal reduction δ*", "bid b")
	rb := &core.RationalBidder{Cores: 1, Model: cm}
	for _, q := range []float64{0.33, 0.66, 1.0} {
		bid := rb.RespondBid(q)
		tbl2.AddRow(q, bid.Supply(q), bid.B)
	}
	return &Result{ID: "f4", Title: "Fig. 4", Tables: []*stats.Table{tbl, tbl2},
		Notes: []string{fmt.Sprintf("cooperative b = %.4f per core", coop.B)}}, nil
}

func runFig6(o Options) (*Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	s := trace.AllocationSeries(tr, 60).Downsample(24)
	tbl := stats.NewTable("Fig. 6 — Gaia core allocation (bucket means)", "minute", "cores")
	for i := range s.T {
		tbl.AddRow(s.T[i], s.V[i])
	}
	tbl.AddRow("peak", float64(tr.PeakAllocation()))
	return &Result{ID: "f6", Title: "Fig. 6", Tables: []*stats.Table{tbl}}, nil
}

func runFig7(o Options) (*Result, error) {
	perfTbl := stats.NewTable("Fig. 7(a) — performance vs core allocation (%)",
		"app", "a=0.3", "a=0.4", "a=0.5", "a=0.6", "a=0.7", "a=0.8", "a=0.9", "a=1.0")
	eeTbl := stats.NewTable("Fig. 7(b) — extra execution vs resource reduction",
		"app", "δ=0.1", "δ=0.2", "δ=0.3", "δ=0.4", "δ=0.5", "δ=0.6", "δ=0.7")
	costTbl := stats.NewTable("Fig. 7(c) — logarithmic cost fit a·log(b·x) − a",
		"app", "fit a", "fit b", "cost(0.35)", "cost(0.7)")
	refTbl := stats.NewTable("Fig. 7(d) — bidding reference δ_ref at price",
		"app", "q=0.1", "q=0.25", "q=0.5", "q=1.0", "q=2.0")

	for _, p := range perf.CPUProfiles() {
		cm := perf.NewCostModel(p, 1, perf.CostLinear)
		row := []interface{}{p.Name}
		for _, a := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
			row = append(row, p.Performance(a))
		}
		perfTbl.AddRow(row...)

		row = []interface{}{p.Name}
		for _, d := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7} {
			row = append(row, p.ExtraExecution(d))
		}
		eeTbl.AddRow(row...)

		fit := perf.FitLogCost(cm, 20)
		costTbl.AddRow(p.Name, fit.A, fit.B, fit.Eval(0.35), fit.Eval(0.7))

		row = []interface{}{p.Name}
		for _, q := range []float64{0.1, 0.25, 0.5, 1.0, 2.0} {
			row = append(row, cm.ReferenceReduction(q))
		}
		refTbl.AddRow(row...)
	}
	return &Result{ID: "f7", Title: "Fig. 7",
		Tables: []*stats.Table{perfTbl, eeTbl, costTbl, refTbl}}, nil
}
