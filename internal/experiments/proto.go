package experiments

import (
	"fmt"

	"mpr/internal/cluster"
	"mpr/internal/stats"
)

func init() {
	register("f16", "Fig. 16: prototype power and runtime vs CPU speed", runFig16)
	register("f17", "Fig. 17: prototype overload handling with MPR", runFig17)
}

func runFig16(o Options) (*Result, error) {
	pts, err := cluster.FreqSweep(cluster.DefaultApps(), 8)
	if err != nil {
		return nil, err
	}
	powerTbl := stats.NewTable("Fig. 16(a) — dynamic power vs CPU speed (W, 10 cores)",
		"app", "freq (GHz)", "dynamic power (W)")
	runtimeTbl := stats.NewTable("Fig. 16(b) — normalized execution time vs CPU speed",
		"app", "freq (GHz)", "normalized runtime")
	for _, p := range pts {
		powerTbl.AddRow(p.App, p.FreqGHz, p.DynPowerW)
		runtimeTbl.AddRow(p.App, p.FreqGHz, p.NormRuntime)
	}
	return &Result{ID: "f16", Title: "Fig. 16", Tables: []*stats.Table{powerTbl, runtimeTbl}}, nil
}

func runFig17(o Options) (*Result, error) {
	seconds := 1800 // two 30-minute experiments, as in the paper
	if o.Quick {
		seconds = 600
	}
	run := func(useMPR bool) (*cluster.RunResult, error) {
		c, err := cluster.New(cluster.Config{
			Seed: o.seed(), UseMPR: useMPR, PhaseAmp: 0.03, CapacityW: 400,
		})
		if err != nil {
			return nil, err
		}
		c.RunFor(seconds)
		return c.Result(), nil
	}
	without, err := run(false)
	if err != nil {
		return nil, err
	}
	with, err := run(true)
	if err != nil {
		return nil, err
	}

	powerTbl := stats.NewTable("Fig. 17(a) — prototype power (W, bucket means, 400 W cap)",
		"second", "without MPR", "with MPR")
	w1 := without.PowerSeries.Downsample(20)
	w2 := with.PowerSeries.Downsample(20)
	for i := range w1.T {
		powerTbl.AddRow(w1.T[i], w1.V[i], w2.V[i])
	}

	appTbl := stats.NewTable("Fig. 17(b) — per-application outcome with MPR",
		"app", "mean core allocation", "reduction (core-seconds)", "payment (core-seconds)")
	for _, a := range with.Apps {
		appTbl.AddRow(a.Name, a.MeanAlloc, a.ReductionCoreSeconds, a.PaymentCoreSeconds)
	}

	summary := stats.NewTable("Fig. 17 — summary",
		"run", "emergencies", "overload seconds")
	summary.AddRow("without MPR", without.Emergencies, without.OverloadSeconds)
	summary.AddRow("with MPR", with.Emergencies, with.OverloadSeconds)

	return &Result{ID: "f17", Title: "Fig. 17",
		Tables: []*stats.Table{powerTbl, appTbl, summary},
		Notes:  []string{fmt.Sprintf("emulated prototype: 40 cores, %d virtual seconds per arm", seconds)},
	}, nil
}
