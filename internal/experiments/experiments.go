// Package experiments reproduces every table and figure of the MPR
// paper's evaluation (plus the ablations called out in DESIGN.md §4). Each
// experiment is a named runner producing printable tables; cmd/mprbench
// regenerates any of them from the command line, bench_test.go wraps each
// in a testing.B benchmark, and EXPERIMENTS.md records the outputs.
//
// The experiment IDs follow the paper: "t1" is Table I, "f8" is Fig. 8,
// and so on; "a1".."a4" are the repository's design ablations.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"mpr/internal/sim"
	"mpr/internal/stats"
	"mpr/internal/trace"
)

// Options tunes experiment scale.
type Options struct {
	// Seed drives every random choice; experiments are deterministic
	// for a fixed seed.
	Seed int64
	// Quick trims trace lengths and sweep sizes so the full suite runs
	// in seconds-to-minutes instead of tens of minutes. The full-scale
	// runs reproduce the paper's setup (90-day Gaia horizon etc.).
	Quick bool
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// gaiaDays returns the simulated horizon for Gaia-based experiments.
func (o Options) gaiaDays() int {
	if o.Quick {
		return 14
	}
	return 92
}

// otherTraceDays returns the horizon for the PIK/RICC/Metacentrum study.
// These clusters are large (RICC peaks above 20,000 cores), so their
// horizons are shorter than Gaia's.
func (o Options) otherTraceDays() int {
	if o.Quick {
		return 6
	}
	return 45
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// Experiment is a registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)
}

var registry []Experiment

func register(id, title string, run func(Options) (*Result, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID looks an experiment up by its ID.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// --- shared trace and simulation caches -------------------------------

var (
	cacheMu    sync.Mutex
	traceCache = map[string]*trace.Trace{}
	simCache   = map[string]*sim.Result{}
)

// gaiaTrace builds (and caches) the Gaia workload for the options.
func gaiaTrace(o Options) (*trace.Trace, error) {
	return cachedTrace(trace.GaiaConfig(o.seed()).WithDays(o.gaiaDays()))
}

func cachedTrace(cfg trace.GenConfig) (*trace.Trace, error) {
	key := fmt.Sprintf("%s/%d/%d/%d", cfg.Name, cfg.Seed, cfg.Days, cfg.JobCount)
	cacheMu.Lock()
	tr, ok := traceCache[key]
	cacheMu.Unlock()
	if ok {
		return tr, nil
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	traceCache[key] = tr
	cacheMu.Unlock()
	return tr, nil
}

// cachedRun executes (and caches) a simulation; figures 8, 9, and 11
// share the same sweep.
func cachedRun(cfg sim.Config, key string) (*sim.Result, error) {
	cacheMu.Lock()
	res, ok := simCache[key]
	cacheMu.Unlock()
	if ok {
		return res, nil
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	simCache[key] = res
	cacheMu.Unlock()
	return res, nil
}

// ResetCaches clears the shared caches (used by benchmarks that want cold
// runs).
func ResetCaches() {
	cacheMu.Lock()
	traceCache = map[string]*trace.Trace{}
	simCache = map[string]*sim.Result{}
	cacheMu.Unlock()
}

// gaiaSweep runs (cached) Gaia simulations for the given oversubscription
// levels and algorithms.
func gaiaSweep(o Options, oversubs []float64, algos []sim.Algorithm) (map[float64]map[sim.Algorithm]*sim.Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	out := make(map[float64]map[sim.Algorithm]*sim.Result)
	for _, x := range oversubs {
		out[x] = make(map[sim.Algorithm]*sim.Result)
		for _, algo := range algos {
			key := fmt.Sprintf("gaia/%d/%d/%.1f/%s", o.seed(), o.gaiaDays(), x, algo)
			res, err := cachedRun(sim.Config{
				Trace:      tr,
				OversubPct: x,
				Algorithm:  algo,
				Seed:       o.seed(),
			}, key)
			if err != nil {
				return nil, err
			}
			out[x][algo] = res
		}
	}
	return out, nil
}
