// Package experiments reproduces every table and figure of the MPR
// paper's evaluation (plus the ablations called out in DESIGN.md §4). Each
// experiment is a named runner producing printable tables; cmd/mprbench
// regenerates any of them from the command line, bench_test.go wraps each
// in a testing.B benchmark, and EXPERIMENTS.md records the outputs.
//
// The experiment IDs follow the paper: "t1" is Table I, "f8" is Fig. 8,
// and so on; "a1".."a4" are the repository's design ablations.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"mpr/internal/runner"
	"mpr/internal/sim"
	"mpr/internal/stats"
	"mpr/internal/trace"
)

// Options tunes experiment scale.
type Options struct {
	// Seed drives every random choice; experiments are deterministic
	// for a fixed seed.
	Seed int64
	// Quick trims trace lengths and sweep sizes so the full suite runs
	// in seconds-to-minutes instead of tens of minutes. The full-scale
	// runs reproduce the paper's setup (90-day Gaia horizon etc.).
	Quick bool
	// Parallel bounds the worker pool that executes a sweep's
	// independent simulation cells: 0 uses GOMAXPROCS, 1 forces serial
	// execution, n > 1 runs up to n cells concurrently. Parallel and
	// serial sweeps emit bit-identical tables (DESIGN.md §9); timing
	// experiments (f10, a1, a6) always run their *timed* sections
	// serially so co-scheduled cells cannot distort the measurements.
	Parallel int
	// Days overrides every trace-driven experiment's horizon in days
	// (0 keeps the per-experiment default). Benchmarks and tests use it
	// to shrink the matrix without touching the experiment logic.
	Days int
	// Engine selects the simulation core (sim.EngineSlot, sim.EngineEvent;
	// empty means the slot engine). Both engines produce bit-identical
	// Results (internal/check pins this), so every table is engine-
	// independent; the option exists so wall-clock studies can time the
	// event core and so CI can run the suite on both.
	Engine sim.Engine
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// workers returns the sweep worker-pool bound for the options.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runner.DefaultWorkers()
}

// gaiaDays returns the simulated horizon for Gaia-based experiments.
func (o Options) gaiaDays() int {
	if o.Days > 0 {
		return o.Days
	}
	if o.Quick {
		return 14
	}
	return 92
}

// otherTraceDays returns the horizon for the PIK/RICC/Metacentrum study.
// These clusters are large (RICC peaks above 20,000 cores), so their
// horizons are shorter than Gaia's.
func (o Options) otherTraceDays() int {
	if o.Days > 0 {
		return o.Days
	}
	if o.Quick {
		return 6
	}
	return 45
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// Experiment is a registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)
}

var registry []Experiment

func register(id, title string, run func(Options) (*Result, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID looks an experiment up by its ID.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// --- shared trace and simulation caches -------------------------------

// cacheEntry is one singleflight slot: the first caller to claim the key
// runs the generator inside the entry's once; every concurrent caller
// for the same key blocks on that once and then reads the shared result.
// The cache mutex is never held while generating, so unrelated keys
// build concurrently and nested lookups (a simulation cell fetching its
// trace) cannot deadlock.
type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

var (
	cacheMu    sync.Mutex
	traceCache = map[string]*cacheEntry[*trace.Trace]{}
	simCache   = map[string]*cacheEntry[*sim.Result]{}
)

// singleflight returns the cached value for key, running gen exactly
// once per key no matter how many sweep cells ask concurrently.
func singleflight[V any](m map[string]*cacheEntry[V], key string, gen func() (V, error)) (V, error) {
	cacheMu.Lock()
	e, ok := m[key]
	if !ok {
		e = &cacheEntry[V]{}
		m[key] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() { e.val, e.err = gen() })
	return e.val, e.err
}

// gaiaTrace builds (and caches) the Gaia workload for the options.
func gaiaTrace(o Options) (*trace.Trace, error) {
	return cachedTrace(trace.GaiaConfig(o.seed()).WithDays(o.gaiaDays()))
}

// cachedTrace generates (and caches) a workload trace. Concurrent cells
// requesting the same trace generate it exactly once; the returned trace
// is shared across cells and must be treated as immutable.
func cachedTrace(cfg trace.GenConfig) (*trace.Trace, error) {
	key := fmt.Sprintf("%s/%d/%d/%d", cfg.Name, cfg.Seed, cfg.Days, cfg.JobCount)
	return singleflight(traceCache, key, func() (*trace.Trace, error) {
		return trace.Generate(cfg)
	})
}

// cachedRun executes (and caches) a simulation; figures 8, 9, and 11
// share the same sweep. Concurrent cells with the same key run the
// simulation exactly once. The engine is folded into the cache key
// here, centrally, so no call site can forget it: runs under different
// engines never alias (and "" aliases with the slot engine it means).
func cachedRun(cfg sim.Config, key string) (*sim.Result, error) {
	engine, err := sim.ParseEngine(string(cfg.Engine))
	if err != nil {
		return nil, err
	}
	cfg.Engine = engine
	key = key + "@" + string(engine)
	return singleflight(simCache, key, func() (*sim.Result, error) {
		return sim.Run(cfg)
	})
}

// ResetCaches clears the shared caches (used by benchmarks that want cold
// runs).
func ResetCaches() {
	cacheMu.Lock()
	traceCache = map[string]*cacheEntry[*trace.Trace]{}
	simCache = map[string]*cacheEntry[*sim.Result]{}
	cacheMu.Unlock()
}

// simCell is one (oversubscription, algorithm) point of a Gaia sweep.
type simCell struct {
	x    float64
	algo sim.Algorithm
}

// gaiaSweep runs (cached) Gaia simulations for the given oversubscription
// levels and algorithms, fanning the matrix across the options' worker
// pool. Results are keyed by cell coordinates, so the assembled map — and
// every table rendered from it — is identical at any worker count.
func gaiaSweep(o Options, oversubs []float64, algos []sim.Algorithm) (map[float64]map[sim.Algorithm]*sim.Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	cells := make([]simCell, 0, len(oversubs)*len(algos))
	for _, x := range oversubs {
		for _, algo := range algos {
			cells = append(cells, simCell{x, algo})
		}
	}
	results, err := runner.Map(o.workers(), cells, func(_ int, c simCell) (*sim.Result, error) {
		key := fmt.Sprintf("gaia/%d/%d/%.1f/%s", o.seed(), o.gaiaDays(), c.x, c.algo)
		return cachedRun(sim.Config{
			Trace:      tr,
			OversubPct: c.x,
			Algorithm:  c.algo,
			Seed:       o.seed(),
			Engine:     o.Engine,
		}, key)
	})
	if err != nil {
		return nil, err
	}
	out := make(map[float64]map[sim.Algorithm]*sim.Result)
	for i, c := range cells {
		m := out[c.x]
		if m == nil {
			m = make(map[sim.Algorithm]*sim.Result)
			out[c.x] = m
		}
		m[c.algo] = results[i]
	}
	return out, nil
}
