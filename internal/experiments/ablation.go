package experiments

import (
	"fmt"
	"time"

	"mpr/internal/core"
	"mpr/internal/perf"
	"mpr/internal/runner"
	"mpr/internal/sim"
	"mpr/internal/stats"
)

func init() {
	register("a1", "Ablation: MClr bisection vs generic/dual NLP solvers", runAblationSolvers)
	register("a2", "Ablation: linear vs quadratic user cost", runAblationCostShape)
	register("a3", "Ablation: static bidding strategies", runAblationBidStrategies)
	register("a4", "Ablation: emergency hysteresis (buffer + cool-down)", runAblationHysteresis)
	register("a5", "Ablation: predictive market invocation vs reactive", runAblationPredictive)
	register("a6", "Ablation: supply-function market vs VCG auction", runAblationVCG)
}

// runAblationSolvers validates the paper's scalability design decision:
// clearing the market through the scalar bisection of MClr instead of a
// multi-variable NLP loses little cost while being orders of magnitude
// faster.
func runAblationSolvers(o Options) (*Result, error) {
	sizes := []int{100, 1000, 10000}
	if o.Quick {
		sizes = []int{100, 1000}
	}
	tbl := stats.NewTable("Ablation A1 — MClr bisection vs centralized solvers",
		"jobs", "bisect ms", "dual ms", "generic ms", "cost bisect/OPT", "supplied/target")
	// Pool construction fans out across the worker pool; the timed
	// solver sections below stay serial so co-scheduled cells cannot
	// distort the wall-clock columns (DESIGN.md §9).
	pools, err := buildPools(o, sizes)
	if err != nil {
		return nil, err
	}
	for i, n := range sizes {
		parts := pools[i].parts
		target := poolTarget(parts)

		t0 := time.Now()
		mres, err := core.Clear(parts, target)
		if err != nil {
			return nil, err
		}
		bisectMS := time.Since(t0).Seconds() * 1000
		var marketCost float64
		for i, p := range parts {
			marketCost += p.Cost(mres.Reductions[i])
		}

		t0 = time.Now()
		dres, err := core.SolveOPT(parts, target, core.OPTDual)
		if err != nil {
			return nil, err
		}
		dualMS := time.Since(t0).Seconds() * 1000

		t0 = time.Now()
		if _, err := core.SolveOPT(parts, target, core.OPTGeneric); err != nil {
			return nil, err
		}
		genericMS := time.Since(t0).Seconds() * 1000

		ratio := 0.0
		if dres.TotalCost > 0 {
			ratio = marketCost / dres.TotalCost
		}
		tbl.AddRow(n, bisectMS, dualMS, genericMS, ratio, mres.SuppliedW/target)
	}
	return &Result{ID: "a1", Title: "Ablation A1", Tables: []*stats.Table{tbl}}, nil
}

func runAblationCostShape(o Options) (*Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Ablation A2 — user cost shape at 15% oversubscription",
		"cost shape", "algorithm", "cost (core-h)", "reward %")
	type cell struct {
		shape perf.CostShape
		algo  sim.Algorithm
	}
	var cells []cell
	for _, shape := range []perf.CostShape{perf.CostLinear, perf.CostQuadratic} {
		for _, algo := range []sim.Algorithm{sim.AlgMPRStat, sim.AlgMPRInt} {
			cells = append(cells, cell{shape, algo})
		}
	}
	results, err := runner.Map(o.workers(), cells, func(_ int, c cell) (*sim.Result, error) {
		key := fmt.Sprintf("a2/%d/%d/%s/%s", o.seed(), o.gaiaDays(), c.algo, c.shape)
		return cachedRun(sim.Config{
			Trace: tr, OversubPct: 15, Algorithm: c.algo,
			Seed: o.seed(), CostShape: c.shape, Engine: o.Engine,
		}, key)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		r := results[i]
		tbl.AddRow(c.shape.String(), string(c.algo), r.CostCoreH,
			fmt.Sprintf("%.0f%%", r.RewardPercent()))
	}
	return &Result{ID: "a2", Title: "Ablation A2", Tables: []*stats.Table{tbl}}, nil
}

func runAblationBidStrategies(o Options) (*Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Ablation A3 — MPR-STAT bid strategy at 15% oversubscription",
		"strategy", "bid factor", "cost (core-h)", "reward %", "infeasible events")
	cases := []struct {
		name   string
		factor float64
	}{
		{"deficient", 0.4},
		{"cooperative", 1.0},
		{"conservative", 1.5},
		{"very conservative", 2.5},
	}
	results, err := runner.MapN(o.workers(), len(cases), func(i int) (*sim.Result, error) {
		key := fmt.Sprintf("a3/%d/%d/%.2f", o.seed(), o.gaiaDays(), cases[i].factor)
		return cachedRun(sim.Config{
			Trace: tr, OversubPct: 15, Algorithm: sim.AlgMPRStat,
			Seed: o.seed(), StatBidFactor: cases[i].factor, Engine: o.Engine,
		}, key)
	})
	if err != nil {
		return nil, err
	}
	for i, tc := range cases {
		r := results[i]
		tbl.AddRow(tc.name, tc.factor, r.CostCoreH,
			fmt.Sprintf("%.0f%%", r.RewardPercent()), r.InfeasibleEvents)
	}
	return &Result{ID: "a3", Title: "Ablation A3",
		Tables: []*stats.Table{tbl},
		Notes:  []string{"deficient bids raise supply at low prices (cheap for the manager, risky for users); conservative bids push the clearing price up"}}, nil
}

func runAblationHysteresis(o Options) (*Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Ablation A4 — emergency hysteresis at 15% oversubscription",
		"buffer", "cool-down (min)", "emergencies", "emergency minutes", "overload minutes")
	cases := []struct {
		buffer   float64
		cooldown int
	}{
		{0.0001, 1},  // near-zero buffer, minimal cool-down: oscillation-prone
		{0.0001, 10}, // cool-down only
		{0.01, 1},    // buffer only
		{0.01, 10},   // the paper's setting
	}
	results, err := runner.MapN(o.workers(), len(cases), func(i int) (*sim.Result, error) {
		tc := cases[i]
		key := fmt.Sprintf("a4/%d/%d/%.4f/%d", o.seed(), o.gaiaDays(), tc.buffer, tc.cooldown)
		return cachedRun(sim.Config{
			Trace: tr, OversubPct: 15, Algorithm: sim.AlgMPRStat,
			Seed: o.seed(), BufferFrac: tc.buffer, CooldownSlots: tc.cooldown,
			Engine: o.Engine,
		}, key)
	})
	if err != nil {
		return nil, err
	}
	for i, tc := range cases {
		r := results[i]
		tbl.AddRow(fmt.Sprintf("%.2f%%", 100*tc.buffer), tc.cooldown,
			r.EmergencyCount, r.EmergencySlots, r.OverloadSlots)
	}
	return &Result{ID: "a4", Title: "Ablation A4", Tables: []*stats.Table{tbl},
		Notes: []string{"fewer, longer emergencies with the paper's 1% buffer + 10-minute cool-down; tiny buffers with no cool-down relapse repeatedly"}}, nil
}

// runAblationPredictive evaluates Section III-D's suggestion to invoke
// the market early from a power forecast. The market delay models
// MPR-INT's communication rounds: with a slow market, reactive handling
// leaves the system overloaded while prices converge; the predictive
// manager clears before the breach.
func runAblationPredictive(o Options) (*Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Ablation A5 — predictive market invocation (MPR-INT at 15%)",
		"market delay (min)", "predictive", "overload minutes", "emergencies",
		"cost (core-h)", "mean queue wait (min)")
	cases := []struct {
		delay      int
		predictive bool
	}{
		{0, false},
		{3, false},
		{3, true},
		{5, false},
		{5, true},
	}
	results, err := runner.MapN(o.workers(), len(cases), func(i int) (*sim.Result, error) {
		tc := cases[i]
		key := fmt.Sprintf("a5/%d/%d/%d/%v", o.seed(), o.gaiaDays(), tc.delay, tc.predictive)
		return cachedRun(sim.Config{
			Trace: tr, OversubPct: 15, Algorithm: sim.AlgMPRInt, Seed: o.seed(),
			MarketDelaySlots: tc.delay, Predictive: tc.predictive,
			PredictHorizonSlots: tc.delay + 3, Engine: o.Engine,
		}, key)
	})
	if err != nil {
		return nil, err
	}
	for i, tc := range cases {
		r := results[i]
		tbl.AddRow(tc.delay, tc.predictive, r.OverloadSlots, r.EmergencyCount,
			r.CostCoreH, r.MeanQueueWaitMin)
	}
	return &Result{ID: "a5", Title: "Ablation A5", Tables: []*stats.Table{tbl},
		Notes: []string{"predictive mode gates admissions on power headroom and pre-clears from the forecast: overloads are prevented rather than reacted to, at the price of slightly longer queue waits"}}, nil
}

// runAblationVCG quantifies the Section VI trade-off between MPR's
// supply-function bidding and a VCG procurement auction: VCG is exactly
// efficient and truthful but needs full cost revelation and one
// counterfactual optimal solve per winner.
func runAblationVCG(o Options) (*Result, error) {
	sizes := []int{10, 100, 500}
	if !o.Quick {
		sizes = []int{10, 100, 1000, 3000}
	}
	tbl := stats.NewTable("Ablation A6 — MPR market vs VCG auction",
		"jobs", "market ms", "VCG ms", "market cost", "VCG cost",
		"market payout", "VCG payments", "pivotal winners")
	// Prebuild the pools in parallel; the timed sections stay serial.
	pools, err := buildPools(o, sizes)
	if err != nil {
		return nil, err
	}
	for pi, n := range sizes {
		parts := pools[pi].parts
		target := poolTarget(parts)

		t0 := time.Now()
		mres, err := core.Clear(parts, target)
		if err != nil {
			return nil, err
		}
		marketMS := time.Since(t0).Seconds() * 1000
		var marketCost float64
		for i, p := range parts {
			marketCost += p.Cost(mres.Reductions[i])
		}

		t0 = time.Now()
		vres, err := core.SolveVCG(parts, target)
		if err != nil {
			return nil, err
		}
		vcgMS := time.Since(t0).Seconds() * 1000
		pivotal := 0
		for _, p := range vres.Pivotal {
			if p {
				pivotal++
			}
		}
		tbl.AddRow(n, marketMS, vcgMS, marketCost, vres.TotalCost,
			mres.PayoutRate, vres.TotalPaymentVCG(), pivotal)
	}
	return &Result{ID: "a6", Title: "Ablation A6", Tables: []*stats.Table{tbl},
		Notes: []string{"VCG is exactly efficient but needs cost revelation and M+1 optimal solves; the market clears with one bisection over sealed bids"}}, nil
}
