package experiments

import (
	"fmt"

	"mpr/internal/carbon"
	"mpr/internal/core"
	"mpr/internal/power"
	"mpr/internal/runner"
	"mpr/internal/sim"
	"mpr/internal/stats"
	"mpr/internal/trace"
)

func init() {
	register("x1", "Extension: carbon-aware demand response (merit ④)", runCarbonDR)
	register("x2", "Study: market collusion (Section III-F)", runCollusion)
	register("x3", "Study: power attacks and direct-capping defense (Section III-F)", runPowerAttack)
	register("x4", "Study: partitioned power infrastructures (Section III-A)", runPartitioned)
}

// runCarbonDR exercises the paper's "beyond oversubscription" claim: the
// same market cuts carbon by buying reduction during dirty-grid hours.
func runCarbonDR(o Options) (*Result, error) {
	days := 14
	if o.Quick {
		days = 5
	}
	tr, err := cachedTrace(trace.GaiaConfig(o.seed()).WithDays(days))
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Extension X1 — carbon-aware demand response on a Gaia-like workload",
		"threshold (gCO2/kWh)", "DR events", "DR minutes", "energy saved (kWh)",
		"CO2 saved (kg)", "CO2 saved %", "user cost (core-h)", "reward %")
	thresholds := []float64{0, 380, 430, 480}
	results, err := runner.Map(o.workers(), thresholds, func(_ int, th float64) (*carbon.Result, error) {
		return carbon.Run(carbon.Config{Trace: tr, Seed: o.seed(), ThresholdG: th})
	})
	if err != nil {
		return nil, err
	}
	for i, th := range thresholds {
		r := results[i]
		label := fmt.Sprintf("%.0f", r.ThresholdG)
		if th == 0 {
			label = fmt.Sprintf("auto (%.0f)", r.ThresholdG)
		}
		tbl.AddRow(label, r.DREvents, r.DRSlots, r.EnergySavedKWh,
			r.SavedKgCO2, fmt.Sprintf("%.2f%%", 100*r.SavedKgCO2/r.BaselineKgCO2),
			r.CostCoreH, fmt.Sprintf("%.0f%%", r.RewardPercent()))
	}
	return &Result{ID: "x1", Title: "Extension X1", Tables: []*stats.Table{tbl},
		Notes: []string{"users keep a positive net gain while the grid gets cleaner — the overload market reused verbatim"}}, nil
}

// runCollusion quantifies Section III-F's collusion discussion: a
// coalition inflating its bids b raises the clearing price for everyone,
// but the coalition needs substantial market share before its own payoff
// improves.
func runCollusion(o Options) (*Result, error) {
	const n = 200
	parts, _ := syntheticPool(n, o.seed())
	target := poolTarget(parts)

	honest, err := core.Clear(parts, target)
	if err != nil {
		return nil, err
	}
	honestPay := make([]float64, n)
	for i := range parts {
		honestPay[i] = honest.Price * honest.Reductions[i]
	}

	tbl := stats.NewTable("Study X2 — bid collusion (coalition inflates b by 3x)",
		"coalition share", "clearing price", "price increase", "coalition payoff change",
		"outsider payoff change", "manager payout increase")
	shares := []float64{0, 0.05, 0.10, 0.25, 0.50}
	type x2Row struct {
		res                *core.ClearingResult
		coalChange, outChg string
	}
	rows, err := runner.Map(o.workers(), shares, func(_ int, share float64) (x2Row, error) {
		// Each cell builds its own pool: bids are mutated per coalition.
		k := int(share * n)
		colluding, _ := syntheticPool(n, o.seed())
		for i := 0; i < k; i++ {
			colluding[i].Bid.B *= 3
		}
		res, err := core.Clear(colluding, target)
		if err != nil {
			return x2Row{}, err
		}
		var coalHonest, coalNow, outHonest, outNow float64
		for i := range colluding {
			pay := res.Price * res.Reductions[i]
			if i < k {
				coalHonest += honestPay[i]
				coalNow += pay
			} else {
				outHonest += honestPay[i]
				outNow += pay
			}
		}
		row := x2Row{res: res, coalChange: "n/a", outChg: "n/a"}
		if coalHonest > 0 {
			row.coalChange = fmt.Sprintf("%+.1f%%", 100*(coalNow-coalHonest)/coalHonest)
		}
		if outHonest > 0 {
			row.outChg = fmt.Sprintf("%+.1f%%", 100*(outNow-outHonest)/outHonest)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for i, share := range shares {
		res := rows[i].res
		tbl.AddRow(fmt.Sprintf("%.0f%%", 100*share), res.Price,
			fmt.Sprintf("%+.1f%%", 100*(res.Price-honest.Price)/honest.Price),
			rows[i].coalChange, rows[i].outChg,
			fmt.Sprintf("%+.1f%%", 100*(res.PayoutRate-honest.PayoutRate)/honest.PayoutRate))
	}
	return &Result{ID: "x2", Title: "Study X2", Tables: []*stats.Table{tbl},
		Notes: []string{"withholding supply raises the price but shifts volume to outsiders; small coalitions lose more volume than they gain in price — the paper's argument that collusion does not pay at HPC scale"}}, nil
}

// runPowerAttack reproduces the Section III-F threat: an attacker who
// detects market invocations and spikes its power draw to deepen the
// overload, and the manager's defense of directly capping all jobs when
// the market-supplied reduction keeps falling short.
func runPowerAttack(o Options) (*Result, error) {
	const (
		slots        = 240
		capacityW    = 100000.0
		attackFactor = 1.30 // attacker turbo-boost on its dynamic power
	)
	parts, _ := syntheticPool(60, o.seed())

	run := func(attackers int, defense bool) (overloadSlots, directCaps int, payout float64) {
		ec, _ := power.NewEmergencyController(power.EmergencyConfig{CapacityW: capacityW})
		// Baseline draw ~5% above capacity so an emergency triggers.
		var baseW float64
		for _, p := range parts {
			baseW += p.Cores * (25 + p.WattsPerCore)
		}
		scale := 1.05 * capacityW / baseW
		alloc := make([]float64, len(parts))
		for i := range alloc {
			alloc[i] = 1
		}
		attacking := false
		shortStreak := 0
		for s := 0; s < slots; s++ {
			var demand, delivered float64
			for i, p := range parts {
				dyn := p.WattsPerCore
				if attacking && i < attackers {
					dyn *= attackFactor
				}
				demand += scale * p.Cores * (25 + dyn)
				delivered += scale * p.Cores * (25 + alloc[i]*dyn)
			}
			if delivered > capacityW {
				overloadSlots++
			}
			d := ec.Step(demand, delivered)
			if d.Declare || d.Raise {
				attacking = attackers > 0 // attacker sees the invocation
				res, err := core.Clear(parts, d.TargetW/scale)
				if err == nil {
					payout += res.PayoutRate
					for i, p := range parts {
						if i < attackers {
							// Malicious users ignore their reduction
							// orders — only hardware capping binds them.
							continue
						}
						alloc[i] = 1 - res.Reductions[i]/p.Cores
					}
				}
			}
			if d.Lift {
				attacking = false
				for i := range alloc {
					alloc[i] = 1
				}
			}
			// Defense: if the reduced system still overloads for three
			// consecutive slots, cap everyone directly, bypassing the
			// market (no payments for the forced cut).
			if defense {
				if delivered > capacityW && ec.State() == power.StateEmergency {
					shortStreak++
					if shortStreak >= 3 {
						for i := range alloc {
							alloc[i] *= 0.95
							if alloc[i] < 0.3 {
								alloc[i] = 0.3
							}
						}
						directCaps++
					}
				} else {
					shortStreak = 0
				}
			}
		}
		return overloadSlots, directCaps, payout
	}

	tbl := stats.NewTable("Study X3 — power attacks during market invocation",
		"scenario", "overload minutes", "direct caps", "market payout rate")
	scenarios := []struct {
		name      string
		attackers int
		defense   bool
	}{
		{"no attack", 0, false},
		{"attack, no defense", 15, false},
		{"attack + direct capping", 15, true},
	}
	type x3Row struct {
		over, caps int
		payout     float64
	}
	// Each scenario keeps its own controller and allocation state; the
	// shared pool is only read (core.Clear copies into its own index).
	rows, err := runner.MapN(o.workers(), len(scenarios), func(i int) (x3Row, error) {
		over, caps, payout := run(scenarios[i].attackers, scenarios[i].defense)
		return x3Row{over, caps, payout}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, tc := range scenarios {
		tbl.AddRow(tc.name, rows[i].over, rows[i].caps, rows[i].payout)
	}
	return &Result{ID: "x3", Title: "Study X3", Tables: []*stats.Table{tbl},
		Notes: []string{"the attacker prolongs the overload until the manager bypasses MPR and caps power directly — the mitigation the paper prescribes"}}, nil
}

// runPartitioned exercises Section III-A's extension to data centers with
// multiple parallel power infrastructures: each partition has its own
// capacity C_i, aggregate power P_i(t), emergency controller, and market.
// Splitting the same workload across two independent UPS domains loses
// statistical multiplexing — each partition sees sharper relative peaks —
// so partitioned operation overloads more often at the same
// oversubscription level.
func runPartitioned(o Options) (*Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	// Split jobs round-robin into two domains, halving the cluster.
	half := tr.TotalCores / 2
	domA := &trace.Trace{Name: tr.Name + "-domA", TotalCores: half}
	domB := &trace.Trace{Name: tr.Name + "-domB", TotalCores: half}
	for i, j := range tr.Jobs {
		if j.Cores > half {
			// Jobs larger than a domain stay whole in domain A's twin;
			// clamp to keep the partition valid.
			j.Cores = half
		}
		if i%2 == 0 {
			domA.Jobs = append(domA.Jobs, j)
		} else {
			domB.Jobs = append(domB.Jobs, j)
		}
	}

	tbl := stats.NewTable("Study X4 — unified vs partitioned power infrastructure (MPR-STAT)",
		"oversub", "unified overload min", "partitioned overload min",
		"unified cost (core-h)", "partitioned cost (core-h)")
	// Two-stage matrix: the partitioned cells need each unified run's
	// CapacityW, so the unified sweep completes first, then the 2·len
	// domain cells fan out.
	oversubs := []float64{10, 15, 20}
	unis, err := runner.Map(o.workers(), oversubs, func(_ int, x float64) (*sim.Result, error) {
		uniKey := fmt.Sprintf("gaia/%d/%d/%.1f/%s", o.seed(), o.gaiaDays(), x, sim.AlgMPRStat)
		return cachedRun(sim.Config{
			Trace: tr, OversubPct: x, Algorithm: sim.AlgMPRStat, Seed: o.seed(),
			Engine: o.Engine,
		}, uniKey)
	})
	if err != nil {
		return nil, err
	}
	doms := []*trace.Trace{domA, domB}
	domRes, err := runner.MapN(o.workers(), len(oversubs)*len(doms), func(i int) (*sim.Result, error) {
		x, d := oversubs[i/len(doms)], i%len(doms)
		key := fmt.Sprintf("x4/%d/%d/%.1f/dom%d", o.seed(), o.gaiaDays(), x, d)
		// Each domain gets half of the unified oversubscribed
		// capacity — the same infrastructure, split in two.
		return cachedRun(sim.Config{
			Trace: doms[d], OversubPct: x, Algorithm: sim.AlgMPRStat, Seed: o.seed(),
			CapacityOverrideW: unis[i/len(doms)].CapacityW / 2, Engine: o.Engine,
		}, key)
	})
	if err != nil {
		return nil, err
	}
	for xi, x := range oversubs {
		uni := unis[xi]
		var partOver int
		var partCost float64
		for d := range doms {
			r := domRes[xi*len(doms)+d]
			partOver += r.OverloadSlots
			partCost += r.CostCoreH
		}
		tbl.AddRow(fmt.Sprintf("%.0f%%", x), uni.OverloadSlots, partOver,
			uni.CostCoreH, partCost)
	}
	return &Result{ID: "x4", Title: "Study X4", Tables: []*stats.Table{tbl},
		Notes: []string{"each partition runs its own capacity, emergency controller, and market (Section III-A); partitioning loses statistical multiplexing"}}, nil
}
