package experiments

import (
	"strings"
	"testing"

	"mpr/internal/sim"
	"mpr/internal/telemetry/tsdb"
)

// renderResult flattens an experiment result into one canonical string so
// two runs can be compared byte for byte.
func renderResult(res *Result) string {
	var b strings.Builder
	for _, tbl := range res.Tables {
		b.WriteString(tbl.String())
		b.WriteByte('\n')
	}
	for _, n := range res.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestSweepBitIdentity is the determinism contract of DESIGN.md §9: every
// sweep renders byte-identical tables at any worker count. The IDs cover
// each rewired sweep family — the Gaia oversubscription sweep (f8), its
// series-instrumented sibling whose timeline table is regenerated from
// the recorded store (f9), the participation and error sweeps (f12, f13, whose concurrent cells also
// share one singleflight-cached trace), the ablation case matrix (a5),
// the two-stage uniform-vs-partitioned sweep (x4), the phase-noise
// sweep (x7), and the analytic Table I / CDF paths (t1, f1b). Timing
// experiments (f10, a1, a6) are excluded: their tables contain measured
// wall-clock columns, which no scheduling discipline can make identical.
// The multi-trace study f14 is exercised by TestAllExperimentsRunQuick
// but kept out of this matrix: its 20,000-core clusters dominate the
// suite's wall clock even at a 2-day horizon, and its sweep structure
// (trace × algorithm cells over cachedTrace) is the same as f12/f13's.
// The matrix also crosses both simulation engines: each engine must be
// worker-count invariant, and — because internal/check pins the engines
// to bit-identical Results — the event engine's tables must match the
// slot engine's byte for byte as well.
func TestSweepBitIdentity(t *testing.T) {
	ids := []string{"f8", "f9", "x4", "t1"}
	if !testing.Short() {
		ids = append(ids, "f12", "f13", "a5", "x7", "f1b")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			var want string
			for _, engine := range sim.Engines() {
				for _, workers := range []int{1, 4, 16} {
					// Cold caches each time: with warm caches a second run
					// would trivially replay memoized results instead of
					// exercising the worker pool.
					ResetCaches()
					res, err := e.Run(Options{Seed: 1, Quick: true, Days: 2, Parallel: workers, Engine: engine})
					if err != nil {
						t.Fatalf("engine=%s workers=%d: %v", engine, workers, err)
					}
					got := renderResult(res)
					if engine == sim.EngineSlot && workers == 1 {
						want = got
						continue
					}
					if got != want {
						t.Fatalf("engine=%s workers=%d rendering differs from slot serial:\n--- slot serial ---\n%s\n--- engine=%s workers=%d ---\n%s",
							engine, workers, want, engine, workers, got)
					}
				}
			}
		})
	}
}

// TestSeriesExportBitIdentity extends the determinism contract to the
// recorded series store itself: the timeline run's raw JSONL export is
// byte-identical at any worker count and under either engine. This is
// the property the mprbench -series flag relies on.
func TestSeriesExportBitIdentity(t *testing.T) {
	var want string
	for _, engine := range sim.Engines() {
		for _, workers := range []int{1, 4, 16} {
			ResetCaches()
			res, err := TimelineRun(Options{Seed: 1, Quick: true, Days: 2, Parallel: workers, Engine: engine})
			if err != nil {
				t.Fatalf("engine=%s workers=%d: %v", engine, workers, err)
			}
			var b strings.Builder
			if err := tsdb.WriteJSONL(&b, res.Series.Query(tsdb.Query{Resolution: tsdb.ResRaw})); err != nil {
				t.Fatalf("engine=%s workers=%d export: %v", engine, workers, err)
			}
			got := b.String()
			if engine == sim.EngineSlot && workers == 1 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("engine=%s workers=%d series export differs from slot serial (%d vs %d bytes)",
					engine, workers, len(got), len(want))
			}
		}
	}
	for _, name := range []string{sim.SeriesPowerDemandW, sim.SeriesOverloadW, sim.SeriesMarketRounds} {
		if !strings.Contains(want, name) {
			t.Fatalf("export is missing series %s", name)
		}
	}
}
