package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"mpr/internal/core"
	"mpr/internal/perf"
	"mpr/internal/runner"
	"mpr/internal/stats"
	"mpr/internal/telemetry"
	"mpr/internal/telemetry/tsdb"
)

func init() {
	register("f10", "Fig. 10: solution time and iterations vs active jobs", runFig10)
}

// syntheticPool builds n market participants with random application
// profiles and core counts — the varying-active-jobs instances of the
// scalability study.
func syntheticPool(n int, seed int64) ([]*core.Participant, []core.Bidder) {
	rng := rand.New(rand.NewSource(seed))
	profiles := perf.CPUProfiles()
	parts := make([]*core.Participant, n)
	bidders := make([]core.Bidder, n)
	for i := 0; i < n; i++ {
		prof := profiles[rng.Intn(len(profiles))]
		cores := float64(int(1) << rng.Intn(6))
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		c := cores
		parts[i] = &core.Participant{
			JobID:        fmt.Sprintf("job%d", i),
			Cores:        cores,
			Bid:          core.CooperativeBid(cores, model),
			WattsPerCore: 125,
			MaxFrac:      prof.MaxReduction(),
			Cost:         func(d float64) float64 { return c * model.Cost(d/c) },
			MarginalCost: func(d float64) float64 { return model.Marginal(d / c) },
		}
		bidders[i] = &core.RationalBidder{Cores: cores, Model: model}
	}
	return parts, bidders
}

// pool is one prebuilt synthetic participant pool of a timing study.
type pool struct {
	parts   []*core.Participant
	bidders []core.Bidder
}

// buildPools constructs the synthetic pools for the given sizes on the
// options' worker pool. Timing experiments (f10, a1, a6) prebuild their
// pools here so only the *untimed* construction parallelizes; the timed
// solver sections stay serial (DESIGN.md §9).
func buildPools(o Options, sizes []int) ([]pool, error) {
	return runner.Map(o.workers(), sizes, func(_ int, n int) (pool, error) {
		parts, bidders := syntheticPool(n, o.seed())
		return pool{parts, bidders}, nil
	})
}

func poolTarget(parts []*core.Participant) float64 {
	var maxW float64
	for _, p := range parts {
		maxW += p.WattsPerCore * p.MaxFrac * p.Cores
	}
	return 0.4 * maxW
}

func runFig10(o Options) (*Result, error) {
	sizes := []int{10, 100, 1000, 10000, 30000}
	if o.Quick {
		sizes = []int{10, 100, 1000, 3000}
	}
	// The paper charges 500 ms of communication per MPR-INT round.
	const commPerRound = 500 * time.Millisecond

	timeTbl := stats.NewTable("Fig. 10(a) — solution time vs number of active jobs",
		"jobs", "MPR-STAT (ms)", "EQL (ms)", "OPT generic (ms)", "OPT dual (ms)",
		"MPR-INT compute (ms)", "MPR-INT with comm (s)",
		"MPR-STAT bisect (ms)", "indexed clear (µs)")
	iterTbl := stats.NewTable("Fig. 10(b) — MPR-INT iterations to clear",
		"jobs", "rounds", "converged")
	convTbl := stats.NewTable("Fig. 10(b) inset — MPR-INT convergence trajectory (largest pool)",
		"round", "announced price", "cleared price", "supplied (W)", "price error (%)")

	// The per-round price trajectory is recorded as int_round trace
	// events on the largest pool, ingested into a series store, and read
	// back as per-round convergence series — the same record/replay path
	// the post-hoc tooling uses (DESIGN.md §10).
	tracer := telemetry.NewTracer(256)
	largest := sizes[len(sizes)-1]

	// Pool construction fans out; the timed sections below stay serial.
	pools, err := buildPools(o, sizes)
	if err != nil {
		return nil, err
	}
	for pi, n := range sizes {
		parts, bidders := pools[pi].parts, pools[pi].bidders
		target := poolTarget(parts)

		t0 := time.Now()
		if _, err := core.Clear(parts, target); err != nil {
			return nil, err
		}
		statMS := time.Since(t0).Seconds() * 1000

		// Solver comparison: the legacy bisection search and the amortized
		// indexed clear (index built once, then reused — the steady-state
		// cost inside the sim engine and the MPR-INT rounds).
		t0 = time.Now()
		if _, err := core.ClearWithMode(parts, target, core.ClearBisection); err != nil {
			return nil, err
		}
		bisectMS := time.Since(t0).Seconds() * 1000

		ix, err := core.NewMarketIndex(parts)
		if err != nil {
			return nil, err
		}
		var warm core.ClearingResult
		if err := ix.ClearInto(&warm, target); err != nil {
			return nil, err
		}
		const reclears = 100
		t0 = time.Now()
		for r := 0; r < reclears; r++ {
			if err := ix.ClearInto(&warm, target); err != nil {
				return nil, err
			}
		}
		indexedUS := time.Since(t0).Seconds() * 1e6 / reclears

		t0 = time.Now()
		if _, err := core.SolveEQL(parts, target); err != nil {
			return nil, err
		}
		eqlMS := time.Since(t0).Seconds() * 1000

		t0 = time.Now()
		if _, err := core.SolveOPT(parts, target, core.OPTGeneric); err != nil {
			return nil, err
		}
		optMS := time.Since(t0).Seconds() * 1000

		t0 = time.Now()
		if _, err := core.SolveOPT(parts, target, core.OPTDual); err != nil {
			return nil, err
		}
		dualMS := time.Since(t0).Seconds() * 1000

		intCfg := core.InteractiveConfig{}
		if n == largest {
			intCfg.Trace = tracer.StartTrace(fmt.Sprintf("mpr-int-n%d", n))
		}
		t0 = time.Now()
		intRes, err := core.ClearInteractive(parts, bidders, target, intCfg)
		if err != nil {
			return nil, err
		}
		intMS := time.Since(t0).Seconds() * 1000

		if n == largest {
			store := tsdb.New(0)
			tsdb.IngestMarketTrace(store, tracer.Events())
			match := map[string]string{"trace": fmt.Sprintf("mpr-int-n%d", n)}
			get := func(name string) []tsdb.Bucket {
				data := store.Query(tsdb.Query{
					Name: name, Match: match, Resolution: tsdb.ResRaw,
				})
				if len(data) == 0 {
					return nil
				}
				return data[0].Points
			}
			announced := get(tsdb.SeriesMarketAnnouncedPrice)
			cleared := get(tsdb.SeriesMarketClearedPrice)
			supplied := get(tsdb.SeriesMarketSuppliedW)
			final := intRes.Price
			for i := range announced {
				if i >= len(cleared) || i >= len(supplied) {
					break
				}
				errPct := 0.0
				if final != 0 {
					errPct = 100 * (cleared[i].Max - final) / final
				}
				convTbl.AddRow(int(announced[i].Start), announced[i].Max,
					cleared[i].Max, supplied[i].Max, errPct)
			}
		}
		intTotal := time.Duration(intMS*float64(time.Millisecond)) + time.Duration(intRes.Rounds)*commPerRound

		timeTbl.AddRow(n, statMS, eqlMS, optMS, dualMS, intMS, intTotal.Seconds(),
			bisectMS, indexedUS)
		iterTbl.AddRow(n, intRes.Rounds, intRes.Converged)
	}
	return &Result{ID: "f10", Title: "Fig. 10", Tables: []*stats.Table{timeTbl, iterTbl, convTbl},
		Notes: []string{
			"MPR-INT total time charges 500 ms of communication per round, as in the paper",
			"MPR-STAT uses the closed-form segmented solver; 'MPR-STAT bisect' is the legacy bisection search and 'indexed clear' the per-clear cost once the market index is built (amortized over 100 re-clears)",
			"the convergence trajectory is regenerated from recorded series: the per-round int_round trace events are ingested into a time-series store and queried back (DESIGN.md §10); price error is the cleared price's deviation from the final (Nash) price",
		}}, nil
}
