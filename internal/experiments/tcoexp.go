package experiments

import (
	"fmt"
	"math/rand"

	"mpr/internal/core"
	"mpr/internal/runner"
	"mpr/internal/sim"
	"mpr/internal/stats"
	"mpr/internal/tco"
)

func init() {
	register("x5", "Study: total cost of ownership impact (Section III-F)", runTCO)
	register("x6", "Study: priority-aware capping vs market ([32] baseline)", runPriorityBaseline)
	register("x7", "Study: job power phases vs reactive handling (Section I)", runPhases)
}

// runTCO prices the Section III-F TCO discussion with the simulation's
// measured reward payoffs and extra execution: oversubscription lowers
// the cost per delivered core-hour because infrastructure capital (UPS
// dominated) is spread over more cores.
func runTCO(o Options) (*Result, error) {
	sweep, err := gaiaSweep(o, paperOversubs, []sim.Algorithm{sim.AlgMPRStat})
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Study X5 — monthly TCO per delivered core-hour (Gaia, MPR-STAT)",
		"oversub", "cores", "infra capital $", "server capital $", "electricity $",
		"reward payoff $", "$/core-h", "saving vs 0%")
	var baseCost float64
	for _, x := range append([]float64{0}, paperOversubs...) {
		scn := tco.Scenario{BaseCores: 2004, OversubPct: x}
		if x > 0 {
			r := sweep[x][sim.AlgMPRStat]
			months := float64(r.Slots) / 60 / 720
			if months > 0 {
				scn.RewardCoreHMonth = r.PaymentCoreH / months
				scn.ExtraExecCoreHMonth = r.CostCoreH / months
			}
		}
		b, err := tco.Evaluate(tco.Params{}, scn)
		if err != nil {
			return nil, err
		}
		if x == 0 {
			baseCost = b.CostPerCoreH
		}
		saving := "—"
		if x > 0 && baseCost > 0 {
			saving = fmt.Sprintf("%.1f%%", 100*(baseCost-b.CostPerCoreH)/baseCost)
		}
		tbl.AddRow(fmt.Sprintf("%.0f%%", x), b.Cores, b.InfraCapital, b.ServerCapital,
			b.Electricity, b.RewardPayoff, b.CostPerCoreH, saving)
	}
	return &Result{ID: "x5", Title: "Study X5", Tables: []*stats.Table{tbl},
		Notes: []string{"reward payoff and extra execution taken from the measured simulation; infrastructure capital is fixed at the base build"}}, nil
}

// runPriorityBaseline compares the market against priority-aware capping
// (the related-work mechanism of hyperscale data centers, [32]): when the
// operator's priorities happen to align with performance sensitivity the
// gap narrows, but misaligned priorities cost nearly as much as blind
// uniform slowdown.
func runPriorityBaseline(o Options) (*Result, error) {
	const n = 120
	parts, _ := syntheticPool(n, o.seed())
	rng := rand.New(rand.NewSource(o.seed() + 7))

	// Aligned priorities: rank by marginal cost at half reduction
	// (cheap-to-slow jobs get low priority = cut first).
	aligned := make([]int, n)
	for i, p := range parts {
		m := p.MarginalCost(0.5 * p.MaxReduction())
		switch {
		case m < 0.5:
			aligned[i] = 0
		case m < 1.0:
			aligned[i] = 1
		case m < 2.0:
			aligned[i] = 2
		default:
			aligned[i] = 3
		}
	}
	random := make([]int, n)
	for i := range random {
		random[i] = rng.Intn(4)
	}

	tbl := stats.NewTable("Study X6 — performance cost by mechanism (120 jobs)",
		"target (kW)", "OPT", "MPR-STAT", "priority (aligned)", "priority (random)", "EQL")
	maxW := 0.0
	for _, p := range parts {
		maxW += p.WattsPerCore * p.MaxFrac * p.Cores
	}
	// The priority arrays are computed once above and only read by the
	// cells; every solver builds its own working state from the shared
	// (read-only) pool.
	fracs := []float64{0.2, 0.4, 0.6}
	type x6Row struct {
		target, opt, market, pa, pr, eql float64
	}
	rows, err := runner.Map(o.workers(), fracs, func(_ int, frac float64) (x6Row, error) {
		target := frac * maxW
		opt, err := core.SolveOPT(parts, target, core.OPTDual)
		if err != nil {
			return x6Row{}, err
		}
		market, err := core.Clear(parts, target)
		if err != nil {
			return x6Row{}, err
		}
		var marketCost float64
		for i, p := range parts {
			marketCost += p.Cost(market.Reductions[i])
		}
		pa, err := core.SolvePriority(parts, aligned, target)
		if err != nil {
			return x6Row{}, err
		}
		pr, err := core.SolvePriority(parts, random, target)
		if err != nil {
			return x6Row{}, err
		}
		eql, err := core.SolveEQL(parts, target)
		if err != nil {
			return x6Row{}, err
		}
		return x6Row{target, opt.TotalCost, marketCost, pa.TotalCost, pr.TotalCost, eql.TotalCost}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		tbl.AddRow(r.target/1000, r.opt, r.market, r.pa, r.pr, r.eql)
	}
	return &Result{ID: "x6", Title: "Study X6", Tables: []*stats.Table{tbl},
		Notes: []string{"priority capping needs the operator to know which jobs are cheap to slow; the market learns it from the bids"}}, nil
}

// runPhases quantifies Section I's motivation for reactive handling: job
// power phases make proactive per-job power prediction hard, but the
// reactive market only tracks the aggregate and handles the extra
// variance with raises.
func runPhases(o Options) (*Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Study X7 — job power phases vs reactive handling (MPR-STAT at 15%)",
		"phase amplitude", "emergencies", "market invocations (incl. raises)",
		"overload minutes", "cost (core-h)")
	amps := []float64{0, 0.05, 0.10, 0.20}
	results, err := runner.Map(o.workers(), amps, func(_ int, amp float64) (*sim.Result, error) {
		key := fmt.Sprintf("x7/%d/%d/%.2f", o.seed(), o.gaiaDays(), amp)
		return cachedRun(sim.Config{
			Trace: tr, OversubPct: 15, Algorithm: sim.AlgMPRStat, Seed: o.seed(),
			PhaseAmp: amp, Engine: o.Engine,
		}, key)
	})
	if err != nil {
		return nil, err
	}
	for i, amp := range amps {
		r := results[i]
		tbl.AddRow(fmt.Sprintf("%.0f%%", 100*amp), r.EmergencyCount,
			r.MarketInvocations, r.OverloadSlots, r.CostCoreH)
	}
	return &Result{ID: "x7", Title: "Study X7", Tables: []*stats.Table{tbl},
		Notes: []string{"the manager never models per-job phases — it reacts to the aggregate and re-clears (raises) when phases push power back up"}}, nil
}
