package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quickOpts = Options{Seed: 1, Quick: true}

func TestRegistryComplete(t *testing.T) {
	want := []string{"t1", "f1b", "f2", "f3", "f4", "f6", "f7", "f8", "f9",
		"f10", "f11", "f12", "f13", "f14", "f15", "f16", "f17",
		"a1", "a2", "a3", "a4", "a5", "a6", "x1", "x2", "x3", "x4", "x5", "x6", "x7"}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("f8")
	if err != nil || e.ID != "f8" {
		t.Errorf("ByID(f8) = %+v, %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

// Every experiment must run in quick mode and produce non-empty tables.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(quickOpts)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tb := range res.Tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %q empty", e.ID, tb.Title)
				}
				if out := tb.String(); !strings.Contains(out, tb.Headers[0]) {
					t.Errorf("%s: table render broken", e.ID)
				}
			}
		})
	}
}

// parseCell converts a table cell (possibly with % or x suffix) to float.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

// Table I shape: extra capacity dwarfs overloaded capacity, and the
// payoff shrinks as oversubscription grows.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := runTable1(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	prevPayoff := 1e18
	for _, row := range tbl.Rows {
		extra := parseCell(t, row[1])
		overCap := parseCell(t, row[4])
		payoff := parseCell(t, row[5])
		if overCap > 0 && extra/overCap < 3 {
			t.Errorf("%s: extra %.0f vs overloaded %.0f — benefit shape broken", row[0], extra, overCap)
		}
		if payoff > prevPayoff {
			t.Errorf("payoff grew with oversubscription at %s", row[0])
		}
		prevPayoff = payoff
	}
}

// Fig. 9(a) shape: EQL is the most expensive algorithm at 15-20%.
func TestFig9CostShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := runFig9(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	cost := res.Tables[0] // rows: oversub, OPT, EQL, MPR-STAT, MPR-INT
	for _, row := range cost.Rows {
		if row[0] != "15%" && row[0] != "20%" {
			continue
		}
		opt := parseCell(t, row[1])
		eql := parseCell(t, row[2])
		intr := parseCell(t, row[4])
		if opt <= 0 {
			t.Fatalf("%s: OPT cost %v — no overloads in quick trace", row[0], opt)
		}
		if eql < opt {
			t.Errorf("%s: EQL %.1f below OPT %.1f", row[0], eql, opt)
		}
		if intr > 1.7*opt {
			t.Errorf("%s: MPR-INT %.1f far above OPT %.1f", row[0], intr, opt)
		}
	}
}

// Fig. 10 shape: MPR-STAT stays fast and MPR-INT iterations stay flat as
// the pool grows.
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := runFig10(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	timeTbl, iterTbl := res.Tables[0], res.Tables[1]
	last := timeTbl.Rows[len(timeTbl.Rows)-1]
	statMS := parseCell(t, last[1])
	optMS := parseCell(t, last[3])
	if statMS > 1000 {
		t.Errorf("MPR-STAT took %.1f ms at the largest pool, want sub-second", statMS)
	}
	if optMS < statMS {
		t.Errorf("generic OPT (%.2f ms) beat MPR-STAT (%.2f ms) — scalability story broken", optMS, statMS)
	}
	first := parseCell(t, iterTbl.Rows[0][1])
	lastIter := parseCell(t, iterTbl.Rows[len(iterTbl.Rows)-1][1])
	if lastIter > 3*first+5 {
		t.Errorf("MPR-INT iterations grew: %v → %v", first, lastIter)
	}
}

// Fig. 11 shape: rewards exceed 100% of cost; manager gain ratios are
// large.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := runFig11(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	reward := res.Tables[0]
	for _, row := range reward.Rows {
		for _, cell := range row[1:] {
			if v := parseCell(t, cell); v <= 100 {
				t.Errorf("reward %s at %s not above 100%%", cell, row[0])
			}
		}
	}
	gain := res.Tables[1]
	for _, row := range gain.Rows {
		for _, cell := range row[4:] {
			if v := parseCell(t, cell); v < 5 {
				t.Errorf("gain ratio %s at %s below 5x", cell, row[0])
			}
		}
	}
}

// Fig. 17 shape: MPR eliminates nearly all overload seconds.
func TestFig17Shape(t *testing.T) {
	res, err := runFig17(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	summary := res.Tables[2]
	withoutOver := parseCell(t, summary.Rows[0][2])
	withOver := parseCell(t, summary.Rows[1][2])
	if withOver >= withoutOver/2 {
		t.Errorf("MPR overload seconds %v vs without %v — handling ineffective", withOver, withoutOver)
	}
}
