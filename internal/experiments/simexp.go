package experiments

import (
	"fmt"
	"sort"

	"mpr/internal/perf"
	"mpr/internal/power"
	"mpr/internal/runner"
	"mpr/internal/sim"
	"mpr/internal/stats"
	"mpr/internal/trace"
)

func init() {
	register("f8", "Fig. 8: impact of oversubscription on Gaia", runFig8)
	register("f9", "Fig. 9: benchmark comparison on Gaia", runFig9)
	register("f11", "Fig. 11: user rewards and HPC gain", runFig11)
	register("f12", "Fig. 12: impact of user participation", runFig12)
	register("f13", "Fig. 13: impact of cost-model errors", runFig13)
	register("f14", "Fig. 14: other workload traces (PIK, RICC, Metacentrum)", runFig14)
	register("f15", "Fig. 15: heterogeneous GPU system", runFig15)
}

var paperOversubs = []float64{5, 10, 15, 20}

func runFig8(o Options) (*Result, error) {
	sweep, err := gaiaSweep(o, paperOversubs, sim.Algorithms())
	if err != nil {
		return nil, err
	}
	over := stats.NewTable("Fig. 8(a) — overload percentage of time", "oversub",
		"OPT", "EQL", "MPR-STAT", "MPR-INT")
	hours := stats.NewTable("Fig. 8(b) — overload hours", "oversub",
		"OPT", "EQL", "MPR-STAT", "MPR-INT")
	affected := stats.NewTable("Fig. 8(c) — % of jobs affected", "oversub",
		"OPT", "EQL", "MPR-STAT", "MPR-INT")
	reduction := stats.NewTable("Fig. 8(d) — resource reduction (core-hours)", "oversub",
		"OPT", "EQL", "MPR-STAT", "MPR-INT")
	for _, x := range paperOversubs {
		rowO := []interface{}{fmt.Sprintf("%.0f%%", x)}
		rowH := []interface{}{fmt.Sprintf("%.0f%%", x)}
		rowA := []interface{}{fmt.Sprintf("%.0f%%", x)}
		rowR := []interface{}{fmt.Sprintf("%.0f%%", x)}
		for _, algo := range sim.Algorithms() {
			r := sweep[x][algo]
			rowO = append(rowO, fmt.Sprintf("%.2f%%", 100*r.OverloadFraction()))
			rowH = append(rowH, float64(r.OverloadSlots)/60)
			rowA = append(rowA, fmt.Sprintf("%.1f%%", 100*r.AffectedFraction()))
			rowR = append(rowR, r.ReductionCoreH)
		}
		over.AddRow(rowO...)
		hours.AddRow(rowH...)
		affected.AddRow(rowA...)
		reduction.AddRow(rowR...)
	}
	return &Result{ID: "f8", Title: "Fig. 8",
		Tables: []*stats.Table{over, hours, affected, reduction}}, nil
}

func runFig9(o Options) (*Result, error) {
	sweep, err := gaiaSweep(o, paperOversubs, sim.Algorithms())
	if err != nil {
		return nil, err
	}
	cost := stats.NewTable("Fig. 9(a) — total cost of performance loss (core-hours)",
		"oversub", "OPT", "EQL", "MPR-STAT", "MPR-INT")
	runtime := stats.NewTable("Fig. 9(b) — avg runtime increase of affected jobs",
		"oversub", "OPT", "EQL", "MPR-STAT", "MPR-INT")
	for _, x := range paperOversubs {
		rowC := []interface{}{fmt.Sprintf("%.0f%%", x)}
		rowR := []interface{}{fmt.Sprintf("%.0f%%", x)}
		for _, algo := range sim.Algorithms() {
			r := sweep[x][algo]
			rowC = append(rowC, r.CostCoreH)
			rowR = append(rowR, fmt.Sprintf("%.3f%%", 100*r.MeanRuntimeIncrease))
		}
		cost.AddRow(rowC...)
		runtime.AddRow(rowR...)
	}

	// Per-profile breakdown at 15% oversubscription (Figs. 9(c), 9(d)).
	red15 := stats.NewTable("Fig. 9(c) — profile-wise resource reduction at 15% (core-hours)",
		"app", "OPT", "EQL", "MPR-STAT", "MPR-INT")
	cost15 := stats.NewTable("Fig. 9(d) — profile-wise cost at 15% (core-hours)",
		"app", "OPT", "EQL", "MPR-STAT", "MPR-INT")
	var names []string
	for name := range sweep[15][sim.AlgOPT].PerProfile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rowR := []interface{}{name}
		rowC := []interface{}{name}
		for _, algo := range sim.Algorithms() {
			ps := sweep[15][algo].PerProfile[name]
			rowR = append(rowR, ps.ReductionCoreH)
			rowC = append(rowC, ps.CostCoreH)
		}
		red15.AddRow(rowR...)
		cost15.AddRow(rowC...)
	}

	// Power timeline regenerated from the recorded series store of the
	// instrumented MPR-INT run at 15% (Fig. 9(e)).
	tl, err := TimelineRun(o)
	if err != nil {
		return nil, err
	}
	timeline := timelineTable(tl.Series, 24)
	return &Result{ID: "f9", Title: "Fig. 9",
		Tables: []*stats.Table{cost, runtime, red15, cost15, timeline},
		Notes: []string{
			"the power timeline is read back from the per-slot series the instrumented MPR-INT run records (100-slot downsampled windows; see DESIGN.md §10)",
		}}, nil
}

func runFig11(o Options) (*Result, error) {
	algos := []sim.Algorithm{sim.AlgMPRStat, sim.AlgMPRInt}
	sweep, err := gaiaSweep(o, paperOversubs, algos)
	if err != nil {
		return nil, err
	}
	reward := stats.NewTable("Fig. 11(a) — user reward as % of performance cost",
		"oversub", "MPR-STAT", "MPR-INT")
	gain := stats.NewTable("Fig. 11(b) — HPC gain vs incentive payoff (core-hours)",
		"oversub", "extra capacity", "payoff STAT", "payoff INT", "gain ratio STAT", "gain ratio INT")
	for _, x := range paperOversubs {
		st, in := sweep[x][sim.AlgMPRStat], sweep[x][sim.AlgMPRInt]
		reward.AddRow(fmt.Sprintf("%.0f%%", x),
			fmt.Sprintf("%.0f%%", st.RewardPercent()),
			fmt.Sprintf("%.0f%%", in.RewardPercent()))
		gain.AddRow(fmt.Sprintf("%.0f%%", x), st.ExtraCapacityCoreH,
			st.PaymentCoreH, in.PaymentCoreH,
			fmt.Sprintf("%.0fx", st.GainRatio()), fmt.Sprintf("%.0fx", in.GainRatio()))
	}
	return &Result{ID: "f11", Title: "Fig. 11", Tables: []*stats.Table{reward, gain}}, nil
}

func runFig12(o Options) (*Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	participations := []float64{1.0, 0.9, 0.75, 0.5}
	algos := []sim.Algorithm{sim.AlgMPRStat, sim.AlgMPRInt}
	type cell struct {
		p    float64
		algo sim.Algorithm
	}
	var cells []cell
	for _, p := range participations {
		for _, algo := range algos {
			cells = append(cells, cell{p, algo})
		}
	}
	results, err := runner.Map(o.workers(), cells, func(_ int, c cell) (*sim.Result, error) {
		key := fmt.Sprintf("f12/%d/%d/%s/%.2f", o.seed(), o.gaiaDays(), c.algo, c.p)
		return cachedRun(sim.Config{
			Trace: tr, OversubPct: 15, Algorithm: c.algo,
			Seed: o.seed(), Participation: c.p, Engine: o.Engine,
		}, key)
	})
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Fig. 12 — user participation at 15% oversubscription",
		"participation", "cost STAT", "cost INT", "payoff STAT", "payoff INT")
	for i, p := range participations {
		st, in := results[2*i], results[2*i+1]
		tbl.AddRow(fmt.Sprintf("%.0f%%", 100*p),
			st.CostCoreH, in.CostCoreH, st.PaymentCoreH, in.PaymentCoreH)
	}
	return &Result{ID: "f12", Title: "Fig. 12", Tables: []*stats.Table{tbl}}, nil
}

func runFig13(o Options) (*Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	randTbl := stats.NewTable("Fig. 13(a) — random cost-estimation error at 15%",
		"error", "cost STAT", "cost INT", "reward% STAT", "reward% INT")
	underTbl := stats.NewTable("Fig. 13(b) — systematic cost underestimation at 15%",
		"underestimation", "cost STAT", "cost INT", "reward% STAT", "reward% INT")
	randErrs := []float64{0, 0.10, 0.20, 0.30}
	unders := []float64{0.10, 0.20, 0.30}
	type cell struct {
		randErr, under float64
		algo           sim.Algorithm
	}
	var cells []cell
	for _, e := range randErrs {
		cells = append(cells, cell{e, 0, sim.AlgMPRStat}, cell{e, 0, sim.AlgMPRInt})
	}
	for _, u := range unders {
		cells = append(cells, cell{0, u, sim.AlgMPRStat}, cell{0, u, sim.AlgMPRInt})
	}
	results, err := runner.Map(o.workers(), cells, func(_ int, c cell) (*sim.Result, error) {
		key := fmt.Sprintf("f13/%d/%d/%s/%.2f/%.2f", o.seed(), o.gaiaDays(), c.algo, c.randErr, c.under)
		return cachedRun(sim.Config{
			Trace: tr, OversubPct: 15, Algorithm: c.algo, Seed: o.seed(),
			CostErrorRand: c.randErr, CostErrorUnder: c.under, Engine: o.Engine,
		}, key)
	})
	if err != nil {
		return nil, err
	}
	for i, e := range randErrs {
		st, in := results[2*i], results[2*i+1]
		randTbl.AddRow(fmt.Sprintf("%.0f%%", 100*e), st.CostCoreH, in.CostCoreH,
			fmt.Sprintf("%.0f%%", st.RewardPercent()), fmt.Sprintf("%.0f%%", in.RewardPercent()))
	}
	base := 2 * len(randErrs)
	for i, u := range unders {
		st, in := results[base+2*i], results[base+2*i+1]
		underTbl.AddRow(fmt.Sprintf("%.0f%%", 100*u), st.CostCoreH, in.CostCoreH,
			fmt.Sprintf("%.0f%%", st.RewardPercent()), fmt.Sprintf("%.0f%%", in.RewardPercent()))
	}
	return &Result{ID: "f13", Title: "Fig. 13", Tables: []*stats.Table{randTbl, underTbl}}, nil
}

func runFig14(o Options) (*Result, error) {
	presets := trace.Presets(o.seed())
	names := []string{"pik", "ricc", "metacentrum"}
	algos := sim.Algorithms()
	type cell struct {
		name string
		x    float64
		algo sim.Algorithm
	}
	var cells []cell
	for _, name := range names {
		for _, x := range paperOversubs {
			for _, algo := range algos {
				cells = append(cells, cell{name, x, algo})
			}
		}
	}
	// Each cell fetches its workload through the singleflight trace
	// cache, so the three traces are generated exactly once each even
	// though 16 concurrent cells ask for every one of them.
	results, err := runner.Map(o.workers(), cells, func(_ int, c cell) (*sim.Result, error) {
		cfg := presets[c.name].WithDays(o.otherTraceDays())
		tr, err := cachedTrace(cfg)
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("f14/%s/%d/%d/%.1f/%s", c.name, o.seed(), cfg.Days, c.x, c.algo)
		return cachedRun(sim.Config{
			Trace: tr, OversubPct: c.x, Algorithm: c.algo, Seed: o.seed(),
			Engine: o.Engine,
		}, key)
	})
	if err != nil {
		return nil, err
	}
	var tables []*stats.Table
	i := 0
	for _, name := range names {
		tbl := stats.NewTable(fmt.Sprintf("Fig. 14 — cost of performance loss on %s (core-hours)", name),
			"oversub", "OPT", "EQL", "MPR-STAT", "MPR-INT")
		for _, x := range paperOversubs {
			row := []interface{}{fmt.Sprintf("%.0f%%", x)}
			for range algos {
				row = append(row, results[i].CostCoreH)
				i++
			}
			tbl.AddRow(row...)
		}
		tables = append(tables, tbl)
	}
	return &Result{ID: "f14", Title: "Fig. 14", Tables: tables}, nil
}

func runFig15(o Options) (*Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	profiles := perf.GPUProfiles()
	appPower := map[string]power.CoreModel{}
	for _, p := range profiles {
		appPower[p.Name] = power.DefaultGPUCoreModel
	}
	run := func(x float64, algo sim.Algorithm) (*sim.Result, error) {
		key := fmt.Sprintf("f15/%d/%d/%.1f/%s", o.seed(), o.gaiaDays(), x, algo)
		return cachedRun(sim.Config{
			Trace: tr, OversubPct: x, Algorithm: algo, Seed: o.seed(),
			Profiles: profiles, CoreModel: power.DefaultGPUCoreModel, AppPower: appPower,
			Engine: o.Engine,
		}, key)
	}

	// Fill the whole (oversub × algorithm) matrix in parallel first; the
	// table assembly below then reads pure cache hits in its own order.
	var cells []simCell
	for _, x := range paperOversubs {
		for _, algo := range sim.Algorithms() {
			cells = append(cells, simCell{x, algo})
		}
	}
	if _, err := runner.Map(o.workers(), cells, func(_ int, c simCell) (*sim.Result, error) {
		return run(c.x, c.algo)
	}); err != nil {
		return nil, err
	}

	cost := stats.NewTable("Fig. 15(b) — GPU system cost of performance loss (core-hours)",
		"oversub", "OPT", "EQL", "MPR-STAT", "MPR-INT", "EQL infeasible events")
	for _, x := range paperOversubs {
		row := []interface{}{fmt.Sprintf("%.0f%%", x)}
		var eqlInfeasible int
		for _, algo := range sim.Algorithms() {
			r, err := run(x, algo)
			if err != nil {
				return nil, err
			}
			row = append(row, r.CostCoreH)
			if algo == sim.AlgEQL {
				eqlInfeasible = r.InfeasibleEvents
			}
		}
		row = append(row, eqlInfeasible)
		cost.AddRow(row...)
	}

	red := stats.NewTable("Fig. 15(c) — GPU profile-wise reduction at 15% (core-hours)",
		"app", "OPT", "EQL", "MPR-STAT", "MPR-INT")
	closs := stats.NewTable("Fig. 15(d) — GPU profile-wise cost at 15% (core-hours)",
		"app", "OPT", "EQL", "MPR-STAT", "MPR-INT")
	first, err := run(15, sim.AlgOPT)
	if err != nil {
		return nil, err
	}
	var names []string
	for name := range first.PerProfile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rowR := []interface{}{name}
		rowC := []interface{}{name}
		for _, algo := range sim.Algorithms() {
			r, err := run(15, algo)
			if err != nil {
				return nil, err
			}
			ps := r.PerProfile[name]
			rowR = append(rowR, ps.ReductionCoreH)
			rowC = append(rowC, ps.CostCoreH)
		}
		red.AddRow(rowR...)
		closs.AddRow(rowC...)
	}
	return &Result{ID: "f15", Title: "Fig. 15", Tables: []*stats.Table{cost, red, closs},
		Notes: []string{"GPU 'one core' normalized to each application's max power (Section V-E)"}}, nil
}
