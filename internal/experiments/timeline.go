package experiments

import (
	"fmt"

	"mpr/internal/sim"
	"mpr/internal/stats"
	"mpr/internal/telemetry/tsdb"
)

// TimelineRun is the series-instrumented reference run behind the Fig. 9
// power timeline and the mprbench -series export: MPR-INT on the Gaia
// trace at 15% oversubscription with per-slot sampling enabled. The run
// is cached under its own key ("f9ts") so the instrumented result never
// collides with gaiaSweep's uninstrumented cells, and sampling uses
// virtual slot timestamps, so the recorded store is bit-identical at any
// worker count (DESIGN.md §9).
func TimelineRun(o Options) (*sim.Result, error) {
	tr, err := gaiaTrace(o)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("f9ts/%d/%d", o.seed(), o.gaiaDays())
	return cachedRun(sim.Config{
		Trace: tr, OversubPct: 15, Algorithm: sim.AlgMPRInt, Seed: o.seed(),
		// 1<<15 raw slots hold a quick (14-day) horizon losslessly; at the
		// full 92-day horizon the raw ring wraps but the 100× ring still
		// covers the whole run, which is all the timeline table reads.
		SampleSeries: true, SeriesCapacity: 1 << 15,
		Engine: o.Engine,
	}, key)
}

// timelineTable renders the recorded power series as the paper's Fig. 9
// power-timeline view: 100-slot downsampled windows of demand, delivered
// power, capacity, overload, and emergency duty cycle, stride-thinned to
// at most maxRows rows. All five series are sampled once per slot, so
// their bucket boundaries align and rows zip by index.
func timelineTable(st *tsdb.Store, maxRows int) *stats.Table {
	get := func(name string) []tsdb.Bucket {
		data := st.Query(tsdb.Query{
			Name: name, Resolution: tsdb.Res100, MaxPoints: maxRows,
		})
		if len(data) == 0 {
			return nil
		}
		return data[0].Points
	}
	demand := get(sim.SeriesPowerDemandW)
	delivered := get(sim.SeriesPowerDeliveredW)
	capacity := get(sim.SeriesPowerCapacityW)
	overload := get(sim.SeriesOverloadW)
	emergency := get(sim.SeriesEmergencyActive)

	tbl := stats.NewTable("Fig. 9(e) — power timeline from the recorded series (100-slot windows)",
		"slots", "demand avg (W)", "demand max (W)", "delivered max (W)",
		"capacity (W)", "overload max (W)", "emergency duty")
	for i := range demand {
		if i >= len(delivered) || i >= len(capacity) || i >= len(overload) || i >= len(emergency) {
			break
		}
		tbl.AddRow(
			fmt.Sprintf("[%d,%d]", demand[i].Start, demand[i].End),
			demand[i].Mean(), demand[i].Max, delivered[i].Max,
			capacity[i].Max, overload[i].Max,
			fmt.Sprintf("%.0f%%", 100*emergency[i].Mean()),
		)
	}
	return tbl
}
