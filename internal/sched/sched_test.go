package sched

import (
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, cores int, backfill bool) *Scheduler {
	t.Helper()
	s, err := New(cores, backfill)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadSize(t *testing.T) {
	if _, err := New(0, false); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestFCFSStartsInOrder(t *testing.T) {
	s := mustNew(t, 10, false)
	for i := 1; i <= 3; i++ {
		if err := s.Submit(Request{ID: i, Cores: 4, EstRuntime: 10}); err != nil {
			t.Fatal(err)
		}
	}
	started := s.TryStart(0)
	// 4+4 fit, third must wait.
	if len(started) != 2 || started[0].ID != 1 || started[1].ID != 2 {
		t.Fatalf("started = %+v", started)
	}
	if s.FreeCores() != 2 || s.QueueLen() != 1 || s.RunningCount() != 2 {
		t.Errorf("state: free=%d queue=%d running=%d", s.FreeCores(), s.QueueLen(), s.RunningCount())
	}
	if err := s.Finish(1); err != nil {
		t.Fatal(err)
	}
	started = s.TryStart(1)
	if len(started) != 1 || started[0].ID != 3 {
		t.Fatalf("after finish: %+v", started)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := mustNew(t, 8, false)
	if err := s.Submit(Request{ID: 1, Cores: 0}); err == nil {
		t.Error("zero cores accepted")
	}
	if err := s.Submit(Request{ID: 1, Cores: 9}); err == nil {
		t.Error("oversized job accepted")
	}
	if err := s.Submit(Request{ID: 1, Cores: 8}); err != nil {
		t.Fatal(err)
	}
	s.TryStart(0)
	if err := s.Submit(Request{ID: 1, Cores: 1}); err == nil {
		t.Error("duplicate running ID accepted")
	}
}

func TestFinishUnknown(t *testing.T) {
	s := mustNew(t, 4, false)
	if err := s.Finish(99); err == nil {
		t.Error("finishing unknown job accepted")
	}
}

func TestHaltBlocksAdmission(t *testing.T) {
	s := mustNew(t, 8, false)
	_ = s.Submit(Request{ID: 1, Cores: 2, EstRuntime: 5})
	s.Halt(true)
	if !s.Halted() {
		t.Error("halted flag")
	}
	if got := s.TryStart(0); got != nil {
		t.Errorf("started during halt: %+v", got)
	}
	s.Halt(false)
	if got := s.TryStart(0); len(got) != 1 {
		t.Errorf("not started after resume: %+v", got)
	}
}

func TestNoBackfillHeadBlocks(t *testing.T) {
	s := mustNew(t, 10, false)
	_ = s.Submit(Request{ID: 1, Cores: 8, EstRuntime: 100})
	s.TryStart(0)
	_ = s.Submit(Request{ID: 2, Cores: 4, EstRuntime: 100}) // blocked head
	_ = s.Submit(Request{ID: 3, Cores: 1, EstRuntime: 1})   // would fit
	if got := s.TryStart(1); len(got) != 0 {
		t.Errorf("FCFS without backfill must not jump the head: %+v", got)
	}
}

func TestEASYBackfillShortJobJumps(t *testing.T) {
	s := mustNew(t, 10, true)
	_ = s.Submit(Request{ID: 1, Cores: 8, EstRuntime: 100})
	s.TryStart(0)
	// Head needs 4 cores → must wait until job 1 ends at t=100.
	_ = s.Submit(Request{ID: 2, Cores: 4, EstRuntime: 50})
	// Job 3 fits now (2 free) and ends at 0+90 ≤ 100: backfillable.
	_ = s.Submit(Request{ID: 3, Cores: 2, EstRuntime: 90})
	started := s.TryStart(0)
	if len(started) != 1 || started[0].ID != 3 {
		t.Fatalf("backfill started = %+v", started)
	}
	// Queue head still waiting.
	if s.QueueLen() != 1 {
		t.Errorf("queue len = %d", s.QueueLen())
	}
}

func TestEASYBackfillRespectsReservation(t *testing.T) {
	s := mustNew(t, 10, true)
	_ = s.Submit(Request{ID: 1, Cores: 8, EstRuntime: 100})
	s.TryStart(0)
	_ = s.Submit(Request{ID: 2, Cores: 10, EstRuntime: 50}) // head: needs all cores at t=100
	// Job 3 fits now but runs past the shadow time and would use cores
	// the reservation needs (spare at shadow = 0) → must not start.
	_ = s.Submit(Request{ID: 3, Cores: 2, EstRuntime: 500})
	if started := s.TryStart(0); len(started) != 0 {
		t.Fatalf("backfill violated reservation: %+v", started)
	}
	// A long job that fits within the spare cores at shadow time may
	// start: head needs only 4 of 10, so 6 cores are spare.
	s2 := mustNew(t, 10, true)
	_ = s2.Submit(Request{ID: 1, Cores: 8, EstRuntime: 100})
	s2.TryStart(0)
	_ = s2.Submit(Request{ID: 2, Cores: 4, EstRuntime: 50})
	_ = s2.Submit(Request{ID: 3, Cores: 2, EstRuntime: 500})
	if started := s2.TryStart(0); len(started) != 1 || started[0].ID != 3 {
		t.Fatalf("spare-core backfill failed: %+v", started)
	}
}

func TestExtendRuntime(t *testing.T) {
	s := mustNew(t, 10, true)
	_ = s.Submit(Request{ID: 1, Cores: 8, EstRuntime: 100})
	s.TryStart(0)
	// Emergency stretched job 1 to end at 200; a backfill candidate that
	// ends at 150 (> old shadow 100, < new 200) should now be admitted
	// against the new shadow only if it still fits.
	s.ExtendRuntime(1, 200)
	_ = s.Submit(Request{ID: 2, Cores: 4, EstRuntime: 50})
	_ = s.Submit(Request{ID: 3, Cores: 2, EstRuntime: 150})
	started := s.TryStart(0)
	if len(started) != 1 || started[0].ID != 3 {
		t.Fatalf("started = %+v", started)
	}
	// Extending an unknown job is a no-op.
	s.ExtendRuntime(999, 1)
}

// Invariant: cores never over-allocated, free cores never negative, and
// everything is conserved across random workloads.
func TestRandomizedConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		backfill := trial%2 == 0
		s := mustNew(t, 64, backfill)
		active := map[int]int{} // id → cores
		nextID := 1
		for step := int64(0); step < 200; step++ {
			// Random submits.
			for k := 0; k < rng.Intn(4); k++ {
				c := 1 << rng.Intn(6)
				_ = s.Submit(Request{ID: nextID, Cores: c, EstRuntime: int64(1 + rng.Intn(50))})
				nextID++
			}
			// Random finishes.
			for id := range active {
				if rng.Float64() < 0.2 {
					if err := s.Finish(id); err != nil {
						t.Fatal(err)
					}
					delete(active, id)
				}
			}
			// Random halts.
			s.Halt(rng.Float64() < 0.1)
			for _, r := range s.TryStart(step) {
				active[r.ID] = r.Cores
			}
			used := 0
			for _, c := range active {
				used += c
			}
			if used+s.FreeCores() != 64 {
				t.Fatalf("core accounting broken: used=%d free=%d", used, s.FreeCores())
			}
			if s.FreeCores() < 0 {
				t.Fatal("negative free cores")
			}
			if s.RunningCount() != len(active) {
				t.Fatalf("running count %d != %d", s.RunningCount(), len(active))
			}
		}
	}
}

// TestBackfillShadowTieDeterministic pins the shadow computation against
// map-iteration nondeterminism: when several running jobs share an
// expected end, the spare-core accounting (and with it every backfill
// decision) must come out identical on every run. The tie scenario is
// rebuilt many times so a map-order dependence cannot hide behind a
// lucky iteration order.
func TestBackfillShadowTieDeterministic(t *testing.T) {
	build := func() []int {
		s, err := New(32, true)
		if err != nil {
			t.Fatal(err)
		}
		// Two jobs with the same expected end (the tie), then a wide head
		// that must wait for both, then a short job whose backfill
		// eligibility hinges on the spare cores at the shadow time.
		for _, r := range []Request{
			{ID: 1, Cores: 20, EstRuntime: 177},
			{ID: 2, Cores: 4, EstRuntime: 177},
			{ID: 3, Cores: 26, EstRuntime: 50},
		} {
			if err := s.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
		s.TryStart(0) // starts 1 and 2 (backfill), leaves 3 queued
		if err := s.Submit(Request{ID: 4, Cores: 4, EstRuntime: 500}); err != nil {
			t.Fatal(err)
		}
		var ids []int
		for _, r := range s.TryStart(11) {
			ids = append(ids, r.ID)
		}
		return ids
	}
	first := build()
	for i := 1; i < 100; i++ {
		if got := build(); len(got) != len(first) || (len(got) > 0 && got[0] != first[0]) {
			t.Fatalf("run %d backfilled %v, first run %v — shadow ties depend on map order", i, got, first)
		}
	}
}
