// Package sched is the job-scheduling substrate of the MPR reproduction:
// core accounting, an FCFS queue with optional EASY backfill, and the
// emergency admission halt of Section III-E ("During a power emergency,
// MPR also temporarily halts starting any new HPC job execution").
//
// MPR deliberately keeps the scheduler simple — the paper's point is that
// reactive overload handling frees the scheduler from power-aware
// bin-packing — so this scheduler only manages cores, not power.
package sched

import (
	"fmt"
	"sort"
)

// Request describes a job waiting to start.
type Request struct {
	// ID identifies the job.
	ID int
	// Cores is the number of cores the job needs.
	Cores int
	// EstRuntime is the user's runtime estimate (any consistent unit;
	// the simulator uses minutes). Used only for backfill reservations.
	EstRuntime int64
}

// running tracks a started job for backfill shadow-time computation.
type running struct {
	id          int
	cores       int
	expectedEnd int64
}

// Scheduler is an FCFS scheduler with core accounting, optional EASY
// backfill, and an admission halt switch.
type Scheduler struct {
	totalCores int
	freeCores  int
	backfill   bool
	halted     bool

	queue   []Request
	running map[int]running
}

// New creates a scheduler for a cluster with the given core count.
func New(totalCores int, backfill bool) (*Scheduler, error) {
	if totalCores <= 0 {
		return nil, fmt.Errorf("sched: total cores must be positive, got %d", totalCores)
	}
	return &Scheduler{
		totalCores: totalCores,
		freeCores:  totalCores,
		backfill:   backfill,
		running:    make(map[int]running),
	}, nil
}

// Submit queues a job request (FCFS order).
func (s *Scheduler) Submit(r Request) error {
	if r.Cores <= 0 {
		return fmt.Errorf("sched: job %d requests %d cores", r.ID, r.Cores)
	}
	if r.Cores > s.totalCores {
		return fmt.Errorf("sched: job %d requests %d cores on a %d-core system", r.ID, r.Cores, s.totalCores)
	}
	if _, ok := s.running[r.ID]; ok {
		return fmt.Errorf("sched: job %d already running", r.ID)
	}
	s.queue = append(s.queue, r)
	return nil
}

// Halt pauses (true) or resumes (false) job admission — the emergency
// admission halt.
func (s *Scheduler) Halt(h bool) { s.halted = h }

// Halted reports the admission state.
func (s *Scheduler) Halted() bool { return s.halted }

// FreeCores reports currently unallocated cores.
func (s *Scheduler) FreeCores() int { return s.freeCores }

// QueueLen reports the number of waiting jobs.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// RunningCount reports the number of started, unfinished jobs.
func (s *Scheduler) RunningCount() int { return len(s.running) }

// Finish releases a running job's cores.
func (s *Scheduler) Finish(id int) error {
	r, ok := s.running[id]
	if !ok {
		return fmt.Errorf("sched: finishing unknown job %d", id)
	}
	delete(s.running, id)
	s.freeCores += r.cores
	return nil
}

// ExtendRuntime updates a running job's expected end (the simulator calls
// this when a power emergency stretches execution). Unknown jobs are
// ignored: the job may have finished in the same slot.
func (s *Scheduler) ExtendRuntime(id int, newExpectedEnd int64) {
	if r, ok := s.running[id]; ok {
		r.expectedEnd = newExpectedEnd
		s.running[id] = r
	}
}

// TryStart starts as many queued jobs as admission, core availability,
// and the backfill policy allow, and returns them in start order. now is
// the current time in the same unit as EstRuntime.
func (s *Scheduler) TryStart(now int64) []Request {
	return s.TryStartBudget(now, s.totalCores)
}

// TryStartBudget is TryStart with an additional cap on the total cores
// started this call — the power-headroom admission gate of predictive
// overload avoidance: the caller converts its remaining watts of
// headroom into a core budget so a batch of starts cannot jump the
// system over its capacity in one slot.
func (s *Scheduler) TryStartBudget(now int64, coreBudget int) []Request {
	if s.halted || coreBudget <= 0 {
		return nil
	}
	var started []Request

	// Plain FCFS from the head.
	for len(s.queue) > 0 && s.queue[0].Cores <= s.freeCores && s.queue[0].Cores <= coreBudget {
		r := s.queue[0]
		s.queue = s.queue[1:]
		s.start(r, now)
		coreBudget -= r.Cores
		started = append(started, r)
	}
	if len(s.queue) == 0 || !s.backfill {
		return started
	}

	// EASY backfill: reserve a shadow time for the queue head, then let
	// later jobs jump ahead only if they cannot delay that reservation.
	head := s.queue[0]
	shadow, spareAtShadow := s.shadow(head)
	kept := s.queue[:1]
	for _, r := range s.queue[1:] {
		fitsNow := r.Cores <= s.freeCores && r.Cores <= coreBudget
		endsBeforeShadow := now+r.EstRuntime <= shadow
		fitsSpare := r.Cores <= spareAtShadow
		if fitsNow && (endsBeforeShadow || fitsSpare) {
			s.start(r, now)
			coreBudget -= r.Cores
			started = append(started, r)
			if !endsBeforeShadow {
				spareAtShadow -= r.Cores
			}
		} else {
			kept = append(kept, r)
		}
	}
	s.queue = append([]Request(nil), kept...)
	return started
}

func (s *Scheduler) start(r Request, now int64) {
	s.freeCores -= r.Cores
	s.running[r.ID] = running{id: r.ID, cores: r.Cores, expectedEnd: now + r.EstRuntime}
}

// shadow computes when the queue head will have enough free cores
// (assuming running jobs end at their expected ends) and how many cores
// will be spare at that time beyond the head's needs.
func (s *Scheduler) shadow(head Request) (shadowTime int64, spare int) {
	ends := make([]running, 0, len(s.running))
	for _, r := range s.running {
		ends = append(ends, r)
	}
	// The running set is a map; ties on expectedEnd must order by id or
	// `spare` — and with it every backfill decision — would depend on map
	// iteration order.
	sort.Slice(ends, func(a, b int) bool {
		if ends[a].expectedEnd != ends[b].expectedEnd {
			return ends[a].expectedEnd < ends[b].expectedEnd
		}
		return ends[a].id < ends[b].id
	})
	free := s.freeCores
	for _, r := range ends {
		if free >= head.Cores {
			break
		}
		free += r.cores
		shadowTime = r.expectedEnd
	}
	spare = free - head.Cores
	if spare < 0 {
		spare = 0
	}
	return shadowTime, spare
}
