package forecast

import (
	"math"
	"testing"
	"testing/quick"

	"mpr/internal/check/floats"
)

func mustNew(t *testing.T, cfg Config) *Forecaster {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{LevelAlpha: 2}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := New(Config{TrendBeta: -0.1}); err == nil {
		t.Error("negative beta accepted")
	}
	if _, err := New(Config{Period: -5}); err == nil {
		t.Error("negative period accepted")
	}
	f := mustNew(t, Config{})
	if f.cfg.Period != 1440 {
		t.Errorf("default period = %d", f.cfg.Period)
	}
}

func TestConstantSeries(t *testing.T) {
	f := mustNew(t, Config{Period: 10})
	for i := 0; i < 100; i++ {
		f.Observe(500)
	}
	for _, h := range []int{1, 5, 20} {
		if v := f.Predict(h); !floats.AbsEqual(v, 500, 1) {
			t.Errorf("Predict(%d) = %v on constant 500", h, v)
		}
	}
}

func TestLinearTrend(t *testing.T) {
	f := mustNew(t, Config{Period: 10, SeasonGamma: 0.001})
	for i := 0; i < 300; i++ {
		f.Observe(100 + 2*float64(i))
	}
	// Next value should be ~100 + 2*300 = 700; 10 ahead ~718.
	if v := f.Predict(1); !floats.AbsEqual(v, 702, 20) {
		t.Errorf("Predict(1) = %v, want ~702", v)
	}
	if v10, v1 := f.Predict(10), f.Predict(1); v10 <= v1 {
		t.Errorf("trend not extrapolated: %v <= %v", v10, v1)
	}
}

func TestDiurnalPattern(t *testing.T) {
	const period = 48
	f := mustNew(t, Config{Period: period, SeasonGamma: 0.2})
	wave := func(i int) float64 {
		return 1000 + 200*math.Sin(2*math.Pi*float64(i%period)/period)
	}
	for i := 0; i < 30*period; i++ {
		f.Observe(wave(i))
	}
	// After many periods, one-step forecasts should track the wave.
	var errSum float64
	n := 30 * period
	for h := 1; h <= period; h++ {
		pred := f.Predict(h)
		truth := wave(n + h - 1)
		errSum += math.Abs(pred - truth)
	}
	if mean := errSum / period; mean > 40 {
		t.Errorf("mean absolute error %v over one period, want < 40", mean)
	}
}

func TestPredictMaxCoversPeak(t *testing.T) {
	const period = 24
	f := mustNew(t, Config{Period: period, SeasonGamma: 0.3})
	wave := func(i int) float64 {
		return 1000 + 300*math.Sin(2*math.Pi*float64(i%period)/period)
	}
	for i := 0; i < 40*period; i++ {
		f.Observe(wave(i))
	}
	// The max over a full period must anticipate the crest well above
	// the 1000 mean (exponential smoothing damps part of the amplitude).
	if v := f.PredictMax(period); v < 1100 {
		t.Errorf("PredictMax = %v, want well above the 1000 mean", v)
	}
	if f.PredictMax(1) != f.Predict(1) {
		t.Error("PredictMax(1) should equal Predict(1)")
	}
}

func TestNotReadyFallsBack(t *testing.T) {
	f := mustNew(t, Config{Period: 5})
	if f.Ready() {
		t.Error("ready with no data")
	}
	f.Observe(700)
	if v := f.Predict(3); !floats.AbsEqual(v, 700, 1e-9) {
		t.Errorf("unready prediction = %v, want last value", v)
	}
	for i := 0; i < 4; i++ {
		f.Observe(700)
	}
	if !f.Ready() {
		t.Error("not ready after a full period")
	}
	if f.Observations() != 5 {
		t.Errorf("observations = %d", f.Observations())
	}
}

func TestPredictClampsHorizon(t *testing.T) {
	f := mustNew(t, Config{Period: 5})
	for i := 0; i < 10; i++ {
		f.Observe(100)
	}
	if f.Predict(0) != f.Predict(1) {
		t.Error("Predict(0) should clamp to 1")
	}
	if f.PredictMax(0) != f.Predict(1) {
		t.Error("PredictMax(0) should clamp to 1")
	}
}

// Property: predictions stay finite for arbitrary bounded inputs.
func TestPredictionFinite(t *testing.T) {
	prop := func(raw []float64) bool {
		f, err := New(Config{Period: 7})
		if err != nil {
			return false
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			f.Observe(math.Mod(v, 1e6))
		}
		for h := 1; h <= 10; h++ {
			v := f.Predict(h)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
