// Package forecast implements short-horizon power forecasting for
// predictive market invocation. Section III-D of the MPR paper notes that
// "to better accommodate MPR-INT, the HPC manager can invoke the market
// early by predicting power overloads and estimating the power/resource
// reduction goals" — this package provides that predictor.
//
// The model is Holt's double exponential smoothing (level + trend)
// augmented with an additive diurnal profile: HPC power has strong daily
// periodicity (Fig. 6), so the forecaster learns a per-time-of-day offset
// in addition to the short-term trend. Everything is O(1) per observation
// and per query — it runs every simulator slot.
package forecast

import (
	"fmt"
	"math"
)

// Config parameterizes the forecaster. Zero values select defaults.
type Config struct {
	// LevelAlpha is the smoothing factor of the level term (default 0.3).
	LevelAlpha float64
	// TrendBeta is the smoothing factor of the trend term (default 0.1).
	TrendBeta float64
	// SeasonGamma is the smoothing factor of the diurnal profile
	// (default 0.05).
	SeasonGamma float64
	// Period is the season length in observations (default 1440 — one
	// day of one-minute slots).
	Period int
	// Phi damps the trend over multi-step forecasts (default 0.85):
	// an h-step forecast extrapolates trend·(φ + φ² + … + φʰ), the
	// standard damped-trend correction that keeps long-horizon
	// predictions of periodic signals from diverging.
	Phi float64
}

func (c *Config) normalize() error {
	if c.LevelAlpha == 0 {
		c.LevelAlpha = 0.3
	}
	if c.TrendBeta == 0 {
		c.TrendBeta = 0.1
	}
	if c.SeasonGamma == 0 {
		c.SeasonGamma = 0.05
	}
	if c.Period == 0 {
		c.Period = 1440
	}
	if c.Phi == 0 {
		c.Phi = 0.85
	}
	if c.Phi < 0 || c.Phi > 1 {
		return fmt.Errorf("forecast: trend damping must be in [0,1], got %v", c.Phi)
	}
	for _, v := range []float64{c.LevelAlpha, c.TrendBeta, c.SeasonGamma} {
		if v < 0 || v > 1 {
			return fmt.Errorf("forecast: smoothing factors must be in [0,1], got %v", v)
		}
	}
	if c.Period < 1 {
		return fmt.Errorf("forecast: period must be positive, got %d", c.Period)
	}
	return nil
}

// Forecaster is a Holt-Winters-style additive seasonal predictor.
//
// The first full period is buffered and used to initialize the
// decomposition (level = period mean, season = deviations from it);
// starting the recursion from zeros instead lets the level absorb the
// seasonality and destabilizes the trend.
type Forecaster struct {
	cfg    Config
	level  float64
	trend  float64
	season []float64
	warmup []float64 // first-period buffer; nil once initialized
	n      int       // observations seen
	idx    int       // position within the period

	lastPred1 float64 // one-step forecast made at the previous Observe
	havePred1 bool
	resVar    float64 // EWMA of squared one-step residuals
}

// New builds a forecaster.
func New(cfg Config) (*Forecaster, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Forecaster{
		cfg:    cfg,
		season: make([]float64, cfg.Period),
		warmup: make([]float64, 0, cfg.Period),
	}, nil
}

// Observations reports how many samples the forecaster has seen.
func (f *Forecaster) Observations() int { return f.n }

// Ready reports whether the forecaster has completed its first-period
// initialization.
func (f *Forecaster) Ready() bool { return f.warmup == nil }

// Observe feeds one sample. Samples must arrive at a fixed cadence
// matching the configured period.
func (f *Forecaster) Observe(v float64) {
	c := f.cfg
	if f.warmup != nil {
		f.level = v // last value, for pre-initialization predictions
		f.warmup = append(f.warmup, v)
		f.n++
		if len(f.warmup) == c.Period {
			mean := 0.0
			for _, w := range f.warmup {
				mean += w
			}
			mean /= float64(c.Period)
			f.level = mean
			f.trend = 0
			for i, w := range f.warmup {
				f.season[i] = w - mean
			}
			f.warmup = nil
			f.idx = 0
		}
		return
	}
	if f.havePred1 {
		r := v - f.lastPred1
		f.resVar = 0.05*r*r + 0.95*f.resVar
	}
	s := f.season[f.idx]
	deseason := v - s
	prevLevel := f.level
	f.level = c.LevelAlpha*deseason + (1-c.LevelAlpha)*(f.level+f.trend)
	f.trend = c.TrendBeta*(f.level-prevLevel) + (1-c.TrendBeta)*f.trend
	f.season[f.idx] = c.SeasonGamma*(v-f.level) + (1-c.SeasonGamma)*s
	f.idx = (f.idx + 1) % c.Period
	f.n++
	f.lastPred1 = f.Predict(1)
	f.havePred1 = true
}

// ResidualStd estimates the one-step forecast error's standard deviation
// from an exponentially weighted residual variance.
func (f *Forecaster) ResidualStd() float64 { return math.Sqrt(f.resVar) }

// PredictUpper returns an upper-confidence forecast: Predict(ahead) plus
// z one-step standard deviations scaled by √ahead (the random-walk error
// growth). Overload anticipation uses this so the cleared reduction
// covers forecast error.
func (f *Forecaster) PredictUpper(ahead int, z float64) float64 {
	if ahead < 1 {
		ahead = 1
	}
	return f.Predict(ahead) + z*f.ResidualStd()*math.Sqrt(float64(ahead))
}

// PredictMaxUpper returns the maximum upper-confidence forecast over the
// next horizon observations.
func (f *Forecaster) PredictMaxUpper(horizon int, z float64) float64 {
	if horizon < 1 {
		horizon = 1
	}
	max := math.Inf(-1)
	for h := 1; h <= horizon; h++ {
		if v := f.PredictUpper(h, z); v > max {
			max = v
		}
	}
	return max
}

// Predict forecasts the value `ahead` observations into the future
// (ahead >= 1). Before the forecaster is Ready it returns the last level.
func (f *Forecaster) Predict(ahead int) float64 {
	if ahead < 1 {
		ahead = 1
	}
	if !f.Ready() {
		return f.level
	}
	seasonIdx := (f.idx + ahead - 1) % f.cfg.Period
	// Damped trend: Σ_{i=1..h} φ^i = φ(1−φ^h)/(1−φ).
	phi := f.cfg.Phi
	trendSum := float64(ahead)
	if phi < 1 {
		trendSum = phi * (1 - math.Pow(phi, float64(ahead))) / (1 - phi)
	}
	v := f.level + trendSum*f.trend + f.season[seasonIdx]
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return f.level
	}
	return v
}

// PredictMax returns the maximum forecast over the next `horizon`
// observations — the conservative query overload prediction uses.
func (f *Forecaster) PredictMax(horizon int) float64 {
	if horizon < 1 {
		horizon = 1
	}
	max := math.Inf(-1)
	for h := 1; h <= horizon; h++ {
		if v := f.Predict(h); v > max {
			max = v
		}
	}
	return max
}
