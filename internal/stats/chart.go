package stats

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders small ASCII visualizations for the command-line tools:
// line charts for power timelines (Figs. 6, 17(a)), horizontal bars for
// per-application comparisons (Figs. 9(c), 17(b)), and sparklines for
// compact series previews.

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode sparkline.
func Sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vs {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// LineChart renders a series as a fixed-size ASCII chart with a y-axis
// and an optional horizontal threshold line (e.g. the power capacity).
func LineChart(title string, s *Series, width, height int, threshold float64) string {
	if s == nil || s.Len() == 0 || width < 8 || height < 3 {
		return title + ": (no data)\n"
	}
	ds := s.Downsample(width)
	lo, hi := ds.V[0], ds.V[0]
	for _, v := range ds.V {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if threshold > 0 {
		if threshold < lo {
			lo = threshold
		}
		if threshold > hi {
			hi = threshold
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	// Pad the range slightly so extremes stay visible.
	pad := 0.05 * (hi - lo)
	lo -= pad
	hi += pad

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", len(ds.V)))
	}
	rowOf := func(v float64) int {
		r := int((hi - v) / (hi - lo) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	if threshold > 0 {
		tr := rowOf(threshold)
		for c := range grid[tr] {
			grid[tr][c] = '┄'
		}
	}
	for c, v := range ds.V {
		grid[rowOf(v)][c] = '●'
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for r := 0; r < height; r++ {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%8.4g", hi)
		case height - 1:
			label = fmt.Sprintf("%8.4g", lo)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s ┤%s\n", label, string(grid[r]))
	}
	return b.String()
}

// BarChart renders labeled horizontal bars scaled to the maximum value.
func BarChart(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 || width < 4 {
		return title + ": (no data)\n"
	}
	maxV := values[0]
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-*s │%s %.4g\n", maxLabel, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}
