package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mpr/internal/check/floats"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Errorf("summary = %+v", s)
	}
	if !floats.AbsEqual(s.Mean, 2.5, 1e-12) {
		t.Errorf("mean = %v", s.Mean)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if !floats.AbsEqual(s.Stddev, want, 1e-12) {
		t.Errorf("stddev = %v, want %v", s.Stddev, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !floats.AbsEqual(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFTail(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.Tail(2); !floats.AbsEqual(got, 0.5, 1e-12) {
		t.Errorf("Tail(2) = %v, want 0.5", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if q := c.Quantile(0.5); q != 30 {
		t.Errorf("median = %v, want 30", q)
	}
	if q := c.Quantile(0); q != 10 {
		t.Errorf("q0 = %v, want 10", q)
	}
	if q := c.Quantile(1); q != 50 {
		t.Errorf("q1 = %v, want 50", q)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Error("empty CDF At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF quantile should be NaN")
	}
	if xs, ps := c.Points(5); xs != nil || ps != nil {
		t.Error("empty CDF points should be nil")
	}
}

// Property: CDF.At is monotone non-decreasing and in [0,1]; quantile and At
// are approximately inverse.
func TestCDFProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		sort.Float64s(xs)
		prev := -1.0
		for _, x := range xs {
			p := c.At(x)
			if p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		// Quantile stays within the sample range.
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
			q := c.Quantile(p)
			if q < xs[0] || q > xs[len(xs)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	xs, ps := c.Points(5)
	if len(xs) != 5 || len(ps) != 5 {
		t.Fatalf("points: %v %v", xs, ps)
	}
	if ps[0] != 0 || ps[4] != 1 {
		t.Errorf("p range = %v", ps)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Errorf("xs not sorted: %v", xs)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for i := int64(0); i < 10; i++ {
		s.Append(i, float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Max() != 9 {
		t.Errorf("max = %v", s.Max())
	}
	if !floats.AbsEqual(s.Mean(), 4.5, 1e-12) {
		t.Errorf("mean = %v", s.Mean())
	}
	if f := s.FractionAbove(4.5); !floats.AbsEqual(f, 0.5, 1e-12) {
		t.Errorf("fractionAbove = %v", f)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Mean() != 0 || s.FractionAbove(0) != 0 {
		t.Error("empty series stats should be zero")
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := int64(0); i < 100; i++ {
		s.Append(i, 1.0)
	}
	d := s.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled len = %d", d.Len())
	}
	for _, v := range d.V {
		if !floats.AbsEqual(v, 1.0, 1e-12) {
			t.Errorf("bucket mean = %v, want 1", v)
		}
	}
	// Downsample to more points than exist: identity copy.
	d2 := s.Downsample(1000)
	if d2.Len() != 100 {
		t.Errorf("identity downsample len = %d", d2.Len())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("p50 = %v", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Ensure input not mutated.
	if xs[0] != 5 {
		t.Error("Percentile mutated input")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "A", "Metric")
	tb.AddRow("x", 1.23456)
	tb.AddRow("longer-cell", 42)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "longer-cell") {
		t.Errorf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Errorf("float formatting: %s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("MD", "A", "B")
	tb.AddRow("x", 1.5)
	md := tb.Markdown()
	if !strings.Contains(md, "**MD**") || !strings.Contains(md, "| A | B |") ||
		!strings.Contains(md, "| --- | --- |") || !strings.Contains(md, "| x | 1.5 |") {
		t.Errorf("markdown render:\n%s", md)
	}
}
