package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned ASCII table used by the benchmark
// harness to print paper-style tables and figure series.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavored Markdown (used by the
// EXPERIMENTS.md generator).
func (t *Table) Markdown() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %s |", c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	for i, h := range t.Headers {
		if len(h) > width[i] {
			width[i] = len(h)
		}
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
