// Package stats provides the statistical primitives used by the MPR
// reproduction: empirical CDFs for cluster-utilization analysis (Fig. 1(b)),
// percentiles, summary statistics, and down-sampled time series for the
// timeline figures (Figs. 6 and 17).
package stats

import (
	"math"
	"sort"
)

// Summary holds the usual scalar statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	Sum    float64
}

// Summarize computes a Summary over xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(s.N))
	return s
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-th quantile (p in [0,1]) using nearest-rank.
func (c *CDF) Quantile(p float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[n-1]
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return c.sorted[i]
}

// Tail returns P(X > x) — the overload-probability form used by Table I.
func (c *CDF) Tail(x float64) float64 { return 1 - c.At(x) }

// Len reports the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// Points returns (x, P(X<=x)) pairs sampled at k evenly spaced quantile
// ranks, suitable for plotting a CDF curve with k points.
func (c *CDF) Points(k int) (xs, ps []float64) {
	if k < 2 || len(c.sorted) == 0 {
		return nil, nil
	}
	xs = make([]float64, k)
	ps = make([]float64, k)
	for i := 0; i < k; i++ {
		p := float64(i) / float64(k-1)
		xs[i] = c.Quantile(p)
		ps[i] = p
	}
	return xs, ps
}

// Series is a time series of (t, v) samples with integer timestamps
// (simulation minutes).
type Series struct {
	T []int64
	V []float64
}

// Append adds a sample.
func (s *Series) Append(t int64, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Downsample reduces the series to at most k points by bucket-averaging,
// preserving the overall shape for timeline figures.
func (s *Series) Downsample(k int) *Series {
	n := len(s.T)
	if k <= 0 || n <= k {
		out := &Series{T: append([]int64(nil), s.T...), V: append([]float64(nil), s.V...)}
		return out
	}
	out := &Series{T: make([]int64, 0, k), V: make([]float64, 0, k)}
	per := float64(n) / float64(k)
	for b := 0; b < k; b++ {
		lo := int(float64(b) * per)
		hi := int(float64(b+1) * per)
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		var sv float64
		var st int64
		for i := lo; i < hi; i++ {
			sv += s.V[i]
			st += s.T[i]
		}
		cnt := float64(hi - lo)
		out.T = append(out.T, st/int64(hi-lo))
		out.V = append(out.V, sv/cnt)
	}
	return out
}

// Max returns the maximum value of the series, or 0 when empty.
func (s *Series) Max() float64 {
	m := 0.0
	for i, v := range s.V {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average value of the series, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.V) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// FractionAbove reports the fraction of samples strictly above threshold —
// the "overload percentage of time" metric of Fig. 8(a).
func (s *Series) FractionAbove(threshold float64) float64 {
	if len(s.V) == 0 {
		return 0
	}
	n := 0
	for _, v := range s.V {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(s.V))
}

// Percentile computes the p-th percentile (p in [0,100]) of xs without
// building a CDF. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := NewCDF(xs)
	return c.Quantile(p / 100)
}
