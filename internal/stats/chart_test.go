package stats

import (
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("len = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("sparkline = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	// Constant series: all minimum glyphs, no panic.
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestLineChart(t *testing.T) {
	var s Series
	for i := int64(0); i < 100; i++ {
		s.Append(i, float64(i%20))
	}
	out := LineChart("power", &s, 40, 8, 15)
	if !strings.Contains(out, "power") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "●") {
		t.Error("missing data points")
	}
	if !strings.Contains(out, "┄") {
		t.Error("missing threshold line")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // title + 8 rows
		t.Errorf("line count = %d", len(lines))
	}
	// Degenerate inputs.
	if out := LineChart("x", nil, 40, 8, 0); !strings.Contains(out, "no data") {
		t.Error("nil series should render placeholder")
	}
	if out := LineChart("x", &s, 2, 8, 0); !strings.Contains(out, "no data") {
		t.Error("tiny width should render placeholder")
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	var s Series
	for i := int64(0); i < 10; i++ {
		s.Append(i, 42)
	}
	out := LineChart("", &s, 20, 4, 0)
	if !strings.Contains(out, "●") {
		t.Errorf("constant series render:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("apps", []string{"XSBench", "HPCCG"}, []float64{2, 4}, 10)
	if !strings.Contains(out, "apps") || !strings.Contains(out, "XSBench") {
		t.Errorf("bar chart:\n%s", out)
	}
	// HPCCG (max) gets the full width, XSBench half.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[2], "█") != 10 {
		t.Errorf("max bar = %q", lines[2])
	}
	if c := strings.Count(lines[1], "█"); c != 5 {
		t.Errorf("half bar = %d blocks", c)
	}
	if out := BarChart("x", []string{"a"}, nil, 10); !strings.Contains(out, "no data") {
		t.Error("mismatched input should render placeholder")
	}
}
