// Package runner is the deterministic parallel executor for the
// experiment run-matrix: it fans independent simulation cells — one
// (trace, oversubscription, algorithm, seed, config-variant) point of a
// sweep — across a bounded worker pool while guaranteeing that the
// *outputs* are indistinguishable from a serial run.
//
// The determinism contract (DESIGN.md §9):
//
//  1. Position-addressed results. Map/MapN write cell i's result into
//     slot i of the output slice, no matter which worker ran the cell or
//     in which order cells finished. A caller that assembles its tables
//     by iterating the output slice in index order therefore renders
//     byte-for-byte the same tables at any worker count.
//  2. Key-derived randomness. A cell that needs its own RNG stream
//     derives the seed from a stable identity — its matrix coordinates
//     (the experiments' cache keys) or CellSeed over a key string —
//     never from submission order, worker identity, or shared RNG state.
//  3. Deterministic error selection. When cells fail, the error of the
//     failing cell with the lowest index is returned, so a parallel run
//     reports the same failure a serial run would have stopped at
//     whenever that cell executed. The first observed failure cancels
//     all still-queued cells; cells already in flight run to completion
//     (a cell function cannot be interrupted), and none of their results
//     are returned.
//
// The pool is bounded by the workers argument (0 picks DefaultWorkers,
// i.e. GOMAXPROCS) and dispatches cells by an atomic cursor, so there is
// no per-cell channel traffic and no goroutine can deadlock waiting for
// a peer: workers only ever claim indices, run the cell function, and
// exit when the cursor runs past the end or a failure is flagged.
package runner

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default worker-pool bound: GOMAXPROCS at
// the time of the call (never less than 1).
func DefaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// CellSeed derives a stable RNG seed for a cell from a base seed and the
// cell's key string. The derivation hashes only the key (FNV-1a) and
// mixes the base seed in afterwards, so the stream a cell sees depends
// on *what* the cell is, never on when or where it ran. The result is
// never zero, so callers that treat zero as "use the default seed" can
// pass the value through unchecked.
func CellSeed(base int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	// splitmix-style odd multiplier decorrelates nearby base seeds.
	s := int64(h.Sum64()) ^ (base * -0x61c8864680b583eb)
	if s == 0 {
		return -1
	}
	return s
}

// Map applies fn to every item, running up to workers cells concurrently,
// and returns the results position-addressed: out[i] = fn(i, items[i]).
// workers ≤ 1 runs the cells serially on the calling goroutine; 0 uses
// DefaultWorkers. On failure the returned slice is nil and the error is
// the lowest-index failure among the cells that executed, wrapped with
// its cell index.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return MapN(workers, len(items), func(i int) (R, error) {
		return fn(i, items[i])
	})
}

// MapN is Map over the index range [0, n): out[i] = fn(i). It is the
// core of the executor; Map delegates to it.
func MapN[R any](workers, n int, fn func(i int) (R, error)) ([]R, error) {
	out := make([]R, n)
	if n == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, &CellError{Index: i, Err: err}
			}
			out[i] = r
		}
		return out, nil
	}

	var (
		cursor atomic.Int64 // next cell index to claim
		failed atomic.Bool  // set on first failure; stops new claims
		mu     sync.Mutex   // guards firstIdx/firstErr
		wg     sync.WaitGroup
	)
	firstIdx := n
	var firstErr error
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := fn(i)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, &CellError{Index: firstIdx, Err: firstErr}
	}
	return out, nil
}

// CellError wraps a cell failure with the index of the cell that raised
// it — the reproduction handle for a failing matrix point.
type CellError struct {
	Index int
	Err   error
}

func (e *CellError) Error() string { return fmt.Sprintf("runner: cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the cell's own error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }
