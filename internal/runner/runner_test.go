package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapPlacement: results land in position-addressed slots at every
// worker count, so a sweep assembled in index order is identical no
// matter how the cells were scheduled.
func TestMapPlacement(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i
	}
	var want []string
	for i := range items {
		want = append(want, fmt.Sprintf("cell-%d-%d", i, i*i))
	}
	for _, workers := range []int{0, 1, 2, 4, 16, 64, 1000} {
		got, err := Map(workers, items, func(i, item int) (string, error) {
			return fmt.Sprintf("cell-%d-%d", i, item*item), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapNBitIdentity: a float reduction folded from MapN slots in index
// order is bit-identical across worker counts (the contract the
// experiment tables and DiffStats aggregation rely on).
func TestMapNBitIdentity(t *testing.T) {
	const n = 1024
	fold := func(workers int) float64 {
		vals, err := MapN(workers, n, func(i int) (float64, error) {
			rng := rand.New(rand.NewSource(CellSeed(7, fmt.Sprintf("cell/%d", i))))
			return rng.Float64() * float64(i+1), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return sum
	}
	serial := fold(1)
	for _, workers := range []int{2, 4, 16} {
		if got := fold(workers); got != serial {
			t.Fatalf("workers=%d: fold %v differs from serial %v", workers, got, serial)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	out, err := Map(8, nil, func(i int, s struct{}) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty: %v, %v", out, err)
	}
	out, err = Map(8, []struct{}{{}}, func(i int, s struct{}) (int, error) { return 42, nil })
	if err != nil || len(out) != 1 || out[0] != 42 {
		t.Fatalf("single: %v, %v", out, err)
	}
}

// TestMapErrorLowestIndex: when several cells fail, the reported failure
// is the lowest-index one among those that ran — with every cell
// failing, that is cell 0 at any worker count, and the cell's own error
// stays reachable through errors.Is/As.
func TestMapErrorLowestIndex(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 2, 4, 16} {
		_, err := MapN(workers, 64, func(i int) (int, error) {
			return 0, fmt.Errorf("cell %d: %w", i, sentinel)
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: error %v is not a CellError", workers, err)
		}
		if ce.Index != 0 {
			t.Fatalf("workers=%d: failing cell %d, want 0", workers, ce.Index)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: sentinel not wrapped: %v", workers, err)
		}
	}
}

// TestMapCancellation: the first failure cancels the still-queued cells.
// The failing cell returns instantly while every other cell sleeps, so
// only the cells already in flight at failure time can complete; the
// rest of the matrix must never run.
func TestMapCancellation(t *testing.T) {
	const n, workers = 64, 4
	var executed atomic.Int64
	_, err := MapN(workers, n, func(i int) (int, error) {
		executed.Add(1)
		if i == 0 {
			return 0, errors.New("fail fast")
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := executed.Load(); got >= n/2 {
		t.Fatalf("%d of %d cells executed after cancellation — queue not cancelled", got, n)
	}
}

// TestMapStress: error injection under load — many rounds of a matrix
// with randomly failing cells, shared-state writes from every cell, and
// full worker fan-out. Run with -race this doubles as the data-race
// check; the property asserted here is that the pool always returns
// (no deadlock) and reports a genuinely failing index.
func TestMapStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var total atomic.Int64
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(100)
		failEvery := 1 + rng.Intn(10)
		workers := 1 + rng.Intn(8)
		out, err := MapN(workers, n, func(i int) (int, error) {
			total.Add(1)
			if (i+1)%failEvery == 0 {
				return 0, fmt.Errorf("injected at %d", i)
			}
			return i * 2, nil
		})
		anyFail := n >= failEvery
		if anyFail {
			if err == nil {
				t.Fatalf("round %d: injected failures but err == nil", round)
			}
			var ce *CellError
			if !errors.As(err, &ce) || (ce.Index+1)%failEvery != 0 {
				t.Fatalf("round %d: reported cell %v was not a failing cell", round, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("round %d: unexpected error %v", round, err)
		}
		for i, v := range out {
			if v != i*2 {
				t.Fatalf("round %d: slot %d = %d", round, i, v)
			}
		}
	}
	if total.Load() == 0 {
		t.Fatal("stress executed no cells")
	}
}

// TestCellSeed: stable across calls, key-sensitive, base-sensitive,
// never zero.
func TestCellSeed(t *testing.T) {
	if CellSeed(1, "gaia/15/MPR-STAT") != CellSeed(1, "gaia/15/MPR-STAT") {
		t.Fatal("CellSeed not stable")
	}
	if CellSeed(1, "a") == CellSeed(1, "b") {
		t.Fatal("CellSeed ignores key")
	}
	if CellSeed(1, "a") == CellSeed(2, "a") {
		t.Fatal("CellSeed ignores base")
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := CellSeed(7, fmt.Sprintf("cell/%d", i))
		if s == 0 {
			t.Fatal("CellSeed produced 0")
		}
		if seen[s] {
			t.Fatalf("CellSeed collision at %d", i)
		}
		seen[s] = true
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers below 1")
	}
}
