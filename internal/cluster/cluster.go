package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"mpr/internal/core"
	"mpr/internal/perf"
	"mpr/internal/power"
	"mpr/internal/stats"
)

// Config parameterizes the prototype emulation.
type Config struct {
	// Apps to run; DefaultApps() when empty.
	Apps []AppSpec
	// CapacityW is the power cap creating overloads (paper: 400 W).
	CapacityW float64
	// UseMPR selects whether the manager handles overloads with the MPR
	// market (true) or leaves the overload standing (false) — the two
	// Fig. 17 experiment arms.
	UseMPR bool
	// Interactive selects MPR-INT bidding (rational agents per price
	// round) instead of MPR-STAT static cooperative bids.
	Interactive bool
	// MeterNoiseW is the Gaussian sigma of the power meter.
	MeterNoiseW float64
	// PhaseAmp adds a slow sinusoidal power phase per app (fraction of
	// dynamic power) so the controller sees realistic variation.
	PhaseAmp float64
	// Seed drives meter noise and phase offsets.
	Seed int64
	// MinOverloadTicks and CooldownTicks parameterize the emergency
	// controller in seconds (paper: 10 s minimum overload, 60 s
	// cool-down for prototype-scale experiments).
	MinOverloadTicks int
	CooldownTicks    int
}

func (c *Config) normalize() error {
	if len(c.Apps) == 0 {
		c.Apps = DefaultApps()
	}
	if c.CapacityW <= 0 {
		c.CapacityW = 400
	}
	if c.MeterNoiseW < 0 {
		return fmt.Errorf("cluster: meter noise must be non-negative")
	}
	if c.MeterNoiseW == 0 {
		c.MeterNoiseW = 2
	}
	if c.PhaseAmp < 0 || c.PhaseAmp > 0.5 {
		return fmt.Errorf("cluster: phase amplitude must be in [0, 0.5]")
	}
	if c.MinOverloadTicks <= 0 {
		c.MinOverloadTicks = 10
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 60
	}
	return nil
}

// AppOutcome summarizes one application after a run.
type AppOutcome struct {
	Name string
	// MeanAlloc is the time-averaged per-core allocation.
	MeanAlloc float64
	// ReductionCoreSeconds integrates the resource reduction over time
	// (Fig. 17(b)).
	ReductionCoreSeconds float64
	// WorkDone is the full-speed-equivalent seconds of work completed.
	WorkDone float64
	// PaymentCoreSeconds integrates q·δ over time.
	PaymentCoreSeconds float64
}

// RunResult is the outcome of a prototype run.
type RunResult struct {
	// PowerSeries is the metered power per second (Fig. 17(a)).
	PowerSeries *stats.Series
	// Emergencies counts declared power emergencies.
	Emergencies int
	// OverloadSeconds counts seconds with true power above capacity.
	OverloadSeconds int
	// Apps summarizes per-application outcomes in config order.
	Apps []AppOutcome
}

// Cluster is the emulated two-server prototype.
type Cluster struct {
	cfg  Config
	apps []*app
	rng  *rand.Rand
	ec   *power.EmergencyController

	tick        int
	phaseOffset []float64
	emergencies int
	overloadSec int
	price       float64
	emergency   bool

	powerSeries stats.Series
	reductions  []float64 // integrated δ·seconds per app
	payments    []float64
}

// New builds the emulated cluster.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ec, err := power.NewEmergencyController(power.EmergencyConfig{
		CapacityW:        cfg.CapacityW,
		MinOverloadSlots: cfg.MinOverloadTicks,
		CooldownSlots:    cfg.CooldownTicks,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), ec: ec}
	for _, spec := range cfg.Apps {
		a, err := newApp(spec, 1, perf.CostLinear)
		if err != nil {
			return nil, err
		}
		c.apps = append(c.apps, a)
		c.phaseOffset = append(c.phaseOffset, c.rng.Float64()*2*math.Pi)
	}
	c.reductions = make([]float64, len(c.apps))
	c.payments = make([]float64, len(c.apps))
	return c, nil
}

// TotalCores returns the cluster's core count (40 for the default apps —
// the paper's two Dell PowerEdge servers).
func (c *Cluster) TotalCores() int {
	n := 0
	for _, a := range c.apps {
		n += a.spec.Cores
	}
	return n
}

// truePowerW computes the instantaneous power with phase modulation.
func (c *Cluster) truePowerW() float64 {
	var total float64
	for i, a := range c.apps {
		p := a.powerW()
		if c.cfg.PhaseAmp > 0 {
			dyn := a.dynPowerPerCore() * float64(a.spec.Cores)
			p += dyn * c.cfg.PhaseAmp * math.Sin(2*math.Pi*float64(c.tick)/300+c.phaseOffset[i])
		}
		total += p
	}
	return total
}

// meteredPowerW adds meter noise to the true power.
func (c *Cluster) meteredPowerW(trueW float64) float64 {
	return trueW + c.cfg.MeterNoiseW*c.rng.NormFloat64()
}

// Step advances the emulation by one second of virtual time.
func (c *Cluster) Step() {
	trueW := c.truePowerW()
	metered := c.meteredPowerW(trueW)
	if trueW > c.cfg.CapacityW {
		c.overloadSec++
	}

	// Demand: what the cluster would draw at full speed (with phases).
	var demandW float64
	for i, a := range c.apps {
		full := float64(a.spec.Cores) * (a.spec.StaticWPerCore + a.spec.DynMaxWPerCore)
		if c.cfg.PhaseAmp > 0 {
			dyn := a.spec.DynMaxWPerCore * float64(a.spec.Cores)
			full += dyn * c.cfg.PhaseAmp * math.Sin(2*math.Pi*float64(c.tick)/300+c.phaseOffset[i])
		}
		demandW += full
	}

	d := c.ec.Step(demandW, metered)
	switch {
	case d.Declare || d.Raise:
		if d.Declare {
			c.emergencies++
		}
		c.emergency = true
		if c.cfg.UseMPR {
			c.clearMarket(d.TargetW)
		}
	case d.Lift:
		c.emergency = false
		c.price = 0
		for _, a := range c.apps {
			a.setAlloc(1)
		}
	}

	// Integrate statistics and progress work.
	for i, a := range c.apps {
		if c.emergency {
			delta := (1 - a.alloc()) * float64(a.spec.Cores)
			c.reductions[i] += delta
			c.payments[i] += c.price * delta
		}
		a.workDone += a.speed()
	}
	c.powerSeries.Append(int64(c.tick), metered)
	c.tick++
}

// clearMarket builds market participants from the running applications
// and applies the cleared reductions via DVFS.
func (c *Cluster) clearMarket(targetW float64) {
	parts := make([]*core.Participant, len(c.apps))
	bidders := make([]core.Bidder, len(c.apps))
	for i, a := range c.apps {
		parts[i] = &core.Participant{
			JobID:        a.spec.Name,
			Cores:        float64(a.spec.Cores),
			Bid:          core.CooperativeBid(float64(a.spec.Cores), a.model),
			WattsPerCore: a.wattsPerCoreReduction(),
			MaxFrac:      1 - FreqMin/FreqMax,
		}
		bidders[i] = &core.RationalBidder{Cores: float64(a.spec.Cores), Model: a.model}
	}
	var res *core.ClearingResult
	var err error
	if c.cfg.Interactive {
		res, err = core.ClearInteractive(parts, bidders, targetW, core.InteractiveConfig{})
	} else {
		res, err = core.Clear(parts, targetW)
	}
	if err != nil {
		return // no participants; leave allocations unchanged
	}
	c.price = res.Price
	for i, a := range c.apps {
		x := res.Reductions[i] / float64(a.spec.Cores)
		a.setAlloc(1 - x)
	}
}

// RunFor advances the emulation by the given number of virtual seconds.
func (c *Cluster) RunFor(seconds int) {
	for i := 0; i < seconds; i++ {
		c.Step()
	}
}

// Result snapshots the run statistics.
func (c *Cluster) Result() *RunResult {
	res := &RunResult{
		PowerSeries:     &c.powerSeries,
		Emergencies:     c.emergencies,
		OverloadSeconds: c.overloadSec,
	}
	for i, a := range c.apps {
		mean := 1.0
		if c.tick > 0 {
			mean = 1 - c.reductions[i]/float64(a.spec.Cores)/float64(c.tick)
		}
		res.Apps = append(res.Apps, AppOutcome{
			Name:                 a.spec.Name,
			MeanAlloc:            mean,
			ReductionCoreSeconds: c.reductions[i],
			WorkDone:             a.workDone,
			PaymentCoreSeconds:   c.payments[i],
		})
	}
	return res
}

// FreqSweepPoint is one sample of the Fig. 16 characterization.
type FreqSweepPoint struct {
	App string
	// FreqGHz is the DVFS setting.
	FreqGHz float64
	// DynPowerW is the application's dynamic power at that frequency
	// (Fig. 16(a)).
	DynPowerW float64
	// NormRuntime is the execution time normalized to FreqMax
	// (Fig. 16(b)).
	NormRuntime float64
}

// FreqSweep characterizes every application across the DVFS range —
// the prototype measurements of Fig. 16.
func FreqSweep(apps []AppSpec, points int) ([]FreqSweepPoint, error) {
	if points < 2 {
		points = 2
	}
	var out []FreqSweepPoint
	for _, spec := range apps {
		a, err := newApp(spec, 1, perf.CostLinear)
		if err != nil {
			return nil, err
		}
		for i := 0; i < points; i++ {
			f := FreqMin + (FreqMax-FreqMin)*float64(i)/float64(points-1)
			a.freqGHz = f
			sp := a.speed()
			out = append(out, FreqSweepPoint{
				App:         spec.Name,
				FreqGHz:     f,
				DynPowerW:   a.dynPowerPerCore() * float64(spec.Cores),
				NormRuntime: 1 / sp,
			})
		}
	}
	return out, nil
}
