package cluster

import (
	"math"
	"testing"
)

func TestDefaultAppsDrawAboveCap(t *testing.T) {
	c, err := New(Config{Seed: 1, PhaseAmp: 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalCores() != 40 {
		t.Errorf("cores = %d, want 40 (two 20-core servers)", c.TotalCores())
	}
	// Full-speed power must exceed the 400 W cap to create overloads.
	if p := c.truePowerW(); p <= 400 || p > 600 {
		t.Errorf("full-speed power = %.0f W, want in (400, 600]", p)
	}
}

func TestWithoutMPROverloadPersists(t *testing.T) {
	c, err := New(Config{Seed: 2, UseMPR: false, PhaseAmp: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(1800) // 30 virtual minutes
	res := c.Result()
	// Without handling, nearly the whole run is overloaded.
	if res.OverloadSeconds < 1500 {
		t.Errorf("overload seconds = %d, want ~1800 without MPR", res.OverloadSeconds)
	}
	for _, a := range res.Apps {
		if a.ReductionCoreSeconds != 0 {
			t.Errorf("%s reduced without MPR", a.Name)
		}
	}
}

func TestMPRHandlesOverload(t *testing.T) {
	c, err := New(Config{Seed: 3, UseMPR: true, PhaseAmp: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(1800)
	res := c.Result()
	if res.Emergencies == 0 {
		t.Fatal("no emergency declared")
	}
	// MPR reacts within the 10 s filter plus a couple of control steps;
	// the overload must not persist.
	if res.OverloadSeconds > 300 {
		t.Errorf("overload seconds = %d with MPR, want far below 1800", res.OverloadSeconds)
	}
	var totalRed float64
	for _, a := range res.Apps {
		totalRed += a.ReductionCoreSeconds
	}
	if totalRed <= 0 {
		t.Error("no resource reduction recorded")
	}
	// Power settles near/below the cap: the mean of the last 10 minutes
	// must be at most the cap plus meter noise.
	s := res.PowerSeries
	var tail float64
	n := 0
	for i := s.Len() - 600; i < s.Len(); i++ {
		tail += s.V[i]
		n++
	}
	tail /= float64(n)
	if tail > 405 {
		t.Errorf("steady-state power %.1f W above cap", tail)
	}
}

// Different applications reduce different amounts based on their
// performance impact (Fig. 17(b)): XSBench (sensitive) keeps more of its
// allocation than HPCCG (insensitive).
func TestPerAppReductionsDiffer(t *testing.T) {
	c, err := New(Config{Seed: 4, UseMPR: true, Interactive: true, PhaseAmp: 0})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(1800)
	res := c.Result()
	byName := map[string]AppOutcome{}
	for _, a := range res.Apps {
		byName[a.Name] = a
	}
	xs, hp := byName["XSBench"], byName["HPCCG"]
	if xs.ReductionCoreSeconds >= hp.ReductionCoreSeconds {
		t.Errorf("XSBench reduction %.0f should be below HPCCG %.0f",
			xs.ReductionCoreSeconds, hp.ReductionCoreSeconds)
	}
}

// Users get paid for their reductions under MPR.
func TestPrototypePayments(t *testing.T) {
	c, err := New(Config{Seed: 5, UseMPR: true, PhaseAmp: 0})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(1200)
	res := c.Result()
	var pay float64
	for _, a := range res.Apps {
		pay += a.PaymentCoreSeconds
	}
	if pay <= 0 {
		t.Error("no payments recorded")
	}
}

// MPR slows work down only modestly: work done with MPR is below the
// unconstrained run but above the worst case.
func TestWorkProgressUnderMPR(t *testing.T) {
	free, err := New(Config{Seed: 6, UseMPR: false, PhaseAmp: 0, CapacityW: 1000})
	if err != nil {
		t.Fatal(err)
	}
	free.RunFor(1800)
	capped, err := New(Config{Seed: 6, UseMPR: true, PhaseAmp: 0})
	if err != nil {
		t.Fatal(err)
	}
	capped.RunFor(1800)
	var freeWork, cappedWork float64
	for _, a := range free.Result().Apps {
		freeWork += a.WorkDone
	}
	for _, a := range capped.Result().Apps {
		cappedWork += a.WorkDone
	}
	if cappedWork >= freeWork {
		t.Errorf("capped work %.0f should be below free %.0f", cappedWork, freeWork)
	}
	if cappedWork < 0.7*freeWork {
		t.Errorf("capped work %.0f lost more than 30%% vs %.0f", cappedWork, freeWork)
	}
}

func TestFreqSweepShapes(t *testing.T) {
	pts, err := FreqSweep(DefaultApps(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4*8 {
		t.Fatalf("points = %d", len(pts))
	}
	// Per app: power increases with frequency, normalized runtime
	// decreases, and runtime at FreqMax is 1.
	perApp := map[string][]FreqSweepPoint{}
	for _, p := range pts {
		perApp[p.App] = append(perApp[p.App], p)
	}
	for name, ps := range perApp {
		for i := 1; i < len(ps); i++ {
			if ps[i].DynPowerW <= ps[i-1].DynPowerW {
				t.Errorf("%s: power not increasing with frequency", name)
			}
			if ps[i].NormRuntime >= ps[i-1].NormRuntime {
				t.Errorf("%s: runtime not decreasing with frequency", name)
			}
		}
		last := ps[len(ps)-1]
		if math.Abs(last.NormRuntime-1) > 1e-9 {
			t.Errorf("%s: runtime at FreqMax = %v, want 1", name, last.NormRuntime)
		}
	}
	// Applications differ (Fig. 16: "the impact of CPU speed change is
	// different for different applications").
	xsLow := perApp["XSBench"][0].NormRuntime
	hpLow := perApp["HPCCG"][0].NormRuntime
	if math.Abs(xsLow-hpLow) < 0.05 {
		t.Errorf("XSBench (%.2f) and HPCCG (%.2f) respond identically to DVFS", xsLow, hpLow)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MeterNoiseW: -1}); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := New(Config{PhaseAmp: 0.9}); err == nil {
		t.Error("excessive phase amplitude accepted")
	}
	if _, err := New(Config{Apps: []AppSpec{{Name: "XSBench", Cores: 0}}}); err == nil {
		t.Error("zero-core app accepted")
	}
	if _, err := New(Config{Apps: []AppSpec{{Name: "NoSuchApp", Cores: 1, DynMaxWPerCore: 1, PowerExp: 1}}}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *RunResult {
		c, err := New(Config{Seed: 9, UseMPR: true, PhaseAmp: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		c.RunFor(600)
		return c.Result()
	}
	a, b := run(), run()
	if a.Emergencies != b.Emergencies || a.OverloadSeconds != b.OverloadSeconds {
		t.Error("non-deterministic emulation")
	}
	for i := range a.Apps {
		if a.Apps[i] != b.Apps[i] {
			t.Errorf("app %d differs: %+v vs %+v", i, a.Apps[i], b.Apps[i])
		}
	}
}
