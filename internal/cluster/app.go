// Package cluster emulates the paper's prototype HPC cluster (Section
// V-F): two servers with 40 Xeon cores total, four applications (CoMD,
// HPCCG, miniMD, XSBench) pinned to 10 cores each, per-core DVFS between
// 1.0 and 2.4 GHz, a noisy power meter, and a manager control loop that
// detects overloads against a 400 W cap and clears an MPR market to slow
// the applications down.
//
// The emulation exercises exactly the control path of the paper's
// prototype — monitor → detect → clear → apply DVFS → lift — against
// virtual time, so a "30-minute" experiment (Fig. 17) runs in
// milliseconds. Power and performance responses to frequency (Fig. 16)
// follow the same application profiles as the simulation study.
package cluster

import (
	"fmt"
	"math"

	"mpr/internal/perf"
)

// Frequency limits of the prototype's acpi-cpufreq range (GHz).
const (
	FreqMin = 1.0
	FreqMax = 2.4
)

// AppSpec describes one application running on the prototype.
type AppSpec struct {
	// Name must match a perf profile (performance response).
	Name string
	// Cores the application is pinned to.
	Cores int
	// StaticWPerCore is the idle power attributed per core.
	StaticWPerCore float64
	// DynMaxWPerCore is the application's dynamic power per core at
	// FreqMax — applications stress the pipeline differently, which is
	// why Fig. 16(a) shows different curves per application.
	DynMaxWPerCore float64
	// PowerExp shapes the dynamic power vs frequency curve:
	// P(f) = DynMax·(f/FreqMax)^PowerExp. DVFS scales voltage with
	// frequency, so the exponent is above 1.
	PowerExp float64
}

// DefaultApps returns the paper's four prototype applications, sized so
// the full-speed cluster draws ~470 W — comfortably above the 400 W cap
// used to create overloads in the Fig. 17 experiment.
func DefaultApps() []AppSpec {
	return []AppSpec{
		{Name: "CoMD", Cores: 10, StaticWPerCore: 3, DynMaxWPerCore: 9.0, PowerExp: 1.8},
		{Name: "HPCCG", Cores: 10, StaticWPerCore: 3, DynMaxWPerCore: 7.5, PowerExp: 1.5},
		{Name: "miniMD", Cores: 10, StaticWPerCore: 3, DynMaxWPerCore: 8.5, PowerExp: 1.7},
		{Name: "XSBench", Cores: 10, StaticWPerCore: 3, DynMaxWPerCore: 10.0, PowerExp: 1.6},
	}
}

// app is the runtime state of one application on the cluster.
type app struct {
	spec    AppSpec
	profile *perf.Profile
	model   *perf.CostModel

	freqGHz  float64
	workDone float64 // seconds of full-speed-equivalent work completed
}

func newApp(spec AppSpec, alpha float64, shape perf.CostShape) (*app, error) {
	if spec.Cores <= 0 {
		return nil, fmt.Errorf("cluster: app %s needs positive cores", spec.Name)
	}
	if spec.DynMaxWPerCore <= 0 || spec.PowerExp <= 0 {
		return nil, fmt.Errorf("cluster: app %s needs positive power parameters", spec.Name)
	}
	prof, err := perf.ProfileByName(spec.Name)
	if err != nil {
		return nil, err
	}
	return &app{
		spec:    spec,
		profile: prof,
		model:   perf.NewCostModel(prof, alpha, shape),
		freqGHz: FreqMax,
	}, nil
}

// alloc maps the DVFS setting to the per-core allocation knob of the
// paper: a core at f GHz counts as f/FreqMax of a core.
func (a *app) alloc() float64 { return a.freqGHz / FreqMax }

// setAlloc applies a per-core allocation by picking the matching DVFS
// frequency, clamped to the supported range.
func (a *app) setAlloc(alloc float64) {
	f := alloc * FreqMax
	if f < FreqMin {
		f = FreqMin
	}
	if f > FreqMax {
		f = FreqMax
	}
	a.freqGHz = f
}

// dynPowerPerCore returns the application's dynamic watts per core at its
// current frequency.
func (a *app) dynPowerPerCore() float64 {
	return a.spec.DynMaxWPerCore * math.Pow(a.freqGHz/FreqMax, a.spec.PowerExp)
}

// powerW returns the application's total power draw.
func (a *app) powerW() float64 {
	return float64(a.spec.Cores) * (a.spec.StaticWPerCore + a.dynPowerPerCore())
}

// speed returns the application's relative execution speed at its current
// frequency, from its performance profile.
func (a *app) speed() float64 { return a.profile.Speed(a.alloc()) }

// wattsPerCoreReduction linearizes the power response for the market's
// P(δ) model: the secant slope of dynamic power between full speed and
// the lowest allocation.
func (a *app) wattsPerCoreReduction() float64 {
	loAlloc := FreqMin / FreqMax
	hi := a.spec.DynMaxWPerCore
	lo := a.spec.DynMaxWPerCore * math.Pow(loAlloc, a.spec.PowerExp)
	return (hi - lo) / (1 - loAlloc)
}
