package check

import (
	"testing"
	"time"
)

// The base seeds are fixed so CI runs are reproducible; any failure
// message carries the derived per-instance seed, which alone reproduces
// the failing instance via NewGen.
const (
	diffSeedClear  = 0x5eed_0001
	diffSeedCapped = 0x5eed_0002
	diffSeedOPT    = 0x5eed_0003
)

// diffInstances is the per-pair instance budget: ≥ 5,000 generated
// instances per solver pair (the acceptance bar of the verification
// harness), trimmed under -short.
func diffInstances(t *testing.T) int {
	if testing.Short() {
		return 1000
	}
	return 6000
}

// TestDiffClearModes cross-checks the closed-form segmented solver
// against the bisection solver on thousands of generated instances,
// asserting both the pairwise agreement and the invariant catalog.
func TestDiffClearModes(t *testing.T) {
	start := time.Now()
	st, err := DiffClearModes(diffSeedClear, diffInstances(t), 96)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("closed-form vs bisection: %d instances, %d participants, %d infeasible, %d singleton in %v",
		st.Instances, st.Participants, st.Infeasible, st.Singleton, time.Since(start))
	if st.Instances < diffInstances(t) {
		t.Errorf("ran %d instances, want ≥ %d", st.Instances, diffInstances(t))
	}
	// The generator must actually produce the adversarial shapes the
	// differential run claims to cover.
	if st.Infeasible == 0 {
		t.Error("no infeasible instances generated")
	}
	if st.Singleton == 0 {
		t.Error("no degenerate single-participant markets generated")
	}
}

// TestDiffClearModesLargePools widens the pool-size range so breakpoint
// binary searches cross cache-line and recursion-depth regimes; fewer
// instances, same invariants.
func TestDiffClearModesLargePools(t *testing.T) {
	if testing.Short() {
		t.Skip("large pools skipped in -short")
	}
	st, err := DiffClearModes(diffSeedClear+7, 300, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instances != 300 {
		t.Errorf("ran %d instances, want 300", st.Instances)
	}
}

// TestDiffCapped cross-checks ClearCapped's closed-form short-circuit
// path against the bisection clear-then-discard path, including caps
// below every activation price and caps exactly at the clearing price.
func TestDiffCapped(t *testing.T) {
	start := time.Now()
	st, err := DiffCapped(diffSeedCapped, diffInstances(t), 96)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("capped closed-form vs bisection: %d instances, %d participants, %d settled at cap in %v",
		st.Instances, st.Participants, st.Capped, time.Since(start))
	if st.Capped == 0 {
		t.Error("no instance settled at the cap — binding caps not covered")
	}
	if st.Capped == st.Instances {
		t.Error("every instance settled at the cap — loose caps not covered")
	}
}

// TestDiffMarketVsOPT cross-checks the interactive market against the
// OPT KKT dual fast path on analytic quadratic-cost pools, plus the
// OPT ≤ STAT ≤ EQL cost ordering with cooperative static bids.
func TestDiffMarketVsOPT(t *testing.T) {
	start := time.Now()
	st, err := DiffMarketVsOPT(diffSeedOPT, diffInstances(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MPR-INT vs OPT dual: %d instances, %d participants, costs OPT %.0f ≤ STAT %.0f vs EQL %.0f (STAT>EQL on %d) in %v",
		st.Instances, st.Participants, st.OPTCost, st.StatCost, st.EQLCost, st.StatAboveEQL, time.Since(start))
	// The paper's Fig. 9 ordering, asserted in aggregate: OPT ≤ STAT is
	// a per-instance theorem (already enforced), and STAT beats the
	// cost-oblivious EQL baseline over the run as a whole even though
	// individual adversarial pools can invert that leg.
	if st.StatCost > st.EQLCost {
		t.Errorf("aggregate STAT cost %.1f exceeds EQL %.1f — supply-function bidding lost to uniform slowdown",
			st.StatCost, st.EQLCost)
	}
	if st.OPTCost > st.StatCost {
		t.Errorf("aggregate OPT cost %.1f exceeds STAT %.1f", st.OPTCost, st.StatCost)
	}
	if rate := float64(st.StatAboveEQL) / float64(st.Instances); rate > 0.25 {
		t.Errorf("STAT above EQL on %.0f%% of instances — ordering no longer holds statistically", 100*rate)
	}
}
