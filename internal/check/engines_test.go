package check

import (
	"math"
	"testing"
	"time"

	"mpr/internal/sim"
	"mpr/internal/trace"
)

const diffSeedEngines = 0x5eed_0004

// TestDiffEngines pins the fixed-step and event-driven simulation cores
// to bit-identical Results over ≥ 1k adversarial configurations: every
// algorithm, bursty and sparse arrival mixes, market delays, backfill,
// phases, predictive mode, and dense sampling.
func TestDiffEngines(t *testing.T) {
	start := time.Now()
	n := 1200
	if testing.Short() {
		n = 200
	}
	st, err := DiffEngines(diffSeedEngines, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("slot vs event engine: %d instances, %d jobs, %d emergencies, %d simulated slots in %v",
		st.Instances, st.Participants, st.Emergencies, st.SimSlots, time.Since(start))
	if st.Instances != n {
		t.Errorf("ran %d instances, want %d", st.Instances, n)
	}
	// The generated population must actually exercise overload handling,
	// or the differential pins nothing but idle slot replay.
	if st.Emergencies == 0 {
		t.Error("no emergencies across all instances — generator not exercising overload handling")
	}
	if st.Emergencies < st.Instances/4 {
		t.Errorf("only %d emergencies across %d instances — overload coverage too thin", st.Emergencies, st.Instances)
	}
}

// fuzzSimTrace decodes fuzzer bytes into a workload as (submit-advance,
// runtime, cores) triples: zero advances pile jobs into bursts (queue
// contention, overlapping overloads), top-range advances blow up into
// multi-thousand-slot gaps (the event core's skip regime), and runtimes
// land on non-minute boundaries (fractional remaining work).
func fuzzSimTrace(data []byte) (*trace.Trace, bool) {
	const totalCores = 16
	var jobs []trace.Job
	var submit int64
	for i := 0; i+2 < len(data) && len(jobs) < 24; i += 3 {
		adv := int64(data[i])
		if adv > 240 {
			adv = (adv - 240) * 1000 // sparse gap, up to 15k slots
		}
		submit += adv * 60
		jobs = append(jobs, trace.Job{
			ID:      len(jobs) + 1,
			Submit:  submit,
			Runtime: int64(data[i+1])*90 + 60,
			Cores:   int(data[i+2])%totalCores + 1,
		})
	}
	if len(jobs) == 0 {
		return nil, false
	}
	tr := &trace.Trace{Name: "fuzz-engines", TotalCores: totalCores, Jobs: jobs}
	if tr.Validate() != nil {
		return nil, false
	}
	return tr, true
}

// FuzzEngines interleaves fuzzer-shaped arrivals, finishes, and
// overloads on twin engines: every mutated workload and configuration
// must leave the fixed-step and event-driven cores bit-identical.
func FuzzEngines(f *testing.F) {
	// Burst of four jobs at slot 0 (immediate overload), then a sparse
	// straggler after a long gap.
	f.Add([]byte{0, 100, 7, 0, 120, 8, 0, 90, 6, 0, 80, 5, 250, 60, 3}, int64(1), 15.0, byte(2), false)
	// Steady trickle with medium strides under MPR-INT and backfill.
	f.Add([]byte{0, 40, 3, 10, 55, 4, 12, 70, 5, 9, 45, 2, 30, 65, 9}, int64(7), 25.0, byte(1), true)
	// Single wide job, delayed market, EQL.
	f.Add([]byte{0, 200, 15}, int64(42), 10.0, byte(19), false)
	f.Fuzz(func(t *testing.T, data []byte, seed int64, oversub float64, knobs byte, backfill bool) {
		tr, ok := fuzzSimTrace(data)
		if !ok {
			t.Skip()
		}
		if math.IsNaN(oversub) || math.IsInf(oversub, 0) {
			t.Skip()
		}
		algs := []sim.Algorithm{sim.AlgMPRStat, sim.AlgMPRInt, sim.AlgOPT, sim.AlgEQL, sim.AlgNone}
		cfg := sim.Config{
			Trace:            tr,
			OversubPct:       math.Mod(math.Abs(oversub), 40),
			Algorithm:        algs[int(knobs)%len(algs)],
			Seed:             seed,
			Backfill:         backfill,
			MarketDelaySlots: int(knobs>>4) % 4,
			RecordJobs:       true,
		}
		run := func(engine sim.Engine) *sim.Result {
			c := cfg
			c.Engine = engine
			res, err := sim.Run(c)
			if err != nil {
				t.Fatalf("%s engine: %v", engine, err)
			}
			return res
		}
		slot := run(sim.EngineSlot)
		event := run(sim.EngineEvent)
		if err := CompareEngineResults(slot, event); err != nil {
			t.Fatalf("engines diverged: %v", err)
		}
	})
}
