package check

import (
	"fmt"

	"mpr/internal/core"
	"mpr/internal/runner"
)

// streamDelta draws one streaming update against the twin ground-truth
// pool, mirroring the adversarial shapes of Gen.Pool: Δ = 0
// degenerations, b = 0 willingness flips, exact duplicate activation
// prices (treap tie groups), watts changes, removals, and appends. The
// twin pool is mutated in lock-step — a removed slot is encoded as the
// zero bid, which supplies nothing at any price, exactly like the
// stream market's deactivated slot.
func streamDelta(g *Gen, twin []*core.Participant) (core.ParticipantDelta, []*core.Participant, string) {
	randomBid := func() core.Bid {
		delta := 0.05 + 8*g.rng.Float64()
		b := 0.01 + 5*g.rng.Float64()
		switch r := g.rng.Float64(); {
		case r < 0.08:
			delta = 0
		case r < 0.23:
			b = 0
		case r < 0.35:
			prev := twin[g.rng.Intn(len(twin))].Bid
			if prev.Delta > 0 {
				b = prev.ActivationPrice() * delta
			}
		}
		return core.Bid{Delta: delta, B: b}
	}
	switch r := g.rng.Float64(); {
	case r < 0.60: // bid update on an existing slot
		i := g.rng.Intn(len(twin))
		d := core.ParticipantDelta{Index: i, Bid: randomBid()}
		if g.rng.Float64() < 0.25 {
			d.WattsPerCore = 50 + 200*g.rng.Float64()
			twin[i].WattsPerCore = d.WattsPerCore
		}
		twin[i].Bid = d.Bid
		return d, twin, "update"
	case r < 0.80: // removal (possibly of an already-removed slot)
		i := g.rng.Intn(len(twin))
		twin[i].Bid = core.Bid{}
		return core.ParticipantDelta{Index: i, Remove: true}, twin, "remove"
	default: // append
		p := &core.Participant{
			JobID:        fmt.Sprintf("a%d", len(twin)),
			Cores:        1,
			Bid:          randomBid(),
			WattsPerCore: 50 + 200*g.rng.Float64(),
		}
		d := core.ParticipantDelta{Index: len(twin), Bid: p.Bid, WattsPerCore: p.WattsPerCore}
		return d, append(twin, p), "append"
	}
}

// DiffStream cross-checks the streaming clearing engine against
// from-scratch batch clears: each instance builds a StreamMarket and a
// twin ground-truth pool, applies a randomized update sequence — bid
// updates, removals, appends, and target changes — and after EVERY
// prefix compares the streamed clearing outcome against a fresh
// closed-form batch clear of the twin pool, plus the full invariant
// catalog on the streamed result. The returned error, if any, names the
// reproducing instance seed and the failing update ordinal.
func DiffStream(baseSeed int64, instances, maxN, updates int) (DiffStats, error) {
	parts, err := runner.MapN(0, instances, func(i int) (DiffStats, error) {
		seed := instanceSeed(baseSeed, i)
		g := NewGen(seed)
		var st DiffStats
		ps := g.Pool(g.PoolSize(maxN))
		target := g.Target(MaxSupplyW(ps))
		if err := diffOneStream(g, ps, target, updates, &st); err != nil {
			return st, fmt.Errorf("check: instance seed %d (base %d, instance %d): %w", seed, baseSeed, i, err)
		}
		return st, nil
	})
	if err != nil {
		return DiffStats{}, err
	}
	return foldStats(parts), nil
}

func diffOneStream(g *Gen, ps []*core.Participant, target float64, updates int, st *DiffStats) error {
	st.Instances++
	if len(ps) == 1 {
		st.Singleton++
	}
	sm, err := core.NewStreamMarket(ps, target)
	if err != nil {
		return fmt.Errorf("stream build: %v", err)
	}
	// The twin pool is the ground truth the batch oracle clears; it must
	// be an independent copy since the deltas mutate bids in place.
	twin := make([]*core.Participant, len(ps))
	for i, p := range ps {
		cp := *p
		twin[i] = &cp
	}
	check := func(ordinal int, kind string) error {
		var got core.ClearingResult
		if err := sm.ClearInto(&got); err != nil {
			return fmt.Errorf("update %d (%s): stream clear: %v", ordinal, kind, err)
		}
		want, err := core.ClearWithMode(twin, sm.Target(), core.ClearClosedForm)
		if err != nil {
			return fmt.Errorf("update %d (%s): batch clear: %v", ordinal, kind, err)
		}
		if err := CheckClearing(twin, sm.Target(), &got); err != nil {
			return fmt.Errorf("update %d (%s): stream violates invariants: %v", ordinal, kind, err)
		}
		if !got.Feasible {
			st.Infeasible++
		}
		if err := compareClears(twin, sm.Target(), &got, want); err != nil {
			return fmt.Errorf("update %d (%s): stream vs batch: %w", ordinal, kind, err)
		}
		return nil
	}
	if err := check(0, "build"); err != nil {
		return err
	}
	for u := 1; u <= updates; u++ {
		st.Updates++
		if g.rng.Float64() < 0.1 { // target change
			sm.SetTarget(g.Target(MaxSupplyW(twin)))
			if err := check(u, "retarget"); err != nil {
				return err
			}
			continue
		}
		d, next, kind := streamDelta(g, twin)
		twin = next
		if _, _, err := sm.Apply(d); err != nil {
			return fmt.Errorf("update %d (%s, %+v): %v", u, kind, d, err)
		}
		if err := check(u, kind); err != nil {
			return err
		}
	}
	st.Participants += len(twin)
	return nil
}
