package floats

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-10, 1e-9, true},
		{1, 1 + 1e-8, 1e-9, false},
		{0, 1e-10, 1e-9, true},           // absolute branch near zero
		{1e12, 1e12 + 1, 1e-9, true},     // relative branch for large values
		{1e12, 1e12 * 1.01, 1e-9, false}, //
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e9, false},
		{math.NaN(), math.NaN(), 1e9, false},
		{math.NaN(), 1, 1e9, false},
		{-1, 1, 0.5, false},
		{-1, -1 - 1e-12, 1e-9, true},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestAbsEqual(t *testing.T) {
	if !AbsEqual(1, 1.5, 0.5) || AbsEqual(1, 1.6, 0.5) {
		t.Error("AbsEqual threshold")
	}
	if !AbsEqual(math.Inf(1), math.Inf(1), 0) {
		t.Error("equal infinities must compare true")
	}
	if AbsEqual(math.NaN(), math.NaN(), math.Inf(1)) {
		t.Error("NaN must never compare equal")
	}
	// Huge magnitudes where the difference overflows tolerance checks.
	if AbsEqual(math.MaxFloat64, -math.MaxFloat64, 1) {
		t.Error("opposite extremes are not close")
	}
}

func TestRelEqual(t *testing.T) {
	// Behaves absolutely below 1, relatively above.
	if !RelEqual(0, 1e-10, 1e-9) {
		t.Error("small absolute difference should pass")
	}
	if !RelEqual(1e12, 1e12+100, 1e-9) {
		t.Error("1e-7 relative at 1e12 should pass at 1e-9*(1+1e12)")
	}
	if RelEqual(1, 1.1, 1e-3) {
		t.Error("10% apart should fail at 1e-3")
	}
}

func TestULPDiff(t *testing.T) {
	if d := ULPDiff(1, 1); d != 0 {
		t.Errorf("ULPDiff(1,1) = %d", d)
	}
	if d := ULPDiff(0, math.Copysign(0, -1)); d != 0 {
		t.Errorf("ULPDiff(+0,-0) = %d, want 0", d)
	}
	next := math.Nextafter(1, 2)
	if d := ULPDiff(1, next); d != 1 {
		t.Errorf("ULPDiff(1, next) = %d, want 1", d)
	}
	if d := ULPDiff(next, 1); d != 1 {
		t.Errorf("ULPDiff symmetric: %d", d)
	}
	// Across zero: the distance counts representable values through ±0.
	a, b := math.Nextafter(0, -1), math.Nextafter(0, 1)
	if d := ULPDiff(a, b); d != 2 {
		t.Errorf("ULPDiff straddling zero = %d, want 2", d)
	}
	if d := ULPDiff(math.NaN(), 1); d != math.MaxUint64 {
		t.Errorf("NaN ULPDiff = %d", d)
	}
}

func TestWithinULP(t *testing.T) {
	if !WithinULP(1, 1, 0) {
		t.Error("exact equality at 0 ULP")
	}
	next := math.Nextafter(1, 2)
	if WithinULP(1, next, 0) {
		t.Error("adjacent floats are not 0 ULP apart")
	}
	if !WithinULP(1, next, 1) {
		t.Error("adjacent floats are 1 ULP apart")
	}
	// A sum reassociation typically lands within a few ULP.
	sum1 := (0.1 + 0.2) + 0.3
	sum2 := 0.1 + (0.2 + 0.3)
	if !WithinULP(sum1, sum2, 4) {
		t.Errorf("reassociated sums %v vs %v beyond 4 ULP", sum1, sum2)
	}
	if WithinULP(math.NaN(), math.NaN(), math.MaxUint64-1) {
		t.Error("NaN within ULP of NaN")
	}
}
