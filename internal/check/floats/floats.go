// Package floats provides the shared floating-point comparison helpers
// of the verification harness (internal/check). Every tolerance-based
// assertion in the repo's tests goes through this package instead of an
// ad-hoc math.Abs(a-b) < eps, so the comparison semantics — absolute
// versus relative versus ULP — are explicit at the call site and uniform
// across packages.
//
// The package depends only on the standard library so it is importable
// from in-package (white-box) test files anywhere in the module,
// including internal/core, without creating an import cycle with
// internal/check itself.
package floats

import "math"

// AlmostEqual reports whether a and b are equal within tol, using the
// combined absolute/relative criterion
//
//	|a−b| ≤ tol            (absolute, dominates near zero)
//	|a−b| ≤ tol·max(|a|,|b|)  (relative, dominates for large magnitudes)
//
// Exact equality short-circuits first, so equal infinities compare true
// for any tol. NaN never compares equal to anything, matching ==.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if math.IsInf(d, 1) {
		// Opposite infinities (equal ones short-circuited above): never
		// close, even though Inf ≤ tol·Inf would hold arithmetically.
		return false
	}
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// AbsEqual reports |a−b| ≤ tol — the plain absolute-difference
// criterion, for call sites whose tolerance is already scaled to the
// expected magnitude (most migrated test assertions). Equal infinities
// compare true; NaN compares false.
func AbsEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// RelEqual reports |a−b| ≤ tol·(1+max(|a|,|b|)) — the hybrid criterion
// the market solvers' differential tests use: behaves absolutely for
// magnitudes below 1 and relatively above, with no discontinuity.
func RelEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// ULPDiff returns the number of distinct float64 values strictly between
// a and b — 0 for exactly equal values (including -0 vs +0), 1 for
// adjacent floats... It returns math.MaxUint64 when either argument is
// NaN, or when the values straddle infinities such that the distance is
// not meaningful.
func ULPDiff(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxUint64
	}
	if a == b {
		return 0 // covers -0 == +0
	}
	ia, ib := orderedBits(a), orderedBits(b)
	if ia > ib {
		ia, ib = ib, ia
	}
	return uint64(ib - ia)
}

// orderedBits maps a float64 onto a monotone signed-integer scale: the
// ordering of the integers matches the ordering of the floats, and
// adjacent floats map to adjacent integers. This is the standard
// sign-magnitude to two's-complement fold.
func orderedBits(f float64) int64 {
	b := int64(math.Float64bits(f))
	if b < 0 {
		b = math.MinInt64 - b
	}
	return b
}

// WithinULP reports whether a and b are within n units in the last place
// of each other. WithinULP(a, b, 0) is exact equality (with -0 == +0);
// WithinULP(a, b, 1) admits adjacent floats. NaN is never within any
// distance of anything.
func WithinULP(a, b float64, n uint64) bool {
	return ULPDiff(a, b) <= n
}
