package check

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mpr/internal/core"
	"mpr/internal/trace"
)

// fold maps an arbitrary fuzzed float64 into [lo, hi]. Non-finite inputs
// are rejected; the bottom 2% of the band snaps to lo exactly so boundary
// shapes (Δ = 0, b = 0, zero targets) stay reachable from any corpus
// mutation, not only from inputs that hit lo to the last bit.
func fold(v, lo, hi float64) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	span := hi - lo
	v = lo + math.Mod(math.Abs(v), span)
	if v < lo+0.02*span {
		v = lo
	}
	return v, true
}

// fuzzPool builds a three-participant market from raw (Δ, b, W) triples,
// folded into the solvers' documented operating range. The bisection
// cross-check's price guarantee is bracket-relative, so unbounded
// magnitudes would fuzz float overflow, not market logic; range shaping
// keeps every discovered disagreement a genuine solver bug.
func fuzzPool(raw [9]float64) ([]*core.Participant, bool) {
	ps := make([]*core.Participant, 3)
	for i := range ps {
		delta, ok1 := fold(raw[3*i], 0, 16)
		b, ok2 := fold(raw[3*i+1], 0, 10)
		w, ok3 := fold(raw[3*i+2], 0.5, 400)
		if !ok1 || !ok2 || !ok3 {
			return nil, false
		}
		ps[i] = &core.Participant{
			JobID:        "f",
			Cores:        1,
			Bid:          core.Bid{Delta: delta, B: b},
			WattsPerCore: w,
			MaxFrac:      delta,
		}
	}
	return ps, true
}

// fuzzTarget folds tf into a reduction target for the pool: fractions of
// capacity up to 1.3× (covering infeasible markets), or an absolute
// target when the pool is dead (capacity zero).
func fuzzTarget(ps []*core.Participant, tf float64) (float64, bool) {
	maxW := MaxSupplyW(ps)
	if maxW <= 0 {
		return fold(tf, 0, 100)
	}
	frac, ok := fold(tf, 0, 1.3)
	return frac * maxW, ok
}

// FuzzClear cross-checks the closed-form and bisection MClr solvers on
// fuzzer-shaped three-participant markets and runs both results through
// the invariant oracle.
func FuzzClear(f *testing.F) {
	f.Add(2.0, 1.0, 100.0, 4.0, 0.5, 150.0, 1.0, 2.0, 80.0, 0.5)
	f.Add(0.0, 0.0, 100.0, 0.0, 0.0, 100.0, 0.0, 0.0, 100.0, 0.3)
	f.Add(3.0, 1.5, 120.0, 6.0, 3.0, 120.0, 3.0, 1.5, 120.0, 1.25)
	f.Fuzz(func(t *testing.T, d1, b1, w1, d2, b2, w2, d3, b3, w3, tf float64) {
		ps, ok := fuzzPool([9]float64{d1, b1, w1, d2, b2, w2, d3, b3, w3})
		if !ok {
			t.Skip()
		}
		target, ok := fuzzTarget(ps, tf)
		if !ok {
			t.Skip()
		}
		cf, err := core.ClearWithMode(ps, target, core.ClearClosedForm)
		if err != nil {
			t.Fatalf("closed form: %v", err)
		}
		bi, err := core.ClearWithMode(ps, target, core.ClearBisection)
		if err != nil {
			t.Fatalf("bisection: %v", err)
		}
		if err := CheckClearing(ps, target, cf); err != nil {
			t.Fatalf("closed form violates invariants: %v", err)
		}
		if err := CheckClearing(ps, target, bi); err != nil {
			t.Fatalf("bisection violates invariants: %v", err)
		}
		if err := compareClears(ps, target, cf, bi); err != nil {
			t.Fatalf("solver disagreement: %v", err)
		}
	})
}

// FuzzClearCapped does the same for the price-capped market, fuzzing the
// cap alongside the pool so binding, loose, and zero-trade caps all
// emerge from mutation.
func FuzzClearCapped(f *testing.F) {
	f.Add(2.0, 1.0, 100.0, 4.0, 0.5, 150.0, 1.0, 2.0, 80.0, 0.5, 0.2)
	f.Add(2.0, 1.0, 100.0, 4.0, 0.5, 150.0, 1.0, 2.0, 80.0, 0.9, 10.0)
	f.Add(1.0, 8.0, 100.0, 2.0, 9.0, 150.0, 1.0, 7.0, 80.0, 0.5, 0.01)
	f.Fuzz(func(t *testing.T, d1, b1, w1, d2, b2, w2, d3, b3, w3, tf, cp float64) {
		ps, ok := fuzzPool([9]float64{d1, b1, w1, d2, b2, w2, d3, b3, w3})
		if !ok {
			t.Skip()
		}
		target, ok := fuzzTarget(ps, tf)
		if !ok {
			t.Skip()
		}
		priceCap, ok := fold(cp, 0.001, 20)
		if !ok {
			t.Skip()
		}
		cf, err := core.ClearCappedWithMode(ps, target, priceCap, core.ClearClosedForm)
		if err != nil {
			t.Fatalf("closed form: %v", err)
		}
		bi, err := core.ClearCappedWithMode(ps, target, priceCap, core.ClearBisection)
		if err != nil {
			t.Fatalf("bisection: %v", err)
		}
		if err := CheckCapped(ps, target, priceCap, cf); err != nil {
			t.Fatalf("closed form violates invariants: %v", err)
		}
		if err := CheckCapped(ps, target, priceCap, bi); err != nil {
			t.Fatalf("bisection violates invariants: %v", err)
		}
		// Sentinel prices differ between the modes on capacity-infeasible
		// pools and at the cap itself (see diffOneCapped); the universal
		// agreements are feasibility-independent supply and reductions.
		maxW := MaxSupplyW(ps)
		if d := math.Abs(cf.SuppliedW - bi.SuppliedW); d > Tol*(1+maxW) {
			t.Fatalf("capped supplied %v vs %v", cf.SuppliedW, bi.SuppliedW)
		}
		for i := range ps {
			tol := saturationTol * (1 + ps[i].Bid.Delta)
			if d := math.Abs(cf.Reductions[i] - bi.Reductions[i]); d > tol {
				t.Fatalf("capped reduction[%d] %v vs %v", i, cf.Reductions[i], bi.Reductions[i])
			}
		}
	})
}

// FuzzMarketIndex checks the reusable market index against the naive
// O(M) aggregate supply: point agreement at a fuzzed price, monotonicity,
// capacity bookkeeping, and SetBid incremental updates matching a fresh
// index build.
func FuzzMarketIndex(f *testing.F) {
	f.Add(2.0, 1.0, 100.0, 4.0, 0.5, 150.0, 1.0, 2.0, 80.0, 0.7, 3.0, 0.2)
	f.Add(2.0, 1.0, 100.0, 2.0, 1.0, 100.0, 2.0, 1.0, 100.0, 0.5, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, d1, b1, w1, d2, b2, w2, d3, b3, w3, qr, nd, nb float64) {
		ps, ok := fuzzPool([9]float64{d1, b1, w1, d2, b2, w2, d3, b3, w3})
		if !ok {
			t.Skip()
		}
		q, ok := fold(qr, 0, 1e6)
		if !ok {
			t.Skip()
		}
		ix, err := core.NewMarketIndex(ps)
		if err != nil {
			t.Fatalf("index build: %v", err)
		}
		maxW := MaxSupplyW(ps)
		tol := Tol * (1 + maxW)
		if d := math.Abs(ix.MaxSupplyW() - maxW); d > tol {
			t.Fatalf("MaxSupplyW %v, naive %v", ix.MaxSupplyW(), maxW)
		}
		if d := math.Abs(ix.SupplyW(q) - SupplyWAt(ps, q)); d > tol {
			t.Fatalf("SupplyW(%v) = %v, naive %v", q, ix.SupplyW(q), SupplyWAt(ps, q))
		}
		if ix.SupplyW(q) > ix.SupplyW(2*q+1)+tol {
			t.Fatalf("supply not monotone: S(%v)=%v > S(%v)=%v", q, ix.SupplyW(q), 2*q+1, ix.SupplyW(2*q+1))
		}
		// Incremental rebid: updating one bid in place must match an
		// index built fresh over the updated pool.
		newDelta, ok1 := fold(nd, 0, 16)
		newB, ok2 := fold(nb, 0, 10)
		if !ok1 || !ok2 {
			t.Skip()
		}
		if err := ix.SetBid(1, core.Bid{Delta: newDelta, B: newB}); err != nil {
			t.Fatalf("SetBid: %v", err)
		}
		ix.Refresh() // SetBid takes effect at the next Refresh by contract
		ps[1].Bid = core.Bid{Delta: newDelta, B: newB}
		fresh, err := core.NewMarketIndex(ps)
		if err != nil {
			t.Fatalf("fresh index build: %v", err)
		}
		tol = Tol * (1 + math.Max(maxW, fresh.MaxSupplyW()))
		if d := math.Abs(ix.SupplyW(q) - fresh.SupplyW(q)); d > tol {
			t.Fatalf("after SetBid: incremental S(%v)=%v, fresh %v", q, ix.SupplyW(q), fresh.SupplyW(q))
		}
	})
}

// FuzzSWFParse feeds arbitrary bytes to the SWF trace parser: it must
// never panic, must account for every data line as a job, a skip, or a
// malformed count, and must produce a trace whose jobs survive a
// write/re-parse round trip.
func FuzzSWFParse(f *testing.F) {
	f.Add([]byte("; MaxProcs: 128\n1 0 10 3600 16 -1 -1 16 3600 -1 1 1 1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("1 2 3\nx 0 0 100 4\n1 0 0 -1 4\n"))
	f.Add([]byte("; Version: 2.2\n\n3 200 0 100 2\n1 0 0 100 2\n"))
	f.Add([]byte(";\n1 0 0 100 0\n1 0 -5 100 4 -1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.ParseSWF(bytes.NewReader(data), "fuzz")
		if err != nil {
			// Only reader-level failures (e.g. a line beyond the scanner
			// buffer) are fatal by contract; they are not parse bugs.
			t.Skip()
		}
		dataLines := 0
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, ";") {
				continue
			}
			dataLines++
		}
		if got := len(tr.Jobs) + tr.Skipped + tr.Malformed; got != dataLines {
			t.Fatalf("accounted for %d data lines (%d jobs + %d skipped + %d malformed), input has %d",
				got, len(tr.Jobs), tr.Skipped, tr.Malformed, dataLines)
		}
		var prev int64
		for i, j := range tr.Jobs {
			if j.Runtime <= 0 || j.Cores <= 0 {
				t.Fatalf("job %d kept with runtime %d, cores %d", i, j.Runtime, j.Cores)
			}
			if j.Wait < 0 {
				t.Fatalf("job %d kept with negative wait %d", i, j.Wait)
			}
			if j.Submit < prev {
				t.Fatalf("job %d out of submit order", i)
			}
			prev = j.Submit
		}
		if len(tr.Jobs) == 0 {
			return
		}
		// A fuzzed MaxProcs header can undersize the cluster against the
		// jobs' allocations, so Validate is only asserted when the
		// cluster holds the peak.
		if tr.TotalCores >= tr.PeakAllocation() {
			if err := tr.Validate(); err != nil {
				t.Fatalf("parsed trace invalid: %v", err)
			}
		}
		var buf bytes.Buffer
		if err := trace.WriteSWF(&buf, tr); err != nil {
			t.Fatalf("write back: %v", err)
		}
		back, err := trace.ParseSWF(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if back.Malformed != 0 || back.Skipped != 0 || len(back.Jobs) != len(tr.Jobs) {
			t.Fatalf("round trip: %d jobs, %d malformed, %d skipped (want %d/0/0)",
				len(back.Jobs), back.Malformed, back.Skipped, len(tr.Jobs))
		}
		for i := range tr.Jobs {
			if back.Jobs[i] != tr.Jobs[i] {
				t.Fatalf("round trip job %d: %+v != %+v", i, back.Jobs[i], tr.Jobs[i])
			}
		}
	})
}
