package check

import (
	"fmt"
	"math"

	"mpr/internal/core"
)

// Tol is the harness's default relative tolerance. It matches the
// guarantee of the bisection cross-check path (bracket-relative 1e-13,
// asserted to 1e-9) and the closed form's exactness margin.
const Tol = 1e-9

// saturationTol is the per-participant slack allowed on infeasible
// clears, where the price is a saturation sentinel and the withheld
// amount b/q has only been driven below the solvers' 1e-9 W aggregate.
const saturationTol = 1e-6

// priceUpperBound caps any legitimate clearing or saturation price.
// Infeasible saturation sentinels stop doubling at 1e15, but the
// bisection's feasible branch brackets with no cap for targets at the
// capacity boundary, settling where the withheld aggregate Σwb/q rounds
// below one ULP of the capacity sum — ~1e16 for the generator's ranges.
// 1e18 bounds both with two orders of slack while still rejecting
// runaway prices.
const priceUpperBound = 1e18

// MaxSupplyW returns the pool's aggregate supply ceiling Σ W·Δ in watts
// — the market's total capacity.
func MaxSupplyW(ps []*core.Participant) float64 {
	var w float64
	for _, p := range ps {
		w += p.WattsPerCore * p.Bid.Delta
	}
	return w
}

// SupplyWAt evaluates the naive O(M) aggregate supply at price q — the
// reference implementation the indexed solvers are checked against.
func SupplyWAt(ps []*core.Participant, q float64) float64 {
	var w float64
	for _, p := range ps {
		w += p.WattsPerCore * p.Bid.Supply(q)
	}
	return w
}

// CheckClearing verifies the full invariant catalog for a one-shot
// market clearing (MPR-STAT, either solver) of ps at targetW:
//
//   - structural sanity: finite price and reductions, one reduction per
//     participant, price ≥ 0 and below the saturation bound;
//   - per-participant bounds: every reduction in [0, Δ];
//   - activation structure: positive reductions only at or above the
//     participant's activation price, zero reductions only at or below it;
//   - bookkeeping: SuppliedW = Σ W·δ and PayoutRate = q′·Σδ;
//   - feasible clears meet the target, and the price is minimal —
//     supply just below it falls short of the target;
//   - infeasible clears saturate every participant at its Δ.
//
// A nil error means every invariant held.
func CheckClearing(ps []*core.Participant, targetW float64, res *core.ClearingResult) error {
	if err := checkStructure(ps, targetW, res); err != nil {
		return err
	}
	if targetW <= 0 {
		if res.Price != 0 {
			return fmt.Errorf("zero target cleared at price %v", res.Price)
		}
		return nil
	}
	if res.Feasible {
		if res.SuppliedW < targetW-Tol*(1+targetW) {
			return fmt.Errorf("feasible clear supplied %v short of target %v", res.SuppliedW, targetW)
		}
		// Price minimality: the aggregate supply is continuous and
		// non-decreasing, so any strictly smaller price must fall short.
		// Skip the probe at saturation-scale prices, where the withheld
		// term has already rounded away and supply is flat.
		if res.Price > 0 && res.Price < 1e12 {
			below := SupplyWAt(ps, res.Price*(1-1e-6))
			if below > targetW*(1+Tol)+Tol {
				return fmt.Errorf("price %v not minimal: supply %v at %v still meets target %v",
					res.Price, below, res.Price*(1-1e-6), targetW)
			}
		}
	} else {
		for i, p := range ps {
			if math.Abs(res.Reductions[i]-p.Bid.Delta) > saturationTol*(1+p.Bid.Delta) {
				return fmt.Errorf("infeasible clear: participant %d at %v, not saturated at Δ=%v",
					i, res.Reductions[i], p.Bid.Delta)
			}
		}
	}
	return nil
}

// CheckCapped verifies the invariant catalog for a price-capped clearing
// of ps at targetW under priceCap: all structural invariants, the price
// never exceeds the cap, a price strictly below the cap implies the
// market cleared normally (feasible and on target), and a capped
// settlement supplies exactly the capped aggregate and reports
// feasibility truthfully against the target.
func CheckCapped(ps []*core.Participant, targetW, priceCap float64, res *core.ClearingResult) error {
	if err := checkStructure(ps, targetW, res); err != nil {
		return err
	}
	if targetW <= 0 {
		return nil
	}
	if res.Price > priceCap*(1+Tol) {
		return fmt.Errorf("capped clear price %v exceeds cap %v", res.Price, priceCap)
	}
	if res.Feasible && res.SuppliedW < targetW-Tol*(1+targetW) {
		return fmt.Errorf("feasible capped clear supplied %v short of %v", res.SuppliedW, targetW)
	}
	if !res.Feasible {
		if res.SuppliedW > targetW*(1+Tol)+Tol {
			return fmt.Errorf("infeasible capped clear supplied %v above target %v", res.SuppliedW, targetW)
		}
		atCap := res.Price >= priceCap*(1-Tol)
		if atCap {
			// A settlement at the cap must deliver everything the capped
			// price buys — no withholding below the advertised price.
			want := SupplyWAt(ps, priceCap)
			if math.Abs(res.SuppliedW-want) > Tol*(1+want) {
				return fmt.Errorf("capped settlement supplied %v, capped price buys %v", res.SuppliedW, want)
			}
		} else if maxW := MaxSupplyW(ps); maxW >= targetW*(1+Tol)+Tol {
			// Below the cap the only excuse for infeasibility is the
			// market itself lacking capacity (then the price is a
			// saturation sentinel, legitimately under a loose cap).
			return fmt.Errorf("price %v below cap %v but infeasible despite capacity %v ≥ target %v",
				res.Price, priceCap, maxW, targetW)
		}
	}
	return nil
}

// checkStructure holds the invariants common to every clearing result:
// shape, finiteness, per-participant bounds, activation consistency, and
// the SuppliedW / PayoutRate bookkeeping identities.
func checkStructure(ps []*core.Participant, targetW float64, res *core.ClearingResult) error {
	if res == nil {
		return fmt.Errorf("nil result")
	}
	if len(res.Reductions) != len(ps) {
		return fmt.Errorf("%d reductions for %d participants", len(res.Reductions), len(ps))
	}
	if math.IsNaN(res.Price) || math.IsInf(res.Price, 0) {
		return fmt.Errorf("non-finite price %v", res.Price)
	}
	if res.Price < 0 {
		return fmt.Errorf("negative price %v", res.Price)
	}
	if res.Price > priceUpperBound {
		return fmt.Errorf("price %v beyond the saturation bound", res.Price)
	}
	var supplied, total float64
	for i, p := range ps {
		d := res.Reductions[i]
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("participant %d: non-finite reduction %v", i, d)
		}
		if d < 0 {
			return fmt.Errorf("participant %d: negative reduction %v", i, d)
		}
		if d > p.Bid.Delta*(1+Tol)+Tol {
			return fmt.Errorf("participant %d: reduction %v exceeds Δ=%v", i, d, p.Bid.Delta)
		}
		if targetW > 0 {
			act := p.Bid.ActivationPrice()
			if d > Tol && act > res.Price*(1+Tol)+Tol {
				return fmt.Errorf("participant %d supplies %v below its activation price %v (price %v)",
					i, d, act, res.Price)
			}
			if d == 0 && p.Bid.Delta > 0 && act < res.Price*(1-Tol)-Tol {
				return fmt.Errorf("participant %d supplies nothing at price %v despite activation %v",
					i, res.Price, act)
			}
		}
		supplied += p.WattsPerCore * d
		total += d
	}
	if math.Abs(supplied-res.SuppliedW) > Tol*(1+math.Abs(supplied)) {
		return fmt.Errorf("SuppliedW %v, recomputed %v", res.SuppliedW, supplied)
	}
	if want := res.Price * total; math.Abs(res.PayoutRate-want) > Tol*(1+math.Abs(want)) {
		return fmt.Errorf("PayoutRate %v, recomputed q′·Σδ = %v", res.PayoutRate, want)
	}
	if res.TargetW != targetW {
		return fmt.Errorf("TargetW %v, requested %v", res.TargetW, targetW)
	}
	return nil
}

// CheckAllocation verifies a centralized allocation (OPT or EQL):
// per-participant reductions within [0, MaxReduction], the SuppliedW
// bookkeeping identity, cost consistency against the participants' cost
// functions, and target satisfaction when the result claims feasibility.
func CheckAllocation(ps []*core.Participant, targetW float64, res *core.AllocationResult) error {
	if res == nil {
		return fmt.Errorf("nil result")
	}
	if len(res.Reductions) != len(ps) {
		return fmt.Errorf("%d reductions for %d participants", len(res.Reductions), len(ps))
	}
	var supplied, cost float64
	for i, p := range ps {
		d := res.Reductions[i]
		if math.IsNaN(d) || math.IsInf(d, 0) || d < -Tol {
			return fmt.Errorf("participant %d: bad reduction %v", i, d)
		}
		if max := p.MaxReduction(); d > max*(1+Tol)+Tol {
			return fmt.Errorf("participant %d: reduction %v exceeds bound %v", i, d, max)
		}
		supplied += p.WattsPerCore * d
		if p.Cost != nil {
			cost += p.Cost(d)
		}
	}
	if math.Abs(supplied-res.SuppliedW) > 1e-6*(1+math.Abs(supplied)) {
		return fmt.Errorf("SuppliedW %v, recomputed %v", res.SuppliedW, supplied)
	}
	if math.Abs(cost-res.TotalCost) > 1e-6*(1+math.Abs(cost)) {
		return fmt.Errorf("TotalCost %v, recomputed %v", res.TotalCost, cost)
	}
	if res.Feasible && targetW > 0 && res.SuppliedW < targetW-1e-6*(1+targetW) {
		return fmt.Errorf("feasible allocation supplied %v short of target %v", res.SuppliedW, targetW)
	}
	return nil
}

// CheckCostOrdering verifies the theorem half of the paper's Fig. 9
// total-cost ordering on a pool where all algorithms found feasible
// allocations: OPT ≤ STAT and OPT ≤ EQL, since any feasible allocation
// costs at least the optimum (enforced to solver tolerance). The
// remaining STAT ≤ EQL leg is the paper's *empirical* claim — individual
// adversarial pools can invert it — so the differential driver asserts
// it in aggregate over the whole run (DiffStats.StatCost vs EQLCost)
// rather than per instance.
func CheckCostOrdering(optCost, statCost, eqlCost float64) error {
	if optCost > statCost*(1+1e-6)+1e-9 {
		return fmt.Errorf("OPT cost %v exceeds STAT %v — OPT not optimal", optCost, statCost)
	}
	if optCost > eqlCost*(1+1e-6)+1e-9 {
		return fmt.Errorf("OPT cost %v exceeds EQL %v — OPT not optimal", optCost, eqlCost)
	}
	return nil
}
