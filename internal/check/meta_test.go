package check

import (
	"math"
	"math/rand"
	"testing"

	"mpr/internal/core"
)

// metamorphic relations: transformations of a market instance with a
// known effect on the clearing outcome. Participant permutation must not
// change the outcome at all; uniform power rescaling by a power of two
// must not change the price to the last bit; uniform bid-reluctance
// scaling must scale the price by exactly the same factor.

const metaInstances = 300

// permute returns ps reordered so out[k] = ps[perm[k]], plus the inverse
// mapping back to original indices.
func permute(ps []*core.Participant, rng *rand.Rand) ([]*core.Participant, []int) {
	perm := rng.Perm(len(ps))
	out := make([]*core.Participant, len(ps))
	for k, j := range perm {
		out[k] = ps[j]
	}
	return out, perm
}

// distinctFiniteKeys reports whether all finite activation prices in the
// pool are pairwise distinct. Δ = 0 participants are excluded: their +Inf
// keys tie in the sort but contribute nothing to the prefix sums, so they
// cannot perturb the clearing price.
func distinctFiniteKeys(ps []*core.Participant) bool {
	seen := make(map[float64]bool, len(ps))
	for _, p := range ps {
		if p.Bid.Delta <= 0 {
			continue
		}
		a := p.Bid.ActivationPrice()
		if seen[a] {
			return false
		}
		seen[a] = true
	}
	return true
}

// TestMetamorphicPermutationInvariance: reordering participants must not
// change feasibility, price, or any participant's reduction (mapped back
// through the permutation) for either solver; and for the closed form on
// pools with distinct activation keys — where the canonical
// (key, index)-tie-broken sort makes the summation order unique — the
// price and every reduction must be bit-for-bit identical.
func TestMetamorphicPermutationInvariance(t *testing.T) {
	for i := 0; i < metaInstances; i++ {
		seed := instanceSeed(0x3e7a_0001, i)
		g := NewGen(seed)
		ps := g.Pool(g.PoolSize(64))
		target := g.Target(MaxSupplyW(ps))
		qs, perm := permute(ps, rand.New(rand.NewSource(seed^0x5a5a)))
		for _, mode := range []core.ClearMode{core.ClearClosedForm, core.ClearBisection} {
			a, err := core.ClearWithMode(ps, target, mode)
			if err != nil {
				t.Fatalf("seed %d: %v: %v", seed, mode, err)
			}
			b, err := core.ClearWithMode(qs, target, mode)
			if err != nil {
				t.Fatalf("seed %d: %v permuted: %v", seed, mode, err)
			}
			// Un-permute the reductions so compareClears sees matching
			// participant order.
			back := *b
			back.Reductions = make([]float64, len(ps))
			for k, j := range perm {
				back.Reductions[j] = b.Reductions[k]
			}
			if err := compareClears(ps, target, a, &back); err != nil {
				t.Fatalf("seed %d: %v not permutation-invariant: %v", seed, mode, err)
			}
			if mode == core.ClearClosedForm && distinctFiniteKeys(ps) {
				if math.Float64bits(a.Price) != math.Float64bits(b.Price) {
					t.Fatalf("seed %d: closed-form price not bit-identical under permutation: %v vs %v",
						seed, a.Price, b.Price)
				}
				for k, j := range perm {
					if math.Float64bits(a.Reductions[j]) != math.Float64bits(b.Reductions[k]) {
						t.Fatalf("seed %d: reduction[%d] not bit-identical under permutation", seed, j)
					}
				}
			}
		}
	}
}

// TestMetamorphicScaleInvariance: multiplying every WattsPerCore and the
// target by the same power of two rescales both sides of every supply
// comparison exactly, so the clearing price — a quotient of two scaled
// sums — and every reduction must be bit-for-bit unchanged, in both
// solvers. (Away from the capacity boundary; saturation sentinels use
// absolute wattage thresholds that do not scale.)
func TestMetamorphicScaleInvariance(t *testing.T) {
	for i := 0; i < metaInstances; i++ {
		seed := instanceSeed(0x3e7a_0002, i)
		g := NewGen(seed)
		ps := g.Pool(g.PoolSize(64))
		maxW := MaxSupplyW(ps)
		target := g.Target(maxW)
		if target >= maxW*(1-Tol) {
			continue
		}
		for _, scale := range []float64{256, 0.015625} { // 2⁸ and 2⁻⁶
			qs := make([]*core.Participant, len(ps))
			for k, p := range ps {
				cp := *p
				cp.WattsPerCore = p.WattsPerCore * scale
				qs[k] = &cp
			}
			for _, mode := range []core.ClearMode{core.ClearClosedForm, core.ClearBisection} {
				a, err := core.ClearWithMode(ps, target, mode)
				if err != nil {
					t.Fatalf("seed %d: %v: %v", seed, mode, err)
				}
				b, err := core.ClearWithMode(qs, target*scale, mode)
				if err != nil {
					t.Fatalf("seed %d: %v scaled: %v", seed, mode, err)
				}
				if math.Float64bits(a.Price) != math.Float64bits(b.Price) {
					t.Fatalf("seed %d scale %v: %v price not bit-identical: %v vs %v",
						seed, scale, mode, a.Price, b.Price)
				}
				for k := range ps {
					if math.Float64bits(a.Reductions[k]) != math.Float64bits(b.Reductions[k]) {
						t.Fatalf("seed %d scale %v: %v reduction[%d] not bit-identical",
							seed, scale, mode, k)
					}
				}
			}
		}
	}
}

// TestMetamorphicBidScaling: scaling every reluctance b by a factor s is
// a change of price units — δ_{sb}(q) = δ_b(q/s) — so the clearing price
// must scale by exactly s. For a power-of-two s the closed form is
// bit-exact; a non-dyadic s is verified to the harness tolerance in both
// solvers.
func TestMetamorphicBidScaling(t *testing.T) {
	for i := 0; i < metaInstances; i++ {
		seed := instanceSeed(0x3e7a_0003, i)
		g := NewGen(seed)
		ps := g.Pool(g.PoolSize(64))
		maxW := MaxSupplyW(ps)
		target := g.Target(maxW)
		if target >= maxW*(1-Tol) {
			continue
		}
		base, err := core.ClearWithMode(ps, target, core.ClearClosedForm)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		scaleBids := func(s float64) []*core.Participant {
			qs := make([]*core.Participant, len(ps))
			for k, p := range ps {
				cp := *p
				cp.Bid.B = p.Bid.B * s
				qs[k] = &cp
			}
			return qs
		}
		// Dyadic factor: bit-exact price scaling in the closed form.
		dy, err := core.ClearWithMode(scaleBids(4), target, core.ClearClosedForm)
		if err != nil {
			t.Fatalf("seed %d: dyadic: %v", seed, err)
		}
		if math.Float64bits(dy.Price) != math.Float64bits(4*base.Price) {
			t.Fatalf("seed %d: price %v under 4× reluctance, want exactly %v", seed, dy.Price, 4*base.Price)
		}
		for k := range ps {
			if math.Float64bits(dy.Reductions[k]) != math.Float64bits(base.Reductions[k]) {
				t.Fatalf("seed %d: reduction[%d] changed under uniform reluctance scaling", seed, k)
			}
		}
		// Non-dyadic factor: tolerance-level scaling in both solvers.
		for _, mode := range []core.ClearMode{core.ClearClosedForm, core.ClearBisection} {
			r, err := core.ClearWithMode(scaleBids(3), target, mode)
			if err != nil {
				t.Fatalf("seed %d: %v 3×: %v", seed, mode, err)
			}
			want := 3 * base.Price
			if d := math.Abs(r.Price - want); d > Tol*(1+want) {
				t.Fatalf("seed %d: %v price %v under 3× reluctance, want %v", seed, mode, r.Price, want)
			}
		}
	}
}

// TestInteractiveDeterminism pins the regression surface of the parallel
// rebid fan-out: ClearInteractive must produce bit-for-bit identical
// prices, round counts, and allocations regardless of the Workers count
// (the pool of 80 bidders is above parallelBidFloor, so the parallel
// path actually runs) and regardless of participant order.
func TestInteractiveDeterminism(t *testing.T) {
	g := NewGen(0xde7e_12)
	ps, bidders, _ := g.CostPool(80)
	var capW float64
	for _, p := range ps {
		capW += p.WattsPerCore * p.MaxReduction()
	}
	target := 0.4 * capW
	cfg := core.InteractiveConfig{MaxRounds: 800, Tolerance: 1e-9, Workers: 1}
	base, err := core.ClearInteractive(ps, bidders, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Converged {
		t.Fatalf("baseline did not converge in %d rounds", base.Rounds)
	}
	for _, workers := range []int{0, 2, 3, 16} {
		cfg.Workers = workers
		r, err := core.ClearInteractive(ps, bidders, target, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if math.Float64bits(r.Price) != math.Float64bits(base.Price) {
			t.Errorf("workers=%d: price %v, sequential %v", workers, r.Price, base.Price)
		}
		if r.Rounds != base.Rounds || r.Converged != base.Converged {
			t.Errorf("workers=%d: rounds/converged %d/%v, sequential %d/%v",
				workers, r.Rounds, r.Converged, base.Rounds, base.Converged)
		}
		for i := range ps {
			if math.Float64bits(r.Reductions[i]) != math.Float64bits(base.Reductions[i]) {
				t.Fatalf("workers=%d: reduction[%d] not bit-identical", workers, i)
			}
		}
	}
	// Participant order: permute participants and bidders consistently;
	// the canonical activation sort restores a unique summation order, so
	// the whole price trajectory — and with it every allocation — must be
	// bit-for-bit identical under the inverse permutation.
	rng := rand.New(rand.NewSource(0xde7e_13))
	perm := rng.Perm(len(ps))
	psP := make([]*core.Participant, len(ps))
	bidP := make([]core.Bidder, len(ps))
	for k, j := range perm {
		psP[k] = ps[j]
		bidP[k] = bidders[j]
	}
	cfg.Workers = 5
	rp, err := core.ClearInteractive(psP, bidP, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(rp.Price) != math.Float64bits(base.Price) {
		t.Errorf("permuted: price %v, original %v", rp.Price, base.Price)
	}
	if rp.Rounds != base.Rounds {
		t.Errorf("permuted: rounds %d, original %d", rp.Rounds, base.Rounds)
	}
	for k, j := range perm {
		if math.Float64bits(rp.Reductions[k]) != math.Float64bits(base.Reductions[j]) {
			t.Fatalf("permuted: reduction for participant %d not bit-identical", j)
		}
	}
}
