package check

import (
	"math"
	"strings"
	"testing"

	"mpr/internal/core"
)

// The oracle tests corrupt known-good results field by field and demand a
// rejection: a verification harness whose oracle accepts garbage proves
// nothing by passing.

func oraclePool(t *testing.T) ([]*core.Participant, float64, *core.ClearingResult) {
	t.Helper()
	g := NewGen(0x0c1e)
	ps := g.Pool(24)
	target := 0.5 * MaxSupplyW(ps)
	res, err := core.Clear(ps, target)
	if err != nil {
		t.Fatal(err)
	}
	return ps, target, res
}

func TestCheckClearingAcceptsValid(t *testing.T) {
	ps, target, res := oraclePool(t)
	if err := CheckClearing(ps, target, res); err != nil {
		t.Fatalf("valid clearing rejected: %v", err)
	}
}

func TestCheckClearingRejectsCorruption(t *testing.T) {
	ps, target, good := oraclePool(t)
	cases := []struct {
		name    string
		corrupt func(r *core.ClearingResult)
		wantMsg string
	}{
		{"nan price", func(r *core.ClearingResult) { r.Price = math.NaN() }, "non-finite"},
		{"negative price", func(r *core.ClearingResult) { r.Price = -1 }, "negative price"},
		{"runaway price", func(r *core.ClearingResult) { r.Price = 1e19 }, "saturation bound"},
		{"negative reduction", func(r *core.ClearingResult) { r.Reductions[0] = -0.5 }, "negative reduction"},
		{"reduction above delta", func(r *core.ClearingResult) {
			for i, p := range ps {
				if p.Bid.Delta > 0 {
					r.Reductions[i] = p.Bid.Delta * 2
					return
				}
			}
		}, "exceeds"},
		{"supplied bookkeeping", func(r *core.ClearingResult) { r.SuppliedW *= 1.5 }, "SuppliedW"},
		{"payout bookkeeping", func(r *core.ClearingResult) { r.PayoutRate += 7 }, "PayoutRate"},
		{"target echo", func(r *core.ClearingResult) { r.TargetW += 1 }, "TargetW"},
		{"shape", func(r *core.ClearingResult) { r.Reductions = r.Reductions[:1] }, "reductions for"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bad := *good
			bad.Reductions = append([]float64(nil), good.Reductions...)
			c.corrupt(&bad)
			err := CheckClearing(ps, target, &bad)
			if err == nil {
				t.Fatal("corrupted result accepted")
			}
			if !strings.Contains(err.Error(), c.wantMsg) {
				t.Errorf("error %q does not mention %q", err, c.wantMsg)
			}
		})
	}
}

// The minimality probe: a feasible price far above the true clearing
// price — with reductions and bookkeeping recomputed consistently, so
// only minimality distinguishes it — must be rejected.
func TestCheckClearingRejectsNonMinimalPrice(t *testing.T) {
	ps, target, good := oraclePool(t)
	bad := &core.ClearingResult{
		Price:      good.Price * 4,
		Reductions: make([]float64, len(ps)),
		TargetW:    target,
		Feasible:   true,
		Rounds:     1,
		Converged:  true,
	}
	var total float64
	for i, p := range ps {
		bad.Reductions[i] = p.Bid.Supply(bad.Price)
		bad.SuppliedW += p.WattsPerCore * bad.Reductions[i]
		total += bad.Reductions[i]
	}
	bad.PayoutRate = bad.Price * total
	err := CheckClearing(ps, target, bad)
	if err == nil {
		t.Fatal("overpriced but self-consistent clearing accepted")
	}
	if !strings.Contains(err.Error(), "not minimal") {
		t.Errorf("error %q does not mention minimality", err)
	}
}

func TestCheckCappedRejectsCapBreach(t *testing.T) {
	ps, target, _ := oraclePool(t)
	res, err := core.ClearCapped(ps, target, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCapped(ps, target, 1e6, res); err != nil {
		t.Fatalf("valid capped clearing rejected: %v", err)
	}
	// Same result judged against a cap below the settled price.
	if err := CheckCapped(ps, target, res.Price/2, res); err == nil {
		t.Fatal("price above cap accepted")
	}
}

func TestCheckAllocationRejectsCorruption(t *testing.T) {
	g := NewGen(0x0c1f)
	ps, _, _ := g.CostPool(12)
	var capW float64
	for _, p := range ps {
		capW += p.WattsPerCore * p.MaxReduction()
	}
	target := 0.4 * capW
	opt, err := core.SolveOPT(ps, target, core.OPTDual)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAllocation(ps, target, opt); err != nil {
		t.Fatalf("valid allocation rejected: %v", err)
	}
	over := *opt
	over.Reductions = append([]float64(nil), opt.Reductions...)
	over.Reductions[0] = ps[0].MaxReduction() * 2
	if err := CheckAllocation(ps, target, &over); err == nil {
		t.Fatal("reduction above MaxReduction accepted")
	}
	costly := *opt
	costly.TotalCost += 100
	if err := CheckAllocation(ps, target, &costly); err == nil {
		t.Fatal("cost bookkeeping mismatch accepted")
	}
}

func TestCheckCostOrdering(t *testing.T) {
	if err := CheckCostOrdering(10, 12, 15); err != nil {
		t.Errorf("valid ordering rejected: %v", err)
	}
	if err := CheckCostOrdering(10, 12, 11); err != nil {
		t.Errorf("STAT > EQL is allowed per instance, got: %v", err)
	}
	if err := CheckCostOrdering(13, 12, 15); err == nil {
		t.Error("OPT above STAT accepted")
	}
	if err := CheckCostOrdering(16, 17, 15); err == nil {
		t.Error("OPT above EQL accepted")
	}
}

// Generator self-checks: determinism (a reported seed must reproduce the
// instance exactly) and adversarial-shape coverage (the shapes the
// drivers claim to exercise must actually appear).
func TestGenDeterminism(t *testing.T) {
	a := NewGen(77)
	b := NewGen(77)
	pa := a.Pool(a.PoolSize(64))
	pb := b.Pool(b.PoolSize(64))
	if len(pa) != len(pb) {
		t.Fatalf("pool sizes differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		x, y := pa[i], pb[i]
		if x.JobID != y.JobID || x.Cores != y.Cores || x.Bid != y.Bid ||
			x.WattsPerCore != y.WattsPerCore || x.MaxFrac != y.MaxFrac {
			t.Fatalf("participant %d differs across identically seeded generators", i)
		}
	}
	if ta, tb := a.Target(1000), b.Target(1000); math.Float64bits(ta) != math.Float64bits(tb) {
		t.Fatalf("targets differ: %v vs %v", ta, tb)
	}
}

func TestGenShapeCoverage(t *testing.T) {
	var zeroDelta, zeroB, dupAct, singleton, atCap, aboveCap int
	for i := 0; i < 400; i++ {
		g := NewGen(instanceSeed(0xc0ffee, i))
		ps := g.Pool(g.PoolSize(64))
		if len(ps) == 1 {
			singleton++
		}
		seen := make(map[float64]bool)
		for _, p := range ps {
			switch {
			case p.Bid.Delta == 0:
				zeroDelta++
			case p.Bid.B == 0:
				zeroB++
			default:
				a := p.Bid.ActivationPrice()
				if seen[a] {
					dupAct++
				}
				seen[a] = true
			}
		}
		maxW := MaxSupplyW(ps)
		target := g.Target(maxW)
		if target == maxW && maxW > 0 {
			atCap++
		}
		if target > maxW {
			aboveCap++
		}
	}
	for name, n := range map[string]int{
		"zero-delta bids": zeroDelta, "zero-b bids": zeroB,
		"duplicate activation prices": dupAct, "singleton pools": singleton,
		"targets at capacity": atCap, "targets above capacity": aboveCap,
	} {
		if n == 0 {
			t.Errorf("generator never produced %s in 400 pools", name)
		}
	}
}

// The quadratic cost family's closed forms, cross-checked numerically:
// Respond must maximize q·δ − C(δ) over a grid, and the cooperative bid
// must never supply above the no-loss curve.
func TestQuadCostAnalyticForms(t *testing.T) {
	g := NewGen(0x9a0d)
	_, _, costs := g.CostPool(8)
	for ci, qc := range costs {
		for _, q := range []float64{0, qc.A / 2, qc.A, qc.A + 0.5, qc.A + 2*qc.C2*qc.Max, 50} {
			best := qc.Respond(q)
			gainAt := func(d float64) float64 { return q*d - qc.Cost(d) }
			for f := 0.0; f <= 1.0; f += 0.01 {
				if d := f * qc.Max; gainAt(d) > gainAt(best)+1e-9 {
					t.Fatalf("cost %d: Respond(%v)=%v beaten by δ=%v", ci, q, best, d)
				}
			}
		}
		bid := qc.CooperativeBid()
		for _, q := range []float64{0.01, 0.1, 0.5, 1, 2, 10, 100} {
			supply := bid.Supply(q)
			noLoss := (q - qc.A) / qc.C2 // C(δ) ≤ q·δ boundary
			if noLoss < 0 {
				noLoss = 0
			}
			if noLoss > qc.Max {
				noLoss = qc.Max
			}
			if supply > noLoss+1e-9 {
				t.Fatalf("cost %d: cooperative bid supplies %v at q=%v, beyond no-loss %v", ci, supply, q, noLoss)
			}
		}
	}
}
