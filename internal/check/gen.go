package check

import (
	"fmt"
	"math/rand"

	"mpr/internal/core"
)

// Gen is a seeded deterministic generator of market instances. Two Gens
// built from the same seed produce identical sequences, so any failure a
// driver reports is reproducible from the instance seed alone.
type Gen struct {
	rng  *rand.Rand
	seed int64
}

// NewGen returns a generator seeded with seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the generator was built with.
func (g *Gen) Seed() int64 { return g.seed }

// PoolSize draws a pool size in [1, max], biased toward the degenerate
// and small sizes where solver edge cases live: single-participant
// markets, pairs, and small pools are drawn far more often than their
// uniform share.
func (g *Gen) PoolSize(max int) int {
	if max < 1 {
		max = 1
	}
	switch r := g.rng.Float64(); {
	case r < 0.10:
		return 1 // degenerate single-participant market
	case r < 0.20:
		return 2
	case r < 0.55:
		return 1 + g.rng.Intn(min(8, max))
	case r < 0.85:
		return 1 + g.rng.Intn(min(64, max))
	default:
		return 1 + g.rng.Intn(max)
	}
}

// Pool generates n participants with adversarial bid shapes mixed in:
// Δ = 0 jobs that can never supply, b = 0 fully willing jobs, duplicate
// activation prices (same b/Δ as an earlier participant, forcing
// breakpoint ties in the market index), and occasionally pool-uniform
// watts-per-core. MaxFrac is set consistent with the bid
// (Δ = MaxFrac·Cores) so the same pool is valid for EQL and OPT.
func (g *Gen) Pool(n int) []*core.Participant {
	ps := make([]*core.Participant, n)
	uniformW := g.rng.Float64() < 0.2
	poolW := 50 + 200*g.rng.Float64()
	for i := range ps {
		delta := 0.05 + 8*g.rng.Float64()
		b := 0.01 + 5*g.rng.Float64()
		switch r := g.rng.Float64(); {
		case r < 0.08:
			delta = 0 // never supplies; +Inf activation key
		case r < 0.23:
			b = 0 // fully willing; activation price 0
		case r < 0.35 && i > 0:
			// Duplicate an earlier activation price exactly: same b/Δ
			// ratio with a different Δ, exercising breakpoint ties.
			prev := ps[g.rng.Intn(i)].Bid
			if prev.Delta > 0 {
				b = prev.ActivationPrice() * delta
			}
		}
		w := poolW
		if !uniformW {
			w = 50 + 200*g.rng.Float64()
		}
		cores := float64(1 + g.rng.Intn(32))
		ps[i] = &core.Participant{
			JobID:        fmt.Sprintf("g%d", i),
			Cores:        cores,
			Bid:          core.Bid{Delta: delta, B: b},
			WattsPerCore: w,
			MaxFrac:      delta / cores,
		}
	}
	return ps
}

// Target draws a power-reduction target for a pool with aggregate
// capacity maxW: mostly interior fractions, but with deliberate mass on
// the hard shapes — targets exactly at capacity, above capacity
// (infeasible), and vanishingly small.
func (g *Gen) Target(maxW float64) float64 {
	if maxW <= 0 {
		// Dead pool (all Δ = 0): any positive target is infeasible.
		return 1 + 99*g.rng.Float64()
	}
	switch r := g.rng.Float64(); {
	case r < 0.05:
		return maxW // exactly at capacity
	case r < 0.15:
		return maxW * (1 + 2*g.rng.Float64()) // infeasible
	case r < 0.22:
		return maxW * 1e-6 * g.rng.Float64() // vanishing
	default:
		return maxW * g.rng.Float64()
	}
}

// QuadCost is an analytic convex cost model C(δ) = A·δ + C2·δ² on
// [0, Max] (δ in absolute cores, A ≥ 0, C2 > 0). Its gain-maximizing
// response, cooperative static bid, and OPT KKT solution are all closed
// form, which makes it the reference cost family for the cross-algorithm
// drivers: no inner numerical solver can blur the comparison.
type QuadCost struct {
	A   float64 // linear cost coefficient (marginal cost at δ = 0)
	C2  float64 // quadratic coefficient (half the marginal-cost slope)
	Max float64 // maximum supported reduction, in cores
}

// Cost evaluates C(δ), clamping δ into [0, Max].
func (qc QuadCost) Cost(d float64) float64 {
	if d <= 0 {
		return 0
	}
	if d > qc.Max {
		d = qc.Max
	}
	return qc.A*d + qc.C2*d*d
}

// Marginal evaluates C′(δ) = A + 2·C2·δ.
func (qc QuadCost) Marginal(d float64) float64 {
	if d < 0 {
		d = 0
	}
	if d > qc.Max {
		d = qc.Max
	}
	return qc.A + 2*qc.C2*d
}

// Respond returns the exact gain-maximizing reduction at price q:
// argmax q·δ − C(δ) = clamp((q − A)/(2·C2), 0, Max).
func (qc QuadCost) Respond(q float64) float64 {
	if q <= qc.A {
		return 0
	}
	d := (q - qc.A) / (2 * qc.C2)
	if d > qc.Max {
		return qc.Max
	}
	return d
}

// RespondBid implements core.Bidder: the MPR-INT bidding rule
// b = q·(Δ − δ*(q)) encoding the gain-maximizing reduction exactly.
func (qc QuadCost) RespondBid(price float64) core.Bid {
	if qc.Max <= 0 {
		return core.Bid{}
	}
	b := price * (qc.Max - qc.Respond(price))
	if b < 0 {
		b = 0
	}
	return core.Bid{Delta: qc.Max, B: b}
}

// CooperativeBid returns the analytic cooperative static bid: the
// largest reluctance b = max_q q·(Δ − δ_ref(q)) keeping the supply curve
// below the no-loss reference δ_ref(q) = clamp((q − A)/C2, 0, Max) at
// every price, so the bidder never nets a loss (Section III-C).
func (qc QuadCost) CooperativeBid() core.Bid {
	if qc.Max <= 0 {
		return core.Bid{}
	}
	// f(q) = q·(Max − (q−A)/C2) on [A, A + C2·Max]; below A the
	// reference is zero and f = q·Max is increasing, above the band the
	// reference saturates and f = 0. The interior maximum is at
	// q* = (A + C2·Max)/2 when that lies in the band, else at q = A.
	q := (qc.A + qc.C2*qc.Max) / 2
	if q < qc.A {
		q = qc.A
	}
	ref := (q - qc.A) / qc.C2
	if ref > qc.Max {
		ref = qc.Max
	}
	b := q * (qc.Max - ref)
	if b < 0 {
		b = 0
	}
	return core.Bid{Delta: qc.Max, B: b}
}

// CostPool generates n participants with analytic quadratic costs,
// uniform watts-per-core (the paper's setting, and the regime where the
// market equilibrium coincides with OPT's KKT point), a pool-uniform
// MaxFrac, and rational bidders. The participants' Bid fields carry the
// cooperative static bid so the same pool runs MPR-STAT, MPR-INT, OPT,
// and EQL; Cost/MarginalCost are wired to the quadratic model.
func (g *Gen) CostPool(n int) ([]*core.Participant, []core.Bidder, []QuadCost) {
	ps := make([]*core.Participant, n)
	bidders := make([]core.Bidder, n)
	costs := make([]QuadCost, n)
	watts := 50 + 200*g.rng.Float64()
	maxFrac := 0.3 + 0.6*g.rng.Float64()
	for i := range ps {
		cores := float64(1 + g.rng.Intn(32))
		// The coefficient ranges keep A/(2·C2) small against Max, which
		// (with interior targets) keeps the MPR-INT price iteration a
		// contraction — the regime where the paper's convergence claim
		// applies; see DiffMarketVsOPT.
		qc := QuadCost{
			A:   0.01 + 0.2*g.rng.Float64(),
			C2:  0.5 + 2.5*g.rng.Float64(),
			Max: maxFrac * cores,
		}
		costs[i] = qc
		bidders[i] = qc
		ps[i] = &core.Participant{
			JobID:        fmt.Sprintf("q%d", i),
			Cores:        cores,
			Bid:          qc.CooperativeBid(),
			WattsPerCore: watts,
			MaxFrac:      maxFrac,
			Cost:         qc.Cost,
			MarginalCost: qc.Marginal,
		}
	}
	return ps, bidders, costs
}
