package check

import (
	"bytes"
	"fmt"
	"math"
	"reflect"

	"mpr/internal/power"
	"mpr/internal/runner"
	"mpr/internal/sim"
	"mpr/internal/telemetry/tsdb"
	"mpr/internal/trace"
)

// This file is the simulation-engine differential: the fixed-step and
// event-driven cores (sim.EngineSlot / sim.EngineEvent) must produce
// bit-identical Results — scalars, per-job timelines, telemetry
// counters, trace events, and sampled series — on every configuration
// the simulator accepts. The driver runs both engines over adversarial
// generated workloads and compares exactly, the same discipline
// DiffStream applies to the streaming market.

// SimTrace generates a small adversarial workload: burst submits that
// pile jobs onto one slot (queue contention, overlapping overloads),
// medium strides, and long sparse gaps (the event core's skip regime),
// with core demands up to the whole machine and runtimes that are
// deliberately not whole minutes (fractional remaining work drives the
// finish-threshold float arithmetic both engines must agree on).
func (g *Gen) SimTrace() *trace.Trace {
	totalCores := 8 << g.rng.Intn(4) // 8, 16, 32, or 64
	n := 4 + g.rng.Intn(40)
	jobs := make([]trace.Job, 0, n)
	var submit int64
	for i := 0; i < n; i++ {
		switch r := g.rng.Float64(); {
		case r < 0.50:
			// Burst: same submit slot as the previous job.
		case r < 0.85:
			submit += int64(g.rng.Intn(30)) * 60
		default:
			submit += int64(g.rng.Intn(2000)) * 60 // sparse gap
		}
		runtime := int64(60 + g.rng.Intn(4*3600))
		if g.rng.Float64() < 0.3 {
			runtime = runtime / 60 * 60 // exact whole minutes
		}
		// Mostly narrow jobs: the oversubscribed capacity derives from the
		// workload's no-queueing peak, so bursts must actually fit on the
		// machine for delivered power to reach it and overload.
		cores := 1 + g.rng.Intn(max(1, totalCores/4))
		if g.rng.Float64() < 0.2 {
			cores = 1 + g.rng.Intn(totalCores)
		}
		jobs = append(jobs, trace.Job{
			ID:      i + 1,
			Submit:  submit,
			Runtime: runtime,
			Cores:   cores,
		})
	}
	return &trace.Trace{Name: "engine-diff", TotalCores: totalCores, Jobs: jobs}
}

// SimConfig draws a full simulator configuration over the generated
// trace: every algorithm, oversubscription levels that mostly force
// emergencies, market delays, backfill, participation and bid-factor
// variation, cost errors, power phases, predictive mode, and the dense
// series samplers — each a distinct code path the engine differential
// must pin. Engine and RecordJobs are left for the driver to set.
func (g *Gen) SimConfig() sim.Config {
	algs := []sim.Algorithm{
		sim.AlgMPRStat, sim.AlgMPRStat, sim.AlgMPRInt,
		sim.AlgOPT, sim.AlgEQL, sim.AlgNone,
	}
	cfg := sim.Config{
		Trace:     g.SimTrace(),
		Algorithm: algs[g.rng.Intn(len(algs))],
		Seed:      g.rng.Int63(),
	}
	if g.rng.Float64() < 0.15 {
		cfg.OversubPct = 5 * g.rng.Float64() // rarely overloads
	} else {
		cfg.OversubPct = 8 + 30*g.rng.Float64()
	}
	if g.rng.Float64() < 0.35 {
		// Pin the capacity below the machine's realizable full-power draw
		// so overloads occur whenever utilization climbs, independent of
		// the no-queueing peak the derived capacity is based on.
		perCore := power.DefaultCPUCoreModel.StaticW + power.DefaultCPUCoreModel.DynamicW
		cfg.CapacityOverrideW = (0.55 + 0.4*g.rng.Float64()) * perCore * float64(cfg.Trace.TotalCores)
	}
	cfg.MinOverloadSlots = 1 + g.rng.Intn(3)
	cfg.CooldownSlots = 1 + g.rng.Intn(15)
	if g.rng.Float64() < 0.30 {
		cfg.Backfill = true
	}
	if g.rng.Float64() < 0.35 {
		cfg.MarketDelaySlots = 1 + g.rng.Intn(5)
	}
	if g.rng.Float64() < 0.40 {
		cfg.Participation = 0.2 + 0.8*g.rng.Float64()
	}
	if g.rng.Float64() < 0.30 {
		cfg.StatBidFactor = 0.5 + 1.5*g.rng.Float64()
	}
	if g.rng.Float64() < 0.25 {
		cfg.CostErrorRand = 0.4 * g.rng.Float64()
	}
	if g.rng.Float64() < 0.15 {
		cfg.CostErrorUnder = 0.3 * g.rng.Float64()
	}
	if g.rng.Float64() < 0.20 {
		cfg.PhaseAmp = 0.3 * g.rng.Float64()
		cfg.PhasePeriodSlots = 2 + g.rng.Intn(120)
	}
	if g.rng.Float64() < 0.15 {
		cfg.Predictive = true
	}
	if g.rng.Float64() < 0.12 {
		cfg.SampleSeries = true
		cfg.SeriesCapacity = 256
	}
	if g.rng.Float64() < 0.12 {
		cfg.RecordSeries = 50
	}
	return cfg
}

// DiffEngines runs both simulation cores over adversarial generated
// configurations and requires bit-identical Results. The returned
// error, if any, names the reproducing instance seed; the stats report
// how much overload handling the generated population exercised.
func DiffEngines(baseSeed int64, instances int) (DiffStats, error) {
	parts, err := runner.MapN(0, instances, func(i int) (DiffStats, error) {
		seed := instanceSeed(baseSeed, i)
		g := NewGen(seed)
		var st DiffStats
		if err := diffOneEngines(g, &st); err != nil {
			return st, fmt.Errorf("check: instance seed %d (base %d, instance %d): %w", seed, baseSeed, i, err)
		}
		return st, nil
	})
	if err != nil {
		return DiffStats{}, err
	}
	return foldStats(parts), nil
}

func diffOneEngines(g *Gen, st *DiffStats) error {
	st.Instances++
	cfg := g.SimConfig()
	cfg.RecordJobs = true
	run := func(engine sim.Engine) (*sim.Result, error) {
		c := cfg
		c.Engine = engine
		return sim.Run(c)
	}
	slot, err := run(sim.EngineSlot)
	if err != nil {
		return fmt.Errorf("slot engine: %v", err)
	}
	event, err := run(sim.EngineEvent)
	if err != nil {
		return fmt.Errorf("event engine: %v", err)
	}
	st.Participants += slot.JobsTotal
	st.Emergencies += slot.EmergencyCount
	st.SimSlots += slot.Slots
	return CompareEngineResults(slot, event)
}

// CompareEngineResults requires the two Results to be bit-identical in
// every deterministic dimension: scalar statistics (floats compared by
// bit pattern, not tolerance), per-profile aggregates, per-job
// timelines, downsampled power series, sampled time-series stores
// (compared on their rendered JSONL export), telemetry snapshots, and
// trace events. Wall-clock fields (Event.TimeNS, span durations) are
// the only exclusions: Emit stamps them with real time.
func CompareEngineResults(slot, event *sim.Result) error {
	ints := []struct {
		name string
		a, b int
	}{
		{"Slots", slot.Slots, event.Slots},
		{"OverloadSlots", slot.OverloadSlots, event.OverloadSlots},
		{"EmergencyCount", slot.EmergencyCount, event.EmergencyCount},
		{"EmergencySlots", slot.EmergencySlots, event.EmergencySlots},
		{"InfeasibleEvents", slot.InfeasibleEvents, event.InfeasibleEvents},
		{"JobsTotal", slot.JobsTotal, event.JobsTotal},
		{"JobsCompleted", slot.JobsCompleted, event.JobsCompleted},
		{"JobsAffected", slot.JobsAffected, event.JobsAffected},
		{"MarketInvocations", slot.MarketInvocations, event.MarketInvocations},
	}
	for _, f := range ints {
		if f.a != f.b {
			return fmt.Errorf("%s: slot engine %d, event engine %d", f.name, f.a, f.b)
		}
	}
	floats := []struct {
		name string
		a, b float64
	}{
		{"OversubPct", slot.OversubPct, event.OversubPct},
		{"CapacityW", slot.CapacityW, event.CapacityW},
		{"PeakW", slot.PeakW, event.PeakW},
		{"ReductionCoreH", slot.ReductionCoreH, event.ReductionCoreH},
		{"CostCoreH", slot.CostCoreH, event.CostCoreH},
		{"PaymentCoreH", slot.PaymentCoreH, event.PaymentCoreH},
		{"ExtraCapacityCoreH", slot.ExtraCapacityCoreH, event.ExtraCapacityCoreH},
		{"UsedExtraCoreH", slot.UsedExtraCoreH, event.UsedExtraCoreH},
		{"MeanRuntimeIncrease", slot.MeanRuntimeIncrease, event.MeanRuntimeIncrease},
		{"MeanQueueWaitMin", slot.MeanQueueWaitMin, event.MeanQueueWaitMin},
		{"MeanRounds", slot.MeanRounds, event.MeanRounds},
		{"MeanClearingPrice", slot.MeanClearingPrice, event.MeanClearingPrice},
	}
	for _, f := range floats {
		if math.Float64bits(f.a) != math.Float64bits(f.b) {
			return fmt.Errorf("%s: slot engine %v, event engine %v (bits %016x vs %016x)",
				f.name, f.a, f.b, math.Float64bits(f.a), math.Float64bits(f.b))
		}
	}
	if !reflect.DeepEqual(slot.PerProfile, event.PerProfile) {
		return fmt.Errorf("PerProfile diverged: %+v vs %+v", slot.PerProfile, event.PerProfile)
	}
	if len(slot.Jobs) != len(event.Jobs) {
		return fmt.Errorf("Jobs length: %d vs %d", len(slot.Jobs), len(event.Jobs))
	}
	for i := range slot.Jobs {
		if slot.Jobs[i] != event.Jobs[i] {
			return fmt.Errorf("job %d diverged: %+v vs %+v", slot.Jobs[i].ID, slot.Jobs[i], event.Jobs[i])
		}
	}
	if !reflect.DeepEqual(slot.DemandSeries, event.DemandSeries) {
		return fmt.Errorf("DemandSeries diverged")
	}
	if !reflect.DeepEqual(slot.DeliveredSeries, event.DeliveredSeries) {
		return fmt.Errorf("DeliveredSeries diverged")
	}
	if (slot.Series == nil) != (event.Series == nil) {
		return fmt.Errorf("Series presence: slot %v, event %v", slot.Series != nil, event.Series != nil)
	}
	if slot.Series != nil {
		a, err := renderSeries(slot.Series)
		if err != nil {
			return fmt.Errorf("render slot series: %v", err)
		}
		b, err := renderSeries(event.Series)
		if err != nil {
			return fmt.Errorf("render event series: %v", err)
		}
		if !bytes.Equal(a, b) {
			return fmt.Errorf("sampled series exports differ (%d vs %d bytes)", len(a), len(b))
		}
	}
	if len(slot.TraceEvents) != len(event.TraceEvents) {
		return fmt.Errorf("TraceEvents length: %d vs %d", len(slot.TraceEvents), len(event.TraceEvents))
	}
	for i := range slot.TraceEvents {
		a, b := slot.TraceEvents[i], event.TraceEvents[i]
		a.TimeNS, b.TimeNS = 0, 0 // wall clock, stamped by Emit
		if a != b {
			return fmt.Errorf("trace event %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(slot.Telemetry, event.Telemetry) {
		return fmt.Errorf("telemetry snapshots diverged: %+v vs %+v", slot.Telemetry, event.Telemetry)
	}
	return nil
}

// renderSeries serializes a sampled store at raw resolution; the JSONL
// rendering covers names, timestamps, and values bit-exactly.
func renderSeries(s *tsdb.Store) ([]byte, error) {
	var buf bytes.Buffer
	if err := tsdb.WriteJSONL(&buf, s.Query(tsdb.Query{Resolution: tsdb.ResRaw})); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
