// Package check is the verification harness of the market stack: a
// seeded, deterministic property-based and differential testing
// subsystem for the MClr solvers (closed-form segmented index,
// bisection), the capped market, the interactive MPR-INT market, and the
// OPT/EQL benchmark algorithms.
//
// It has three layers:
//
//   - Generators (gen.go): seeded random market instances — participant
//     pools with adversarial shapes (zero-b fully willing bids, duplicate
//     activation prices, Δ = 0 never-suppliers, degenerate
//     single-participant markets), power-reduction targets below, at, and
//     above total capacity, and analytic quadratic-cost pools whose OPT
//     solution is known through the KKT conditions.
//
//   - Invariant oracles (oracle.go): machine-checkable encodings of the
//     paper's equilibrium properties — cleared supply meets demand within
//     tolerance, the clearing price is minimal and lies within the
//     activation-price structure, per-participant reductions stay in
//     [0, Δ], payout consistency q′·Σδ, capped clears never exceed the
//     price cap, and the OPT ≤ STAT and OPT ≤ EQL cost ordering.
//
//   - Differential drivers (diff.go): cross-checks that run thousands of
//     generated instances through independent solver implementations
//     (ClearClosedForm vs ClearBisection, capped variants, MPR-INT vs the
//     OPT KKT dual fast path) and fail with the reproducing instance seed
//     on any disagreement or invariant violation.
//
// The package's own test suite additionally hosts the native Go fuzz
// targets (FuzzClear, FuzzClearCapped, FuzzMarketIndex, FuzzSWFParse;
// seed corpus under testdata/fuzz/) and the metamorphic suites
// (participant-permutation invariance, power-of-two scale invariance).
// Everything is deterministic for a fixed seed: a reported seed
// reproduces the failing instance exactly.
//
// Shared floating-point comparison helpers live in the dependency-free
// subpackage check/floats so in-package (white-box) tests anywhere in
// the module can use them without import cycles.
package check
