package check

import (
	"math"
	"testing"
	"time"

	"mpr/internal/core"
)

const diffSeedStream = 0x5eed_0004

// TestDiffStream is the streaming-vs-batch differential gate: over
// thousands of randomized update sequences (bid updates, removals,
// appends, retargets), the streamed clearing outcome must stay within
// the harness float tolerance of a from-scratch batch clear after every
// single prefix.
func TestDiffStream(t *testing.T) {
	start := time.Now()
	st, err := DiffStream(diffSeedStream, diffInstances(t), 96, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stream vs batch: %d sequences, %d updates, %d participants, %d infeasible, %d singleton in %v",
		st.Instances, st.Updates, st.Participants, st.Infeasible, st.Singleton, time.Since(start))
	if st.Instances < diffInstances(t) {
		t.Errorf("ran %d sequences, want ≥ %d", st.Instances, diffInstances(t))
	}
	if st.Updates < 10*st.Instances {
		t.Errorf("applied %d updates over %d sequences, want 10 per sequence", st.Updates, st.Instances)
	}
	if st.Infeasible == 0 {
		t.Error("no infeasible states reached")
	}
	if st.Singleton == 0 {
		t.Error("no degenerate single-participant markets generated")
	}
}

// TestDiffStreamLargePools widens the pool sizes so treap descents cross
// recursion-depth regimes; fewer sequences, same comparisons.
func TestDiffStreamLargePools(t *testing.T) {
	if testing.Short() {
		t.Skip("large pools skipped in -short")
	}
	st, err := DiffStream(diffSeedStream+7, 300, 2048, 6)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instances != 300 {
		t.Errorf("ran %d sequences, want 300", st.Instances)
	}
}

// streamFromPool builds a stream market or fails the test.
func streamFromPool(t *testing.T, ps []*core.Participant, target float64) *core.StreamMarket {
	t.Helper()
	sm, err := core.NewStreamMarket(ps, target)
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

// Metamorphic: deltas on distinct indices commute bit-for-bit. The treap
// with fixed index-hashed priorities is a unique function of its
// (key, index) set, so the final tree shape — and every float summation
// order inside it — cannot depend on the order the deltas arrived in.
func TestMetamorphicStreamCommute(t *testing.T) {
	for i := 0; i < metaInstances; i++ {
		g := NewGen(instanceSeed(0xc0_2200, i))
		ps := g.Pool(2 + g.PoolSize(60))
		target := g.Target(MaxSupplyW(ps))
		a := g.rng.Intn(len(ps))
		b := g.rng.Intn(len(ps) - 1)
		if b >= a {
			b++
		}
		da := core.ParticipantDelta{Index: a, Bid: core.Bid{Delta: 8 * g.rng.Float64(), B: 5 * g.rng.Float64()}}
		db := core.ParticipantDelta{Index: b, Bid: core.Bid{Delta: 8 * g.rng.Float64(), B: 5 * g.rng.Float64()}}
		if g.rng.Float64() < 0.3 {
			da.Remove = true
		}
		apply := func(first, second core.ParticipantDelta) (float64, bool) {
			sm := streamFromPool(t, ps, target)
			if _, _, err := sm.Apply(first); err != nil {
				t.Fatal(err)
			}
			if _, _, err := sm.Apply(second); err != nil {
				t.Fatal(err)
			}
			return sm.Price()
		}
		p1, f1 := apply(da, db)
		p2, f2 := apply(db, da)
		if p1 != p2 || f1 != f2 {
			t.Fatalf("instance %d: deltas do not commute: (%v,%v) vs (%v,%v)", i, p1, f1, p2, f2)
		}
	}
}

// Metamorphic: a market driven to a state by incremental deltas is
// bit-identical to one built directly from that final state — the update
// history leaves no residue in the tree shape or the aggregates.
func TestMetamorphicStreamHistoryFree(t *testing.T) {
	for i := 0; i < metaInstances; i++ {
		g := NewGen(instanceSeed(0xc0_2201, i))
		ps := g.Pool(g.PoolSize(60))
		target := g.Target(MaxSupplyW(ps))
		sm := streamFromPool(t, ps, target)
		final := make([]*core.Participant, len(ps))
		for j, p := range ps {
			cp := *p
			final[j] = &cp
		}
		for u := 0; u < 12; u++ {
			d, next, _ := streamDelta(g, final)
			final = next
			if _, _, err := sm.Apply(d); err != nil {
				t.Fatal(err)
			}
		}
		fresh := streamFromPool(t, final, target)
		p1, f1 := sm.Price()
		p2, f2 := fresh.Price()
		if p1 != p2 || f1 != f2 {
			t.Fatalf("instance %d: history residue: incremental (%v,%v) vs fresh (%v,%v)", i, p1, f1, p2, f2)
		}
		if sm.MaxSupplyW() != fresh.MaxSupplyW() {
			t.Fatalf("instance %d: capacity %v vs %v", i, sm.MaxSupplyW(), fresh.MaxSupplyW())
		}
	}
}

// Metamorphic: applying a delta and then restoring the original bid
// returns the price bit-for-bit — remove/reinsert round trips restore
// the exact tree.
func TestMetamorphicStreamRevert(t *testing.T) {
	for i := 0; i < metaInstances; i++ {
		g := NewGen(instanceSeed(0xc0_2202, i))
		ps := g.Pool(g.PoolSize(60))
		sm := streamFromPool(t, ps, g.Target(MaxSupplyW(ps)))
		p0, f0 := sm.Price()
		j := g.rng.Intn(len(ps))
		orig := ps[j].Bid
		d := core.ParticipantDelta{Index: j, Bid: core.Bid{Delta: 8 * g.rng.Float64(), B: 5 * g.rng.Float64()}}
		if g.rng.Float64() < 0.3 {
			d.Remove = true
		}
		if _, _, err := sm.Apply(d); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sm.Apply(core.ParticipantDelta{Index: j, Bid: orig}); err != nil {
			t.Fatal(err)
		}
		if p1, f1 := sm.Price(); p1 != p0 || f1 != f0 {
			t.Fatalf("instance %d: revert did not restore the price: (%v,%v) vs (%v,%v)", i, p1, f1, p0, f0)
		}
	}
}

// FuzzStreamMarket interleaves Apply on a stream market with
// SetBid/Refresh/Reset on a twin batch index, fuzzing both the initial
// pool and the operation sequence, and asserts price and
// per-participant reduction agreement after every operation.
func FuzzStreamMarket(f *testing.F) {
	f.Add(2.0, 1.0, 100.0, 4.0, 0.5, 150.0, 1.0, 2.0, 80.0, 0.5, int64(42))
	f.Add(0.0, 0.0, 100.0, 3.0, 0.0, 100.0, 3.0, 1.5, 100.0, 0.9, int64(7))
	f.Add(3.0, 1.5, 120.0, 6.0, 3.0, 120.0, 3.0, 1.5, 120.0, 1.25, int64(-1))
	f.Fuzz(func(t *testing.T, d1, b1, w1, d2, b2, w2, d3, b3, w3, tf float64, opSeed int64) {
		ps, ok := fuzzPool([9]float64{d1, b1, w1, d2, b2, w2, d3, b3, w3})
		if !ok {
			t.Skip()
		}
		target, ok := fuzzTarget(ps, tf)
		if !ok {
			t.Skip()
		}
		sm, err := core.NewStreamMarket(ps, target)
		if err != nil {
			t.Fatalf("stream build: %v", err)
		}
		twin := make([]*core.Participant, len(ps))
		for i, p := range ps {
			cp := *p
			twin[i] = &cp
		}
		ix, err := core.NewMarketIndex(twin)
		if err != nil {
			t.Fatalf("index build: %v", err)
		}
		compare := func(ordinal int) {
			var got, want core.ClearingResult
			if err := sm.ClearInto(&got); err != nil {
				t.Fatalf("op %d: stream clear: %v", ordinal, err)
			}
			ix.Refresh()
			if err := ix.ClearInto(&want, sm.Target()); err != nil {
				t.Fatalf("op %d: batch clear: %v", ordinal, err)
			}
			if err := compareClears(twin, sm.Target(), &got, &want); err != nil {
				t.Fatalf("op %d: stream vs batch: %v", ordinal, err)
			}
		}
		compare(0)
		g := NewGen(opSeed)
		ops := 1 + g.rng.Intn(24)
		for u := 1; u <= ops; u++ {
			d, next, kind := streamDelta(g, twin)
			grew := len(next) != len(twin)
			twin = next
			if _, _, err := sm.Apply(d); err != nil {
				t.Fatalf("op %d (%s): %v", u, kind, err)
			}
			if grew {
				// The batch index has no append; rebind it to the grown
				// pool — a Reset interleaving in its own right.
				if err := ix.Reset(twin); err != nil {
					t.Fatalf("op %d: reset: %v", u, err)
				}
			} else if err := ix.SetBid(d.Index, twin[d.Index].Bid); err != nil {
				t.Fatalf("op %d: SetBid: %v", u, err)
			} else if d.WattsPerCore > 0 && !d.Remove {
				// Watts changes are outside SetBid's contract; rebind.
				if err := ix.Reset(twin); err != nil {
					t.Fatalf("op %d: reset: %v", u, err)
				}
			}
			if g.rng.Float64() < 0.15 {
				sm.SetTarget(g.Target(MaxSupplyW(twin)))
			}
			compare(u)
		}
		if p, _ := sm.Price(); math.IsNaN(p) || p < 0 || p > priceUpperBound {
			t.Fatalf("stream price out of range: %v", p)
		}
	})
}
