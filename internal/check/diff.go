package check

import (
	"fmt"
	"math"

	"mpr/internal/core"
	"mpr/internal/runner"
)

// DiffStats summarizes a differential run for reporting: how many
// instances ran and how the generated shapes were distributed, so a
// passing run can be audited for coverage rather than trusted blindly.
type DiffStats struct {
	Instances    int // generated instances executed
	Participants int // total participants across all instances
	Infeasible   int // instances whose target exceeded capacity
	Singleton    int // degenerate single-participant markets
	Capped       int // capped instances that settled at the cap
	Updates      int // streaming deltas applied (DiffStream only)
	Emergencies  int // declared emergencies across instances (DiffEngines only)
	SimSlots     int // simulated slots across instances (DiffEngines only)

	// Cost-ordering aggregates (DiffMarketVsOPT only): total cost per
	// algorithm summed over all instances, and the count of instances
	// where STAT cost exceeded EQL's. The paper's STAT ≤ EQL claim is
	// statistical, so it is asserted on these aggregates.
	OPTCost      float64
	StatCost     float64
	EQLCost      float64
	StatAboveEQL int
}

// add folds o into st field by field. The differential drivers run
// instances in parallel and fold the per-instance stats in ascending
// instance order, which performs the same additions in the same order
// as the serial loop did — the aggregates (including the float cost
// sums) are bit-identical at any worker count.
func (st *DiffStats) add(o DiffStats) {
	st.Instances += o.Instances
	st.Participants += o.Participants
	st.Infeasible += o.Infeasible
	st.Singleton += o.Singleton
	st.Capped += o.Capped
	st.Updates += o.Updates
	st.Emergencies += o.Emergencies
	st.SimSlots += o.SimSlots
	st.OPTCost += o.OPTCost
	st.StatCost += o.StatCost
	st.EQLCost += o.EQLCost
	st.StatAboveEQL += o.StatAboveEQL
}

// foldStats reduces per-instance stats in index order (see add).
func foldStats(parts []DiffStats) DiffStats {
	var st DiffStats
	for _, p := range parts {
		st.add(p)
	}
	return st
}

// instanceSeed derives the per-instance seed from the base seed. A
// failing instance is reproduced by NewGen(instanceSeed(base, i)) alone;
// the multiplier decorrelates neighboring streams (LCG constant).
// Instances are fully determined by their seed, never by execution
// order, which is what lets the drivers fan out across the runner pool.
func instanceSeed(base int64, i int) int64 {
	return base + int64(i)*1664525
}

// DiffClearModes cross-checks the closed-form segmented solver against
// the bisection solver on instances generated instances of up to maxN
// participants: both must agree on feasibility, clearing price,
// per-participant reductions, and supplied power to the harness
// tolerance, and each result must independently satisfy the full
// invariant catalog. The returned error, if any, names the reproducing
// instance seed.
func DiffClearModes(baseSeed int64, instances, maxN int) (DiffStats, error) {
	parts, err := runner.MapN(0, instances, func(i int) (DiffStats, error) {
		seed := instanceSeed(baseSeed, i)
		g := NewGen(seed)
		ps := g.Pool(g.PoolSize(maxN))
		target := g.Target(MaxSupplyW(ps))
		var st DiffStats
		if err := diffOneClear(ps, target, &st); err != nil {
			return st, fmt.Errorf("check: instance seed %d (base %d, instance %d): %w", seed, baseSeed, i, err)
		}
		return st, nil
	})
	if err != nil {
		return DiffStats{}, err
	}
	return foldStats(parts), nil
}

func diffOneClear(ps []*core.Participant, target float64, st *DiffStats) error {
	st.Instances++
	st.Participants += len(ps)
	if len(ps) == 1 {
		st.Singleton++
	}
	cf, err := core.ClearWithMode(ps, target, core.ClearClosedForm)
	if err != nil {
		return fmt.Errorf("closed form: %v", err)
	}
	bi, err := core.ClearWithMode(ps, target, core.ClearBisection)
	if err != nil {
		return fmt.Errorf("bisection: %v", err)
	}
	if err := CheckClearing(ps, target, cf); err != nil {
		return fmt.Errorf("closed form violates invariants: %v", err)
	}
	if err := CheckClearing(ps, target, bi); err != nil {
		return fmt.Errorf("bisection violates invariants: %v", err)
	}
	if !cf.Feasible {
		st.Infeasible++
	}
	return compareClears(ps, target, cf, bi)
}

// compareClears asserts solver agreement. Prices are compared only away
// from the saturation boundary: within 1e-9 of full capacity the
// clearing price diverges to a solver-specific saturation sentinel
// (supply is flat there to machine precision), so the meaningful
// agreement is on feasibility, supplied power, and reductions.
func compareClears(ps []*core.Participant, target float64, a, b *core.ClearingResult) error {
	maxW := MaxSupplyW(ps)
	nearSaturation := target >= maxW*(1-Tol)
	if !nearSaturation {
		if a.Feasible != b.Feasible {
			return fmt.Errorf("feasibility %v vs %v (target %v, capacity %v)", a.Feasible, b.Feasible, target, maxW)
		}
		if a.Feasible {
			// The bisection's guarantee is bracket-relative (1e-13·hi
			// with hi ≤ max(maxActivation, 2q′)), so the honest price
			// tolerance carries an activation-scale term: it matters
			// only when the clearing price is orders of magnitude below
			// the largest activation price (tiny targets under
			// reluctant pools).
			var maxAct float64
			for _, p := range ps {
				if p.Bid.Delta > 0 {
					if act := p.Bid.ActivationPrice(); act > maxAct {
						maxAct = act
					}
				}
			}
			tol := Tol*(1+a.Price) + 1e-12*math.Max(maxAct, 2*a.Price)
			if d := math.Abs(a.Price - b.Price); d > tol {
				return fmt.Errorf("price %v vs %v (Δ %.3g > %.3g)", a.Price, b.Price, d, tol)
			}
		}
	}
	if d := math.Abs(a.SuppliedW - b.SuppliedW); d > Tol*(1+maxW) {
		return fmt.Errorf("supplied %v vs %v", a.SuppliedW, b.SuppliedW)
	}
	rtol := Tol
	if nearSaturation {
		// At the capacity boundary the two sentinel prices can differ by
		// orders of magnitude; each participant's withheld amount b/q has
		// only been driven below the solvers' saturation thresholds.
		rtol = saturationTol
	}
	for i := range ps {
		tol := rtol * (1 + ps[i].Bid.Delta)
		if d := math.Abs(a.Reductions[i] - b.Reductions[i]); d > tol {
			return fmt.Errorf("reduction[%d] %v vs %v (Δ %.3g)", i, a.Reductions[i], b.Reductions[i], d)
		}
	}
	return nil
}

// DiffCapped cross-checks ClearCapped between the closed-form
// short-circuit path and the bisection clear-then-discard path. Caps are
// drawn relative to the uncapped clearing price — binding, loose, and
// exactly at the clearing price — plus caps below every activation
// price (zero-trade markets).
func DiffCapped(baseSeed int64, instances, maxN int) (DiffStats, error) {
	parts, err := runner.MapN(0, instances, func(i int) (DiffStats, error) {
		var st DiffStats
		seed := instanceSeed(baseSeed, i)
		g := NewGen(seed)
		ps := g.Pool(g.PoolSize(maxN))
		maxW := MaxSupplyW(ps)
		target := g.Target(maxW)
		if target >= maxW*(1-Tol) && target <= maxW*(1+Tol) {
			// Exactly-at-capacity targets have solver-specific saturation
			// prices; the uncapped driver covers that boundary. Keep the
			// capped driver on targets that are clearly feasible or
			// clearly infeasible.
			target = 0.5 * maxW
		}
		if target <= 0 {
			target = 1 // dead pool: capacity-infeasible under any cap
		}
		priceCap, err := drawCap(g, ps, target)
		if err != nil {
			return st, fmt.Errorf("check: instance seed %d: %v", seed, err)
		}
		if err := diffOneCapped(ps, target, priceCap, &st); err != nil {
			return st, fmt.Errorf("check: instance seed %d (base %d, instance %d): %w", seed, baseSeed, i, err)
		}
		return st, nil
	})
	if err != nil {
		return DiffStats{}, err
	}
	return foldStats(parts), nil
}

// drawCap picks a price cap shape: a multiple of the uncapped clearing
// price (binding below 1, exact at 1, loose above), or a cap below every
// activation price so the capped market trades nothing.
func drawCap(g *Gen, ps []*core.Participant, target float64) (float64, error) {
	r := g.rng.Float64()
	if r < 0.15 {
		// Below every positive activation price: zero trade unless a
		// fully willing (b = 0) participant exists.
		minAct := math.Inf(1)
		for _, p := range ps {
			if p.Bid.Delta > 0 && p.Bid.B > 0 {
				if a := p.Bid.ActivationPrice(); a < minAct {
					minAct = a
				}
			}
		}
		if !math.IsInf(minAct, 1) && minAct > 0 {
			return minAct / 2, nil
		}
	}
	un, err := core.ClearWithMode(ps, target, core.ClearClosedForm)
	if err != nil {
		return 0, fmt.Errorf("uncapped clear for cap draw: %v", err)
	}
	base := un.Price
	if base <= 0 {
		base = 1
	}
	switch {
	case r < 0.3:
		return base, nil // cap exactly at the uncapped clearing price
	case r < 0.65:
		return base * (0.1 + 0.9*g.rng.Float64()), nil // binding
	default:
		return base * (1 + 2*g.rng.Float64()), nil // loose
	}
}

func diffOneCapped(ps []*core.Participant, target, priceCap float64, st *DiffStats) error {
	st.Instances++
	st.Participants += len(ps)
	cf, err := core.ClearCappedWithMode(ps, target, priceCap, core.ClearClosedForm)
	if err != nil {
		return fmt.Errorf("closed form: %v", err)
	}
	bi, err := core.ClearCappedWithMode(ps, target, priceCap, core.ClearBisection)
	if err != nil {
		return fmt.Errorf("bisection: %v", err)
	}
	if err := CheckCapped(ps, target, priceCap, cf); err != nil {
		return fmt.Errorf("closed form violates invariants: %v", err)
	}
	if err := CheckCapped(ps, target, priceCap, bi); err != nil {
		return fmt.Errorf("bisection violates invariants: %v", err)
	}
	maxW := MaxSupplyW(ps)
	if maxW < target*(1-Tol) {
		// Capacity-infeasible regardless of the cap. The closed form
		// settles at the cap; the bisection may instead report its
		// saturation price when that lies under the cap — the agreement
		// is on infeasibility and on the (saturated or cap-limited)
		// supply, not on the sentinel price.
		if cf.Feasible || bi.Feasible {
			return fmt.Errorf("capacity-infeasible (capacity %v < target %v) but feasibility %v/%v",
				maxW, target, cf.Feasible, bi.Feasible)
		}
		if cf.Rounds == 0 {
			st.Capped++
		}
		if math.Abs(cf.SuppliedW-bi.SuppliedW) > Tol*(1+maxW) {
			return fmt.Errorf("capacity-infeasible supplied %v vs %v", cf.SuppliedW, bi.SuppliedW)
		}
		for i := range ps {
			tol := saturationTol * (1 + ps[i].Bid.Delta)
			if d := math.Abs(cf.Reductions[i] - bi.Reductions[i]); d > tol {
				return fmt.Errorf("capacity-infeasible reduction[%d] %v vs %v", i, cf.Reductions[i], bi.Reductions[i])
			}
		}
		return nil
	}
	if cf.Rounds == 0 {
		st.Capped++
		// Both modes settled at the cap: the materialized supply at the
		// cap must agree bit for bit (same evaluation, no search).
		if cf.Price != bi.Price {
			return fmt.Errorf("capped settlement price %v vs %v", cf.Price, bi.Price)
		}
		for i := range ps {
			if cf.Reductions[i] != bi.Reductions[i] {
				return fmt.Errorf("capped reduction[%d] %v vs %v", i, cf.Reductions[i], bi.Reductions[i])
			}
		}
		if cf.Feasible != bi.Feasible {
			return fmt.Errorf("capped feasibility %v vs %v", cf.Feasible, bi.Feasible)
		}
		return nil
	}
	return compareClears(ps, target, cf, bi)
}

// DiffMarketVsOPT cross-checks the interactive market (MPR-INT with
// exact rational bidders) against the OPT KKT dual fast path on analytic
// quadratic-cost pools: with uniform watts-per-core and price-taking
// bidders the market equilibrium must coincide with the social optimum
// (the Johari-Tsitsiklis efficiency result the paper builds on). Also
// verifies the paper's OPT ≤ STAT ≤ EQL total-cost ordering with
// cooperative static bids on the same pool.
func DiffMarketVsOPT(baseSeed int64, instances, maxN int) (DiffStats, error) {
	parts, err := runner.MapN(0, instances, func(i int) (DiffStats, error) {
		var st DiffStats
		seed := instanceSeed(baseSeed, i)
		g := NewGen(seed)
		n := 1 + g.rng.Intn(maxN)
		ps, bidders, costs := g.CostPool(n)
		// Interior target band: every algorithm (including EQL's uniform
		// fraction, bounded by the pool-uniform MaxFrac) stays feasible,
		// and the MPR-INT price iteration stays contractive — its map
		// slope at the fixed point is 1 − Σw(A/(2C2)+δ)/Σw(Max−δ), which
		// the [0.15, 0.6]·capacity band keeps inside (−1, 1) for the
		// generator's coefficient ranges.
		var capW float64
		for _, p := range ps {
			capW += p.WattsPerCore * p.MaxReduction()
		}
		target := capW * (0.15 + 0.45*g.rng.Float64())
		if err := diffOneMarketVsOPT(ps, bidders, costs, target, &st); err != nil {
			return st, fmt.Errorf("check: instance seed %d (base %d, instance %d): %w", seed, baseSeed, i, err)
		}
		return st, nil
	})
	if err != nil {
		return DiffStats{}, err
	}
	return foldStats(parts), nil
}

func diffOneMarketVsOPT(ps []*core.Participant, bidders []core.Bidder, costs []QuadCost, target float64, st *DiffStats) error {
	st.Instances++
	st.Participants += len(ps)
	if len(ps) == 1 {
		st.Singleton++
	}
	intRes, err := core.ClearInteractive(ps, bidders, target, core.InteractiveConfig{
		MaxRounds: 800,
		Tolerance: 1e-9,
	})
	if err != nil {
		return fmt.Errorf("MPR-INT: %v", err)
	}
	if !intRes.Converged {
		return fmt.Errorf("MPR-INT did not converge in %d rounds (price %v)", intRes.Rounds, intRes.Price)
	}
	if intRes.SuppliedW < target-1e-6*(1+target) {
		return fmt.Errorf("MPR-INT supplied %v short of target %v", intRes.SuppliedW, target)
	}
	opt, err := core.SolveOPT(ps, target, core.OPTDual)
	if err != nil {
		return fmt.Errorf("OPT dual: %v", err)
	}
	if err := CheckAllocation(ps, target, opt); err != nil {
		return fmt.Errorf("OPT violates invariants: %v", err)
	}
	if !opt.Feasible {
		return fmt.Errorf("OPT infeasible at interior target %v", target)
	}
	// Equilibrium efficiency: the interactive allocation matches OPT's
	// KKT point participant by participant, and its total cost matches
	// the optimum. Tolerances reflect the price-iteration and dual-
	// bisection stopping rules, not model disagreement.
	var intCost float64
	for i := range ps {
		intCost += costs[i].Cost(intRes.Reductions[i])
		bound := 1e-5 * (1 + costs[i].Max)
		if d := math.Abs(intRes.Reductions[i] - opt.Reductions[i]); d > bound {
			return fmt.Errorf("allocation[%d]: MPR-INT %v vs OPT %v (Δ %.3g)", i, intRes.Reductions[i], opt.Reductions[i], d)
		}
	}
	if opt.TotalCost > 0 {
		ratio := intCost / opt.TotalCost
		if ratio < 1-1e-6 {
			return fmt.Errorf("MPR-INT cost %v below OPT %v — OPT not optimal", intCost, opt.TotalCost)
		}
		if ratio > 1+1e-4 {
			return fmt.Errorf("MPR-INT cost %v above OPT %v (ratio %v)", intCost, opt.TotalCost, ratio)
		}
	}
	// Cost ordering with cooperative static bids on the same pool.
	stat, err := core.Clear(ps, target)
	if err != nil {
		return fmt.Errorf("MPR-STAT: %v", err)
	}
	if err := CheckClearing(ps, target, stat); err != nil {
		return fmt.Errorf("MPR-STAT violates invariants: %v", err)
	}
	eql, err := core.SolveEQL(ps, target)
	if err != nil {
		return fmt.Errorf("EQL: %v", err)
	}
	if err := CheckAllocation(ps, target, eql); err != nil {
		return fmt.Errorf("EQL violates invariants: %v", err)
	}
	if stat.Feasible && eql.Feasible {
		var statCost float64
		for i := range ps {
			statCost += costs[i].Cost(stat.Reductions[i])
		}
		if err := CheckCostOrdering(opt.TotalCost, statCost, eql.TotalCost); err != nil {
			return err
		}
		st.OPTCost += opt.TotalCost
		st.StatCost += statCost
		st.EQLCost += eql.TotalCost
		if statCost > eql.TotalCost {
			st.StatAboveEQL++
		}
	}
	return nil
}
