package core

import (
	"fmt"
	"math"
)

// StreamMarket is the continuously-clearing MClr engine: where
// MarketIndex amortizes batch rebuilds (any activation-order change
// costs an O(M log M) re-sort plus an O(M) prefix-sum rebuild), the
// stream market keeps the participants in an order-statistic structure
// keyed by activation price, so a single bid insert, update, or removal
// — including the re-clear that follows it — is O(log M) with zero
// steady-state heap allocations.
//
// The structure is an implicit treap over (activation price, participant
// index), arena-backed with exactly one node slot per participant (the
// arena slot *is* the participant index, so no free list is needed).
// Each node carries its own weighted terms wΔ = W·Δ and wb = W·b and the
// subtree aggregates (count, ΣwΔ, Σwb). Treap priorities are a fixed
// hash of the participant index (splitmix64), which makes the tree shape
// — and therefore the floating-point summation order of the aggregates —
// a deterministic function of the update history alone: replaying the
// same deltas reproduces every published price bit for bit. Against the
// batch MarketIndex (whose sums fold in activation order) prices agree
// to the harness float tolerance, not bit-identically; the differential
// and metamorphic suites in internal/check enforce that bound after
// every prefix of randomized update sequences.
//
// Clearing uses the same closed-form segment mathematics as MarketIndex:
// the aggregate supply over the active prefix {i : aᵢ ≤ q} is
// S(q) = ΣwΔ − Σwb/q, and the minimal clearing price solves exactly per
// activation segment as q′ = Σwb/(ΣwΔ − target). The stream market finds
// the segment in a single ordered descent — at each node the left-subtree
// aggregates extend the accumulated prefix, giving the supply at that
// node's breakpoint in O(1) — so a full re-clear is O(log M) expected,
// not O(log² M) like the batch index's breakpoint bisection.
//
// A StreamMarket is not safe for concurrent use.
type StreamMarket struct {
	target float64 // current power-reduction target in watts

	watts  []float64 // WattsPerCore per slot
	bids   []Bid     // current bid per slot
	active []bool    // slot participates (false after Remove)
	nodes  []streamNode

	root int32

	price    float64 // cached clearing price for target
	feasible bool    // cached feasibility for target
}

// streamNode is one arena slot of the treap. Slot i always describes
// participant i; it is linked into the tree only while the participant
// is active with Δ > 0 (a Δ = 0 bid can never supply and would sort at
// +Inf contributing nothing, exactly as MarketIndex pushes such entries
// past every segment).
type streamNode struct {
	key         float64 // activation price b/Δ
	wd, wb      float64 // W·Δ, W·b for this participant
	left, right int32   // arena indices; -1 = nil
	inTree      bool

	// Subtree aggregates, folded left-to-right (left + self + right) so
	// the summation order is fixed by the tree shape.
	cnt      int32
	swd, swb float64
}

const streamNil = int32(-1)

// streamPrio is the fixed treap priority of participant i: splitmix64 of
// the index. Deterministic and index-only, so the tree shape never
// depends on bid values or wall-clock state.
func streamPrio(i int32) uint64 {
	z := uint64(i) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ParticipantDelta is one streaming market update: a bid replacement for
// an existing slot, an append of a new participant (Index == Len()), or
// a removal. WattsPerCore == 0 keeps the slot's current coefficient; it
// must be positive when appending.
type ParticipantDelta struct {
	// Index addresses the participant slot; Index == Len() appends.
	Index int
	// Bid is the new supply function (ignored when Remove is set).
	Bid Bid
	// WattsPerCore replaces the slot's power coefficient when positive;
	// zero keeps the current value. Required (positive) on an append.
	WattsPerCore float64
	// Remove deactivates the slot: it supplies nothing and clears to a
	// zero reduction until a later Apply re-activates it with a new bid.
	Remove bool
}

// ParticipantRangeError reports a participant index outside a market's
// slot range — the typed form of what used to be an index panic.
type ParticipantRangeError struct {
	Index int // offending index
	Len   int // number of participant slots
}

func (e *ParticipantRangeError) Error() string {
	return fmt.Sprintf("core: participant index %d out of range [0,%d)", e.Index, e.Len)
}

// NewStreamMarket validates the participants and builds the streaming
// market over their current bids, clearing once against targetW. The
// market keeps its own copy of the bids; later changes to the
// participants are not seen unless applied via Apply.
func NewStreamMarket(ps []*Participant, targetW float64) (*StreamMarket, error) {
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	n := len(ps)
	sm := &StreamMarket{
		target: targetW,
		watts:  make([]float64, n),
		bids:   make([]Bid, n),
		active: make([]bool, n),
		nodes:  make([]streamNode, n),
		root:   streamNil,
	}
	for i, p := range ps {
		sm.watts[i] = p.WattsPerCore
		sm.bids[i] = p.Bid
		sm.active[i] = true
		sm.link(int32(i))
	}
	sm.recompute()
	return sm, nil
}

// Len returns the number of participant slots (active or removed).
func (sm *StreamMarket) Len() int { return len(sm.bids) }

// Price returns the cached clearing price for the current target — the
// price after the most recent Apply/SetTarget — and its feasibility.
func (sm *StreamMarket) Price() (price float64, feasible bool) {
	return sm.price, sm.feasible
}

// Target returns the current power-reduction target in watts.
func (sm *StreamMarket) Target() float64 { return sm.target }

// MaxSupplyW returns the aggregate supply ceiling ΣWΔ in watts over the
// active participants.
func (sm *StreamMarket) MaxSupplyW() float64 {
	if sm.root == streamNil {
		return 0
	}
	return sm.nodes[sm.root].swd
}

// SetTarget re-clears the market against a new power-reduction target in
// O(log M) and returns the new price.
func (sm *StreamMarket) SetTarget(targetW float64) (price float64, feasible bool) {
	sm.target = targetW
	sm.recompute()
	return sm.price, sm.feasible
}

// Apply incorporates one participant delta — bid update, append, or
// removal — and incrementally re-clears the market, all in O(log M) with
// no steady-state heap allocation (appends beyond the arena's capacity
// grow it, like any slice). The returned price is the market's new
// clearing price for the current target. Out-of-range indices return a
// *ParticipantRangeError with the market state untouched.
func (sm *StreamMarket) Apply(d ParticipantDelta) (price float64, feasible bool, err error) {
	n := len(sm.bids)
	if d.Index < 0 || d.Index > n || (d.Index == n && d.Remove) {
		return sm.price, sm.feasible, &ParticipantRangeError{Index: d.Index, Len: n}
	}
	if d.WattsPerCore < 0 {
		return sm.price, sm.feasible, fmt.Errorf("core: watts-per-core must be positive, got %v", d.WattsPerCore)
	}
	if !d.Remove {
		if err := d.Bid.Validate(); err != nil {
			return sm.price, sm.feasible, err
		}
	}
	if d.Index == n { // append a new participant slot
		if d.WattsPerCore == 0 {
			return sm.price, sm.feasible, fmt.Errorf("core: appending participant %d requires a positive watts-per-core", d.Index)
		}
		sm.watts = append(sm.watts, d.WattsPerCore)
		sm.bids = append(sm.bids, d.Bid)
		sm.active = append(sm.active, true)
		sm.nodes = append(sm.nodes, streamNode{})
		sm.link(int32(d.Index))
		sm.recompute()
		return sm.price, sm.feasible, nil
	}
	i := int32(d.Index)
	watts := sm.watts[i]
	if d.WattsPerCore > 0 {
		watts = d.WattsPerCore
	}
	if d.Remove {
		if !sm.active[i] {
			return sm.price, sm.feasible, nil
		}
		sm.unlink(i)
		sm.active[i] = false
		sm.recompute()
		return sm.price, sm.feasible, nil
	}
	if sm.active[i] && watts == sm.watts[i] && sm.bids[i] == d.Bid {
		// Unchanged bid: static rebidders between rounds cost nothing.
		return sm.price, sm.feasible, nil
	}
	sm.unlink(i)
	sm.watts[i] = watts
	sm.bids[i] = d.Bid
	sm.active[i] = true
	sm.link(i)
	sm.recompute()
	return sm.price, sm.feasible, nil
}

// ClearInto materializes the full clearing outcome at the current target
// into res, reusing res.Reductions when its capacity suffices (the same
// zero-allocation steady-state contract as MarketIndex.ClearInto). The
// O(M) cost is the per-participant materialization, not a re-solve: the
// price is the cached O(log M) streaming clear.
func (sm *StreamMarket) ClearInto(res *ClearingResult) error {
	n := len(sm.bids)
	if cap(res.Reductions) >= n {
		res.Reductions = res.Reductions[:n]
	} else {
		res.Reductions = make([]float64, n)
	}
	res.Price = 0
	res.SuppliedW = 0
	res.TargetW = sm.target
	res.Feasible = true
	res.PayoutRate = 0
	res.Rounds = 1
	res.Converged = true
	if sm.target <= 0 {
		for i := range res.Reductions {
			res.Reductions[i] = 0
		}
		return nil
	}
	if n == 0 {
		return ErrNoParticipants
	}
	res.Price = sm.price
	res.Feasible = sm.feasible
	var total float64
	for i := range sm.bids {
		var d float64
		if sm.active[i] {
			d = sm.bids[i].Supply(sm.price)
		}
		res.Reductions[i] = d
		res.SuppliedW += sm.watts[i] * d
		total += d
	}
	res.PayoutRate = sm.price * total
	return nil
}

// SupplyW evaluates the aggregate supply S(q) in watts over the active
// participants in O(log M).
func (sm *StreamMarket) SupplyW(q float64) float64 {
	var wd, wb float64
	t := sm.root
	for t != streamNil {
		nd := &sm.nodes[t]
		if nd.key <= q {
			if l := nd.left; l != streamNil {
				wd += sm.nodes[l].swd
				wb += sm.nodes[l].swb
			}
			wd += nd.wd
			wb += nd.wb
			t = nd.right
		} else {
			t = nd.left
		}
	}
	if wb == 0 || q <= 0 {
		// Only fully willing (b = 0) participants are active at q ≤ 0,
		// so the withheld term vanishes in both cases.
		return wd
	}
	return wd - wb/q
}

// recompute re-solves the cached (price, feasible) pair for the current
// target. O(log M) expected.
func (sm *StreamMarket) recompute() {
	sm.price, sm.feasible = sm.solvePrice(sm.target)
}

// solvePrice is the streaming MClr solve: the minimal price q′ with
// S(q′) ≥ targetW, or a saturation price and feasible=false when even
// full supply falls short — the same contract as MarketIndex.minPrice,
// found in one ordered treap descent instead of a breakpoint bisection.
func (sm *StreamMarket) solvePrice(targetW float64) (price float64, feasible bool) {
	met().priceSearches.Inc()
	if targetW <= 0 {
		return 0, true
	}
	maxW := sm.MaxSupplyW()
	if maxW < targetW {
		return sm.saturationPrice(), false
	}
	if sm.SupplyW(0) >= targetW {
		return 0, true
	}
	// Descend for the minimal breakpoint whose supply meets the target.
	// At node t, accWD/accWB hold the aggregates of every entry ordered
	// strictly before t's subtree; adding t's left subtree gives the
	// prefix strictly below t's breakpoint, whose withheld term at q =
	// t.key yields the supply there (entries activating exactly at t.key
	// contribute zero at their own activation price). Supply is
	// non-decreasing along the breakpoint order, so the descent below
	// finds the leftmost satisfying node, exactly like the batch binary
	// search finds the minimal index.
	var accWD, accWB float64
	found := streamNil
	prevKey := 0.0 // key of the found node's in-order predecessor
	hasPrev := false
	t := sm.root
	for t != streamNil {
		nd := &sm.nodes[t]
		wd, wb := accWD, accWB
		if l := nd.left; l != streamNil {
			wd += sm.nodes[l].swd
			wb += sm.nodes[l].swb
		}
		sup := wd
		if wb > 0 && nd.key > 0 {
			sup = wd - wb/nd.key
		}
		if sup >= targetW {
			found = t
			t = nd.left
		} else {
			accWD = wd + nd.wd
			accWB = wb + nd.wb
			prevKey = nd.key
			hasPrev = true
			t = nd.right
		}
	}
	denom := accWD - targetW
	if denom <= 0 {
		if found != streamNil {
			// Numerical corner: the segment's ceiling equals the target;
			// the breakpoint itself clears (its activating participants
			// supply zero there).
			return sm.nodes[found].key, true
		}
		// target == maxW with withheld supply: saturation only in the
		// limit q → ∞; settle where the withheld amount rounds away.
		return sm.saturationPrice(), true
	}
	q := accWB / denom
	// Clamp into the segment against floating-point drift: the price may
	// not fall below the last breakpoint whose supply was short, nor
	// above the breakpoint that met the target.
	if hasPrev && q < prevKey {
		q = prevKey
	}
	if found != streamNil && q > sm.nodes[found].key {
		q = sm.nodes[found].key
	}
	return q, true
}

// saturationPrice doubles from the largest activation price until the
// withheld aggregate Wb/q is below 1e-9 W, capped at 1e15 and bounded by
// saturationIterCap — the same saturation rule as the batch index.
func (sm *StreamMarket) saturationPrice() float64 {
	q := 1e-6
	if t := sm.maxKey(); t > q {
		q = t
	}
	maxW := sm.MaxSupplyW()
	for iter := 0; sm.SupplyW(q) < maxW-1e-9 && q < 1e15 && iter < saturationIterCap; iter++ {
		q *= 2
	}
	return q
}

// maxKey returns the largest activation price in the tree (0 when empty).
func (sm *StreamMarket) maxKey() float64 {
	t := sm.root
	if t == streamNil {
		return 0
	}
	for sm.nodes[t].right != streamNil {
		t = sm.nodes[t].right
	}
	return sm.nodes[t].key
}

// --- treap plumbing ------------------------------------------------------

// link (re)derives slot i's node fields from the current bid and inserts
// it into the tree when it can ever supply (Δ > 0).
func (sm *StreamMarket) link(i int32) {
	nd := &sm.nodes[i]
	b := sm.bids[i]
	if b.Delta <= 0 {
		nd.inTree = false
		return
	}
	nd.key = b.B / b.Delta
	nd.wd = sm.watts[i] * b.Delta
	nd.wb = sm.watts[i] * b.B
	nd.left, nd.right = streamNil, streamNil
	nd.inTree = true
	sm.pull(i)
	sm.root = sm.insert(sm.root, i)
}

// unlink detaches slot i from the tree if present.
func (sm *StreamMarket) unlink(i int32) {
	if !sm.nodes[i].inTree {
		return
	}
	sm.root = sm.delete(sm.root, i)
	sm.nodes[i].inTree = false
}

// less orders nodes by (activation price, participant index); the index
// tie-break makes the in-order sequence — and with it every aggregate's
// summation order — unique for a given set of (index, bid) pairs.
func (sm *StreamMarket) less(a, b int32) bool {
	ka, kb := sm.nodes[a].key, sm.nodes[b].key
	if ka != kb {
		return ka < kb
	}
	return a < b
}

// pull re-derives t's subtree aggregates from its children, folding
// left + self + right so the summation order is the tree shape's.
func (sm *StreamMarket) pull(t int32) {
	nd := &sm.nodes[t]
	cnt, swd, swb := int32(1), nd.wd, nd.wb
	if l := nd.left; l != streamNil {
		ld := &sm.nodes[l]
		cnt += ld.cnt
		swd = ld.swd + swd
		swb = ld.swb + swb
	}
	if r := nd.right; r != streamNil {
		rd := &sm.nodes[r]
		cnt += rd.cnt
		swd += rd.swd
		swb += rd.swb
	}
	nd.cnt, nd.swd, nd.swb = cnt, swd, swb
}

// insert adds node n (fields already derived) under t, returning the new
// subtree root. Expected O(log M), no allocation.
func (sm *StreamMarket) insert(t, n int32) int32 {
	if t == streamNil {
		return n
	}
	if streamPrio(n) > streamPrio(t) {
		l, r := sm.splitAt(t, n)
		sm.nodes[n].left, sm.nodes[n].right = l, r
		sm.pull(n)
		return n
	}
	if sm.less(n, t) {
		sm.nodes[t].left = sm.insert(sm.nodes[t].left, n)
	} else {
		sm.nodes[t].right = sm.insert(sm.nodes[t].right, n)
	}
	sm.pull(t)
	return t
}

// splitAt splits subtree t around node n's (key, index) position into
// (< n, > n) halves. n itself is never inside t.
func (sm *StreamMarket) splitAt(t, n int32) (int32, int32) {
	if t == streamNil {
		return streamNil, streamNil
	}
	if sm.less(t, n) {
		l, r := sm.splitAt(sm.nodes[t].right, n)
		sm.nodes[t].right = l
		sm.pull(t)
		return t, r
	}
	l, r := sm.splitAt(sm.nodes[t].left, n)
	sm.nodes[t].left = r
	sm.pull(t)
	return l, t
}

// delete removes node n from subtree t, returning the new subtree root.
func (sm *StreamMarket) delete(t, n int32) int32 {
	if t == streamNil {
		return streamNil
	}
	if t == n {
		return sm.merge(sm.nodes[t].left, sm.nodes[t].right)
	}
	if sm.less(n, t) {
		sm.nodes[t].left = sm.delete(sm.nodes[t].left, n)
	} else {
		sm.nodes[t].right = sm.delete(sm.nodes[t].right, n)
	}
	sm.pull(t)
	return t
}

// merge joins two ordered subtrees (every key in a precedes b).
func (sm *StreamMarket) merge(a, b int32) int32 {
	if a == streamNil {
		return b
	}
	if b == streamNil {
		return a
	}
	if streamPrio(a) > streamPrio(b) {
		sm.nodes[a].right = sm.merge(sm.nodes[a].right, b)
		sm.pull(a)
		return a
	}
	sm.nodes[b].left = sm.merge(a, sm.nodes[b].left)
	sm.pull(b)
	return b
}

// depth returns the current tree height — exported to tests only through
// the white-box suite; expected O(log M) by the treap's priority hash.
func (sm *StreamMarket) depth() int {
	var walk func(t int32) int
	walk = func(t int32) int {
		if t == streamNil {
			return 0
		}
		l := walk(sm.nodes[t].left)
		r := walk(sm.nodes[t].right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return walk(sm.root)
}

// checkInvariants validates the treap ordering, heap property, and
// aggregate consistency — the white-box test hook.
func (sm *StreamMarket) checkInvariants() error {
	var walk func(t int32, lo, hi float64) (int32, float64, float64, error)
	walk = func(t int32, lo, hi float64) (int32, float64, float64, error) {
		if t == streamNil {
			return 0, 0, 0, nil
		}
		nd := &sm.nodes[t]
		if !nd.inTree {
			return 0, 0, 0, fmt.Errorf("node %d linked but not marked inTree", t)
		}
		if nd.key < lo || nd.key > hi {
			return 0, 0, 0, fmt.Errorf("node %d key %v outside (%v, %v)", t, nd.key, lo, hi)
		}
		if l := nd.left; l != streamNil {
			if streamPrio(l) > streamPrio(t) {
				return 0, 0, 0, fmt.Errorf("heap violation at %d/%d", t, l)
			}
			if !sm.less(l, t) {
				return 0, 0, 0, fmt.Errorf("order violation at %d/%d", t, l)
			}
		}
		if r := nd.right; r != streamNil {
			if streamPrio(r) > streamPrio(t) {
				return 0, 0, 0, fmt.Errorf("heap violation at %d/%d", t, r)
			}
			if !sm.less(t, r) {
				return 0, 0, 0, fmt.Errorf("order violation at %d/%d", t, r)
			}
		}
		lc, lwd, lwb, err := walk(nd.left, lo, nd.key)
		if err != nil {
			return 0, 0, 0, err
		}
		rc, rwd, rwb, err := walk(nd.right, nd.key, hi)
		if err != nil {
			return 0, 0, 0, err
		}
		cnt := lc + 1 + rc
		swd := lwd + nd.wd + rwd
		swb := lwb + nd.wb + rwb
		if cnt != nd.cnt {
			return 0, 0, 0, fmt.Errorf("node %d count %d, want %d", t, nd.cnt, cnt)
		}
		if math.Abs(swd-nd.swd) > 1e-6*(1+math.Abs(swd)) || math.Abs(swb-nd.swb) > 1e-6*(1+math.Abs(swb)) {
			return 0, 0, 0, fmt.Errorf("node %d aggregates (%v, %v), want (%v, %v)", t, nd.swd, nd.swb, swd, swb)
		}
		return cnt, nd.swd, nd.swb, nil
	}
	_, _, _, err := walk(sm.root, math.Inf(-1), math.Inf(1))
	return err
}
