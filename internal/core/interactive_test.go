package core

import (
	"math"
	"testing"
	"testing/quick"

	"mpr/internal/check/floats"
	"mpr/internal/perf"
)

func interactiveSetup(t testing.TB, apps []string, cores float64) ([]*Participant, []Bidder) {
	t.Helper()
	ps := make([]*Participant, len(apps))
	bs := make([]Bidder, len(apps))
	for i, a := range apps {
		p, model := newParticipant(t, a, a, cores)
		ps[i] = p
		bs[i] = &RationalBidder{Cores: cores, Model: model}
	}
	return ps, bs
}

func TestInteractiveConverges(t *testing.T) {
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD", "HPCCG", "SWFFT", "miniMD", "miniFE"}
	ps, bs := interactiveSetup(t, apps, 16)
	target := 4000.0
	res, err := ClearInteractive(ps, bs, target, InteractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d rounds (price %v)", res.Rounds, res.Price)
	}
	if res.SuppliedW < target-1e-6 {
		t.Errorf("supplied %v < target %v", res.SuppliedW, target)
	}
	if res.Rounds < 2 {
		t.Errorf("suspiciously fast convergence: %d rounds", res.Rounds)
	}
}

// The paper's optimality claim: MPR-INT's cost of performance loss is
// within a small factor of OPT's (Fig. 9(a): "nearly the same level").
func TestInteractiveNearOptimal(t *testing.T) {
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD", "HPCCG", "SWFFT", "miniMD", "miniFE"}
	for _, target := range []float64{2000, 4000, 6000} {
		ps, bs := interactiveSetup(t, apps, 16)
		intRes, err := ClearInteractive(ps, bs, target, InteractiveConfig{})
		if err != nil {
			t.Fatal(err)
		}
		optRes, err := SolveOPT(ps, target, OPTDual)
		if err != nil {
			t.Fatal(err)
		}
		var intCost float64
		for i, p := range ps {
			intCost += p.Cost(intRes.Reductions[i])
		}
		if optRes.TotalCost <= 0 {
			t.Fatalf("OPT cost = %v", optRes.TotalCost)
		}
		ratio := intCost / optRes.TotalCost
		if ratio < 0.999 {
			t.Errorf("target %v: MPR-INT cost %v below OPT %v — OPT not optimal?", target, intCost, optRes.TotalCost)
		}
		if ratio > 1.15 {
			t.Errorf("target %v: MPR-INT cost %v too far above OPT %v (ratio %.3f)", target, intCost, optRes.TotalCost, ratio)
		}
	}
}

// MPR-STAT with cooperative bids costs at least as much as MPR-INT
// (Fig. 9(a): STAT incurs notably more cost than OPT/INT).
func TestStaticCostsAtLeastInteractive(t *testing.T) {
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD", "HPCCG", "SWFFT", "miniMD", "miniFE"}
	target := 5000.0
	ps, bs := interactiveSetup(t, apps, 16)

	statRes, err := Clear(ps, target) // cooperative bids set by newParticipant
	if err != nil {
		t.Fatal(err)
	}
	var statCost float64
	for i, p := range ps {
		statCost += p.Cost(statRes.Reductions[i])
	}
	intRes, err := ClearInteractive(ps, bs, target, InteractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var intCost float64
	for i, p := range ps {
		intCost += p.Cost(intRes.Reductions[i])
	}
	if statCost < intCost-1e-6 {
		t.Errorf("MPR-STAT cost %v below MPR-INT %v", statCost, intCost)
	}
}

// Iteration count stays essentially flat as the number of jobs grows — the
// paper's Fig. 10(b).
func TestInteractiveIterationsFlat(t *testing.T) {
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD"}
	rounds := map[int]int{}
	for _, n := range []int{8, 64, 512} {
		names := make([]string, n)
		for i := range names {
			names[i] = apps[i%len(apps)]
		}
		ps, bs := interactiveSetup(t, names, 8)
		// Target scales with pool size so the market stress is constant.
		target := float64(n) * 8 * 125 * 0.3
		res, err := ClearInteractive(ps, bs, target, InteractiveConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d did not converge", n)
		}
		rounds[n] = res.Rounds
	}
	if r8, r512 := rounds[8], rounds[512]; r512 > 3*r8+5 {
		t.Errorf("iterations grew with jobs: %v", rounds)
	}
}

func TestInteractiveZeroTarget(t *testing.T) {
	ps, bs := interactiveSetup(t, []string{"XSBench"}, 4)
	res, err := ClearInteractive(ps, bs, 0, InteractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Rounds != 0 || res.Price != 0 {
		t.Errorf("zero target result = %+v", res)
	}
}

func TestInteractiveMismatch(t *testing.T) {
	ps, _ := interactiveSetup(t, []string{"XSBench"}, 4)
	if _, err := ClearInteractive(ps, nil, 100, InteractiveConfig{}); err == nil {
		t.Error("bidder/participant mismatch accepted")
	}
}

func TestInteractiveNoParticipants(t *testing.T) {
	if _, err := ClearInteractive(nil, nil, 100, InteractiveConfig{}); err != ErrNoParticipants {
		t.Errorf("err = %v, want ErrNoParticipants", err)
	}
}

func TestInteractiveWithStaticBidders(t *testing.T) {
	// Mixed market: half rational, half static cooperative — models
	// partial MPR-INT adoption.
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD"}
	ps, bs := interactiveSetup(t, apps, 16)
	for i := 0; i < 2; i++ {
		prof, _ := perf.ProfileByName(apps[i])
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		bs[i] = &StaticBidder{Fixed: CooperativeBid(16, model)}
	}
	target := 2500.0
	res, err := ClearInteractive(ps, bs, target, InteractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.SuppliedW < target-1e-6 {
		t.Errorf("mixed market result = %+v", res)
	}
}

func TestOPTDualMeetsTarget(t *testing.T) {
	ps := testPool(t)
	target := 4000.0
	res, err := SolveOPT(ps, target, OPTDual)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.SuppliedW < target-1e-4 {
		t.Errorf("OPT result = %+v", res)
	}
	// Bounds respected.
	for i, p := range ps {
		if res.Reductions[i] < -1e-12 || res.Reductions[i] > p.MaxReduction()+1e-9 {
			t.Errorf("reduction %d out of bounds: %v", i, res.Reductions[i])
		}
	}
}

func TestOPTGenericNearDual(t *testing.T) {
	ps := testPool(t)
	target := 4000.0
	gen, err := SolveOPT(ps, target, OPTGeneric)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := SolveOPT(ps, target, OPTDual)
	if err != nil {
		t.Fatal(err)
	}
	if !gen.Feasible {
		t.Fatal("generic infeasible")
	}
	if gen.TotalCost < dual.TotalCost-1e-6 {
		t.Errorf("generic beat dual optimum: %v < %v", gen.TotalCost, dual.TotalCost)
	}
	if (gen.TotalCost-dual.TotalCost)/dual.TotalCost > 0.05 {
		t.Errorf("generic too far from optimum: %v vs %v", gen.TotalCost, dual.TotalCost)
	}
}

// OPT shifts reductions to insensitive applications: RSBench (least
// sensitive) must give up more than SimpleMOC (most sensitive) per core.
func TestOPTFavorsInsensitiveApps(t *testing.T) {
	ps := testPool(t)
	res, err := SolveOPT(ps, 3000, OPTDual)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]float64{}
	for i, p := range ps {
		byID[p.JobID] = res.Reductions[i]
	}
	if byID["RSBench"] <= byID["SimpleMOC"] {
		t.Errorf("RSBench reduction %v should exceed SimpleMOC %v", byID["RSBench"], byID["SimpleMOC"])
	}
}

func TestOPTRequiresCostFunctions(t *testing.T) {
	p := &Participant{JobID: "x", Cores: 4, WattsPerCore: 125, MaxFrac: 0.7, Bid: Bid{Delta: 2.8}}
	if _, err := SolveOPT([]*Participant{p}, 100, OPTDual); err == nil {
		t.Error("OPT without cost functions accepted")
	}
}

func TestOPTZeroTargetAndEmpty(t *testing.T) {
	res, err := SolveOPT(nil, 0, OPTDual)
	if err != nil || !res.Feasible {
		t.Errorf("zero target: %v %+v", err, res)
	}
	if _, err := SolveOPT(nil, 10, OPTDual); err != ErrNoParticipants {
		t.Errorf("err = %v", err)
	}
}

func TestEQLUniformFraction(t *testing.T) {
	ps := testPool(t)
	target := 3000.0
	res, err := SolveEQL(ps, target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.SuppliedW < target-1e-6 {
		t.Fatalf("EQL result = %+v", res)
	}
	// All fractions equal.
	frac0 := res.Reductions[0] / ps[0].Cores
	for i, p := range ps {
		f := res.Reductions[i] / p.Cores
		if !floats.AbsEqual(f, frac0, 1e-9) {
			t.Errorf("fraction %d = %v, want uniform %v", i, f, frac0)
		}
	}
}

func TestEQLInfeasibleBeyondFloor(t *testing.T) {
	ps := testPool(t)
	// min MaxFrac = 0.7 → max supply = Σ cores·0.7·125 = 8400 W.
	res, err := SolveEQL(ps, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("EQL should be infeasible beyond the uniform floor")
	}
	for i, p := range ps {
		if !floats.AbsEqual(res.Reductions[i]/p.Cores, 0.7, 1e-9) {
			t.Errorf("infeasible EQL should saturate at min MaxFrac")
		}
	}
}

// EQL's cost always at least OPT's — it is performance-oblivious.
func TestEQLCostAtLeastOPT(t *testing.T) {
	ps := testPool(t)
	for _, target := range []float64{1000, 3000, 6000} {
		eql, err := SolveEQL(ps, target)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := SolveOPT(ps, target, OPTDual)
		if err != nil {
			t.Fatal(err)
		}
		if eql.TotalCost < opt.TotalCost-1e-9 {
			t.Errorf("target %v: EQL cost %v below OPT %v", target, eql.TotalCost, opt.TotalCost)
		}
	}
}

func TestEQLZeroTargetAndEmpty(t *testing.T) {
	res, err := SolveEQL(nil, 0)
	if err != nil || !res.Feasible {
		t.Errorf("zero target: %v %+v", err, res)
	}
	if _, err := SolveEQL(nil, 5); err != ErrNoParticipants {
		t.Errorf("err = %v", err)
	}
}

func TestOPTMethodString(t *testing.T) {
	if OPTGeneric.String() != "generic" || OPTDual.String() != "dual" || OPTMethod(9).String() != "unknown" {
		t.Error("OPTMethod strings")
	}
}

// Property (Johari-Tsitsiklis / [21]): with price-taking rational bidders
// and convex costs, the interactive market's equilibrium allocation
// equalizes marginal costs and therefore matches the social optimum, for
// random pools and targets.
func TestInteractiveEquilibriumEfficiencyProperty(t *testing.T) {
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD", "HPCCG", "SWFFT", "miniMD", "miniFE"}
	prop := func(seed uint8, rawFrac float64) bool {
		frac := 0.15 + math.Mod(math.Abs(rawFrac), 0.6) // 15-75% of max supply
		n := 4 + int(seed%5)
		names := make([]string, n)
		for i := range names {
			names[i] = apps[(int(seed)+i)%len(apps)]
		}
		cores := 4 + float64(seed%3)*8
		ps, bs := interactiveSetup(t, names, cores)
		var maxW float64
		for _, p := range ps {
			maxW += p.WattsPerCore * p.MaxFrac * p.Cores
		}
		target := frac * maxW
		intRes, err := ClearInteractive(ps, bs, target, InteractiveConfig{})
		if err != nil || !intRes.Converged {
			return false
		}
		optRes, err := SolveOPT(ps, target, OPTDual)
		if err != nil || !optRes.Feasible {
			return false
		}
		var intCost float64
		for i, p := range ps {
			intCost += p.Cost(intRes.Reductions[i])
		}
		if optRes.TotalCost <= 1e-9 {
			return intCost <= 1e-6
		}
		ratio := intCost / optRes.TotalCost
		return ratio > 0.98 && ratio < 1.10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
