package core

import (
	"fmt"
	"sort"
)

// SolvePriority implements the priority-aware capping strategy of
// large-scale data centers (the paper's related work [32], [49]): jobs are
// tiered by priority and the manager saturates the reduction of the
// lowest tier before touching the next one, splitting proportionally
// within a tier. Like EQL it is performance-oblivious — it never sees the
// users' cost structure — but it respects business priorities, so it sits
// between EQL and the market in the cost spectrum whenever priorities
// correlate with performance sensitivity.
//
// priorities[i] is job i's tier; larger values are more important and are
// cut last.
func SolvePriority(ps []*Participant, priorities []int, targetW float64) (*AllocationResult, error) {
	if len(priorities) != len(ps) {
		return nil, fmt.Errorf("core: %d participants but %d priorities", len(ps), len(priorities))
	}
	res := &AllocationResult{
		Reductions: make([]float64, len(ps)),
		TargetW:    targetW,
		Feasible:   true,
	}
	if targetW <= 0 {
		return res, nil
	}
	if len(ps) == 0 {
		return nil, ErrNoParticipants
	}
	for _, p := range ps {
		if p.WattsPerCore <= 0 {
			return nil, fmt.Errorf("core: participant %s: watts-per-core must be positive", p.JobID)
		}
	}

	// Group indices by tier, lowest first.
	byTier := map[int][]int{}
	for i := range ps {
		byTier[priorities[i]] = append(byTier[priorities[i]], i)
	}
	tiers := make([]int, 0, len(byTier))
	for t := range byTier {
		tiers = append(tiers, t)
	}
	sort.Ints(tiers)

	remaining := targetW
	for _, tier := range tiers {
		if remaining <= 0 {
			break
		}
		idxs := byTier[tier]
		var tierMaxW float64
		for _, i := range idxs {
			tierMaxW += ps[i].WattsPerCore * ps[i].MaxReduction()
		}
		if tierMaxW <= 0 {
			continue
		}
		frac := remaining / tierMaxW
		if frac > 1 {
			frac = 1
		}
		for _, i := range idxs {
			red := frac * ps[i].MaxReduction()
			res.Reductions[i] = red
			w := ps[i].WattsPerCore * red
			res.SuppliedW += w
			remaining -= w
			if ps[i].Cost != nil {
				res.TotalCost += ps[i].Cost(red)
			}
		}
	}
	if remaining > 1e-9 {
		res.Feasible = false
	}
	return res, nil
}
