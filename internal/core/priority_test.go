package core

import (
	"testing"

	"mpr/internal/check/floats"
)

func TestPriorityCutsLowTierFirst(t *testing.T) {
	ps := testPool(t) // 6 participants, 16 cores each
	prios := []int{0, 0, 1, 1, 2, 2}
	// A small target only the lowest tier should cover:
	// tier-0 max supply = 2 × 16 × 0.7 × 125 = 2800 W.
	res, err := SolvePriority(ps, prios, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.SuppliedW < 2000-1e-6 {
		t.Fatalf("result = %+v", res)
	}
	for i := 2; i < 6; i++ {
		if res.Reductions[i] != 0 {
			t.Errorf("higher tier %d was cut: %v", i, res.Reductions[i])
		}
	}
	if res.Reductions[0] <= 0 || res.Reductions[1] <= 0 {
		t.Error("lowest tier not cut")
	}
}

func TestPriorityCascades(t *testing.T) {
	ps := testPool(t)
	prios := []int{0, 0, 1, 1, 2, 2}
	// Beyond tier 0's 2800 W: tier 0 saturates, tier 1 supplies the rest.
	res, err := SolvePriority(ps, prios, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	for i := 0; i < 2; i++ {
		if !floats.AbsEqual(res.Reductions[i], ps[i].MaxReduction(), 1e-9) {
			t.Errorf("tier 0 job %d not saturated: %v", i, res.Reductions[i])
		}
	}
	if res.Reductions[2] <= 0 || res.Reductions[3] <= 0 {
		t.Error("tier 1 untouched despite cascade")
	}
	for i := 4; i < 6; i++ {
		if res.Reductions[i] != 0 {
			t.Errorf("tier 2 cut prematurely: %v", res.Reductions[i])
		}
	}
}

func TestPriorityInfeasible(t *testing.T) {
	ps := testPool(t)
	prios := make([]int, len(ps))
	res, err := SolvePriority(ps, prios, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("should be infeasible")
	}
	for i, p := range ps {
		if !floats.AbsEqual(res.Reductions[i], p.MaxReduction(), 1e-9) {
			t.Errorf("job %d not saturated under infeasibility", i)
		}
	}
}

func TestPriorityValidation(t *testing.T) {
	ps := testPool(t)
	if _, err := SolvePriority(ps, []int{1}, 100); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SolvePriority(nil, nil, 100); err != ErrNoParticipants {
		t.Errorf("err = %v", err)
	}
	res, err := SolvePriority(nil, nil, 0)
	if err != nil || !res.Feasible {
		t.Errorf("zero target: %v %+v", err, res)
	}
	bad := &Participant{JobID: "b", Cores: 4, WattsPerCore: 0, MaxFrac: 0.7}
	if _, err := SolvePriority([]*Participant{bad}, []int{0}, 10); err == nil {
		t.Error("invalid participant accepted")
	}
}

// When priorities correlate with sensitivity (sensitive apps prioritized),
// priority capping beats EQL but not OPT.
func TestPriorityCostBetweenEQLAndOPT(t *testing.T) {
	ps := testPool(t) // XSBench, RSBench, SimpleMOC, CoMD, HPCCG, SWFFT
	// Priorities by sensitivity: sensitive apps high.
	prios := []int{2, 0, 3, 1, 0, 3} // XSBench 2, RSBench 0, SimpleMOC 3, CoMD 1, HPCCG 0, SWFFT 3
	target := 3000.0
	pri, err := SolvePriority(ps, prios, target)
	if err != nil {
		t.Fatal(err)
	}
	eql, err := SolveEQL(ps, target)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SolveOPT(ps, target, OPTDual)
	if err != nil {
		t.Fatal(err)
	}
	if pri.TotalCost >= eql.TotalCost {
		t.Errorf("sensitivity-aligned priorities should beat EQL: %v vs %v", pri.TotalCost, eql.TotalCost)
	}
	if pri.TotalCost < opt.TotalCost-1e-9 {
		t.Errorf("priority capping beat OPT: %v vs %v", pri.TotalCost, opt.TotalCost)
	}
}
