package core

import (
	"fmt"
	"math"
)

// Bidder is the user side of the interactive market: given the manager's
// announced price, return an updated bid. Rational users respond with the
// bid that maximizes their net gain (Eqn. (7)); RationalBidder in
// bidding.go implements that strategy.
type Bidder interface {
	RespondBid(price float64) Bid
}

// InteractiveConfig parameterizes the MPR-INT market loop.
type InteractiveConfig struct {
	// InitialPrice is the price the manager announces to open the market
	// (q′₀ in Section III-B). Default 0.1.
	InitialPrice float64
	// MaxRounds bounds the number of manager↔user exchanges; the paper
	// suggests a timeout (e.g. 30 s) after which the last price stands.
	// Default 100.
	MaxRounds int
	// Tolerance is the relative price change below which the market is
	// considered converged (Nash equilibrium reached). Default 1e-6.
	Tolerance float64
}

func (c *InteractiveConfig) normalize() {
	if c.InitialPrice <= 0 {
		c.InitialPrice = 0.1
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 100
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
}

// ClearInteractive runs the MPR-INT market: the manager announces a price,
// every user responds with its gain-maximizing bid, the manager re-clears
// MClr with the fresh bids, and the exchange repeats until the clearing
// price stabilizes (guaranteed for the paper's supply function when users
// bid rationally against convex costs) or MaxRounds is exhausted.
//
// ps[i].Bid is ignored; bidders[i] supplies job i's bid each round. The
// returned result's Rounds counts the exchanges and Converged reports
// whether the price stabilized within the budget.
func ClearInteractive(ps []*Participant, bidders []Bidder, targetW float64, cfg InteractiveConfig) (*ClearingResult, error) {
	if len(ps) != len(bidders) {
		return nil, fmt.Errorf("core: %d participants but %d bidders", len(ps), len(bidders))
	}
	cfg.normalize()
	if targetW <= 0 {
		return &ClearingResult{
			Reductions: make([]float64, len(ps)),
			Feasible:   true, Converged: true, Rounds: 0,
		}, nil
	}
	if len(ps) == 0 {
		return nil, ErrNoParticipants
	}

	q := cfg.InitialPrice
	var res *ClearingResult
	var err error
	for round := 1; round <= cfg.MaxRounds; round++ {
		for i, b := range bidders {
			ps[i].Bid = b.RespondBid(q)
		}
		res, err = Clear(ps, targetW)
		if err != nil {
			return nil, err
		}
		res.Rounds = round
		if math.Abs(res.Price-q) <= cfg.Tolerance*math.Max(q, 1e-12) {
			res.Converged = true
			return res, nil
		}
		q = res.Price
	}
	res.Converged = false
	return res, nil
}
