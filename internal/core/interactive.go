package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mpr/internal/telemetry"
)

// Bidder is the user side of the interactive market: given the manager's
// announced price, return an updated bid. Rational users respond with the
// bid that maximizes their net gain (Eqn. (7)); RationalBidder in
// bidding.go implements that strategy.
//
// ClearInteractive may invoke different bidders' RespondBid concurrently
// (never the same bidder twice at once), so a Bidder must not mutate
// state shared with other bidders. The package's bidders (RationalBidder,
// StaticBidder) are read-only during RespondBid and satisfy this.
type Bidder interface {
	RespondBid(price float64) Bid
}

// InteractiveConfig parameterizes the MPR-INT market loop.
type InteractiveConfig struct {
	// InitialPrice is the price the manager announces to open the market
	// (q′₀ in Section III-B). Default 0.1.
	InitialPrice float64
	// MaxRounds bounds the number of manager↔user exchanges; the paper
	// suggests a timeout (e.g. 30 s) after which the last price stands.
	// Default 100.
	MaxRounds int
	// Tolerance is the relative price change below which the market is
	// considered converged (Nash equilibrium reached). Default 1e-6.
	Tolerance float64
	// Workers bounds the parallel RespondBid fan-out per round: 0 uses
	// GOMAXPROCS, 1 forces sequential bidding. Results are written by
	// bidder index, so the outcome is bit-identical to sequential.
	Workers int
	// Mode selects the per-round MClr solver (default: closed form).
	Mode ClearMode
	// Trace, when set, receives one "int_round" event per manager↔user
	// exchange (round number, announced price, cleared price, aggregate
	// supply) — the convergence trajectory of Figs. 9-11. Nil (the
	// default) emits nothing and costs nothing.
	Trace *telemetry.Trace
	// Span, when set, is the enclosing trace span: each exchange records
	// a "market_round" child containing a "respond_bids" grandchild, so
	// span views show where market wall-time goes. Nil records nothing.
	Span *telemetry.ActiveSpan
}

func (c *InteractiveConfig) normalize() {
	if c.InitialPrice <= 0 {
		c.InitialPrice = 0.1
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 100
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
}

// parallelBidFloor is the pool size below which the rebid fan-out stays
// sequential: goroutine startup dwarfs a handful of RespondBid calls.
const parallelBidFloor = 64

// respondBids collects every bidder's response to the announced price
// into out, fanning out across a bounded worker pool when the pool is
// large enough to pay for it. Workers claim fixed-size chunks of the
// bidder range and write results by index, so the output is
// deterministic and bit-identical to the sequential loop.
func respondBids(bidders []Bidder, price float64, out []Bid, workers int) {
	n := len(bidders)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < parallelBidFloor {
		for i, b := range bidders {
			out[i] = b.RespondBid(price)
		}
		return
	}
	const chunk = 32
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(chunk)) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					out[i] = bidders[i].RespondBid(price)
				}
			}
		}()
	}
	wg.Wait()
}

// ClearInteractive runs the MPR-INT market: the manager announces a price,
// every user responds with its gain-maximizing bid, the manager re-clears
// MClr with the fresh bids, and the exchange repeats until the clearing
// price stabilizes (guaranteed for the paper's supply function when users
// bid rationally against convex costs) or MaxRounds is exhausted.
//
// ps[i].Bid is ignored and left untouched — bidders[i] supplies job i's
// bid each round, and all per-round bids live in an internal working set,
// so the caller's participants are never mutated. Rebidding fans out
// across cfg.Workers goroutines (bit-identical to sequential), and the
// per-round MClr solve reuses one MarketIndex across rounds, refreshing
// only the bids that actually changed. The returned result's Rounds
// counts the exchanges and Converged reports whether the price stabilized
// within the budget.
func ClearInteractive(ps []*Participant, bidders []Bidder, targetW float64, cfg InteractiveConfig) (*ClearingResult, error) {
	if len(ps) != len(bidders) {
		return nil, fmt.Errorf("core: %d participants but %d bidders", len(ps), len(bidders))
	}
	cfg.normalize()
	if targetW <= 0 {
		return &ClearingResult{
			Reductions: make([]float64, len(ps)),
			Feasible:   true, Converged: true, Rounds: 0,
		}, nil
	}
	if len(ps) == 0 {
		return nil, ErrNoParticipants
	}

	// Working copies: the market operates on these, never on ps.
	work := make([]Participant, len(ps))
	workPtrs := make([]*Participant, len(ps))
	for i, p := range ps {
		work[i] = *p
		workPtrs[i] = &work[i]
	}
	bids := make([]Bid, len(ps))

	q := cfg.InitialPrice
	var ix *MarketIndex
	res := &ClearingResult{}
	for round := 1; round <= cfg.MaxRounds; round++ {
		// Span handles are nil-safe, so the uninstrumented path (Span ==
		// nil, the zero-alloc steady state) records and allocates nothing.
		roundSpan := cfg.Span.StartChild("market_round")
		bidSpan := roundSpan.StartChild("respond_bids")
		respondBids(bidders, q, bids, cfg.Workers)
		bidSpan.End()
		if cfg.Mode == ClearBisection {
			for i := range workPtrs {
				workPtrs[i].Bid = bids[i]
			}
			r, err := clearBisect(workPtrs, targetW)
			if err != nil {
				return nil, err
			}
			res = r
		} else if ix == nil {
			for i := range workPtrs {
				workPtrs[i].Bid = bids[i]
			}
			var err error
			if ix, err = NewMarketIndex(workPtrs); err != nil {
				return nil, err
			}
			if err := ix.ClearInto(res, targetW); err != nil {
				return nil, err
			}
		} else {
			for i := range bids {
				if err := ix.SetBid(i, bids[i]); err != nil {
					return nil, err
				}
			}
			if err := ix.ClearInto(res, targetW); err != nil {
				return nil, err
			}
		}
		res.Rounds = round
		cfg.Trace.Emit(telemetry.Event{
			Name: "int_round", Round: round,
			Price: res.Price, TargetW: targetW, SuppliedW: res.SuppliedW,
			Value: q, // the price announced this round
		})
		roundSpan.End()
		if math.Abs(res.Price-q) <= cfg.Tolerance*math.Max(q, 1e-12) {
			res.Converged = true
			finishInteractive(res)
			return res, nil
		}
		q = res.Price
	}
	res.Converged = false
	finishInteractive(res)
	return res, nil
}

// finishInteractive records the interactive market's outcome metrics.
func finishInteractive(res *ClearingResult) {
	m := met()
	m.intRounds.Observe(float64(res.Rounds))
	if res.Converged {
		m.intConverged.Inc()
	} else {
		m.intExhausted.Inc()
	}
}
