package core

import (
	"testing"

	"mpr/internal/check/floats"
	"mpr/internal/perf"
)

func TestVCGMeetsTarget(t *testing.T) {
	ps := testPool(t)
	target := 4000.0
	res, err := SolveVCG(ps, target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	var supplied float64
	for i, p := range ps {
		supplied += p.WattsPerCore * res.Reductions[i]
	}
	if supplied < target-1e-4 {
		t.Errorf("supplied %v < target %v", supplied, target)
	}
}

// Individual rationality: every winner's payment covers its cost.
func TestVCGIndividuallyRational(t *testing.T) {
	ps := testPool(t)
	res, err := SolveVCG(ps, 3500)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if res.Reductions[i] <= 1e-9 {
			continue
		}
		cost := p.Cost(res.Reductions[i])
		if res.Payments[i] < cost-1e-6 {
			t.Errorf("%s: payment %v below cost %v", p.JobID, res.Payments[i], cost)
		}
	}
}

// Truthfulness: misreporting the cost (inflating or deflating α in the
// revealed cost function) cannot increase a user's net utility, where
// utility = payment − TRUE cost of the assigned reduction.
func TestVCGTruthful(t *testing.T) {
	build := func(alphaScale float64) []*Participant {
		ps := testPool(t)
		// Participant 0 (XSBench) misreports by scaling its revealed
		// cost; its true cost stays α = 1.
		prof, _ := perf.ProfileByName("XSBench")
		model := perf.NewCostModelUnchecked(prof, alphaScale, perf.CostLinear)
		cores := ps[0].Cores
		ps[0].Cost = func(d float64) float64 { return cores * model.Cost(d/cores) }
		ps[0].MarginalCost = func(d float64) float64 { return model.Marginal(d / cores) }
		return ps
	}
	trueCost := func(d, cores float64) float64 {
		prof, _ := perf.ProfileByName("XSBench")
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		return cores * model.Cost(d/cores)
	}
	const target = 3500.0
	truthRes, err := SolveVCG(build(1), target)
	if err != nil {
		t.Fatal(err)
	}
	truthUtil := truthRes.Payments[0] - trueCost(truthRes.Reductions[0], 16)
	for _, scale := range []float64{0.5, 1.5, 3} {
		lieRes, err := SolveVCG(build(scale), target)
		if err != nil {
			t.Fatal(err)
		}
		lieUtil := lieRes.Payments[0] - trueCost(lieRes.Reductions[0], 16)
		if lieUtil > truthUtil+1e-3 {
			t.Errorf("misreport x%v increased utility: %v > %v", scale, lieUtil, truthUtil)
		}
	}
}

func TestVCGRequiresCosts(t *testing.T) {
	p := &Participant{JobID: "x", Cores: 4, WattsPerCore: 125, MaxFrac: 0.7}
	if _, err := SolveVCG([]*Participant{p}, 100); err == nil {
		t.Error("missing cost functions accepted")
	}
}

func TestVCGZeroTargetAndEmpty(t *testing.T) {
	res, err := SolveVCG(nil, 0)
	if err != nil || !res.Feasible {
		t.Errorf("zero target: %v %+v", err, res)
	}
	if _, err := SolveVCG(nil, 10); err != ErrNoParticipants {
		t.Errorf("err = %v", err)
	}
}

func TestVCGPivotalParticipant(t *testing.T) {
	// Two participants; the target needs both → each is pivotal.
	ps := testPool(t)[:2]
	var maxW float64
	for _, p := range ps {
		maxW += p.WattsPerCore * p.MaxFrac * p.Cores
	}
	target := 0.9 * maxW
	res, err := SolveVCG(ps, target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("pool should cover the target")
	}
	for i := range ps {
		if !res.Pivotal[i] {
			t.Errorf("participant %d should be pivotal", i)
		}
	}
}

func TestVCGLoneSupplier(t *testing.T) {
	ps := testPool(t)[:1]
	target := 0.5 * ps[0].WattsPerCore * ps[0].MaxFrac * ps[0].Cores
	res, err := SolveVCG(ps, target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pivotal[0] {
		t.Error("lone supplier should be pivotal")
	}
	if !floats.AbsEqual(res.Payments[0], ps[0].Cost(res.Reductions[0]), 1e-6) {
		t.Errorf("lone supplier payment %v should equal cost %v",
			res.Payments[0], ps[0].Cost(res.Reductions[0]))
	}
}

// VCG pays at least as much as the market's clearing payout for the same
// target — the price of exact efficiency + truthfulness.
func TestVCGPaymentsVsMarket(t *testing.T) {
	ps := testPool(t)
	target := 3000.0
	vcg, err := SolveVCG(ps, target)
	if err != nil {
		t.Fatal(err)
	}
	if vcg.TotalPaymentVCG() <= 0 {
		t.Error("no VCG payments")
	}
	market, err := Clear(ps, target)
	if err != nil {
		t.Fatal(err)
	}
	if market.PayoutRate <= 0 {
		t.Error("no market payout")
	}
	// Both cover the same target; just sanity-check magnitudes are
	// comparable (within 10x) rather than asserting a strict order,
	// which depends on the bid curves.
	ratio := vcg.TotalPaymentVCG() / market.PayoutRate
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("VCG/market payment ratio %v wildly off", ratio)
	}
}
