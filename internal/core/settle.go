package core

import "fmt"

// Settlement records one participant's market outcome per hour of
// emergency: what it was paid, what the reduction cost it, and the net
// gain (Eqn. (7)). All rates are in core-hours per hour.
type Settlement struct {
	JobID string
	// ReductionCores is the resource reduction the job supplied.
	ReductionCores float64
	// PaymentRate is the incentive q′·δ the manager pays.
	PaymentRate float64
	// CostRate is the user's cost of performance loss C(δ).
	CostRate float64
	// NetGainRate is PaymentRate − CostRate.
	NetGainRate float64
}

// Settle computes per-participant settlements for a cleared market. The
// participant cost functions are evaluated at the awarded reductions;
// participants without a cost function settle with zero cost (the manager
// cannot observe user costs — settlement with costs is an evaluation-side
// view).
func Settle(ps []*Participant, reductions []float64, price float64) ([]Settlement, error) {
	if len(ps) != len(reductions) {
		return nil, fmt.Errorf("core: %d participants but %d reductions", len(ps), len(reductions))
	}
	out := make([]Settlement, len(ps))
	for i, p := range ps {
		d := reductions[i]
		s := Settlement{
			JobID:          p.JobID,
			ReductionCores: d,
			PaymentRate:    price * d,
		}
		if p.Cost != nil {
			s.CostRate = p.Cost(d)
		}
		s.NetGainRate = s.PaymentRate - s.CostRate
		out[i] = s
	}
	return out, nil
}

// TotalPayment sums the payment rates of a settlement set.
func TotalPayment(ss []Settlement) float64 {
	var t float64
	for _, s := range ss {
		t += s.PaymentRate
	}
	return t
}

// TotalCost sums the cost rates of a settlement set.
func TotalCost(ss []Settlement) float64 {
	var t float64
	for _, s := range ss {
		t += s.CostRate
	}
	return t
}
