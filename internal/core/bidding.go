package core

import (
	"mpr/internal/perf"
)

// RationalBidder implements the MPR-INT bidding strategy of Section III-C:
// on each announced price q it computes the per-core reduction δ* that
// maximizes the user's net gain q·δ − C(δ) and encodes it as the bid
// b = q·(Δ − δ*), so that the supply function reproduces exactly δ* at
// price q.
type RationalBidder struct {
	// Cores scales the per-core model to the job's allocation.
	Cores float64
	// Model is the user's private cost model; it never leaves the bidder
	// (the market only sees the resulting bid parameters).
	Model *perf.CostModel
}

// RespondBid implements Bidder.
func (r *RationalBidder) RespondBid(price float64) Bid {
	maxPC := r.Model.Profile.MaxReduction()
	delta := r.Cores * maxPC
	if delta <= 0 {
		return Bid{}
	}
	dStar := r.Cores * r.Model.GainMaximizingReduction(price)
	b := price * (delta - dStar)
	if b < 0 {
		b = 0
	}
	return Bid{Delta: delta, B: b}
}

// StaticBidder wraps a fixed bid as a Bidder, for mixing MPR-STAT users
// into an interactive market (partial participation studies).
type StaticBidder struct{ Fixed Bid }

// RespondBid implements Bidder by ignoring the price.
func (s *StaticBidder) RespondBid(float64) Bid { return s.Fixed }

// CooperativeBid devises the paper's cooperative static bid for MPR-STAT
// (Fig. 4(a)): the largest supply whose curve stays below the user's
// bidding reference at every price, guaranteeing a non-negative net gain
// over the entire price range. Formally b = max_q q·(Δ − δ_ref(q)), so
// that δ_bid(q) = Δ − b/q ≤ δ_ref(q) for all q.
func CooperativeBid(cores float64, model *perf.CostModel) Bid {
	maxPC := model.Profile.MaxReduction()
	delta := cores * maxPC
	if delta <= 0 {
		return Bid{}
	}
	// Beyond the saturation price q_sat = UnitCost(Δ) the reference
	// supplies the full Δ and the constraint term q·(Δ−δ_ref) vanishes,
	// so the maximum lies in (0, q_sat].
	qSat := model.UnitCost(maxPC)
	const samples = 512
	b := 0.0
	for i := 1; i <= samples; i++ {
		q := qSat * float64(i) / samples
		ref := model.ReferenceReduction(q)
		if v := q * (maxPC - ref); v > b {
			b = v
		}
	}
	return Bid{Delta: delta, B: b * cores}
}

// ConservativeBid scales the cooperative bid's reluctance up by factor
// (> 1): the user offers less reduction than its reference at every price,
// keeping extra margin for cost-estimation error (Fig. 4(a), Section III-F).
func ConservativeBid(cores float64, model *perf.CostModel, factor float64) Bid {
	if factor < 1 {
		factor = 1
	}
	b := CooperativeBid(cores, model)
	b.B *= factor
	return b
}

// DeficientBid scales the cooperative bid's reluctance down by factor
// (< 1): the user over-supplies at low prices and can incur a negative net
// gain for part of the price range — the cautionary strategy of Fig. 4(a).
func DeficientBid(cores float64, model *perf.CostModel, factor float64) Bid {
	if factor > 1 {
		factor = 1
	}
	if factor < 0 {
		factor = 0
	}
	b := CooperativeBid(cores, model)
	b.B *= factor
	return b
}
