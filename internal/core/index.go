package core

import (
	"math"
	"sort"
)

// MarketIndex is the reusable fast path for MClr. It precomputes, per
// participant, the weighted supply terms WΔᵢ = WattsPerCoreᵢ·Δᵢ and
// Wbᵢ = WattsPerCoreᵢ·bᵢ, sorts participants by activation price
// aᵢ = bᵢ/Δᵢ, and maintains prefix sums of WΔ and Wb over that order.
//
// Because every supply function is the same scalar-parameterized
// hyperbola δ(q) = [Δ − b/q]⁺, the aggregate supply over the active
// prefix {i : aᵢ ≤ q} collapses to
//
//	S(q) = ΣWΔ − ΣWb/q,
//
// evaluable in O(log M) (binary search for the prefix plus two lookups),
// and the minimal clearing price solves **exactly** per activation
// segment: q′ = ΣWb/(ΣWΔ − target). No bisection is needed at all.
//
// Costs: O(M log M) one-time build, O(log M) per price solve, O(M) to
// materialize per-participant reductions. Across simulation steps and
// MPR-INT rounds the index is reused — SetBid marks changed bids and
// Refresh re-sorts only when the activation order actually changed
// (nearly-sorted inputs re-sort in close to O(M)), recomputing the
// prefix sums in O(M) with no allocation.
//
// A MarketIndex is not safe for concurrent mutation; concurrent calls to
// the read-only methods (SupplyW, MaxSupplyW) are safe once built.
type MarketIndex struct {
	watts []float64 // WattsPerCore, original participant order
	bids  []Bid     // current bids, original participant order
	key   []float64 // activation price per participant (+Inf when Δ = 0)

	order  []int     // participant indices sorted by (key, index)
	act    []float64 // act[k] = key[order[k]]
	prefWD []float64 // prefWD[k] = Σ_{j<k} W·Δ over order (len n+1)
	prefWB []float64 // prefWB[k] = Σ_{j<k} W·b over order (len n+1)
	finite int       // number of entries with a finite activation price
	maxW   float64   // prefWD[n]: aggregate supply ceiling in watts
	dirty  bool
	sorts  int // rebuilds that actually re-sorted (tests the Refresh fast path)
}

// NewMarketIndex validates the participants and builds the index over
// their current bids. The index keeps its own copy of the bids; later
// changes to the participants are not seen unless applied via SetBid.
func NewMarketIndex(ps []*Participant) (*MarketIndex, error) {
	ix := &MarketIndex{}
	if err := ix.Reset(ps); err != nil {
		return nil, err
	}
	return ix, nil
}

// Reset rebinds the index to a (possibly different) participant set,
// validating like NewMarketIndex and rebuilding the activation order
// from scratch. The backing arrays are reused whenever their capacity
// suffices, so a long-lived index reset against same-size (or smaller)
// pools — the simulation engine's per-invocation pattern — allocates
// nothing.
func (ix *MarketIndex) Reset(ps []*Participant) error {
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	n := len(ps)
	if cap(ix.watts) >= n && cap(ix.prefWD) >= n+1 {
		ix.watts = ix.watts[:n]
		ix.bids = ix.bids[:n]
		ix.key = ix.key[:n]
		ix.order = ix.order[:n]
		ix.act = ix.act[:n]
		ix.prefWD = ix.prefWD[:n+1]
		ix.prefWB = ix.prefWB[:n+1]
	} else {
		ix.watts = make([]float64, n)
		ix.bids = make([]Bid, n)
		ix.key = make([]float64, n)
		ix.order = make([]int, n)
		ix.act = make([]float64, n)
		ix.prefWD = make([]float64, n+1)
		ix.prefWB = make([]float64, n+1)
	}
	for i, p := range ps {
		ix.watts[i] = p.WattsPerCore
		ix.bids[i] = p.Bid
		ix.key[i] = activationKey(p.Bid)
		ix.order[i] = i
	}
	ix.rebuild(true)
	return nil
}

// activationKey is the sort key: the activation price b/Δ, or +Inf for
// bids that can never supply (Δ = 0), pushing them past every segment so
// they contribute nothing to the prefix sums.
func activationKey(b Bid) float64 {
	if b.Delta <= 0 {
		return math.Inf(1)
	}
	return b.B / b.Delta
}

// Len, Less, Swap implement sort.Interface over the activation order.
// Ties break on the participant index so the sorted permutation — and
// therefore the floating-point summation order of the prefix sums — is
// unique regardless of rebuild history.
func (ix *MarketIndex) Len() int { return len(ix.order) }
func (ix *MarketIndex) Less(a, b int) bool {
	ka, kb := ix.key[ix.order[a]], ix.key[ix.order[b]]
	if ka != kb {
		return ka < kb
	}
	return ix.order[a] < ix.order[b]
}
func (ix *MarketIndex) Swap(a, b int) { ix.order[a], ix.order[b] = ix.order[b], ix.order[a] }

// rebuild re-derives act, the prefix sums, and the supply ceiling from
// the current bids. When force is false the sort is skipped if the
// existing order is still valid (the common case when only bid
// magnitudes, not activation ordering, changed between rounds).
func (ix *MarketIndex) rebuild(force bool) {
	if force || !sort.IsSorted(ix) {
		sort.Sort(ix)
		ix.sorts++
	}
	var wd, wb float64
	ix.finite = len(ix.order)
	for k, i := range ix.order {
		a := ix.key[i]
		ix.act[k] = a
		if math.IsInf(a, 1) && ix.finite == len(ix.order) {
			ix.finite = k
		}
		if d := ix.bids[i].Delta; d > 0 {
			wd += ix.watts[i] * d
			wb += ix.watts[i] * ix.bids[i].B
		}
		ix.prefWD[k+1] = wd
		ix.prefWB[k+1] = wb
	}
	ix.maxW = wd
	ix.dirty = false
}

// SetBid replaces participant i's bid. The change takes effect at the
// next Refresh (ClearInto refreshes automatically). Unchanged bids are
// detected and skipped, so static bidders in an interactive market cost
// nothing between rounds. An out-of-range index returns a typed
// *ParticipantRangeError with the index untouched.
func (ix *MarketIndex) SetBid(i int, b Bid) error {
	if i < 0 || i >= len(ix.bids) {
		return &ParticipantRangeError{Index: i, Len: len(ix.bids)}
	}
	if err := b.Validate(); err != nil {
		return err
	}
	if ix.bids[i] == b {
		return nil
	}
	ix.bids[i] = b
	ix.key[i] = activationKey(b)
	ix.dirty = true
	return nil
}

// Refresh incorporates pending SetBid changes: it re-sorts only if the
// activation order changed and recomputes the prefix sums in O(M),
// allocating nothing.
func (ix *MarketIndex) Refresh() {
	if !ix.dirty {
		return
	}
	ix.rebuild(false)
}

// activeCount returns the number of participants whose activation price
// is ≤ q (the active prefix length), in O(log M).
func (ix *MarketIndex) activeCount(q float64) int {
	lo, hi := 0, len(ix.act)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.act[mid] <= q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SupplyW evaluates the aggregate supply S(q) in watts in O(log M).
func (ix *MarketIndex) SupplyW(q float64) float64 {
	k := ix.activeCount(q)
	if k == 0 {
		return 0
	}
	wb := ix.prefWB[k]
	if wb == 0 || q <= 0 {
		// Only fully willing (b = 0) participants are active at q ≤ 0,
		// so the withheld term vanishes in both cases.
		return ix.prefWD[k]
	}
	return ix.prefWD[k] - wb/q
}

// MaxSupplyW returns the aggregate supply ceiling ΣWΔ in watts.
func (ix *MarketIndex) MaxSupplyW() float64 { return ix.maxW }

// minPrice solves MClr exactly: the minimal price q′ with S(q′) ≥
// targetW, or a saturation price and feasible=false when even full
// supply falls short. Complexity O(log² M): an outer binary search over
// activation segments with an O(log M) supply evaluation per probe, then
// one closed-form division inside the located segment.
func (ix *MarketIndex) minPrice(targetW float64) (price float64, feasible bool) {
	met().priceSearches.Inc()
	if targetW <= 0 {
		return 0, true
	}
	if ix.maxW < targetW {
		return ix.saturationPrice(), false
	}
	if ix.SupplyW(0) >= targetW {
		return 0, true
	}
	// Find the first breakpoint whose supply meets the target. Supply is
	// continuous and non-decreasing, so the clearing price lies in the
	// segment ending at that breakpoint; if no breakpoint reaches the
	// target the price lies beyond the last activation.
	m := ix.finite
	lo, hi := 0, m
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.SupplyW(ix.act[mid]) >= targetW {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	k := lo
	// Active prefix on the open segment below breakpoint k. Ties sort
	// adjacently, and k is minimal, so exactly the first k entries have
	// activation strictly below act[k].
	wd, wb := ix.prefWD[k], ix.prefWB[k]
	denom := wd - targetW
	if denom <= 0 {
		if k < m {
			// Numerical corner: the segment's ceiling equals the target;
			// the breakpoint itself clears (its activating participants
			// supply zero there).
			return ix.act[k], true
		}
		// target == maxW with withheld supply: saturation only in the
		// limit q → ∞; settle where the withheld amount rounds away,
		// like the bisection path's bracketing does.
		return ix.saturationPrice(), true
	}
	q := wb / denom
	// Clamp into the segment against floating-point drift: the price may
	// not fall below the last breakpoint whose supply was short, nor
	// above the breakpoint that met the target.
	if k > 0 && q < ix.act[k-1] {
		q = ix.act[k-1]
	}
	if k < m && q > ix.act[k] {
		q = ix.act[k]
	}
	return q, true
}

// saturationIterCap bounds the saturation doubling loops. Doubling from
// the 1e-6 floor to the 1e15 cap takes ⌈log₂(1e21)⌉ ≈ 70 iterations, so
// the cap can only fire ahead of the price cap when float pathologies
// (Wb ≫ WΔ keeping the withheld term above the 1e-9 threshold at any
// representable price) would otherwise spin the loop at a stuck q.
const saturationIterCap = 96

// saturationPrice doubles from the largest activation price until the
// withheld aggregate Wb/q is below 1e-9 W — the same saturation rule the
// bisection path uses for infeasible targets (price capped at 1e15, and
// the loop explicitly bounded by saturationIterCap).
func (ix *MarketIndex) saturationPrice() float64 {
	q := 1e-6
	if ix.finite > 0 {
		if a := ix.act[ix.finite-1]; a > q {
			q = a
		}
	}
	for iter := 0; ix.SupplyW(q) < ix.maxW-1e-9 && q < 1e15 && iter < saturationIterCap; iter++ {
		q *= 2
	}
	return q
}

// Clear solves MClr against the index's current bids, allocating a fresh
// result. See ClearInto for the allocation-free variant.
func (ix *MarketIndex) Clear(targetW float64) (*ClearingResult, error) {
	res := &ClearingResult{}
	if err := ix.ClearInto(res, targetW); err != nil {
		return nil, err
	}
	return res, nil
}

// ClearInto solves MClr against the index's current bids, writing the
// outcome into res. res.Reductions is reused when its capacity suffices,
// so steady-state clears perform zero heap allocations. Pending SetBid
// changes are refreshed first.
func (ix *MarketIndex) ClearInto(res *ClearingResult, targetW float64) error {
	ix.Refresh()
	n := len(ix.bids)
	if cap(res.Reductions) >= n {
		res.Reductions = res.Reductions[:n]
	} else {
		res.Reductions = make([]float64, n)
	}
	res.Price = 0
	res.SuppliedW = 0
	res.TargetW = targetW
	res.Feasible = true
	res.PayoutRate = 0
	res.Rounds = 1
	res.Converged = true
	if targetW <= 0 {
		for i := range res.Reductions {
			res.Reductions[i] = 0
		}
		return nil
	}
	if n == 0 {
		return ErrNoParticipants
	}
	met().clearsClosed.Inc()
	price, feasible := ix.minPrice(targetW)
	res.Price = price
	res.Feasible = feasible
	var total float64
	for i := range ix.bids {
		d := ix.bids[i].Supply(price)
		res.Reductions[i] = d
		res.SuppliedW += ix.watts[i] * d
		total += d
	}
	res.PayoutRate = price * total
	return nil
}
