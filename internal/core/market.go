// Package core implements the paper's primary contribution: the MPR
// (Market-based Power Reduction) supply-function bidding market of
// Section III.
//
// HPC users submit parameterized supply functions
//
//	δ_m(q) = [Δ_m − b_m/q]⁺
//
// describing how much resource reduction (in cores) they offer at a given
// incentive price q. During a power emergency the HPC manager clears the
// market (problem MClr) by finding the minimal price at which the
// aggregate power reduction meets the target — a single-variable search,
// which is what makes MPR scale to tens of thousands of active jobs
// (Fig. 10). The default solver goes one step further than the paper's
// bisection: because every supply function is the same scalar-
// parameterized hyperbola, the clearing price has an exact closed form
// per activation segment (see MarketIndex in index.go); the bisection
// survives as a selectable cross-check (ClearBisection).
// Two market modes are provided: Clear (MPR-STAT, one-shot with
// static bids) and ClearInteractive (MPR-INT, iterative price/bid exchange
// that converges to the socially optimal reduction). The package also
// implements the paper's benchmark algorithms OPT (opt.go) and EQL
// (eql.go), the user bidding strategies of Section III-C (bidding.go), and
// market settlement/reward accounting (settle.go).
package core

import (
	"errors"
	"fmt"
	"math"

	"mpr/internal/solver"
)

// Bid is a user's supply function parameterization for one job:
// δ(q) = [Delta − B/q]⁺, both in absolute cores.
type Bid struct {
	// Delta is Δ, the maximum resource reduction the job supports, in
	// cores (per-core maximum fraction × allocated cores).
	Delta float64
	// B is the bidding parameter b expressing the job's reluctance: at
	// price q the job withholds B/q cores of its maximum.
	B float64
}

// Validate checks bid sanity.
func (b Bid) Validate() error {
	if b.Delta < 0 {
		return fmt.Errorf("core: bid Δ must be non-negative, got %v", b.Delta)
	}
	if b.B < 0 {
		return fmt.Errorf("core: bid b must be non-negative, got %v", b.B)
	}
	return nil
}

// Supply evaluates the supply function at price q: the resource reduction
// (cores) the job offers. It is non-negative, non-decreasing in q, and
// capped at Delta. At q = 0 a job with any reluctance (B > 0) offers
// nothing; a fully willing job (B = 0) offers its maximum at any price.
func (b Bid) Supply(q float64) float64 {
	if b.Delta <= 0 {
		return 0
	}
	if q <= 0 {
		if b.B == 0 {
			return b.Delta
		}
		return 0
	}
	s := b.Delta - b.B/q
	if s < 0 {
		return 0
	}
	if s > b.Delta {
		return b.Delta
	}
	return s
}

// ActivationPrice returns the lowest price at which the job starts
// supplying a positive reduction: b/Δ (0 for fully willing jobs).
func (b Bid) ActivationPrice() float64 {
	if b.Delta <= 0 {
		return 0
	}
	return b.B / b.Delta
}

// Participant is one running job taking part in overload handling.
type Participant struct {
	// JobID identifies the job for settlement.
	JobID string
	// Cores is the job's current core allocation.
	Cores float64
	// Bid is the job's supply function (used by Clear; replaced each
	// round in ClearInteractive).
	Bid Bid
	// WattsPerCore converts a resource reduction in cores into watts
	// saved — the established power-capping model P(δ) = δ·WattsPerCore
	// (Section III-A). For the paper's CPU model this is the 125 W
	// dynamic power per core.
	WattsPerCore float64
	// MaxFrac is the per-core maximum reduction fraction supported by
	// the job's application (Δ of its profile). Used by EQL and OPT.
	MaxFrac float64
	// Cost is the user's absolute cost of reducing δ cores, in
	// core-hours per hour of reduction. Required by OPT and settlement;
	// the market itself never reads it (that is the point of MPR).
	Cost func(deltaCores float64) float64
	// MarginalCost is dCost/dδ, required by OPT's solvers.
	MarginalCost func(deltaCores float64) float64
}

// MaxReduction returns the participant's absolute reduction bound in
// cores: MaxFrac × Cores.
func (p *Participant) MaxReduction() float64 { return p.MaxFrac * p.Cores }

// Validate checks participant sanity for market clearing.
func (p *Participant) Validate() error {
	if p.Cores < 0 {
		return fmt.Errorf("core: participant %s: negative cores", p.JobID)
	}
	if p.WattsPerCore <= 0 {
		return fmt.Errorf("core: participant %s: watts-per-core must be positive", p.JobID)
	}
	if err := p.Bid.Validate(); err != nil {
		return fmt.Errorf("core: participant %s: %w", p.JobID, err)
	}
	return nil
}

// ErrNoParticipants is returned when the market is invoked with no
// participants but a positive reduction target.
var ErrNoParticipants = errors.New("core: no participants")

// ClearingResult is the outcome of one market clearing.
type ClearingResult struct {
	// Price is the market clearing price q′ (incentive per unit resource
	// reduction per hour).
	Price float64
	// Reductions holds the resource reduction (cores) ordered as the
	// participants passed to Clear.
	Reductions []float64
	// SuppliedW is the total power reduction achieved.
	SuppliedW float64
	// TargetW echoes the requested power reduction.
	TargetW float64
	// Feasible reports whether the supply could meet the target; when
	// false every job is at its maximum reduction.
	Feasible bool
	// PayoutRate is the manager's total incentive payoff per hour of
	// reduction: q′·Σδ (core-hours per hour).
	PayoutRate float64
	// Rounds is the number of price iterations (1 for MPR-STAT; the
	// number of manager↔user exchanges for MPR-INT; 0 when ClearCapped
	// settles at the price cap without running a price search).
	Rounds int
	// Converged is true when an interactive market reached a stable
	// price within its round budget (always true for Clear).
	Converged bool
}

// ClearMode selects the MClr solver implementation.
type ClearMode int

const (
	// ClearAuto uses the default solver: the closed-form segmented fast
	// path (see MarketIndex).
	ClearAuto ClearMode = iota
	// ClearClosedForm forces the closed-form segmented solver.
	ClearClosedForm
	// ClearBisection forces the original O(M·log(1/tol)) bisection
	// solver — kept as an independent cross-check implementation for the
	// differential tests and benchmarks.
	ClearBisection
	// ClearStreaming routes through the continuously-clearing treap
	// engine (see StreamMarket): one-shot clears build the stream and
	// clear once; long-lived callers hold the StreamMarket directly for
	// O(log M) incremental re-clears per bid update.
	ClearStreaming
)

// String names the mode for tables and logs.
func (m ClearMode) String() string {
	switch m {
	case ClearAuto:
		return "auto"
	case ClearClosedForm:
		return "closed-form"
	case ClearBisection:
		return "bisection"
	case ClearStreaming:
		return "streaming"
	}
	return "unknown"
}

// priceCeiling returns the largest activation price across the pool
// (with a small positive floor): the price at which every participant
// has *begun* supplying. Callers that need the aggregate supply to
// saturate keep doubling from here — see bracketPrice — since each
// doubling halves every withheld amount b/q.
func priceCeiling(ps []*Participant) float64 {
	hi := 1e-6
	for _, p := range ps {
		if ap := p.Bid.ActivationPrice(); ap > hi {
			hi = ap
		}
	}
	return hi
}

// bracketPrice doubles q from start until supplyW(q) reaches level or q
// reaches cap. It is the shared bracketing step of the bisection path:
// the feasible branch brackets the clearing price (level = target, no
// cap), the infeasible branch finds the saturation price (level =
// maxW − ε, cap = 1e15).
func bracketPrice(supplyW func(float64) float64, start, level, cap float64) float64 {
	q := start
	for supplyW(q) < level && q < cap {
		q *= 2
	}
	return q
}

// Clear solves MClr (Eqns. (4)-(5)) for a static set of bids — the
// MPR-STAT market. It returns the minimal clearing price whose induced
// supply meets targetW and the per-participant reductions at that price.
//
// Complexity: O(M log M) to build the market index plus O(log M) for the
// exact per-segment price solve (see MarketIndex; reuse the index
// directly for amortized O(log M) clears). This is the scalability
// headline of the paper (Fig. 10: sub-second clearing at 30,000 active
// jobs), sharpened from the paper's bisection to a closed form.
func Clear(ps []*Participant, targetW float64) (*ClearingResult, error) {
	return ClearWithMode(ps, targetW, ClearAuto)
}

// ClearWithMode solves MClr with an explicit solver choice. ClearAuto
// and ClearClosedForm run the exact segmented solver; ClearBisection
// runs the original bisection as an independent cross-check. Both return
// the same prices, reductions, and feasibility up to the bisection
// tolerance (property-tested to 1e-9).
func ClearWithMode(ps []*Participant, targetW float64, mode ClearMode) (*ClearingResult, error) {
	if mode == ClearBisection {
		return clearBisect(ps, targetW)
	}
	res := &ClearingResult{
		Reductions: make([]float64, len(ps)),
		TargetW:    targetW,
		Feasible:   true,
		Rounds:     1,
		Converged:  true,
	}
	if targetW <= 0 {
		return res, nil
	}
	if len(ps) == 0 {
		return nil, ErrNoParticipants
	}
	if mode == ClearStreaming {
		sm, err := NewStreamMarket(ps, targetW)
		if err != nil {
			return nil, err
		}
		met().clearsStream.Inc()
		if err := sm.ClearInto(res); err != nil {
			return nil, err
		}
		return res, nil
	}
	ix, err := NewMarketIndex(ps)
	if err != nil {
		return nil, err
	}
	if err := ix.ClearInto(res, targetW); err != nil {
		return nil, err
	}
	return res, nil
}

// clearBisect is the original scalar-bisection MClr solver, O(M) per
// supply evaluation and O(M·log(1/tol)) overall. It is retained verbatim
// in behaviour as the cross-check path for the closed-form solver.
func clearBisect(ps []*Participant, targetW float64) (*ClearingResult, error) {
	res := &ClearingResult{
		Reductions: make([]float64, len(ps)),
		TargetW:    targetW,
		Feasible:   true,
		Rounds:     1,
		Converged:  true,
	}
	if targetW <= 0 {
		return res, nil
	}
	if len(ps) == 0 {
		return nil, ErrNoParticipants
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}

	supplyW := func(q float64) float64 {
		var w float64
		for _, p := range ps {
			w += p.WattsPerCore * p.Bid.Supply(q)
		}
		return w
	}
	maxW := 0.0
	for _, p := range ps {
		maxW += p.WattsPerCore * p.Bid.Delta
	}

	met().clearsBisect.Inc()
	met().priceSearches.Inc()
	if maxW < targetW {
		// Infeasible: every job contributes its maximum; price settles
		// at the point where supply has saturated.
		res.Feasible = false
		q := bracketPrice(supplyW, priceCeiling(ps), maxW-1e-9, 1e15)
		res.Price = q
		for i, p := range ps {
			res.Reductions[i] = p.Bid.Supply(q)
			res.SuppliedW += p.WattsPerCore * res.Reductions[i]
		}
		res.PayoutRate = payout(res.Price, res.Reductions)
		return res, nil
	}

	// Bracket the clearing price, then bisect for the minimal feasible q.
	// The tolerance is tight (1e-13 relative to the bracket) so this path
	// stays a meaningful 1e-9-level cross-check of the closed form.
	lo := 0.0
	hi := bracketPrice(supplyW, priceCeiling(ps), targetW, math.Inf(1))
	q, ok := solver.BisectMin(func(q float64) float64 { return supplyW(q) - targetW }, lo, hi, 1e-13*hi+1e-15)
	if !ok {
		// Cannot happen: maxW >= target and supply(hi) >= target.
		return nil, fmt.Errorf("core: clearing bisection failed unexpectedly")
	}
	res.Price = q
	for i, p := range ps {
		res.Reductions[i] = p.Bid.Supply(q)
		res.SuppliedW += p.WattsPerCore * res.Reductions[i]
	}
	res.PayoutRate = payout(res.Price, res.Reductions)
	return res, nil
}

// ClearCapped clears the market under a manager-side price ceiling — the
// affordability bound of Table I (the manager can pay at most the added
// capacity per core-hour of cutback, e.g. 32× at 20% oversubscription).
// If the clearing price would exceed priceCap, the market settles at the
// cap with whatever supply the capped price buys and reports the shortfall
// through Feasible=false; the manager must cover the remainder by direct
// capping.
func ClearCapped(ps []*Participant, targetW, priceCap float64) (*ClearingResult, error) {
	return ClearCappedWithMode(ps, targetW, priceCap, ClearAuto)
}

// ClearCappedWithMode is ClearCapped with an explicit solver choice. The
// closed-form modes evaluate the aggregate supply at priceCap first —
// an O(log M) index lookup — and only run a full price search when the
// cap does not bind; the capped branch therefore performs no MClr solve
// at all (observable through Rounds = 0 and the MarketStats counters).
// ClearBisection reproduces the original clear-then-discard behaviour.
func ClearCappedWithMode(ps []*Participant, targetW, priceCap float64, mode ClearMode) (*ClearingResult, error) {
	if priceCap <= 0 {
		return nil, fmt.Errorf("core: price cap must be positive, got %v", priceCap)
	}
	capResult := func(res *ClearingResult) *ClearingResult {
		res.Price = priceCap
		res.SuppliedW = 0
		for i, p := range ps {
			res.Reductions[i] = p.Bid.Supply(priceCap)
			res.SuppliedW += p.WattsPerCore * res.Reductions[i]
		}
		res.PayoutRate = payout(priceCap, res.Reductions)
		res.Feasible = res.SuppliedW >= targetW-1e-9
		return res
	}
	if mode == ClearBisection {
		res, err := clearBisect(ps, targetW)
		if err != nil {
			return nil, err
		}
		if res.Price <= priceCap {
			return res, nil
		}
		return capResult(res), nil
	}
	if targetW <= 0 {
		return &ClearingResult{
			Reductions: make([]float64, len(ps)),
			TargetW:    targetW,
			Feasible:   true,
			Rounds:     1,
			Converged:  true,
		}, nil
	}
	if len(ps) == 0 {
		return nil, ErrNoParticipants
	}
	ix, err := NewMarketIndex(ps)
	if err != nil {
		return nil, err
	}
	if ix.SupplyW(priceCap) < targetW {
		// The cap binds: no clearing price at or below it can meet the
		// target, so settle at the cap directly without a price search.
		met().cappedShort.Inc()
		res := &ClearingResult{
			Reductions: make([]float64, len(ps)),
			TargetW:    targetW,
			Rounds:     0,
			Converged:  true,
		}
		return capResult(res), nil
	}
	// The cap is loose: the minimal clearing price is ≤ priceCap.
	res := &ClearingResult{
		Reductions: make([]float64, len(ps)),
		TargetW:    targetW,
		Feasible:   true,
		Rounds:     1,
		Converged:  true,
	}
	if err := ix.ClearInto(res, targetW); err != nil {
		return nil, err
	}
	return res, nil
}

func payout(price float64, reductions []float64) float64 {
	var total float64
	for _, d := range reductions {
		total += d
	}
	return price * total
}
