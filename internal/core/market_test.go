package core

import (
	"math"
	"testing"
	"testing/quick"

	"mpr/internal/check/floats"
	"mpr/internal/perf"
)

// newParticipant builds a participant for application `app` with the given
// cores, wiring the evaluation-side cost functions from the perf model.
func newParticipant(t testing.TB, id, app string, cores float64) (*Participant, *perf.CostModel) {
	t.Helper()
	prof, err := perf.ProfileByName(app)
	if err != nil {
		t.Fatal(err)
	}
	model := perf.NewCostModel(prof, 1, perf.CostLinear)
	p := &Participant{
		JobID:        id,
		Cores:        cores,
		WattsPerCore: 125,
		MaxFrac:      prof.MaxReduction(),
		Cost: func(d float64) float64 {
			if cores <= 0 {
				return 0
			}
			return cores * model.Cost(d/cores)
		},
		MarginalCost: func(d float64) float64 {
			if cores <= 0 {
				return 0
			}
			return model.Marginal(d / cores)
		},
	}
	p.Bid = CooperativeBid(cores, model)
	return p, model
}

func testPool(t testing.TB) []*Participant {
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD", "HPCCG", "SWFFT"}
	ps := make([]*Participant, len(apps))
	for i, a := range apps {
		p, _ := newParticipant(t, a, a, 16)
		ps[i] = p
	}
	return ps
}

func TestBidSupplyShape(t *testing.T) {
	b := Bid{Delta: 0.7, B: 0.14}
	if s := b.Supply(0); s != 0 {
		t.Errorf("supply(0) = %v", s)
	}
	// Activation at q = b/Δ = 0.2.
	if s := b.Supply(0.2); !floats.AbsEqual(s, 0, 1e-12) {
		t.Errorf("supply at activation = %v", s)
	}
	if s := b.Supply(0.4); !floats.AbsEqual(s, 0.35, 1e-12) {
		t.Errorf("supply(0.4) = %v, want 0.35", s)
	}
	if s := b.Supply(1e12); !floats.AbsEqual(s, 0.7, 1e-6) {
		t.Errorf("supply at huge price = %v, want ~Δ", s)
	}
	// Fully willing bidder: full supply at any price.
	if s := (Bid{Delta: 0.5, B: 0}).Supply(0); s != 0.5 {
		t.Errorf("b=0 supply(0) = %v", s)
	}
}

// Property: supply is in [0, Δ] and non-decreasing in price.
func TestBidSupplyProperties(t *testing.T) {
	prop := func(rawDelta, rawB, rawQ1, rawQ2 float64) bool {
		delta := math.Abs(math.Mod(rawDelta, 100))
		bb := math.Abs(math.Mod(rawB, 50))
		q1 := math.Abs(math.Mod(rawQ1, 10))
		q2 := math.Abs(math.Mod(rawQ2, 10))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		b := Bid{Delta: delta, B: bb}
		s1, s2 := b.Supply(q1), b.Supply(q2)
		return s1 >= 0 && s2 <= delta+1e-12 && s1 <= s2+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBidValidate(t *testing.T) {
	if err := (Bid{Delta: -1}).Validate(); err == nil {
		t.Error("negative Δ accepted")
	}
	if err := (Bid{Delta: 1, B: -1}).Validate(); err == nil {
		t.Error("negative b accepted")
	}
	if err := (Bid{Delta: 1, B: 0.5}).Validate(); err != nil {
		t.Errorf("valid bid rejected: %v", err)
	}
}

func TestActivationPrice(t *testing.T) {
	if ap := (Bid{Delta: 0.7, B: 0.14}).ActivationPrice(); !floats.AbsEqual(ap, 0.2, 1e-12) {
		t.Errorf("activation = %v", ap)
	}
	if ap := (Bid{Delta: 0, B: 5}).ActivationPrice(); ap != 0 {
		t.Errorf("zero-Δ activation = %v", ap)
	}
}

func TestClearMeetsTarget(t *testing.T) {
	ps := testPool(t)
	// Max supply: 6 jobs × 16 cores × 0.7 × 125 W = 8400 W.
	target := 3000.0
	res, err := Clear(ps, target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("should be feasible")
	}
	if res.SuppliedW < target-1e-6 {
		t.Errorf("supplied %v < target %v", res.SuppliedW, target)
	}
	// Minimality: at a slightly lower price, supply falls short.
	eps := res.Price * 1e-3
	var below float64
	for _, p := range ps {
		below += p.WattsPerCore * p.Bid.Supply(res.Price-eps)
	}
	if below >= target+1e-6 && res.Price > eps {
		t.Errorf("price not minimal: supply at q-ε = %v >= target", below)
	}
}

func TestClearZeroTarget(t *testing.T) {
	ps := testPool(t)
	res, err := Clear(ps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Price != 0 || res.SuppliedW != 0 {
		t.Errorf("zero target result = %+v", res)
	}
	for _, d := range res.Reductions {
		if d != 0 {
			t.Error("nonzero reduction for zero target")
		}
	}
}

func TestClearNoParticipants(t *testing.T) {
	if _, err := Clear(nil, 100); err != ErrNoParticipants {
		t.Errorf("err = %v, want ErrNoParticipants", err)
	}
	// Zero target with no participants is fine.
	if _, err := Clear(nil, 0); err != nil {
		t.Errorf("zero target should succeed: %v", err)
	}
}

func TestClearInfeasible(t *testing.T) {
	ps := testPool(t)
	res, err := Clear(ps, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("should be infeasible")
	}
	// Every participant saturates at its maximum.
	for i, p := range ps {
		if !floats.AbsEqual(res.Reductions[i], p.Bid.Delta, 1e-3) {
			t.Errorf("participant %d not saturated: %v vs Δ=%v", i, res.Reductions[i], p.Bid.Delta)
		}
	}
}

func TestClearValidatesParticipants(t *testing.T) {
	bad := &Participant{JobID: "bad", Cores: 1, WattsPerCore: 0, Bid: Bid{Delta: 1}}
	if _, err := Clear([]*Participant{bad}, 10); err == nil {
		t.Error("invalid participant accepted")
	}
}

// Property: for random feasible targets the cleared supply meets the
// target and no reduction exceeds its bid's Δ.
func TestClearProperty(t *testing.T) {
	ps := testPool(t)
	maxW := 0.0
	for _, p := range ps {
		maxW += p.WattsPerCore * p.Bid.Delta
	}
	prop := func(raw float64) bool {
		target := math.Abs(math.Mod(raw, 0.95)) * maxW
		res, err := Clear(ps, target)
		if err != nil || !res.Feasible {
			return false
		}
		if res.SuppliedW < target-1e-6 {
			return false
		}
		for i, p := range ps {
			if res.Reductions[i] < -1e-12 || res.Reductions[i] > p.Bid.Delta+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Higher prices are needed for higher targets (clearing price monotone in
// target).
func TestClearPriceMonotoneInTarget(t *testing.T) {
	ps := testPool(t)
	prev := -1.0
	for _, target := range []float64{500, 1500, 3000, 5000, 7000} {
		res, err := Clear(ps, target)
		if err != nil {
			t.Fatal(err)
		}
		if res.Price < prev-1e-9 {
			t.Errorf("price decreased at target %v: %v < %v", target, res.Price, prev)
		}
		prev = res.Price
	}
}

func TestSettle(t *testing.T) {
	ps := testPool(t)
	res, err := Clear(ps, 3000)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Settle(ps, res.Reductions, res.Price)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != len(ps) {
		t.Fatalf("settlements = %d", len(ss))
	}
	if !floats.AbsEqual(TotalPayment(ss), res.PayoutRate, 1e-9) {
		t.Errorf("total payment %v != payout rate %v", TotalPayment(ss), res.PayoutRate)
	}
	for _, s := range ss {
		if !floats.AbsEqual(s.NetGainRate, s.PaymentRate-s.CostRate, 1e-12) {
			t.Errorf("net gain arithmetic: %+v", s)
		}
	}
	if TotalCost(ss) <= 0 {
		t.Error("expected positive total cost for a met target")
	}
	if _, err := Settle(ps, res.Reductions[:1], res.Price); err == nil {
		t.Error("length mismatch accepted")
	}
}

// The headline market property: cooperative bidders never lose money at
// any clearing price (Section III-C, Fig. 4(a)).
func TestCooperativeBidNoLossAtAnyPrice(t *testing.T) {
	for _, app := range []string{"XSBench", "SimpleMOC", "RSBench", "Jacobi"} {
		prof, _ := perf.ProfileByName(app)
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		cores := 8.0
		bid := CooperativeBid(cores, model)
		if bid.Delta <= 0 {
			t.Fatalf("%s: empty cooperative bid", app)
		}
		for q := 0.01; q < 20; q *= 1.3 {
			d := bid.Supply(q)
			cost := cores * model.Cost(d/cores)
			gain := q*d - cost
			if gain < -1e-6 {
				t.Errorf("%s: cooperative bid loses at q=%v: gain=%v", app, q, gain)
			}
		}
	}
}

// A deficient bid must lose money somewhere in the price range — that is
// what makes it deficient (Fig. 4(a)).
func TestDeficientBidLosesSomewhere(t *testing.T) {
	prof, _ := perf.ProfileByName("XSBench")
	model := perf.NewCostModel(prof, 1, perf.CostLinear)
	cores := 8.0
	bid := DeficientBid(cores, model, 0.3)
	worst := math.Inf(1)
	for q := 0.01; q < 20; q *= 1.1 {
		d := bid.Supply(q)
		gain := q*d - cores*model.Cost(d/cores)
		if gain < worst {
			worst = gain
		}
	}
	if worst >= 0 {
		t.Errorf("deficient bid never lost money (worst gain %v)", worst)
	}
}

// A conservative bid supplies no more than the cooperative bid at every
// price.
func TestConservativeBidSuppliesLess(t *testing.T) {
	prof, _ := perf.ProfileByName("SWFFT")
	model := perf.NewCostModel(prof, 1, perf.CostLinear)
	coop := CooperativeBid(4, model)
	cons := ConservativeBid(4, model, 1.5)
	for q := 0.05; q < 10; q *= 1.5 {
		if cons.Supply(q) > coop.Supply(q)+1e-12 {
			t.Errorf("conservative supplies more at q=%v", q)
		}
	}
	// Factor below 1 is clamped to 1 (same as cooperative).
	same := ConservativeBid(4, model, 0.5)
	if same.B != coop.B {
		t.Error("conservative factor < 1 not clamped")
	}
	// Deficient factor clamps to [0, 1].
	if DeficientBid(4, model, 2).B != coop.B {
		t.Error("deficient factor > 1 not clamped")
	}
	if DeficientBid(4, model, -1).B != 0 {
		t.Error("deficient factor < 0 not clamped")
	}
}

func TestRationalBidderSupplyMatchesOptimum(t *testing.T) {
	prof, _ := perf.ProfileByName("XSBench")
	model := perf.NewCostModel(prof, 1, perf.CostLinear)
	rb := &RationalBidder{Cores: 10, Model: model}
	for _, q := range []float64{0.2, 0.5, 1.0, 2.0} {
		bid := rb.RespondBid(q)
		want := 10 * model.GainMaximizingReduction(q)
		if got := bid.Supply(q); !floats.AbsEqual(got, want, 1e-6) {
			t.Errorf("q=%v: bid supplies %v, gain-optimal is %v", q, got, want)
		}
	}
}

func TestRationalBidderZeroCores(t *testing.T) {
	prof, _ := perf.ProfileByName("XSBench")
	model := perf.NewCostModel(prof, 1, perf.CostLinear)
	rb := &RationalBidder{Cores: 0, Model: model}
	bid := rb.RespondBid(1)
	if bid.Delta != 0 || bid.B != 0 {
		t.Errorf("zero-core bid = %+v", bid)
	}
}

func TestClearCappedNoOpBelowCap(t *testing.T) {
	ps := testPool(t)
	uncapped, err := Clear(ps, 3000)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := ClearCapped(ps, 3000, uncapped.Price*2)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Price != uncapped.Price || !capped.Feasible {
		t.Errorf("loose cap changed the outcome: %+v vs %+v", capped, uncapped)
	}
}

func TestClearCappedBinds(t *testing.T) {
	ps := testPool(t)
	uncapped, err := Clear(ps, 6000)
	if err != nil {
		t.Fatal(err)
	}
	cap := uncapped.Price / 2
	capped, err := ClearCapped(ps, 6000, cap)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Price != cap {
		t.Errorf("price = %v, want cap %v", capped.Price, cap)
	}
	if capped.Feasible {
		t.Error("binding cap should report a shortfall")
	}
	if capped.SuppliedW >= uncapped.SuppliedW {
		t.Errorf("capped supply %v should fall below uncapped %v", capped.SuppliedW, uncapped.SuppliedW)
	}
	if capped.PayoutRate >= uncapped.PayoutRate {
		t.Errorf("capped payout %v should fall below uncapped %v", capped.PayoutRate, uncapped.PayoutRate)
	}
}

func TestClearCappedValidation(t *testing.T) {
	ps := testPool(t)
	if _, err := ClearCapped(ps, 100, 0); err == nil {
		t.Error("zero cap accepted")
	}
	if _, err := ClearCapped(ps, 100, -1); err == nil {
		t.Error("negative cap accepted")
	}
}
