package core

import (
	"math"
	"math/rand"
	"testing"
)

// Out-of-range SetBid must come back as a typed error instead of the old
// index panic, with the index untouched.
func TestSetBidRangeError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := randomPool(rng, 8)
	ix, err := NewMarketIndex(ps)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, 8, 1000} {
		err := ix.SetBid(i, Bid{Delta: 1})
		re, ok := err.(*ParticipantRangeError)
		if !ok {
			t.Fatalf("SetBid(%d) err = %v, want *ParticipantRangeError", i, err)
		}
		if re.Index != i || re.Len != 8 {
			t.Errorf("SetBid(%d) error = %+v", i, re)
		}
	}
	if ix.dirty {
		t.Error("rejected SetBid dirtied the index")
	}
}

// The saturation doubling loop must terminate within its explicit
// iteration bound even on the pathological Wb ≫ WΔ pool, where the
// withheld aggregate stays above the 1e-9 W threshold at any
// representable price and only the caps can end the loop.
func TestSaturationPriceBounded(t *testing.T) {
	// One near-zero-Δ participant with an enormous b: activation price
	// b/Δ = 1e24, so the loop starts at 1e24 — already past the 1e15
	// price cap; without the guards this is where pathologies spin.
	ps := []*Participant{{
		JobID: "path", Cores: 1, WattsPerCore: 1,
		Bid: Bid{Delta: 1e-12, B: 1e12},
	}}
	ix, err := NewMarketIndex(ps)
	if err != nil {
		t.Fatal(err)
	}
	q := ix.saturationPrice()
	if math.IsInf(q, 0) || math.IsNaN(q) {
		t.Fatalf("saturation price = %v", q)
	}
	// The infeasible clear built on top of it stays finite too.
	res, err := ix.Clear(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible || math.IsInf(res.Price, 0) {
		t.Fatalf("pathological clear = %+v", res)
	}

	// Same contract on the streaming engine's mirror implementation.
	sm, err := NewStreamMarket(ps, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p, feasible := sm.Price(); feasible || math.IsInf(p, 0) || math.IsNaN(p) {
		t.Fatalf("stream pathological price = %v feasible=%v", p, feasible)
	}

	// Wb ≫ WΔ across a whole pool: huge reluctance, tiny ceilings. The
	// doubling from the max activation price (~1e13) must stop at the
	// price cap within the iteration budget.
	big := make([]*Participant, 32)
	for i := range big {
		big[i] = &Participant{
			JobID: "b", Cores: 1, WattsPerCore: 1,
			Bid: Bid{Delta: 1e-9, B: 1e4},
		}
	}
	bx, err := NewMarketIndex(big)
	if err != nil {
		t.Fatal(err)
	}
	if q := bx.saturationPrice(); math.IsInf(q, 0) || q <= 0 {
		t.Fatalf("pool saturation price = %v", q)
	}
	if saturationIterCap < 70 {
		t.Fatalf("saturationIterCap %d cannot even cover the 1e-6→1e15 doubling range", saturationIterCap)
	}
}

// Refresh's two regimes: a magnitude-only bid change (activation order
// preserved) must take the sort.IsSorted fast path, while an
// activation-order change must actually re-sort — observable through the
// index's sort counter.
func TestRefreshSortRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps := randomPool(rng, 300)
	ix, err := NewMarketIndex(ps)
	if err != nil {
		t.Fatal(err)
	}
	base := ix.sorts // the build's forced sort

	// Magnitude-only change: scale one bid's Δ and b together so the
	// activation price b/Δ is bit-identical and the order undisturbed.
	i := ix.order[150]
	old := ix.bids[i]
	if old.Delta == 0 {
		for _, j := range ix.order {
			if ix.bids[j].Delta > 0 {
				i, old = j, ix.bids[j]
				break
			}
		}
	}
	if err := ix.SetBid(i, Bid{Delta: old.Delta * 2, B: old.B * 2}); err != nil {
		t.Fatal(err)
	}
	ix.Refresh()
	if ix.sorts != base {
		t.Errorf("magnitude-only Refresh re-sorted (%d -> %d sorts)", base, ix.sorts)
	}

	// Activation-order change: move a mid-order bid's activation price to
	// the extreme low end.
	j := ix.order[150]
	if err := ix.SetBid(j, Bid{Delta: 8, B: 1e-9}); err != nil {
		t.Fatal(err)
	}
	ix.Refresh()
	if ix.sorts != base+1 {
		t.Errorf("order-changing Refresh sorts %d, want %d", ix.sorts, base+1)
	}

	// A clean Refresh (not dirty) does nothing.
	ix.Refresh()
	if ix.sorts != base+1 {
		t.Error("clean Refresh re-sorted")
	}
}

// Tie-break determinism: with duplicated activation prices across
// distinct participant indices, every rebuild history must converge to
// the same sorted permutation and therefore bit-for-bit identical prefix
// sums and clearing outcomes.
func TestRefreshTieBreakDeterminism(t *testing.T) {
	// 60 participants sharing 3 activation prices, heterogeneous watts so
	// permutation differences would change the float summation order.
	build := func() []*Participant {
		ps := make([]*Participant, 60)
		for i := range ps {
			a := []float64{0.5, 1.25, 2.0}[i%3]
			delta := 1 + float64(i%7)
			ps[i] = &Participant{
				JobID: "t", Cores: 1,
				WattsPerCore: 53 + 17.13*float64(i),
				Bid:          Bid{Delta: delta, B: a * delta},
			}
		}
		return ps
	}

	// History A: fresh build. History B: build, scramble every bid to a
	// random order, then SetBid each back to the original — two sorts with
	// completely different starting permutations.
	psA := build()
	ixA, err := NewMarketIndex(psA)
	if err != nil {
		t.Fatal(err)
	}
	psB := build()
	ixB, err := NewMarketIndex(psB)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := range psB {
		if err := ixB.SetBid(i, Bid{Delta: 1 + 8*rng.Float64(), B: 5 * rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	ixB.Refresh()
	for i := range psB {
		if err := ixB.SetBid(i, psB[i].Bid); err != nil {
			t.Fatal(err)
		}
	}
	ixB.Refresh()

	for k := range ixA.order {
		if ixA.order[k] != ixB.order[k] {
			t.Fatalf("order[%d]: %d vs %d — tie-break not deterministic", k, ixA.order[k], ixB.order[k])
		}
		if ixA.prefWD[k+1] != ixB.prefWD[k+1] || ixA.prefWB[k+1] != ixB.prefWB[k+1] {
			t.Fatalf("prefix sums diverge at %d: (%v,%v) vs (%v,%v)",
				k, ixA.prefWD[k+1], ixA.prefWB[k+1], ixB.prefWD[k+1], ixB.prefWB[k+1])
		}
	}
	target := 0.6 * poolMaxW(psA)
	var ra, rb ClearingResult
	if err := ixA.ClearInto(&ra, target); err != nil {
		t.Fatal(err)
	}
	if err := ixB.ClearInto(&rb, target); err != nil {
		t.Fatal(err)
	}
	if ra.Price != rb.Price || ra.SuppliedW != rb.SuppliedW {
		t.Fatalf("tied clears diverge: (%v,%v) vs (%v,%v)", ra.Price, ra.SuppliedW, rb.Price, rb.SuppliedW)
	}
	for i := range ra.Reductions {
		if ra.Reductions[i] != rb.Reductions[i] {
			t.Fatalf("reduction[%d]: %v vs %v", i, ra.Reductions[i], rb.Reductions[i])
		}
	}
}
