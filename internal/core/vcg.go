package core

// VCG procurement auction for power reduction — the alternative mechanism
// the paper discusses in Section VI: "Although VCG auction mechanism is
// efficient and incentive compatible, the mechanism requires the users to
// reveal their cost functions, which are private". This implementation
// exists to quantify that trade-off (ablation a6): VCG needs M+1
// optimal-allocation solves (one per pivotal computation) and full cost
// revelation, where MPR clears with a single scalar bisection over sealed
// supply-function bids.

import "fmt"

// VCGResult is the outcome of a VCG reduction auction.
type VCGResult struct {
	// Reductions is the efficient (cost-minimal) allocation in cores.
	Reductions []float64
	// TotalCost is the allocation's total reported cost.
	TotalCost float64
	// Payments holds each participant's VCG payment: its externality
	// J(−m) − (J* − C_m(δ*_m)). Truthful cost reporting is a dominant
	// strategy under these payments, and every participant's payment
	// covers its cost (individual rationality).
	Payments []float64
	// Pivotal marks participants without whom the target cannot be met;
	// their externality is unbounded and the payment reported here is
	// the lower bound obtained at the others' saturation point.
	Pivotal []bool
	// Feasible reports whether the full pool could meet the target.
	Feasible bool
}

// TotalPaymentVCG sums the auction payments.
func (r *VCGResult) TotalPaymentVCG() float64 {
	var t float64
	for _, p := range r.Payments {
		t += p
	}
	return t
}

// SolveVCG runs the VCG procurement auction: the efficient allocation
// minimizes total reported cost subject to the power-reduction target,
// and each winner is paid its externality. Requires every participant's
// cost functions (the revelation requirement MPR avoids).
func SolveVCG(ps []*Participant, targetW float64) (*VCGResult, error) {
	res := &VCGResult{
		Reductions: make([]float64, len(ps)),
		Payments:   make([]float64, len(ps)),
		Pivotal:    make([]bool, len(ps)),
		Feasible:   true,
	}
	if targetW <= 0 {
		return res, nil
	}
	if len(ps) == 0 {
		return nil, ErrNoParticipants
	}
	for _, p := range ps {
		if p.Cost == nil || p.MarginalCost == nil {
			return nil, fmt.Errorf("core: VCG requires cost revelation; participant %s has no cost function", p.JobID)
		}
	}

	full, err := SolveOPT(ps, targetW, OPTDual)
	if err != nil {
		return nil, err
	}
	res.Reductions = full.Reductions
	res.TotalCost = full.TotalCost
	res.Feasible = full.Feasible

	// Externality payments: one counterfactual solve per participant
	// with a positive award.
	for m, p := range ps {
		if full.Reductions[m] <= 1e-12 {
			continue
		}
		others := make([]*Participant, 0, len(ps)-1)
		for i, q := range ps {
			if i != m {
				others = append(others, q)
			}
		}
		othersCostWith := full.TotalCost - p.Cost(full.Reductions[m])
		if len(others) == 0 {
			// A lone supplier has no competitive counterfactual; pay
			// its own cost (zero profit, still individually rational).
			res.Payments[m] = p.Cost(full.Reductions[m])
			res.Pivotal[m] = true
			continue
		}
		counter, err := SolveOPT(others, targetW, OPTDual)
		if err != nil {
			return nil, err
		}
		if !counter.Feasible {
			res.Pivotal[m] = true
		}
		res.Payments[m] = counter.TotalCost - othersCostWith
		if res.Payments[m] < p.Cost(full.Reductions[m]) {
			// Numerical guard: IR holds analytically; clamp tiny
			// violations from solver tolerance.
			res.Payments[m] = p.Cost(full.Reductions[m])
		}
	}
	return res, nil
}
