package core

import (
	"math"
	"testing"
)

// Boundary behaviour of the price-capped market, pinned with hand-solved
// numbers. Pool: two jobs at 100 W/core — activation prices 0.5 and 1.5,
// aggregate supply S(q) = 100·(4 − 2/q) on [0.5, 1.5), plus
// 100·(2 − 3/q) from 1.5 on; capacity 600 W.
func cappedBoundaryPool() []*Participant {
	return []*Participant{
		{JobID: "a", Cores: 8, Bid: Bid{Delta: 4, B: 2}, WattsPerCore: 100, MaxFrac: 0.5},
		{JobID: "b", Cores: 4, Bid: Bid{Delta: 2, B: 3}, WattsPerCore: 100, MaxFrac: 0.5},
	}
}

var cappedModes = []ClearMode{ClearClosedForm, ClearBisection}

// Target exactly at the cap-limited supply: S(1) = 200 W, so a target of
// 200 W under a cap of 1 clears feasibly at exactly the cap — the cap
// does not bind, and the closed form runs a full price search.
func TestClearCappedTargetExactlyAtCapSupply(t *testing.T) {
	ps := cappedBoundaryPool()
	for _, mode := range cappedModes {
		res, err := ClearCappedWithMode(ps, 200, 1.0, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Feasible {
			t.Errorf("%v: target exactly at capped supply reported infeasible", mode)
		}
		if math.Abs(res.Price-1.0) > 1e-9 {
			t.Errorf("%v: price %v, want 1.0", mode, res.Price)
		}
		if math.Abs(res.SuppliedW-200) > 1e-6 {
			t.Errorf("%v: supplied %v, want 200", mode, res.SuppliedW)
		}
		if mode == ClearClosedForm && res.Rounds != 1 {
			t.Errorf("closed form ran %d rounds, want a full (non-short-circuit) search", res.Rounds)
		}
	}
}

// Cap below every activation price: the market trades nothing — zero
// supply, zero payout, infeasible, price pinned at the cap. The closed
// form must detect this from one supply lookup (Rounds = 0, no search).
func TestClearCappedBelowAllActivations(t *testing.T) {
	ps := cappedBoundaryPool() // lowest activation price 0.5
	for _, mode := range cappedModes {
		res, err := ClearCappedWithMode(ps, 150, 0.25, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Feasible {
			t.Errorf("%v: zero-trade market reported feasible", mode)
		}
		if res.Price != 0.25 {
			t.Errorf("%v: price %v, want the cap 0.25", mode, res.Price)
		}
		if res.SuppliedW != 0 || res.PayoutRate != 0 {
			t.Errorf("%v: supplied %v, payout %v, want 0, 0", mode, res.SuppliedW, res.PayoutRate)
		}
		for i, d := range res.Reductions {
			if d != 0 {
				t.Errorf("%v: reduction[%d] = %v, want 0", mode, i, d)
			}
		}
		if mode == ClearClosedForm && res.Rounds != 0 {
			t.Errorf("closed form ran %d rounds, want 0 (cap short-circuit)", res.Rounds)
		}
	}
}

// Cap exactly equal to the uncapped clearing price: the market clears
// normally and feasibly, settling at the cap itself.
func TestClearCappedAtUncappedPrice(t *testing.T) {
	ps := cappedBoundaryPool()
	target := 250.0
	for _, mode := range cappedModes {
		un, err := ClearWithMode(ps, target, mode)
		if err != nil {
			t.Fatalf("%v: uncapped: %v", mode, err)
		}
		if !un.Feasible {
			t.Fatalf("%v: uncapped clear infeasible", mode)
		}
		res, err := ClearCappedWithMode(ps, target, un.Price, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Feasible {
			t.Errorf("%v: cap at the clearing price reported infeasible", mode)
		}
		if math.Abs(res.Price-un.Price) > 1e-9*(1+un.Price) {
			t.Errorf("%v: price %v, want the uncapped price %v", mode, res.Price, un.Price)
		}
		if res.SuppliedW < target-1e-6 {
			t.Errorf("%v: supplied %v short of %v", mode, res.SuppliedW, target)
		}
	}
}

// A non-positive cap is a caller error in every mode.
func TestClearCappedRejectsBadCap(t *testing.T) {
	ps := cappedBoundaryPool()
	for _, mode := range cappedModes {
		for _, cap := range []float64{0, -1} {
			if _, err := ClearCappedWithMode(ps, 100, cap, mode); err == nil {
				t.Errorf("%v: cap %v accepted", mode, cap)
			}
		}
	}
}
