package core

import "fmt"

// SolveEQL implements the paper's performance-oblivious baseline: every
// core in the system is slowed by the same fraction until the power
// reduction target is met (Section IV-A). The uniform fraction is bounded
// by the smallest per-core reduction any active application supports —
// equal slowdown cannot push one application below its supported range
// while keeping the slowdown equal — which is why EQL can fail to find a
// feasible allocation on heterogeneous systems (Fig. 15(b)).
//
// EQL's per-participant "bookkeeping" (recording every job's new
// allocation) is what makes its solution time grow linearly with the
// number of active jobs in Fig. 10(a).
func SolveEQL(ps []*Participant, targetW float64) (*AllocationResult, error) {
	res := &AllocationResult{
		Reductions: make([]float64, len(ps)),
		TargetW:    targetW,
		Feasible:   true,
	}
	if targetW <= 0 {
		return res, nil
	}
	if len(ps) == 0 {
		return nil, ErrNoParticipants
	}

	// Watts saved per unit of uniform fraction, and the feasibility bound.
	var wattsPerFrac float64
	maxFrac := -1.0
	for _, p := range ps {
		if p.WattsPerCore <= 0 {
			return nil, fmt.Errorf("core: participant %s: watts-per-core must be positive", p.JobID)
		}
		if p.Cores < 0 {
			return nil, fmt.Errorf("core: participant %s: negative cores", p.JobID)
		}
		wattsPerFrac += p.Cores * p.WattsPerCore
		if maxFrac < 0 || p.MaxFrac < maxFrac {
			maxFrac = p.MaxFrac
		}
	}
	if wattsPerFrac <= 0 {
		res.Feasible = false
		return res, nil
	}

	frac := targetW / wattsPerFrac
	if frac > maxFrac {
		frac = maxFrac
		res.Feasible = false
	}

	// Bookkeeping: record each job's new allocation.
	for i, p := range ps {
		res.Reductions[i] = frac * p.Cores
		res.SuppliedW += p.WattsPerCore * res.Reductions[i]
		if p.Cost != nil {
			res.TotalCost += p.Cost(res.Reductions[i])
		}
	}
	return res, nil
}
