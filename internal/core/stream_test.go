package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mpr/internal/check/floats"
)

// streamOracle builds the batch twin of a stream market's current state:
// removed slots behave exactly like Δ = 0 bids (no supply at any price),
// so the oracle pool encodes them that way.
func streamOracle(t *testing.T, sm *StreamMarket) *MarketIndex {
	t.Helper()
	ps := make([]*Participant, sm.Len())
	for i := range ps {
		p := &Participant{
			JobID:        fmt.Sprintf("s%d", i),
			Cores:        1,
			WattsPerCore: sm.watts[i],
			Bid:          sm.bids[i],
		}
		if !sm.active[i] {
			p.Bid = Bid{}
		}
		ps[i] = p
	}
	ix, err := NewMarketIndex(ps)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// compareStreamToBatch asserts the stream market's cached price agrees
// with a from-scratch batch clear of its current state to the harness
// float tolerance (summation orders differ between the treap and the
// sorted prefix sums, so bit-identity is not the contract here).
func compareStreamToBatch(t *testing.T, sm *StreamMarket, ctx string) {
	t.Helper()
	ix := streamOracle(t, sm)
	wantPrice, wantFeasible := ix.minPrice(sm.target)
	gotPrice, gotFeasible := sm.Price()
	if gotFeasible != wantFeasible {
		t.Fatalf("%s: feasible %v, batch %v", ctx, gotFeasible, wantFeasible)
	}
	if wantFeasible {
		scale := 1 + math.Abs(wantPrice)
		if !floats.AbsEqual(gotPrice, wantPrice, 1e-9*scale) {
			t.Fatalf("%s: price %v, batch %v", ctx, gotPrice, wantPrice)
		}
	}
	if !floats.RelEqual(sm.MaxSupplyW(), ix.MaxSupplyW(), 1e-9) {
		t.Fatalf("%s: maxW %v, batch %v", ctx, sm.MaxSupplyW(), ix.MaxSupplyW())
	}
	if err := sm.checkInvariants(); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
}

// The streaming solve must agree with the batch index over random pools
// and the full target spectrum, including infeasible targets and the
// all-Δ=0 pool.
func TestStreamMatchesBatchClear(t *testing.T) {
	sizes := []int{1, 2, 3, 7, 33, 257, 1025, 10000}
	if testing.Short() {
		sizes = []int{1, 2, 3, 7, 33, 257}
	}
	fracs := []float64{1e-6, 0.05, 0.3, 0.6, 0.9, 0.99, 0.999, 1.5, 3}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(13*n + 5)))
		ps := randomPool(rng, n)
		maxW := poolMaxW(ps)
		for _, frac := range fracs {
			target := frac * maxW
			if maxW == 0 {
				target = 100
			}
			sm, err := NewStreamMarket(ps, target)
			if err != nil {
				t.Fatal(err)
			}
			compareStreamToBatch(t, sm, fmt.Sprintf("n=%d frac=%v", n, frac))

			// The materialized clear must agree with the batch mode too.
			var got, want ClearingResult
			if err := sm.ClearInto(&got); err != nil {
				t.Fatal(err)
			}
			ix := streamOracle(t, sm)
			if err := ix.ClearInto(&want, target); err != nil {
				t.Fatal(err)
			}
			if got.Feasible != want.Feasible {
				t.Fatalf("n=%d frac=%v: ClearInto feasible %v vs %v", n, frac, got.Feasible, want.Feasible)
			}
			if got.Feasible && !floats.AbsEqual(got.SuppliedW, want.SuppliedW, 1e-6*(1+maxW)) {
				t.Fatalf("n=%d frac=%v: supplied %v vs %v", n, frac, got.SuppliedW, want.SuppliedW)
			}
			for i := range got.Reductions {
				if !floats.AbsEqual(got.Reductions[i], want.Reductions[i], 1e-6*(1+ps[i].Bid.Delta)) {
					t.Fatalf("n=%d frac=%v: reduction[%d] %v vs %v",
						n, frac, i, got.Reductions[i], want.Reductions[i])
				}
			}
		}
	}
}

// The O(log M) streaming supply evaluation must match the naive sum.
func TestStreamSupplyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{1, 5, 64, 513} {
		ps := randomPool(rng, n)
		sm, err := NewStreamMarket(ps, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []float64{0, 1e-9, 0.01, 0.1, 0.5, 1, 3, 10, 100, 1e6} {
			var naive float64
			for _, p := range ps {
				naive += p.WattsPerCore * p.Bid.Supply(q)
			}
			if got := sm.SupplyW(q); !floats.RelEqual(got, naive, 1e-7) {
				t.Errorf("n=%d q=%v: SupplyW %v vs naive %v", n, q, got, naive)
			}
		}
	}
}

// Long randomized Apply sequences — bid updates, activation-order flips,
// Δ = 0 degenerations, removals, re-activations, appends, and target
// changes — must keep the streamed price within tolerance of a
// from-scratch batch clear after every single update, with the treap
// invariants intact throughout.
func TestStreamApplyMatchesBatchAfterEveryUpdate(t *testing.T) {
	updates := 600
	if testing.Short() {
		updates = 150
	}
	rng := rand.New(rand.NewSource(2024))
	ps := randomPool(rng, 120)
	sm, err := NewStreamMarket(ps, 0.5*poolMaxW(ps))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < updates; u++ {
		var d ParticipantDelta
		switch op := rng.Intn(10); {
		case op < 6: // bid update on an existing slot
			d.Index = rng.Intn(sm.Len())
			d.Bid = Bid{Delta: 8 * rng.Float64(), B: 5 * rng.Float64()}
			switch u % 7 {
			case 0:
				d.Bid.B = 0
			case 1:
				d.Bid.Delta = 0
			}
			if rng.Intn(4) == 0 {
				d.WattsPerCore = 50 + 200*rng.Float64()
			}
		case op < 8: // removal (possibly of an already-removed slot)
			d.Index = rng.Intn(sm.Len())
			d.Remove = true
		case op < 9: // append
			d.Index = sm.Len()
			d.Bid = Bid{Delta: 8 * rng.Float64(), B: 5 * rng.Float64()}
			d.WattsPerCore = 50 + 200*rng.Float64()
		default: // target change
			sm.SetTarget(sm.MaxSupplyW() * (0.1 + 1.2*rng.Float64()))
			compareStreamToBatch(t, sm, fmt.Sprintf("update %d (retarget)", u))
			continue
		}
		if _, _, err := sm.Apply(d); err != nil {
			t.Fatalf("update %d: %v", u, err)
		}
		compareStreamToBatch(t, sm, fmt.Sprintf("update %d", u))
	}
}

// Replaying the same update history must reproduce every published price
// bit for bit: the treap's shape (fixed splitmix64 priorities) and with
// it every aggregate's summation order depend only on the history.
func TestStreamReplayBitIdentical(t *testing.T) {
	run := func() []float64 {
		rng := rand.New(rand.NewSource(99))
		ps := randomPool(rng, 80)
		sm, err := NewStreamMarket(ps, 0.6*poolMaxW(ps))
		if err != nil {
			t.Fatal(err)
		}
		var prices []float64
		for u := 0; u < 200; u++ {
			d := ParticipantDelta{
				Index: rng.Intn(sm.Len()),
				Bid:   Bid{Delta: 8 * rng.Float64(), B: 5 * rng.Float64()},
			}
			if u%11 == 0 {
				d.Remove = true
			}
			p, _, err := sm.Apply(d)
			if err != nil {
				t.Fatal(err)
			}
			prices = append(prices, p)
		}
		return prices
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at update %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Out-of-range and invalid deltas must come back as typed errors with
// the market state untouched — the streaming mirror of the SetBid guard.
func TestStreamApplyRangeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := randomPool(rng, 10)
	sm, err := NewStreamMarket(ps, 100)
	if err != nil {
		t.Fatal(err)
	}
	price0, feas0 := sm.Price()
	for _, d := range []ParticipantDelta{
		{Index: -1, Bid: Bid{Delta: 1}},
		{Index: 11, Bid: Bid{Delta: 1}},
		{Index: 10, Remove: true}, // append position cannot be removed
	} {
		_, _, err := sm.Apply(d)
		var re *ParticipantRangeError
		if !asParticipantRange(err, &re) {
			t.Fatalf("Apply(%+v) err = %v, want *ParticipantRangeError", d, err)
		}
		if re.Len != 10 {
			t.Errorf("range error Len = %d, want 10", re.Len)
		}
		if re.Error() == "" {
			t.Error("empty range error message")
		}
	}
	if _, _, err := sm.Apply(ParticipantDelta{Index: 0, Bid: Bid{Delta: -1}}); err == nil {
		t.Error("invalid bid accepted")
	}
	if _, _, err := sm.Apply(ParticipantDelta{Index: 0, Bid: Bid{Delta: 1}, WattsPerCore: -5}); err == nil {
		t.Error("negative watts accepted")
	}
	if _, _, err := sm.Apply(ParticipantDelta{Index: 10, Bid: Bid{Delta: 1}}); err == nil {
		t.Error("append without watts accepted")
	}
	if p, f := sm.Price(); p != price0 || f != feas0 {
		t.Errorf("rejected deltas moved the price: (%v,%v) -> (%v,%v)", price0, feas0, p, f)
	}
}

func asParticipantRange(err error, target **ParticipantRangeError) bool {
	re, ok := err.(*ParticipantRangeError)
	if ok {
		*target = re
	}
	return ok
}

// Steady-state Apply must not allocate: update an existing slot's bid
// back and forth (including activation-order changes) under the no-op
// telemetry registry.
func TestStreamApplyZeroAllocCore(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps := randomPool(rng, 2048)
	sm, err := NewStreamMarket(ps, 0.5*poolMaxW(ps))
	if err != nil {
		t.Fatal(err)
	}
	a := ParticipantDelta{Index: 17, Bid: Bid{Delta: 4, B: 0.01}} // low activation
	b := ParticipantDelta{Index: 17, Bid: Bid{Delta: 4, B: 40}}   // high activation
	flip := false
	allocs := testing.AllocsPerRun(200, func() {
		d := a
		if flip {
			d = b
		}
		flip = !flip
		if _, _, err := sm.Apply(d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Apply allocated %v times per update, want 0", allocs)
	}
	// ClearInto with a warm result buffer is also allocation-free.
	var res ClearingResult
	if err := sm.ClearInto(&res); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if err := sm.ClearInto(&res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ClearInto allocated %v times per clear, want 0", allocs)
	}
}

// The fixed-hash priorities must keep the tree balanced: depth stays
// within a small multiple of log₂ M across heavy churn.
func TestStreamTreeStaysBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n := 20000
	if testing.Short() {
		n = 4000
	}
	ps := randomPool(rng, n)
	sm, err := NewStreamMarket(ps, 0.5*poolMaxW(ps))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3000; u++ {
		d := ParticipantDelta{
			Index: rng.Intn(sm.Len()),
			Bid:   Bid{Delta: 8 * rng.Float64(), B: 5 * rng.Float64()},
		}
		if _, _, err := sm.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	limit := 5 * int(math.Log2(float64(n))+1)
	if got := sm.depth(); got > limit {
		t.Errorf("tree depth %d exceeds %d (5·log₂ %d) — priority hash broken?", got, limit, n)
	}
	if err := sm.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Edge semantics: zero/negative targets clear trivially, the empty
// market mirrors the batch ErrNoParticipants contract, and the
// streaming ClearMode routes one-shot clears through the treap engine.
func TestStreamEdgesAndMode(t *testing.T) {
	sm, err := NewStreamMarket(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var res ClearingResult
	if err := sm.ClearInto(&res); err != nil || !res.Feasible || res.Price != 0 {
		t.Errorf("zero target on empty market: %+v, %v", res, err)
	}
	if _, feasible := sm.SetTarget(10); feasible {
		t.Error("empty market feasible at positive target")
	}
	if err := sm.ClearInto(&res); err != ErrNoParticipants {
		t.Errorf("err = %v, want ErrNoParticipants", err)
	}
	if ClearStreaming.String() != "streaming" {
		t.Error("ClearStreaming string")
	}

	rng := rand.New(rand.NewSource(12))
	ps := randomPool(rng, 64)
	target := 0.4 * poolMaxW(ps)
	st, err := ClearWithMode(ps, target, ClearStreaming)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := ClearWithMode(ps, target, ClearClosedForm)
	if err != nil {
		t.Fatal(err)
	}
	if st.Feasible != cf.Feasible || !floats.RelEqual(st.Price, cf.Price, 1e-9) {
		t.Errorf("streaming mode %+v vs closed form %+v", st, cf)
	}

	// Removing every participant empties the tree; re-activation restores.
	sm2, err := NewStreamMarket(ps, target)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sm2.Len(); i++ {
		if _, _, err := sm2.Apply(ParticipantDelta{Index: i, Remove: true}); err != nil {
			t.Fatal(err)
		}
	}
	if sm2.MaxSupplyW() != 0 {
		t.Errorf("fully removed market still supplies %v W", sm2.MaxSupplyW())
	}
	if _, feasible := sm2.Price(); feasible {
		t.Error("fully removed market feasible")
	}
	for i := 0; i < sm2.Len(); i++ {
		d := ParticipantDelta{Index: i, Bid: ps[i].Bid, WattsPerCore: ps[i].WattsPerCore}
		if _, _, err := sm2.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	compareStreamToBatch(t, sm2, "after full remove/re-add cycle")
	if p, _ := sm2.Price(); !floats.RelEqual(p, cf.Price, 1e-9) {
		t.Errorf("re-added market price %v, want %v", p, cf.Price)
	}
	if sm2.Target() != target {
		t.Errorf("Target() = %v, want %v", sm2.Target(), target)
	}
}
