package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mpr/internal/check/floats"
	"mpr/internal/perf"
)

// randomPool builds a seeded random participant pool for the differential
// tests: mixed willingness (B = 0 fully willing jobs), Δ = 0 jobs that
// can never supply, and heterogeneous watts-per-core.
func randomPool(rng *rand.Rand, n int) []*Participant {
	ps := make([]*Participant, n)
	for i := 0; i < n; i++ {
		delta := 0.1 + 7.9*rng.Float64()
		if rng.Float64() < 0.08 {
			delta = 0 // job that supports no reduction at all
		}
		b := 0.01 + 5*rng.Float64()
		if rng.Float64() < 0.15 {
			b = 0 // fully willing job
		}
		ps[i] = &Participant{
			JobID:        fmt.Sprintf("r%d", i),
			Cores:        float64(1 + rng.Intn(32)),
			Bid:          Bid{Delta: delta, B: b},
			WattsPerCore: 50 + 200*rng.Float64(),
		}
	}
	return ps
}

func poolMaxW(ps []*Participant) float64 {
	var maxW float64
	for _, p := range ps {
		maxW += p.WattsPerCore * p.Bid.Delta
	}
	return maxW
}

// TestClosedFormMatchesBisection is the differential property test: over
// seeded random pools of 1–10,000 participants (including B = 0 fully
// willing jobs, Δ = 0 jobs, and infeasible targets), the closed-form
// segmented solver and the bisection solver agree on feasibility,
// clearing price, reductions, and supplied power to 1e-9.
func TestClosedFormMatchesBisection(t *testing.T) {
	sizes := []int{1, 2, 3, 7, 33, 257, 1025, 10000}
	if testing.Short() {
		sizes = []int{1, 2, 3, 7, 33, 257}
	}
	fracs := []float64{1e-6, 0.05, 0.3, 0.6, 0.9, 0.99, 0.999, 1.5, 3}
	for _, n := range sizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7*n + 1)))
			ps := randomPool(rng, n)
			maxW := poolMaxW(ps)
			for _, frac := range fracs {
				target := frac * maxW
				if maxW == 0 { // all-Δ=0 pool: exercise the infeasible path
					target = 100
				}
				cf, err := ClearWithMode(ps, target, ClearClosedForm)
				if err != nil {
					t.Fatalf("closed form target %v: %v", target, err)
				}
				bi, err := ClearWithMode(ps, target, ClearBisection)
				if err != nil {
					t.Fatalf("bisection target %v: %v", target, err)
				}
				if cf.Feasible != bi.Feasible {
					t.Fatalf("target %v: feasibility %v vs %v", target, cf.Feasible, bi.Feasible)
				}
				if cf.Feasible {
					// The bisection bracket is 1e-13-relative; 1e-9 leaves
					// four orders of magnitude of slack over its guarantee.
					if !floats.RelEqual(cf.Price, bi.Price, 1e-9) {
						t.Errorf("target %v (frac %v): price %v vs %v",
							target, frac, cf.Price, bi.Price)
					}
					if !floats.AbsEqual(cf.SuppliedW, bi.SuppliedW, 1e-9*(1+maxW)) {
						t.Errorf("target %v: supplied %v vs %v", target, cf.SuppliedW, bi.SuppliedW)
					}
					// Exactness: the closed form itself meets the target and
					// is minimal to 1e-9 relative.
					if cf.SuppliedW < target-1e-9*(1+target) {
						t.Errorf("target %v: closed form supplied %v short of target", target, cf.SuppliedW)
					}
				} else {
					// Infeasible prices are saturation sentinels and may
					// differ between solvers; everyone must be saturated.
					for i, p := range ps {
						if !floats.RelEqual(cf.Reductions[i], p.Bid.Delta, 1e-6) {
							t.Fatalf("infeasible: participant %d not saturated: %v vs Δ=%v",
								i, cf.Reductions[i], p.Bid.Delta)
						}
					}
				}
				for i := range ps {
					if !floats.AbsEqual(cf.Reductions[i], bi.Reductions[i], 1e-9*(1+ps[i].Bid.Delta)) {
						t.Errorf("target %v: reduction[%d] %v vs %v",
							target, i, cf.Reductions[i], bi.Reductions[i])
					}
				}
			}
		})
	}
}

// The index's O(log M) aggregate supply must match the naive O(M) sum at
// arbitrary prices, including q = 0 and prices below every activation.
func TestMarketIndexSupplyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 5, 64, 513} {
		ps := randomPool(rng, n)
		ix, err := NewMarketIndex(ps)
		if err != nil {
			t.Fatal(err)
		}
		if !floats.AbsEqual(ix.MaxSupplyW(), poolMaxW(ps), 1e-6) {
			t.Errorf("n=%d: MaxSupplyW %v vs %v", n, ix.MaxSupplyW(), poolMaxW(ps))
		}
		prices := []float64{0, 1e-9, 0.01, 0.1, 0.5, 1, 3, 10, 100, 1e6}
		for _, q := range prices {
			var naive float64
			for _, p := range ps {
				naive += p.WattsPerCore * p.Bid.Supply(q)
			}
			got := ix.SupplyW(q)
			if !floats.RelEqual(got, naive, 1e-7) {
				t.Errorf("n=%d q=%v: SupplyW %v vs naive %v", n, q, got, naive)
			}
		}
	}
}

// Incremental SetBid + Refresh must land on the same prices and supplies
// as rebuilding the index from scratch.
func TestMarketIndexSetBidMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := randomPool(rng, 200)
	ix, err := NewMarketIndex(ps)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		// Mutate a subset of bids, including activation-order changes,
		// willingness flips, and Δ = 0 degenerations.
		for i := 0; i < len(ps); i += 3 + round {
			nb := Bid{Delta: 8 * rng.Float64(), B: 5 * rng.Float64()}
			switch i % 5 {
			case 0:
				nb.B = 0
			case 1:
				nb.Delta = 0
			}
			ps[i].Bid = nb
			if err := ix.SetBid(i, nb); err != nil {
				t.Fatal(err)
			}
		}
		fresh, err := NewMarketIndex(ps)
		if err != nil {
			t.Fatal(err)
		}
		target := 0.5 * poolMaxW(ps)
		inc, err := ix.Clear(target)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := fresh.Clear(target)
		if err != nil {
			t.Fatal(err)
		}
		if inc.Price != ref.Price || inc.SuppliedW != ref.SuppliedW || inc.Feasible != ref.Feasible {
			t.Fatalf("round %d: incremental %+v vs fresh %+v", round, inc, ref)
		}
		for i := range inc.Reductions {
			if inc.Reductions[i] != ref.Reductions[i] {
				t.Fatalf("round %d: reduction[%d] %v vs %v", round, i, inc.Reductions[i], ref.Reductions[i])
			}
		}
	}
	// Unchanged bids are no-ops: the index must not even go dirty.
	ix.Refresh()
	if err := ix.SetBid(0, ps[0].Bid); err != nil {
		t.Fatal(err)
	}
	if ix.dirty {
		t.Error("SetBid with an identical bid dirtied the index")
	}
	if err := ix.SetBid(1, Bid{Delta: -1}); err == nil {
		t.Error("invalid bid accepted by SetBid")
	}
}

// ClearInto must reuse the caller's result buffers: after the first
// call, repeated clears perform zero heap allocations.
func TestClearIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := randomPool(rng, 500)
	ix, err := NewMarketIndex(ps)
	if err != nil {
		t.Fatal(err)
	}
	target := 0.4 * poolMaxW(ps)
	var res ClearingResult
	if err := ix.ClearInto(&res, target); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := ix.ClearInto(&res, target); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ClearInto allocated %v times per clear, want 0", allocs)
	}
}

// TestMarketIndexReset: an index reset onto another pool clears exactly
// like a freshly built index over that pool, and same-size (or smaller)
// resets reuse the backing arrays — zero allocations, the simulation
// engine's per-invocation pattern.
func TestMarketIndexReset(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ix, err := NewMarketIndex(randomPool(rng, 300))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{300, 120, 1, 300, 700, 250} {
		ps := randomPool(rng, n)
		if err := ix.Reset(ps); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewMarketIndex(ps)
		if err != nil {
			t.Fatal(err)
		}
		target := 0.4 * poolMaxW(ps)
		var got, want ClearingResult
		if err := ix.ClearInto(&got, target); err != nil {
			t.Fatal(err)
		}
		if err := fresh.ClearInto(&want, target); err != nil {
			t.Fatal(err)
		}
		if got.Price != want.Price || got.Feasible != want.Feasible || got.SuppliedW != want.SuppliedW {
			t.Fatalf("n=%d: reset clear (price %v feasible %v) != fresh (price %v feasible %v)",
				n, got.Price, got.Feasible, want.Price, want.Feasible)
		}
		for i := range ps {
			if got.Reductions[i] != want.Reductions[i] {
				t.Fatalf("n=%d: reduction[%d] %v != %v", n, i, got.Reductions[i], want.Reductions[i])
			}
		}
	}
	// A bad bid must be rejected exactly like NewMarketIndex rejects it.
	bad := randomPool(rng, 4)
	bad[2].Bid.Delta = -1
	if err := ix.Reset(bad); err == nil {
		t.Fatal("Reset accepted an invalid bid")
	}
	// Steady-state resets over a same-size pool reuse the arrays.
	steady := randomPool(rng, 700)
	if err := ix.Reset(steady); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := ix.Reset(steady); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("same-size Reset allocated %v times per call, want 0", allocs)
	}
}

// ClearCapped's capped branch must not run a full market clear: the
// supply is evaluated at the cap first, observable both through the
// solver-call counters and through Rounds = 0.
func TestClearCappedShortCircuit(t *testing.T) {
	ps := testPool(t)
	uncapped, err := Clear(ps, 6000)
	if err != nil {
		t.Fatal(err)
	}
	cap := uncapped.Price / 2
	searches0, short0 := MarketStats()
	capped, err := ClearCapped(ps, 6000, cap)
	if err != nil {
		t.Fatal(err)
	}
	searches1, short1 := MarketStats()
	if got := searches1 - searches0; got != 0 {
		t.Errorf("capped branch ran %d full price searches, want 0", got)
	}
	if short1-short0 != 1 {
		t.Errorf("short-circuit counter moved by %d, want 1", short1-short0)
	}
	if capped.Rounds != 0 {
		t.Errorf("capped branch Rounds = %d, want 0 (no price search)", capped.Rounds)
	}
	if capped.Price != cap || capped.Feasible {
		t.Errorf("capped result = %+v", capped)
	}
	// The capped outcome must match the legacy clear-then-discard path
	// bit for bit (both materialize supply at the cap).
	legacy, err := ClearCappedWithMode(ps, 6000, cap, ClearBisection)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Price != legacy.Price || capped.SuppliedW != legacy.SuppliedW || capped.Feasible != legacy.Feasible {
		t.Errorf("short-circuit %+v vs legacy %+v", capped, legacy)
	}
	for i := range capped.Reductions {
		if capped.Reductions[i] != legacy.Reductions[i] {
			t.Errorf("reduction[%d]: %v vs %v", i, capped.Reductions[i], legacy.Reductions[i])
		}
	}
	// A loose cap must still run exactly one full search.
	searches0, _ = MarketStats()
	if _, err := ClearCapped(ps, 6000, uncapped.Price*2); err != nil {
		t.Fatal(err)
	}
	searches1, _ = MarketStats()
	if searches1-searches0 != 1 {
		t.Errorf("loose cap ran %d searches, want 1", searches1-searches0)
	}
}

// Regression for the old contract violation: ClearInteractive used to
// overwrite the caller's ps[i].Bid with each round's rational bid. The
// participants must now come back untouched.
func TestInteractiveDoesNotMutateBids(t *testing.T) {
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD"}
	ps, bs := interactiveSetup(t, apps, 16)
	before := make([]Bid, len(ps))
	for i, p := range ps {
		before[i] = p.Bid
	}
	res, err := ClearInteractive(ps, bs, 2500, InteractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i, p := range ps {
		if p.Bid != before[i] {
			t.Errorf("participant %d bid mutated: %+v -> %+v", i, before[i], p.Bid)
		}
	}
}

// The parallel rebid fan-out must be bit-identical to the sequential
// path: same price, rounds, and reductions.
func TestInteractiveParallelMatchesSequential(t *testing.T) {
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD", "HPCCG", "SWFFT", "miniMD", "miniFE"}
	names := make([]string, 96) // above parallelBidFloor
	for i := range names {
		names[i] = apps[i%len(apps)]
	}
	target := float64(len(names)) * 8 * 125 * 0.3
	run := func(workers int) *ClearingResult {
		ps, bs := interactiveSetup(t, names, 8)
		res, err := ClearInteractive(ps, bs, target, InteractiveConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, workers := range []int{0, 2, 4, 7} {
		par := run(workers)
		if par.Price != seq.Price || par.Rounds != seq.Rounds || par.Converged != seq.Converged {
			t.Fatalf("workers=%d: %+v vs sequential %+v", workers, par, seq)
		}
		for i := range seq.Reductions {
			if par.Reductions[i] != seq.Reductions[i] {
				t.Fatalf("workers=%d: reduction[%d] %v vs %v", workers, i, par.Reductions[i], seq.Reductions[i])
			}
		}
	}
}

// The interactive market must land on the same equilibrium regardless of
// the per-round solver.
func TestInteractiveSolverModesAgree(t *testing.T) {
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD", "HPCCG", "SWFFT"}
	target := 3500.0
	ps, bs := interactiveSetup(t, apps, 16)
	fast, err := ClearInteractive(ps, bs, target, InteractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ps2, bs2 := interactiveSetup(t, apps, 16)
	slow, err := ClearInteractive(ps2, bs2, target, InteractiveConfig{Mode: ClearBisection})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Converged != slow.Converged || fast.Rounds != slow.Rounds {
		t.Errorf("closed form %+v vs bisection %+v", fast, slow)
	}
	if !floats.RelEqual(fast.Price, slow.Price, 1e-6) {
		t.Errorf("equilibrium price %v vs %v", fast.Price, slow.Price)
	}
}

func TestClearModeString(t *testing.T) {
	if ClearAuto.String() != "auto" || ClearClosedForm.String() != "closed-form" ||
		ClearBisection.String() != "bisection" || ClearMode(9).String() != "unknown" {
		t.Error("ClearMode strings")
	}
}

// Edge parity between the solver modes for the degenerate inputs.
func TestClearModeEdgeParity(t *testing.T) {
	for _, mode := range []ClearMode{ClearClosedForm, ClearBisection} {
		if res, err := ClearWithMode(nil, 0, mode); err != nil || !res.Feasible || res.Price != 0 {
			t.Errorf("%v: zero target = %+v, %v", mode, res, err)
		}
		if _, err := ClearWithMode(nil, 10, mode); err != ErrNoParticipants {
			t.Errorf("%v: err = %v, want ErrNoParticipants", mode, err)
		}
		bad := &Participant{JobID: "bad", Cores: 1, WattsPerCore: 0, Bid: Bid{Delta: 1}}
		if _, err := ClearWithMode([]*Participant{bad}, 10, mode); err == nil {
			t.Errorf("%v: invalid participant accepted", mode)
		}
		// A pool that can never supply anything: infeasible, saturation
		// price at the 1e-6 floor in both modes.
		dead := []*Participant{{JobID: "z", Cores: 4, WattsPerCore: 125, Bid: Bid{Delta: 0, B: 3}}}
		res, err := ClearWithMode(dead, 50, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Feasible || res.SuppliedW != 0 || res.Price != 1e-6 {
			t.Errorf("%v: dead pool result = %+v", mode, res)
		}
	}
}

// The cooperative-bid pool sanity check at real profile scale: the
// closed form reproduces the bisection clearing on the perf-model pool
// used throughout the test suite.
func TestClosedFormOnProfilePool(t *testing.T) {
	profiles := perf.CPUProfiles()
	var ps []*Participant
	for i := 0; i < 64; i++ {
		prof := profiles[i%len(profiles)]
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		cores := float64(4 + i%13)
		ps = append(ps, &Participant{
			JobID:        fmt.Sprintf("p%d", i),
			Cores:        cores,
			Bid:          CooperativeBid(cores, model),
			WattsPerCore: 125,
			MaxFrac:      prof.MaxReduction(),
		})
	}
	maxW := poolMaxW(ps)
	for _, frac := range []float64{0.1, 0.4, 0.8, 0.99} {
		cf, err := ClearWithMode(ps, frac*maxW, ClearClosedForm)
		if err != nil {
			t.Fatal(err)
		}
		bi, err := ClearWithMode(ps, frac*maxW, ClearBisection)
		if err != nil {
			t.Fatal(err)
		}
		if !floats.RelEqual(cf.Price, bi.Price, 1e-9) {
			t.Errorf("frac %v: price %v vs %v", frac, cf.Price, bi.Price)
		}
	}
}
