package core

import (
	"fmt"

	"mpr/internal/solver"
)

// OPTMethod selects how the OPT benchmark is solved.
type OPTMethod int

const (
	// OPTGeneric solves OPT with a general-purpose projected-gradient
	// NLP solver — the analogue of the paper's generic optimizer whose
	// run time balloons with the number of jobs (Fig. 10(a)).
	OPTGeneric OPTMethod = iota
	// OPTDual exploits the problem's separable convex structure and
	// solves the KKT conditions by bisection on the dual multiplier.
	// Used to cross-check the generic solver and the market outcome.
	OPTDual
)

// String implements fmt.Stringer.
func (m OPTMethod) String() string {
	switch m {
	case OPTGeneric:
		return "generic"
	case OPTDual:
		return "dual"
	default:
		return "unknown"
	}
}

// AllocationResult is the outcome of a centralized (non-market) overload
// handling algorithm.
type AllocationResult struct {
	// Reductions holds per-participant resource reductions in cores.
	Reductions []float64
	// SuppliedW is the achieved power reduction.
	SuppliedW float64
	// TargetW echoes the request.
	TargetW float64
	// Feasible reports whether the target could be met.
	Feasible bool
	// Iterations counts solver iterations (0 for closed-form methods).
	Iterations int
	// TotalCost is Σ Cost_m(δ_m), the objective OPT minimizes.
	TotalCost float64
}

// SolveOPT solves the paper's OPT problem (Eqns. (1)-(2)): minimize the
// total cost of performance loss subject to meeting the power-reduction
// target. Unlike the market, OPT requires every participant's private
// cost function — exactly the burden MPR removes from the HPC manager.
func SolveOPT(ps []*Participant, targetW float64, method OPTMethod) (*AllocationResult, error) {
	res := &AllocationResult{
		Reductions: make([]float64, len(ps)),
		TargetW:    targetW,
		Feasible:   true,
	}
	if targetW <= 0 {
		return res, nil
	}
	if len(ps) == 0 {
		return nil, ErrNoParticipants
	}
	for _, p := range ps {
		if p.Cost == nil || p.MarginalCost == nil {
			return nil, fmt.Errorf("core: OPT requires cost functions; participant %s has none", p.JobID)
		}
		if p.WattsPerCore <= 0 {
			return nil, fmt.Errorf("core: participant %s: watts-per-core must be positive", p.JobID)
		}
	}

	prob := solver.ProjectedGradientProblem{
		N:      len(ps),
		Cost:   func(m int, x float64) float64 { return ps[m].Cost(x) },
		Grad:   func(m int, x float64) float64 { return ps[m].MarginalCost(x) },
		Coeff:  make([]float64, len(ps)),
		Upper:  make([]float64, len(ps)),
		Target: targetW,
	}
	for i, p := range ps {
		prob.Coeff[i] = p.WattsPerCore
		prob.Upper[i] = p.MaxReduction()
	}

	var sol solver.ProjectedGradientResult
	switch method {
	case OPTDual:
		sol = solver.DualBisection(prob, 1e-10)
	default:
		sol = solver.SolveProjectedGradient(prob, 20000, 1e-9)
	}
	res.Reductions = sol.X
	res.Iterations = sol.Iterations
	res.Feasible = sol.Feasible
	res.TotalCost = sol.Objective
	for i, p := range ps {
		res.SuppliedW += p.WattsPerCore * sol.X[i]
	}
	return res, nil
}
