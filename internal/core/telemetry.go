package core

import (
	"sync/atomic"

	"mpr/internal/telemetry"
)

// Metric names the core market registers. Exported as constants so shims,
// dashboards, and tests address them without string drift.
const (
	// MetricPriceSearches counts full MClr price solves (any mode).
	MetricPriceSearches = "mpr_core_price_searches_total"
	// MetricCappedShortCircuits counts ClearCapped calls settled at the
	// price cap without running a price search.
	MetricCappedShortCircuits = "mpr_core_capped_short_circuits_total"
	// MetricClears counts market clears, labeled by solver mode.
	MetricClears = "mpr_core_clears_total"
	// MetricInteractiveRounds is the rounds-to-convergence histogram of
	// the MPR-INT loop.
	MetricInteractiveRounds = "mpr_core_interactive_rounds"
	// MetricInteractiveOutcomes counts finished interactive markets,
	// labeled "converged" or "budget_exhausted".
	MetricInteractiveOutcomes = "mpr_core_interactive_outcomes_total"
)

// coreMetrics holds the pre-resolved instrument handles the hot paths
// touch. Handles are nil (no-op) under the Nop registry, so the fast path
// cost is one atomic pointer load plus a nil check per site.
type coreMetrics struct {
	priceSearches *telemetry.Counter
	cappedShort   *telemetry.Counter
	clearsClosed  *telemetry.Counter
	clearsBisect  *telemetry.Counter
	clearsStream  *telemetry.Counter
	intRounds     *telemetry.Histogram
	intConverged  *telemetry.Counter
	intExhausted  *telemetry.Counter
}

var activeMetrics atomic.Pointer[coreMetrics]

func init() { Instrument(telemetry.Default()) }

// Instrument points the package's market instrumentation at reg.
// Passing telemetry.Nop() (nil) disables it entirely; the default is the
// process-global telemetry.Default() registry. Safe to call concurrently
// with clears.
func Instrument(reg *telemetry.Registry) {
	m := &coreMetrics{}
	if reg != nil {
		clears := reg.CounterFamily(MetricClears, "Market clears by MClr solver mode.", "mode")
		m.priceSearches = reg.Counter(MetricPriceSearches, "Full MClr price solves (any mode).")
		m.cappedShort = reg.Counter(MetricCappedShortCircuits, "ClearCapped calls settled at the cap without a price search.")
		m.clearsClosed = clears.With("closed_form")
		m.clearsBisect = clears.With("bisection")
		m.clearsStream = clears.With("streaming")
		m.intRounds = reg.Histogram(MetricInteractiveRounds, "MPR-INT rounds to convergence.", telemetry.RoundBuckets)
		outcomes := reg.CounterFamily(MetricInteractiveOutcomes, "Finished interactive markets by outcome.", "outcome")
		m.intConverged = outcomes.With("converged")
		m.intExhausted = outcomes.With("budget_exhausted")
	}
	activeMetrics.Store(m)
}

// met returns the active instrument handles.
func met() *coreMetrics { return activeMetrics.Load() }

// MarketStats returns the cumulative solver-call counters: the number of
// full MClr price searches performed and the number of ClearCapped calls
// that short-circuited at the price cap without one.
//
// Deprecated: the counters now live in the telemetry registry (see
// MetricPriceSearches, MetricCappedShortCircuits); this shim reads them
// from telemetry.Default() and sees nothing after Instrument re-points
// the package at another registry. Prefer Registry.Snapshot.
func MarketStats() (priceSearches, cappedShortCircuits int64) {
	r := telemetry.Default()
	return r.CounterValue(MetricPriceSearches), r.CounterValue(MetricCappedShortCircuits)
}
