package power

import (
	"testing"

	"mpr/internal/telemetry"
)

// newInstrumentedController builds a controller over a private registry.
func newInstrumentedController(t *testing.T, cfg EmergencyConfig) (*EmergencyController, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	ec, err := NewEmergencyController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ec, reg
}

func eventCount(s *telemetry.Snapshot, event string) int64 {
	return s.Counter(MetricEmergencyEvents + `{event="` + event + `"}`)
}

func TestEmergencyTelemetryOnsetAndLift(t *testing.T) {
	ec, reg := newInstrumentedController(t, EmergencyConfig{
		CapacityW: 1000, BufferFrac: 0.01, MinOverloadSlots: 1, CooldownSlots: 2,
	})

	// Overloaded slot: declare, and the gauge carries the overload depth.
	d := ec.Step(1200, 1200)
	if !d.Declare {
		t.Fatalf("expected declare, got %+v", d)
	}
	if got := reg.GaugeValue(MetricOverloadW); got != 200 {
		t.Fatalf("overload gauge = %g, want 200", got)
	}

	// Reduced operation with enough headroom: cooldown, then lift.
	var lifted bool
	slots := 0
	for i := 0; i < 10 && !lifted; i++ {
		d = ec.Step(1200, 700)
		slots++
		lifted = d.Lift
	}
	if !lifted {
		t.Fatal("emergency never lifted")
	}
	if got := reg.GaugeValue(MetricOverloadW); got != 0 {
		t.Fatalf("overload gauge after lift = %g, want 0", got)
	}

	s := reg.Snapshot()
	if got := eventCount(s, "declare"); got != 1 {
		t.Fatalf("declares = %d, want 1", got)
	}
	if got := eventCount(s, "lift"); got != 1 {
		t.Fatalf("lifts = %d, want 1", got)
	}
	if got := eventCount(s, "raise"); got != 0 {
		t.Fatalf("raises = %d, want 0", got)
	}
	h := s.Histogram(MetricEmergencyDuration)
	if h.Count != 1 {
		t.Fatalf("duration observations = %d, want 1", h.Count)
	}
	if h.Sum != float64(slots) {
		t.Fatalf("duration = %g slots, want %d (every post-declare step counts)", h.Sum, slots)
	}
}

// TestEmergencyTelemetryDurationSpansRaises pins the semantics of the
// duration histogram: a raise restarts the cooldown clock but NOT the
// duration measurement, which runs declare→lift.
func TestEmergencyTelemetryDurationSpansRaises(t *testing.T) {
	ec, reg := newInstrumentedController(t, EmergencyConfig{
		CapacityW: 1000, BufferFrac: 0.01, MinOverloadSlots: 1, CooldownSlots: 1,
	})
	if d := ec.Step(1200, 1200); !d.Declare {
		t.Fatalf("expected declare, got %+v", d)
	}
	// Demand climbs and the reduced system still overloads: raise.
	if d := ec.Step(1500, 1100); !d.Raise {
		t.Fatalf("expected raise, got %+v", d)
	}
	// Two more active slots, then lift.
	var lifted bool
	total := 1 // the raise slot already counted one active slot
	for i := 0; i < 10 && !lifted; i++ {
		d := ec.Step(1500, 400)
		total++
		lifted = d.Lift
	}
	if !lifted {
		t.Fatal("emergency never lifted")
	}
	s := reg.Snapshot()
	if got := eventCount(s, "raise"); got != 1 {
		t.Fatalf("raises = %d, want 1", got)
	}
	h := s.Histogram(MetricEmergencyDuration)
	if h.Count != 1 || h.Sum != float64(total) {
		t.Fatalf("duration = %g slots over %d observations, want %d over 1",
			h.Sum, h.Count, total)
	}
}

// TestEmergencyTelemetryDisabled checks the nil-registry path stays a
// no-op: all handles nil, every Step still behaves identically.
func TestEmergencyTelemetryDisabled(t *testing.T) {
	ec, err := NewEmergencyController(EmergencyConfig{CapacityW: 1000, MinOverloadSlots: 1, CooldownSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := ec.Step(1200, 1200); !d.Declare {
		t.Fatalf("expected declare, got %+v", d)
	}
	for i := 0; i < 10; i++ {
		if d := ec.Step(1200, 600); d.Lift {
			return
		}
	}
	t.Fatal("emergency never lifted")
}
