package power

import (
	"fmt"
	"sort"
)

// ComponentKind identifies a level of the HPC power hierarchy (Fig. 1(a)).
type ComponentKind string

// The hierarchy levels of Fig. 1(a).
const (
	KindATS  ComponentKind = "ATS"
	KindUPS  ComponentKind = "UPS"
	KindPDU  ComponentKind = "PDU"
	KindRack ComponentKind = "Rack"
)

// Component is a node of the power delivery tree. Power is drawn at leaf
// components (racks) and aggregates upward; every level has its own
// capacity and can be oversubscribed independently (Section II — the paper
// focuses on UPS-level oversubscription with adequately sized PDUs and
// racks, which NewUniformInfrastructure reproduces).
type Component struct {
	Name      string
	Kind      ComponentKind
	CapacityW float64
	Children  []*Component

	load float64
}

// Infrastructure is a power delivery tree with a single root (the ATS).
type Infrastructure struct {
	Root  *Component
	leafs map[string]*Component
}

// NewInfrastructure wraps a component tree and indexes its leaves.
func NewInfrastructure(root *Component) (*Infrastructure, error) {
	if root == nil {
		return nil, fmt.Errorf("power: nil infrastructure root")
	}
	inf := &Infrastructure{Root: root, leafs: make(map[string]*Component)}
	var walk func(c *Component) error
	seen := make(map[string]bool)
	walk = func(c *Component) error {
		if seen[c.Name] {
			return fmt.Errorf("power: duplicate component name %q", c.Name)
		}
		seen[c.Name] = true
		if c.CapacityW <= 0 {
			return fmt.Errorf("power: component %q has non-positive capacity", c.Name)
		}
		if len(c.Children) == 0 {
			inf.leafs[c.Name] = c
			return nil
		}
		for _, ch := range c.Children {
			if err := walk(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return inf, nil
}

// NewUniformInfrastructure builds the paper's topology: one ATS feeding
// one UPS, the UPS feeding `pdus` cluster PDUs, each feeding
// `racksPerPDU` racks. The UPS capacity is `upsCapacityW` — the
// oversubscribed level — while PDUs and racks get headroom (factor 2) so
// that, as in the paper, only the UPS constraint binds.
func NewUniformInfrastructure(upsCapacityW float64, pdus, racksPerPDU int) (*Infrastructure, error) {
	if pdus < 1 || racksPerPDU < 1 {
		return nil, fmt.Errorf("power: need at least one PDU and one rack, got %d/%d", pdus, racksPerPDU)
	}
	ups := &Component{Name: "ups0", Kind: KindUPS, CapacityW: upsCapacityW}
	pduCap := 2 * upsCapacityW / float64(pdus)
	rackCap := 2 * pduCap / float64(racksPerPDU)
	for p := 0; p < pdus; p++ {
		pdu := &Component{Name: fmt.Sprintf("pdu%d", p), Kind: KindPDU, CapacityW: pduCap}
		for r := 0; r < racksPerPDU; r++ {
			pdu.Children = append(pdu.Children, &Component{
				Name:      fmt.Sprintf("rack%d-%d", p, r),
				Kind:      KindRack,
				CapacityW: rackCap,
			})
		}
		ups.Children = append(ups.Children, pdu)
	}
	ats := &Component{Name: "ats", Kind: KindATS, CapacityW: 2 * upsCapacityW, Children: []*Component{ups}}
	return NewInfrastructure(ats)
}

// Leaves returns the leaf component names in sorted order.
func (inf *Infrastructure) Leaves() []string {
	out := make([]string, 0, len(inf.leafs))
	for name := range inf.leafs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SetLoad assigns a power draw in watts to a leaf component.
func (inf *Infrastructure) SetLoad(leaf string, watts float64) error {
	c, ok := inf.leafs[leaf]
	if !ok {
		return fmt.Errorf("power: unknown leaf component %q", leaf)
	}
	if watts < 0 {
		return fmt.Errorf("power: negative load %v for %q", watts, leaf)
	}
	c.load = watts
	return nil
}

// SpreadLoad distributes a total power draw evenly over all leaves — the
// unified aggregate model of Section III-A.
func (inf *Infrastructure) SpreadLoad(totalWatts float64) {
	if len(inf.leafs) == 0 {
		return
	}
	per := totalWatts / float64(len(inf.leafs))
	for _, c := range inf.leafs {
		c.load = per
	}
}

// Overload reports a component whose aggregated draw exceeds its capacity.
type Overload struct {
	Component string
	Kind      ComponentKind
	LoadW     float64
	CapacityW float64
}

// ExcessW returns how many watts above capacity the component is.
func (o Overload) ExcessW() float64 { return o.LoadW - o.CapacityW }

// Evaluate aggregates leaf loads up the tree and returns every overloaded
// component, ordered root-first. The root's aggregate load is also
// returned.
func (inf *Infrastructure) Evaluate() (totalW float64, overloads []Overload) {
	var agg func(c *Component) float64
	agg = func(c *Component) float64 {
		load := c.load
		for _, ch := range c.Children {
			load += agg(ch)
		}
		if load > c.CapacityW {
			overloads = append(overloads, Overload{
				Component: c.Name, Kind: c.Kind, LoadW: load, CapacityW: c.CapacityW,
			})
		}
		return load
	}
	totalW = agg(inf.Root)
	// agg appends children before parents (post-order); reverse to get
	// root-first ordering.
	for i, j := 0, len(overloads)-1; i < j; i, j = i+1, j-1 {
		overloads[i], overloads[j] = overloads[j], overloads[i]
	}
	return totalW, overloads
}
