// Package power provides the power substrate of the MPR reproduction: the
// job-wise power model of Section III-A, the hierarchical HPC power
// infrastructure of Fig. 1(a) (ATS → UPS → PDU → rack), oversubscription
// capacity accounting (Section II), and the power-emergency state machine
// of Section III-E (overload detection with a minimum-duration filter, the
// 1%-buffer reduction target, and the cool-down timer before resuming
// normal operation).
package power

import "fmt"

// CoreModel converts core allocation and speed into watts using the
// paper's model Power = Power_static + Utilization·Power_dynamic applied
// per core: a core at speed σ draws StaticW + σ·DynamicW. Uncore, DRAM and
// storage power are folded into the two coefficients, as in the paper.
type CoreModel struct {
	StaticW  float64
	DynamicW float64
}

// DefaultCPUCoreModel is the paper's Gaia parameterization: 25 W static
// and 125 W dynamic per core, giving the 301.8 kW peak for the 2012-core
// peak allocation.
var DefaultCPUCoreModel = CoreModel{StaticW: 25, DynamicW: 125}

// DefaultGPUCoreModel normalizes a GPU application's maximum power draw to
// "one core" (Section V-E): a normalized GPU core draws 250 W at full
// speed with a 50 W idle floor.
var DefaultGPUCoreModel = CoreModel{StaticW: 50, DynamicW: 200}

// JobPower returns the power attributed to a job running `cores` cores at
// relative speed `speed` (1.0 = full speed).
func (m CoreModel) JobPower(cores, speed float64) float64 {
	if cores < 0 {
		cores = 0
	}
	if speed < 0 {
		speed = 0
	}
	if speed > 1 {
		speed = 1
	}
	return cores * (m.StaticW + speed*m.DynamicW)
}

// PeakPower returns the draw of `cores` cores at full speed.
func (m CoreModel) PeakPower(cores float64) float64 { return m.JobPower(cores, 1) }

// ReductionWatts converts a resource reduction of delta cores into the
// watts saved: resource reduction only scales the dynamic component, so
// P(δ) = δ·DynamicW (the established linear power-capping model the paper
// relies on for Eqn. (2)).
func (m CoreModel) ReductionWatts(delta float64) float64 {
	if delta < 0 {
		delta = 0
	}
	return delta * m.DynamicW
}

// CoresForWatts inverts ReductionWatts: the resource reduction needed to
// save the given watts.
func (m CoreModel) CoresForWatts(watts float64) float64 {
	if watts <= 0 || m.DynamicW <= 0 {
		return 0
	}
	return watts / m.DynamicW
}

// Oversubscription describes a capacity plan: the infrastructure capacity
// is set below the system's peak power demand by the oversubscription
// percentage (Section IV-A): with x% oversubscription, overload occurs
// when demand exceeds 100/(100+x) of peak.
type Oversubscription struct {
	PeakW   float64 // peak power demand of the (scaled-up) system
	Percent float64 // oversubscription level, e.g. 15 for 15%
}

// Capacity returns the infrastructure power capacity C in watts.
func (o Oversubscription) Capacity() float64 {
	return o.PeakW * 100 / (100 + o.Percent)
}

// Validate checks the plan parameters.
func (o Oversubscription) Validate() error {
	if o.PeakW <= 0 {
		return fmt.Errorf("power: peak power must be positive, got %v", o.PeakW)
	}
	if o.Percent < 0 {
		return fmt.Errorf("power: oversubscription percent must be non-negative, got %v", o.Percent)
	}
	return nil
}

// ExtraCoreHours returns the additional core-hours per month that x%
// oversubscription adds to a system with the given total cores (Table I:
// 2004 cores × 10% × 720 h ≈ 144K core-hours).
func (o Oversubscription) ExtraCoreHours(totalCores float64, hoursPerMonth float64) float64 {
	return totalCores * o.Percent / 100 * hoursPerMonth
}
