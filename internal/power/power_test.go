package power

import (
	"math"
	"testing"
	"testing/quick"

	"mpr/internal/check/floats"
)

func TestJobPowerGaiaPeak(t *testing.T) {
	// Paper: 2012-core peak allocation → 301.8 kW with 25 W static,
	// 125 W dynamic per core.
	m := DefaultCPUCoreModel
	if got := m.PeakPower(2012); !floats.AbsEqual(got, 301800, 1e-6) {
		t.Errorf("Gaia peak = %v W, want 301800", got)
	}
}

func TestJobPowerClamps(t *testing.T) {
	m := DefaultCPUCoreModel
	if m.JobPower(-5, 1) != 0 {
		t.Error("negative cores should draw 0")
	}
	if got := m.JobPower(1, -0.5); got != 25 {
		t.Errorf("negative speed → static only, got %v", got)
	}
	if got := m.JobPower(1, 2); got != 150 {
		t.Errorf("speed clamped to 1, got %v", got)
	}
}

func TestReductionWattsRoundTrip(t *testing.T) {
	m := DefaultCPUCoreModel
	prop := func(raw float64) bool {
		d := math.Abs(math.Mod(raw, 100))
		w := m.ReductionWatts(d)
		return floats.AbsEqual(m.CoresForWatts(w), d, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if m.ReductionWatts(-3) != 0 {
		t.Error("negative reduction saves nothing")
	}
	if m.CoresForWatts(-10) != 0 {
		t.Error("negative watts need no cores")
	}
}

func TestOversubscriptionCapacity(t *testing.T) {
	o := Oversubscription{PeakW: 301800, Percent: 20}
	want := 301800.0 * 100 / 120
	if got := o.Capacity(); !floats.AbsEqual(got, want, 1e-9) {
		t.Errorf("capacity = %v, want %v", got, want)
	}
	// 0% oversubscription: capacity equals peak.
	o0 := Oversubscription{PeakW: 1000, Percent: 0}
	if o0.Capacity() != 1000 {
		t.Error("0%% oversub should not change capacity")
	}
}

func TestOversubscriptionExtraCoreHours(t *testing.T) {
	// Table I: 2004 cores at 10% → ~144K core-hours/month (720 h).
	o := Oversubscription{PeakW: 1, Percent: 10}
	got := o.ExtraCoreHours(2004, 720)
	if !floats.AbsEqual(got, 144288, 1) {
		t.Errorf("extra core-hours = %v, want ~144288", got)
	}
}

func TestOversubscriptionValidate(t *testing.T) {
	if err := (Oversubscription{PeakW: 0, Percent: 10}).Validate(); err == nil {
		t.Error("zero peak should fail")
	}
	if err := (Oversubscription{PeakW: 10, Percent: -1}).Validate(); err == nil {
		t.Error("negative percent should fail")
	}
	if err := (Oversubscription{PeakW: 10, Percent: 15}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestUniformInfrastructure(t *testing.T) {
	inf, err := NewUniformInfrastructure(100000, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	leaves := inf.Leaves()
	if len(leaves) != 8 {
		t.Fatalf("leaves = %d, want 8", len(leaves))
	}
	inf.SpreadLoad(90000)
	total, over := inf.Evaluate()
	if !floats.AbsEqual(total, 90000, 1e-6) {
		t.Errorf("total = %v", total)
	}
	if len(over) != 0 {
		t.Errorf("unexpected overloads: %+v", over)
	}
	// Exceed UPS capacity: only the UPS should trip (PDU/rack have 2x
	// headroom).
	inf.SpreadLoad(110000)
	_, over = inf.Evaluate()
	if len(over) != 1 || over[0].Kind != KindUPS {
		t.Fatalf("overloads = %+v, want single UPS overload", over)
	}
	if !floats.AbsEqual(over[0].ExcessW(), 10000, 1e-6) {
		t.Errorf("excess = %v, want 10000", over[0].ExcessW())
	}
}

func TestInfrastructureSetLoad(t *testing.T) {
	inf, _ := NewUniformInfrastructure(1000, 1, 2)
	if err := inf.SetLoad("rack0-0", 600); err != nil {
		t.Fatal(err)
	}
	if err := inf.SetLoad("rack0-1", 500); err != nil {
		t.Fatal(err)
	}
	total, over := inf.Evaluate()
	if total != 1100 {
		t.Errorf("total = %v", total)
	}
	// UPS (1000) overloaded; ATS (2000) fine; rack capacity is
	// 2*2*1000/1/2 = 2000 each so racks fine.
	found := false
	for _, o := range over {
		if o.Kind == KindUPS {
			found = true
		}
	}
	if !found {
		t.Errorf("UPS overload not reported: %+v", over)
	}
	if err := inf.SetLoad("nope", 1); err == nil {
		t.Error("unknown leaf should error")
	}
	if err := inf.SetLoad("rack0-0", -1); err == nil {
		t.Error("negative load should error")
	}
}

func TestInfrastructureRootFirstOrdering(t *testing.T) {
	// Build a tree where both UPS and a rack overload; root-side must
	// come first.
	rack := &Component{Name: "r", Kind: KindRack, CapacityW: 10}
	ups := &Component{Name: "u", Kind: KindUPS, CapacityW: 15, Children: []*Component{rack}}
	ats := &Component{Name: "a", Kind: KindATS, CapacityW: 100, Children: []*Component{ups}}
	inf, err := NewInfrastructure(ats)
	if err != nil {
		t.Fatal(err)
	}
	if err := inf.SetLoad("r", 20); err != nil {
		t.Fatal(err)
	}
	_, over := inf.Evaluate()
	if len(over) != 2 {
		t.Fatalf("overloads = %+v", over)
	}
	if over[0].Kind != KindUPS || over[1].Kind != KindRack {
		t.Errorf("ordering = %v, %v; want UPS then Rack", over[0].Kind, over[1].Kind)
	}
}

func TestInfrastructureRejectsBadTrees(t *testing.T) {
	if _, err := NewInfrastructure(nil); err == nil {
		t.Error("nil root accepted")
	}
	dup := &Component{Name: "x", Kind: KindATS, CapacityW: 1,
		Children: []*Component{{Name: "x", Kind: KindRack, CapacityW: 1}}}
	if _, err := NewInfrastructure(dup); err == nil {
		t.Error("duplicate names accepted")
	}
	zero := &Component{Name: "z", Kind: KindATS, CapacityW: 0}
	if _, err := NewInfrastructure(zero); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewUniformInfrastructure(1000, 0, 1); err == nil {
		t.Error("zero PDUs accepted")
	}
}

func newController(t *testing.T, cfg EmergencyConfig) *EmergencyController {
	t.Helper()
	ec, err := NewEmergencyController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ec
}

func TestEmergencyDeclareAndTarget(t *testing.T) {
	ec := newController(t, EmergencyConfig{CapacityW: 1000})
	d := ec.Step(1100, 1100)
	if !d.Declare || d.State != StateEmergency {
		t.Fatalf("decision = %+v, want declare", d)
	}
	// ΔP = 1100 − 0.99·1000 = 110.
	if !floats.AbsEqual(d.TargetW, 110, 1e-9) {
		t.Errorf("target = %v, want 110", d.TargetW)
	}
}

func TestEmergencyMinDurationFilter(t *testing.T) {
	ec := newController(t, EmergencyConfig{CapacityW: 1000, MinOverloadSlots: 3})
	if d := ec.Step(1100, 1100); d.Declare || d.State != StatePending {
		t.Fatalf("slot1 = %+v, want pending", d)
	}
	if d := ec.Step(1100, 1100); d.Declare {
		t.Fatal("declared too early")
	}
	if d := ec.Step(1100, 1100); !d.Declare {
		t.Fatal("should declare on 3rd overloaded slot")
	}
	// Transient spike: pending resets when power dips back.
	ec2 := newController(t, EmergencyConfig{CapacityW: 1000, MinOverloadSlots: 3})
	ec2.Step(1100, 1100)
	ec2.Step(900, 900)
	if ec2.State() != StateNormal {
		t.Error("pending should reset on dip")
	}
	ec2.Step(1100, 1100)
	if d := ec2.Step(1100, 1100); d.Declare {
		t.Error("counter should have restarted")
	}
}

func TestEmergencyCooldownAndLift(t *testing.T) {
	ec := newController(t, EmergencyConfig{CapacityW: 1000, CooldownSlots: 3})
	d := ec.Step(1100, 1100)
	target := d.TargetW
	// Reduction applied: delivered drops; demand falls steeply so lifting
	// is safe ((0.99·1000 − delivered) ≥ ΔP → delivered ≤ 880).
	for i := 0; i < 2; i++ {
		d = ec.Step(850, 850)
		if d.Lift {
			t.Fatalf("lifted before cooldown at slot %d", i)
		}
		if d.State != StateCooldown {
			t.Fatalf("state = %v, want cooldown", d.State)
		}
	}
	d = ec.Step(850, 850)
	if !d.Lift || d.State != StateNormal {
		t.Fatalf("decision = %+v, want lift", d)
	}
	if !floats.AbsEqual(d.TargetW, target, 1e-9) {
		t.Errorf("lift reports target %v, want %v", d.TargetW, target)
	}
	if ec.TargetW() != 0 {
		t.Error("target must clear after lift")
	}
}

func TestEmergencyNoLiftWhileTight(t *testing.T) {
	ec := newController(t, EmergencyConfig{CapacityW: 1000, CooldownSlots: 2})
	ec.Step(1100, 1100) // declare, ΔP = 110
	// Delivered at 980: headroom 0.99·1000−980 = 10 < 110 → stay in
	// emergency indefinitely.
	for i := 0; i < 10; i++ {
		d := ec.Step(1090, 980)
		if d.Lift {
			t.Fatal("lifted while giving back would re-overload")
		}
		if d.State != StateEmergency {
			t.Fatalf("state = %v, want emergency", d.State)
		}
	}
}

func TestEmergencyRaiseTarget(t *testing.T) {
	ec := newController(t, EmergencyConfig{CapacityW: 1000})
	ec.Step(1100, 1100)
	// Demand climbs to 1300 and delivered power overloads again.
	d := ec.Step(1300, 1050)
	if !d.Raise {
		t.Fatalf("decision = %+v, want raise", d)
	}
	if !floats.AbsEqual(d.TargetW, 1300-990, 1e-9) {
		t.Errorf("raised target = %v, want 310", d.TargetW)
	}
	// No raise when delivered stays within capacity.
	d = ec.Step(1400, 990)
	if d.Raise {
		t.Error("raised although delivered power was within capacity")
	}
}

func TestEmergencyCooldownRelapse(t *testing.T) {
	// Power dips (enters cooldown) then surges again before lift: the
	// controller must fall back to emergency, not lift.
	ec := newController(t, EmergencyConfig{CapacityW: 1000, CooldownSlots: 5})
	ec.Step(1100, 1100)
	if d := ec.Step(800, 800); d.State != StateCooldown {
		t.Fatalf("want cooldown, got %v", d.State)
	}
	if d := ec.Step(1080, 960); d.State != StateEmergency {
		t.Fatalf("want relapse to emergency, got %v", d.State)
	}
}

func TestEmergencyConfigValidation(t *testing.T) {
	if _, err := NewEmergencyController(EmergencyConfig{CapacityW: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewEmergencyController(EmergencyConfig{CapacityW: 10, BufferFrac: 1.5}); err == nil {
		t.Error("buffer >= 1 accepted")
	}
	cfg := EmergencyConfig{CapacityW: 10}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.BufferFrac != 0.01 || cfg.MinOverloadSlots != 1 || cfg.CooldownSlots != 10 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestEmergencyStateString(t *testing.T) {
	for s, want := range map[EmergencyState]string{
		StateNormal: "normal", StatePending: "pending",
		StateEmergency: "emergency", StateCooldown: "cooldown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if EmergencyState(42).String() == "" {
		t.Error("unknown state should still stringify")
	}
}

// Property: the controller never reports a negative reduction target, and
// a declared target always restores power to at most (1−buffer)·C if the
// reduction is applied exactly.
func TestEmergencyTargetProperty(t *testing.T) {
	prop := func(rawDemand float64) bool {
		demand := 1000 + math.Abs(math.Mod(rawDemand, 1000)) // 1000..2000
		ec, err := NewEmergencyController(EmergencyConfig{CapacityW: 1000})
		if err != nil {
			return false
		}
		d := ec.Step(demand, demand)
		if demand > 1000 {
			if !d.Declare || d.TargetW < 0 {
				return false
			}
			return demand-d.TargetW <= 0.99*1000+1e-9
		}
		return !d.Declare
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
