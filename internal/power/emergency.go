package power

import (
	"fmt"

	"mpr/internal/telemetry"
)

// Metric names the emergency controller registers.
const (
	// MetricOverloadW is the current overload depth in watts (delivered
	// power above capacity; 0 when within capacity).
	MetricOverloadW = "mpr_power_overload_w"
	// MetricEmergencyDuration is the emergency duration histogram in
	// slots, observed when an emergency lifts.
	MetricEmergencyDuration = "mpr_power_emergency_duration_slots"
	// MetricEmergencyEvents counts controller transitions, labeled
	// "declare", "raise", or "lift".
	MetricEmergencyEvents = "mpr_power_emergency_events_total"
)

// EmergencyState is the phase of the overload-handling state machine.
type EmergencyState int

// States of the controller.
const (
	// StateNormal: power within capacity, no active emergency.
	StateNormal EmergencyState = iota
	// StatePending: overload observed, waiting out the minimum-duration
	// filter before declaring an emergency (transient-spike protection,
	// Section III-E).
	StatePending
	// StateEmergency: emergency declared; the market's resource reduction
	// is in force and new job starts are halted.
	StateEmergency
	// StateCooldown: power has fallen enough to lift, waiting out the
	// cool-down timer to avoid declare/lift oscillation.
	StateCooldown
)

// String implements fmt.Stringer.
func (s EmergencyState) String() string {
	switch s {
	case StateNormal:
		return "normal"
	case StatePending:
		return "pending"
	case StateEmergency:
		return "emergency"
	case StateCooldown:
		return "cooldown"
	default:
		return fmt.Sprintf("EmergencyState(%d)", int(s))
	}
}

// EmergencyConfig parameterizes the controller. Zero values select the
// paper's defaults via Normalize.
type EmergencyConfig struct {
	// CapacityW is the infrastructure power capacity C.
	CapacityW float64
	// BufferFrac is the safety buffer on the reduction target:
	// ΔP = P(t) − (1−BufferFrac)·C. Paper default 0.01 (1%).
	BufferFrac float64
	// MinOverloadSlots is how many consecutive overloaded slots must be
	// observed before declaring an emergency. Paper example: 10 s; with
	// 1-minute slots the default is 1 (declare on first overloaded slot).
	MinOverloadSlots int
	// CooldownSlots is the minimum number of slots an emergency stays
	// active before it can be lifted. Paper evaluation: 10 minutes.
	CooldownSlots int
	// Telemetry, when set, receives the controller's overload-depth
	// gauge, emergency-duration histogram, and transition counters. Nil
	// (the Nop registry) disables instrumentation at zero cost.
	Telemetry *telemetry.Registry
}

// Normalize fills defaults and validates.
func (c *EmergencyConfig) Normalize() error {
	if c.CapacityW <= 0 {
		return fmt.Errorf("power: emergency config needs positive capacity, got %v", c.CapacityW)
	}
	if c.BufferFrac == 0 {
		c.BufferFrac = 0.01
	}
	if c.BufferFrac < 0 || c.BufferFrac >= 1 {
		return fmt.Errorf("power: buffer fraction must be in [0,1), got %v", c.BufferFrac)
	}
	if c.MinOverloadSlots <= 0 {
		c.MinOverloadSlots = 1
	}
	if c.CooldownSlots <= 0 {
		c.CooldownSlots = 10
	}
	return nil
}

// Decision is the controller's output for one time slot.
type Decision struct {
	State EmergencyState
	// Declare is true on the slot an emergency is declared; TargetW then
	// carries the required power reduction ΔP.
	Declare bool
	// Raise is true when an already-active emergency needs a larger
	// reduction (power kept climbing); TargetW carries the new total.
	Raise bool
	// Lift is true on the slot the emergency is lifted.
	Lift bool
	// TargetW is the currently required total power reduction.
	TargetW float64
}

// EmergencyController implements the reactive overload handling of
// Section III-E as a per-slot state machine: feed it the instantaneous
// power consumption each slot (before any reduction the caller will apply)
// and act on the returned Decision.
type EmergencyController struct {
	cfg EmergencyConfig

	state          EmergencyState
	pendingSlots   int
	emergencySlots int
	activeSlots    int // slots since declare; unlike emergencySlots, not reset by raises
	targetW        float64

	// Telemetry handles; all nil (no-op) without a configured registry.
	overloadW *telemetry.Gauge
	duration  *telemetry.Histogram
	declares  *telemetry.Counter
	raises    *telemetry.Counter
	lifts     *telemetry.Counter
}

// NewEmergencyController validates cfg and builds a controller in
// StateNormal.
func NewEmergencyController(cfg EmergencyConfig) (*EmergencyController, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	ec := &EmergencyController{cfg: cfg}
	if reg := cfg.Telemetry; reg != nil {
		ec.overloadW = reg.Gauge(MetricOverloadW, "Delivered power above capacity in watts (0 within capacity).")
		ec.duration = reg.Histogram(MetricEmergencyDuration, "Emergency duration in slots, observed at lift.", telemetry.SlotBuckets)
		events := reg.CounterFamily(MetricEmergencyEvents, "Emergency controller transitions.", "event")
		ec.declares = events.With("declare")
		ec.raises = events.With("raise")
		ec.lifts = events.With("lift")
	}
	return ec, nil
}

// State returns the current phase.
func (ec *EmergencyController) State() EmergencyState { return ec.state }

// TargetW returns the currently required power reduction (0 when no
// emergency is active).
func (ec *EmergencyController) TargetW() float64 { return ec.targetW }

// Capacity returns the configured capacity.
func (ec *EmergencyController) Capacity() float64 { return ec.cfg.CapacityW }

// reductionTarget computes ΔP = P − (1−buffer)·C.
func (ec *EmergencyController) reductionTarget(demandW float64) float64 {
	return demandW - (1-ec.cfg.BufferFrac)*ec.cfg.CapacityW
}

// Step advances the state machine by one slot.
//
// demandW is the power the system *would* draw this slot without any
// reduction (the demand); deliveredW is what it actually draws with the
// current reduction in force. During normal operation the two coincide.
func (ec *EmergencyController) Step(demandW, deliveredW float64) Decision {
	c := ec.cfg
	if over := deliveredW - c.CapacityW; over > 0 {
		ec.overloadW.Set(over)
	} else {
		ec.overloadW.Set(0)
	}
	switch ec.state {
	case StateNormal, StatePending:
		if deliveredW > c.CapacityW {
			ec.pendingSlots++
			if ec.pendingSlots >= c.MinOverloadSlots {
				ec.state = StateEmergency
				ec.emergencySlots = 0
				ec.activeSlots = 0
				ec.targetW = ec.reductionTarget(demandW)
				ec.pendingSlots = 0
				ec.declares.Inc()
				return Decision{State: ec.state, Declare: true, TargetW: ec.targetW}
			}
			ec.state = StatePending
			return Decision{State: ec.state}
		}
		ec.pendingSlots = 0
		ec.state = StateNormal
		return Decision{State: ec.state}

	case StateEmergency, StateCooldown:
		ec.emergencySlots++
		ec.activeSlots++
		// If demand keeps growing so that even the reduced system
		// overloads, raise the target.
		if want := ec.reductionTarget(demandW); want > ec.targetW+1e-9 && deliveredW > c.CapacityW {
			ec.targetW = want
			ec.state = StateEmergency
			ec.emergencySlots = 0
			ec.raises.Inc()
			return Decision{State: ec.state, Raise: true, TargetW: ec.targetW}
		}
		// Lift condition (Section IV-A): after the cool-down, resume
		// normal operation when giving back the reduction no longer
		// violates capacity: (1−buffer)·C − P(t) ≥ ΔP, with P(t) the
		// delivered (reduced) power.
		headroom := (1-c.BufferFrac)*c.CapacityW - deliveredW
		if headroom >= ec.targetW {
			if ec.state != StateCooldown {
				ec.state = StateCooldown
			}
			if ec.emergencySlots >= c.CooldownSlots {
				ec.state = StateNormal
				target := ec.targetW
				ec.targetW = 0
				ec.emergencySlots = 0
				ec.lifts.Inc()
				ec.duration.Observe(float64(ec.activeSlots))
				ec.activeSlots = 0
				return Decision{State: ec.state, Lift: true, TargetW: target}
			}
			return Decision{State: ec.state, TargetW: ec.targetW}
		}
		ec.state = StateEmergency
		return Decision{State: ec.state, TargetW: ec.targetW}
	}
	return Decision{State: ec.state}
}
