package agentproto

import (
	"testing"
	"time"

	"mpr/internal/telemetry"
)

// TestManagerTelemetry runs a live TCP market with a private registry and
// tracer and checks the manager's connect/round/RTT instrumentation.
func TestManagerTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(64)
	m, err := NewManager("127.0.0.1:0", ManagerConfig{
		RoundTimeout: 500 * time.Millisecond,
		Telemetry:    reg,
		Tracer:       tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })

	apps := []string{"XSBench", "RSBench", "CoMD"}
	for _, app := range apps {
		dialAgent(t, m, app, app, 16)
	}
	waitAgents(t, m, len(apps))

	out, err := m.RunMarket(1500)
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counter(MetricAgentEvents + `{event="connect"}`); got != int64(len(apps)) {
		t.Fatalf("connects = %d, want %d", got, len(apps))
	}
	if got := s.Gauges[MetricAgentsConnected]; got != float64(len(apps)) {
		t.Fatalf("connected gauge = %g, want %d", got, len(apps))
	}
	if got := s.Counter(MetricMarkets); got != 1 {
		t.Fatalf("markets = %d, want 1", got)
	}
	if got := s.Counter(MetricRounds); got != int64(out.Result.Rounds) {
		t.Fatalf("rounds counter = %d, result rounds %d", got, out.Result.Rounds)
	}
	// One RTT observation per agent per round, minus any timeouts. The
	// RTT metric is an HDR histogram, surfaced as a quantile summary.
	rtt := s.HDR(MetricBidRTT)
	want := int64(len(apps)*out.Result.Rounds) - s.Counter(MetricBidTimeouts)
	if rtt.Count != want {
		t.Fatalf("RTT observations = %d, want %d", rtt.Count, want)
	}
	if rtt.Count > 0 && rtt.Sum <= 0 {
		t.Fatalf("RTT sum = %g, want > 0", rtt.Sum)
	}
	if got := s.Counter(MetricMalformed); got != 0 {
		t.Fatalf("malformed = %d, want 0", got)
	}

	// The tracer holds one market_round per round plus the final clear.
	var roundEvents, clearEvents int
	for _, e := range tracer.Events() {
		switch e.Name {
		case "market_round":
			roundEvents++
		case "market_clear":
			clearEvents++
			if e.Label != "converged" && e.Label != "budget_exhausted" {
				t.Fatalf("market_clear label = %q", e.Label)
			}
		}
	}
	wantRounds := out.Result.Rounds
	if cap := 64 - clearEvents; wantRounds > cap {
		wantRounds = cap
	}
	if roundEvents != wantRounds || clearEvents != 1 {
		t.Fatalf("trace: %d market_round + %d market_clear, want %d + 1",
			roundEvents, clearEvents, wantRounds)
	}
}
