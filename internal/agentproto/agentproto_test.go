package agentproto

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mpr/internal/check/floats"
	"mpr/internal/core"
	"mpr/internal/perf"
	"mpr/internal/telemetry"
)

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(struct {
		io.Reader
		io.Writer
	}{&buf, &buf})
	want := Message{Type: MsgBid, Round: 3, Delta: 1.5, B: 0.25}
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip: %+v != %+v", got, want)
	}
	if _, err := c.Recv(); err != io.EOF {
		t.Errorf("want EOF at end, got %v", err)
	}
}

func TestCodecBadJSON(t *testing.T) {
	c := NewCodec(struct {
		io.Reader
		io.Writer
	}{strings.NewReader("not-json\n"), io.Discard})
	if _, err := c.Recv(); err == nil {
		t.Error("bad JSON accepted")
	}
}

func startManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager("127.0.0.1:0", ManagerConfig{RoundTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func dialAgent(t *testing.T, m *Manager, jobID, app string, cores float64) *Agent {
	t.Helper()
	prof, err := perf.ProfileByName(app)
	if err != nil {
		t.Fatal(err)
	}
	model := perf.NewCostModel(prof, 1, perf.CostLinear)
	a, err := Dial(m.Addr(), AgentConfig{
		JobID:        jobID,
		Cores:        cores,
		WattsPerCore: 125,
		MaxFrac:      prof.MaxReduction(),
		Strategy:     &core.RationalBidder{Cores: cores, Model: model},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func waitAgents(t *testing.T, m *Manager, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for m.AgentCount() != n {
		if time.Now().After(deadline) {
			t.Fatalf("agents = %d, want %d", m.AgentCount(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMarketOverTCP(t *testing.T) {
	m := startManager(t)
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD"}
	var orderMu sync.Mutex
	payments := map[string]float64{}
	for i, app := range apps {
		prof, _ := perf.ProfileByName(app)
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		id := app
		a, err := Dial(m.Addr(), AgentConfig{
			JobID: id, Cores: 16, WattsPerCore: 125, MaxFrac: prof.MaxReduction(),
			Strategy: &core.RationalBidder{Cores: 16, Model: model},
			OnOrder: func(red, price, pay float64) {
				orderMu.Lock()
				payments[id] = pay
				orderMu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		_ = i
	}
	waitAgents(t, m, len(apps))

	target := 2000.0
	out, err := m.RunMarket(target)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Converged {
		t.Errorf("market did not converge in %d rounds", out.Result.Rounds)
	}
	if out.Result.SuppliedW < target-1e-6 {
		t.Errorf("supplied %v < target %v", out.Result.SuppliedW, target)
	}
	if len(out.Orders) != len(apps) {
		t.Errorf("orders = %d", len(out.Orders))
	}
	// Sensitive SimpleMOC reduces less than insensitive RSBench.
	if out.Orders["SimpleMOC"] >= out.Orders["RSBench"] {
		t.Errorf("SimpleMOC %v should reduce less than RSBench %v",
			out.Orders["SimpleMOC"], out.Orders["RSBench"])
	}
	// Orders were delivered to agents.
	deadline := time.Now().Add(2 * time.Second)
	for {
		orderMu.Lock()
		n := len(payments)
		orderMu.Unlock()
		if n == len(apps) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d agents got orders", n, len(apps))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for id, pay := range payments {
		want := out.Result.Price * out.Orders[id]
		if !floats.AbsEqual(pay, want, 1e-9) {
			t.Errorf("%s payment %v != %v", id, pay, want)
		}
	}
	m.Lift()
}

func TestMarketNoAgents(t *testing.T) {
	m := startManager(t)
	if _, err := m.RunMarket(100); err != core.ErrNoParticipants {
		t.Errorf("err = %v, want ErrNoParticipants", err)
	}
}

func TestDuplicateJobIDRejected(t *testing.T) {
	m := startManager(t)
	a1 := dialAgent(t, m, "job1", "XSBench", 8)
	waitAgents(t, m, 1)
	_ = a1
	prof, _ := perf.ProfileByName("CoMD")
	model := perf.NewCostModel(prof, 1, perf.CostLinear)
	a2, err := Dial(m.Addr(), AgentConfig{
		JobID: "job1", Cores: 8, WattsPerCore: 125, MaxFrac: prof.MaxReduction(),
		Strategy: &core.RationalBidder{Cores: 8, Model: model},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	select {
	case <-a2.Done():
		if a2.Err() == nil || !strings.Contains(a2.Err().Error(), "duplicate") {
			t.Errorf("err = %v, want duplicate job_id", a2.Err())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("duplicate agent not rejected")
	}
	if m.AgentCount() != 1 {
		t.Errorf("agent count = %d", m.AgentCount())
	}
}

func TestAgentDisconnectUnregisters(t *testing.T) {
	m := startManager(t)
	a := dialAgent(t, m, "gone", "HPCCG", 4)
	waitAgents(t, m, 1)
	a.Close()
	waitAgents(t, m, 0)
}

func TestMarketSurvivesSilentAgent(t *testing.T) {
	m := startManager(t)
	dialAgent(t, m, "good", "RSBench", 32)
	// A raw connection that says hello but never bids.
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	codec := NewCodec(conn)
	if err := codec.Send(Message{Type: MsgHello, JobID: "mute", Cores: 8, WattsPerCore: 125, MaxFrac: 0.7}); err != nil {
		t.Fatal(err)
	}
	waitAgents(t, m, 2)
	// Small target the good agent can cover alone.
	out, err := m.RunMarket(500)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.SuppliedW < 500-1e-6 {
		t.Errorf("supplied %v despite silent agent", out.Result.SuppliedW)
	}
	if out.Orders["mute"] != 0 {
		t.Errorf("mute agent got order %v, want 0", out.Orders["mute"])
	}
}

func TestHelloValidation(t *testing.T) {
	m := startManager(t)
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	codec := NewCodec(conn)
	if err := codec.Send(Message{Type: MsgHello, JobID: "bad", Cores: 0}); err != nil {
		t.Fatal(err)
	}
	msg, err := codec.Recv()
	if err != nil || msg.Type != MsgError {
		t.Errorf("want error reply, got %+v, %v", msg, err)
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", AgentConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	prof, _ := perf.ProfileByName("XSBench")
	model := perf.NewCostModel(prof, 1, perf.CostLinear)
	cfg := AgentConfig{JobID: "x", Cores: 1, WattsPerCore: 125, MaxFrac: 0.7,
		Strategy: &core.RationalBidder{Cores: 1, Model: model}}
	if _, err := Dial("127.0.0.1:1", cfg); err == nil {
		t.Error("dial to dead port should fail")
	}
	cfg.Strategy = nil
	if _, err := Dial("127.0.0.1:1", cfg); err == nil {
		t.Error("missing strategy accepted")
	}
}

// A misbehaving agent that floods stale bids from old rounds must not
// corrupt the current round's clearing.
func TestStaleBidsDiscarded(t *testing.T) {
	m := startManager(t)
	dialAgent(t, m, "good", "RSBench", 32)
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	codec := NewCodec(conn)
	if err := codec.Send(Message{Type: MsgHello, JobID: "stale", Cores: 8, WattsPerCore: 125, MaxFrac: 0.7}); err != nil {
		t.Fatal(err)
	}
	waitAgents(t, m, 2)
	// The stale agent answers every price announcement with a bid
	// stamped round 0... actually with an old round number and an
	// absurd supply, which the manager must ignore.
	go func() {
		for {
			msg, err := codec.Recv()
			if err != nil {
				return
			}
			if msg.Type == MsgPrice {
				// Answer with a stale round number (msg.Round - 1).
				_ = codec.Send(Message{Type: MsgBid, Round: msg.Round - 1, Delta: 1e9, B: 0})
			}
		}
	}()
	out, err := m.RunMarket(500)
	if err != nil {
		t.Fatal(err)
	}
	// The stale agent's absurd Δ=1e9 bids (always one round behind)
	// must never be accepted for the current round, so its order stays
	// sane: at most its declared max reduction (8 cores × 0.7).
	if out.Orders["stale"] > 8*0.7+1e-6 {
		t.Errorf("stale agent order = %v, stale bid leaked in", out.Orders["stale"])
	}
	if out.Result.SuppliedW < 500-1e-6 {
		t.Errorf("supplied %v", out.Result.SuppliedW)
	}
}

// Streaming mode: each incoming bid must trigger an incremental re-clear
// (one OnStreamUpdate callback and one counted stream update per bid),
// and the market must land on the same equilibrium as the batch-per-round
// path over the same agent population.
func TestMarketStreamingOverTCP(t *testing.T) {
	reg := telemetry.NewRegistry()
	var updMu sync.Mutex
	var updates []float64
	m, err := NewManager("127.0.0.1:0", ManagerConfig{
		RoundTimeout: 500 * time.Millisecond,
		Streaming:    true,
		Telemetry:    reg,
		OnStreamUpdate: func(jobID string, round int, price float64, feasible bool) {
			if jobID == "" || round < 1 {
				t.Errorf("bad stream update: job %q round %d", jobID, round)
			}
			updMu.Lock()
			updates = append(updates, price)
			updMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD"}
	for i, app := range apps {
		dialAgent(t, m, fmt.Sprintf("s%d", i), app, 16)
	}
	waitAgents(t, m, len(apps))

	target := 2000.0
	out, err := m.RunMarket(target)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Converged {
		t.Errorf("streaming market did not converge in %d rounds", out.Result.Rounds)
	}
	if out.Result.SuppliedW < target-1e-6 {
		t.Errorf("supplied %v < target %v", out.Result.SuppliedW, target)
	}
	updMu.Lock()
	n := len(updates)
	last := 0.0
	if n > 0 {
		last = updates[n-1]
	}
	updMu.Unlock()
	// Every answered bid re-clears: at least one update per agent per
	// round, and the final published price is the market's price.
	if n < len(apps)*out.Result.Rounds {
		t.Errorf("observed %d stream updates, want ≥ %d", n, len(apps)*out.Result.Rounds)
	}
	if !floats.RelEqual(last, out.Result.Price, 1e-9) {
		t.Errorf("last streamed price %v != clearing price %v", last, out.Result.Price)
	}
	if got := reg.CounterValue(MetricStreamUpdates); got != int64(n) {
		t.Errorf("stream update counter = %d, callbacks = %d", got, n)
	}

	// The batch-per-round manager over an identical population reaches
	// the same equilibrium price.
	mb := startManager(t)
	for i, app := range apps {
		dialAgent(t, mb, fmt.Sprintf("b%d", i), app, 16)
	}
	waitAgents(t, mb, len(apps))
	batch, err := mb.RunMarket(target)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.RelEqual(out.Result.Price, batch.Result.Price, 1e-6) {
		t.Errorf("streaming price %v vs batch %v", out.Result.Price, batch.Result.Price)
	}
}
