// Package agentproto implements the manager↔user communication of the
// interactive MPR market (Section III-B, Fig. 5) as a JSON-lines protocol
// over TCP: the HPC manager announces clearing prices, autonomous user
// bidding agents respond with supply-function bids, and the exchange
// repeats until the price converges or the manager's safety timeout fires,
// at which point reduction orders are sent.
//
// The package provides both sides: Manager (the market facilitator of
// cmd/mprd) and Agent (the lightweight bidding agent of cmd/mpragent).
package agentproto

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// MsgType enumerates protocol messages.
type MsgType string

// Protocol message types.
const (
	// MsgHello registers an agent's job with the manager.
	MsgHello MsgType = "hello"
	// MsgPrice announces a (round, price) pair to all agents.
	MsgPrice MsgType = "price"
	// MsgBid carries an agent's supply-function parameters for a round.
	MsgBid MsgType = "bid"
	// MsgOrder tells an agent its awarded resource reduction.
	MsgOrder MsgType = "order"
	// MsgLift tells agents the emergency is over.
	MsgLift MsgType = "lift"
	// MsgError reports a protocol failure.
	MsgError MsgType = "error"
)

// Message is the wire envelope. Unused fields are omitted per type.
type Message struct {
	Type MsgType `json:"type"`

	// Hello fields.
	JobID string  `json:"job_id,omitempty"`
	Cores float64 `json:"cores,omitempty"`
	// WattsPerCore tells the manager this job's power model coefficient.
	WattsPerCore float64 `json:"watts_per_core,omitempty"`
	MaxFrac      float64 `json:"max_frac,omitempty"`

	// Market fields.
	Round   int     `json:"round,omitempty"`
	Price   float64 `json:"price,omitempty"`
	TargetW float64 `json:"target_w,omitempty"`

	// TraceID is the wire-level trace handle: the manager stamps every
	// price broadcast with the round's trace ID ("m<market>.r<round>")
	// and agents echo it verbatim on the answering bid, which lets the
	// manager link a per-agent respond_bid span to its market_round and
	// land per-agent RTT in the HDR series. The field is optional and
	// backward-compatible: an absent (empty) TraceID means an untraced
	// agent and changes nothing else — old-format messages parse
	// identically, and messages without a trace encode byte-identically
	// to the pre-trace wire format (pinned by TestWireFormatPinned).
	TraceID string `json:"trace,omitempty"`

	// Bid fields.
	Delta float64 `json:"delta,omitempty"`
	B     float64 `json:"b,omitempty"`

	// Order fields.
	ReductionCores float64 `json:"reduction_cores,omitempty"`
	PaymentRate    float64 `json:"payment_rate,omitempty"`

	// Error fields.
	Reason string `json:"reason,omitempty"`
}

// wireCodec is a message transport: the JSON-lines Codec or the binary
// FrameCodec, chosen per connection by negotiation (see frame.go).
type wireCodec interface {
	Send(Message) error
	Recv() (Message, error)
}

// Codec frames Messages as JSON lines on a stream.
type Codec struct {
	enc *json.Encoder
	sc  *bufio.Scanner
}

// NewCodec wraps a bidirectional stream. The scan buffer starts small
// (protocol messages are ~100–200 bytes) and grows on demand up to the
// 64 KiB line cap, so a C1M-scale load run holding tens of thousands of
// codecs does not pay 64 KiB per connection up front.
func NewCodec(rw io.ReadWriter) *Codec {
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 1024), 64*1024)
	return &Codec{enc: json.NewEncoder(rw), sc: sc}
}

// Send writes one message.
func (c *Codec) Send(m Message) error {
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("agentproto: send %s: %w", m.Type, err)
	}
	return nil
}

// Recv reads the next message, returning io.EOF at end of stream.
func (c *Codec) Recv() (Message, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Message{}, fmt.Errorf("agentproto: recv: %w", err)
		}
		return Message{}, io.EOF
	}
	var m Message
	if err := json.Unmarshal(c.sc.Bytes(), &m); err != nil {
		return Message{}, fmt.Errorf("agentproto: decode: %w", err)
	}
	return m, nil
}
