package agentproto

import (
	"encoding/json"
	"fmt"
)

// Broadcast fast path.
//
// A round's price message is identical for every member of the fleet,
// yet the natural per-member codec.Send re-marshals it once per agent —
// at C1M scale that is a million JSON marshals (or binary encodes) per
// round for one logical message. encodedMsg encodes the message exactly
// once per round, in both wire formats, and the shard loops then write
// the shared bytes raw to each connection according to its negotiated
// transport. The bytes are produced by the same encoders the per-member
// path uses (json.Marshal + '\n' is what json.Encoder emits;
// appendFrame is FrameCodec.Send's encoder), so the wire is
// byte-identical either way — TestBroadcastBytesIdentical pins this.

// encodedMsg is one message pre-encoded for both wire transports. The
// byte slices are shared across shards and members and must be treated
// as immutable.
type encodedMsg struct {
	msg   Message
	json  []byte // JSON-lines encoding: marshal plus trailing newline
	frame []byte // mprbin/v1 frame
}

// encodeMsg pre-encodes m for broadcast.
func encodeMsg(m Message) (*encodedMsg, error) {
	j, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("agentproto: encode %s: %w", m.Type, err)
	}
	f, err := appendFrame(nil, &m)
	if err != nil {
		return nil, err
	}
	return &encodedMsg{msg: m, json: append(j, '\n'), frame: f}, nil
}

// bytesFor picks the encoding for a connection's negotiated transport.
func (e *encodedMsg) bytesFor(wire string) []byte {
	if wire == WireBinary {
		return e.frame
	}
	return e.json
}
