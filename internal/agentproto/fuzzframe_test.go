package agentproto

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// fuzzMsgTypes maps the fuzzer's type selector to the six real message
// types.
var fuzzMsgTypes = [6]MsgType{MsgHello, MsgPrice, MsgBid, MsgOrder, MsgLift, MsgError}

// sanitizeF drops values JSON cannot carry (NaN, ±Inf) — the equivalence
// contract is over the protocol's value domain, and json.Marshal rejects
// non-finite floats outright.
func sanitizeF(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// sanitizeStr clamps to the protocol's value domain: valid UTF-8 (JSON
// replaces invalid sequences with U+FFFD at encode, which would diverge
// from the binary codec's byte-transparent strings) and bounded length.
func sanitizeStr(s string) string {
	if len(s) > 512 {
		s = s[:512]
	}
	return strings.ToValidUTF8(s, "�")
}

// normalizeZeros returns the struct both codecs are obliged to produce:
// a field whose value is zero — including -0.0 — is "absent" under both
// JSON omitempty and the binary field bitmap, so it decodes as +0.
func normalizeZeros(m Message) Message {
	if m.Cores == 0 {
		m.Cores = 0
	}
	if m.WattsPerCore == 0 {
		m.WattsPerCore = 0
	}
	if m.MaxFrac == 0 {
		m.MaxFrac = 0
	}
	if m.Price == 0 {
		m.Price = 0
	}
	if m.TargetW == 0 {
		m.TargetW = 0
	}
	if m.Delta == 0 {
		m.Delta = 0
	}
	if m.B == 0 {
		m.B = 0
	}
	if m.ReductionCores == 0 {
		m.ReductionCores = 0
	}
	if m.PaymentRate == 0 {
		m.PaymentRate = 0
	}
	return m
}

// FuzzFrameCodecJSONEquiv is the binary↔JSON differential: any message
// in the protocol's value domain must round-trip through the binary
// frame codec and through the JSON-lines codec to the IDENTICAL struct
// (float bits included — JSON's shortest-round-trip decimals and the
// frame's raw IEEE-754 bits both preserve float64 exactly). Untraced
// messages must additionally keep the JSON path byte-identical to the
// frozen pre-trace envelope, chaining this fuzzer to the PR 7 golden
// pin: JSON stays the backward-compatible wire, binary is provably just
// an encoding of it.
func FuzzFrameCodecJSONEquiv(f *testing.F) {
	f.Add(byte(0), "job-42", 64.0, 5.5, 0.4, int32(0), 0.0, 0.0, "", 0.0, 0.0, 0.0, 0.0, "")
	f.Add(byte(1), "", 0.0, 0.0, 0.0, int32(3), 0.125, 4000.0, "m7.r3", 0.0, 0.0, 0.0, 0.0, "")
	f.Add(byte(2), "", 0.0, 0.0, 0.0, int32(3), 0.0, 0.0, "m7.r3", 1.5, 0.25, 0.0, 0.0, "")
	f.Add(byte(3), "", 0.0, 0.0, 0.0, int32(0), 0.125, 0.0, "", 0.0, 0.0, 12.5, 1.5625, "")
	f.Add(byte(5), "", 0.0, 0.0, 0.0, int32(0), 0.0, 0.0, "", 0.0, 0.0, 0.0, 0.0, "duplicate job_id")
	// Adversarial values: negative zero, subnormals, huge magnitudes,
	// negative rounds, non-ASCII strings.
	f.Add(byte(2), "", math.Copysign(0, -1), 5e-324, 1.7976931348623157e308, int32(-7), 0.1, 0.0, "über-trace ☃", -1.5, 0.0, 0.0, 0.0, "евикт")
	f.Fuzz(func(t *testing.T, typ byte, jobID string, cores, wpc, maxFrac float64, round int32,
		price, targetW float64, trace string, delta, b, red, pay float64, reason string) {
		m := Message{
			Type:           fuzzMsgTypes[int(typ)%len(fuzzMsgTypes)],
			JobID:          sanitizeStr(jobID),
			Cores:          sanitizeF(cores),
			WattsPerCore:   sanitizeF(wpc),
			MaxFrac:        sanitizeF(maxFrac),
			Round:          int(round),
			Price:          sanitizeF(price),
			TargetW:        sanitizeF(targetW),
			TraceID:        sanitizeStr(trace),
			Delta:          sanitizeF(delta),
			B:              sanitizeF(b),
			ReductionCores: sanitizeF(red),
			PaymentRate:    sanitizeF(pay),
			Reason:         sanitizeStr(reason),
		}
		want := normalizeZeros(m)

		// Binary leg: Send → Recv must reproduce the struct exactly.
		var fbuf bytes.Buffer
		fc := NewFrameCodec(&fbuf, &fbuf)
		if err := fc.Send(m); err != nil {
			t.Fatalf("frame Send(%+v): %v", m, err)
		}
		gotBin, err := fc.Recv()
		if err != nil {
			t.Fatalf("frame Recv(%+v): %v", m, err)
		}
		if gotBin != want {
			t.Fatalf("binary round trip diverged:\n got  %+v\n want %+v", gotBin, want)
		}

		// JSON leg through the production codec.
		var jbuf bytes.Buffer
		jc := NewCodec(&jbuf)
		if err := jc.Send(m); err != nil {
			t.Fatalf("json Send(%+v): %v", m, err)
		}
		jsonLine := append([]byte(nil), jbuf.Bytes()...)
		gotJSON, err := jc.Recv()
		if err != nil {
			t.Fatalf("json Recv(%+v) [line %q]: %v", m, jsonLine, err)
		}
		if gotJSON != want {
			t.Fatalf("json round trip diverged [line %q]:\n got  %+v\n want %+v", jsonLine, gotJSON, want)
		}

		// The two transports agree struct-for-struct (implied by the two
		// checks above; stated for the differential contract).
		if gotBin != gotJSON {
			t.Fatalf("binary and json decode diverge:\n bin  %+v\n json %+v", gotBin, gotJSON)
		}

		// Untraced messages: the JSON path stays byte-identical to the
		// frozen pre-trace envelope (the PR 7 compatibility pin).
		if want.TraceID == "" {
			o := oldMessage{Type: m.Type, JobID: m.JobID, Cores: m.Cores,
				WattsPerCore: m.WattsPerCore, MaxFrac: m.MaxFrac,
				Round: m.Round, Price: m.Price, TargetW: m.TargetW,
				Delta: m.Delta, B: m.B,
				ReductionCores: m.ReductionCores, PaymentRate: m.PaymentRate,
				Reason: m.Reason}
			newBytes, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			oldBytes, err := json.Marshal(o)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(newBytes, oldBytes) {
				t.Fatalf("untraced JSON encoding drifted from frozen envelope:\n new %s\n old %s", newBytes, oldBytes)
			}
		}
	})
}
