package agentproto

import (
	"bytes"
	"net"
	"testing"
	"time"

	"mpr/internal/core"
	"mpr/internal/perf"
	"mpr/internal/telemetry"
)

// TestWireFormatPinned pins the wire encoding byte-for-byte: messages
// without a trace ID must encode exactly as the pre-trace protocol did
// (the field is omitempty), and old-format bytes must decode to the same
// Message as before with an empty TraceID. This is the backward
// compatibility contract for mixed old/new fleets.
func TestWireFormatPinned(t *testing.T) {
	cases := []struct {
		name string
		msg  Message
		want string // exact bytes Send produces, including trailing newline
	}{
		{
			name: "bid untraced (old format)",
			msg:  Message{Type: MsgBid, Round: 3, Delta: 1.5, B: 0.25},
			want: `{"type":"bid","round":3,"delta":1.5,"b":0.25}` + "\n",
		},
		{
			name: "price untraced (old format)",
			msg:  Message{Type: MsgPrice, Round: 1, Price: 0.1, TargetW: 400},
			want: `{"type":"price","round":1,"price":0.1,"target_w":400}` + "\n",
		},
		{
			name: "bid traced",
			msg:  Message{Type: MsgBid, Round: 3, TraceID: "m1.r3", Delta: 1.5, B: 0.25},
			want: `{"type":"bid","round":3,"trace":"m1.r3","delta":1.5,"b":0.25}` + "\n",
		},
		{
			name: "price traced",
			msg:  Message{Type: MsgPrice, Round: 2, Price: 0.5, TargetW: 400, TraceID: "m7.r2"},
			want: `{"type":"price","round":2,"price":0.5,"target_w":400,"trace":"m7.r2"}` + "\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			c := NewCodec(&buf)
			if err := c.Send(tc.msg); err != nil {
				t.Fatal(err)
			}
			if got := buf.String(); got != tc.want {
				t.Errorf("encoded bytes:\n got %q\nwant %q", got, tc.want)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.msg {
				t.Errorf("decode round trip: %+v != %+v", got, tc.msg)
			}
		})
	}

	// Version negotiation is part of the wire ABI too: a binary agent's
	// very first bytes are "MPRB"+maxVersion, the manager answers
	// "MPRA"+chosenVersion, and a JSON-lines connection sends neither —
	// its first byte is the '{' of the hello, which is how the manager
	// tells the transports apart. Pin all three facts.
	t.Run("binary negotiation preamble", func(t *testing.T) {
		var agentOut bytes.Buffer
		v, err := negotiateClient(bytes.NewReader([]byte("MPRA\x01")), &agentOut)
		if err != nil || v != 1 {
			t.Fatalf("negotiateClient: v=%d err=%v", v, err)
		}
		if got := agentOut.String(); got != "MPRB\x01" {
			t.Errorf("client preamble %q, want %q", got, "MPRB\x01")
		}
		var mgrOut bytes.Buffer
		v, err = negotiateServer(bytes.NewReader([]byte("MPRB\x01")), &mgrOut)
		if err != nil || v != 1 {
			t.Fatalf("negotiateServer: v=%d err=%v", v, err)
		}
		if got := mgrOut.String(); got != "MPRA\x01" {
			t.Errorf("server ack %q, want %q", got, "MPRA\x01")
		}
		// The sniff byte that keeps old JSON agents working unchanged:
		// every JSON hello opens with '{', never the preamble magic 'M'.
		var jbuf bytes.Buffer
		if err := NewCodec(&jbuf).Send(Message{Type: MsgHello, JobID: "j1", Cores: 1, WattsPerCore: 1, MaxFrac: 0.4}); err != nil {
			t.Fatal(err)
		}
		if jbuf.Bytes()[0] != '{' || jbuf.Bytes()[0] == 'M' {
			t.Errorf("JSON hello first byte %q collides with the binary sniff", jbuf.Bytes()[0])
		}
	})
}

// TestTracePropagationSpans runs a traced market and checks that every
// responding agent yields a respond_bid span linked under its round's
// market_round span, with the agent's job ID as an attribute.
func TestTracePropagationSpans(t *testing.T) {
	tracer := telemetry.NewTracer(1024)
	m, err := NewManager("127.0.0.1:0", ManagerConfig{
		RoundTimeout: 500 * time.Millisecond,
		Tracer:       tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	jobs := []string{"j-alpha", "j-beta", "j-gamma"}
	for _, job := range jobs {
		prof, err := perf.ProfileByName("XSBench")
		if err != nil {
			t.Fatal(err)
		}
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		a, err := Dial(m.Addr(), AgentConfig{
			JobID: job, Cores: 128, WattsPerCore: 125, MaxFrac: prof.MaxReduction(),
			Strategy: &core.RationalBidder{Cores: 128, Model: model},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	waitAgents(t, m, len(jobs))

	out, err := m.RunMarket(400)
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != "m1" {
		t.Errorf("outcome trace = %q, want m1", out.TraceID)
	}

	// Index the span tree: market_round span IDs, and respond_bid spans
	// grouped by parent.
	spans := tracer.Spans()
	roundIDs := map[uint64]bool{}
	for _, s := range spans {
		if s.Name == "market_round" {
			roundIDs[s.ID] = true
		}
	}
	if len(roundIDs) != out.Result.Rounds {
		t.Fatalf("market_round spans = %d, want %d", len(roundIDs), out.Result.Rounds)
	}
	perRound := map[uint64]map[string]bool{}
	for _, s := range spans {
		if s.Name != "respond_bid" {
			continue
		}
		if !roundIDs[s.Parent] {
			t.Fatalf("respond_bid span %d has parent %d, not a market_round", s.ID, s.Parent)
		}
		if s.EndNS < s.StartNS {
			t.Errorf("respond_bid span %d ends before it starts", s.ID)
		}
		var agent string
		for _, a := range s.Attrs {
			if a.Key == "agent" {
				agent = a.Value
			}
		}
		if agent == "" {
			t.Fatalf("respond_bid span %d has no agent attr", s.ID)
		}
		if perRound[s.Parent] == nil {
			perRound[s.Parent] = map[string]bool{}
		}
		perRound[s.Parent][agent] = true
	}
	// Every round should have one respond_bid per agent (no timeouts in
	// this in-process test).
	if len(perRound) != out.Result.Rounds {
		t.Fatalf("rounds with respond_bid spans = %d, want %d", len(perRound), out.Result.Rounds)
	}
	for parent, agents := range perRound {
		if len(agents) != len(jobs) {
			t.Errorf("round span %d: respond_bid agents = %d, want %d", parent, len(agents), len(jobs))
		}
		for _, job := range jobs {
			if !agents[job] {
				t.Errorf("round span %d: no respond_bid span for %s", parent, job)
			}
		}
	}

	// Round events carry the hierarchical trace IDs.
	for _, e := range tracer.Events() {
		switch e.Name {
		case "market_round":
			want := "m1.r" + itoa(e.Round)
			if e.Trace != want {
				t.Errorf("market_round event trace = %q, want %q", e.Trace, want)
			}
		case "market_clear":
			if e.Trace != "m1" {
				t.Errorf("market_clear event trace = %q, want m1", e.Trace)
			}
		}
	}
}

// TestOldFormatAgentInterop mixes a modern trace-echoing agent with a
// hand-rolled "old protocol" agent that never sends the trace field. The
// market must clear for both, and only the modern agent may produce
// respond_bid spans.
func TestOldFormatAgentInterop(t *testing.T) {
	tracer := telemetry.NewTracer(1024)
	m, err := NewManager("127.0.0.1:0", ManagerConfig{
		RoundTimeout: 500 * time.Millisecond,
		Tracer:       tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Modern agent.
	prof, err := perf.ProfileByName("XSBench")
	if err != nil {
		t.Fatal(err)
	}
	model := perf.NewCostModel(prof, 1, perf.CostLinear)
	modern, err := Dial(m.Addr(), AgentConfig{
		JobID: "j-new", Cores: 128, WattsPerCore: 125, MaxFrac: prof.MaxReduction(),
		Strategy: &core.RationalBidder{Cores: 128, Model: model},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer modern.Close()

	// Old-format agent: a raw codec that answers prices with bids that
	// deliberately omit the trace field, exactly as a pre-trace binary
	// would.
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	old := NewCodec(conn)
	if err := old.Send(Message{Type: MsgHello, JobID: "j-old", Cores: 64, WattsPerCore: 125, MaxFrac: 0.4}); err != nil {
		t.Fatal(err)
	}
	oldDone := make(chan error, 1)
	go func() {
		for {
			msg, err := old.Recv()
			if err != nil {
				oldDone <- err
				return
			}
			switch msg.Type {
			case MsgPrice:
				// Fixed supply function, no TraceID echoed.
				if err := old.Send(Message{Type: MsgBid, Round: msg.Round, Delta: 10, B: 0.3}); err != nil {
					oldDone <- err
					return
				}
			case MsgOrder:
				oldDone <- nil
				return
			}
		}
	}()
	waitAgents(t, m, 2)

	out, err := m.RunMarket(400)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Orders["j-old"]; !ok {
		t.Fatal("old-format agent got no order")
	}
	if _, ok := out.Orders["j-new"]; !ok {
		t.Fatal("modern agent got no order")
	}
	select {
	case err := <-oldDone:
		if err != nil {
			t.Fatalf("old-format agent: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("old-format agent never received its order")
	}

	// Only the modern agent is traced.
	for _, s := range tracer.Spans() {
		if s.Name != "respond_bid" {
			continue
		}
		for _, a := range s.Attrs {
			if a.Key == "agent" && a.Value == "j-old" {
				t.Errorf("untraced old-format agent produced a respond_bid span")
			}
			if a.Key == "agent" && a.Value != "j-new" && a.Value != "j-old" {
				t.Errorf("unexpected respond_bid agent %q", a.Value)
			}
		}
	}
	foundModern := false
	for _, s := range tracer.Spans() {
		if s.Name == "respond_bid" {
			foundModern = true
		}
	}
	if !foundModern {
		t.Error("modern agent produced no respond_bid spans")
	}
}

// TestServeConnPipe exercises the fd-free transport: agents attached over
// net.Pipe via Manager.ServeConn and Agent.DialConn clear a market
// exactly like TCP ones.
func TestServeConnPipe(t *testing.T) {
	m, err := NewManager("127.0.0.1:0", ManagerConfig{RoundTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD"}
	n := 2 * len(apps)
	for i := 0; i < n; i++ {
		prof, err := perf.ProfileByName(apps[i%len(apps)])
		if err != nil {
			t.Fatal(err)
		}
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		mgrEnd, agentEnd := net.Pipe()
		if err := m.ServeConn(mgrEnd); err != nil {
			t.Fatal(err)
		}
		a, err := DialConn(agentEnd, AgentConfig{
			JobID: "pipe-" + itoa(i), Cores: 64, WattsPerCore: 125, MaxFrac: prof.MaxReduction(),
			Strategy: &core.RationalBidder{Cores: 64, Model: model},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	waitAgents(t, m, n)

	out, err := m.RunMarket(16000)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Orders) != n {
		t.Fatalf("orders = %d, want %d", len(out.Orders), n)
	}
	if !out.Result.Converged {
		t.Error("pipe market did not converge")
	}
}

// itoa avoids strconv imports sprinkled through table tests.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
