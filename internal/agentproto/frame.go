package agentproto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary framing (mprbin/v1).
//
// The interactive protocol's hot path is two tiny messages per agent per
// round (a price broadcast and a bid). JSON-lines spends most of a C1M
// round marshalling them; the binary codec replaces that with a
// length-prefixed frame whose payload is a field bitmap followed by the
// present fields in fixed order:
//
//	byte 0      frame magic (0xA7)
//	byte 1      message type (frameHello..frameError)
//	bytes 2..5  payload length, uint32 big-endian (cap 1 MiB)
//	payload     uint16 BE field bitmap, then each set field in bit order
//
// A field is present iff it is non-zero — the exact mirror of the JSON
// envelope's omitempty tags — so any Message round-trips binary↔JSON to
// the identical struct (FuzzFrameCodecJSONEquiv pins this). Floats are
// IEEE-754 bits big-endian, Round is an int32, strings are uint16-length
// prefixed bytes.
//
// Version negotiation rides the hello exchange: a binary agent opens the
// connection with the 5-byte preamble "MPRB"+maxVersion and the manager
// answers "MPRA"+chosenVersion (min of the two sides) before any frame
// flows. JSON-lines connections send no preamble — their first byte is
// '{' — so the manager sniffs one byte to pick the codec and old agents
// interop unchanged, byte for byte.
const (
	// FrameVersion is the highest binary protocol version this build
	// speaks. Negotiation picks min(agent, manager).
	FrameVersion = 1

	frameMagic byte = 0xA7

	// maxFramePayload bounds one frame. Protocol messages are tens of
	// bytes; anything near the cap is a desynced or hostile peer.
	maxFramePayload = 1 << 20
)

// preambleMagicReq/Ack are the negotiation magics: agent → manager and
// manager → agent. The full preamble is the 4 magic bytes plus one
// version byte.
var (
	preambleMagicReq = [4]byte{'M', 'P', 'R', 'B'}
	preambleMagicAck = [4]byte{'M', 'P', 'R', 'A'}
)

// Frame type bytes, one per MsgType.
const (
	frameHello byte = 1
	framePrice byte = 2
	frameBid   byte = 3
	frameOrder byte = 4
	frameLift  byte = 5
	frameError byte = 6
)

// Field bitmap bits, in payload order. The set mirrors Message's
// omitempty fields exactly; Type travels in the frame header.
const (
	bitJobID = 1 << iota
	bitCores
	bitWattsPerCore
	bitMaxFrac
	bitRound
	bitPrice
	bitTargetW
	bitTraceID
	bitDelta
	bitB
	bitReductionCores
	bitPaymentRate
	bitReason

	bitsKnown = 1<<13 - 1
)

func msgTypeByte(t MsgType) (byte, error) {
	switch t {
	case MsgHello:
		return frameHello, nil
	case MsgPrice:
		return framePrice, nil
	case MsgBid:
		return frameBid, nil
	case MsgOrder:
		return frameOrder, nil
	case MsgLift:
		return frameLift, nil
	case MsgError:
		return frameError, nil
	}
	return 0, fmt.Errorf("agentproto: no frame type for message type %q", t)
}

func byteMsgType(b byte) (MsgType, error) {
	switch b {
	case frameHello:
		return MsgHello, nil
	case framePrice:
		return MsgPrice, nil
	case frameBid:
		return MsgBid, nil
	case frameOrder:
		return MsgOrder, nil
	case frameLift:
		return MsgLift, nil
	case frameError:
		return MsgError, nil
	}
	return "", fmt.Errorf("agentproto: unknown frame type 0x%02x", b)
}

// FrameCodec frames Messages as mprbin/v1 binary frames. Send and Recv
// reuse internal buffers, and Recv interns repeated strings (every bid
// in a round echoes the same trace ID), so the steady-state price/bid
// path allocates nothing (TestFrameCodecZeroAlloc gates this).
type FrameCodec struct {
	w io.Writer
	r *bufio.Reader

	enc []byte  // reusable encode buffer (header + payload)
	pay []byte  // reusable decode payload buffer
	hdr [6]byte // reusable header scratch (a local would escape via io.ReadFull)

	// One-entry intern caches: repeated identical wire strings decode to
	// the same Go string without allocating.
	lastTrace string
	lastJob   string
}

// NewFrameCodec wraps a stream already past preamble negotiation. The
// reader may be the buffered reader negotiation peeked through; writes
// go straight to w (each Send is a single Write call).
func NewFrameCodec(r io.Reader, w io.Writer) *FrameCodec {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 256)
	}
	return &FrameCodec{w: w, r: br, enc: make([]byte, 0, 128)}
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func appendF64(b []byte, v float64) []byte {
	u := math.Float64bits(v)
	return append(b, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

func appendStr(b []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return b, fmt.Errorf("agentproto: string field of %d bytes exceeds frame limit", len(s))
	}
	return append(appendU16(b, uint16(len(s))), s...), nil
}

// bitmapOf computes the present-field bitmap — the binary twin of the
// JSON envelope's omitempty rule (a field travels iff it is non-zero).
func bitmapOf(m *Message) uint16 {
	var bm uint16
	if m.JobID != "" {
		bm |= bitJobID
	}
	if m.Cores != 0 {
		bm |= bitCores
	}
	if m.WattsPerCore != 0 {
		bm |= bitWattsPerCore
	}
	if m.MaxFrac != 0 {
		bm |= bitMaxFrac
	}
	if m.Round != 0 {
		bm |= bitRound
	}
	if m.Price != 0 {
		bm |= bitPrice
	}
	if m.TargetW != 0 {
		bm |= bitTargetW
	}
	if m.TraceID != "" {
		bm |= bitTraceID
	}
	if m.Delta != 0 {
		bm |= bitDelta
	}
	if m.B != 0 {
		bm |= bitB
	}
	if m.ReductionCores != 0 {
		bm |= bitReductionCores
	}
	if m.PaymentRate != 0 {
		bm |= bitPaymentRate
	}
	if m.Reason != "" {
		bm |= bitReason
	}
	return bm
}

// Send writes one message as a single frame (one Write call).
func (c *FrameCodec) Send(m Message) error {
	buf, err := appendFrame(c.enc[:0], &m)
	if err != nil {
		return err
	}
	c.enc = buf[:0]
	if _, err := c.w.Write(buf); err != nil {
		return fmt.Errorf("agentproto: send %s: %w", m.Type, err)
	}
	return nil
}

// appendFrame appends m encoded as one complete mprbin/v1 frame (header
// plus payload) to dst. It is the single encoder behind both
// FrameCodec.Send and the manager's shared-broadcast fast path, so the
// two emit byte-identical frames by construction.
func appendFrame(dst []byte, m *Message) ([]byte, error) {
	tb, err := msgTypeByte(m.Type)
	if err != nil {
		return dst, err
	}
	if m.Round < math.MinInt32 || m.Round > math.MaxInt32 {
		return dst, fmt.Errorf("agentproto: round %d exceeds frame range", m.Round)
	}
	start := len(dst)
	buf := append(dst, frameMagic, tb, 0, 0, 0, 0)
	bm := bitmapOf(m)
	buf = appendU16(buf, bm)
	if bm&bitJobID != 0 {
		if buf, err = appendStr(buf, m.JobID); err != nil {
			return dst, err
		}
	}
	if bm&bitCores != 0 {
		buf = appendF64(buf, m.Cores)
	}
	if bm&bitWattsPerCore != 0 {
		buf = appendF64(buf, m.WattsPerCore)
	}
	if bm&bitMaxFrac != 0 {
		buf = appendF64(buf, m.MaxFrac)
	}
	if bm&bitRound != 0 {
		buf = appendU32(buf, uint32(int32(m.Round)))
	}
	if bm&bitPrice != 0 {
		buf = appendF64(buf, m.Price)
	}
	if bm&bitTargetW != 0 {
		buf = appendF64(buf, m.TargetW)
	}
	if bm&bitTraceID != 0 {
		if buf, err = appendStr(buf, m.TraceID); err != nil {
			return dst, err
		}
	}
	if bm&bitDelta != 0 {
		buf = appendF64(buf, m.Delta)
	}
	if bm&bitB != 0 {
		buf = appendF64(buf, m.B)
	}
	if bm&bitReductionCores != 0 {
		buf = appendF64(buf, m.ReductionCores)
	}
	if bm&bitPaymentRate != 0 {
		buf = appendF64(buf, m.PaymentRate)
	}
	if bm&bitReason != 0 {
		if buf, err = appendStr(buf, m.Reason); err != nil {
			return dst, err
		}
	}
	binary.BigEndian.PutUint32(buf[start+2:start+6], uint32(len(buf)-start-6))
	return buf, nil
}

// frameReader decodes payload fields sequentially.
type frameReader struct {
	b []byte
}

func (fr *frameReader) u16() (uint16, error) {
	if len(fr.b) < 2 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint16(fr.b)
	fr.b = fr.b[2:]
	return v, nil
}

func (fr *frameReader) u32() (uint32, error) {
	if len(fr.b) < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint32(fr.b)
	fr.b = fr.b[4:]
	return v, nil
}

func (fr *frameReader) f64() (float64, error) {
	if len(fr.b) < 8 {
		return 0, io.ErrUnexpectedEOF
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(fr.b))
	fr.b = fr.b[8:]
	return v, nil
}

func (fr *frameReader) str() ([]byte, error) {
	n, err := fr.u16()
	if err != nil {
		return nil, err
	}
	if len(fr.b) < int(n) {
		return nil, io.ErrUnexpectedEOF
	}
	s := fr.b[:n]
	fr.b = fr.b[n:]
	return s, nil
}

// internTrace converts trace bytes to a string through a one-entry
// cache: every bid in a round echoes the same trace ID, so steady-state
// decoding allocates nothing.
func (c *FrameCodec) internTrace(b []byte) string {
	if c.lastTrace != string(b) { // compiler-optimized, alloc-free compare
		c.lastTrace = string(b)
	}
	return c.lastTrace
}

func (c *FrameCodec) internJob(b []byte) string {
	if c.lastJob != string(b) {
		c.lastJob = string(b)
	}
	return c.lastJob
}

// decodeErr wraps a field-decode failure. A plain function (not a
// closure) so the error path costs Recv nothing when frames are healthy.
func decodeErr(mt MsgType, err error) error {
	return fmt.Errorf("agentproto: decode %s frame: %w", mt, err)
}

// Recv reads the next frame, returning io.EOF at a clean end of stream.
func (c *FrameCodec) Recv() (Message, error) {
	hdr := c.hdr[:]
	if _, err := io.ReadFull(c.r, hdr); err != nil {
		if err == io.EOF {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("agentproto: recv frame header: %w", err)
	}
	if hdr[0] != frameMagic {
		return Message{}, fmt.Errorf("agentproto: bad frame magic 0x%02x (stream desynced?)", hdr[0])
	}
	mt, err := byteMsgType(hdr[1])
	if err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[2:6])
	if n > maxFramePayload {
		return Message{}, fmt.Errorf("agentproto: frame payload %d exceeds %d-byte cap", n, maxFramePayload)
	}
	if cap(c.pay) < int(n) {
		c.pay = make([]byte, n)
	}
	pay := c.pay[:n]
	if _, err := io.ReadFull(c.r, pay); err != nil {
		return Message{}, fmt.Errorf("agentproto: recv frame payload: %w", err)
	}
	fr := frameReader{b: pay}
	bm, err := fr.u16()
	if err != nil {
		return Message{}, fmt.Errorf("agentproto: decode frame: %w", err)
	}
	if bm&^uint16(bitsKnown) != 0 {
		return Message{}, fmt.Errorf("agentproto: frame carries unknown field bits 0x%04x", bm)
	}
	m := Message{Type: mt}
	if bm&bitJobID != 0 {
		b, err := fr.str()
		if err != nil {
			return Message{}, decodeErr(mt, err)
		}
		m.JobID = c.internJob(b)
	}
	if bm&bitCores != 0 {
		if m.Cores, err = fr.f64(); err != nil {
			return Message{}, decodeErr(mt, err)
		}
	}
	if bm&bitWattsPerCore != 0 {
		if m.WattsPerCore, err = fr.f64(); err != nil {
			return Message{}, decodeErr(mt, err)
		}
	}
	if bm&bitMaxFrac != 0 {
		if m.MaxFrac, err = fr.f64(); err != nil {
			return Message{}, decodeErr(mt, err)
		}
	}
	if bm&bitRound != 0 {
		u, err := fr.u32()
		if err != nil {
			return Message{}, decodeErr(mt, err)
		}
		m.Round = int(int32(u))
	}
	if bm&bitPrice != 0 {
		if m.Price, err = fr.f64(); err != nil {
			return Message{}, decodeErr(mt, err)
		}
	}
	if bm&bitTargetW != 0 {
		if m.TargetW, err = fr.f64(); err != nil {
			return Message{}, decodeErr(mt, err)
		}
	}
	if bm&bitTraceID != 0 {
		b, err := fr.str()
		if err != nil {
			return Message{}, decodeErr(mt, err)
		}
		m.TraceID = c.internTrace(b)
	}
	if bm&bitDelta != 0 {
		if m.Delta, err = fr.f64(); err != nil {
			return Message{}, decodeErr(mt, err)
		}
	}
	if bm&bitB != 0 {
		if m.B, err = fr.f64(); err != nil {
			return Message{}, decodeErr(mt, err)
		}
	}
	if bm&bitReductionCores != 0 {
		if m.ReductionCores, err = fr.f64(); err != nil {
			return Message{}, decodeErr(mt, err)
		}
	}
	if bm&bitPaymentRate != 0 {
		if m.PaymentRate, err = fr.f64(); err != nil {
			return Message{}, decodeErr(mt, err)
		}
	}
	if bm&bitReason != 0 {
		b, err := fr.str()
		if err != nil {
			return Message{}, decodeErr(mt, err)
		}
		m.Reason = string(b)
	}
	if len(fr.b) != 0 {
		return Message{}, fmt.Errorf("agentproto: %d trailing bytes after %s frame", len(fr.b), mt)
	}
	return m, nil
}

// negotiateClient opens binary framing from the agent side: write the
// request preamble, read the manager's ack, and return the negotiated
// version.
func negotiateClient(r io.Reader, w io.Writer) (int, error) {
	req := [5]byte{preambleMagicReq[0], preambleMagicReq[1], preambleMagicReq[2], preambleMagicReq[3], FrameVersion}
	if _, err := w.Write(req[:]); err != nil {
		return 0, fmt.Errorf("agentproto: negotiate: %w", err)
	}
	var ack [5]byte
	if _, err := io.ReadFull(r, ack[:]); err != nil {
		return 0, fmt.Errorf("agentproto: negotiate: reading ack: %w", err)
	}
	if [4]byte{ack[0], ack[1], ack[2], ack[3]} != preambleMagicAck {
		return 0, fmt.Errorf("agentproto: negotiate: bad ack magic %q", ack[:4])
	}
	v := int(ack[4])
	if v < 1 || v > FrameVersion {
		return 0, fmt.Errorf("agentproto: negotiate: manager offered unsupported version %d", v)
	}
	return v, nil
}

// negotiateServer completes binary negotiation from the manager side,
// with the request preamble still unread in r. It answers with
// min(agent, manager) and returns the negotiated version.
func negotiateServer(r io.Reader, w io.Writer) (int, error) {
	var req [5]byte
	if _, err := io.ReadFull(r, req[:]); err != nil {
		return 0, fmt.Errorf("agentproto: negotiate: reading preamble: %w", err)
	}
	if [4]byte{req[0], req[1], req[2], req[3]} != preambleMagicReq {
		return 0, fmt.Errorf("agentproto: negotiate: bad preamble magic %q", req[:4])
	}
	v := int(req[4])
	if v > FrameVersion {
		v = FrameVersion
	}
	if v < 1 {
		// No common version: ack version 0 so the agent gets a typed
		// failure instead of a silent hangup, then report the error.
		ack := [5]byte{preambleMagicAck[0], preambleMagicAck[1], preambleMagicAck[2], preambleMagicAck[3], 0}
		_, _ = w.Write(ack[:])
		return 0, fmt.Errorf("agentproto: negotiate: agent offered version %d", req[4])
	}
	ack := [5]byte{preambleMagicAck[0], preambleMagicAck[1], preambleMagicAck[2], preambleMagicAck[3], byte(v)}
	if _, err := w.Write(ack[:]); err != nil {
		return 0, fmt.Errorf("agentproto: negotiate: writing ack: %w", err)
	}
	return v, nil
}
