package agentproto

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"mpr/internal/core"
)

// StateSchema versions the manager snapshot artifact. Strict-decoded on
// read: adding a field to State/AgentState without bumping the version
// fails ReadStateFile's round-trip contract (and the schema test).
const StateSchema = "mprstate/v1"

// AgentState is one registered agent in a snapshot: the hello spec plus
// the last accepted bid, which re-seeds the market on restore so a
// restarted manager clears to the same price before any fresh bid
// arrives (the paper's timeout rule — proceed with the last information
// available — applied across a restart).
type AgentState struct {
	JobID        string  `json:"job_id"`
	Cores        float64 `json:"cores"`
	WattsPerCore float64 `json:"watts_per_core"`
	MaxFrac      float64 `json:"max_frac"`
	Wire         string  `json:"wire,omitempty"`
	HasBid       bool    `json:"has_bid,omitempty"`
	Delta        float64 `json:"delta,omitempty"`
	B            float64 `json:"b,omitempty"`
}

// State is the versioned mprstate/v1 artifact: everything a restarted
// mprd needs to resume the market where the killed process left it —
// the registered fleet with last bids, the market sequence (so trace IDs
// keep advancing instead of colliding), and the last clearing price.
type State struct {
	Schema      string       `json:"schema"`
	SavedUnixNS int64        `json:"saved_unix_ns"`
	MarketSeq   uint64       `json:"market_seq"`
	LastPrice   float64      `json:"last_price,omitempty"`
	Agents      []AgentState `json:"agents"`
}

// Validate checks the schema tag and per-agent invariants.
func (st *State) Validate() error {
	if st.Schema != StateSchema {
		return fmt.Errorf("agentproto: state schema %q, want %q", st.Schema, StateSchema)
	}
	seen := make(map[string]bool, len(st.Agents))
	for i := range st.Agents {
		a := &st.Agents[i]
		if a.JobID == "" || a.Cores <= 0 || a.WattsPerCore <= 0 || a.MaxFrac <= 0 {
			return fmt.Errorf("agentproto: state agent %d (%q): needs job id and positive cores/watts/max_frac", i, a.JobID)
		}
		if seen[a.JobID] {
			return fmt.Errorf("agentproto: state agent %d: duplicate job id %q", i, a.JobID)
		}
		seen[a.JobID] = true
		if a.HasBid {
			if err := (core.Bid{Delta: a.Delta, B: a.B}).Validate(); err != nil {
				return fmt.Errorf("agentproto: state agent %q: %w", a.JobID, err)
			}
		}
	}
	return nil
}

// SnapshotState captures the manager's registration + market state. Safe
// to call at any time, including mid-round: bids are read under their
// mailbox locks, so a snapshot taken while a round is collecting sees
// each agent's last harvested bid. The roster is sorted by job ID and
// includes restored-but-not-yet-reconnected agents, so snapshot →
// restore → snapshot loses nobody.
func (m *Manager) SnapshotState(savedUnixNS int64) *State {
	m.mu.Lock()
	agents := make([]AgentState, 0, len(m.agents)+len(m.restored))
	for _, a := range m.agents {
		as := AgentState{
			JobID:        a.hello.JobID,
			Cores:        a.hello.Cores,
			WattsPerCore: a.hello.WattsPerCore,
			MaxFrac:      a.hello.MaxFrac,
			Wire:         a.wire,
		}
		a.mbMu.Lock()
		bid, has := a.seedBid()
		a.mbMu.Unlock()
		if has {
			as.HasBid, as.Delta, as.B = true, bid.Delta, bid.B
		}
		agents = append(agents, as)
	}
	for id, r := range m.restored {
		if _, connected := m.agents[id]; connected {
			continue
		}
		agents = append(agents, r)
	}
	seq := m.marketSeq.Load()
	last := m.lastPrice
	m.mu.Unlock()
	sort.Slice(agents, func(i, j int) bool { return agents[i].JobID < agents[j].JobID })
	return &State{Schema: StateSchema, SavedUnixNS: savedUnixNS, MarketSeq: seq, LastPrice: last, Agents: agents}
}

// RestoreState loads a snapshot into a fresh manager: the market
// sequence and last price resume, and each snapshotted agent's spec +
// last bid is held until that job ID reconnects, at which point the bid
// seeds its roster slot exactly as if the restart never happened.
// Restore before serving traffic; it rejects a manager that already has
// registrations.
func (m *Manager) RestoreState(st *State) error {
	if err := st.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("agentproto: manager closed")
	}
	if len(m.agents) > 0 {
		return fmt.Errorf("agentproto: restore into a manager with %d live agents", len(m.agents))
	}
	m.marketSeq.Store(st.MarketSeq)
	m.lastPrice = st.LastPrice
	m.restored = make(map[string]AgentState, len(st.Agents))
	for _, a := range st.Agents {
		m.restored[a.JobID] = a
	}
	return nil
}

// RestoredPending reports how many restored agents have not reconnected
// yet.
func (m *Manager) RestoredPending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.restored)
}

// LastPrice returns the most recent clearing price (restored or from the
// last finished round), 0 before any market.
func (m *Manager) LastPrice() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastPrice
}

// WriteStateFile atomically writes the snapshot (temp file + rename).
func WriteStateFile(path string, st *State) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		return fmt.Errorf("agentproto: encode state: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("agentproto: write state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("agentproto: write state: %w", err)
	}
	return nil
}

// ReadStateFile strictly decodes and validates an mprstate/v1 artifact:
// unknown fields are errors, so schema drift is caught at the reader,
// not three markets later.
func ReadStateFile(path string) (*State, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("agentproto: read state: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	st := &State{}
	if err := dec.Decode(st); err != nil {
		return nil, fmt.Errorf("agentproto: decode state %s: %w", path, err)
	}
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("agentproto: state %s: %w", path, err)
	}
	return st, nil
}
