package agentproto

import (
	"fmt"
	"math"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpr/internal/core"
	"mpr/internal/telemetry"
	"mpr/internal/telemetry/hdr"
)

// Metric names the manager registers.
const (
	// MetricAgentEvents counts agent lifecycle events, labeled "connect",
	// "disconnect", or "rejected".
	MetricAgentEvents = "mpr_agent_events_total"
	// MetricAgentsConnected gauges the currently registered agents.
	MetricAgentsConnected = "mpr_agents_connected"
	// MetricBidRTT is the RespondBid round-trip HDR histogram in
	// seconds: price broadcast to bid receipt, per agent per round.
	// Registered as an hdr.Histogram (log-bucketed, ~1 ns–100 s, ≤3.1%
	// relative error), so tail quantiles are answerable without guessing
	// bucket bounds up front.
	MetricBidRTT = "mpr_agent_bid_rtt_seconds"
	// MetricMalformed counts protocol violations: bad hellos, unexpected
	// message types, and stale-round bids.
	MetricMalformed = "mpr_agent_malformed_messages_total"
	// MetricMarkets counts finished RunMarket invocations; MetricRounds
	// the price rounds across them.
	MetricMarkets = "mpr_manager_markets_total"
	MetricRounds  = "mpr_manager_rounds_total"
	// MetricBidTimeouts counts rounds that hit the per-round timeout
	// before every agent answered.
	MetricBidTimeouts = "mpr_manager_bid_timeouts_total"
	// MetricStreamUpdates counts incremental re-clears in streaming
	// markets: one per incoming bid applied to the stream engine.
	MetricStreamUpdates = "mpr_manager_stream_updates_total"
)

// ManagerConfig parameterizes the market manager daemon.
type ManagerConfig struct {
	// InitialPrice opens each market (q′₀). Default 0.1.
	InitialPrice float64
	// MaxRounds bounds the price iterations per market. Default 50.
	MaxRounds int
	// Tolerance is the relative price-change convergence threshold.
	// Default 1e-4.
	Tolerance float64
	// RoundTimeout bounds how long the manager waits for each round's
	// bids — the paper's safety timeout ("e.g., 30 seconds" overall).
	// Default 2 s per round.
	RoundTimeout time.Duration
	// Logf, when set, receives protocol diagnostics. Nil is safe and
	// logs nothing — library users need not wire logging.
	Logf func(format string, args ...interface{})
	// Telemetry, when set, receives the manager's connection, latency,
	// and protocol metrics. Nil (the Nop registry) disables them.
	Telemetry *telemetry.Registry
	// Tracer, when set, receives one "market_round" event per price
	// iteration and one "market_clear" per finished market — the feed
	// behind mprd's /debug/market page.
	Tracer *telemetry.Tracer
	// Streaming switches RunMarket to the continuously-clearing engine:
	// every incoming bid is applied to a core.StreamMarket and re-clears
	// the market incrementally in O(log M), so a price is published per
	// update (one "stream_update" trace event each) instead of only per
	// round. The wire protocol is unchanged — agents still answer round
	// price broadcasts — and the round fixpoint iteration is identical;
	// only the solver underneath the round becomes incremental.
	Streaming bool
	// OnStreamUpdate, when set with Streaming, observes every incremental
	// re-clear: the bidding job, the round, and the new clearing price.
	// mprd uses it to feed the stream-price time series.
	OnStreamUpdate func(jobID string, round int, price float64, feasible bool)
}

func (c *ManagerConfig) normalize() {
	if c.InitialPrice <= 0 {
		c.InitialPrice = 0.1
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 50
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-4
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
}

// agentConn is one connected bidding agent.
type agentConn struct {
	conn  net.Conn
	codec *Codec
	hello Message
	bids  chan Message
	mu    sync.Mutex // guards codec writes
}

func (a *agentConn) send(m Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.codec.Send(m)
}

// Manager is the market facilitator: it accepts agent registrations over
// TCP and clears interactive markets on demand.
type Manager struct {
	cfg      ManagerConfig
	listener net.Listener

	mu     sync.Mutex
	agents map[string]*agentConn
	closed bool
	wg     sync.WaitGroup

	// marketSeq numbers RunMarket invocations; it seeds each market's
	// trace ID ("m<seq>") and the per-round IDs broadcast on the wire.
	marketSeq atomic.Uint64

	// Telemetry handles; all nil (no-op) without a configured registry.
	connects      *telemetry.Counter
	disconnects   *telemetry.Counter
	rejected      *telemetry.Counter
	connected     *telemetry.Gauge
	bidRTT        *hdr.Histogram
	malformed     *telemetry.Counter
	markets       *telemetry.Counter
	rounds        *telemetry.Counter
	timeouts      *telemetry.Counter
	streamUpdates *telemetry.Counter
}

// logf forwards to cfg.Logf when set; safe even on an un-normalized
// config so a nil Logf can never panic a market.
func (m *Manager) logf(format string, args ...interface{}) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// NewManager starts a manager listening on addr (e.g. "127.0.0.1:0").
func NewManager(addr string, cfg ManagerConfig) (*Manager, error) {
	cfg.normalize()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agentproto: listen: %w", err)
	}
	m := &Manager{cfg: cfg, listener: ln, agents: make(map[string]*agentConn)}
	if reg := cfg.Telemetry; reg != nil {
		events := reg.CounterFamily(MetricAgentEvents, "Agent lifecycle events.", "event")
		m.connects = events.With("connect")
		m.disconnects = events.With("disconnect")
		m.rejected = events.With("rejected")
		m.connected = reg.Gauge(MetricAgentsConnected, "Currently registered agents.")
		m.bidRTT = reg.HDR(MetricBidRTT, "RespondBid round-trip latency in seconds (HDR).")
		m.malformed = reg.Counter(MetricMalformed, "Protocol violations: bad hellos, unexpected types, stale-round bids.")
		m.markets = reg.Counter(MetricMarkets, "Finished RunMarket invocations.")
		m.rounds = reg.Counter(MetricRounds, "Price rounds across all markets.")
		m.timeouts = reg.Counter(MetricBidTimeouts, "Rounds that timed out before all bids arrived.")
		m.streamUpdates = reg.Counter(MetricStreamUpdates, "Incremental re-clears applied by streaming markets.")
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the listen address for agents to dial.
func (m *Manager) Addr() string { return m.listener.Addr().String() }

// AgentCount reports the number of registered agents.
func (m *Manager) AgentCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.agents)
}

// Close shuts the manager down and disconnects all agents.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	agents := make([]*agentConn, 0, len(m.agents))
	for _, a := range m.agents {
		agents = append(agents, a)
	}
	m.mu.Unlock()
	err := m.listener.Close()
	for _, a := range agents {
		a.conn.Close()
	}
	m.wg.Wait()
	return err
}

func (m *Manager) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return // listener closed
		}
		m.wg.Add(1)
		go m.serve(conn)
	}
}

func (m *Manager) serve(conn net.Conn) {
	defer m.wg.Done()
	codec := NewCodec(conn)
	hello, err := codec.Recv()
	if err != nil || hello.Type != MsgHello || hello.JobID == "" {
		m.malformed.Inc()
		m.rejected.Inc()
		_ = codec.Send(Message{Type: MsgError, Reason: "expected hello with job_id"})
		conn.Close()
		return
	}
	if hello.Cores <= 0 || hello.WattsPerCore <= 0 || hello.MaxFrac <= 0 {
		m.malformed.Inc()
		m.rejected.Inc()
		_ = codec.Send(Message{Type: MsgError, Reason: "hello needs positive cores, watts_per_core, max_frac"})
		conn.Close()
		return
	}
	a := &agentConn{conn: conn, codec: codec, hello: hello, bids: make(chan Message, 4)}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return
	}
	if _, dup := m.agents[hello.JobID]; dup {
		m.mu.Unlock()
		m.rejected.Inc()
		_ = codec.Send(Message{Type: MsgError, Reason: "duplicate job_id"})
		conn.Close()
		return
	}
	m.agents[hello.JobID] = a
	n := len(m.agents)
	m.mu.Unlock()
	m.connects.Inc()
	m.connected.Set(float64(n))
	m.logf("agent %s registered (%.0f cores)", hello.JobID, hello.Cores)

	for {
		msg, err := codec.Recv()
		if err != nil {
			break
		}
		if msg.Type == MsgBid {
			select {
			case a.bids <- msg:
			default: // drop stale bid
			}
		} else {
			// Agents only ever send hellos and bids; anything else is a
			// confused or hostile peer worth counting.
			m.malformed.Inc()
			m.logf("agent %s sent unexpected %s", hello.JobID, msg.Type)
		}
	}
	m.mu.Lock()
	delete(m.agents, hello.JobID)
	n = len(m.agents)
	m.mu.Unlock()
	conn.Close()
	m.disconnects.Inc()
	m.connected.Set(float64(n))
	m.logf("agent %s disconnected", hello.JobID)
}

// ServeConn registers an agent connection that was established out of
// band — typically one end of a net.Pipe from an in-process load
// generator, which costs no file descriptors and still exercises the
// full JSON wire path. The manager owns conn from here on and serves it
// exactly like an accepted TCP connection.
func (m *Manager) ServeConn(conn net.Conn) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return fmt.Errorf("agentproto: manager closed")
	}
	m.wg.Add(1)
	m.mu.Unlock()
	go m.serve(conn)
	return nil
}

// MarketOutcome is the result of one interactive market run over the
// connected agents.
type MarketOutcome struct {
	Result *core.ClearingResult
	// Orders maps job IDs to awarded reductions (cores).
	Orders map[string]float64
	// TraceID is the market's trace identifier ("m<seq>") — the prefix of
	// the per-round IDs stamped on this market's price broadcasts.
	TraceID string
}

// RunMarket clears an interactive market for the given power-reduction
// target over the currently registered agents, sends reduction orders,
// and returns the outcome.
func (m *Manager) RunMarket(targetW float64) (*MarketOutcome, error) {
	m.mu.Lock()
	agents := make([]*agentConn, 0, len(m.agents))
	for _, a := range m.agents {
		agents = append(agents, a)
	}
	m.mu.Unlock()
	sort.Slice(agents, func(i, j int) bool { return agents[i].hello.JobID < agents[j].hello.JobID })
	if len(agents) == 0 {
		return nil, core.ErrNoParticipants
	}

	parts := make([]*core.Participant, len(agents))
	for i, a := range agents {
		parts[i] = &core.Participant{
			JobID:        a.hello.JobID,
			Cores:        a.hello.Cores,
			WattsPerCore: a.hello.WattsPerCore,
			MaxFrac:      a.hello.MaxFrac,
		}
	}

	// Every market gets a trace ID "m<seq>"; each round extends it to
	// "m<seq>.r<round>" and stamps that on the price broadcast. Agents
	// echo it on their bids, which lets the collector below attribute a
	// bid to the exact broadcast that prompted it and record a per-agent
	// respond_bid span linked under the round.
	marketTrace := "m" + strconv.FormatUint(m.marketSeq.Add(1), 10)

	// The market runs as a span tree — market → market_round →
	// respond_bids, plus one externally-timed respond_bid{agent} child
	// per traced bid — so /debug/spans shows where wall-time went, and
	// the bid fan-out carries the "mpr_span" pprof label (agent reader
	// goroutines feeding the bid channels inherit their creator's labels,
	// so only the collection itself is labeled here).
	mkSpan := m.cfg.Tracer.StartSpan("market", nil)
	mkSpan.SetAttr("trace", marketTrace)
	mkSpan.SetAttr("target_w", strconv.FormatFloat(targetW, 'g', -1, 64))
	mkSpan.SetAttr("agents", strconv.Itoa(len(agents)))

	// Streaming mode keeps a continuously-clearing engine over the
	// participants: each incoming bid is applied incrementally (O(log M))
	// and publishes a fresh price immediately, instead of waiting for the
	// round's batch clear. The round iteration itself is unchanged.
	var stream *core.StreamMarket
	if m.cfg.Streaming {
		var err error
		stream, err = core.NewStreamMarket(parts, targetW)
		if err != nil {
			mkSpan.End()
			return nil, err
		}
		mkSpan.SetAttr("mode", "streaming")
	}

	price := m.cfg.InitialPrice
	res := &core.ClearingResult{}
	converged := false
	rounds := 0
	for round := 1; round <= m.cfg.MaxRounds; round++ {
		rounds = round
		roundTrace := marketTrace + ".r" + strconv.Itoa(round)
		roundSpan := mkSpan.StartChild("market_round")
		roundSpan.SetAttr("trace", roundTrace)
		// Broadcast the price and gather this round's bids.
		bidSpan := roundSpan.StartChild("respond_bids")
		telemetry.WithPprofLabels("respond_bids", func() {
			for _, a := range agents {
				if err := a.send(Message{Type: MsgPrice, Round: round, Price: price, TargetW: targetW, TraceID: roundTrace}); err != nil {
					m.logf("price to %s failed: %v", a.hello.JobID, err)
				}
			}
			broadcastAt := time.Now()
			deadline := time.After(m.cfg.RoundTimeout)
		collect:
			for i, a := range agents {
				for {
					select {
					case bid := <-a.bids:
						if bid.Round != round {
							// Bids must echo the round they answer; anything
							// else is stale (or fabricated) and is discarded.
							m.malformed.Inc()
							continue
						}
						now := time.Now()
						m.bidRTT.Record(now.Sub(broadcastAt).Seconds())
						if bid.TraceID == roundTrace {
							// The agent echoed our trace ID: link a per-agent
							// respond_bid span under this round, spanning the
							// broadcast to this bid's receipt. Old-format
							// agents never echo (empty TraceID) and simply
							// stay untraced.
							m.cfg.Tracer.RecordSpan("respond_bid", roundSpan,
								broadcastAt.UnixNano(), now.UnixNano(),
								telemetry.Attr{Key: "agent", Value: a.hello.JobID},
								telemetry.Attr{Key: "trace", Value: roundTrace})
						}
						newBid := core.Bid{Delta: bid.Delta, B: bid.B}
						if stream != nil {
							p, feasible, err := stream.Apply(core.ParticipantDelta{Index: i, Bid: newBid})
							if err != nil {
								// An unclearable bid (e.g. negative Δ) is a
								// protocol violation, not a market error: count
								// it and proceed on the agent's previous bid,
								// which the stream still holds.
								m.malformed.Inc()
								m.logf("agent %s bid rejected: %v", a.hello.JobID, err)
								continue collect
							}
							parts[i].Bid = newBid
							m.streamUpdates.Inc()
							m.cfg.Tracer.Emit(telemetry.Event{Name: "stream_update", Trace: roundTrace, Round: round,
								Price: p, TargetW: targetW, Label: a.hello.JobID})
							if m.cfg.OnStreamUpdate != nil {
								m.cfg.OnStreamUpdate(a.hello.JobID, round, p, feasible)
							}
							continue collect
						}
						parts[i].Bid = newBid
						continue collect
					case <-deadline:
						// Keep the agent's previous bid (possibly zero) — the
						// paper's timeout rule: the market proceeds with the
						// last information available.
						m.timeouts.Inc()
						m.logf("round %d: timeout waiting for %s", round, a.hello.JobID)
						deadline = closedTimeChan()
						continue collect
					}
				}
			}
		})
		bidSpan.End()
		var err error
		if stream != nil {
			// The round's clear is already solved — the last Apply left the
			// price cached; materializing reductions reuses res's buffers.
			err = stream.ClearInto(res)
		} else {
			res, err = core.Clear(parts, targetW)
		}
		if err != nil {
			roundSpan.End()
			mkSpan.End()
			return nil, err
		}
		m.rounds.Inc()
		m.cfg.Tracer.Emit(telemetry.Event{Name: "market_round", Trace: roundTrace, Round: round,
			Price: res.Price, TargetW: targetW, SuppliedW: res.SuppliedW, Value: price})
		roundSpan.End()
		if math.Abs(res.Price-price) <= m.cfg.Tolerance*math.Max(price, 1e-12) {
			converged = true
			break
		}
		price = res.Price
	}
	res.Rounds = rounds
	res.Converged = converged
	m.markets.Inc()
	mkSpan.SetAttr("rounds", strconv.Itoa(rounds))
	mkSpan.SetAttr("converged", strconv.FormatBool(converged))
	mkSpan.End()
	clearLabel := "converged"
	if !converged {
		clearLabel = "budget_exhausted"
	}
	m.cfg.Tracer.Emit(telemetry.Event{Name: "market_clear", Trace: marketTrace, Round: rounds,
		Price: res.Price, TargetW: targetW, SuppliedW: res.SuppliedW, Label: clearLabel})

	out := &MarketOutcome{Result: res, Orders: make(map[string]float64, len(agents)), TraceID: marketTrace}
	for i, a := range agents {
		red := res.Reductions[i]
		out.Orders[a.hello.JobID] = red
		if err := a.send(Message{
			Type:           MsgOrder,
			Price:          res.Price,
			ReductionCores: red,
			PaymentRate:    res.Price * red,
		}); err != nil {
			m.logf("order to %s failed: %v", a.hello.JobID, err)
		}
	}
	return out, nil
}

// Lift broadcasts the end of the emergency.
func (m *Manager) Lift() {
	m.mu.Lock()
	agents := make([]*agentConn, 0, len(m.agents))
	for _, a := range m.agents {
		agents = append(agents, a)
	}
	m.mu.Unlock()
	for _, a := range agents {
		if err := a.send(Message{Type: MsgLift}); err != nil {
			m.logf("lift to %s failed: %v", a.hello.JobID, err)
		}
	}
}

// closedTimeChan returns an already-fired timer channel so subsequent
// selects fall through immediately.
func closedTimeChan() <-chan time.Time {
	ch := make(chan time.Time)
	close(ch)
	return ch
}
